// Benchmark harness regenerating the paper's evaluation. Every Table 1 row
// has a bench that runs the row's lower-bound adversary against the row's
// strategy and reports the measured competitive ratio OPT/ALG as a custom
// metric next to the proven bound, plus throughput benches for the engine
// and the matching substrate. Run with:
//
//	go test -bench=. -benchmem
package reqsched_test

import (
	"fmt"
	"testing"

	"reqsched"
)

// benchConstruction runs one (construction, strategy) measurement per
// iteration and reports ratio metrics.
func benchConstruction(b *testing.B, build func() reqsched.Construction, mk func() reqsched.Strategy) {
	b.Helper()
	var m reqsched.Measurement
	var c reqsched.Construction
	requests := 0
	for i := 0; i < b.N; i++ {
		c = build()
		s := mk()
		m = reqsched.MeasureConstruction(c, s)
		if c.Trace != nil {
			requests = c.Trace.NumRequests()
		} else {
			requests = m.OPT // adaptive: OPT == injected on our constructions
		}
	}
	b.ReportMetric(m.Ratio(), "OPT/ALG")
	b.ReportMetric(c.Bound, "provenLB")
	b.ReportMetric(float64(requests), "requests")
}

// BenchmarkTable1 regenerates every row of Table 1 (see cmd/table1 for the
// full formatted table).
func BenchmarkTable1(b *testing.B) {
	const phases = 40

	for _, d := range []int{2, 4, 8, 16} {
		d := d
		b.Run(fmt.Sprintf("AFix/d=%d", d), func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryFix(d, phases) },
				reqsched.NewAFix)
		})
	}

	b.Run("ACurrent/d=2", func(b *testing.B) {
		benchConstruction(b,
			func() reqsched.Construction { return reqsched.AdversaryEager(2, phases) },
			reqsched.NewACurrent)
	})
	for _, l := range []int{3, 4, 5, 6} {
		l := l
		b.Run(fmt.Sprintf("ACurrent/l=%d", l), func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryCurrent(l, 5) },
				reqsched.NewACurrent)
		})
	}

	b.Run("AFixBalance/d=2", func(b *testing.B) {
		benchConstruction(b,
			func() reqsched.Construction { return reqsched.AdversaryEager(2, phases) },
			reqsched.NewAFixBalance)
	})
	for _, d := range []int{4, 8, 12} {
		d := d
		b.Run(fmt.Sprintf("AFixBalance/d=%d", d), func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryFixBalance(d, phases) },
				reqsched.NewAFixBalance)
		})
	}

	for _, d := range []int{2, 4, 8} {
		d := d
		b.Run(fmt.Sprintf("AEager/d=%d", d), func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryEager(d, phases) },
				reqsched.NewAEager)
		})
	}

	b.Run("ABalance/d=2", func(b *testing.B) {
		benchConstruction(b,
			func() reqsched.Construction { return reqsched.AdversaryEager(2, phases) },
			reqsched.NewABalance)
	})
	for _, x := range []int{1, 2, 3} {
		x := x
		b.Run(fmt.Sprintf("ABalance/x=%d", x), func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryBalance(x, 32, phases) },
				reqsched.NewABalance)
		})
	}

	// Row 6: the universal adversary versus every global strategy.
	for _, mk := range []struct {
		name string
		fn   func() reqsched.Strategy
	}{
		{"A_fix", reqsched.NewAFix},
		{"A_current", reqsched.NewACurrent},
		{"A_fix_balance", reqsched.NewAFixBalance},
		{"A_eager", reqsched.NewAEager},
		{"A_balance", reqsched.NewABalance},
	} {
		mk := mk
		b.Run("Universal/vs="+mk.name, func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryUniversal(6, 20) },
				mk.fn)
		})
	}
}

// BenchmarkLocal regenerates the local-strategy results (Theorems 3.7, 3.8).
func BenchmarkLocal(b *testing.B) {
	for _, d := range []int{2, 4, 8} {
		d := d
		b.Run(fmt.Sprintf("AFixLocal/d=%d", d), func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryLocalFix(d, 40) },
				reqsched.NewALocalFix)
		})
		b.Run(fmt.Sprintf("AEagerLocal/d=%d", d), func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryLocalFix(d, 40) },
				reqsched.NewALocalEager)
		})
	}
	b.Run("EDFWorst/d=4", func(b *testing.B) {
		benchConstruction(b,
			func() reqsched.Construction { return reqsched.AdversaryEDF(4, 40) },
			reqsched.NewEDF)
	})
}

// BenchmarkConvergence is the Fig-B series: A_current's forced ratio versus
// l, approaching e/(e-1) ~ 1.582.
func BenchmarkConvergence(b *testing.B) {
	for _, l := range []int{2, 3, 4, 5, 6} {
		l := l
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			var m reqsched.Measurement
			for i := 0; i < b.N; i++ {
				m = reqsched.MeasureConstruction(reqsched.AdversaryCurrent(l, 5), reqsched.NewACurrent())
			}
			b.ReportMetric(m.Ratio(), "OPT/ALG")
			b.ReportMetric(reqsched.AdversaryCurrentBound(l), "analytic")
		})
	}
}

// BenchmarkSweepD is the Fig-A series: each strategy's forced ratio on its
// own adversary as d grows (the shape of the Table 1 formulas).
func BenchmarkSweepD(b *testing.B) {
	for _, d := range []int{2, 4, 8, 16, 24} {
		d := d
		b.Run(fmt.Sprintf("AFix/d=%d", d), func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryFix(d, 30) },
				reqsched.NewAFix)
		})
	}
	for _, d := range []int{4, 8, 16, 24} {
		d := d
		b.Run(fmt.Sprintf("AFixBalance/d=%d", d), func(b *testing.B) {
			benchConstruction(b,
				func() reqsched.Construction { return reqsched.AdversaryFixBalance(d, 30) },
				reqsched.NewAFixBalance)
		})
	}
}

// BenchmarkEngine measures raw simulation throughput of every strategy on a
// shared random workload (requests scheduled per second).
func BenchmarkEngine(b *testing.B) {
	tr := reqsched.Uniform(reqsched.WorkloadConfig{
		N: 16, D: 6, Rounds: 300, Rate: 18, Seed: 11,
	})
	for _, name := range []string{
		"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance",
		"EDF", "first_fit", "A_local_fix", "A_local_eager",
	} {
		name := name
		b.Run(name, func(b *testing.B) {
			var served int
			for i := 0; i < b.N; i++ {
				res := reqsched.Run(reqsched.StrategyByName(name), tr)
				served = res.Fulfilled
			}
			b.ReportMetric(float64(served), "served")
			b.ReportMetric(float64(tr.NumRequests())*float64(b.N)/b.Elapsed().Seconds(), "requests/s")
		})
	}
}

// BenchmarkEngineAllocs tracks the allocation profile of the engine hot path
// per strategy on the BenchmarkEngine workload. The per-round scratch reuse in
// core and strategies keeps allocs/op independent of the round count; a
// regression here means a fresh allocation crept back into the round loop.
func BenchmarkEngineAllocs(b *testing.B) {
	tr := reqsched.Uniform(reqsched.WorkloadConfig{
		N: 16, D: 6, Rounds: 300, Rate: 18, Seed: 11,
	})
	// A_local_eager exercises RoundContext.Unassigned every round, covering
	// the context's scratch-buffer reuse alongside the global strategies.
	// Each compose(router=X) entry must match its fused strategy's allocs/op:
	// the composite's queue, key and sorter buffers are all reused, so the
	// decomposition may not add per-round allocations.
	for _, name := range []string{
		"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance",
		"A_local_eager",
		"compose,router=fix", "compose,router=current", "compose,router=fix_balance",
		"compose,router=eager", "compose,router=balance",
	} {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reqsched.Run(reqsched.StrategyByName(name), tr)
			}
		})
	}
	// The offline EDF baseline shares the regression class: its served set is
	// a dense bitmap, so allocs/op must stay flat in the round count.
	b.Run("EarliestDeadlineSchedule", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reqsched.EarliestDeadlineSchedule(tr)
		}
	})
}

// BenchmarkOptimumParallel measures the segmented offline solver against the
// monolithic one on a gapped (multi-segment) workload — the BENCH_engine.json
// offline section is regenerated from cmd/bench, which mirrors this setup at
// the million-request scale.
func BenchmarkOptimumParallel(b *testing.B) {
	tr := reqsched.Bursty(reqsched.WorkloadConfig{
		N: 16, D: 4, Rounds: 2000, Rate: 0, Seed: 5,
	}, 4, 8, 20)
	want := reqsched.Optimum(tr)
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reqsched.Optimum(tr)
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("segmented/workers=%d", workers), func(b *testing.B) {
			var got int
			for i := 0; i < b.N; i++ {
				got = reqsched.OptimumParallel(tr, workers)
			}
			if got != want {
				b.Fatalf("OptimumParallel = %d, Optimum = %d", got, want)
			}
			b.ReportMetric(float64(reqsched.TraceSegmentCount(tr)), "segments")
		})
	}
}

// BenchmarkMaxProfitParallel measures the segmented weighted solver against
// the monolithic min-cost-flow one on a gapped weighted workload — the
// BENCH_engine.json weighted section is regenerated from cmd/bench, which
// mirrors this setup at the 10^5-request scale.
func BenchmarkMaxProfitParallel(b *testing.B) {
	tr := reqsched.WithWeights(reqsched.Bursty(reqsched.WorkloadConfig{
		N: 16, D: 4, Rounds: 600, Rate: 0, Seed: 5,
	}, 4, 8, 20), 8, 5)
	want := reqsched.MaxProfit(tr)
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reqsched.MaxProfit(tr)
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("segmented/workers=%d", workers), func(b *testing.B) {
			var got int
			for i := 0; i < b.N; i++ {
				got = reqsched.MaxProfitParallel(tr, workers)
			}
			if got != want {
				b.Fatalf("MaxProfitParallel = %d, MaxProfit = %d", got, want)
			}
			b.ReportMetric(float64(reqsched.TraceSegmentCount(tr)), "segments")
		})
	}
}

// BenchmarkOptimum measures the offline solver (Hopcroft–Karp over the full
// request/slot graph).
func BenchmarkOptimum(b *testing.B) {
	for _, scale := range []struct {
		name   string
		rounds int
		rate   float64
	}{
		{"small", 100, 10},
		{"medium", 400, 15},
		{"large", 1000, 20},
	} {
		scale := scale
		b.Run(scale.name, func(b *testing.B) {
			tr := reqsched.Uniform(reqsched.WorkloadConfig{
				N: 12, D: 5, Rounds: scale.rounds, Rate: scale.rate, Seed: 3,
			})
			b.ResetTimer()
			var opt int
			for i := 0; i < b.N; i++ {
				opt = reqsched.Optimum(tr)
			}
			b.ReportMetric(float64(opt), "optimum")
			b.ReportMetric(float64(tr.NumRequests()), "requests")
		})
	}
}

// BenchmarkAblation quantifies what each adversary exploits: randomizing the
// channel it steers through (alternative listing or injection order) must
// destroy most of the forced loss, while the other channel changes nothing.
// Reported as ratio metrics per variant.
func BenchmarkAblation(b *testing.B) {
	cases := []struct {
		name  string
		trace func() *reqsched.Trace
		mk    func() reqsched.Strategy
	}{
		{"Fix/original", func() *reqsched.Trace { return reqsched.AdversaryFix(4, 40).Trace }, reqsched.NewAFix},
		{"Fix/shuffledAlts", func() *reqsched.Trace {
			return reqsched.ShuffleAlts(reqsched.AdversaryFix(4, 40).Trace, 1)
		}, reqsched.NewAFix},
		{"Eager/original", func() *reqsched.Trace { return reqsched.AdversaryEager(4, 40).Trace }, reqsched.NewAEager},
		{"Eager/shuffledOrder", func() *reqsched.Trace {
			return reqsched.ShuffleArrivalOrder(reqsched.AdversaryEager(4, 40).Trace, 1)
		}, reqsched.NewAEager},
		{"Fix/vsRanking", func() *reqsched.Trace { return reqsched.AdversaryFix(4, 40).Trace }, func() reqsched.Strategy { return reqsched.NewRanking(5) }},
		{"EDFWorst/independent", func() *reqsched.Trace { return reqsched.AdversaryEDF(4, 40).Trace }, reqsched.NewEDF},
		{"EDFWorst/coordinated", func() *reqsched.Trace { return reqsched.AdversaryEDF(4, 40).Trace }, reqsched.NewEDFCoordinated},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var m reqsched.Measurement
			for i := 0; i < b.N; i++ {
				m = reqsched.Measure(tc.mk(), tc.trace())
			}
			b.ReportMetric(m.Ratio(), "OPT/ALG")
		})
	}
}

// BenchmarkParallelHarness compares the sequential and parallel measurement
// harness on a Table 1-sized batch.
func BenchmarkParallelHarness(b *testing.B) {
	jobs := func() []reqsched.MeasureJob {
		var out []reqsched.MeasureJob
		for _, d := range []int{2, 4, 8, 16} {
			d := d
			out = append(out, reqsched.MeasureJob{
				Build:    func() reqsched.Construction { return reqsched.AdversaryFix(d, 30) },
				Strategy: reqsched.NewAFix,
			}, reqsched.MeasureJob{
				Build:    func() reqsched.Construction { return reqsched.AdversaryEager(d, 30) },
				Strategy: reqsched.NewAEager,
			})
		}
		return out
	}()
	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reqsched.MeasureParallel(jobs, 1)
		}
	})
	b.Run("workers=max", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reqsched.MeasureParallel(jobs, 0)
		}
	})
}
