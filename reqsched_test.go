package reqsched_test

import (
	"bytes"
	"fmt"
	"testing"

	"reqsched"
)

func TestFacadeEndToEnd(t *testing.T) {
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 6, D: 3, Rounds: 40, Rate: 7, Seed: 1})
	opt := reqsched.Optimum(tr)
	for name, s := range reqsched.Strategies() {
		res := reqsched.Run(s, tr)
		if err := reqsched.ValidateLog(tr, res.Log); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Fulfilled > opt {
			t.Fatalf("%s beats OPT", name)
		}
	}
	if len(reqsched.GlobalStrategies()) != 5 {
		t.Fatal("Table 1 has five global strategies")
	}
	if reqsched.StrategyByName("A_local_eager") == nil || reqsched.StrategyByName("nope") != nil {
		t.Fatal("StrategyByName broken")
	}
}

func TestFacadeOptimumScheduleValid(t *testing.T) {
	tr := reqsched.Zipf(reqsched.WorkloadConfig{N: 5, D: 3, Rounds: 20, Rate: 6, Seed: 2}, 1.5)
	log := reqsched.OptimumSchedule(tr)
	if err := reqsched.ValidateLog(tr, log); err != nil {
		t.Fatal(err)
	}
	if len(log) != reqsched.Optimum(tr) {
		t.Fatal("schedule size != optimum")
	}
}

func TestFacadeAdversariesCarryBounds(t *testing.T) {
	cases := []reqsched.Construction{
		reqsched.AdversaryFix(4, 5),
		reqsched.AdversaryCurrent(4, 2),
		reqsched.AdversaryFixBalance(4, 5),
		reqsched.AdversaryEager(4, 5),
		reqsched.AdversaryBalance(2, 4, 5),
		reqsched.AdversaryUniversal(6, 3),
		reqsched.AdversaryLocalFix(3, 5),
		reqsched.AdversaryEDF(3, 5),
	}
	for _, c := range cases {
		if c.Bound < 1 {
			t.Fatalf("%s: bound %f", c.Name, c.Bound)
		}
		if c.Trace == nil && c.Source == nil {
			t.Fatalf("%s: no input", c.Name)
		}
	}
	m := reqsched.MeasureConstruction(reqsched.AdversaryFix(4, 20), reqsched.NewAFix())
	if m.Ratio() <= 1.5 || m.Ratio() > 1.75 {
		t.Fatalf("fix adversary ratio %f out of band", m.Ratio())
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr := reqsched.SingleChoice(reqsched.WorkloadConfig{N: 3, D: 4, Rounds: 15, Rate: 4, Seed: 3})
	var buf bytes.Buffer
	if err := reqsched.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := reqsched.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRequests() != tr.NumRequests() {
		t.Fatal("round trip lost requests")
	}
	if reqsched.SummarizeTrace(got).Requests != tr.NumRequests() {
		t.Fatal("summary mismatch")
	}
}

func TestFacadeBuilderAndCChoice(t *testing.T) {
	b := reqsched.NewBuilder(4, 2)
	b.Add(0, 0, 1)
	b.AddWindow(1, 1, 2)
	tr := b.Build()
	if tr.NumRequests() != 2 {
		t.Fatal("builder lost requests")
	}
	c3 := reqsched.CChoice(reqsched.WorkloadConfig{N: 5, D: 2, Rounds: 10, Rate: 5, Seed: 4}, 3)
	res := reqsched.Run(reqsched.NewEDF(), c3)
	if err := reqsched.ValidateLog(c3, res.Log); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFullSurface(t *testing.T) {
	// Touch every exported wrapper once — the API contract test.
	cfg := reqsched.WorkloadConfig{N: 6, D: 3, Rounds: 10, Rate: 5, Seed: 1}
	traces := []*reqsched.Trace{
		reqsched.Uniform(cfg),
		reqsched.Zipf(cfg, 1.5),
		reqsched.Bursty(cfg, 2, 3, 12),
		reqsched.VideoServer(cfg, 20, 1.3),
		reqsched.SingleChoice(cfg),
		reqsched.CChoice(cfg, 3),
		reqsched.MixedDeadlines(cfg),
	}
	for i, tr := range traces {
		if tr.NumRequests() == 0 {
			t.Fatalf("generator %d empty", i)
		}
	}
	tr := traces[0]
	if reqsched.ShuffleAlts(tr, 1).NumRequests() != tr.NumRequests() {
		t.Fatal("ShuffleAlts")
	}
	if reqsched.ShuffleArrivalOrder(tr, 1).NumRequests() != tr.NumRequests() {
		t.Fatal("ShuffleArrivalOrder")
	}

	for _, s := range []reqsched.Strategy{
		reqsched.NewAFix(), reqsched.NewACurrent(), reqsched.NewAFixBalance(),
		reqsched.NewAEager(), reqsched.NewABalance(), reqsched.NewEDF(),
		reqsched.NewEDFCoordinated(), reqsched.NewFirstFit(),
		reqsched.NewRandomFit(1), reqsched.NewRanking(1),
		reqsched.NewALocalFix(), reqsched.NewALocalEager(), reqsched.NewALocalEagerWide(),
	} {
		res := reqsched.Run(s, tr)
		if err := reqsched.ValidateLog(tr, res.Log); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}

	m := reqsched.Measure(reqsched.NewABalance(), tr)
	if m.OPT < m.ALG {
		t.Fatal("Measure inverted")
	}
	res, series := reqsched.RunWithSeries(reqsched.NewABalance(), tr)
	if len(series.Rounds) == 0 || series.PeakPending() < 0 || series.TotalIdle() < 0 {
		t.Fatal("series empty")
	}
	orders := reqsched.AugmentingOrders(tr, res.Log)
	total := 0
	for _, v := range orders {
		total += v
	}
	if total != reqsched.Optimum(tr)-res.Fulfilled {
		t.Fatal("AugmentingOrders total mismatch")
	}
	if reqsched.RenderGrid(tr, res.Log, 0, -1) == "" {
		t.Fatal("RenderGrid empty")
	}
	if reqsched.RenderArrivals(tr, 0, -1) == "" {
		t.Fatal("RenderArrivals empty")
	}
	if reqsched.RenderLosses(tr, res.Log) == "" {
		t.Fatal("RenderLosses empty")
	}
	if reqsched.RenderDiff(tr, res.Log, res.Log) == "" {
		t.Fatal("RenderDiff empty")
	}
	if b := reqsched.AdversaryCurrentBound(5); b < 1.4 || b > 1.6 {
		t.Fatalf("AdversaryCurrentBound %f", b)
	}
	if c := reqsched.AdversaryUniversalAnyD(5, 2); c.Source == nil {
		t.Fatal("AdversaryUniversalAnyD")
	}
	jobs := []reqsched.MeasureJob{{
		Build:    func() reqsched.Construction { return reqsched.AdversaryFix(2, 5) },
		Strategy: reqsched.NewAFix,
	}}
	if out := reqsched.MeasureParallel(jobs, 2); len(out) != 1 || out[0].OPT == 0 {
		t.Fatal("MeasureParallel")
	}
	if reqsched.SummarizeTrace(tr).Requests != tr.NumRequests() {
		t.Fatal("SummarizeTrace")
	}
	if log := reqsched.OptimumSchedule(tr); len(log) != reqsched.Optimum(tr) {
		t.Fatal("OptimumSchedule")
	}
}

func ExampleRun() {
	b := reqsched.NewBuilder(2, 2) // two disks, two-round deadline window
	b.Add(0, 0, 1)                 // round 0: a request for disks {0, 1}
	b.Add(0, 1, 0)
	b.Add(0, 0, 1)
	tr := b.Build()
	res := reqsched.Run(reqsched.NewABalance(), tr)
	fmt.Printf("served %d of %d (optimum %d)\n",
		res.Fulfilled, tr.NumRequests(), reqsched.Optimum(tr))
	// Output: served 3 of 3 (optimum 3)
}

func ExampleMeasureConstruction() {
	// Run A_fix on the Theorem 2.1 adversary: the ratio approaches 2 - 1/d.
	c := reqsched.AdversaryFix(4, 100)
	m := reqsched.MeasureConstruction(c, reqsched.NewAFix())
	fmt.Printf("measured %.2f, proven bound %.2f\n", m.Ratio(), c.Bound)
	// Output: measured 1.74, proven bound 1.75
}

func ExampleAugmentingOrders() {
	// One slot, one round, two one-shot requests: one must be lost, and it
	// sits on an augmenting path of order 1 against the optimum (EDF-style
	// strategies cannot lose it, but the optimum cannot save both either).
	b := reqsched.NewBuilder(1, 1)
	b.Add(0, 0)
	b.Add(0, 0)
	tr := b.Build()
	res := reqsched.Run(reqsched.NewAFix(), tr)
	fmt.Println(len(reqsched.AugmentingOrders(tr, res.Log)))
	// Output: 0
}
