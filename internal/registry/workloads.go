package registry

import (
	"fmt"

	"reqsched/internal/core"
	"reqsched/internal/workload"
)

// baseParams is the workload.Config schema every generator shares. The
// names match the grid.BuildSpec JSON fields. Rate 0 means "no background
// arrivals"; the CLI frontends keep their historical "0 -> n" defaulting.
func baseParams() []Param {
	return []Param{
		{Name: "n", Doc: "resources", Type: Int, Default: IntVal(8), Min: Bound(1)},
		{Name: "d", Doc: "deadline window", Type: Int, Default: IntVal(4), Min: Bound(1)},
		{Name: "rounds", Doc: "rounds with arrivals", Type: Int, Default: IntVal(100), Min: Bound(0)},
		{Name: "rate", Doc: "mean arrivals per round (Poisson; 0 = none)", Type: Float, Default: FloatVal(0), Min: Bound(0)},
		{Name: "seed", Doc: "random seed", Type: Int, Default: IntVal(1)},
	}
}

func cfgOf(p Params) workload.Config {
	return workload.Config{
		N: p.Int("n"), D: p.Int("d"), Rounds: p.Int("rounds"),
		Rate: p.Float("rate"), Seed: p.Int64("seed"),
	}
}

// generator registers a workload component with the base schema plus extras.
func generator(name, doc string, extra []Param, gen func(Params) *core.Trace) {
	generatorChecked(name, doc, extra, nil, gen)
}

func generatorChecked(name, doc string, extra []Param, check func(Params) error, gen func(Params) *core.Trace) {
	Register(Component{
		Kind: KindWorkload, Name: name, Doc: doc,
		Params: append(append(baseParams(), extra...), ModelParams()...),
		Check:  check,
		// Every workload runs under any service model: the generator shapes
		// the arrivals, the model group stamps the trace. The zero (unit)
		// model is left as the zero value so default traces stay bit-identical
		// to the pre-model format.
		Generate: func(p Params) *core.Trace {
			tr := gen(p)
			if m := ModelOf(p); !m.IsUnit() {
				tr.Model = m
			}
			return tr
		},
	})
}

// zipfExponent rejects s <= 1, where math/rand's Zipf sampler is undefined.
func zipfExponent(p Params) error {
	if p.Float("s") <= 1 {
		return fmt.Errorf("needs zipf exponent s > 1")
	}
	return nil
}

func init() {
	generator("uniform", "uniformly random two-choice traffic", nil,
		func(p Params) *core.Trace { return workload.Uniform(cfgOf(p)) })
	generatorChecked("zipf", "hot-spot traffic with Zipf-distributed first alternatives",
		[]Param{{Name: "s", Doc: "zipf exponent (> 1)", Type: Float, Default: FloatVal(1.4)}},
		zipfExponent,
		func(p Params) *core.Trace { return workload.Zipf(cfgOf(p), p.Float("s")) })
	generator("bursty", "on/off correlated traffic (rate during quiet rounds, burst during on-rounds)",
		[]Param{
			{Name: "on", Doc: "burst length in rounds", Type: Int, Default: IntVal(5), Min: Bound(1)},
			{Name: "off", Doc: "quiet length in rounds", Type: Int, Default: IntVal(10), Min: Bound(0)},
			{Name: "burst", Doc: "arrivals per round inside a burst", Type: Float, Default: FloatVal(24), Min: Bound(0)},
		},
		func(p Params) *core.Trace {
			return workload.Bursty(cfgOf(p), p.Int("on"), p.Int("off"), p.Float("burst"))
		})
	generatorChecked("video", "the paper's motivating video-on-demand catalog with Zipf popularity",
		[]Param{
			{Name: "items", Doc: "catalog size", Type: Int, Default: IntVal(100), Min: Bound(2)},
			{Name: "s", Doc: "zipf popularity exponent (> 1)", Type: Float, Default: FloatVal(1.4)},
		},
		zipfExponent,
		func(p Params) *core.Trace {
			return workload.VideoServer(cfgOf(p), p.Int("items"), p.Float("s"))
		})
	generator("single", "one-alternative traffic (Observation 3.1)", nil,
		func(p Params) *core.Trace { return workload.SingleChoice(cfgOf(p)) })
	generator("cchoice", "c-alternative traffic (the EDF extension)",
		[]Param{{Name: "c", Doc: "alternatives per request", Type: Int, Default: IntVal(3), Min: Bound(1)}},
		func(p Params) *core.Trace { return workload.CChoice(cfgOf(p), p.Int("c")) })
	generator("mixed", "two-choice traffic with per-request deadline windows drawn from [1, d]", nil,
		func(p Params) *core.Trace { return workload.MixedDeadlines(cfgOf(p)) })
	generator("weighted", "uniform two-choice traffic with 1/w-distributed weights in {1..maxw}",
		[]Param{{Name: "maxw", Doc: "maximum request weight", Type: Int, Default: IntVal(8), Min: Bound(1)}},
		func(p Params) *core.Trace { return workload.Weighted(cfgOf(p), p.Int("maxw")) })
	generator("trapmix", "random background traffic with Theorem 2.1-style traps embedded every trap_every rounds",
		[]Param{{Name: "trap_every", Doc: "rounds between embedded traps", Type: Int, Default: IntVal(20), Min: Bound(1)}},
		func(p Params) *core.Trace { return workload.TrapMix(cfgOf(p), p.Int("trap_every")) })
	generator("reusable", "two-choice traffic sized to the service model's capacity (rate 0: load x n x cap / hold)",
		[]Param{{Name: "load", Doc: "target utilization of the model's n*cap/hold starts per round (used when rate = 0)",
			Type: Float, Default: FloatVal(0.9), Min: Bound(0)}},
		func(p Params) *core.Trace {
			return workload.Reusable(cfgOf(p), ModelOf(p), p.Float("load"))
		})
}
