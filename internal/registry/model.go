package registry

import "reqsched/internal/core"

// ModelGroup is the Param.Group of the service-model parameters. Every
// strategy and workload schema carries the group, so "hold=k,cap=c" parses
// uniformly across specs and -describe renders the group under its own
// heading on every binary.
const ModelGroup = "model"

// ModelParams returns the service-model parameter group (core.ServiceModel).
// The defaults are 0, not 1: 0 normalizes to the legacy unit value, and a
// zero default keeps every pre-existing spec string, grid job ID and
// compose instance name byte-identical (FormatParams omits defaults, and the
// BuildSpec wire format omits zero fields).
func ModelParams() []Param {
	return []Param{
		{Name: "hold", Doc: "service model: rounds a served request occupies its resource (0 = 1, the unit model)",
			Type: Int, Default: IntVal(0), Min: Bound(0), Max: Bound(1024), Group: ModelGroup},
		{Name: "cap", Doc: "service model: services a resource can hold concurrently (0 = 1, the unit model)",
			Type: Int, Default: IntVal(0), Min: Bound(0), Max: Bound(1024), Group: ModelGroup},
	}
}

// ModelOf extracts the normalized service model from a parameter set carrying
// the ModelParams group (absent entries read as 0, i.e. unit).
func ModelOf(p Params) core.ServiceModel {
	return core.ServiceModel{Hold: p.Int("hold"), Cap: p.Int("cap")}.Norm()
}

// modelCheck builds a Check that probes a strategy instance against the
// parameter set's service model: scan-based strategies accept any model,
// matching-based ones accept hold=1 only, and everything else is unit-only
// (core.CheckModelSupport), so an unsupported "hold=k,cap=c" spec fails at
// parse time on every frontend instead of panicking inside the engine.
func modelCheck(mk func(Params) core.Strategy) func(Params) error {
	return func(p Params) error {
		return core.CheckModelSupport(mk(p), ModelOf(p))
	}
}
