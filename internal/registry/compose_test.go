package registry

import (
	"strings"
	"testing"
)

// TestComposeConstruction: the compose strategy resolves its axis references,
// rejects unknown ones with the catalog in the message, and names instances
// by their round-trippable spec.
func TestComposeConstruction(t *testing.T) {
	s, err := NewStrategySpec("compose")
	if err != nil {
		t.Fatalf("compose with defaults: %v", err)
	}
	if s.Name() != "compose" {
		t.Errorf("default composition named %q, want compose", s.Name())
	}

	spec := "compose,router=greedy,order=sjf"
	s, err = NewStrategySpec(spec)
	if err != nil {
		t.Fatalf("NewStrategySpec(%q): %v", spec, err)
	}
	if s.Name() != spec {
		t.Errorf("composition named %q, want the spec %q", s.Name(), spec)
	}
	// The instance name is itself a resolvable spec.
	if _, err := NewStrategySpec(s.Name()); err != nil {
		t.Errorf("instance name %q does not round-trip: %v", s.Name(), err)
	}

	for _, bad := range []string{
		"compose,router=nope",
		"compose,order=nope",
		"compose,admit=nope",
		"compose,prio=nope",
	} {
		_, err := NewStrategySpec(bad)
		if err == nil {
			t.Errorf("NewStrategySpec(%q) accepted an unknown axis", bad)
			continue
		}
		if !strings.Contains(err.Error(), "unknown") {
			t.Errorf("NewStrategySpec(%q): unhelpful error %v", bad, err)
		}
	}

	// Parameterized axes flow through: a burst admission with k=2 and an
	// aged-SLO priority build without error and keep their spec name.
	spec = "compose,order=priority_fcfs,admit=burst,prio=slo_age,k=2,base=1,age_weight=0.5"
	s, err = NewStrategySpec(spec)
	if err != nil {
		t.Fatalf("NewStrategySpec(%q): %v", spec, err)
	}
	if s.Name() != spec {
		t.Errorf("composition named %q, want %q", s.Name(), spec)
	}
}
