package registry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Type is the value type of a component parameter. The paper's parameters
// are numeric: counts and seeds are Int (carried as int64, so seeds
// round-trip exactly), rates and exponents are Float. Str names another
// registered component — the compose strategy's axis references.
type Type int

const (
	Int Type = iota
	Float
	Str
)

func (t Type) String() string {
	switch t {
	case Float:
		return "float"
	case Str:
		return "string"
	}
	return "int"
}

// Value is one typed parameter value.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// IntVal, FloatVal and StrVal build Values.
func IntVal(i int64) Value     { return Value{T: Int, I: i} }
func FloatVal(f float64) Value { return Value{T: Float, F: f} }
func StrVal(s string) Value    { return Value{T: Str, S: s} }

// Num returns the value as a float64 regardless of type (for range checks;
// Str values have no numeric form and no bounds).
func (v Value) Num() float64 {
	switch v.T {
	case Int:
		return float64(v.I)
	case Str:
		return 0
	}
	return v.F
}

func (v Value) String() string {
	switch v.T {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Str:
		return v.S
	}
	// 'g' with -1 precision is the shortest representation that parses back
	// to exactly the same float64, so FormatParams/ParseParams round-trip.
	return strconv.FormatFloat(v.F, 'g', -1, 64)
}

// Param is one entry of a component's parameter schema.
type Param struct {
	// Name is the parameter's stable name; for adversary and workload
	// components it matches the grid.BuildSpec JSON field carrying it.
	Name string
	// Doc is a one-line description shown by -describe.
	Doc string
	// Type is the value type; values of the other type are rejected.
	Type Type
	// Default is the value used when the parameter is omitted.
	Default Value
	// Min and Max are optional inclusive bounds (nil: unbounded).
	Min, Max *float64
	// Group optionally names a parameter group ("" is the component's own
	// ungrouped schema). Describe renders each group under its own heading,
	// e.g. the shared service-model group on every strategy and workload.
	Group string
}

// Bound is a convenience for building *float64 range limits.
func Bound(f float64) *float64 { return &f }

func (p Param) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s (default %s", p.Name, p.Type, p.Default)
	if p.Min != nil && p.Max != nil {
		fmt.Fprintf(&sb, ", range [%g, %g]", *p.Min, *p.Max)
	} else if p.Min != nil {
		fmt.Fprintf(&sb, ", min %g", *p.Min)
	} else if p.Max != nil {
		fmt.Fprintf(&sb, ", max %g", *p.Max)
	}
	sb.WriteString(")")
	if p.Doc != "" {
		sb.WriteString(" — " + p.Doc)
	}
	return sb.String()
}

// Params maps parameter names to values. A nil map is a valid empty set.
type Params map[string]Value

// Int returns the named parameter as an int. The value must exist (call
// Component.Apply first to fill defaults).
func (p Params) Int(name string) int { return int(p[name].I) }

// Int64 returns the named parameter as an int64 (seeds).
func (p Params) Int64(name string) int64 { return p[name].I }

// Float returns the named parameter as a float64.
func (p Params) Float(name string) float64 { return p[name].F }

// Str returns the named parameter as a string.
func (p Params) Str(name string) string { return p[name].S }

// Clone returns a copy of p.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Equal reports whether two parameter sets hold exactly the same values.
func (p Params) Equal(q Params) bool {
	if len(p) != len(q) {
		return false
	}
	for k, v := range p {
		w, ok := q[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

func (p Params) String() string {
	names := make([]string, 0, len(p))
	for name := range p {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = name + "=" + p[name].String()
	}
	return strings.Join(parts, ",")
}

// param looks up the schema entry for name.
func (c Component) param(name string) (Param, bool) {
	for _, p := range c.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Validate checks p against the component's schema: every name must be
// declared, every value must have the declared type and lie within the
// declared bounds, and the component's extra Check (if any) must accept the
// completed set. Missing parameters are not an error — Apply fills defaults.
func (c Component) Validate(p Params) error {
	for name, v := range p {
		sp, ok := c.param(name)
		if !ok {
			return fmt.Errorf("registry: %s %q: unknown parameter %q (schema: %s)",
				c.Kind, c.Name, name, c.schemaNames())
		}
		if v.T != sp.Type {
			return fmt.Errorf("registry: %s %q: parameter %q is %s, got %s value %s",
				c.Kind, c.Name, name, sp.Type, v.T, v)
		}
		// Non-finite floats must be rejected explicitly: NaN compares false
		// against any bound (so it would sail through Min/Max), and ±Inf
		// passes any one-sided bound. Once parameters arrive over the wire
		// (cmd/serve -strategy, HTTP-configured components) this is an input
		// validation hole, not a curiosity.
		if v.T == Float && (math.IsNaN(v.F) || math.IsInf(v.F, 0)) {
			return fmt.Errorf("registry: %s %q: parameter %q = %s is not a finite number",
				c.Kind, c.Name, name, v)
		}
		if sp.Min != nil && v.Num() < *sp.Min {
			return fmt.Errorf("registry: %s %q: parameter %q = %s below minimum %g",
				c.Kind, c.Name, name, v, *sp.Min)
		}
		if sp.Max != nil && v.Num() > *sp.Max {
			return fmt.Errorf("registry: %s %q: parameter %q = %s above maximum %g",
				c.Kind, c.Name, name, v, *sp.Max)
		}
	}
	if c.Check != nil {
		if err := c.Check(c.fill(p)); err != nil {
			return fmt.Errorf("registry: %s %q: %w", c.Kind, c.Name, err)
		}
	}
	return nil
}

// fill returns p with defaults for every omitted schema parameter.
func (c Component) fill(p Params) Params {
	out := make(Params, len(c.Params))
	for _, sp := range c.Params {
		if v, ok := p[sp.Name]; ok {
			out[sp.Name] = v
		} else {
			out[sp.Name] = sp.Default
		}
	}
	return out
}

// Apply validates p and returns the complete parameter set with defaults
// filled in — the form the component constructors consume.
func (c Component) Apply(p Params) (Params, error) {
	if err := c.Validate(p); err != nil {
		return nil, err
	}
	return c.fill(p), nil
}

// Defaults returns the component's complete default parameter set.
func (c Component) Defaults() Params { return c.fill(nil) }

func (c Component) schemaNames() string {
	if len(c.Params) == 0 {
		return "none"
	}
	names := make([]string, len(c.Params))
	for i, p := range c.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// ParseParams parses a "name=value,name=value" string against the schema.
// The empty string is the empty set. Values are parsed per the declared
// type, so "seed=9007199254740993" keeps int64 precision. The result is
// validated (unknown names, types, bounds, Check).
func (c Component) ParseParams(s string) (Params, error) {
	p := Params{}
	if strings.TrimSpace(s) == "" {
		if err := c.Validate(p); err != nil {
			return nil, err
		}
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("registry: %s %q: parameter %q is not name=value",
				c.Kind, c.Name, part)
		}
		name, val = strings.TrimSpace(name), strings.TrimSpace(val)
		sp, found := c.param(name)
		if !found {
			return nil, fmt.Errorf("registry: %s %q: unknown parameter %q (schema: %s)",
				c.Kind, c.Name, name, c.schemaNames())
		}
		if _, dup := p[name]; dup {
			return nil, fmt.Errorf("registry: %s %q: duplicate parameter %q", c.Kind, c.Name, name)
		}
		switch sp.Type {
		case Int:
			i, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("registry: %s %q: parameter %q: %q is not an int",
					c.Kind, c.Name, name, val)
			}
			p[name] = IntVal(i)
		case Float:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("registry: %s %q: parameter %q: %q is not a float",
					c.Kind, c.Name, name, val)
			}
			p[name] = FloatVal(f)
		case Str:
			p[name] = StrVal(val)
		}
	}
	if err := c.Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// FormatParams renders p canonically: schema order, one name=value per
// parameter, defaults omitted. ParseParams(FormatParams(p)) reproduces p
// minus explicitly-set default values, and formatting is stable across runs.
func (c Component) FormatParams(p Params) string {
	var parts []string
	for _, sp := range c.Params {
		if v, ok := p[sp.Name]; ok && v != sp.Default {
			parts = append(parts, sp.Name+"="+v.String())
		}
	}
	return strings.Join(parts, ",")
}
