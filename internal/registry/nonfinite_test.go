package registry

import (
	"math"
	"strings"
	"testing"
)

// TestNonFiniteFloatParamsRejected pins the NaN/Inf input-validation fix:
// NaN compares false against every bound, so it used to sail through Min/Max
// checks, and ±Inf passes any one-sided bound. With parameters arriving over
// HTTP (cmd/serve -strategy, wire-configured workloads) these must be
// rejected at the validation layer, not crash a generator later.
func TestNonFiniteFloatParamsRejected(t *testing.T) {
	uniform, ok := Get(KindWorkload, "uniform") // rate: Float with Min 0 only
	if !ok {
		t.Fatal("workload uniform not registered")
	}
	zipf, ok := Get(KindWorkload, "zipf") // s: Float guarded only by a Check
	if !ok {
		t.Fatal("workload zipf not registered")
	}

	// ParseParams path: strconv.ParseFloat accepts all these spellings.
	for _, tc := range []struct {
		comp Component
		args string
	}{
		{uniform, "rate=NaN"},
		{uniform, "rate=+Inf"},
		{uniform, "rate=Inf"},
		{uniform, "rate=-Inf"},
		{zipf, "s=NaN"},
		{zipf, "s=+Inf"},
	} {
		p, err := tc.comp.ParseParams(tc.args)
		if err == nil {
			t.Errorf("%s %q: ParseParams(%q) accepted non-finite value (%v)",
				tc.comp.Kind, tc.comp.Name, tc.args, p)
			continue
		}
		if !strings.Contains(err.Error(), "finite") {
			t.Errorf("%s: error should name the non-finite value, got %v", tc.args, err)
		}
	}

	// Validate path: values constructed programmatically, not parsed.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := uniform.Validate(Params{"rate": FloatVal(f)}); err == nil {
			t.Errorf("Validate accepted rate=%v", f)
		}
	}

	// Finite values at the bounds still pass.
	if _, err := uniform.ParseParams("rate=0"); err != nil {
		t.Errorf("rate=0 should be valid: %v", err)
	}
	if _, err := zipf.ParseParams("s=1.5"); err != nil {
		t.Errorf("s=1.5 should be valid: %v", err)
	}
}
