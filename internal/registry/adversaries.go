package registry

import (
	"fmt"

	"reqsched/internal/adversary"
)

// Adversary parameter schemas reuse the grid.BuildSpec JSON field names, so
// a (name, params) record translates to the wire format without renaming.
func dParam(doc string, def int64) Param {
	return Param{Name: "d", Doc: doc, Type: Int, Default: IntVal(def), Min: Bound(1)}
}

func phasesParam(doc string) Param {
	return Param{Name: "phases", Doc: doc, Type: Int, Default: IntVal(40), Min: Bound(1)}
}

func init() {
	Register(Component{
		Kind: KindAdversary, Name: "fix",
		Doc: "Theorem 2.1 input forcing 2-1/d on A_fix",
		Params: []Param{
			dParam("deadline window (>= 2)", 4),
			phasesParam("trap phases (the additive constant washes out as this grows)"),
		},
		Check: needs("d >= 2", func(p Params) bool { return p.Int("d") >= 2 }),
		Build: func(p Params) adversary.Construction {
			return adversary.Fix(p.Int("d"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "current",
		Doc: "Theorem 2.2 input forcing e/(e-1) (as l grows) on A_current; d = lcm(1..l)",
		Params: []Param{
			{Name: "l", Doc: "group count (>= 2; d = lcm(1..l))", Type: Int, Default: IntVal(4), Min: Bound(2), Max: Bound(12)},
			phasesParam("repetitions of the l-group pattern"),
		},
		Build: func(p Params) adversary.Construction {
			return adversary.Current(p.Int("l"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "current_factorial",
		Doc: "the Theorem 2.2 construction exactly as printed, with d = l! (beware trace size beyond l=7)",
		Params: []Param{
			{Name: "l", Doc: "group count (>= 2; d = l!)", Type: Int, Default: IntVal(4), Min: Bound(2), Max: Bound(8)},
			phasesParam("repetitions of the l-group pattern"),
		},
		Build: func(p Params) adversary.Construction {
			return adversary.CurrentFactorial(p.Int("l"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "fix_balance",
		Doc: "Theorem 2.3 input forcing 3d/(2d+2) on A_fix_balance (even d)",
		Params: []Param{
			dParam("deadline window (even, >= 2)", 4),
			phasesParam("trap phases"),
		},
		Check: needs("even d >= 2", func(p Params) bool { d := p.Int("d"); return d >= 2 && d%2 == 0 }),
		Build: func(p Params) adversary.Construction {
			return adversary.FixBalance(p.Int("d"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "eager",
		Doc: "Theorem 2.4 input forcing 4/3 on A_eager (and, at d=2, on A_current, A_fix_balance, A_balance)",
		Params: []Param{
			dParam("deadline window (even, >= 2)", 4),
			phasesParam("trap phases"),
		},
		Check: needs("even d >= 2", func(p Params) bool { d := p.Int("d"); return d >= 2 && d%2 == 0 }),
		Build: func(p Params) adversary.Construction {
			return adversary.Eager(p.Int("d"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "balance",
		Doc: "Theorem 2.5 input forcing (5d+2)/(4d+1) on A_balance for d = 3x-1, with k independent resource groups",
		Params: []Param{
			{Name: "x", Doc: "group size parameter (d = 3x-1)", Type: Int, Default: IntVal(2), Min: Bound(1)},
			{Name: "k", Doc: "independent resource groups (bound tightens as k grows)", Type: Int, Default: IntVal(32), Min: Bound(1)},
			phasesParam("intervals per group"),
		},
		Build: func(p Params) adversary.Construction {
			return adversary.Balance(p.Int("x"), p.Int("k"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "universal",
		Doc: "Theorem 2.6 adaptive adversary forcing at least 45/41 on every deterministic algorithm (3 | d)",
		Params: []Param{
			dParam("deadline window (divisible by 3)", 6),
			phasesParam("adversary cycles"),
		},
		Check: needs("d divisible by 3", func(p Params) bool { d := p.Int("d"); return d >= 3 && d%3 == 0 }),
		Build: func(p Params) adversary.Construction {
			return adversary.Universal(p.Int("d"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "universal_anyd",
		Doc: "Theorem 2.6 remark variant for deadlines not divisible by three (>= 12/11 for every d >= 4)",
		Params: []Param{
			dParam("deadline window (>= 4)", 4),
			phasesParam("adversary cycles"),
		},
		Check: needs("d >= 4", func(p Params) bool { return p.Int("d") >= 4 }),
		Build: func(p Params) adversary.Construction {
			return adversary.UniversalAnyD(p.Int("d"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "local_fix",
		Doc: "Theorem 3.7 input forcing exactly 2 on A_local_fix",
		Params: []Param{
			dParam("deadline window (>= 1)", 4),
			phasesParam("trap intervals"),
		},
		Build: func(p Params) adversary.Construction {
			return adversary.LocalFix(p.Int("d"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "hold_squeeze",
		Doc: "reusable-resources input forcing exactly 2 on the greedy router under hold=k, cap=1 (cf. arXiv 2304.03377)",
		Params: []Param{
			{Name: "hold", Doc: "service hold time in rounds (>= 2)", Type: Int, Default: IntVal(4), Min: Bound(2), Max: Bound(1024)},
			phasesParam("gadget epochs (the ratio is exactly 2 at every count)"),
		},
		Build: func(p Params) adversary.Construction {
			return adversary.HoldSqueeze(p.Int("hold"), p.Int("phases"))
		},
	})
	Register(Component{
		Kind: KindAdversary, Name: "edf",
		Doc: "input family on which independent-copies EDF is exactly 2-competitive (Observation 3.2)",
		Params: []Param{
			dParam("deadline window (>= 1)", 4),
			phasesParam("trap intervals"),
		},
		Build: func(p Params) adversary.Construction {
			return adversary.EDFWorstCase(p.Int("d"), p.Int("phases"))
		},
	})
}

// needs adapts a predicate into a Check error.
func needs(what string, ok func(Params) bool) func(Params) error {
	return func(p Params) error {
		if !ok(p) {
			return fmt.Errorf("needs %s", what)
		}
		return nil
	}
}
