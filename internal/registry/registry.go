// Package registry is the declarative component catalog of the
// reproduction: every online strategy, adversarial construction, synthetic
// workload generator, and offline objective registers a typed descriptor
// carrying a stable name, a one-line doc, a parameter schema (defaults,
// types, bounds), and a constructor. The catalog is what makes the
// evaluation surface data instead of code — grid manifests, the runner
// pipeline, and every cmd/ frontend resolve components by (kind, name,
// params) records, so adding a strategy or workload family is one
// registration plus tests, not an edit to nine binaries.
//
// Registrations live in this package's strategies.go, adversaries.go,
// workloads.go, and objectives.go, keyed by the names the CLIs and the
// grid.BuildSpec wire format have always used; the completeness tests pin
// the catalog against the exported constructor surface so the two cannot
// drift.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/policy"
)

// Kind partitions the catalog.
type Kind string

const (
	// KindStrategy is an online scheduling strategy (global or local).
	KindStrategy Kind = "strategy"
	// KindAdversary is a lower-bound construction (fixed trace or adaptive).
	KindAdversary Kind = "adversary"
	// KindWorkload is a synthetic trace generator.
	KindWorkload Kind = "workload"
	// KindObjective is an offline optimum objective.
	KindObjective Kind = "objective"
	// KindRouter is a policy axis: which resource serves each request.
	KindRouter Kind = "router"
	// KindOrder is a policy axis: which pending request is served first.
	KindOrder Kind = "order"
	// KindAdmission is a policy axis: accept or reject a request on arrival.
	KindAdmission Kind = "admission"
	// KindPriority is a policy axis: a score per request feeding the order.
	KindPriority Kind = "priority"
)

// Kinds lists the catalog partitions in display order. The last four are the
// policy axes the "compose" strategy assembles (see internal/policy).
func Kinds() []Kind {
	return []Kind{KindStrategy, KindAdversary, KindWorkload, KindObjective,
		KindRouter, KindOrder, KindAdmission, KindPriority}
}

// Component is one catalog entry. Exactly one of the constructor fields is
// set, matching Kind. Constructors receive a complete parameter set (Apply
// fills defaults), so they do not re-validate.
type Component struct {
	Kind Kind
	// Name is the stable registry name; for strategies it equals the
	// instance's Name(), for adversaries and workloads it is the
	// grid.BuildSpec kind string.
	Name string
	// Doc is the one-line description shown by -list and -describe.
	Doc string
	// Params is the parameter schema, in canonical (serialization) order.
	Params []Param
	// Check optionally rejects parameter combinations the per-parameter
	// bounds cannot express (e.g. "d must be divisible by 3"). It runs on
	// the default-filled set.
	Check func(Params) error

	// Listed marks strategies included in the default "every strategy"
	// iteration of the CLIs (schedsim -all, sweep -mode load, the facade's
	// Strategies map). Unlisted components remain addressable by name.
	Listed bool

	// Strategy constructs a fresh strategy instance (KindStrategy).
	Strategy func(Params) core.Strategy
	// Build constructs an adversarial input (KindAdversary).
	Build func(Params) adversary.Construction
	// Generate constructs a synthetic trace (KindWorkload).
	Generate func(Params) *core.Trace
	// Evaluate computes the offline objective on a trace with the given
	// worker-pool size (KindObjective).
	Evaluate func(tr *core.Trace, workers int) int
	// Router, Order, Priority and Admission construct policy-axis components
	// (KindRouter, KindOrder, KindPriority, KindAdmission).
	Router    func(Params) policy.Router
	Order     func(Params) policy.QueueOrder
	Priority  func(Params) policy.Priority
	Admission func(Params) policy.Admission
}

var catalog = map[Kind]map[string]Component{}

// Register adds a component to the catalog. It panics on a duplicate
// (kind, name) or a malformed descriptor — registration happens in this
// package's init functions, so any violation is a programming error caught
// by the first test that imports the package.
func Register(c Component) {
	if c.Name == "" {
		panic("registry: component with empty name")
	}
	ok := false
	switch c.Kind {
	case KindStrategy:
		ok = c.Strategy != nil
	case KindAdversary:
		ok = c.Build != nil
	case KindWorkload:
		ok = c.Generate != nil
	case KindObjective:
		ok = c.Evaluate != nil
	case KindRouter:
		ok = c.Router != nil
	case KindOrder:
		ok = c.Order != nil
	case KindPriority:
		ok = c.Priority != nil
	case KindAdmission:
		ok = c.Admission != nil
	default:
		panic(fmt.Sprintf("registry: %q: unknown kind %q", c.Name, c.Kind))
	}
	if !ok {
		panic(fmt.Sprintf("registry: %s %q: missing constructor", c.Kind, c.Name))
	}
	seen := map[string]bool{}
	for _, p := range c.Params {
		if seen[p.Name] {
			panic(fmt.Sprintf("registry: %s %q: duplicate parameter %q", c.Kind, c.Name, p.Name))
		}
		seen[p.Name] = true
		if p.Default.T != p.Type {
			panic(fmt.Sprintf("registry: %s %q: parameter %q default has wrong type", c.Kind, c.Name, p.Name))
		}
	}
	m := catalog[c.Kind]
	if m == nil {
		m = map[string]Component{}
		catalog[c.Kind] = m
	}
	if _, dup := m[c.Name]; dup {
		panic(fmt.Sprintf("registry: duplicate %s %q", c.Kind, c.Name))
	}
	m[c.Name] = c
}

// Get returns the named component of the given kind.
func Get(kind Kind, name string) (Component, bool) {
	c, ok := catalog[kind][name]
	return c, ok
}

// Names returns the sorted names of every component of the given kind.
func Names(kind Kind) []string {
	names := make([]string, 0, len(catalog[kind]))
	for name := range catalog[kind] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every component of the given kind, sorted by name.
func All(kind Kind) []Component {
	names := Names(kind)
	out := make([]Component, len(names))
	for i, name := range names {
		out[i] = catalog[kind][name]
	}
	return out
}

// Find returns the component with the given name, searching every kind in
// Kinds() order — the -describe lookup, where names are unambiguous enough
// in practice (a kind-qualified "kind/name" form disambiguates if not).
func Find(name string) (Component, bool) {
	if kind, bare, ok := strings.Cut(name, "/"); ok {
		if c, found := Get(Kind(kind), bare); found {
			return c, true
		}
	}
	for _, kind := range Kinds() {
		if c, ok := Get(kind, name); ok {
			return c, true
		}
	}
	return Component{}, false
}

// NewStrategy constructs the named strategy with the given params (nil:
// defaults). It returns an error for unknown names or invalid params.
func NewStrategy(name string, p Params) (core.Strategy, error) {
	c, ok := Get(KindStrategy, name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown strategy %q", name)
	}
	full, err := c.Apply(p)
	if err != nil {
		return nil, err
	}
	return c.Strategy(full), nil
}

// NewStrategySpec resolves a "name[,key=value...]" strategy spec — the form
// every frontend accepts (-strategy flags, grid manifests, experiment
// suites) — and constructs the strategy. A bare name is the name with
// default parameters, so all pre-existing spec strings (and the job IDs
// derived from them) are unchanged.
func NewStrategySpec(spec string) (core.Strategy, error) {
	name, rest, _ := strings.Cut(spec, ",")
	c, ok := Get(KindStrategy, name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown strategy %q", name)
	}
	p, err := c.ParseParams(rest)
	if err != nil {
		return nil, err
	}
	return NewStrategy(name, p)
}

// NewRouter, NewOrder, NewPriority and NewAdmission construct policy-axis
// components with the given params (nil: defaults).
func NewRouter(name string, p Params) (policy.Router, error) {
	c, ok := Get(KindRouter, name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown router %q", name)
	}
	full, err := c.Apply(p)
	if err != nil {
		return nil, err
	}
	return c.Router(full), nil
}

// NewOrder constructs the named queue order.
func NewOrder(name string, p Params) (policy.QueueOrder, error) {
	c, ok := Get(KindOrder, name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown order %q", name)
	}
	full, err := c.Apply(p)
	if err != nil {
		return nil, err
	}
	return c.Order(full), nil
}

// NewPriority constructs the named priority.
func NewPriority(name string, p Params) (policy.Priority, error) {
	c, ok := Get(KindPriority, name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown priority %q", name)
	}
	full, err := c.Apply(p)
	if err != nil {
		return nil, err
	}
	return c.Priority(full), nil
}

// NewAdmission constructs the named admission policy.
func NewAdmission(name string, p Params) (policy.Admission, error) {
	c, ok := Get(KindAdmission, name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown admission %q", name)
	}
	full, err := c.Apply(p)
	if err != nil {
		return nil, err
	}
	return c.Admission(full), nil
}

// BuildAdversary constructs the named adversarial input with the given
// params (nil: defaults).
func BuildAdversary(name string, p Params) (adversary.Construction, error) {
	c, ok := Get(KindAdversary, name)
	if !ok {
		return adversary.Construction{}, fmt.Errorf("registry: unknown adversary %q", name)
	}
	full, err := c.Apply(p)
	if err != nil {
		return adversary.Construction{}, err
	}
	return c.Build(full), nil
}

// GenerateWorkload constructs the named synthetic trace with the given
// params (nil: defaults).
func GenerateWorkload(name string, p Params) (*core.Trace, error) {
	c, ok := Get(KindWorkload, name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown workload %q", name)
	}
	full, err := c.Apply(p)
	if err != nil {
		return nil, err
	}
	return c.Generate(full), nil
}

// BuildSource constructs an input from either catalog: adversary names win,
// then workload names (the two sets are disjoint; the completeness test
// enforces it). This is the resolution rule of grid.BuildSpec kinds.
func BuildSource(name string, p Params) (adversary.Construction, error) {
	if _, ok := Get(KindAdversary, name); ok {
		return BuildAdversary(name, p)
	}
	if _, ok := Get(KindWorkload, name); ok {
		tr, err := GenerateWorkload(name, p)
		if err != nil {
			return adversary.Construction{}, err
		}
		return adversary.Construction{Name: name, N: tr.N, D: tr.D, Trace: tr}, nil
	}
	return adversary.Construction{}, fmt.Errorf("registry: unknown adversary or workload %q", name)
}

// SourceComponent resolves name against the adversary catalog first, then
// the workload catalog — the schema lookup matching BuildSource.
func SourceComponent(name string) (Component, bool) {
	if c, ok := Get(KindAdversary, name); ok {
		return c, true
	}
	return Get(KindWorkload, name)
}

// ListedStrategies returns fresh instances of every Listed strategy (default
// params), keyed by name — the facade's Strategies() map.
func ListedStrategies() map[string]core.Strategy {
	out := map[string]core.Strategy{}
	for name, c := range catalog[KindStrategy] {
		if c.Listed {
			out[name] = c.Strategy(c.Defaults())
		}
	}
	return out
}

// Describe renders a component's full card: name, kind, doc, and parameter
// schema — the -describe output. Grouped parameters (Param.Group, e.g. the
// service-model group) render under their own "<group> parameters:" heading
// after the component's own schema, in first-appearance order, each line
// still carrying the default and bounds.
func (c Component) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %q\n  %s\n", c.Kind, c.Name, c.Doc)
	var own []Param
	var groups []string
	byGroup := map[string][]Param{}
	for _, p := range c.Params {
		if p.Group == "" {
			own = append(own, p)
			continue
		}
		if _, seen := byGroup[p.Group]; !seen {
			groups = append(groups, p.Group)
		}
		byGroup[p.Group] = append(byGroup[p.Group], p)
	}
	if len(c.Params) == 0 {
		sb.WriteString("  parameters: none\n")
		return sb.String()
	}
	if len(own) > 0 {
		sb.WriteString("  parameters:\n")
		for _, p := range own {
			fmt.Fprintf(&sb, "    %s\n", p)
		}
	}
	for _, g := range groups {
		fmt.Fprintf(&sb, "  %s parameters:\n", g)
		for _, p := range byGroup[g] {
			fmt.Fprintf(&sb, "    %s\n", p)
		}
	}
	return sb.String()
}
