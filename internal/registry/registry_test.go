package registry

import (
	"strings"
	"testing"

	"reqsched/internal/strategies"
)

// TestRegistryCompleteness pins the catalog: every strategy, adversary,
// workload and objective of the codebase is registered under its stable
// name, so -list/-describe and the record pipeline can reach all of them.
func TestRegistryCompleteness(t *testing.T) {
	wantListed := []string{
		"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance",
		"EDF", "EDF_coordinated", "first_fit",
		"A_local_fix", "A_local_eager", "A_local_eager_wide",
	}
	wantUnlisted := []string{"A_fix_w", "A_eager_w", "random_fit", "ranking", "compose"}
	for _, name := range append(append([]string{}, wantListed...), wantUnlisted...) {
		c, ok := Get(KindStrategy, name)
		if !ok {
			t.Errorf("strategy %q not registered", name)
			continue
		}
		if c.Doc == "" {
			t.Errorf("strategy %q has no doc line", name)
		}
		s, err := NewStrategy(name, nil)
		if err != nil {
			t.Errorf("NewStrategy(%q): %v", name, err)
		} else if name != "EDF" && s.Name() != name {
			// EDF registers under its paper name; every other strategy's
			// registry name is its Name().
			t.Errorf("strategy %q constructs %q", name, s.Name())
		}
	}
	if n := len(All(KindStrategy)); n != len(wantListed)+len(wantUnlisted) {
		t.Errorf("registry has %d strategies, want %d", n, len(wantListed)+len(wantUnlisted))
	}

	listed := ListedStrategies()
	if len(listed) != len(wantListed) {
		t.Errorf("ListedStrategies has %d entries, want %d", len(listed), len(wantListed))
	}
	for _, name := range wantListed {
		if _, ok := listed[name]; !ok {
			t.Errorf("listed strategy %q missing from ListedStrategies", name)
		}
	}
	// The package-level sets stay in sync with the registry.
	for name := range strategies.New() {
		if _, ok := Get(KindStrategy, name); !ok {
			t.Errorf("strategies.New() entry %q not registered", name)
		}
	}

	wantAdversaries := []string{
		"fix", "current", "current_factorial", "fix_balance", "eager",
		"balance", "universal", "universal_anyd", "local_fix", "edf",
		"hold_squeeze",
	}
	for _, name := range wantAdversaries {
		if _, ok := Get(KindAdversary, name); !ok {
			t.Errorf("adversary %q not registered", name)
			continue
		}
		if _, err := BuildAdversary(name, Params{"phases": IntVal(2)}); err != nil {
			t.Errorf("BuildAdversary(%q) with defaults: %v", name, err)
		}
	}
	if n := len(All(KindAdversary)); n != len(wantAdversaries) {
		t.Errorf("registry has %d adversaries, want %d", n, len(wantAdversaries))
	}

	wantWorkloads := []string{
		"uniform", "zipf", "bursty", "video", "single", "cchoice",
		"mixed", "weighted", "trapmix", "reusable",
	}
	for _, name := range wantWorkloads {
		if _, ok := Get(KindWorkload, name); !ok {
			t.Errorf("workload %q not registered", name)
			continue
		}
		tr, err := GenerateWorkload(name, Params{"rounds": IntVal(10), "rate": FloatVal(3)})
		if err != nil {
			t.Errorf("GenerateWorkload(%q) with defaults: %v", name, err)
		} else if tr == nil {
			t.Errorf("GenerateWorkload(%q) returned a nil trace", name)
		}
	}
	if n := len(All(KindWorkload)); n != len(wantWorkloads) {
		t.Errorf("registry has %d workloads, want %d", n, len(wantWorkloads))
	}

	wantObjectives := []string{"cardinality", "max_profit", "min_latency", "eds_greedy"}
	for _, name := range wantObjectives {
		if _, ok := Get(KindObjective, name); !ok {
			t.Errorf("objective %q not registered", name)
		}
	}
	if n := len(All(KindObjective)); n != len(wantObjectives) {
		t.Errorf("registry has %d objectives, want %d", n, len(wantObjectives))
	}

	// The policy axes: every router, order, admission and priority of
	// internal/policy and internal/strategies is registered and constructs.
	wantRouters := []string{"balance", "current", "eager", "first_fit", "fix", "fix_balance", "greedy"}
	for _, name := range wantRouters {
		if r, err := NewRouter(name, nil); err != nil {
			t.Errorf("NewRouter(%q): %v", name, err)
		} else if r.Name() != name {
			t.Errorf("router %q constructs %q", name, r.Name())
		}
	}
	if n := len(All(KindRouter)); n != len(wantRouters) {
		t.Errorf("registry has %d routers, want %d", n, len(wantRouters))
	}
	wantOrders := []string{"fcfs", "priority_fcfs", "sjf"}
	for _, name := range wantOrders {
		if o, err := NewOrder(name, nil); err != nil {
			t.Errorf("NewOrder(%q): %v", name, err)
		} else if o.Name() != name {
			t.Errorf("order %q constructs %q", name, o.Name())
		}
	}
	if n := len(All(KindOrder)); n != len(wantOrders) {
		t.Errorf("registry has %d orders, want %d", n, len(wantOrders))
	}
	wantAdmissions := []string{"always", "backlog", "burst", "token_bucket"}
	for _, name := range wantAdmissions {
		if a, err := NewAdmission(name, nil); err != nil {
			t.Errorf("NewAdmission(%q): %v", name, err)
		} else if a.Name() != name {
			t.Errorf("admission %q constructs %q", name, a.Name())
		}
	}
	if n := len(All(KindAdmission)); n != len(wantAdmissions) {
		t.Errorf("registry has %d admissions, want %d", n, len(wantAdmissions))
	}
	wantPriorities := []string{"constant", "slo_age", "weight"}
	for _, name := range wantPriorities {
		if pr, err := NewPriority(name, nil); err != nil {
			t.Errorf("NewPriority(%q): %v", name, err)
		} else if pr.Name() != name {
			t.Errorf("priority %q constructs %q", name, pr.Name())
		}
	}
	if n := len(All(KindPriority)); n != len(wantPriorities) {
		t.Errorf("registry has %d priorities, want %d", n, len(wantPriorities))
	}

	// Find resolves bare and kind-qualified names; Describe renders a schema.
	if _, ok := Find("balance"); !ok {
		t.Error("Find(balance) failed")
	}
	if _, ok := Find("adversary/balance"); !ok {
		t.Error("Find(adversary/balance) failed")
	}
	c, _ := Get(KindAdversary, "balance")
	if d := c.Describe(); !strings.Contains(d, "x") || !strings.Contains(d, "k") {
		t.Errorf("Describe lacks the parameter schema:\n%s", d)
	}
}

// TestUnknownParamRejected: every parameterized component rejects a name
// outside its schema, both via Validate and via the string parser.
func TestUnknownParamRejected(t *testing.T) {
	for _, kind := range Kinds() {
		for _, c := range All(kind) {
			if err := c.Validate(Params{"no_such_param": IntVal(1)}); err == nil {
				t.Errorf("%s %q accepted an unknown parameter", c.Kind, c.Name)
			}
			if _, err := c.ParseParams("no_such_param=1"); err == nil {
				t.Errorf("%s %q parsed an unknown parameter", c.Kind, c.Name)
			}
		}
	}
}

// TestDuplicateParamRejected: ParseParams must reject a repeated key with a
// clear error instead of letting the last occurrence win silently — a
// "k=1,k=2" spec is a typo or a spoofed override, never intent. Regression
// test for the duplicate-key check in ParseParams; the FuzzParseParams
// corpus carries matching seeds.
func TestDuplicateParamRejected(t *testing.T) {
	cases := []struct {
		kind  Kind
		name  string
		parms string
	}{
		{KindWorkload, "uniform", "n=1,n=2"},
		{KindWorkload, "uniform", "seed=1, seed=1"}, // even identical repeats
		{KindAdversary, "balance", "k=1,x=2,k=3"},
		{KindStrategy, "compose", "router=greedy,router=balance"},
	}
	for _, tc := range cases {
		c, ok := Get(tc.kind, tc.name)
		if !ok {
			t.Fatalf("%s %q not registered", tc.kind, tc.name)
		}
		_, err := c.ParseParams(tc.parms)
		if err == nil {
			t.Errorf("%s %q accepted duplicate key in %q", tc.kind, tc.name, tc.parms)
			continue
		}
		if !strings.Contains(err.Error(), "duplicate parameter") {
			t.Errorf("%s %q: duplicate key error lacks a clear message: %v", tc.kind, tc.name, err)
		}
	}
}

// TestOutOfRangeRejected spot-checks schema bounds and component Checks.
func TestOutOfRangeRejected(t *testing.T) {
	cases := []struct {
		kind  Kind
		name  string
		parms string
	}{
		{KindWorkload, "uniform", "n=0"},
		{KindWorkload, "uniform", "rate=-1"},
		{KindWorkload, "zipf", "s=1.0"}, // rand.NewZipf is undefined at s <= 1
		{KindWorkload, "video", "items=1"},
		{KindAdversary, "current", "l=1"},
		{KindAdversary, "current", "l=99"},
		{KindAdversary, "balance", "x=0"},
		{KindAdversary, "fix", "phases=0"},
	}
	for _, tc := range cases {
		c, ok := Get(tc.kind, tc.name)
		if !ok {
			t.Fatalf("%s %q not registered", tc.kind, tc.name)
		}
		if _, err := c.ParseParams(tc.parms); err == nil {
			t.Errorf("%s %q accepted out-of-range %q", tc.kind, tc.name, tc.parms)
		}
	}
}

// bump returns a copy of p with one parameter nudged off its default, or ok
// false when the nudge violates the schema (e.g. a Max bound or a Check).
func bump(c Component, p Params, sp Param) (Params, bool) {
	q := p.Clone()
	switch sp.Type {
	case Int:
		q[sp.Name] = IntVal(sp.Default.I + 1)
	case Float:
		q[sp.Name] = FloatVal(sp.Default.F + 0.25)
	}
	if err := c.Validate(q); err != nil {
		return nil, false
	}
	return q, true
}

// TestParamRoundTrip: for every component and every parameter, a nudged
// value survives FormatParams -> ParseParams -> Apply bit-identically.
func TestParamRoundTrip(t *testing.T) {
	for _, kind := range Kinds() {
		for _, c := range All(kind) {
			if _, err := c.Apply(Params{}); err != nil {
				t.Errorf("%s %q rejects its own defaults: %v", c.Kind, c.Name, err)
				continue
			}
			for _, sp := range c.Params {
				p, ok := bump(c, Params{}, sp)
				if !ok {
					continue
				}
				s := c.FormatParams(p)
				q, err := c.ParseParams(s)
				if err != nil {
					t.Errorf("%s %q: ParseParams(%q): %v", c.Kind, c.Name, s, err)
					continue
				}
				pa, err1 := c.Apply(p)
				qa, err2 := c.Apply(q)
				if err1 != nil || err2 != nil {
					t.Errorf("%s %q: Apply after round trip: %v / %v", c.Kind, c.Name, err1, err2)
					continue
				}
				if !pa.Equal(qa) {
					t.Errorf("%s %q: round trip of %q diverged: %v vs %v", c.Kind, c.Name, s, pa, qa)
				}
			}
		}
	}
}

// FuzzParseParams hammers the string parameter parser: it must never panic,
// and anything it accepts must survive Apply (defaults fill + validation).
func FuzzParseParams(f *testing.F) {
	f.Add("uniform", "n=4,d=2,rounds=10")
	f.Add("zipf", "s=1.2")
	f.Add("balance", "x=2,k=16,phases=8")
	f.Add("current", "l=5")
	f.Add("video", "items=3,s=2.5")
	f.Add("uniform", "")
	f.Add("uniform", "n==3")
	f.Add("uniform", ",,,")
	f.Add("uniform", "n=9007199254740993")
	f.Add("uniform", "rate=NaN")
	f.Add("uniform", "n=-1,n=2")
	f.Add("uniform", "seed=1,seed=1")
	f.Add("compose", "router=greedy,order=sjf")
	f.Add("compose", "router=no_such_router")
	f.Add("compose", "prio=slo_age,base=1.5,age_weight=0.25")
	f.Add("compose", "admit=burst,k=2,admit=burst")
	f.Fuzz(func(t *testing.T, name, s string) {
		c, ok := Find(name)
		if !ok {
			c, _ = Get(KindWorkload, "uniform")
		}
		p, err := c.ParseParams(s)
		if err != nil {
			return
		}
		full, err := c.Apply(p)
		if err != nil {
			t.Fatalf("%s %q: ParseParams(%q) accepted params Apply rejects: %v", c.Kind, c.Name, s, err)
		}
		for _, sp := range c.Params {
			if _, ok := full[sp.Name]; !ok {
				t.Fatalf("%s %q: Apply left %q unset", c.Kind, c.Name, sp.Name)
			}
		}
	})
}
