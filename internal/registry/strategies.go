package registry

import (
	"reqsched/internal/core"
	"reqsched/internal/local"
	"reqsched/internal/strategies"
)

// seedParam is the schema of the two randomized strategies.
var seedParam = Param{
	Name: "seed", Doc: "random seed", Type: Int, Default: IntVal(1),
}

// strategy registers a parameterless strategy under its Name(). Every
// strategy schema carries the service-model group: the values do not change
// construction (the run's model comes from the trace, or serve's -hold/-cap
// flags), but "name,hold=k,cap=c" specs validate the strategy's support up
// front, so every frontend rejects unsupported combinations at parse time.
func strategy(doc string, listed bool, mk func() core.Strategy) {
	ctor := func(Params) core.Strategy { return mk() }
	Register(Component{
		Kind: KindStrategy, Name: mk().Name(), Doc: doc, Listed: listed,
		Params:   ModelParams(),
		Check:    modelCheck(ctor),
		Strategy: ctor,
	})
}

func init() {
	// The five global strategies of Table 1, the EDF references, and the
	// baselines — the set CLIs iterate by default (Listed).
	strategy("A_fix: admit a maximum set of new arrivals each round, never reschedule (Thm 2.1: ratio exactly 2-1/d)",
		true, func() core.Strategy { return strategies.NewFix() })
	strategy("A_current: maximum matching on the current round's slots only (Thm 2.2: between e/(e-1) and 2-1/d)",
		true, func() core.Strategy { return strategies.NewCurrent() })
	strategy("A_fix_balance: A_fix filling the earliest rounds first (Thm 2.3)",
		true, func() core.Strategy { return strategies.NewFixBalance() })
	strategy("A_eager: recompute a maximum matching every round, maximizing current service (Thm 2.4)",
		true, func() core.Strategy { return strategies.NewEager() })
	strategy("A_balance: A_eager with the full balance objective F — the paper's best simple strategy (Thm 2.5)",
		true, func() core.Strategy { return strategies.NewBalance() })
	strategy("independent-copies Earliest Deadline First (Obs 3.1/3.2: optimal single-choice, exactly 2 with two)",
		true, func() core.Strategy { return strategies.NewEDF() })
	strategy("EDF ablation that cancels sibling copies",
		true, func() core.Strategy { return strategies.NewEDFCoordinated() })
	strategy("first-fit baseline: earliest free slot on the first listed alternative",
		true, func() core.Strategy { return strategies.NewFirstFit() })

	// Local (distributed, message-passing) strategies.
	strategy("A_local_fix: two communication rounds per scheduling round, exactly 2-competitive (Thm 3.7)",
		true, func() core.Strategy { return local.NewFix() })
	strategy("A_local_eager: at most nine communication rounds per scheduling round, 5/3-competitive (Thm 3.8)",
		true, func() core.Strategy { return local.NewEager() })
	strategy("2d-2 mailbox variant of A_local_eager (eight communication rounds)",
		true, func() core.Strategy { return local.NewEagerWide() })

	// Weighted extension strategies (unlisted: they target weighted traces).
	strategy("weighted A_fix: heaviest arrivals admitted first, never reschedules",
		false, func() core.Strategy { return strategies.NewFixWeighted() })
	strategy("weighted rescheduler: maximum-total-weight matching every round",
		false, func() core.Strategy { return strategies.NewEagerWeighted() })

	// Randomized strategies (unlisted: parameterized by a seed).
	randomFit := func(p Params) core.Strategy {
		return strategies.NewRandomFit(p.Int64("seed"))
	}
	Register(Component{
		Kind: KindStrategy, Name: "random_fit",
		Doc:      "seeded random-slot baseline",
		Params:   append([]Param{seedParam}, ModelParams()...),
		Check:    modelCheck(randomFit),
		Strategy: randomFit,
	})
	ranking := func(p Params) core.Strategy {
		return strategies.NewRanking(p.Int64("seed"))
	}
	Register(Component{
		Kind: KindStrategy, Name: "ranking",
		Doc:      "RANKING-style randomized strategy: random fixed slot ranks, greedy minimum-rank assignment [KVV90]",
		Params:   append([]Param{seedParam}, ModelParams()...),
		Check:    modelCheck(ranking),
		Strategy: ranking,
	})
}
