package registry

import (
	"fmt"

	"reqsched/internal/core"
	"reqsched/internal/policy"
	"reqsched/internal/strategies"
)

// This file registers the four policy axes of internal/policy — router,
// order, admission, priority — and the "compose" strategy that assembles one
// component per axis into a runnable core.Strategy. The axis parameters
// (burst cap, backlog limit, SLO base/age weight) are shared Param values so
// the compose schema and the per-axis schemas cannot drift apart.

var (
	burstKParam = Param{
		Name: "k", Doc: "burst admission: arrivals accepted per round", Type: Int,
		Default: IntVal(16), Min: Bound(1),
	}
	backlogLimitParam = Param{
		Name: "limit", Doc: "backlog admission: carried unassigned backlog that closes intake", Type: Int,
		Default: IntVal(64), Min: Bound(0),
	}
	tbRateParam = Param{
		Name: "rate", Doc: "token_bucket admission: tokens refilled per round", Type: Float,
		Default: FloatVal(8), Min: Bound(0),
	}
	tbBurstParam = Param{
		Name: "burst", Doc: "token_bucket admission: bucket size (largest burst admitted untrimmed)", Type: Int,
		Default: IntVal(16), Min: Bound(1),
	}
	sloBaseParam = Param{
		Name: "base", Doc: "slo_age priority: base score", Type: Float,
		Default: FloatVal(0),
	}
	sloAgeWeightParam = Param{
		Name: "age_weight", Doc: "slo_age priority: score gained per round waited", Type: Float,
		Default: FloatVal(1),
	}
)

// router, order, priority register parameterless axis components under their
// Name().
func router(doc string, mk func() policy.Router) {
	Register(Component{
		Kind: KindRouter, Name: mk().Name(), Doc: doc,
		Router: func(Params) policy.Router { return mk() },
	})
}

func order(doc string, mk func() policy.QueueOrder) {
	Register(Component{
		Kind: KindOrder, Name: mk().Name(), Doc: doc,
		Order: func(Params) policy.QueueOrder { return mk() },
	})
}

func priorityComp(doc string, params []Param, mk func(Params) policy.Priority) {
	Register(Component{
		Kind: KindPriority, Name: mk(Component{Params: params}.Defaults()).Name(), Doc: doc,
		Params: params, Priority: mk,
	})
}

func admission(doc string, params []Param, mk func(Params) policy.Admission) {
	Register(Component{
		Kind: KindAdmission, Name: mk(Component{Params: params}.Defaults()).Name(), Doc: doc,
		Params: params, Admission: mk,
	})
}

func init() {
	// Routers: the paper strategies' resource-assignment bodies plus the two
	// matching-free baselines. compose(router=X, order=fcfs, admit=always,
	// prio=constant) is byte-identical to the fused strategy of the same
	// body — pinned by the equivalence tests and cmd/verify.
	router("A_fix body: keep prior assignments, match arrivals maximally into free slots",
		func() policy.Router { return strategies.NewFixRouter() })
	router("A_current body: maximum matching on the current round's slots only",
		func() policy.Router { return strategies.NewCurrentRouter() })
	router("A_fix_balance body: no rescheduling, F-maximal extension over free slots",
		func() policy.Router { return strategies.NewFixBalanceRouter() })
	router("A_eager body: recompute maximizing current-round service, keep scheduled requests scheduled",
		func() policy.Router { return strategies.NewEagerRouter() })
	router("A_balance body: recompute the F-maximal maximum matching, keep scheduled requests scheduled",
		func() policy.Router { return strategies.NewBalanceRouter() })
	router("retrying first-fit: every unassigned queued request tries its first free slot each round",
		func() policy.Router { return policy.GreedyRouter{} })
	router("first-fit baseline body: arrivals only, misses never retried",
		func() policy.Router { return policy.FirstFitRouter{} })

	// Queue orders.
	order("first come, first served: arrival (ID) order — the fused strategies' order",
		func() policy.QueueOrder { return policy.FCFS{} })
	order("shortest job first: tightest deadline window first (relieves head-of-line blocking)",
		func() policy.QueueOrder { return policy.SJF{} })
	order("descending priority score, FCFS within a class (combine with the priority axis)",
		func() policy.QueueOrder { return policy.PriorityFCFS{} })

	// Priorities.
	priorityComp("no priority signal: every request scores 0",
		nil, func(Params) policy.Priority { return policy.ConstantPriority{} })
	priorityComp("score = request weight: heavy (high-profit) requests first",
		nil, func(Params) policy.Priority { return policy.WeightPriority{} })
	priorityComp("aged SLO score = base + age_weight x rounds waited (anti-starvation)",
		[]Param{sloBaseParam, sloAgeWeightParam}, func(p Params) policy.Priority {
			return policy.SLOAgePriority{Base: p.Float("base"), AgeWeight: p.Float("age_weight")}
		})

	// Admissions.
	admission("accept every arrival (the paper's model)",
		nil, func(Params) policy.Admission { return policy.AdmitAll{} })
	admission("accept at most k arrivals per round, reject the rest",
		[]Param{burstKParam}, func(p Params) policy.Admission {
			return &policy.BurstAdmission{K: p.Int("k")}
		})
	admission("reject arrivals while the carried unassigned backlog is at or above limit",
		[]Param{backlogLimitParam}, func(p Params) policy.Admission {
			return &policy.BacklogAdmission{Limit: p.Int("limit")}
		})
	admission("token bucket: rate tokens accrue per round up to burst, one spent per admitted request",
		[]Param{tbRateParam, tbBurstParam}, func(p Params) policy.Admission {
			return &policy.TokenBucketAdmission{Rate: p.Float("rate"), Burst: p.Int("burst")}
		})

	registerCompose()
}

// axisParams projects the compose parameter set onto one axis component's
// schema (the names are shared, so the subset is exactly what the axis
// constructor expects).
func axisParams(c Component, p Params) Params {
	out := Params{}
	for _, sp := range c.Params {
		if v, ok := p[sp.Name]; ok {
			out[sp.Name] = v
		}
	}
	return out
}

func registerCompose() {
	axis := func(kind Kind, name string) (Component, error) {
		c, ok := Get(kind, name)
		if !ok {
			return Component{}, fmt.Errorf("unknown %s %q (%s)", kind, name, listNames(kind))
		}
		return c, nil
	}
	comp := Component{
		Kind: KindStrategy, Name: "compose",
		Doc: "composed strategy: any router x order x admission x priority (see the axis kinds in -list)",
		Params: append([]Param{
			{Name: "router", Doc: "router axis: which resource serves", Type: Str, Default: StrVal("balance")},
			{Name: "order", Doc: "order axis: which pending request first", Type: Str, Default: StrVal("fcfs")},
			{Name: "admit", Doc: "admission axis: accept/reject on arrival", Type: Str, Default: StrVal("always")},
			{Name: "prio", Doc: "priority axis: score feeding the order", Type: Str, Default: StrVal("constant")},
			burstKParam, backlogLimitParam, tbRateParam, tbBurstParam, sloBaseParam, sloAgeWeightParam,
		}, ModelParams()...),
	}
	build := func(p Params) (core.Strategy, error) {
		rc, err := axis(KindRouter, p.Str("router"))
		if err != nil {
			return nil, err
		}
		oc, err := axis(KindOrder, p.Str("order"))
		if err != nil {
			return nil, err
		}
		ac, err := axis(KindAdmission, p.Str("admit"))
		if err != nil {
			return nil, err
		}
		pc, err := axis(KindPriority, p.Str("prio"))
		if err != nil {
			return nil, err
		}
		r, err := NewRouter(rc.Name, axisParams(rc, p))
		if err != nil {
			return nil, err
		}
		o, err := NewOrder(oc.Name, axisParams(oc, p))
		if err != nil {
			return nil, err
		}
		a, err := NewAdmission(ac.Name, axisParams(ac, p))
		if err != nil {
			return nil, err
		}
		pr, err := NewPriority(pc.Name, axisParams(pc, p))
		if err != nil {
			return nil, err
		}
		// The instance name is the round-trippable spec: "compose" plus the
		// non-default parameters in canonical order.
		name := "compose"
		if fp := comp.FormatParams(p); fp != "" {
			name += "," + fp
		}
		return policy.NewComposite(name, r, o, pr, a), nil
	}
	comp.Check = func(p Params) error {
		s, err := build(p)
		if err != nil {
			return err
		}
		// The composite delegates model support to its router, so a
		// "compose,router=balance,hold=2" spec fails here, at parse time.
		return core.CheckModelSupport(s, ModelOf(p))
	}
	comp.Strategy = func(p Params) core.Strategy {
		// Check has validated the axes; construction cannot fail.
		s, err := build(p)
		if err != nil {
			panic(err)
		}
		return s
	}
	Register(comp)
}

// listNames renders the catalog names of one kind for error messages.
func listNames(kind Kind) string {
	names := Names(kind)
	if len(names) == 0 {
		return "none registered"
	}
	out := names[0]
	for _, n := range names[1:] {
		out += ", " + n
	}
	return out
}
