package registry

import (
	"reqsched/internal/core"
	"reqsched/internal/offline"
)

func init() {
	Register(Component{
		Kind: KindObjective, Name: "cardinality",
		Doc: "maximum number of requests an offline schedule serves (the competitive-ratio denominator's OPT)",
		Evaluate: func(tr *core.Trace, workers int) int {
			return offline.OptimumParallel(tr, workers)
		},
	})
	Register(Component{
		Kind: KindObjective, Name: "max_profit",
		Doc: "maximum total request weight an offline schedule serves (equals cardinality when unweighted)",
		Evaluate: func(tr *core.Trace, workers int) int {
			return offline.MaxProfitParallel(tr, workers)
		},
	})
	Register(Component{
		Kind: KindObjective, Name: "min_latency",
		Doc: "minimum total service latency among maximum-cardinality offline schedules",
		Evaluate: func(tr *core.Trace, workers int) int {
			_, lat := offline.OptimumMinLatencyParallel(tr, workers)
			return lat
		},
	})
	Register(Component{
		Kind: KindObjective, Name: "eds_greedy",
		Doc: "greedy earliest-deadline service count (optimal for single-choice traces, Observation 3.1)",
		Evaluate: func(tr *core.Trace, workers int) int {
			return offline.EarliestDeadlineSchedule(tr)
		},
	})
}
