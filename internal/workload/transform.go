package workload

import (
	"math/rand"

	"reqsched/internal/core"
)

// MixedDeadlines generates two-choice traffic where every request draws its
// own deadline window uniformly from [1, cfg.D]. The paper notes that the
// EDF observations extend to heterogeneous deadlines; this generator lets
// the tests exercise every strategy under them (the engine and all
// strategies support per-request windows).
func MixedDeadlines(cfg Config) *core.Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := core.NewBuilder(cfg.N, cfg.D)
	for t := 0; t < cfg.Rounds; t++ {
		k := poisson(rng, cfg.Rate)
		for i := 0; i < k; i++ {
			a, c := distinctPair(rng, cfg.N, func() int { return rng.Intn(cfg.N) })
			b.AddWindow(t, 1+rng.Intn(cfg.D), a, c)
		}
	}
	return b.Build()
}

// ShuffleAlts returns a copy of tr in which every request's alternative list
// is independently shuffled. The lower-bound adversaries steer the
// deterministic strategies through the *listing order* of alternatives;
// shuffling it is the tie-breaking ablation of DESIGN.md: it shows how much
// of each forced ratio survives when the adversary cannot predict the
// implementation's preference.
func ShuffleAlts(tr *core.Trace, seed int64) *core.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := core.NewBuilder(tr.N, tr.D)
	for t, rs := range tr.Arrivals {
		for i := range rs {
			alts := append([]int(nil), rs[i].Alts...)
			rng.Shuffle(len(alts), func(x, y int) { alts[x], alts[y] = alts[y], alts[x] })
			b.AddWindow(t, rs[i].D, alts...)
		}
	}
	return b.Build()
}

// TrapMix embeds Theorem 2.1-style traps into random background traffic: at
// random intervals a resource pair is flooded with a block while bridge
// requests baiting that pair arrive one round earlier. The blend is what a
// "realistic but occasionally adversarial" client population looks like, and
// separates the rescheduling strategies from the fix family far more than
// pure random load does. The background uses resources outside the trap
// pairs so the traps stay sharp.
func TrapMix(cfg Config, trapEvery int) *core.Trace {
	if cfg.N < 6 {
		panic("workload: TrapMix needs n >= 6 (two trap resources + background)")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := core.NewBuilder(cfg.N, cfg.D)
	d := cfg.D
	for t := 0; t < cfg.Rounds; t++ {
		// Background on resources 4..n-1.
		k := poisson(rng, cfg.Rate)
		for i := 0; i < k; i++ {
			span := cfg.N - 4
			a := 4 + rng.Intn(span)
			c := 4 + rng.Intn(span-1)
			if c >= a {
				c++
			}
			b.Add(t, a, c)
		}
		// Trap: bridges now, flood next round.
		if trapEvery > 0 && t%trapEvery == 0 && t+1 < cfg.Rounds {
			for i := 0; i < d-1; i++ {
				b.Add(t, 1, 0) // bridge baiting resource 1
				b.Add(t, 2, 3)
			}
			for i := 0; i < d; i++ {
				b.Add(t+1, 1, 2)
				b.Add(t+1, 2, 1)
			}
		}
	}
	return b.Build()
}

// WithWeights returns a copy of tr in which every request draws an integer
// weight from [1, maxW] under the same harmonic 1/w profile as the Weighted
// generator: most requests stay cheap, a heavy tail matters. It turns any
// trace shape — bursty, gapped, adversarial — into a weighted workload, which
// is how the weighted segmented solvers get property-tested on the Table 1
// constructions.
func WithWeights(tr *core.Trace, maxW int, seed int64) *core.Trace {
	if maxW < 1 {
		panic("workload: maxW must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	cum := make([]float64, maxW+1)
	for w := 1; w <= maxW; w++ {
		cum[w] = cum[w-1] + 1/float64(w)
	}
	drawW := func() int {
		x := rng.Float64() * cum[maxW]
		for w := 1; w <= maxW; w++ {
			if x <= cum[w] {
				return w
			}
		}
		return maxW
	}
	b := core.NewBuilder(tr.N, tr.D)
	for t, rs := range tr.Arrivals {
		for i := range rs {
			id := b.AddWindow(t, rs[i].D, rs[i].Alts...)
			b.SetWeight(id, drawW())
		}
	}
	return b.Build()
}

// ShuffleArrivalOrder returns a copy of tr in which the injection order
// within every round is shuffled (IDs are renumbered accordingly). The
// second half of the tie-breaking ablation: the adversaries also rely on
// processing order within a round.
func ShuffleArrivalOrder(tr *core.Trace, seed int64) *core.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := core.NewBuilder(tr.N, tr.D)
	for t, rs := range tr.Arrivals {
		perm := rng.Perm(len(rs))
		for _, i := range perm {
			b.AddWindow(t, rs[i].D, rs[i].Alts...)
		}
	}
	return b.Build()
}
