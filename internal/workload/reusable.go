package workload

import (
	"math/rand"

	"reqsched/internal/core"
)

// Reusable generates two-choice traffic sized to a non-unit service model:
// the trace carries m, and when cfg.Rate is 0 the arrival rate is derived
// from load as load * n * cap / hold — the model's steady-state service
// capacity is n*cap/hold starts per round, so load plays the same "1.0 =
// nominally saturated" role Rate = N plays for the unit generators. The
// alternatives are a uniformly random distinct pair, making the family the
// reusable-resources analogue of Uniform.
func Reusable(cfg Config, m core.ServiceModel, load float64) *core.Trace {
	m = m.Norm()
	rate := cfg.Rate
	if rate <= 0 {
		rate = load * float64(cfg.N) * float64(m.Cap) / float64(m.Hold)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := core.NewBuilder(cfg.N, cfg.D)
	if !m.IsUnit() {
		b.SetModel(m)
	}
	for t := 0; t < cfg.Rounds; t++ {
		k := poisson(rng, rate)
		for i := 0; i < k; i++ {
			a, c := distinctPair(rng, cfg.N, func() int { return rng.Intn(cfg.N) })
			b.Add(t, a, c)
		}
	}
	return b.Build()
}
