package workload

import (
	"testing"

	"reqsched/internal/core"
)

func cfg(seed int64) Config {
	return Config{N: 6, D: 4, Rounds: 30, Rate: 7, Seed: seed}
}

func TestGeneratorsProduceValidTraces(t *testing.T) {
	gens := map[string]func() *core.Trace{
		"uniform": func() *core.Trace { return Uniform(cfg(1)) },
		"zipf":    func() *core.Trace { return Zipf(cfg(2), 1.4) },
		"bursty":  func() *core.Trace { return Bursty(cfg(3), 4, 6, 20) },
		"video":   func() *core.Trace { return VideoServer(cfg(4), 50, 1.3) },
		"single":  func() *core.Trace { return SingleChoice(cfg(5)) },
		"cchoice": func() *core.Trace { return CChoice(cfg(6), 3) },
		"mixed":   func() *core.Trace { return MixedDeadlines(cfg(7)) },
	}
	for name, gen := range gens {
		tr := gen()
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.NumRequests() == 0 {
			t.Fatalf("%s: empty trace", name)
		}
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	a := Uniform(cfg(42))
	b := Uniform(cfg(42))
	c := Uniform(cfg(43))
	if a.NumRequests() != b.NumRequests() {
		t.Fatal("same seed differs")
	}
	ra, rb := a.Requests(), b.Requests()
	for i := range ra {
		if ra[i].Arrive != rb[i].Arrive || ra[i].Alts[0] != rb[i].Alts[0] {
			t.Fatal("same seed differs in content")
		}
	}
	if a.NumRequests() == c.NumRequests() {
		// Possible but astronomically unlikely to also match content;
		// check one differing request exists.
		diff := false
		rc := c.Requests()
		for i := range ra {
			if i < len(rc) && (ra[i].Alts[0] != rc[i].Alts[0] || ra[i].Alts[1] != rc[i].Alts[1]) {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestTwoChoiceAlternativesDistinct(t *testing.T) {
	for _, tr := range []*core.Trace{Uniform(cfg(8)), Zipf(cfg(9), 2.0), VideoServer(cfg(10), 30, 1.5)} {
		for _, r := range tr.Requests() {
			if len(r.Alts) != 2 || r.Alts[0] == r.Alts[1] {
				t.Fatalf("bad alternatives %v", r.Alts)
			}
		}
	}
}

func TestCChoiceAlternativeCount(t *testing.T) {
	for _, c := range []int{1, 2, 4} {
		tr := CChoice(cfg(11), c)
		for _, r := range tr.Requests() {
			if len(r.Alts) != c {
				t.Fatalf("c=%d: got %d alternatives", c, len(r.Alts))
			}
		}
	}
}

func TestCChoicePanicsWhenTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CChoice(Config{N: 2, D: 1, Rounds: 1, Rate: 1, Seed: 1}, 3)
}

func TestMixedDeadlinesSpansRange(t *testing.T) {
	tr := MixedDeadlines(Config{N: 4, D: 5, Rounds: 60, Rate: 8, Seed: 12})
	seen := map[int]bool{}
	for _, r := range tr.Requests() {
		if r.D < 1 || r.D > 5 {
			t.Fatalf("window %d out of range", r.D)
		}
		seen[r.D] = true
	}
	if len(seen) < 4 {
		t.Fatalf("only %d distinct windows in a long trace", len(seen))
	}
}

func TestBurstyActuallyBursts(t *testing.T) {
	tr := Bursty(Config{N: 4, D: 2, Rounds: 60, Rate: 1, Seed: 13}, 5, 10, 30)
	on, off := 0, 0
	onRounds, offRounds := 0, 0
	for t0, rs := range tr.Arrivals {
		if t0%15 < 5 {
			on += len(rs)
			onRounds++
		} else {
			off += len(rs)
			offRounds++
		}
	}
	if onRounds == 0 || offRounds == 0 {
		t.Fatal("phase accounting broken")
	}
	if float64(on)/float64(onRounds) < 3*float64(off)/float64(offRounds) {
		t.Fatalf("burst rate not visible: on=%d/%d off=%d/%d", on, onRounds, off, offRounds)
	}
}

func TestShuffleAltsPreservesStructure(t *testing.T) {
	orig := Uniform(cfg(14))
	sh := ShuffleAlts(orig, 99)
	if err := sh.Validate(); err != nil {
		t.Fatal(err)
	}
	if sh.NumRequests() != orig.NumRequests() {
		t.Fatal("request count changed")
	}
	ro, rs := orig.Requests(), sh.Requests()
	changed := false
	for i := range ro {
		if ro[i].Arrive != rs[i].Arrive || ro[i].D != rs[i].D {
			t.Fatal("arrival or deadline changed")
		}
		// Same multiset of alternatives.
		a0, a1 := ro[i].Alts[0], ro[i].Alts[1]
		b0, b1 := rs[i].Alts[0], rs[i].Alts[1]
		if !((a0 == b0 && a1 == b1) || (a0 == b1 && a1 == b0)) {
			t.Fatal("alternative multiset changed")
		}
		if a0 != b0 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("shuffle changed nothing across the whole trace")
	}
}

func TestShuffleArrivalOrderPreservesRounds(t *testing.T) {
	orig := Uniform(cfg(15))
	sh := ShuffleArrivalOrder(orig, 7)
	if err := sh.Validate(); err != nil {
		t.Fatal(err)
	}
	for t0 := range orig.Arrivals {
		if len(orig.Arrivals[t0]) != len(sh.Arrivals[t0]) {
			t.Fatalf("round %d count changed", t0)
		}
	}
}

func TestPoissonMeanRoughlyLambda(t *testing.T) {
	tr := Uniform(Config{N: 4, D: 2, Rounds: 2000, Rate: 5, Seed: 16})
	mean := float64(tr.NumRequests()) / 2000.0
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("poisson mean %.2f far from 5", mean)
	}
}

func TestTrapMixValidAndTrapped(t *testing.T) {
	tr := TrapMix(Config{N: 8, D: 4, Rounds: 60, Rate: 4, Seed: 30}, 12)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Trap rounds carry the bridge + flood pattern on resources 0..3.
	sawTrap := false
	for _, r := range tr.Requests() {
		if r.Alts[0] == 1 && r.Alts[1] == 2 {
			sawTrap = true
		}
		// Background stays off the trap pair's first positions except traps.
	}
	if !sawTrap {
		t.Fatal("no trap blocks present")
	}
}

func TestTrapMixNeedsSixResources(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrapMix(Config{N: 4, D: 2, Rounds: 5, Rate: 1, Seed: 1}, 2)
}
