// Package workload generates synthetic request traces for the empirical
// comparisons: uniform two-choice traffic, Zipf hot spots, bursty on/off
// load, a video-on-demand catalog (the paper's motivating application), and
// the single-/c-choice variants used by the EDF observations. All generators
// are deterministic given their seed.
package workload

import (
	"math"
	"math/rand"

	"reqsched/internal/core"
)

// Config carries the parameters shared by all generators.
type Config struct {
	// N is the number of resources; D the deadline window.
	N, D int
	// Rounds is the number of rounds with arrivals.
	Rounds int
	// Rate is the mean number of arrivals per round (Poisson distributed).
	// Rate = N corresponds to nominal 100% load.
	Rate float64
	// Seed seeds the generator.
	Seed int64
}

// poisson draws a Poisson(lambda) variate (Knuth's product method; fine for
// the modest rates used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// distinctPair returns two distinct resources; the first is drawn by first()
// and the second uniformly among the rest.
func distinctPair(rng *rand.Rand, n int, first func() int) (int, int) {
	a := first()
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// Uniform generates two-choice requests whose alternatives are a uniformly
// random distinct pair.
func Uniform(cfg Config) *core.Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := core.NewBuilder(cfg.N, cfg.D)
	for t := 0; t < cfg.Rounds; t++ {
		k := poisson(rng, cfg.Rate)
		for i := 0; i < k; i++ {
			a, c := distinctPair(rng, cfg.N, func() int { return rng.Intn(cfg.N) })
			b.Add(t, a, c)
		}
	}
	return b.Build()
}

// Zipf generates two-choice requests whose first alternative follows a Zipf
// distribution with exponent s > 1 (a hot-spot pattern: a few disks hold the
// popular data), second alternative uniform among the rest.
func Zipf(cfg Config, s float64) *core.Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(rng, s, 1, uint64(cfg.N-1))
	b := core.NewBuilder(cfg.N, cfg.D)
	for t := 0; t < cfg.Rounds; t++ {
		k := poisson(rng, cfg.Rate)
		for i := 0; i < k; i++ {
			a, c := distinctPair(rng, cfg.N, func() int { return int(z.Uint64()) })
			b.Add(t, a, c)
		}
	}
	return b.Build()
}

// Bursty alternates onLen rounds at burstRate arrivals/round with offLen
// quiet rounds at cfg.Rate — the correlated-arrival pattern the paper's
// adversarial model is meant to capture.
func Bursty(cfg Config, onLen, offLen int, burstRate float64) *core.Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := core.NewBuilder(cfg.N, cfg.D)
	period := onLen + offLen
	for t := 0; t < cfg.Rounds; t++ {
		rate := cfg.Rate
		if t%period < onLen {
			rate = burstRate
		}
		k := poisson(rng, rate)
		for i := 0; i < k; i++ {
			a, c := distinctPair(rng, cfg.N, func() int { return rng.Intn(cfg.N) })
			b.Add(t, a, c)
		}
	}
	return b.Build()
}

// VideoServer models the paper's motivating application: a catalog of
// `items` data items, each replicated on two distinct disks chosen at setup
// (random duplicated assignment, cf. [Kor97]), with request popularity Zipf
// with exponent s. Correlated demand for a hot item hammers the same two
// disks — the case where two-choice scheduling matters.
func VideoServer(cfg Config, items int, s float64) *core.Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	type replica struct{ a, b int }
	catalog := make([]replica, items)
	for i := range catalog {
		a, c := distinctPair(rng, cfg.N, func() int { return rng.Intn(cfg.N) })
		catalog[i] = replica{a, c}
	}
	z := rand.NewZipf(rng, s, 1, uint64(items-1))
	b := core.NewBuilder(cfg.N, cfg.D)
	for t := 0; t < cfg.Rounds; t++ {
		k := poisson(rng, cfg.Rate)
		for i := 0; i < k; i++ {
			it := catalog[z.Uint64()]
			// Preference order randomized so neither replica is special.
			if rng.Intn(2) == 0 {
				b.Add(t, it.a, it.b)
			} else {
				b.Add(t, it.b, it.a)
			}
		}
	}
	return b.Build()
}

// SingleChoice generates requests naming exactly one resource — the
// Observation 3.1 setting, with per-request deadlines in [1, cfg.D].
func SingleChoice(cfg Config) *core.Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := core.NewBuilder(cfg.N, cfg.D)
	for t := 0; t < cfg.Rounds; t++ {
		k := poisson(rng, cfg.Rate)
		for i := 0; i < k; i++ {
			b.AddWindow(t, 1+rng.Intn(cfg.D), rng.Intn(cfg.N))
		}
	}
	return b.Build()
}

// Weighted generates uniform two-choice traffic where each request draws a
// weight from {1, ..., maxW} with heavy requests rare (weight w with
// probability proportional to 1/w) — priority classes for the weighted
// extension.
func Weighted(cfg Config, maxW int) *core.Trace {
	if maxW < 1 {
		panic("workload: maxW must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Harmonic cumulative table for the 1/w distribution.
	cum := make([]float64, maxW+1)
	for w := 1; w <= maxW; w++ {
		cum[w] = cum[w-1] + 1/float64(w)
	}
	drawW := func() int {
		x := rng.Float64() * cum[maxW]
		for w := 1; w <= maxW; w++ {
			if x <= cum[w] {
				return w
			}
		}
		return maxW
	}
	b := core.NewBuilder(cfg.N, cfg.D)
	for t := 0; t < cfg.Rounds; t++ {
		k := poisson(rng, cfg.Rate)
		for i := 0; i < k; i++ {
			a, c := distinctPair(rng, cfg.N, func() int { return rng.Intn(cfg.N) })
			b.AddWeighted(t, drawW(), a, c)
		}
	}
	return b.Build()
}

// CChoice generates requests with c distinct alternatives in random order —
// the extension under which EDF is c-competitive.
func CChoice(cfg Config, c int) *core.Trace {
	if c > cfg.N {
		panic("workload: more alternatives than resources")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := core.NewBuilder(cfg.N, cfg.D)
	for t := 0; t < cfg.Rounds; t++ {
		k := poisson(rng, cfg.Rate)
		for i := 0; i < k; i++ {
			alts := rng.Perm(cfg.N)[:c]
			b.Add(t, alts...)
		}
	}
	return b.Build()
}
