package matching

import (
	"math/rand"
	"testing"
)

func TestSymmetricDifferenceIdenticalMatchings(t *testing.T) {
	m := NewMatching(3, 3)
	m.Match(0, 1)
	m.Match(2, 0)
	if comps := SymmetricDifference(m, m.Clone()); len(comps) != 0 {
		t.Fatalf("identical matchings gave %d components", len(comps))
	}
}

func TestSymmetricDifferenceSingleAugmentingPath(t *testing.T) {
	// M1 = {(0,0)}; M2 = {(0,1),(1,0)}: difference is the path 1-0-0-1
	// (left1, right0, left0, right1), augmenting for M1.
	m1 := NewMatching(2, 2)
	m1.Match(0, 0)
	m2 := NewMatching(2, 2)
	m2.Match(0, 1)
	m2.Match(1, 0)
	comps := SymmetricDifference(m1, m2)
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	c := comps[0]
	if c.Cycle {
		t.Fatal("path classified as cycle")
	}
	if c.Len() != 3 {
		t.Fatalf("path length %d want 3", c.Len())
	}
	if !AugmentingFor(&c, m1) {
		t.Fatal("path should be augmenting for m1")
	}
	if AugmentingFor(&c, m2) {
		t.Fatal("path must not be augmenting for m2")
	}
}

func TestSymmetricDifferenceCycle(t *testing.T) {
	// M1 = {(0,0),(1,1)}; M2 = {(0,1),(1,0)}: an alternating 4-cycle.
	m1 := NewMatching(2, 2)
	m1.Match(0, 0)
	m1.Match(1, 1)
	m2 := NewMatching(2, 2)
	m2.Match(0, 1)
	m2.Match(1, 0)
	comps := SymmetricDifference(m1, m2)
	if len(comps) != 1 || !comps[0].Cycle {
		t.Fatalf("expected one cycle, got %+v", comps)
	}
	if AugmentingFor(&comps[0], m1) {
		t.Fatal("cycle is never augmenting")
	}
}

// countAugmenting returns how many components are augmenting for m.
func countAugmenting(comps []DiffComponent, m *Matching) int {
	n := 0
	for i := range comps {
		if AugmentingFor(&comps[i], m) {
			n++
		}
	}
	return n
}

func TestSymmetricDifferenceCardinalityIdentity(t *testing.T) {
	// For any two matchings: |M2| - |M1| = (#paths augmenting for M1) -
	// (#paths augmenting for M2). This is the accounting identity the
	// paper's upper-bound proofs rest on.
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(10)
		nr := 1 + rng.Intn(10)
		g := randomGraph(rng, nl, nr, 0.35)
		m1 := GreedyMaximal(g)
		m2 := HopcroftKarp(g)
		comps := SymmetricDifference(m1, m2)
		lhs := m2.Size() - m1.Size()
		rhs := countAugmenting(comps, m1) - countAugmenting(comps, m2)
		if lhs != rhs {
			t.Fatalf("trial %d: |M2|-|M1|=%d but aug diff=%d", trial, lhs, rhs)
		}
	}
}

func TestSymmetricDifferenceComponentsAreDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		nl := 1 + rng.Intn(12)
		nr := 1 + rng.Intn(12)
		g := randomGraph(rng, nl, nr, 0.3)
		m1 := GreedyMaximal(g)
		// A second, different matching: Kuhn from reversed order.
		m2 := NewMatching(nl, nr)
		order := make([]int, nl)
		for i := range order {
			order[i] = nl - 1 - i
		}
		ExtendFromLeft(g, m2, order)

		comps := SymmetricDifference(m1, m2)
		seenL := map[int]bool{}
		seenR := map[int]bool{}
		edges := 0
		for _, c := range comps {
			edges += c.Len()
			for i, v := range c.Verts {
				if c.Left[i] {
					if seenL[v] {
						t.Fatalf("trial %d: left %d in two components", trial, v)
					}
					seenL[v] = true
				} else {
					if seenR[v] {
						t.Fatalf("trial %d: right %d in two components", trial, v)
					}
					seenR[v] = true
				}
				// Sides must alternate along the component.
				if i > 0 && c.Left[i] == c.Left[i-1] {
					t.Fatalf("trial %d: sides do not alternate", trial)
				}
			}
		}
		// Edge count of the difference must match sum of component lengths.
		want := 0
		for l := 0; l < nl; l++ {
			r1, r2 := m1.L2R[l], m2.L2R[l]
			if r1 != r2 {
				if r1 != None {
					want++
				}
				if r2 != None {
					want++
				}
			}
		}
		if edges != want {
			t.Fatalf("trial %d: components cover %d edges, difference has %d", trial, edges, want)
		}
	}
}

func TestAugmentingForTrivialCases(t *testing.T) {
	m := NewMatching(1, 1)
	c := DiffComponent{Verts: []int{0}, Left: []bool{true}}
	if AugmentingFor(&c, m) {
		t.Fatal("single vertex cannot be augmenting")
	}
}
