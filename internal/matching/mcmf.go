package matching

// CostFlowNetwork is a min-cost max-flow network solved by successive
// shortest augmenting paths (Bellman–Ford/SPFA, which tolerates the negative
// reduced costs that appear with zero initial potentials). It provides an
// independent weighted cross-check for the lexicographic matching objective:
// encoding class weights as costs and solving MCMF must reproduce the class
// counts of the matroid greedy (validated in tests on small instances where
// the weights fit in int64).
type CostFlowNetwork struct {
	n    int
	head []int32
	next []int32
	to   []int32
	cap  []int32
	cost []int64
}

// NewCostFlowNetwork returns an empty cost-flow network with n vertices.
func NewCostFlowNetwork(n int) *CostFlowNetwork {
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return &CostFlowNetwork{n: n, head: head}
}

// AddEdge adds a directed edge u->v with the given capacity and per-unit cost.
// It returns the edge index.
func (f *CostFlowNetwork) AddEdge(u, v, capacity int, cost int64) int {
	id := len(f.to)
	f.to = append(f.to, int32(v))
	f.cap = append(f.cap, int32(capacity))
	f.cost = append(f.cost, cost)
	f.next = append(f.next, f.head[u])
	f.head[u] = int32(id)

	f.to = append(f.to, int32(u))
	f.cap = append(f.cap, 0)
	f.cost = append(f.cost, -cost)
	f.next = append(f.next, f.head[v])
	f.head[v] = int32(id + 1)
	return id
}

// Flow returns the flow currently on edge id.
func (f *CostFlowNetwork) Flow(id int) int { return int(f.cap[id^1]) }

// MinCostMaxFlow pushes as much flow as possible from s to t, always along a
// minimum-cost augmenting path, and returns (flow, cost). With integral
// capacities the result is the minimum-cost maximum flow.
func (f *CostFlowNetwork) MinCostMaxFlow(s, t int) (flow int, cost int64) {
	const inf64 = int64(1) << 62
	dist := make([]int64, f.n)
	inQueue := make([]bool, f.n)
	prevEdge := make([]int32, f.n)

	for {
		for i := range dist {
			dist[i] = inf64
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue := []int32{int32(s)}
		inQueue[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			inQueue[v] = false
			for e := f.head[v]; e != -1; e = f.next[e] {
				u := f.to[e]
				if f.cap[e] > 0 && dist[v]+f.cost[e] < dist[u] {
					dist[u] = dist[v] + f.cost[e]
					prevEdge[u] = e
					if !inQueue[u] {
						inQueue[u] = true
						queue = append(queue, u)
					}
				}
			}
		}
		if dist[t] >= inf64 {
			return flow, cost
		}
		// Find bottleneck and push one augmenting path.
		push := int32(1) << 30
		for v := int32(t); v != int32(s); {
			e := prevEdge[v]
			if f.cap[e] < push {
				push = f.cap[e]
			}
			v = f.to[e^1]
		}
		for v := int32(t); v != int32(s); {
			e := prevEdge[v]
			f.cap[e] -= push
			f.cap[e^1] += push
			v = f.to[e^1]
		}
		flow += int(push)
		cost += int64(push) * dist[t]
	}
}

// MinCostMatching computes a maximum matching of g minimizing the total cost
// of matched right vertices, where rightCost[r] is the cost of covering right
// vertex r. Returns the matching. Because all max flows have the same value,
// the solver maximizes cardinality first and minimizes cost second — exactly
// the "among maximum matchings prefer cheap slots" shape the strategies need.
func MinCostMatching(g *Graph, rightCost []int64) *Matching {
	return MinCostMatchingLR(g, nil, rightCost)
}

// MinCostMatchingLR generalizes MinCostMatching to costs on both sides: among
// maximum matchings it minimizes the sum of leftCost[l] + rightCost[r] over
// matched pairs (l, r). A nil leftCost means all zeros. Left costs may be
// negative (the initial residual network is acyclic, so successive shortest
// paths remain correct); this is what lets the min-latency objective charge
// each pair its true latency t − arrive instead of the slot round alone.
func MinCostMatchingLR(g *Graph, leftCost, rightCost []int64) *Matching {
	nl, nr := g.NLeft(), g.NRight()
	s := nl + nr
	t := s + 1
	f := NewCostFlowNetwork(nl + nr + 2)
	edgeOf := make([][]int, nl)
	for l := 0; l < nl; l++ {
		lc := int64(0)
		if leftCost != nil {
			lc = leftCost[l]
		}
		f.AddEdge(s, l, 1, lc)
		edgeOf[l] = make([]int, len(g.Adj(l)))
		for i, r := range g.Adj(l) {
			edgeOf[l][i] = f.AddEdge(l, nl+int(r), 1, 0)
		}
	}
	for r := 0; r < nr; r++ {
		f.AddEdge(nl+r, t, 1, rightCost[r])
	}
	f.MinCostMaxFlow(s, t)
	m := NewMatching(nl, nr)
	for l := 0; l < nl; l++ {
		for i, r := range g.Adj(l) {
			if f.Flow(edgeOf[l][i]) > 0 {
				m.Match(l, int(r))
			}
		}
	}
	return m
}
