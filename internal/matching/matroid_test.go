package matching

import (
	"math/rand"
	"testing"
)

// randomClasses assigns each right vertex a class in [0, nClasses).
func randomClasses(rng *rand.Rand, nr, nClasses int) []int32 {
	cs := make([]int32, nr)
	for i := range cs {
		cs[i] = int32(rng.Intn(nClasses))
	}
	return cs
}

func lexCompare(a, b []int) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func padTo(v []int, n int) []int {
	for len(v) < n {
		v = append(v, 0)
	}
	return v
}

func TestLexMaxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(7)
		nr := 1 + rng.Intn(7)
		nClasses := 1 + rng.Intn(4)
		g := randomGraph(rng, nl, nr, 0.35)
		classOf := randomClasses(rng, nr, nClasses)

		got := LexMax(g, classOf)
		if err := Verify(g, got); err != nil {
			t.Fatal(err)
		}
		want := BruteLexMax(g, classOf)
		if got.Size() != want.Size() {
			t.Fatalf("trial %d: size %d != brute %d", trial, got.Size(), want.Size())
		}
		gv := padTo(ClassCounts(got, classOf), nClasses)
		wv := padTo(ClassCounts(want, classOf), nClasses)
		if lexCompare(gv, wv) != 0 {
			t.Fatalf("trial %d: class vector %v != brute %v", trial, gv, wv)
		}
	}
}

func TestLexMaxIsMaximumCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, 25, 25, 0.15)
		classOf := randomClasses(rng, 25, 5)
		if LexMax(g, classOf).Size() != HopcroftKarp(g).Size() {
			t.Fatalf("trial %d: LexMax not maximum", trial)
		}
	}
}

func TestLexMaxExtendPreservesMatchedRights(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		g := randomGraph(rng, 10, 10, 0.3)
		classOf := randomClasses(rng, 10, 3)
		m := GreedyMaximal(g)
		matchedR := map[int]bool{}
		for r, l := range m.R2L {
			if l != None {
				matchedR[r] = true
			}
		}
		LexMaxExtend(g, m, classOf)
		for r := range matchedR {
			if m.R2L[r] == None {
				t.Fatalf("trial %d: extension freed right %d", trial, r)
			}
		}
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCoverLeftRestoresCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		nl := 2 + rng.Intn(10)
		nr := 2 + rng.Intn(10)
		g := randomGraph(rng, nl, nr, 0.3)
		// cover: some matching (inherited schedule).
		cover := GreedyMaximal(g)
		// Drop a few cover pairs at random so cover is a sub-matching.
		for l := 0; l < nl; l++ {
			if cover.L2R[l] != None && rng.Intn(3) == 0 {
				cover.UnmatchLeft(l)
			}
		}
		classOf := randomClasses(rng, nr, 3)
		m := LexMax(g, classOf)
		beforeSize := m.Size()
		beforeVec := ClassCounts(m, classOf)

		CoverLeft(g, m, cover)

		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
		if m.Size() != beforeSize {
			t.Fatalf("trial %d: CoverLeft changed size %d -> %d", trial, beforeSize, m.Size())
		}
		afterVec := ClassCounts(m, classOf)
		if lexCompare(padTo(beforeVec, 3), padTo(afterVec, 3)) != 0 {
			t.Fatalf("trial %d: CoverLeft changed slot classes %v -> %v", trial, beforeVec, afterVec)
		}
		for l := 0; l < nl; l++ {
			if cover.L2R[l] != None && m.L2R[l] == None {
				t.Fatalf("trial %d: left %d covered by cover but free in m", trial, l)
			}
		}
	}
}

func TestCoverLeftNoopWhenAlreadyCovered(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)
	m := Kuhn(g)
	cover := m.Clone()
	CoverLeft(g, m, cover)
	if m.L2R[0] != 0 || m.L2R[1] != 1 {
		t.Fatalf("noop cover changed matching: %v", m.L2R)
	}
}

func TestImproveEarlinessMatchesLexMax(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(8)
		nr := 1 + rng.Intn(8)
		nClasses := 1 + rng.Intn(4)
		g := randomGraph(rng, nl, nr, 0.35)
		classOf := randomClasses(rng, nr, nClasses)

		// Incremental route: arbitrary maximum matching, then exchanges.
		m := HopcroftKarp(g)
		ImproveEarliness(g, m, classOf)
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}

		want := BruteLexMax(g, classOf)
		if m.Size() != want.Size() {
			t.Fatalf("trial %d: exchange lost cardinality %d vs %d", trial, m.Size(), want.Size())
		}
		gv := padTo(ClassCounts(m, classOf), nClasses)
		wv := padTo(ClassCounts(want, classOf), nClasses)
		if lexCompare(gv, wv) != 0 {
			t.Fatalf("trial %d: exchange vector %v != brute %v", trial, gv, wv)
		}
	}
}

func TestImproveEarlinessKeepsLeftSet(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 100; trial++ {
		g := randomGraph(rng, 12, 12, 0.3)
		classOf := randomClasses(rng, 12, 4)
		m := HopcroftKarp(g)
		before := map[int]bool{}
		for l, r := range m.L2R {
			if r != None {
				before[l] = true
			}
		}
		ImproveEarliness(g, m, classOf)
		for l := range before {
			if m.L2R[l] == None {
				t.Fatalf("trial %d: exchange unmatched left %d", trial, l)
			}
		}
	}
}

func TestRightsByClassStableCountingSort(t *testing.T) {
	classOf := []int32{2, 0, 1, 0, 2, 1}
	got := rightsByClass(classOf)
	want := []int{1, 3, 2, 5, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v want %v", got, want)
		}
	}
}

func TestClassCounts(t *testing.T) {
	m := NewMatching(3, 4)
	m.Match(0, 0)
	m.Match(1, 3)
	classOf := []int32{0, 0, 1, 1}
	counts := ClassCounts(m, classOf)
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("counts %v", counts)
	}
}
