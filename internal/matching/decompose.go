package matching

// DiffComponent is one connected component of the symmetric difference
// M1 xor M2 of two matchings: an alternating path or an alternating cycle.
// Vertices alternate sides along Verts; Left[i] reports the side of Verts[i].
type DiffComponent struct {
	Verts []int  // vertex indices, alternating sides along the component
	Left  []bool // Left[i]: Verts[i] is a left vertex
	Cycle bool   // true if the component is an alternating cycle
}

// Len returns the number of edges in the component.
func (c *DiffComponent) Len() int {
	if c.Cycle {
		return len(c.Verts)
	}
	return len(c.Verts) - 1
}

// SymmetricDifference decomposes M1 xor M2 into its alternating paths and
// cycles. Section 1.2 of the paper uses exactly this decomposition to compare
// an online schedule with the offline optimum: components that are augmenting
// paths for the online matching account for its losses. Both matchings must
// be over the same vertex-set sizes.
func SymmetricDifference(m1, m2 *Matching) []DiffComponent {
	nl := len(m1.L2R)
	// diffL[l] holds up to two right partners of l (from m1 and m2) that
	// differ; similarly each right vertex has degree <= 2 in the difference.
	type pair struct{ a, b int32 }
	diffL := make([]pair, nl)
	for l := range diffL {
		diffL[l] = pair{None, None}
	}
	deg := make([]int, nl)
	addL := func(l int, r int32) {
		if deg[l] == 0 {
			diffL[l].a = r
		} else {
			diffL[l].b = r
		}
		deg[l]++
	}
	nr := len(m1.R2L)
	diffR := make([]pair, nr)
	for r := range diffR {
		diffR[r] = pair{None, None}
	}
	degR := make([]int, nr)
	addR := func(r int, l int32) {
		if degR[r] == 0 {
			diffR[r].a = l
		} else {
			diffR[r].b = l
		}
		degR[r]++
	}
	for l := 0; l < nl; l++ {
		r1, r2 := m1.L2R[l], m2.L2R[l]
		if r1 == r2 {
			continue
		}
		if r1 != None {
			addL(l, r1)
			addR(int(r1), int32(l))
		}
		if r2 != None {
			addL(l, r2)
			addR(int(r2), int32(l))
		}
	}
	// A right vertex can also gain difference edges from two different left
	// vertices even when each left's pair differs; the loops above already
	// record those via addR.

	visitedL := make([]bool, nl)
	visitedR := make([]bool, nr)
	var comps []DiffComponent

	// walk traces the component starting at (isLeft, v), which must be a
	// degree-1 endpoint for paths or any vertex for cycles.
	walk := func(startLeft bool, start int) DiffComponent {
		var c DiffComponent
		isLeft, v := startLeft, start
		prevL, prevR := int32(None), int32(None)
		for {
			c.Verts = append(c.Verts, v)
			c.Left = append(c.Left, isLeft)
			if isLeft {
				visitedL[v] = true
				nxt := diffL[v].a
				if nxt == prevR || nxt == None {
					nxt = diffL[v].b
				}
				if nxt == None {
					return c
				}
				if visitedR[nxt] {
					c.Cycle = true
					return c
				}
				prevL = int32(v)
				v, isLeft = int(nxt), false
			} else {
				visitedR[v] = true
				nxt := diffR[v].a
				if nxt == prevL || nxt == None {
					nxt = diffR[v].b
				}
				if nxt == None {
					return c
				}
				if visitedL[nxt] {
					c.Cycle = true
					return c
				}
				prevR = int32(v)
				v, isLeft = int(nxt), true
			}
		}
	}

	// Paths first: start from degree-1 endpoints.
	for l := 0; l < nl; l++ {
		if deg[l] == 1 && !visitedL[l] {
			comps = append(comps, walk(true, l))
		}
	}
	for r := 0; r < nr; r++ {
		if degR[r] == 1 && !visitedR[r] {
			comps = append(comps, walk(false, r))
		}
	}
	// Remaining unvisited difference vertices lie on cycles.
	for l := 0; l < nl; l++ {
		if deg[l] == 2 && !visitedL[l] {
			comps = append(comps, walk(true, l))
		}
	}
	for r := 0; r < nr; r++ {
		if degR[r] == 2 && !visitedR[r] {
			comps = append(comps, walk(false, r))
		}
	}
	return comps
}

// AugmentingFor reports whether component c is an augmenting path for m: a
// path whose two endpoint vertices are both free in m. Flipping such a path
// would enlarge m by one, so counting them measures how far m is from the
// reference matching it was diffed against.
func AugmentingFor(c *DiffComponent, m *Matching) bool {
	if c.Cycle || len(c.Verts) < 2 {
		return false
	}
	free := func(i int) bool {
		if c.Left[i] {
			return m.L2R[c.Verts[i]] == None
		}
		return m.R2L[c.Verts[i]] == None
	}
	return free(0) && free(len(c.Verts)-1)
}
