package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKonigCoverSizeEqualsMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.3)
		m := HopcroftKarp(g)
		lefts, rights := KonigCover(g, m)
		if len(lefts)+len(rights) != m.Size() {
			t.Fatalf("trial %d: cover %d+%d != matching %d",
				trial, len(lefts), len(rights), m.Size())
		}
	}
}

func TestKonigCoverCoversEveryEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 1+rng.Intn(12), 1+rng.Intn(12), 0.35)
		m := HopcroftKarp(g)
		lefts, rights := KonigCover(g, m)
		inL := make(map[int]bool, len(lefts))
		for _, l := range lefts {
			inL[l] = true
		}
		inR := make(map[int]bool, len(rights))
		for _, r := range rights {
			inR[r] = true
		}
		for l := 0; l < g.NLeft(); l++ {
			for _, r := range g.Adj(l) {
				if !inL[l] && !inR[int(r)] {
					t.Fatalf("trial %d: edge (%d,%d) uncovered", trial, l, r)
				}
			}
		}
	}
}

func TestKonigDetectsNonMaximum(t *testing.T) {
	// With a non-maximum matching the construction yields a "cover" smaller
	// than necessary only if it misses edges; verify the certificate fails
	// on a deliberately non-maximum matching of K_{2,2}.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	m := NewMatching(2, 2) // empty: certainly not maximum
	lefts, rights := KonigCover(g, m)
	covered := func(l, r int) bool {
		for _, x := range lefts {
			if x == l {
				return true
			}
		}
		for _, x := range rights {
			if x == int(r) {
				return true
			}
		}
		return false
	}
	ok := true
	for l := 0; l < 2; l++ {
		for _, r := range g.Adj(l) {
			if !covered(l, int(r)) {
				ok = false
			}
		}
	}
	if ok && len(lefts)+len(rights) == m.Size() {
		t.Fatal("empty matching produced a valid size-0 cover of a non-empty graph")
	}
}

func TestHallWitnessCertifiesDeficit(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 200; trial++ {
		// Skew the sides so deficits are common.
		g := randomGraph(rng, 4+rng.Intn(10), 1+rng.Intn(6), 0.3)
		m := HopcroftKarp(g)
		s, nbh, deficit := HallWitness(g, m)
		if deficit == 0 {
			if s != nil || nbh != nil {
				t.Fatalf("trial %d: witness without deficit", trial)
			}
			continue
		}
		if len(nbh) != len(s)-deficit {
			t.Fatalf("trial %d: |N(S)|=%d, |S|=%d, deficit=%d", trial, len(nbh), len(s), deficit)
		}
		// N(S) must contain every neighbor of S.
		inNbh := make(map[int]bool, len(nbh))
		for _, r := range nbh {
			inNbh[r] = true
		}
		for _, l := range s {
			for _, r := range g.Adj(l) {
				if !inNbh[int(r)] {
					t.Fatalf("trial %d: neighbor %d of %d outside N(S)", trial, r, l)
				}
			}
		}
	}
}

func TestHallWitnessQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(10), 1+rng.Intn(10), 0.25)
		m := HopcroftKarp(g)
		s, nbh, deficit := HallWitness(g, m)
		if deficit == 0 {
			return true
		}
		return len(nbh) == len(s)-deficit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
