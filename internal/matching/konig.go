package matching

// This file provides optimality certificates for maximum matchings. The
// paper's upper-bound proofs revolve around "overloaded" resource sets —
// slot sets whose adjacent requests outnumber them — which are exactly Hall
// violators in the bipartite graph. KonigCover and HallWitness make those
// certificates computable, and the tests use them to verify maximality
// independently of the solvers.

// alternatingReach marks every vertex reachable from the free left vertices
// by paths alternating non-matching (left->right) and matching (right->left)
// edges. Returns the visit marks for both sides.
func alternatingReach(g *Graph, m *Matching) (seenL, seenR []bool) {
	seenL = make([]bool, g.NLeft())
	seenR = make([]bool, g.NRight())
	var queue []int32
	for l := 0; l < g.NLeft(); l++ {
		if m.L2R[l] == None {
			seenL[l] = true
			queue = append(queue, int32(l))
		}
	}
	for len(queue) > 0 {
		l := queue[0]
		queue = queue[1:]
		for _, r := range g.adj[l] {
			if seenR[r] {
				continue
			}
			seenR[r] = true
			ml := m.R2L[r]
			if ml != None && !seenL[ml] {
				seenL[ml] = true
				queue = append(queue, ml)
			}
		}
	}
	return seenL, seenR
}

// KonigCover returns a minimum vertex cover of g computed from the maximum
// matching m by König's construction: with Z the set of vertices reachable
// by alternating paths from free left vertices, the cover is
// (L \ Z) ∪ (R ∩ Z). By König's theorem its size equals |m|, which the tests
// assert as an independent certificate that m is maximum.
func KonigCover(g *Graph, m *Matching) (lefts, rights []int) {
	seenL, seenR := alternatingReach(g, m)
	for l := 0; l < g.NLeft(); l++ {
		if !seenL[l] {
			lefts = append(lefts, l)
		}
	}
	for r := 0; r < g.NRight(); r++ {
		if seenR[r] {
			rights = append(rights, r)
		}
	}
	return lefts, rights
}

// HallWitness returns, for a maximum matching m that leaves deficit > 0 left
// vertices unmatched, a set S of left vertices violating Hall's condition:
// |N(S)| = |S| - deficit. S is the set of left vertices reachable by
// alternating paths from the free ones; its whole neighborhood is matched
// into S. In the scheduling reading, S is a set of requests and N(S) the
// "overloaded" slot set of the paper's Theorem 3.3 proof. With deficit 0 it
// returns (nil, nil, 0).
func HallWitness(g *Graph, m *Matching) (s, neighborhood []int, deficit int) {
	for l := 0; l < g.NLeft(); l++ {
		if m.L2R[l] == None {
			deficit++
		}
	}
	if deficit == 0 {
		return nil, nil, 0
	}
	seenL, seenR := alternatingReach(g, m)
	for l := 0; l < g.NLeft(); l++ {
		if seenL[l] {
			s = append(s, l)
		}
	}
	for r := 0; r < g.NRight(); r++ {
		if seenR[r] {
			neighborhood = append(neighborhood, r)
		}
	}
	return s, neighborhood, deficit
}
