package matching

// Brute-force reference solvers. Exponential-time, used only in tests on
// small graphs to validate the production algorithms (Kuhn, Hopcroft–Karp,
// LexMax, MinCostMatching).

// BruteMaximumSize returns the maximum matching cardinality of g by exhaustive
// search over left-vertex assignments.
func BruteMaximumSize(g *Graph) int {
	usedR := make([]bool, g.NRight())
	var rec func(l int) int
	rec = func(l int) int {
		if l == g.NLeft() {
			return 0
		}
		best := rec(l + 1) // leave l unmatched
		for _, r := range g.Adj(l) {
			if !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

// BruteLexMax returns a maximum matching of g whose vector of per-class
// matched-right counts (ascending class index) is lexicographically maximal,
// by exhaustive search. classOf[r] gives the class of right vertex r.
func BruteLexMax(g *Graph, classOf []int32) *Matching {
	nClasses := 0
	for _, c := range classOf {
		if int(c)+1 > nClasses {
			nClasses = int(c) + 1
		}
	}
	usedR := make([]bool, g.NRight())
	cur := NewMatching(g.NLeft(), g.NRight())
	var best *Matching
	bestSize := -1
	bestVec := make([]int, nClasses)
	curVec := make([]int, nClasses)
	curSize := 0

	better := func() bool {
		if curSize != bestSize {
			return curSize > bestSize
		}
		for i := range curVec {
			if curVec[i] != bestVec[i] {
				return curVec[i] > bestVec[i]
			}
		}
		return false
	}

	var rec func(l int)
	rec = func(l int) {
		if l == g.NLeft() {
			if better() {
				best = cur.Clone()
				bestSize = curSize
				copy(bestVec, curVec)
			}
			return
		}
		rec(l + 1)
		for _, r := range g.Adj(l) {
			if usedR[r] {
				continue
			}
			usedR[r] = true
			cur.Match(l, int(r))
			curVec[classOf[r]]++
			curSize++
			rec(l + 1)
			curSize--
			curVec[classOf[r]]--
			cur.UnmatchLeft(l)
			usedR[r] = false
		}
	}
	rec(0)
	if best == nil {
		best = NewMatching(g.NLeft(), g.NRight())
	}
	return best
}

// BruteMinRightCost returns the minimum total right-vertex cost over all
// maximum matchings of g, the objective MinCostMatching optimizes.
func BruteMinRightCost(g *Graph, rightCost []int64) int64 {
	maxSize := BruteMaximumSize(g)
	usedR := make([]bool, g.NRight())
	const inf = int64(1) << 62
	best := inf
	var rec func(l, size int, cost int64)
	rec = func(l, size int, cost int64) {
		if l == g.NLeft() {
			if size == maxSize && cost < best {
				best = cost
			}
			return
		}
		// Prune: even matching every remaining left vertex cannot reach max.
		if size+(g.NLeft()-l) < maxSize {
			return
		}
		rec(l+1, size, cost)
		for _, r := range g.Adj(l) {
			if usedR[r] {
				continue
			}
			usedR[r] = true
			rec(l+1, size+1, cost+rightCost[r])
			usedR[r] = false
		}
	}
	rec(0, 0, 0)
	return best
}
