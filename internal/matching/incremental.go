package matching

// Incremental maintains a maximum matching over a bipartite graph that grows
// one left vertex at a time — the online shape of the offline optimum: each
// new request (left vertex) arrives with its slot edges, and the matching is
// repaired with a single augmenting-path search instead of recomputing
// Hopcroft–Karp over the whole graph.
//
// Correctness rests on the classic induction: if the current matching is
// maximum and one left vertex is added, the new maximum is larger by at most
// one, and any augmenting path in the extended graph must end at the new
// (free) vertex — a path avoiding it would already have augmented the old
// graph. One search from the new vertex therefore restores maximality, so
// after every AddLeft the size equals the maximum matching cardinality of the
// graph seen so far, bit for bit what HopcroftKarp reports on the same edges
// (cardinality is search-order-independent).
//
// Adjacency is stored flat (CSR): left vertex l's right neighbors occupy
// adj[start[l]:start[l+1]]. All buffers, including the stamp-based visited
// marks of the search, are reused across AddLeft calls and across Rewind, so
// a long-running consumer (the serve daemon's rolling-OPT worker) reaches a
// steady state with no per-request and no per-segment allocation. An
// Incremental is not safe for concurrent use.
type Incremental struct {
	start []int32 // CSR row starts; len = nLeft+1
	adj   []int32 // flat right-neighbor lists
	l2r   []int32 // matching, left to right (None when free)
	r2l   []int32 // matching, right to left (None when free)
	size  int

	stamp uint32
	seenR []uint32 // stamp when right vertex was visited this search

	// Dead-component pruning. When a search fails, every right it visited
	// lies in a saturated region no future augmenting path can escape: the
	// visited rights are all matched, their partners' edges all lead back
	// into the visited set, and old lefts never gain edges — so a path that
	// enters the region is trapped and a successful augmentation never
	// touches it. Those rights are marked dead (generation-stamped so Rewind
	// is O(1)) and skipped by every later search, which caps the total cost
	// of failed searches: each right is fully explored by at most one
	// failure instead of by every one. Without this, an oversubscribed
	// segment pays Θ(E) per failed insertion — the Kuhn worst case that made
	// the incremental path slower than batched Hopcroft–Karp.
	gen   uint32
	deadR []uint32 // gen when right vertex joined a saturated region
	trail []int32  // rights visited by the current search, for marking
}

// NewIncremental returns an empty incremental matcher.
func NewIncremental() *Incremental {
	return &Incremental{start: []int32{0}, gen: 1}
}

// NLeft returns the number of left vertices added so far.
func (inc *Incremental) NLeft() int { return len(inc.l2r) }

// NRight returns the number of right vertices grown so far.
func (inc *Incremental) NRight() int { return len(inc.r2l) }

// Size returns the current matching cardinality — the maximum matching of
// every edge added so far.
func (inc *Incremental) Size() int { return inc.size }

// MatchedRight returns the right vertex matched to left vertex l, or None.
func (inc *Incremental) MatchedRight(l int) int32 { return inc.l2r[l] }

// Rewind resets the matcher to an empty graph, keeping every buffer — the
// segment-seal operation: after a sealed segment's size is read off, the next
// segment starts from scratch without reallocating.
func (inc *Incremental) Rewind() {
	inc.start = inc.start[:1]
	inc.adj = inc.adj[:0]
	inc.l2r = inc.l2r[:0]
	inc.r2l = inc.r2l[:0]
	inc.size = 0
	inc.gen++
	if inc.gen == 0 { // wrapped: stale dead marks could read as current
		clear(inc.deadR)
		inc.gen = 1
	}
}

// EnsureRight grows the right side to at least n vertices. New vertices are
// free; growing the right side alone never changes the maximum matching.
func (inc *Incremental) EnsureRight(n int) {
	for len(inc.r2l) < n {
		inc.r2l = append(inc.r2l, None)
	}
	for len(inc.seenR) < n {
		inc.seenR = append(inc.seenR, 0)
	}
	for len(inc.deadR) < n {
		inc.deadR = append(inc.deadR, 0)
	}
}

// AddLeft appends one left vertex adjacent to the given right vertices (which
// must be < NRight(); call EnsureRight first) and runs a single augmenting
// search from it. It reports whether the matching grew. The neighbor slice is
// copied; the caller may reuse it.
func (inc *Incremental) AddLeft(neighbors []int32) bool {
	l := int32(len(inc.l2r))
	inc.adj = append(inc.adj, neighbors...)
	inc.start = append(inc.start, int32(len(inc.adj)))
	inc.l2r = append(inc.l2r, None)

	inc.stamp++
	if inc.stamp == 0 { // wrapped: every stale mark could read as visited
		clear(inc.seenR)
		inc.stamp = 1
	}
	inc.trail = inc.trail[:0]
	if inc.augment(l) {
		inc.size++
		return true
	}
	for _, r := range inc.trail { // failed: the visited region is saturated for good
		inc.deadR[r] = inc.gen
	}
	return false
}

// augment searches for an augmenting path from free left vertex l and flips
// it, mirroring the package augmenter's deterministic order: a free right
// neighbor (in listed order) is taken before any matched one is rerouted.
func (inc *Incremental) augment(l int32) bool {
	for _, r := range inc.adj[inc.start[l]:inc.start[l+1]] {
		if inc.r2l[r] == None && inc.seenR[r] != inc.stamp {
			inc.seenR[r] = inc.stamp
			inc.match(l, r)
			return true
		}
	}
	for _, r := range inc.adj[inc.start[l]:inc.start[l+1]] {
		if inc.seenR[r] == inc.stamp || inc.deadR[r] == inc.gen {
			continue
		}
		inc.seenR[r] = inc.stamp
		inc.trail = append(inc.trail, r)
		if inc.augment(inc.r2l[r]) {
			inc.match(l, r)
			return true
		}
	}
	return false
}

func (inc *Incremental) match(l, r int32) {
	inc.l2r[l] = r
	inc.r2l[r] = l
}
