package matching

// HopcroftKarp computes a maximum matching in O(E sqrt(V)) using the classic
// phase structure: a BFS builds the layered graph of shortest alternating
// paths from free left vertices, then a DFS pass augments along a maximal set
// of vertex-disjoint shortest paths. Used as the workhorse for the offline
// optimum where graphs have hundreds of thousands of edges.
func HopcroftKarp(g *Graph) *Matching {
	m := NewMatching(g.NLeft(), g.NRight())
	HopcroftKarpExtend(g, m)
	return m
}

// HopcroftKarpExtend extends an existing matching to maximum cardinality.
// Matched vertices are never unmatched, so extending an inherited schedule
// preserves every previously scheduled request (the A_eager / A_balance
// invariant). It returns the number of augmentations performed.
func hkInfinity() int32 { return int32(1) << 30 }

func HopcroftKarpExtend(g *Graph, m *Matching) int {
	nl := g.NLeft()
	dist := make([]int32, nl)
	queue := make([]int32, 0, nl)
	total := 0
	inf := hkInfinity()

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nl; l++ {
			if m.L2R[l] == None {
				dist[l] = 0
				queue = append(queue, int32(l))
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range g.adj[l] {
				ml := m.R2L[r]
				if ml == None {
					found = true
				} else if dist[ml] == inf {
					dist[ml] = dist[l] + 1
					queue = append(queue, ml)
				}
			}
		}
		return found
	}

	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range g.adj[l] {
			ml := m.R2L[r]
			if ml == None || (dist[ml] == dist[l]+1 && dfs(ml)) {
				m.Match(int(l), int(r))
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < nl; l++ {
			if m.L2R[l] == None && dist[l] == 0 {
				if dfs(int32(l)) {
					total++
				}
			}
		}
	}
	return total
}

// GreedyMaximal computes a maximal (not necessarily maximum) matching by a
// single pass over left vertices in index order, taking the first free right
// neighbor. By the standard argument its size is at least half the maximum;
// tests assert that invariant.
func GreedyMaximal(g *Graph) *Matching {
	m := NewMatching(g.NLeft(), g.NRight())
	for l := 0; l < g.NLeft(); l++ {
		for _, r := range g.adj[l] {
			if m.R2L[r] == None {
				m.Match(l, int(r))
				break
			}
		}
	}
	return m
}

// IsMaximal reports whether m is maximal in g: no edge joins a free left
// vertex to a free right vertex.
func IsMaximal(g *Graph, m *Matching) bool {
	for l := 0; l < g.NLeft(); l++ {
		if m.L2R[l] != None {
			continue
		}
		for _, r := range g.adj[l] {
			if m.R2L[r] == None {
				return false
			}
		}
	}
	return true
}
