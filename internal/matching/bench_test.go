package matching

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks for the matching substrate: the offline optimum spends its time
// in Hopcroft–Karp over request/slot graphs and the strategies in the
// weight-class greedy, so their scaling matters for large reproductions.

func benchGraphs(b *testing.B, build func(rng *rand.Rand) *Graph) []*Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	gs := make([]*Graph, 8)
	for i := range gs {
		gs[i] = build(rng)
	}
	return gs
}

func BenchmarkHopcroftKarp(b *testing.B) {
	for _, size := range []struct {
		name        string
		nl, nRes, d int
	}{
		{"1k", 1000, 16, 8},
		{"10k", 10000, 32, 8},
		{"50k", 50000, 64, 8},
	} {
		size := size
		b.Run(size.name, func(b *testing.B) {
			gs := benchGraphs(b, func(rng *rand.Rand) *Graph {
				return twoChoiceGraph(rng, size.nl, size.nRes, size.d)
			})
			b.ResetTimer()
			var total int
			for i := 0; i < b.N; i++ {
				total += HopcroftKarp(gs[i%len(gs)]).Size()
			}
			b.ReportMetric(float64(gs[0].NumEdges()), "edges")
		})
	}
}

func BenchmarkKuhnVsHK(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := twoChoiceGraph(rng, 20000, 32, 6)
	b.Run("Kuhn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Kuhn(g)
		}
	})
	b.Run("HopcroftKarp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			HopcroftKarp(g)
		}
	})
	b.Run("DinicFlow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MaxMatchingByFlow(g)
		}
	})
}

func BenchmarkLexMax(b *testing.B) {
	for _, nClasses := range []int{2, 8, 32} {
		nClasses := nClasses
		b.Run(fmt.Sprintf("classes=%d", nClasses), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			g := twoChoiceGraph(rng, 5000, 32, nClasses)
			classOf := make([]int32, g.NRight())
			for r := range classOf {
				classOf[r] = int32(r % nClasses)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				LexMax(g, classOf)
			}
		})
	}
}

func BenchmarkPreferLowAtClass(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := twoChoiceGraph(rng, 5000, 32, 8)
	classOf := make([]int32, g.NRight())
	for r := range classOf {
		classOf[r] = int32(r % 8)
	}
	base := LexMax(g, classOf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := base.Clone()
		PreferLowAtClass(g, m, classOf, 0)
	}
}

func BenchmarkMinCostMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := twoChoiceGraph(rng, 1000, 16, 4)
	costs := make([]int64, g.NRight())
	for r := range costs {
		costs[r] = int64(r % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinCostMatching(g, costs)
	}
}

func BenchmarkSymmetricDifference(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := twoChoiceGraph(rng, 20000, 32, 6)
	m1 := GreedyMaximal(g)
	m2 := HopcroftKarp(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymmetricDifference(m1, m2)
	}
}

func BenchmarkGeneralBlossom(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{100, 500, 2000} {
		n := n
		g := NewGeneralGraph(n)
		for u := 0; u < n; u++ {
			for k := 0; k < 4; k++ {
				v := rng.Intn(n)
				if v != u {
					g.AddEdge(u, v)
				}
			}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				size = GeneralMaximumSize(g)
			}
			b.ReportMetric(float64(size), "matching")
		})
	}
}

func BenchmarkMaxProfitMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := twoChoiceGraph(rng, 2000, 16, 4)
	profit := make([]int64, 2000)
	for i := range profit {
		profit[i] = int64(1 + rng.Intn(10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxProfitMatching(g, profit)
	}
}
