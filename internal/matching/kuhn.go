package matching

// Kuhn computes a maximum matching by augmenting from every left vertex in
// ascending index order, exploring right neighbors in adjacency (insertion)
// order. The result is deterministic: among all maximum matchings it is the
// one reached by this fixed search order, which the adversarial constructions
// rely on (requests list their "preferred" alternative first).
func Kuhn(g *Graph) *Matching {
	m := NewMatching(g.NLeft(), g.NRight())
	a := newAugmenter(g)
	for l := 0; l < g.NLeft(); l++ {
		a.augmentFromLeft(m, l)
	}
	return m
}

// ExtendFromLeft augments m from each listed free left vertex in the given
// order. Left vertices that are already matched are skipped. It returns the
// number of successful augmentations. Matched vertices are never unmatched by
// augmentation, so any "already scheduled" invariant is preserved.
func ExtendFromLeft(g *Graph, m *Matching, order []int) int {
	a := newAugmenter(g)
	gained := 0
	for _, l := range order {
		if m.L2R[l] != None {
			continue
		}
		if a.augmentFromLeft(m, l) {
			gained++
		}
	}
	return gained
}

// ExtendFromRight augments m from each listed free right vertex in the given
// order, exploring left neighbors in adjacency order. Used by the
// weight-class (transversal matroid) greedy: processing right vertices in
// descending weight order yields a maximum matching whose matched right set
// has maximum weight.
func ExtendFromRight(g *Graph, m *Matching, order []int) int {
	a := newAugmenter(g)
	gained := 0
	for _, r := range order {
		if m.R2L[r] != None {
			continue
		}
		if a.augmentFromRight(m, r) {
			gained++
		}
	}
	return gained
}

// augmenter holds the scratch state for repeated augmenting-path searches so
// that visited marks are cleared in O(1) between searches (stamping). An
// augmenter can be rebound to successive graphs via bind, which reuses the
// mark storage: stamps only ever increase, so marks left over from an earlier
// graph can never read as visited.
type augmenter struct {
	g     *Graph
	stamp int
	seenL []int // stamp when left vertex was visited
	seenR []int // stamp when right vertex was visited
}

func newAugmenter(g *Graph) *augmenter {
	a := &augmenter{}
	a.bind(g)
	return a
}

// bind points the augmenter at g, growing the mark arrays as needed.
func (a *augmenter) bind(g *Graph) {
	a.g = g
	a.seenL = ensureLen(a.seenL, g.NLeft())
	a.seenR = ensureLen(a.seenR, g.NRight())
}

// ensureLen returns s with length at least n, reusing capacity when possible.
// Retained contents beyond the previous length are stale stamps from earlier
// searches, which are always smaller than the current stamp.
func ensureLen(s []int, n int) []int {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		return s[:n]
	}
	ns := make([]int, n)
	copy(ns, s)
	return ns
}

// augmentFromLeft searches for an augmenting path starting at free left vertex
// l and flips it if found. Iterative DFS; neighbors explored in adjacency
// order.
func (a *augmenter) augmentFromLeft(m *Matching, l int) bool {
	a.stamp++
	return a.dfsLeft(m, int32(l))
}

func (a *augmenter) dfsLeft(m *Matching, l int32) bool {
	a.seenL[l] = a.stamp
	// Prefer a free right neighbor (in listed order) before rerouting
	// matched ones: this keeps the deterministic semantics "a request takes
	// its first free slot; existing assignments move only when necessary",
	// which the adversarial constructions and the oldest-first service
	// order rely on.
	for _, r := range a.g.adj[l] {
		if m.R2L[r] == None && a.seenR[r] != a.stamp {
			a.seenR[r] = a.stamp
			m.Match(int(l), int(r))
			return true
		}
	}
	for _, r := range a.g.adj[l] {
		if a.seenR[r] == a.stamp {
			continue
		}
		a.seenR[r] = a.stamp
		if a.dfsLeft(m, m.R2L[r]) {
			m.Match(int(l), int(r))
			return true
		}
	}
	return false
}

// augmentFromRight mirrors augmentFromLeft starting from a free right vertex.
func (a *augmenter) augmentFromRight(m *Matching, r int) bool {
	a.stamp++
	return a.dfsRight(m, int32(r))
}

func (a *augmenter) dfsRight(m *Matching, r int32) bool {
	a.seenR[r] = a.stamp
	// Mirror of dfsLeft: a slot takes the first (lowest-index, i.e. oldest)
	// free request before rerouting matched ones.
	for _, l := range a.g.RAdj(int(r)) {
		if m.L2R[l] == None && a.seenL[l] != a.stamp {
			a.seenL[l] = a.stamp
			m.Match(int(l), int(r))
			return true
		}
	}
	for _, l := range a.g.RAdj(int(r)) {
		if a.seenL[l] == a.stamp {
			continue
		}
		a.seenL[l] = a.stamp
		if a.dfsRight(m, m.L2R[l]) {
			m.Match(int(l), int(r))
			return true
		}
	}
	return false
}
