package matching

import (
	"math/rand"
	"testing"
)

func randomGeneral(rng *rand.Rand, n int, p float64) *GeneralGraph {
	g := NewGeneralGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestGeneralTriangle(t *testing.T) {
	// Odd cycle: matching size 1 despite 3 edges.
	g := NewGeneralGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if got := GeneralMaximumSize(g); got != 1 {
		t.Fatalf("triangle matching %d want 1", got)
	}
}

func TestGeneralOddCycleWithTail(t *testing.T) {
	// A 5-cycle with a pendant: size 3 — requires blossom contraction to
	// find (the greedy tree without contraction gets stuck at 2).
	g := NewGeneralGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 0)
	g.AddEdge(2, 5) // tail
	if got := GeneralMaximumSize(g); got != 3 {
		t.Fatalf("got %d want 3", got)
	}
}

func TestGeneralPetersenPerfectMatching(t *testing.T) {
	// The Petersen graph has a perfect matching (size 5) and is the classic
	// stress case for blossom handling.
	g := NewGeneralGraph(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	for _, e := range append(append(outer, spokes...), inner...) {
		g.AddEdge(e[0], e[1])
	}
	if got := GeneralMaximumSize(g); got != 5 {
		t.Fatalf("petersen matching %d want 5", got)
	}
	if !VerifyGeneral(g, GeneralMaximum(g)) {
		t.Fatal("inconsistent matching")
	}
}

func TestGeneralPath(t *testing.T) {
	// Path on 7 vertices: matching 3.
	g := NewGeneralGraph(7)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, i+1)
	}
	if got := GeneralMaximumSize(g); got != 3 {
		t.Fatalf("path matching %d want 3", got)
	}
}

func TestGeneralMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(9)
		g := randomGeneral(rng, n, 0.35)
		got := GeneralMaximumSize(g)
		want := BruteGeneralMaximumSize(g)
		if got != want {
			t.Fatalf("trial %d (n=%d): blossom %d != brute %d", trial, n, got, want)
		}
		if !VerifyGeneral(g, GeneralMaximum(g)) {
			t.Fatalf("trial %d: inconsistent matching", trial)
		}
	}
}

func TestGeneralAgreesWithBipartiteSolvers(t *testing.T) {
	// On bipartite inputs the blossom algorithm must agree with
	// Hopcroft–Karp (embedding left vertices as 0..nl-1, right as nl..).
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		nl := 1 + rng.Intn(10)
		nr := 1 + rng.Intn(10)
		bg := randomGraph(rng, nl, nr, 0.3)
		gg := NewGeneralGraph(nl + nr)
		for l := 0; l < nl; l++ {
			for _, r := range bg.Adj(l) {
				gg.AddEdge(l, nl+int(r))
			}
		}
		if got, want := GeneralMaximumSize(gg), HopcroftKarp(bg).Size(); got != want {
			t.Fatalf("trial %d: blossom %d != HK %d", trial, got, want)
		}
	}
}

func TestGeneralEmptyAndSingle(t *testing.T) {
	if GeneralMaximumSize(NewGeneralGraph(0)) != 0 {
		t.Fatal("empty graph")
	}
	if GeneralMaximumSize(NewGeneralGraph(5)) != 0 {
		t.Fatal("edgeless graph")
	}
	g := NewGeneralGraph(2)
	g.AddEdge(0, 1)
	if GeneralMaximumSize(g) != 1 {
		t.Fatal("single edge")
	}
}

func TestGeneralSelfLoopRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGeneralGraph(2).AddEdge(1, 1)
}

func TestGeneralLargeRandomStaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	g := randomGeneral(rng, 200, 0.05)
	match := GeneralMaximum(g)
	if !VerifyGeneral(g, match) {
		t.Fatal("inconsistent matching at scale")
	}
	// Maximality spot-check: no free-free edge.
	for u := 0; u < g.N(); u++ {
		if match[u] != None {
			continue
		}
		for _, v := range g.Adj(u) {
			if match[v] == None {
				t.Fatalf("free edge (%d,%d) left unmatched", u, v)
			}
		}
	}
}
