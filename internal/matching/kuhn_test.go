package matching

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a random bipartite graph with the given side sizes where
// each potential edge appears with probability p.
func randomGraph(rng *rand.Rand, nl, nr int, p float64) *Graph {
	g := NewGraph(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				g.AddEdge(l, r)
			}
		}
	}
	return g
}

// twoChoiceGraph builds a graph shaped like the scheduling instances: every
// left vertex (request) has edges to two windows of consecutive right
// vertices (slots of its two alternatives).
func twoChoiceGraph(rng *rand.Rand, nl, nRes, d int) *Graph {
	g := NewGraph(nl, nRes*d)
	for l := 0; l < nl; l++ {
		a := rng.Intn(nRes)
		b := rng.Intn(nRes - 1)
		if b >= a {
			b++
		}
		for j := 0; j < d; j++ {
			g.AddEdge(l, a*d+j)
		}
		for j := 0; j < d; j++ {
			g.AddEdge(l, b*d+j)
		}
	}
	return g
}

func TestKuhnEmptyGraph(t *testing.T) {
	g := NewGraph(3, 4)
	m := Kuhn(g)
	if m.Size() != 0 {
		t.Fatalf("empty graph matched %d pairs", m.Size())
	}
	if err := Verify(g, m); err != nil {
		t.Fatal(err)
	}
}

func TestKuhnZeroVertices(t *testing.T) {
	g := NewGraph(0, 0)
	if m := Kuhn(g); m.Size() != 0 {
		t.Fatalf("got %d", m.Size())
	}
	if m := HopcroftKarp(g); m.Size() != 0 {
		t.Fatalf("got %d", m.Size())
	}
}

func TestKuhnPerfectMatching(t *testing.T) {
	// Complete bipartite K_{5,5} has a perfect matching.
	g := NewGraph(5, 5)
	for l := 0; l < 5; l++ {
		for r := 0; r < 5; r++ {
			g.AddEdge(l, r)
		}
	}
	if got := Kuhn(g).Size(); got != 5 {
		t.Fatalf("K5,5: got %d want 5", got)
	}
}

func TestKuhnPrefersFirstListedNeighbor(t *testing.T) {
	// Deterministic tie-breaking: with no conflicts each left vertex takes
	// its first-listed neighbor. The adversarial constructions rely on this.
	g := NewGraph(2, 4)
	g.AddEdge(0, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 3)
	g.AddEdge(1, 1)
	m := Kuhn(g)
	if m.L2R[0] != 2 || m.L2R[1] != 3 {
		t.Fatalf("expected first-listed neighbors, got %v", m.L2R)
	}
}

func TestKuhnEqualsHopcroftKarpEqualsBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		nl := 1 + rng.Intn(9)
		nr := 1 + rng.Intn(9)
		g := randomGraph(rng, nl, nr, 0.3)
		want := BruteMaximumSize(g)
		if got := Kuhn(g).Size(); got != want {
			t.Fatalf("trial %d: Kuhn %d != brute %d", trial, got, want)
		}
		if got := HopcroftKarp(g).Size(); got != want {
			t.Fatalf("trial %d: HK %d != brute %d", trial, got, want)
		}
		if got := MaxMatchingByFlow(g); got != want {
			t.Fatalf("trial %d: flow %d != brute %d", trial, got, want)
		}
	}
}

func TestKuhnEqualsHopcroftKarpLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 60, 50, 0.08)
		k := Kuhn(g)
		h := HopcroftKarp(g)
		if k.Size() != h.Size() {
			t.Fatalf("trial %d: Kuhn %d != HK %d", trial, k.Size(), h.Size())
		}
		if err := Verify(g, k); err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, h); err != nil {
			t.Fatal(err)
		}
		if f := MaxMatchingByFlow(g); f != k.Size() {
			t.Fatalf("trial %d: flow %d != %d", trial, f, k.Size())
		}
	}
}

func TestKuhnTwoChoiceGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g := twoChoiceGraph(rng, 40, 6, 4)
		k := Kuhn(g).Size()
		h := HopcroftKarp(g).Size()
		f := MaxMatchingByFlow(g)
		if k != h || k != f {
			t.Fatalf("trial %d: kuhn=%d hk=%d flow=%d", trial, k, h, f)
		}
	}
}

func TestGreedyMaximalAtLeastHalf(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.25)
		gm := GreedyMaximal(g)
		if !IsMaximal(g, gm) {
			return false
		}
		if err := Verify(g, gm); err != nil {
			return false
		}
		maxSize := HopcroftKarp(g).Size()
		return 2*gm.Size() >= maxSize
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendFromLeftPreservesMatched(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		g := randomGraph(rng, 12, 12, 0.3)
		m := NewMatching(12, 12)
		// Seed with a partial greedy matching.
		for l := 0; l < 6; l++ {
			for _, r := range g.Adj(l) {
				if m.R2L[r] == None {
					m.Match(l, int(r))
					break
				}
			}
		}
		before := map[int]bool{}
		for l, r := range m.L2R {
			if r != None {
				before[l] = true
			}
		}
		order := make([]int, 12)
		for i := range order {
			order[i] = i
		}
		ExtendFromLeft(g, m, order)
		for l := range before {
			if m.L2R[l] == None {
				t.Fatalf("trial %d: augmentation unmatched left %d", trial, l)
			}
		}
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
		if m.Size() != HopcroftKarp(g).Size() {
			t.Fatalf("trial %d: extend-from-left not maximum: %d vs %d",
				trial, m.Size(), HopcroftKarp(g).Size())
		}
	}
}

func TestHopcroftKarpExtendFromPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		g := randomGraph(rng, 15, 15, 0.25)
		m := GreedyMaximal(g)
		seedSize := m.Size()
		gained := HopcroftKarpExtend(g, m)
		if m.Size() != seedSize+gained {
			t.Fatalf("gained accounting wrong: %d + %d != %d", seedSize, gained, m.Size())
		}
		if m.Size() != HopcroftKarp(g).Size() {
			t.Fatalf("extend from partial not maximum")
		}
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMatchingMatchOverwrites(t *testing.T) {
	m := NewMatching(2, 2)
	m.Match(0, 0)
	m.Match(1, 0) // steals right 0 from left 0
	if m.L2R[0] != None || m.R2L[0] != 1 {
		t.Fatalf("overwrite broken: %v %v", m.L2R, m.R2L)
	}
	m.Match(1, 1) // moves left 1 to right 1
	if m.R2L[0] != None || m.L2R[1] != 1 {
		t.Fatalf("move broken: %v %v", m.L2R, m.R2L)
	}
}

func TestMatchingCloneIndependent(t *testing.T) {
	m := NewMatching(2, 2)
	m.Match(0, 1)
	c := m.Clone()
	c.Match(1, 0)
	if m.L2R[1] != None {
		t.Fatal("clone aliases original")
	}
	if c.L2R[0] != 1 {
		t.Fatal("clone lost data")
	}
}

func TestPairsSortedByLeft(t *testing.T) {
	m := NewMatching(3, 3)
	m.Match(2, 0)
	m.Match(0, 2)
	ps := m.Pairs()
	if len(ps) != 2 || ps[0] != [2]int{0, 2} || ps[1] != [2]int{2, 0} {
		t.Fatalf("pairs wrong: %v", ps)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	m := NewMatching(2, 2)
	m.L2R[0] = 1 // not mutual, and not an edge
	if err := Verify(g, m); err == nil {
		t.Fatal("expected error for one-sided pointer")
	}
	m = NewMatching(2, 2)
	m.L2R[0] = 1
	m.R2L[1] = 0
	if err := Verify(g, m); err == nil {
		t.Fatal("expected error for non-edge pair")
	}
}

func ExampleHopcroftKarp() {
	g := NewGraph(3, 3)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 2)
	m := HopcroftKarp(g)
	fmt.Println(m.Size())
	// Output: 3
}

func ExampleLexMax() {
	// Two requests, two slot classes: the lexicographic greedy covers the
	// class-0 slot even though a plain maximum matching might not.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0) // request 0 can use the early slot...
	g.AddEdge(0, 1) // ...or the late one
	g.AddEdge(1, 1) // request 1 only the late one
	m := LexMax(g, []int32{0, 1})
	fmt.Println(m.L2R[0], m.L2R[1])
	// Output: 0 1
}
