package matching

import "fmt"

// This file implements the machinery behind the balance strategies of the
// paper. A_fix_balance and A_balance choose, among the admissible matchings,
// one maximizing F = sum_j X_{t+j} * (n+1)^(d-j), where X_{t+j} is the number
// of matched time slots in round t+j. Because (n+1)^(d-j) dominates the sum of
// all lower weights, maximizing F is exactly the lexicographic maximization of
// the vector (X_t, ..., X_{t+d-1}).
//
// The sets of right (slot) vertices coverable by a matching form a transversal
// matroid, so the max-weight coverable slot set is found by the matroid greedy:
// process slots in descending weight (ascending round) order and attempt one
// augmenting search from each. Since every class weight dominates all lower
// classes combined, the greedy result is simultaneously of maximum cardinality
// (it is a basis) and lexicographically optimal.

// LexMax computes a maximum matching of g whose per-class matched-right-vertex
// counts are lexicographically maximal, where classOf[r] gives the weight
// class of right vertex r (class 0 is the heaviest, i.e. preferred). Right
// vertices are processed in ascending (class, index) order.
func LexMax(g *Graph, classOf []int32) *Matching {
	m := NewMatching(g.NLeft(), g.NRight())
	LexMaxExtend(g, m, classOf)
	return m
}

// LexMaxExtend runs the weight-class greedy starting from an existing matching
// m. Augmentation never unmatches a vertex, so every pre-matched vertex stays
// matched; starting from a non-empty matching yields the lexicographic optimum
// among matchings whose matched-right set contains m's matched-right set.
// It returns the number of augmentations performed.
func LexMaxExtend(g *Graph, m *Matching, classOf []int32) int {
	checkClassLen(g, classOf)
	order := rightsByClass(classOf)
	return ExtendFromRight(g, m, order)
}

func checkClassLen(g *Graph, classOf []int32) {
	if len(classOf) != g.NRight() {
		panic(fmt.Sprintf("matching: classOf length %d != nRight %d", len(classOf), g.NRight()))
	}
}

// rightsByClass returns right vertex indices sorted by (class, index)
// ascending using a counting sort, preserving index order within a class.
func rightsByClass(classOf []int32) []int {
	order, _ := rightsByClassInto(nil, nil, classOf)
	return order
}

// rightsByClassInto is rightsByClass writing into the given buffers (grown as
// needed and returned for reuse).
func rightsByClassInto(order []int, count []int, classOf []int32) ([]int, []int) {
	maxC := int32(0)
	for _, c := range classOf {
		if c < 0 {
			panic("matching: negative weight class")
		}
		if c > maxC {
			maxC = c
		}
	}
	if need := int(maxC) + 2; cap(count) >= need {
		count = count[:need]
		for i := range count {
			count[i] = 0
		}
	} else {
		count = make([]int, need)
	}
	for _, c := range classOf {
		count[c+1]++
	}
	for i := 1; i < len(count); i++ {
		count[i] += count[i-1]
	}
	if cap(order) >= len(classOf) {
		order = order[:len(classOf)]
	} else {
		order = make([]int, len(classOf))
	}
	for r, c := range classOf {
		order[count[c]] = r
		count[c]++
	}
	return order, count
}

// CoverLeft transforms the maximum matching m so that every left vertex
// covered by the matching `cover` is also covered by m, without changing m's
// matched right-vertex set or its cardinality. This is the constructive half
// of the Mendelsohn–Dulmage theorem: walk the component of each uncovered
// left vertex in (cover xor m) and flip it. The strategies use it to restore
// the "all previously scheduled requests remain scheduled" property after
// recomputing a lexicographically optimal matching from scratch.
//
// Precondition: m is a maximum matching of g and cover is a matching of g
// (typically last round's schedule). If m is not maximum the walk may hit a
// right vertex that is free in m; CoverLeft then simply matches it (gaining
// an edge) and stops, which is still a valid matching.
func CoverLeft(g *Graph, m, cover *Matching) {
	for p := 0; p < g.NLeft(); p++ {
		if cover.L2R[p] == None || m.L2R[p] != None {
			continue
		}
		// Walk the alternating path starting at p: cover edge forward,
		// m edge back, flipping as we go. The path must terminate at a
		// left vertex not covered by `cover` (a cycle is impossible
		// because p has m-degree 0, and ending at a right vertex free
		// in m would contradict maximality of m).
		cur := int32(p)
		for {
			r := cover.L2R[cur]
			if r == None {
				break // cur ends the path uncovered by cover: done
			}
			u := m.R2L[r]
			m.Match(int(cur), int(r)) // unmatches u from r internally
			if u == None {
				break // m was not maximum; we just augmented
			}
			cur = u
		}
	}
}

// ImproveEarliness applies cardinality-preserving alternating-path exchanges
// until the per-class matched counts of m are locally lexicographically
// optimal: for each class c in ascending order, while some free right vertex
// of class c can reach (via an alternating path that starts with a non-matching
// edge) a matched right vertex of a strictly later class, the path is flipped,
// matching the class-c vertex and freeing the later one. The matched left set
// is unchanged, so previously scheduled requests stay scheduled.
//
// This is the "incremental" route to the balance objective (start from last
// round's schedule, extend, exchange); the from-scratch route is LexMax +
// CoverLeft. Tests assert both produce identical class-count vectors.
func ImproveEarliness(g *Graph, m *Matching, classOf []int32) int {
	if len(classOf) != g.NRight() {
		panic(fmt.Sprintf("matching: classOf length %d != nRight %d", len(classOf), g.NRight()))
	}
	order := rightsByClass(classOf)
	flips := 0
	parentL := make([]int32, g.NLeft())  // right vertex through which left was reached
	parentR := make([]int32, g.NRight()) // left vertex through which right was reached
	seenL := make([]bool, g.NLeft())
	seenR := make([]bool, g.NRight())

	for _, start := range order {
		c := classOf[start]
	retry:
		if m.R2L[start] != None {
			continue
		}
		// BFS over the alternating structure from `start`.
		for i := range seenL {
			seenL[i] = false
		}
		for i := range seenR {
			seenR[i] = false
		}
		seenR[start] = true
		queueR := []int32{int32(start)}
		best := int32(-1)
		bestClass := c
		for qi := 0; qi < len(queueR) && best == -1; qi++ {
			r := queueR[qi]
			for _, l := range g.RAdj(int(r)) {
				if seenL[l] {
					continue
				}
				seenL[l] = true
				parentL[l] = r
				mr := m.L2R[l]
				if mr == None {
					// A genuine augmenting path; take it (it also
					// improves the class vector).
					flipExchange(m, l, parentL, parentR, int32(start))
					flips++
					goto retry
				}
				if !seenR[mr] {
					seenR[mr] = true
					parentR[mr] = l
					if classOf[mr] > bestClass {
						best = mr
						break
					}
					queueR = append(queueR, mr)
				}
			}
		}
		if best != -1 {
			// Flip the path start ... best: `best` becomes free,
			// `start` becomes matched.
			l := m.R2L[best]
			m.UnmatchRight(int(best))
			flipExchange(m, l, parentL, parentR, int32(start))
			flips++
			goto retry
		}
	}
	return flips
}

// flipExchange rematches along the BFS parent pointers from left vertex l back
// to the path's starting right vertex.
func flipExchange(m *Matching, l int32, parentL, parentR []int32, start int32) {
	for {
		r := parentL[l]
		m.Match(int(l), int(r))
		if r == start {
			return
		}
		l = parentR[r]
	}
}

// ClassCounts returns, for a matching m and class assignment classOf, the
// number of matched right vertices in each class (index = class).
func ClassCounts(m *Matching, classOf []int32) []int {
	maxC := int32(0)
	for _, c := range classOf {
		if c > maxC {
			maxC = c
		}
	}
	counts := make([]int, maxC+1)
	for r, l := range m.R2L {
		if l != None {
			counts[classOf[r]]++
		}
	}
	return counts
}
