package matching

import (
	"math/rand"
	"testing"
)

// randomRows returns a random bipartite graph plus its adjacency rows.
func randomRows(rng *rand.Rand, nl, nr, deg int) [][]int32 {
	rows := make([][]int32, nl)
	for l := range rows {
		seen := map[int32]bool{}
		for k := 0; k < 1+rng.Intn(deg); k++ {
			r := int32(rng.Intn(nr))
			if !seen[r] {
				seen[r] = true
				rows[l] = append(rows[l], r)
			}
		}
	}
	return rows
}

// feed builds a Graph from rows and feeds the same rows to an Incremental.
func feed(inc *Incremental, rows [][]int32, nr int) *Graph {
	g := NewGraph(len(rows), nr)
	inc.EnsureRight(nr)
	for l, row := range rows {
		for _, r := range row {
			g.AddEdge(l, int(r))
		}
		inc.AddLeft(row)
	}
	return g
}

// TestIncrementalEqualsHopcroftKarp pins the induction: after every AddLeft
// the maintained size equals Hopcroft–Karp on the prefix graph.
func TestIncrementalEqualsHopcroftKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nl, nr := 1+rng.Intn(40), 1+rng.Intn(30)
		rows := randomRows(rng, nl, nr, 4)
		inc := NewIncremental()
		inc.EnsureRight(nr)
		g := NewGraph(nl, nr)
		for l, row := range rows {
			for _, r := range row {
				g.AddEdge(l, int(r))
			}
			inc.AddLeft(row)
			// Prefix graph: only the first l+1 left vertices carry edges, the
			// rest are isolated and cannot affect the maximum.
			if want := HopcroftKarp(g).Size(); inc.Size() != want {
				t.Fatalf("trial %d after left %d: incremental %d, HK %d", trial, l, inc.Size(), want)
			}
		}
	}
}

// TestIncrementalMatchingConsistent checks the mutual-pointer invariant and
// that every matched pair is a real edge.
func TestIncrementalMatchingConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := randomRows(rng, 60, 40, 5)
	inc := NewIncremental()
	feed(inc, rows, 40)
	matched := 0
	for l := 0; l < inc.NLeft(); l++ {
		r := inc.MatchedRight(l)
		if r == None {
			continue
		}
		matched++
		found := false
		for _, rr := range rows[l] {
			if rr == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("pair (%d,%d) is not an edge", l, r)
		}
	}
	if matched != inc.Size() {
		t.Fatalf("Size %d but %d left vertices matched", inc.Size(), matched)
	}
}

// TestIncrementalRewind pins the seal contract: Rewind empties the structure
// and a reused instance reproduces a fresh one's sizes exactly.
func TestIncrementalRewind(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inc := NewIncremental()
	for round := 0; round < 10; round++ {
		nl, nr := 1+rng.Intn(30), 1+rng.Intn(25)
		rows := randomRows(rng, nl, nr, 4)
		g := feed(inc, rows, nr)
		if want := HopcroftKarp(g).Size(); inc.Size() != want {
			t.Fatalf("round %d: reused incremental %d, HK %d", round, inc.Size(), want)
		}
		if inc.NLeft() != nl || inc.NRight() < nr {
			t.Fatalf("round %d: dims %dx%d, want %dx>=%d", round, inc.NLeft(), inc.NRight(), nl, nr)
		}
		inc.Rewind()
		if inc.Size() != 0 || inc.NLeft() != 0 || inc.NRight() != 0 {
			t.Fatalf("round %d: Rewind left size=%d nl=%d nr=%d", round, inc.Size(), inc.NLeft(), inc.NRight())
		}
	}
}

// TestIncrementalOrderIndependent pins the property the serve pipeline leans
// on: feeding the same left vertices in any order yields the same cardinality.
func TestIncrementalOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		nl, nr := 2+rng.Intn(30), 1+rng.Intn(20)
		rows := randomRows(rng, nl, nr, 4)
		inc := NewIncremental()
		feed(inc, rows, nr)
		want := inc.Size()
		perm := rng.Perm(nl)
		shuffled := make([][]int32, nl)
		for i, p := range perm {
			shuffled[i] = rows[p]
		}
		inc2 := NewIncremental()
		feed(inc2, shuffled, nr)
		if inc2.Size() != want {
			t.Fatalf("trial %d: shuffled %d, in-order %d", trial, inc2.Size(), want)
		}
	}
}

// BenchmarkIncrementalVsColdHK compares maintaining the matching across a
// growing graph against re-running Hopcroft–Karp from scratch at the end —
// the per-segment cost profile the serve rolling-OPT worker pays.
func BenchmarkIncrementalVsColdHK(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rows := randomRows(rng, 2000, 1500, 4)
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		inc := NewIncremental()
		for i := 0; i < b.N; i++ {
			inc.Rewind()
			inc.EnsureRight(1500)
			for _, row := range rows {
				inc.AddLeft(row)
			}
		}
	})
	b.Run("cold_hk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := NewGraph(len(rows), 1500)
			for l, row := range rows {
				for _, r := range row {
					g.AddEdge(l, int(r))
				}
			}
			HopcroftKarp(g)
		}
	})
}
