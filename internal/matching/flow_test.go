package matching

import (
	"math/rand"
	"testing"
)

func TestDinicSimpleNetwork(t *testing.T) {
	// s=0, t=3; two disjoint paths of capacity 2 and 3.
	f := NewFlowNetwork(4)
	f.AddEdge(0, 1, 2)
	f.AddEdge(1, 3, 2)
	f.AddEdge(0, 2, 3)
	f.AddEdge(2, 3, 3)
	if got := f.MaxFlow(0, 3); got != 5 {
		t.Fatalf("maxflow %d want 5", got)
	}
}

func TestDinicBottleneck(t *testing.T) {
	// s -> a -> b -> t where the middle edge limits flow.
	f := NewFlowNetwork(4)
	e0 := f.AddEdge(0, 1, 10)
	e1 := f.AddEdge(1, 2, 1)
	e2 := f.AddEdge(2, 3, 10)
	if got := f.MaxFlow(0, 3); got != 1 {
		t.Fatalf("maxflow %d want 1", got)
	}
	if f.Flow(e0) != 1 || f.Flow(e1) != 1 || f.Flow(e2) != 1 {
		t.Fatalf("edge flows %d %d %d", f.Flow(e0), f.Flow(e1), f.Flow(e2))
	}
}

func TestDinicDisconnected(t *testing.T) {
	f := NewFlowNetwork(4)
	f.AddEdge(0, 1, 5)
	f.AddEdge(2, 3, 5)
	if got := f.MaxFlow(0, 3); got != 0 {
		t.Fatalf("maxflow %d want 0", got)
	}
}

func TestDinicRequiresReverseEdgeReasoning(t *testing.T) {
	// Classic diamond where a greedy path must be partially undone via the
	// residual edge: s->a->b->t chosen first blocks the optimum unless the
	// algorithm can reroute.
	f := NewFlowNetwork(4)
	f.AddEdge(0, 1, 1) // s->a
	f.AddEdge(0, 2, 1) // s->b
	f.AddEdge(1, 2, 1) // a->b
	f.AddEdge(1, 3, 1) // a->t
	f.AddEdge(2, 3, 1) // b->t
	if got := f.MaxFlow(0, 3); got != 2 {
		t.Fatalf("maxflow %d want 2", got)
	}
}

func TestMinCostMaxFlowPrefersCheapPath(t *testing.T) {
	f := NewCostFlowNetwork(4)
	cheap := f.AddEdge(0, 1, 1, 1)
	f.AddEdge(1, 3, 1, 1)
	exp := f.AddEdge(0, 2, 1, 10)
	f.AddEdge(2, 3, 1, 10)
	flow, cost := f.MinCostMaxFlow(0, 3)
	if flow != 2 || cost != 22 {
		t.Fatalf("flow=%d cost=%d want 2, 22", flow, cost)
	}
	if f.Flow(cheap) != 1 || f.Flow(exp) != 1 {
		t.Fatal("both paths should be saturated at max flow")
	}
}

func TestMinCostMaxFlowChoosesCheapAtEqualFlow(t *testing.T) {
	// Two parallel unit paths, only one unit of demand downstream: the cheap
	// one must carry the flow.
	f := NewCostFlowNetwork(5)
	cheap := f.AddEdge(0, 1, 1, 1)
	exp := f.AddEdge(0, 2, 1, 5)
	f.AddEdge(1, 3, 1, 0)
	f.AddEdge(2, 3, 1, 0)
	f.AddEdge(3, 4, 1, 0) // sink bottleneck: only one unit fits
	flow, cost := f.MinCostMaxFlow(0, 4)
	if flow != 1 || cost != 1 {
		t.Fatalf("flow=%d cost=%d want 1, 1", flow, cost)
	}
	if f.Flow(cheap) != 1 || f.Flow(exp) != 0 {
		t.Fatal("flow must use the cheap path")
	}
}

func TestMinCostMatchingCardinalityEqualsHK(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, 15, 15, 0.2)
		costs := make([]int64, 15)
		for i := range costs {
			costs[i] = int64(rng.Intn(10))
		}
		m := MinCostMatching(g, costs)
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
		if m.Size() != HopcroftKarp(g).Size() {
			t.Fatalf("trial %d: MCMF matching not maximum", trial)
		}
	}
}

func TestMinCostMatchingOptimalCost(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		nl := 1 + rng.Intn(6)
		nr := 1 + rng.Intn(6)
		g := randomGraph(rng, nl, nr, 0.4)
		costs := make([]int64, nr)
		for i := range costs {
			costs[i] = int64(rng.Intn(20))
		}
		m := MinCostMatching(g, costs)
		var got int64
		for r, l := range m.R2L {
			if l != None {
				got += costs[r]
			}
		}
		want := BruteMinRightCost(g, costs)
		if m.Size() == 0 && want == int64(1)<<62 {
			continue // empty graph: brute reports +inf for max size 0 matched trivially
		}
		if got != want {
			t.Fatalf("trial %d: cost %d want %d", trial, got, want)
		}
	}
}

func TestMinCostMatchingReproducesLexMaxOnSmall(t *testing.T) {
	// Encode class weights as costs (earlier class cheaper, dominating) and
	// check MCMF reproduces the matroid greedy's class counts.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		nl := 1 + rng.Intn(6)
		nr := 1 + rng.Intn(6)
		nClasses := 1 + rng.Intn(3)
		g := randomGraph(rng, nl, nr, 0.4)
		classOf := randomClasses(rng, nr, nClasses)
		// Lexicographic maximization of (X_0, X_1, ...) at fixed cardinality
		// equals minimizing sum of costs with cost_c = B^K - B^(K-c) where
		// B > nr: each class's weight dominates everything below it, so the
		// min-cost solution cannot trade one early slot for several late ones.
		base := int64(nr + 1)
		pow := func(e int) int64 {
			p := int64(1)
			for i := 0; i < e; i++ {
				p *= base
			}
			return p
		}
		costs := make([]int64, nr)
		for r, c := range classOf {
			costs[r] = pow(nClasses) - pow(nClasses-int(c))
		}
		m1 := MinCostMatching(g, costs)
		m2 := LexMax(g, classOf)
		v1 := padTo(ClassCounts(m1, classOf), nClasses)
		v2 := padTo(ClassCounts(m2, classOf), nClasses)
		if m1.Size() != m2.Size() || lexCompare(v1, v2) != 0 {
			t.Fatalf("trial %d: mcmf %v size %d vs lexmax %v size %d",
				trial, v1, m1.Size(), v2, m2.Size())
		}
	}
}
