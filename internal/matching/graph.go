// Package matching provides the bipartite-matching substrate used throughout the
// reproduction: maximum matchings (Kuhn, Hopcroft–Karp), greedy maximal
// matchings, weight-class (transversal-matroid) greedy for the balance
// strategies, Mendelsohn–Dulmage merging, alternating-path exchanges, max-flow
// and min-cost-flow cross-checks, and brute-force reference solvers for tests.
//
// Graphs are bipartite with an explicit left side (requests, in the scheduling
// application) and right side (time slots). All algorithms are deterministic:
// vertices and adjacency lists are processed in insertion order, which is what
// lets the adversarial constructions of the paper force a specific matching out
// of a strategy class ("can be implemented in a way that ...").
package matching

import "fmt"

// None marks an unmatched vertex in a Matching.
const None int32 = -1

// Graph is a bipartite graph with nLeft left vertices and nRight right
// vertices. Edges are stored as left-side adjacency lists in insertion order.
// A right-side adjacency view is built lazily on first use, in flat (CSR)
// storage so rebuilding it after a Reset reuses the same backing arrays.
type Graph struct {
	nLeft  int
	nRight int
	adj    [][]int32
	edges  int
	// Lazily built reverse adjacency in CSR layout: the left neighbors of
	// right vertex r are rdata[rstart[r]:rstart[r+1]]. Invalidated (not
	// freed) by AddEdge and Reset.
	rstart    []int32
	rdata     []int32
	radjValid bool
}

// NewGraph returns an empty bipartite graph with the given side sizes.
func NewGraph(nLeft, nRight int) *Graph {
	return &Graph{
		nLeft:  nLeft,
		nRight: nRight,
		adj:    make([][]int32, nLeft),
	}
}

// Reset re-dimensions g to the given side sizes and removes every edge while
// keeping the allocated adjacency storage, so a graph that is rebuilt every
// round reaches a steady state with no per-round allocation.
func (g *Graph) Reset(nLeft, nRight int) {
	if nLeft <= cap(g.adj) {
		g.adj = g.adj[:nLeft]
	} else {
		g.adj = append(g.adj[:cap(g.adj)], make([][]int32, nLeft-cap(g.adj))...)
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.nLeft = nLeft
	g.nRight = nRight
	g.edges = 0
	g.radjValid = false
}

// NLeft returns the number of left vertices.
func (g *Graph) NLeft() int { return g.nLeft }

// NRight returns the number of right vertices.
func (g *Graph) NRight() int { return g.nRight }

// NumEdges returns the number of edges added so far.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge adds the edge (l, r). Duplicate edges are allowed but pointless;
// callers are expected to add each edge once. Adding an edge invalidates a
// previously built right-side adjacency view.
func (g *Graph) AddEdge(l, r int) {
	if l < 0 || l >= g.nLeft || r < 0 || r >= g.nRight {
		panic(fmt.Sprintf("matching: edge (%d,%d) out of range %dx%d", l, r, g.nLeft, g.nRight))
	}
	g.adj[l] = append(g.adj[l], int32(r))
	g.radjValid = false
	g.edges++
}

// Adj returns the right neighbors of left vertex l in insertion order.
// The returned slice must not be modified.
func (g *Graph) Adj(l int) []int32 { return g.adj[l] }

// RAdj returns the left neighbors of right vertex r, building the reverse
// adjacency on first use. The returned slice must not be modified, and is
// invalidated by the next AddEdge or Reset.
func (g *Graph) RAdj(r int) []int32 {
	if !g.radjValid {
		g.buildRight()
	}
	return g.rdata[g.rstart[r]:g.rstart[r+1]]
}

// buildRight fills the CSR reverse adjacency with a counting pass, reusing
// the backing arrays of any previous build. Left neighbors end up in
// ascending order (the insertion order of the forward lists).
func (g *Graph) buildRight() {
	if need := g.nRight + 1; cap(g.rstart) >= need {
		g.rstart = g.rstart[:need]
		for i := range g.rstart {
			g.rstart[i] = 0
		}
	} else {
		g.rstart = make([]int32, need)
	}
	if cap(g.rdata) >= g.edges {
		g.rdata = g.rdata[:g.edges]
	} else {
		g.rdata = make([]int32, g.edges)
	}
	for _, rs := range g.adj {
		for _, r := range rs {
			g.rstart[r+1]++
		}
	}
	for r := 0; r < g.nRight; r++ {
		g.rstart[r+1] += g.rstart[r]
	}
	// fill maintains the running write cursor per right vertex; shift rstart
	// back afterwards instead of keeping a second cursor array.
	for l, rs := range g.adj {
		for _, r := range rs {
			g.rdata[g.rstart[r]] = int32(l)
			g.rstart[r]++
		}
	}
	for r := g.nRight; r > 0; r-- {
		g.rstart[r] = g.rstart[r-1]
	}
	g.rstart[0] = 0
	g.radjValid = true
}

// Matching is a matching in a bipartite Graph, stored as mutual pointers.
// The zero value is not usable; construct with NewMatching.
type Matching struct {
	// L2R[l] is the right vertex matched to l, or None.
	L2R []int32
	// R2L[r] is the left vertex matched to r, or None.
	R2L []int32
}

// NewMatching returns an empty matching for a graph with the given side sizes.
func NewMatching(nLeft, nRight int) *Matching {
	m := &Matching{
		L2R: make([]int32, nLeft),
		R2L: make([]int32, nRight),
	}
	for i := range m.L2R {
		m.L2R[i] = None
	}
	for i := range m.R2L {
		m.R2L[i] = None
	}
	return m
}

// Reset re-dimensions m for a graph with the given side sizes and unmatches
// everything, reusing the allocated pointer arrays when large enough.
func (m *Matching) Reset(nLeft, nRight int) {
	m.L2R = resetNone(m.L2R, nLeft)
	m.R2L = resetNone(m.R2L, nRight)
}

// resetNone returns s re-sliced (or grown) to length n with every entry None.
func resetNone(s []int32, n int) []int32 {
	if n <= cap(s) {
		s = s[:n]
	} else {
		s = make([]int32, n)
	}
	for i := range s {
		s[i] = None
	}
	return s
}

// Size returns the number of matched pairs.
func (m *Matching) Size() int {
	n := 0
	for _, r := range m.L2R {
		if r != None {
			n++
		}
	}
	return n
}

// Match adds the pair (l, r), first unmatching whatever l and r were matched
// to. It therefore never leaves the structure inconsistent.
func (m *Matching) Match(l, r int) {
	if old := m.L2R[l]; old != None {
		m.R2L[old] = None
	}
	if old := m.R2L[r]; old != None {
		m.L2R[old] = None
	}
	m.L2R[l] = int32(r)
	m.R2L[r] = int32(l)
}

// UnmatchLeft removes the pair containing left vertex l, if any.
func (m *Matching) UnmatchLeft(l int) {
	if r := m.L2R[l]; r != None {
		m.R2L[r] = None
		m.L2R[l] = None
	}
}

// UnmatchRight removes the pair containing right vertex r, if any.
func (m *Matching) UnmatchRight(r int) {
	if l := m.R2L[r]; l != None {
		m.L2R[l] = None
		m.R2L[r] = None
	}
}

// Clone returns a deep copy of the matching.
func (m *Matching) Clone() *Matching {
	c := &Matching{
		L2R: make([]int32, len(m.L2R)),
		R2L: make([]int32, len(m.R2L)),
	}
	copy(c.L2R, m.L2R)
	copy(c.R2L, m.R2L)
	return c
}

// Pairs returns the matched (left, right) pairs in ascending left order.
func (m *Matching) Pairs() [][2]int {
	var ps [][2]int
	for l, r := range m.L2R {
		if r != None {
			ps = append(ps, [2]int{l, int(r)})
		}
	}
	return ps
}

// Verify checks structural consistency of m against g: mutual pointers, index
// ranges, and that every matched pair is an edge of g. It returns a descriptive
// error for the first violation found, or nil.
func Verify(g *Graph, m *Matching) error {
	if len(m.L2R) != g.nLeft || len(m.R2L) != g.nRight {
		return fmt.Errorf("matching: size mismatch: matching %dx%d vs graph %dx%d",
			len(m.L2R), len(m.R2L), g.nLeft, g.nRight)
	}
	for l, r := range m.L2R {
		if r == None {
			continue
		}
		if r < 0 || int(r) >= g.nRight {
			return fmt.Errorf("matching: L2R[%d]=%d out of range", l, r)
		}
		if m.R2L[r] != int32(l) {
			return fmt.Errorf("matching: L2R[%d]=%d but R2L[%d]=%d", l, r, r, m.R2L[r])
		}
		found := false
		for _, rr := range g.adj[l] {
			if rr == r {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("matching: pair (%d,%d) is not an edge", l, r)
		}
	}
	for r, l := range m.R2L {
		if l == None {
			continue
		}
		if l < 0 || int(l) >= g.nLeft {
			return fmt.Errorf("matching: R2L[%d]=%d out of range", r, l)
		}
		if m.L2R[l] != int32(r) {
			return fmt.Errorf("matching: R2L[%d]=%d but L2R[%d]=%d", r, l, l, m.L2R[l])
		}
	}
	return nil
}
