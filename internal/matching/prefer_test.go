package matching

import (
	"math/rand"
	"testing"
)

func TestPreferLowAtClassBasicSwap(t *testing.T) {
	// Left 0 (old) matched at a class-1 slot, left 1 (young) at the class-0
	// slot; 0 can be relocated into 1's class-1 seat: swap.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0) // class 0
	g.AddEdge(0, 1) // class 1
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	classOf := []int32{0, 1}
	m := NewMatching(2, 2)
	m.Match(0, 1)
	m.Match(1, 0)
	swaps := PreferLowAtClass(g, m, classOf, 0)
	if swaps != 1 {
		t.Fatalf("swaps = %d", swaps)
	}
	if m.L2R[0] != 0 || m.L2R[1] != 1 {
		t.Fatalf("swap wrong: %v", m.L2R)
	}
}

func TestPreferLowAtClassRevertsWhenOccupantStuck(t *testing.T) {
	// The young occupant's only slot is the class-0 one: no relocation, so
	// the old request cannot displace it.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // young left 1 has nowhere else
	classOf := []int32{0, 1}
	m := NewMatching(2, 2)
	m.Match(0, 1)
	m.Match(1, 0)
	if swaps := PreferLowAtClass(g, m, classOf, 0); swaps != 0 {
		t.Fatalf("swaps = %d", swaps)
	}
	if m.L2R[0] != 1 || m.L2R[1] != 0 {
		t.Fatalf("failed swap not reverted: %v", m.L2R)
	}
}

func TestPreferLowAtClassOlderOccupantKept(t *testing.T) {
	// The occupant of the class-0 slot is older than the challenger:
	// nothing moves.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	classOf := []int32{0, 1}
	m := NewMatching(2, 2)
	m.Match(0, 0)
	m.Match(1, 1)
	if swaps := PreferLowAtClass(g, m, classOf, 0); swaps != 0 {
		t.Fatalf("swaps = %d", swaps)
	}
	if m.L2R[0] != 0 {
		t.Fatal("older occupant displaced")
	}
}

func TestPreferLowAtClassClassNeutralRelocation(t *testing.T) {
	// The displaced occupant must land in a slot of the *same class* as the
	// challenger's old slot, keeping the class-count vector intact even
	// when a cheaper (earlier-class) free slot exists for it.
	g := NewGraph(2, 4)
	classOf := []int32{0, 1, 1, 2}
	// Old left 0 at class-1 slot 1; young left 1 at class-0 slot 0.
	// Left 1 can also use slot 2 (class 1, free) and slot 3 (class 2, free).
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	m := NewMatching(2, 4)
	m.Match(0, 1)
	m.Match(1, 0)
	before := ClassCounts(m, classOf)
	if PreferLowAtClass(g, m, classOf, 0) != 1 {
		t.Fatal("expected a swap")
	}
	after := ClassCounts(m, classOf)
	for c := range before {
		if before[c] != after[c] {
			t.Fatalf("class counts changed: %v -> %v", before, after)
		}
	}
	if m.L2R[0] != 0 || m.L2R[1] != 2 {
		t.Fatalf("expected 1 relocated to the class-1 slot 2, got %v", m.L2R)
	}
}

func TestPreferLowAtClassChainRelocation(t *testing.T) {
	// Relocating the occupant requires rerouting a third vertex.
	g := NewGraph(3, 3)
	classOf := []int32{0, 1, 1}
	g.AddEdge(0, 0) // old challenger: only the class-0 slot
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // young occupant of class 0
	g.AddEdge(1, 1) // ... can move to slot 1, displacing left 2
	g.AddEdge(2, 1)
	g.AddEdge(2, 2) // ... who moves to slot 2
	m := NewMatching(3, 3)
	m.Match(0, 1)
	m.Match(1, 0)
	m.Match(2, 2)
	// Left 2 at slot 2 already; occupant 1 relocates: slot 1 is taken by 0
	// after 0 moves... Run and verify integrity + oldest-first.
	if PreferLowAtClass(g, m, classOf, 0) != 1 {
		t.Fatalf("expected a swap, got matching %v", m.L2R)
	}
	if err := Verify(g, m); err != nil {
		t.Fatal(err)
	}
	if m.L2R[0] != 0 {
		t.Fatalf("oldest not at class-0 slot: %v", m.L2R)
	}
	if m.Size() != 3 {
		t.Fatal("cardinality lost")
	}
}

func TestPreferLowAtClassPreservesInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(10)
		nr := 1 + rng.Intn(10)
		nClasses := 1 + rng.Intn(4)
		g := randomGraph(rng, nl, nr, 0.35)
		classOf := randomClasses(rng, nr, nClasses)
		m := LexMax(g, classOf)
		size := m.Size()
		before := padTo(ClassCounts(m, classOf), nClasses)
		matchedBefore := map[int]bool{}
		for l, r := range m.L2R {
			if r != None {
				matchedBefore[l] = true
			}
		}

		PreferLowAtClass(g, m, classOf, 0)

		if err := Verify(g, m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if m.Size() != size {
			t.Fatalf("trial %d: size changed %d -> %d", trial, size, m.Size())
		}
		after := padTo(ClassCounts(m, classOf), nClasses)
		if lexCompare(before, after) != 0 {
			t.Fatalf("trial %d: class counts changed %v -> %v", trial, before, after)
		}
		for l := range matchedBefore {
			if m.L2R[l] == None {
				t.Fatalf("trial %d: left %d unmatched by exchange", trial, l)
			}
		}
		// Oldest-first local optimality: no left can claim a class-0 seat
		// from a strictly younger occupant anymore (running again changes
		// nothing).
		if PreferLowAtClass(g, m, classOf, 0) != 0 {
			t.Fatalf("trial %d: not a fixpoint", trial)
		}
	}
}
