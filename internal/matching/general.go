package matching

// General (non-bipartite) maximum matching via Edmonds' blossom algorithm.
// The scheduling model itself is bipartite (requests vs time slots), but the
// matching-theory toolbox the paper leans on (Section 1.1, [LP86], [MV80])
// is about general graphs; this implementation completes the substrate and
// doubles as an extra cross-check for the bipartite solvers, which must
// agree with it on bipartite inputs. The classic O(V^3) formulation: grow
// alternating trees from free vertices, contract odd cycles (blossoms) on
// the fly by re-basing vertices, augment when two trees meet.

// GeneralGraph is an undirected graph on n vertices for GeneralMaximum.
type GeneralGraph struct {
	n   int
	adj [][]int32
}

// NewGeneralGraph returns an empty undirected graph with n vertices.
func NewGeneralGraph(n int) *GeneralGraph {
	return &GeneralGraph{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *GeneralGraph) N() int { return g.n }

// AddEdge adds the undirected edge {u, v}. Self-loops are rejected.
func (g *GeneralGraph) AddEdge(u, v int) {
	if u == v {
		panic("matching: self-loop in general graph")
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
}

// Adj returns the neighbors of v.
func (g *GeneralGraph) Adj(v int) []int32 { return g.adj[v] }

// GeneralMaximum computes a maximum matching of g and returns the partner
// array (None for unmatched vertices).
func GeneralMaximum(g *GeneralGraph) []int32 {
	bm := &blossomMatcher{
		g:     g,
		match: make([]int32, g.n),
		p:     make([]int32, g.n),
		base:  make([]int32, g.n),
		used:  make([]bool, g.n),
		inB:   make([]bool, g.n),
		inP:   make([]bool, g.n),
	}
	for i := range bm.match {
		bm.match[i] = None
	}
	for v := 0; v < g.n; v++ {
		if bm.match[v] == None {
			bm.findPath(int32(v))
		}
	}
	return bm.match
}

// GeneralMaximumSize returns only the matching cardinality.
func GeneralMaximumSize(g *GeneralGraph) int {
	match := GeneralMaximum(g)
	size := 0
	for _, m := range match {
		if m != None {
			size++
		}
	}
	return size / 2
}

type blossomMatcher struct {
	g     *GeneralGraph
	match []int32 // partner or None
	p     []int32 // alternating-tree parent (via the non-matching edge)
	base  []int32 // blossom base of each vertex
	used  []bool  // vertex is in the alternating tree (even level)
	inB   []bool  // scratch: vertex bases inside the current blossom
	inP   []bool  // scratch: bases on the current ancestor path
}

// lca finds the common base of a and b along their tree paths.
func (bm *blossomMatcher) lca(a, b int32) int32 {
	for i := range bm.inP {
		bm.inP[i] = false
	}
	for {
		a = bm.base[a]
		bm.inP[a] = true
		if bm.match[a] == None {
			break
		}
		a = bm.p[bm.match[a]]
	}
	for {
		b = bm.base[b]
		if bm.inP[b] {
			return b
		}
		b = bm.p[bm.match[b]]
	}
}

// markPath walks from v up to the blossom base, marking the bases on the way
// as part of the blossom and setting parent pointers through child.
func (bm *blossomMatcher) markPath(v, b, child int32) {
	for bm.base[v] != b {
		bm.inB[bm.base[v]] = true
		bm.inB[bm.base[bm.match[v]]] = true
		bm.p[v] = child
		child = bm.match[v]
		v = bm.p[bm.match[v]]
	}
}

// findPath grows an alternating tree from root; on success it augments and
// returns true.
func (bm *blossomMatcher) findPath(root int32) bool {
	n := bm.g.n
	for i := 0; i < n; i++ {
		bm.used[i] = false
		bm.p[i] = None
		bm.base[i] = int32(i)
	}
	bm.used[root] = true
	queue := make([]int32, 0, n)
	queue = append(queue, root)

	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, to := range bm.g.adj[v] {
			if bm.base[v] == bm.base[to] || bm.match[v] == to {
				continue
			}
			if to == root || (bm.match[to] != None && bm.p[bm.match[to]] != None) {
				// Odd cycle: contract the blossom.
				curBase := bm.lca(v, to)
				for i := range bm.inB {
					bm.inB[i] = false
				}
				bm.markPath(v, curBase, to)
				bm.markPath(to, curBase, v)
				for i := int32(0); i < int32(n); i++ {
					if bm.inB[bm.base[i]] {
						bm.base[i] = curBase
						if !bm.used[i] {
							bm.used[i] = true
							queue = append(queue, i)
						}
					}
				}
			} else if bm.p[to] == None {
				bm.p[to] = v
				if bm.match[to] == None {
					bm.augment(to)
					return true
				}
				bm.used[bm.match[to]] = true
				queue = append(queue, bm.match[to])
			}
		}
	}
	return false
}

// augment flips the alternating path ending at the free vertex v.
func (bm *blossomMatcher) augment(v int32) {
	for v != None {
		pv := bm.p[v]
		ppv := bm.match[pv]
		bm.match[v] = pv
		bm.match[pv] = v
		v = ppv
	}
}

// VerifyGeneral checks that match is a consistent matching of g.
func VerifyGeneral(g *GeneralGraph, match []int32) bool {
	if len(match) != g.n {
		return false
	}
	for v, m := range match {
		if m == None {
			continue
		}
		if m < 0 || int(m) >= g.n || match[m] != int32(v) {
			return false
		}
		found := false
		for _, to := range g.adj[v] {
			if to == m {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// BruteGeneralMaximumSize is the exponential reference for tests.
func BruteGeneralMaximumSize(g *GeneralGraph) int {
	type edge struct{ u, v int32 }
	var edges []edge
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				edges = append(edges, edge{int32(u), v})
			}
		}
	}
	used := make([]bool, g.n)
	var rec func(i int) int
	rec = func(i int) int {
		if i == len(edges) {
			return 0
		}
		best := rec(i + 1)
		e := edges[i]
		if !used[e.u] && !used[e.v] {
			used[e.u], used[e.v] = true, true
			if v := 1 + rec(i+1); v > best {
				best = v
			}
			used[e.u], used[e.v] = false, false
		}
		return best
	}
	return rec(0)
}
