package matching

// PreferLowAtClass reassigns the occupants of the right vertices of the given
// weight class so that, processing left vertices in ascending index order,
// each claims a class vertex whose current occupant has a higher index —
// provided the occupant can be relocated without disturbing any other vertex
// of that class and without changing the per-class coverage counts.
//
// In the scheduling application the class is the current round: among the
// matchings that are maximum, current-round-maximal and (for A_balance)
// F-maximal, this picks the member that serves the *oldest* pending requests
// now. That is exactly the member the paper's lower-bound proofs for A_eager
// (Theorem 2.4) and A_balance (Theorem 2.5) reason about: without it, the
// slot-greedy tends to pull old requests into late slots via augmenting
// reroutes and serve young ones immediately, accidentally realizing a
// near-optimal member of the strategy class.
//
// Cardinality, the covered set of class vertices, and the per-class coverage
// counts are all preserved; matched left vertices stay matched (so previously
// scheduled requests remain scheduled). Returns the number of swaps.
func PreferLowAtClass(g *Graph, m *Matching, classOf []int32, class int32) int {
	a := &avoidDFS{
		g:       g,
		m:       m,
		classOf: classOf,
		avoid:   class,
		seenL:   make([]bool, g.NLeft()),
		seenR:   make([]bool, g.NRight()),
	}
	return preferLowAtClass(g, m, classOf, class, a)
}

// preferLowAtClass is the exchange loop shared by PreferLowAtClass and
// Scratch.PreferLowAtClass; a carries the (possibly reused) search marks.
func preferLowAtClass(g *Graph, m *Matching, classOf []int32, class int32, a *avoidDFS) int {
	swaps := 0
	for l := 0; l < g.NLeft(); l++ {
		cur := m.L2R[l]
		if cur != None && classOf[cur] == class {
			continue // already served in this class
		}
		for _, r := range g.adj[l] {
			if classOf[r] != class {
				continue
			}
			occ := m.R2L[r]
			if occ == None || occ <= int32(l) {
				// A free class slot adjacent to l cannot happen when m is
				// maximal with maximal class coverage; an older occupant
				// keeps its seat.
				continue
			}
			// Tentatively seat l at r and relocate the occupant. The
			// relocation must consume a free slot of the same class as l's
			// old slot so the class-coverage vector is unchanged (any slot
			// if l held none, which cannot extend a maximum matching and
			// thus fails harmlessly).
			target := int32(-1)
			if cur != None {
				target = classOf[cur]
			}
			m.UnmatchLeft(l)
			m.UnmatchLeft(int(occ))
			m.Match(l, int(r))
			if a.relocate(occ, target) {
				swaps++
				break
			}
			// Revert.
			m.UnmatchLeft(l)
			m.Match(int(occ), int(r))
			if cur != None {
				m.Match(l, int(cur))
			}
		}
	}
	return swaps
}

// avoidDFS is an augmenting search that never visits right vertices of the
// avoided class and only terminates in a free right vertex of the target
// class, guaranteeing the exchange is class-neutral.
type avoidDFS struct {
	g       *Graph
	m       *Matching
	classOf []int32
	avoid   int32
	seenL   []bool
	seenR   []bool
}

// relocate rematches the (currently unmatched) left vertex l, rerouting other
// pairs as needed. Success implies exactly one free right vertex of class
// `target` became covered (any class if target is -1). Failure leaves the
// matching untouched.
func (a *avoidDFS) relocate(l int32, target int32) bool {
	for i := range a.seenL {
		a.seenL[i] = false
	}
	for i := range a.seenR {
		a.seenR[i] = false
	}
	return a.dfs(l, target)
}

func (a *avoidDFS) dfs(l int32, target int32) bool {
	a.seenL[l] = true
	for _, r := range a.g.adj[l] {
		if a.classOf[r] == a.avoid || a.seenR[r] {
			continue
		}
		if a.m.R2L[r] == None && (target == -1 || a.classOf[r] == target) {
			a.seenR[r] = true
			a.m.Match(int(l), int(r))
			return true
		}
	}
	for _, r := range a.g.adj[l] {
		if a.classOf[r] == a.avoid || a.seenR[r] {
			continue
		}
		ml := a.m.R2L[r]
		if ml == None {
			continue // free but wrong class: not a valid endpoint, and
			// rerouting through it would change coverage
		}
		a.seenR[r] = true
		if a.dfs(ml, target) {
			a.m.Match(int(l), int(r))
			return true
		}
	}
	return false
}
