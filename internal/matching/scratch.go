package matching

// Scratch holds the reusable buffers of every solver in the package, so a
// caller that recomputes matchings round after round (the rescheduling
// strategies, the parallel measurement harness) reaches a steady state with
// no per-round allocation. The zero value is ready to use; buffers grow
// monotonically to the largest graph seen. A Scratch is not safe for
// concurrent use — give each goroutine (or each strategy instance) its own.
//
// Every method is the exact algorithm of the corresponding package-level
// function; results are bit-for-bit identical, only the buffer lifetimes
// differ. The free functions delegate to a throwaway Scratch.
type Scratch struct {
	aug        augmenter
	dist       []int32 // Hopcroft–Karp BFS layers
	queue      []int32 // Hopcroft–Karp BFS queue
	order      []int   // rightsByClass result buffer
	classCount []int   // rightsByClass counting-sort buffer
	seenLB     []bool  // PreferLowAtClass relocation marks
	seenRB     []bool
}

// ExtendFromLeft is ExtendFromLeft with reused search buffers.
func (sc *Scratch) ExtendFromLeft(g *Graph, m *Matching, order []int) int {
	sc.aug.bind(g)
	gained := 0
	for _, l := range order {
		if m.L2R[l] != None {
			continue
		}
		if sc.aug.augmentFromLeft(m, l) {
			gained++
		}
	}
	return gained
}

// ExtendFromRight is ExtendFromRight with reused search buffers.
func (sc *Scratch) ExtendFromRight(g *Graph, m *Matching, order []int) int {
	sc.aug.bind(g)
	gained := 0
	for _, r := range order {
		if m.R2L[r] != None {
			continue
		}
		if sc.aug.augmentFromRight(m, r) {
			gained++
		}
	}
	return gained
}

// LexMaxExtend is LexMaxExtend with reused class-sort and search buffers.
func (sc *Scratch) LexMaxExtend(g *Graph, m *Matching, classOf []int32) int {
	checkClassLen(g, classOf)
	sc.order, sc.classCount = rightsByClassInto(sc.order, sc.classCount, classOf)
	return sc.ExtendFromRight(g, m, sc.order)
}

// HopcroftKarpExtend is HopcroftKarpExtend with reused BFS buffers.
func (sc *Scratch) HopcroftKarpExtend(g *Graph, m *Matching) int {
	nl := g.NLeft()
	if cap(sc.dist) < nl {
		sc.dist = make([]int32, nl)
	}
	if cap(sc.queue) < nl {
		sc.queue = make([]int32, 0, nl)
	}
	dist := sc.dist[:nl]
	queue := sc.queue[:0]
	total := 0
	inf := hkInfinity()

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nl; l++ {
			if m.L2R[l] == None {
				dist[l] = 0
				queue = append(queue, int32(l))
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range g.adj[l] {
				ml := m.R2L[r]
				if ml == None {
					found = true
				} else if dist[ml] == inf {
					dist[ml] = dist[l] + 1
					queue = append(queue, ml)
				}
			}
		}
		return found
	}

	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range g.adj[l] {
			ml := m.R2L[r]
			if ml == None || (dist[ml] == dist[l]+1 && dfs(ml)) {
				m.Match(int(l), int(r))
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < nl; l++ {
			if m.L2R[l] == None && dist[l] == 0 {
				if dfs(int32(l)) {
					total++
				}
			}
		}
	}
	sc.queue = queue[:0]
	return total
}

// PreferLowAtClass is PreferLowAtClass with reused relocation marks.
func (sc *Scratch) PreferLowAtClass(g *Graph, m *Matching, classOf []int32, class int32) int {
	sc.seenLB = ensureBools(sc.seenLB, g.NLeft())
	sc.seenRB = ensureBools(sc.seenRB, g.NRight())
	a := &avoidDFS{
		g:       g,
		m:       m,
		classOf: classOf,
		avoid:   class,
		seenL:   sc.seenLB[:g.NLeft()],
		seenR:   sc.seenRB[:g.NRight()],
	}
	return preferLowAtClass(g, m, classOf, class, a)
}

// ensureBools returns s with length at least n, reusing capacity. Contents
// are irrelevant: avoidDFS clears its marks before every search.
func ensureBools(s []bool, n int) []bool {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		return s[:n]
	}
	return make([]bool, n)
}
