package matching

// FlowNetwork is a directed flow network for Dinic's algorithm, used as an
// independent cross-check of the matching solvers (a bipartite maximum
// matching equals the max flow of the unit-capacity network source->left->
// right->sink).
type FlowNetwork struct {
	n     int
	head  []int32 // head[v]: first edge index of v, -1 if none
	next  []int32 // next[e]: next edge out of the same vertex
	to    []int32
	cap   []int32
	level []int32
	iter  []int32
}

// NewFlowNetwork returns an empty network with n vertices.
func NewFlowNetwork(n int) *FlowNetwork {
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return &FlowNetwork{n: n, head: head}
}

// AddEdge adds a directed edge u->v with the given capacity (and its residual
// reverse edge with capacity 0). It returns the edge index, whose flow can be
// read back with Flow.
func (f *FlowNetwork) AddEdge(u, v, capacity int) int {
	id := len(f.to)
	f.to = append(f.to, int32(v))
	f.cap = append(f.cap, int32(capacity))
	f.next = append(f.next, f.head[u])
	f.head[u] = int32(id)

	f.to = append(f.to, int32(u))
	f.cap = append(f.cap, 0)
	f.next = append(f.next, f.head[v])
	f.head[v] = int32(id + 1)
	return id
}

// Flow returns the flow currently on edge id (the amount moved onto its
// residual twin).
func (f *FlowNetwork) Flow(id int) int { return int(f.cap[id^1]) }

// MaxFlow runs Dinic's algorithm from s to t and returns the max flow value.
func (f *FlowNetwork) MaxFlow(s, t int) int {
	f.level = make([]int32, f.n)
	f.iter = make([]int32, f.n)
	total := 0
	for f.bfs(s, t) {
		copy(f.iter, f.head)
		for {
			pushed := f.dfs(int32(s), int32(t), int32(1)<<30)
			if pushed == 0 {
				break
			}
			total += int(pushed)
		}
	}
	return total
}

func (f *FlowNetwork) bfs(s, t int) bool {
	for i := range f.level {
		f.level[i] = -1
	}
	f.level[s] = 0
	queue := []int32{int32(s)}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for e := f.head[v]; e != -1; e = f.next[e] {
			if f.cap[e] > 0 && f.level[f.to[e]] < 0 {
				f.level[f.to[e]] = f.level[v] + 1
				queue = append(queue, f.to[e])
			}
		}
	}
	return f.level[t] >= 0
}

func (f *FlowNetwork) dfs(v, t, limit int32) int32 {
	if v == t {
		return limit
	}
	for ; f.iter[v] != -1; f.iter[v] = f.next[f.iter[v]] {
		e := f.iter[v]
		u := f.to[e]
		if f.cap[e] > 0 && f.level[u] == f.level[v]+1 {
			d := f.dfs(u, t, min32(limit, f.cap[e]))
			if d > 0 {
				f.cap[e] -= d
				f.cap[e^1] += d
				return d
			}
		}
	}
	return 0
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// MaxMatchingByFlow computes the maximum matching cardinality of g via Dinic
// max flow. It is O(E sqrt(V)) like Hopcroft–Karp and exists purely as an
// independent implementation for cross-checking.
func MaxMatchingByFlow(g *Graph) int {
	nl, nr := g.NLeft(), g.NRight()
	s := nl + nr
	t := s + 1
	f := NewFlowNetwork(nl + nr + 2)
	for l := 0; l < nl; l++ {
		f.AddEdge(s, l, 1)
		for _, r := range g.Adj(l) {
			f.AddEdge(l, nl+int(r), 1)
		}
	}
	for r := 0; r < nr; r++ {
		f.AddEdge(nl+r, t, 1)
	}
	return f.MaxFlow(s, t)
}
