package matching

// MaxProfitMatching computes a matching of g maximizing the total profit of
// matched left vertices — not necessarily a maximum-cardinality matching:
// a low-profit vertex is left unmatched if seating it would displace more
// profit than it adds. Solved by successive shortest augmenting paths on the
// profit-as-negative-cost network, stopping as soon as the best augmenting
// path no longer pays for itself. With all profits equal it degenerates to a
// maximum-cardinality matching.
//
// This powers the weighted extension of the scheduling model (requests with
// priorities): the offline optimum for "maximize total weight served".
func MaxProfitMatching(g *Graph, profit []int64) *Matching {
	nl, nr := g.NLeft(), g.NRight()
	if len(profit) != nl {
		panic("matching: profit length mismatch")
	}
	s := nl + nr
	t := s + 1
	f := NewCostFlowNetwork(nl + nr + 2)
	edgeOf := make([][]int, nl)
	for l := 0; l < nl; l++ {
		f.AddEdge(s, l, 1, -profit[l])
		edgeOf[l] = make([]int, len(g.Adj(l)))
		for i, r := range g.Adj(l) {
			edgeOf[l][i] = f.AddEdge(l, nl+int(r), 1, 0)
		}
	}
	for r := 0; r < nr; r++ {
		f.AddEdge(nl+r, t, 1, 0)
	}
	f.minCostFlowWhileNegative(s, t)
	m := NewMatching(nl, nr)
	for l := 0; l < nl; l++ {
		for i, r := range g.Adj(l) {
			if f.Flow(edgeOf[l][i]) > 0 {
				m.Match(l, int(r))
			}
		}
	}
	return m
}

// ProfitOf sums the profits of m's matched left vertices.
func ProfitOf(m *Matching, profit []int64) int64 {
	var total int64
	for l, r := range m.L2R {
		if r != None {
			total += profit[l]
		}
	}
	return total
}

// minCostFlowWhileNegative augments along minimum-cost paths only while the
// path cost is negative (each augment strictly increases total profit).
func (f *CostFlowNetwork) minCostFlowWhileNegative(s, t int) {
	const inf64 = int64(1) << 62
	dist := make([]int64, f.n)
	inQueue := make([]bool, f.n)
	prevEdge := make([]int32, f.n)
	for {
		for i := range dist {
			dist[i] = inf64
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue := []int32{int32(s)}
		inQueue[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			inQueue[v] = false
			for e := f.head[v]; e != -1; e = f.next[e] {
				u := f.to[e]
				if f.cap[e] > 0 && dist[v]+f.cost[e] < dist[u] {
					dist[u] = dist[v] + f.cost[e]
					prevEdge[u] = e
					if !inQueue[u] {
						inQueue[u] = true
						queue = append(queue, u)
					}
				}
			}
		}
		if dist[t] >= 0 {
			return // no remaining profitable augmentation
		}
		for v := int32(t); v != int32(s); {
			e := prevEdge[v]
			f.cap[e]--
			f.cap[e^1]++
			v = f.to[e^1]
		}
	}
}

// BruteMaxProfit is the exponential reference: the maximum achievable total
// profit over all matchings.
func BruteMaxProfit(g *Graph, profit []int64) int64 {
	usedR := make([]bool, g.NRight())
	var rec func(l int) int64
	rec = func(l int) int64 {
		if l == g.NLeft() {
			return 0
		}
		best := rec(l + 1)
		for _, r := range g.Adj(l) {
			if !usedR[r] {
				usedR[r] = true
				if v := profit[l] + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}
