package matching

import (
	"math/rand"
	"testing"
)

func TestMaxProfitMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(7)
		nr := 1 + rng.Intn(7)
		g := randomGraph(rng, nl, nr, 0.35)
		profit := make([]int64, nl)
		for i := range profit {
			profit[i] = int64(1 + rng.Intn(20))
		}
		m := MaxProfitMatching(g, profit)
		if err := Verify(g, m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := ProfitOf(m, profit)
		want := BruteMaxProfit(g, profit)
		if got != want {
			t.Fatalf("trial %d: profit %d want %d", trial, got, want)
		}
	}
}

func TestMaxProfitEqualProfitsIsMaximumCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng, 12, 12, 0.25)
		profit := make([]int64, 12)
		for i := range profit {
			profit[i] = 3
		}
		m := MaxProfitMatching(g, profit)
		if m.Size() != HopcroftKarp(g).Size() {
			t.Fatalf("trial %d: equal profits should give maximum cardinality", trial)
		}
	}
}

func TestMaxProfitSkipsUnprofitableDisplacement(t *testing.T) {
	// One slot, two requests: the heavy one wins regardless of order.
	g := NewGraph(2, 1)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	m := MaxProfitMatching(g, []int64{1, 10})
	if m.R2L[0] != 1 {
		t.Fatalf("slot went to the light request: %v", m.R2L)
	}
	// Heavy first in index order too.
	m2 := MaxProfitMatching(g, []int64{10, 1})
	if m2.R2L[0] != 0 {
		t.Fatalf("slot went to the light request: %v", m2.R2L)
	}
}

func TestMaxProfitMayLeaveVerticesUnmatchedNever(t *testing.T) {
	// With positive profits, any free (left, right) pair would increase
	// profit, so the result must be maximal.
	rng := rand.New(rand.NewSource(132))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng, 8, 8, 0.3)
		profit := make([]int64, 8)
		for i := range profit {
			profit[i] = int64(1 + rng.Intn(5))
		}
		m := MaxProfitMatching(g, profit)
		if !IsMaximal(g, m) {
			t.Fatalf("trial %d: positive profits must yield a maximal matching", trial)
		}
	}
}
