package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/serve"
	"reqsched/internal/strategies"
	"reqsched/internal/trace"
	"reqsched/internal/workload"
)

// newServer boots a daemon plus an httptest frontend and registers cleanup.
func newServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Strategy == nil {
		cfg.Strategy = strategies.NewBalance()
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

type ingestReply struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error"`
	Offset   *int64 `json:"offset"`
}

func post(t *testing.T, ts *httptest.Server, body string) (int, ingestReply, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/requests", "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep ingestReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("ingest reply: %v", err)
	}
	return resp.StatusCode, rep, resp.Header
}

func drain(t *testing.T, ts *httptest.Server) serve.Metrics {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("drain reply: %v", err)
	}
	return m
}

func metrics(t *testing.T, ts *httptest.Server) serve.Metrics {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics reply: %v", err)
	}
	return m
}

// gappedTrace is a bursty workload whose quiet gaps exceed the deadline
// window, so the stream cuts into several independent segments — the shape
// that exercises the rolling-ratio pipeline.
func gappedTrace() *core.Trace {
	return workload.Bursty(workload.Config{N: 6, D: 4, Rounds: 90, Rate: 0, Seed: 5}, 3, 10, 8)
}

// TestVirtualClockBitIdenticalToRun is the tentpole equivalence check: a
// workload streamed through the daemon under the virtual clock must produce
// the same schedule — fulfillment by fulfillment — as core.Run on the
// materialized trace, and the rolling ratio must equal the post-hoc offline
// pipeline on the same stream.
func TestVirtualClockBitIdenticalToRun(t *testing.T) {
	tr := gappedTrace()
	var buf bytes.Buffer
	if err := trace.WriteStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	s, ts := newServer(t, serve.Config{N: tr.N, D: tr.D, Virtual: true, KeepLog: true})

	// Stream in two chunks split at a line boundary, header included in the
	// first — the daemon must stitch consecutive uploads seamlessly.
	lines := strings.SplitAfter(buf.String(), "\n")
	mid := len(lines) / 2
	for _, chunk := range []string{strings.Join(lines[:mid], ""), strings.Join(lines[mid:], "")} {
		code, rep, _ := post(t, ts, chunk)
		if code != http.StatusOK {
			t.Fatalf("ingest: status %d (%s)", code, rep.Error)
		}
	}
	m := drain(t, ts)

	want := core.Run(strategies.NewBalance(), tr)
	got := s.FinalResult()
	if got == nil {
		t.Fatal("no final result after drain")
	}
	if got.Requests != want.Requests || got.Fulfilled != want.Fulfilled || got.Expired != want.Expired {
		t.Fatalf("daemon requests/fulfilled/expired %d/%d/%d, engine %d/%d/%d",
			got.Requests, got.Fulfilled, got.Expired, want.Requests, want.Fulfilled, want.Expired)
	}
	if fmt.Sprint(got.PerResource) != fmt.Sprint(want.PerResource) {
		t.Fatalf("per-resource %v vs %v", got.PerResource, want.PerResource)
	}
	if len(got.Log) != len(want.Log) {
		t.Fatalf("log length %d vs %d", len(got.Log), len(want.Log))
	}
	for i := range got.Log {
		g, w := got.Log[i], want.Log[i]
		if g.Req.ID != w.Req.ID || g.Res != w.Res || g.Round != w.Round {
			t.Fatalf("fulfillment %d: (req %d, res %d, round %d) vs (req %d, res %d, round %d)",
				i, g.Req.ID, g.Res, g.Round, w.Req.ID, w.Res, w.Round)
		}
	}

	// Rolling ratio: OPT over solved segments must equal the stream's offline
	// optimum, ALG the engine's fulfillments, and the segment count the
	// clean-cut segmentation of the same stream.
	opt, nsegs, err := offline.OptimumStream(trace.Segments(bytes.NewReader(buf.Bytes())), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rolling.Opt != opt || m.Rolling.Alg != want.Fulfilled {
		t.Fatalf("rolling OPT/ALG %d/%d, offline pipeline %d/%d",
			m.Rolling.Opt, m.Rolling.Alg, opt, want.Fulfilled)
	}
	if m.Rolling.Closed != nsegs || m.Rolling.Solved != nsegs {
		t.Fatalf("segments closed/solved %d/%d, stream has %d", m.Rolling.Closed, m.Rolling.Solved, nsegs)
	}
	if nsegs < 2 {
		t.Fatalf("workload produced %d segments; the rolling pipeline needs several to mean anything", nsegs)
	}
	if m.Requests != want.Requests || m.Fulfilled != want.Fulfilled || m.Expired != want.Expired {
		t.Fatalf("drain metrics %d/%d/%d disagree with engine %d/%d/%d",
			m.Requests, m.Fulfilled, m.Expired, want.Requests, want.Fulfilled, want.Expired)
	}
	if m.Latency.Samples != want.Fulfilled {
		t.Fatalf("latency histogram holds %d samples, want %d", m.Latency.Samples, want.Fulfilled)
	}
	if m.Latency.Overflow != 0 {
		t.Fatalf("latency histogram overflowed %d times with buckets sized to the window", m.Latency.Overflow)
	}
	if !m.Latency.Exact {
		t.Fatal("latency stats not exact with buckets sized to the window")
	}
}

// TestBackpressure429 pins the bounded-queue contract: once the arrival
// queue is full the daemon answers 429 with a Retry-After hint and keeps the
// already-admitted records.
func TestBackpressure429(t *testing.T) {
	_, ts := newServer(t, serve.Config{N: 2, D: 2, Virtual: true, QueueCap: 3})
	body := strings.Repeat(`{"alts":[0,1]}`+"\n", 5)
	code, rep, hdr := post(t, ts, body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if rep.Accepted != 3 {
		t.Fatalf("accepted %d, want the queue capacity 3", rep.Accepted)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	m := metrics(t, ts)
	if m.QueueDepth != 3 || m.Rejected.QueueFull != 1 {
		t.Fatalf("queue depth %d (want 3), queue_full rejections %d (want 1)", m.QueueDepth, m.Rejected.QueueFull)
	}
}

// TestRetryAfterScalesWithBacklog pins the Retry-After estimate against the
// actual drain time. A server with n resources serves at most n queued
// records per round, so a full queue of depth q needs ceil(q/n) rounds to
// clear; telling the client to come back after one round (the old behavior)
// guarantees another 429 and a retry stampede exactly when the daemon is
// most loaded.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	_, ts := newServer(t, serve.Config{
		N: 2, D: 2, Virtual: true, RoundDur: time.Second, QueueCap: 100,
	})
	body := strings.Repeat(`{"alts":[0,1]}`+"\n", 101)
	code, rep, hdr := post(t, ts, body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if rep.Accepted != 100 {
		t.Fatalf("accepted %d, want the queue capacity 100", rep.Accepted)
	}
	// 100 queued records at 2 per round: 50 rounds of 1s each.
	if got := hdr.Get("Retry-After"); got != "50" {
		t.Fatalf("Retry-After %q, want \"50\" (100 queued / 2 per round * 1s)", got)
	}
}

// TestRetryAfterFloorsAtOneSecond: sub-second rounds and an empty queue must
// still yield a positive, RFC-valid hint.
func TestRetryAfterFloorsAtOneSecond(t *testing.T) {
	_, ts := newServer(t, serve.Config{
		N: 2, D: 2, Virtual: true, RoundDur: 100 * time.Millisecond, QueueCap: 1,
	})
	body := strings.Repeat(`{"alts":[0,1]}`+"\n", 2)
	code, _, hdr := post(t, ts, body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	// 1 queued record drains in one 0.1s round; the hint rounds up to 1s.
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", got)
	}
}

// TestMalformedLineOffset pins admission control: a malformed line is
// rejected with 400 naming its byte offset within the body, everything
// before it stays admitted.
func TestMalformedLineOffset(t *testing.T) {
	_, ts := newServer(t, serve.Config{N: 2, D: 2, Virtual: true})
	header := `{"n":2,"d":2}` + "\n"
	good := `{"alts":[0,1]}` + "\n"
	bad := `{"alts":[0,` + "\n"
	code, rep, _ := post(t, ts, header+good+bad)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if rep.Accepted != 1 {
		t.Fatalf("accepted %d, want 1", rep.Accepted)
	}
	wantOff := int64(len(header) + len(good))
	if rep.Offset == nil || *rep.Offset != wantOff {
		t.Fatalf("offset %v, want %d", rep.Offset, wantOff)
	}

	// A structurally valid record naming a resource out of range is equally
	// malformed.
	code, rep, _ = post(t, ts, `{"alts":[0,7]}`+"\n")
	if code != http.StatusBadRequest || rep.Error == "" {
		t.Fatalf("out-of-range resource: status %d error %q", code, rep.Error)
	}
	if m := metrics(t, ts); m.Rejected.Malformed != 2 {
		t.Fatalf("malformed rejections %d, want 2", m.Rejected.Malformed)
	}

	// A mismatched stream header is refused before any record.
	code, rep, _ = post(t, ts, `{"n":4,"d":2}`+"\n"+good)
	if code != http.StatusBadRequest || rep.Accepted != 0 {
		t.Fatalf("header mismatch: status %d accepted %d", code, rep.Accepted)
	}

	// A body ending mid-record is a torn tail, same contract as trace files.
	code, rep, _ = post(t, ts, good+`{"alts":[0`)
	if code != http.StatusBadRequest || rep.Accepted != 1 || rep.Offset == nil || *rep.Offset != int64(len(good)) {
		t.Fatalf("torn tail: status %d accepted %d offset %v", code, rep.Accepted, rep.Offset)
	}
}

// TestVirtualOutOfOrder pins the virtual-clock ordering contract: a record
// for a round the engine has already closed is rejected, not silently
// reassigned.
func TestVirtualOutOfOrder(t *testing.T) {
	_, ts := newServer(t, serve.Config{N: 2, D: 2, Virtual: true})
	code, rep, _ := post(t, ts, `{"t":5,"alts":[0,1]}`+"\n"+`{"t":3,"alts":[0,1]}`+"\n")
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if rep.Accepted != 1 || !strings.Contains(rep.Error, "closed") {
		t.Fatalf("accepted %d error %q", rep.Accepted, rep.Error)
	}
}

// TestWallClockTick drives the wall-clock mode deterministically (RoundDur 0
// disables the ticker): queued arrivals join the round of the next tick, and
// a client-stamped record whose window already ran out is dead on arrival.
func TestWallClockTick(t *testing.T) {
	s, ts := newServer(t, serve.Config{N: 2, D: 2})
	code, rep, _ := post(t, ts, `{"alts":[0,1]}`+"\n"+`{"alts":[1,0]}`+"\n")
	if code != http.StatusOK || rep.Accepted != 2 {
		t.Fatalf("status %d accepted %d", code, rep.Accepted)
	}
	if m := metrics(t, ts); m.QueueDepth != 2 || m.Round != 0 {
		t.Fatalf("before tick: queue %d round %d", m.QueueDepth, m.Round)
	}
	s.Tick()
	m := metrics(t, ts)
	if m.QueueDepth != 0 || m.Round != 1 || m.Requests != 2 {
		t.Fatalf("after tick: queue %d round %d requests %d", m.QueueDepth, m.Round, m.Requests)
	}
	if m.Fulfilled != 2 {
		t.Fatalf("two requests naming both resources should be served in round 0, got %d", m.Fulfilled)
	}

	// A t=0 stamp is indistinguishable from an unstamped record (the JSON
	// zero value), so expiry is only checked for positive stamps: tick to
	// round 2, then a record stamped t=1 with window 1 is dead on arrival.
	s.Tick()
	code, rep, _ = post(t, ts, `{"t":1,"d":1,"alts":[0,1]}`+"\n")
	if code != http.StatusBadRequest || !strings.Contains(rep.Error, "expired") {
		t.Fatalf("expired-on-arrival: status %d error %q", code, rep.Error)
	}
	if m := metrics(t, ts); m.Rejected.Expired != 1 {
		t.Fatalf("expired rejections %d, want 1", m.Rejected.Expired)
	}
}

// TestDrainSemantics pins graceful shutdown: drain refuses new records, is
// idempotent, and reports final totals.
func TestDrainSemantics(t *testing.T) {
	_, ts := newServer(t, serve.Config{N: 2, D: 3, Virtual: true})
	if code, rep, _ := post(t, ts, `{"alts":[0,1]}`+"\n"); code != http.StatusOK || rep.Accepted != 1 {
		t.Fatalf("seed ingest failed: %d %v", code, rep)
	}
	m := drain(t, ts)
	if !m.Finished || !m.Draining {
		t.Fatalf("drain metrics not final: %+v", m)
	}
	if m.Requests != 1 || m.Fulfilled != 1 || m.Pending != 0 {
		t.Fatalf("drained totals requests=%d fulfilled=%d pending=%d", m.Requests, m.Fulfilled, m.Pending)
	}
	if m.Rolling.Solved != 1 || m.Rolling.Opt != 1 || m.Rolling.Alg != 1 || m.Rolling.Ratio != "1.0000" {
		t.Fatalf("rolling ratio after drain: %+v", m.Rolling)
	}
	code, rep, _ := post(t, ts, `{"alts":[0,1]}`+"\n")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after drain: status %d, want 503 (%s)", code, rep.Error)
	}
	if again := drain(t, ts); again.Requests != m.Requests || again.Fulfilled != m.Fulfilled {
		t.Fatalf("drain is not idempotent: %+v vs %+v", again, m)
	}
}

// TestCRLFIngest ties the CRLF scanner fix to the network path: a client
// uploading CRLF-terminated lines is indistinguishable from an LF one.
func TestCRLFIngest(t *testing.T) {
	_, ts := newServer(t, serve.Config{N: 2, D: 2, Virtual: true})
	body := "{\"n\":2,\"d\":2}\r\n{\"alts\":[0,1]}\r\n{\"t\":1,\"alts\":[1,0]}\r\n"
	code, rep, _ := post(t, ts, body)
	if code != http.StatusOK || rep.Accepted != 2 {
		t.Fatalf("CRLF ingest: status %d accepted %d (%s)", code, rep.Accepted, rep.Error)
	}
}

// TestPrometheusExposition smoke-tests the text format: key series present,
// one value spot-checked.
func TestPrometheusExposition(t *testing.T) {
	_, ts := newServer(t, serve.Config{N: 2, D: 2, Virtual: true})
	post(t, ts, `{"alts":[0,1]}`+"\n")
	drain(t, ts)
	resp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		"reqsched_fulfilled_total 1",
		"reqsched_rolling_competitive_ratio 1.0000",
		`reqsched_rejected_total{reason="queue_full"} 0`,
		`reqsched_resource_served_total{resource="0"}`,
		"reqsched_latency_rounds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
}

// TestConcurrentIngest hammers the daemon from several goroutines (all
// records for the same round, so admission order is immaterial) — primarily
// a race-detector target for the mutex and the ratio worker.
func TestConcurrentIngest(t *testing.T) {
	_, ts := newServer(t, serve.Config{N: 4, D: 4, Virtual: true, QueueCap: 1 << 14})
	const clients, per = 8, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := strings.Repeat(`{"alts":[0,1]}`+"\n", per)
			resp, err := http.Post(ts.URL+"/v1/requests", "application/jsonl", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	m := drain(t, ts)
	if m.Requests != clients*per {
		t.Fatalf("admitted %d, want %d", m.Requests, clients*per)
	}
	if m.Fulfilled+m.Expired != m.Requests {
		t.Fatalf("fulfilled %d + expired %d != requests %d", m.Fulfilled, m.Expired, m.Requests)
	}
}

// TestConfigValidation pins New's input checks.
func TestConfigValidation(t *testing.T) {
	for _, cfg := range []serve.Config{
		{N: 0, D: 2, Strategy: strategies.NewBalance()},
		{N: 2, D: 0, Strategy: strategies.NewBalance()},
		{N: 2, D: 2},
		{N: 2, D: 4, MaxD: 2, Strategy: strategies.NewBalance()},
		{N: 2, D: 2, QueueCap: -1, Strategy: strategies.NewBalance()},
	} {
		if _, err := serve.New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
}

// TestWindowCap pins the MaxD admission bound: a record asking for a longer
// window than the daemon's schedule lookahead is refused, not clamped.
func TestWindowCap(t *testing.T) {
	_, ts := newServer(t, serve.Config{N: 2, D: 2, MaxD: 3, Virtual: true})
	code, rep, _ := post(t, ts, `{"d":4,"alts":[0,1]}`+"\n")
	if code != http.StatusBadRequest || !strings.Contains(rep.Error, "maximum") {
		t.Fatalf("oversized window: status %d error %q", code, rep.Error)
	}
	if code, rep, _ = post(t, ts, `{"d":3,"alts":[0,1]}`+"\n"); code != http.StatusOK || rep.Accepted != 1 {
		t.Fatalf("window at the cap: status %d accepted %d (%s)", code, rep.Accepted, rep.Error)
	}
}
