// Package serve turns the round engine into a live network-facing scheduler
// daemon: an HTTP server ingesting JSONL request records (the trace stream
// wire format) into a bounded arrival queue that feeds a core.Stepper round
// by round. The daemon runs any registry strategy, exposes live metrics —
// including a rolling empirical competitive ratio computed online by cutting
// admitted arrivals into independent time segments and solving each segment's
// offline optimum on a background worker — and drains gracefully on request
// or signal. Because the daemon and the batch engine share the same Stepper,
// a workload streamed through the daemon under the virtual clock produces a
// schedule bit-identical to core.Run on the equivalent trace.
package serve

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/ratio"
	"reqsched/internal/stats"
	"reqsched/internal/trace"
)

// Config parameterizes a Server.
type Config struct {
	// N is the number of resources; D the default deadline window applied to
	// records that omit one. Both must be >= 1.
	N, D int
	// MaxD caps the per-record deadline window the daemon admits (and sizes
	// the schedule lookahead and the latency histogram). 0 means D; values
	// below D are rejected, since default-window records would not fit.
	MaxD int
	// Strategy is the online strategy instance driving the engine. The daemon
	// serializes all engine access, so the instance need not be safe for
	// concurrent use. StrategyName is reported in metrics (defaults to
	// Strategy.Name()).
	Strategy     core.Strategy
	StrategyName string
	// Model is the service model the engine runs under (zero value: unit).
	// The strategy must support it — New returns the CheckModelSupport error
	// otherwise.
	Model core.ServiceModel
	// Virtual selects the deterministic clock: each record's T field is its
	// authoritative arrival round and the engine advances lazily as larger
	// rounds arrive. Without it the daemon runs on a wall clock: a ticker
	// fires every RoundDur and queued arrivals join the round of the next
	// tick. RoundDur == 0 disables the ticker (rounds advance only through
	// Tick — the deterministic way to test wall-clock semantics).
	Virtual  bool
	RoundDur time.Duration
	// QueueCap bounds the arrival queue; ingest answers 429 with Retry-After
	// once it is full. 0 means 4096.
	QueueCap int
	// KeepLog retains the full fulfillment log in the engine result (memory
	// grows with traffic; meant for equivalence tests, not production runs).
	KeepLog bool
	// IngestBatch is how many records one ingest connection decodes before
	// admitting them under a single engine-lock acquisition. 0 means 256;
	// 1 reproduces the original record-at-a-time admission. Admission order
	// and verdicts are identical for every value — batching only changes how
	// often the lock is taken.
	IngestBatch int
	// Stripes shards the wall-clock arrival queue: each ingest connection
	// buffers admitted records into one of Stripes shards guarded by its own
	// lock, and the shards merge — in shard order, IDs assigned at the merge —
	// at every tick. 0 means GOMAXPROCS; 1 keeps the single queue. Ignored
	// under the virtual clock, whose admission is order-dependent by contract.
	Stripes int
	// RollingBatch switches the rolling-ratio worker back to whole-segment
	// Hopcroft–Karp solves (with scratch reused across segments) instead of
	// the default per-request incremental matching. Values are identical
	// either way; the batch path exists as a fallback and for benchmarks.
	RollingBatch bool
}

// Server is the live scheduler daemon. Its HTTP surface is
//
//	POST /v1/requests  — JSONL records (optional header line), admitted or
//	                     rejected per line; 400 names the byte offset.
//	GET  /v1/metrics   — live counters, JSON or ?format=prometheus.
//	POST /v1/drain     — stop admitting, run out the deadline window, flush
//	                     the rolling ratio, answer with final metrics.
//
// All engine state is guarded by one mutex; only the segment-optimum worker
// runs outside it (it communicates through a channel and atomic counters).
type Server struct {
	cfg Config

	mu       sync.Mutex
	st       *core.Stepper
	hist     *stats.Histogram
	cutter   *trace.SegmentCutter
	queue    []*core.Request // admitted arrivals waiting for their round
	batchT   int             // virtual clock: round the queue belongs to
	nextID   int
	segCount int // requests in the cutter's open segment
	segMaxDL int // max deadline of the open segment
	algMark  int // Fulfilled at the last segment cut
	rej      rejectCounts
	draining bool
	finished bool
	final    *core.Result

	// wall-clock striped ingest fast path (nil when Stripes <= 1 or virtual)
	sq       *stripedQueue
	closedIn atomic.Bool  // mirrors draining/finished for the lock-free check
	round    atomic.Int64 // mirrors st.Round() for the expired-on-arrival check

	// rolling-ratio worker
	optCh  chan optJob
	wg     sync.WaitGroup
	ratMu  sync.Mutex
	opt    int // optimum over solved segments
	alg    int // fulfilled over the same segments
	solved int
	closed int

	stop chan struct{} // stops the wall-clock ticker
}

// optJob is one message to the rolling-ratio worker: a batch of admitted
// requests to feed the incremental matching, a seal of the open segment
// (carrying its ALG delta), or — on the batch fallback path — a whole closed
// segment to solve in one go.
type optJob struct {
	batch *reqBatch // incremental feed; worker recycles it into the pool
	seal  bool      // seal the open segment after feeding batch
	alg   int       // seal or seg: the closed segment's ALG delta
	seg   *core.Trace
}

// reqBatch is a pooled slice of admitted requests in flight to the
// rolling-ratio worker. The requests themselves are immutable once flushed
// into the engine, so the worker reads them without locks.
type reqBatch struct {
	recs []*core.Request
}

var batchPool = sync.Pool{New: func() any { return new(reqBatch) }}

type rejectCounts struct {
	Malformed int `json:"malformed"`
	QueueFull int `json:"queue_full"`
	Expired   int `json:"expired"`
	Draining  int `json:"draining"`
}

// New validates cfg and returns a ready server. The wall-clock ticker (if
// configured) starts immediately; Close or Drain stops it.
func New(cfg Config) (*Server, error) {
	if cfg.N < 1 || cfg.D < 1 {
		return nil, fmt.Errorf("serve: invalid n=%d d=%d", cfg.N, cfg.D)
	}
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("serve: no strategy configured")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	cfg.Model = cfg.Model.Norm()
	if err := core.CheckModelSupport(cfg.Strategy, cfg.Model); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.MaxD == 0 {
		cfg.MaxD = cfg.D
	}
	if cfg.MaxD < cfg.D {
		return nil, fmt.Errorf("serve: max window %d below default window %d", cfg.MaxD, cfg.D)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 4096
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("serve: queue capacity %d below 1", cfg.QueueCap)
	}
	if cfg.IngestBatch < 0 {
		return nil, fmt.Errorf("serve: ingest batch %d below 0", cfg.IngestBatch)
	}
	if cfg.IngestBatch == 0 {
		cfg.IngestBatch = 256
	}
	if cfg.Stripes < 0 {
		return nil, fmt.Errorf("serve: stripes %d below 0", cfg.Stripes)
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = runtime.GOMAXPROCS(0)
	}
	if cfg.Virtual {
		cfg.Stripes = 1 // admission is order-dependent under the virtual clock
	}
	if cfg.StrategyName == "" {
		cfg.StrategyName = cfg.Strategy.Name()
	}
	s := &Server{
		cfg:      cfg,
		hist:     stats.NewHistogram(cfg.MaxD),
		cutter:   trace.NewSegmentCutterModel(cfg.N, cfg.D, cfg.Model),
		segMaxDL: -1,
		optCh:    make(chan optJob, 256),
		stop:     make(chan struct{}),
	}
	if cfg.Stripes > 1 {
		s.sq = newStripedQueue(cfg.Stripes)
	}
	s.st = core.NewStepperModel(cfg.Strategy, cfg.N, cfg.D, cfg.MaxD, cfg.Model)
	s.st.KeepLog = cfg.KeepLog
	s.st.Observe = func(f core.Fulfillment) { s.hist.Add(f.Round - f.Req.Arrive) }
	s.wg.Add(1)
	go s.optWorker()
	if !cfg.Virtual && cfg.RoundDur > 0 {
		go s.runTicker()
	}
	return s, nil
}

// optWorker maintains the rolling offline optimum. On the default incremental
// path it feeds every admitted request into a maintained maximum matching —
// one augmenting-path search per request, all scratch reused across segments —
// so a seal folds the finished value in immediately instead of paying a cold
// whole-segment Hopcroft–Karp. On the batch fallback it still solves whole
// segments, but through a Solver whose graph/matching/search scratch persists
// across jobs. It touches no engine state, so optimum maintenance never blocks
// ingest (beyond the bounded channel's backpressure).
func (s *Server) optWorker() {
	defer s.wg.Done()
	inc := offline.NewIncrementalOptModel(s.cfg.N, s.cfg.Model)
	var sv *offline.Solver
	for job := range s.optCh {
		if job.seg != nil {
			if sv == nil {
				sv = offline.NewSolver()
			}
			s.foldSegment(sv.Optimum(job.seg), job.alg)
			continue
		}
		if job.batch != nil {
			for _, r := range job.batch.recs {
				inc.Add(r.Arrive, r.D, r.Alts)
			}
			job.batch.recs = job.batch.recs[:0]
			batchPool.Put(job.batch)
		}
		if job.seal {
			s.foldSegment(inc.Seal(), job.alg)
		}
	}
}

// foldSegment adds one solved segment's optimum and ALG to the rolling totals.
func (s *Server) foldSegment(opt, alg int) {
	s.ratMu.Lock()
	s.opt += opt
	s.alg += alg
	s.solved++
	s.ratMu.Unlock()
}

func (s *Server) runTicker() {
	tick := time.NewTicker(s.cfg.RoundDur)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.Tick()
		}
	}
}

// admitVerdict classifies one ingest record.
type admitVerdict int

const (
	admitOK admitVerdict = iota
	admitDraining
	admitQueueFull
	admitOutOfOrder
	admitExpired
	admitWindow
)

// admitLocked validates rec against the live engine state and, if admissible,
// queues it for its round. Under the virtual clock rec.T is the arrival
// round and a larger T first flushes the pending batch; under the wall clock
// the arrival round is assigned at the next tick and rec.T (when set) only
// feeds the expired-on-arrival check.
func (s *Server) admitLocked(rec trace.StreamRecord) admitVerdict {
	if s.draining || s.finished {
		s.rej.Draining++
		return admitDraining
	}
	if rec.D > s.cfg.MaxD {
		s.rej.Malformed++
		return admitWindow
	}
	if s.cfg.Virtual {
		// A round already simulated (or mid-batch round left behind) cannot
		// receive arrivals: the engine never rewinds.
		if rec.T < s.batchT || s.st.Round() > rec.T {
			s.rej.Expired++
			return admitOutOfOrder
		}
		if rec.T > s.batchT {
			s.flushLocked()
			s.batchT = rec.T
		}
	} else {
		// Wall clock: the record joins the next tick's round. A client-side
		// arrival stamp that already ran out its window is dead on arrival.
		if rec.T > 0 && rec.T+rec.D-1 < s.st.Round() {
			s.rej.Expired++
			return admitExpired
		}
		rec.T = s.st.Round()
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.rej.QueueFull++
		return admitQueueFull
	}
	r := &core.Request{
		ID:     s.nextID,
		Arrive: rec.T,
		Alts:   append([]int(nil), rec.Alts...),
		D:      rec.D,
		W:      rec.W,
	}
	s.nextID++
	s.queue = append(s.queue, r)
	return admitOK
}

// flushLocked admits the queued batch to the engine at round s.batchT:
// segment bookkeeping first (a batch past every buffered deadline closes the
// open segment), then the empty rounds up to the batch round, then the batch
// itself. On the incremental path the batch is also handed to the optimum
// worker, which has been matching the open segment's requests all along.
func (s *Server) flushLocked() {
	if len(s.queue) == 0 {
		return
	}
	t := s.batchT
	if s.segCount > 0 && t > s.segMaxDL && t%s.cfg.Model.Hold == 0 {
		// Clean cut: every request of the closing segment has deadline
		// <= segMaxDL < t, so running the engine through segMaxDL makes all
		// of the segment's services and expiries final before the snapshot.
		// Under hold > 1 the cut must also fall on an epoch boundary — the
		// same rule as offline.SegmentTrace — so the epoch-relaxed segment
		// optima sum to the whole stream's.
		s.runToLocked(s.segMaxDL + 1)
		if !s.cfg.RollingBatch {
			s.sealSegmentLocked()
		}
		s.segCount = 0
		s.segMaxDL = -1
	}
	if s.cfg.RollingBatch {
		for _, r := range s.queue {
			rec := trace.StreamRecord{T: r.Arrive, D: r.D, W: r.Weight(), Alts: r.Alts}
			if done := s.cutter.Add(rec); done != nil {
				s.closeSegmentLocked(done)
			}
		}
	} else {
		b := batchPool.Get().(*reqBatch)
		b.recs = append(b.recs[:0], s.queue...)
		s.optCh <- optJob{batch: b}
	}
	for _, r := range s.queue {
		s.segCount++
		if dl := r.Deadline(); dl > s.segMaxDL {
			s.segMaxDL = dl
		}
	}
	s.runToLocked(t)
	s.st.Step(s.queue)
	s.queue = s.queue[:0]
}

// closeSegmentLocked snapshots the engine's fulfillment delta for a closed
// segment and hands it to the optimum worker (batch fallback path). The
// engine has completed every round the segment spans, so the delta is exactly
// the segment's ALG.
func (s *Server) closeSegmentLocked(seg *core.Trace) {
	res := s.st.Result()
	job := optJob{seg: seg, alg: res.Fulfilled - s.algMark}
	s.algMark = res.Fulfilled
	s.closed++
	s.optCh <- job
}

// sealSegmentLocked tells the optimum worker to seal the open segment
// (incremental path). The engine has completed every round the segment spans,
// so the fulfillment delta is exactly the segment's ALG — the same snapshot
// point closeSegmentLocked uses.
func (s *Server) sealSegmentLocked() {
	res := s.st.Result()
	job := optJob{seal: true, alg: res.Fulfilled - s.algMark}
	s.algMark = res.Fulfilled
	s.closed++
	s.optCh <- job
}

// runToLocked steps empty rounds until the engine's next round is t.
func (s *Server) runToLocked(t int) {
	for s.st.Round() < t {
		s.st.Step(nil)
	}
}

// Tick advances the wall clock by one round, admitting the queued batch. It
// is what the RoundDur ticker calls; tests call it directly.
func (s *Server) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Virtual || s.finished {
		return
	}
	t := s.st.Round()
	s.mergeStripesLocked(false)
	for _, r := range s.queue {
		r.Arrive = t // definitive arrival round is assigned at the tick
	}
	s.batchT = t
	if len(s.queue) > 0 {
		s.flushLocked()
	} else {
		s.st.Step(nil)
	}
	s.round.Store(int64(s.st.Round()))
}

// Drain stops admitting, runs the engine until no request is pending, closes
// the trailing segment, waits for the optimum worker and finalizes the
// result. It is idempotent; every call returns the final metrics.
func (s *Server) Drain() Metrics {
	s.mu.Lock()
	if s.finished {
		m := s.metricsLocked()
		s.mu.Unlock()
		return m
	}
	s.draining = true
	s.closedIn.Store(true)
	if !s.cfg.Virtual {
		s.mergeStripesLocked(true)
		for _, r := range s.queue {
			r.Arrive = s.st.Round()
		}
		s.batchT = s.st.Round()
	}
	s.flushLocked()
	for s.st.Pending() > 0 {
		s.st.Step(nil)
	}
	if s.cfg.RollingBatch {
		if done := s.cutter.Finish(); done != nil {
			s.closeSegmentLocked(done)
		}
	} else if s.segCount > 0 {
		s.sealSegmentLocked()
		s.segCount = 0
		s.segMaxDL = -1
	}
	close(s.optCh)
	s.mu.Unlock()

	s.wg.Wait() // all segments solved; rolling totals final
	close(s.stop)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.final = s.st.Finish()
	s.finished = true
	return s.metricsLocked()
}

// Close stops the ticker and the worker without draining — for servers that
// were never drained (e.g. a test tearing down). Safe after Drain.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.finished {
		s.finished = true
		s.closedIn.Store(true)
		close(s.optCh)
		s.mu.Unlock()
		s.wg.Wait()
		close(s.stop)
		return
	}
	s.mu.Unlock()
}

// FinalResult returns the engine result after Drain (nil before).
func (s *Server) FinalResult() *core.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.final
}

// Metrics is a point-in-time snapshot of the daemon's counters.
type Metrics struct {
	Strategy string `json:"strategy"`
	N        int    `json:"n"`
	D        int    `json:"d"`
	// Model is the service model string ("hold=H,cap=C"); omitted under the
	// unit model, keeping unit-daemon metrics byte-identical to before.
	Model   string `json:"model,omitempty"`
	Round   int    `json:"round"`
	Virtual bool   `json:"virtual_clock"`

	Requests  int `json:"requests"`
	Fulfilled int `json:"fulfilled"`
	Expired   int `json:"expired"`
	Pending   int `json:"pending"`

	QueueDepth int          `json:"queue_depth"`
	QueueCap   int          `json:"queue_cap"`
	Rejected   rejectCounts `json:"rejected"`
	Resources  []int        `json:"per_resource"`
	// Occupancy gauges how many capacity units of each resource are busy at
	// the engine's current round — holds still running plus planned services.
	// Only reported under a non-unit model (always zero between rounds at
	// hold=1, cap=1).
	Occupancy []int        `json:"occupancy,omitempty"`
	Latency   LatencyStats `json:"latency"`
	Rolling   RollingRatio `json:"rolling_ratio"`
	Draining  bool         `json:"draining"`
	Finished  bool         `json:"finished"`
}

// LatencyStats summarizes the service-latency histogram (rounds waited
// between arrival and service). Overflow counts samples clamped into the last
// bucket — with the histogram sized to the maximum window it stays 0, so a
// non-zero value flags a sizing bug rather than load. Exact mirrors
// Histogram.Exact: when false, Mean and the quantiles value the clamped tails
// at their sentinels (-1 / bucket count) instead of understating them.
type LatencyStats struct {
	Samples  int     `json:"samples"`
	Mean     float64 `json:"mean"`
	P50      int     `json:"p50"`
	P90      int     `json:"p90"`
	P99      int     `json:"p99"`
	Overflow int     `json:"overflow"`
	Exact    bool    `json:"exact"`
}

// RollingRatio is the online competitive-ratio estimate: OPT and ALG summed
// over the time segments whose offline optimum the background worker has
// solved so far. Closed counts segments handed to the worker; Solved the ones
// already folded in — the ratio is exact over exactly the solved segments.
// Ratio uses the shared FormatRatio convention ("inf" when starved, "1.0000"
// with no data) because JSON cannot encode infinities as numbers.
type RollingRatio struct {
	Opt    int    `json:"opt"`
	Alg    int    `json:"alg"`
	Closed int    `json:"segments_closed"`
	Solved int    `json:"segments_solved"`
	Ratio  string `json:"ratio"`
}

// Metrics returns a live snapshot.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metricsLocked()
}

func (s *Server) metricsLocked() Metrics {
	res := s.st.Result()
	m := Metrics{
		Strategy:   s.cfg.StrategyName,
		N:          s.cfg.N,
		D:          s.cfg.D,
		Round:      s.st.Round(),
		Virtual:    s.cfg.Virtual,
		Requests:   res.Requests + len(s.queue), // admitted = in the engine or queued for their round
		Fulfilled:  res.Fulfilled,
		Expired:    res.Expired,
		Pending:    s.st.Pending(),
		QueueDepth: len(s.queue) + s.stripedDepth(),
		QueueCap:   s.cfg.QueueCap,
		Rejected:   s.rej,
		Resources:  append([]int(nil), res.PerResource...),
		Draining:   s.draining,
		Finished:   s.finished,
	}
	if sm := s.cfg.Model; !sm.IsUnit() {
		m.Model = sm.String()
		m.Occupancy = make([]int, s.cfg.N)
		for i := range m.Occupancy {
			m.Occupancy[i] = s.st.Occupancy(i)
		}
	}
	if n := s.hist.Total(); n > 0 {
		m.Latency = LatencyStats{
			Samples:  n,
			Mean:     s.hist.Mean(),
			P50:      s.hist.Quantile(0.50),
			P90:      s.hist.Quantile(0.90),
			P99:      s.hist.Quantile(0.99),
			Overflow: s.hist.Overflow(),
			Exact:    s.hist.Exact(),
		}
	}
	s.ratMu.Lock()
	m.Rolling = RollingRatio{
		Opt:    s.opt,
		Alg:    s.alg,
		Closed: s.closed,
		Solved: s.solved,
		Ratio:  ratio.FormatRatio(ratioOf(s.opt, s.alg), 4),
	}
	s.ratMu.Unlock()
	return m
}

// ratioOf mirrors the convention of the batch tools: 1 when nothing was
// demanded, +Inf when the strategy starved while OPT served.
func ratioOf(opt, alg int) float64 {
	if alg == 0 {
		if opt == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(opt) / float64(alg)
}
