package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/serve"
	"reqsched/internal/trace"
)

// wallBody builds one POST body of unstamped wall-clock records.
func wallBody(rng *rand.Rand, n, recs int) string {
	var sb strings.Builder
	for i := 0; i < recs; i++ {
		a := rng.Intn(n)
		c := rng.Intn(n - 1)
		if c >= a {
			c++
		}
		fmt.Fprintf(&sb, `{"alts":[%d,%d]}`+"\n", a, c)
	}
	return sb.String()
}

// driveWall replays the same deterministic session — one post per tick,
// repeated — against a server, returning the drained metrics. One connection
// per round keeps its records in one shard in send order, so the merged
// injection order is the send order whatever the stripe count; the rotating
// shard pick still walks every stripe across rounds.
func driveWall(t *testing.T, s *serve.Server, ts *httptest.Server, seed int64) serve.Metrics {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 12; round++ {
		code, rep, _ := post(t, ts, wallBody(rng, 4, 15))
		if code != http.StatusOK || rep.Accepted != 15 {
			t.Fatalf("round %d: status %d accepted %d (%s)", round, code, rep.Accepted, rep.Error)
		}
		s.Tick()
	}
	return drain(t, ts)
}

// TestStripedWallClockMatchesSingleQueue pins the sharding contract: a
// sequential client driving the striped wall-clock queue produces a schedule
// bit-identical to the single-queue path — same IDs, same fulfillments, same
// rolling ratio.
func TestStripedWallClockMatchesSingleQueue(t *testing.T) {
	base := serve.Config{N: 4, D: 3, KeepLog: true, QueueCap: 1 << 12}

	single := base
	single.Stripes = 1
	s1, ts1 := newServer(t, single)
	m1 := driveWall(t, s1, ts1, 99)

	striped := base
	striped.Stripes = 4
	s2, ts2 := newServer(t, striped)
	m2 := driveWall(t, s2, ts2, 99)

	r1, r2 := s1.FinalResult(), s2.FinalResult()
	if r1 == nil || r2 == nil {
		t.Fatal("missing final results")
	}
	if r1.Requests != r2.Requests || r1.Fulfilled != r2.Fulfilled || r1.Expired != r2.Expired {
		t.Fatalf("single %d/%d/%d vs striped %d/%d/%d",
			r1.Requests, r1.Fulfilled, r1.Expired, r2.Requests, r2.Fulfilled, r2.Expired)
	}
	if len(r1.Log) != len(r2.Log) {
		t.Fatalf("log length %d vs %d", len(r1.Log), len(r2.Log))
	}
	for i := range r1.Log {
		a, b := r1.Log[i], r2.Log[i]
		if a.Req.ID != b.Req.ID || a.Res != b.Res || a.Round != b.Round {
			t.Fatalf("fulfillment %d: (req %d, res %d, round %d) vs (req %d, res %d, round %d)",
				i, a.Req.ID, a.Res, a.Round, b.Req.ID, b.Res, b.Round)
		}
	}
	if m1.Rolling != m2.Rolling {
		t.Fatalf("rolling %+v vs %+v", m1.Rolling, m2.Rolling)
	}
}

// TestConcurrentStripedIngestRace hammers the striped wall-clock queue from 8
// goroutines while a ticker advances rounds and a drain cuts in mid-traffic —
// the race-detector target for the shard locks, the atomic depth/draining
// fast path, and the final-merge close protocol. Accounting must balance
// exactly: every accepted record is either fulfilled or expired, and no
// record is admitted after the shards close.
func TestConcurrentStripedIngestRace(t *testing.T) {
	s, ts := newServer(t, serve.Config{N: 4, D: 4, Stripes: 8, QueueCap: 1 << 14})
	const clients = 8
	var accepted atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	tickerDone := make(chan struct{})

	go func() { // ticker, stopped after the clients finish
		defer close(tickerDone)
		for {
			select {
			case <-stop:
				return
			default:
				s.Tick()
			}
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 30; i++ {
				resp, err := http.Post(ts.URL+"/v1/requests", "application/jsonl",
					strings.NewReader(wallBody(rng, 4, 20)))
				if err != nil {
					continue // connection cut by test shutdown
				}
				var rep ingestReply
				dec := io.LimitReader(resp.Body, 1<<16)
				if b, err := io.ReadAll(dec); err == nil {
					_ = unmarshalReply(b, &rep)
				}
				resp.Body.Close()
				accepted.Add(int64(rep.Accepted))
				if i == 15 && c == 0 {
					drain(t, ts) // drain mid-traffic from one client
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	<-tickerDone

	m := drain(t, ts)
	if int64(m.Requests) != accepted.Load() {
		t.Fatalf("server admitted %d, clients saw %d accepted", m.Requests, accepted.Load())
	}
	if m.Fulfilled+m.Expired != m.Requests || m.Pending != 0 {
		t.Fatalf("fulfilled %d + expired %d != requests %d (pending %d)",
			m.Fulfilled, m.Expired, m.Requests, m.Pending)
	}
	if m.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", m.QueueDepth)
	}
}

// TestRollingBatchFallbackMatchesIncremental pins the two rolling-OPT paths
// against each other on a multi-segment stream: the per-request incremental
// matching and the whole-segment batch solver must fold identical totals.
func TestRollingBatchFallbackMatchesIncremental(t *testing.T) {
	tr := gappedTrace()
	run := func(batch bool) serve.RollingRatio {
		cfg := serve.Config{N: tr.N, D: tr.D, Virtual: true, RollingBatch: batch}
		_, ts := newServer(t, cfg)
		body := streamBody(t, tr)
		if code, rep, _ := post(t, ts, body); code != http.StatusOK {
			t.Fatalf("ingest: status %d (%s)", code, rep.Error)
		}
		return drain(t, ts).Rolling
	}
	inc, batch := run(false), run(true)
	if inc != batch {
		t.Fatalf("incremental rolling %+v, batch rolling %+v", inc, batch)
	}
	if inc.Solved < 2 {
		t.Fatalf("only %d segments solved; the comparison needs several", inc.Solved)
	}
}

// TestIngestBatchSizesIdentical pins that the batch size only changes lock
// cadence: record-at-a-time admission (IngestBatch 1) and deep batches yield
// identical schedules and rolling totals under the virtual clock.
func TestIngestBatchSizesIdentical(t *testing.T) {
	tr := gappedTrace()
	body := streamBody(t, tr)
	run := func(ingestBatch int) (*core.Result, serve.Metrics) {
		s, ts := newServer(t, serve.Config{
			N: tr.N, D: tr.D, Virtual: true, KeepLog: true, IngestBatch: ingestBatch,
		})
		if code, rep, _ := post(t, ts, body); code != http.StatusOK {
			t.Fatalf("ingest batch %d: status %d (%s)", ingestBatch, code, rep.Error)
		}
		m := drain(t, ts)
		return s.FinalResult(), m
	}
	r1, m1 := run(1)
	r256, m256 := run(256)
	if r1.Fulfilled != r256.Fulfilled || r1.Requests != r256.Requests || len(r1.Log) != len(r256.Log) {
		t.Fatalf("batch 1: %d/%d (%d log), batch 256: %d/%d (%d log)",
			r1.Requests, r1.Fulfilled, len(r1.Log), r256.Requests, r256.Fulfilled, len(r256.Log))
	}
	for i := range r1.Log {
		a, b := r1.Log[i], r256.Log[i]
		if a.Req.ID != b.Req.ID || a.Res != b.Res || a.Round != b.Round {
			t.Fatalf("fulfillment %d differs: %+v vs %+v", i, a, b)
		}
	}
	if m1.Rolling != m256.Rolling {
		t.Fatalf("rolling %+v vs %+v", m1.Rolling, m256.Rolling)
	}
}

// TestStripedBackpressure pins the queue cap on the striped path: the atomic
// depth check answers 429 with Retry-After once the shards hold QueueCap
// records.
func TestStripedBackpressure(t *testing.T) {
	_, ts := newServer(t, serve.Config{N: 2, D: 2, Stripes: 4, QueueCap: 3})
	body := strings.Repeat(`{"alts":[0,1]}`+"\n", 5)
	code, rep, hdr := post(t, ts, body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if rep.Accepted != 3 {
		t.Fatalf("accepted %d, want the queue capacity 3", rep.Accepted)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	m := metrics(t, ts)
	if m.QueueDepth != 3 || m.Rejected.QueueFull != 1 {
		t.Fatalf("queue depth %d (want 3), queue_full rejections %d (want 1)", m.QueueDepth, m.Rejected.QueueFull)
	}
}

// unmarshalReply tolerates empty bodies from connections cut mid-shutdown.
func unmarshalReply(b []byte, rep *ingestReply) error {
	if len(b) == 0 {
		return nil
	}
	return json.Unmarshal(b, rep)
}

// streamBody serializes tr as a JSONL body, header included.
func streamBody(t *testing.T, tr *core.Trace) string {
	t.Helper()
	var sb strings.Builder
	if err := trace.WriteStream(&sb, tr); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
