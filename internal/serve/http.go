// HTTP surface of the serve daemon. Ingest speaks the JSONL trace stream
// wire format line by line, so the same file tracegen writes (or any client
// emitting records) can be POSTed verbatim — header line included.
package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"

	"reqsched/internal/trace"
)

// ServeHTTP routes the daemon's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/requests" && r.Method == http.MethodPost:
		s.handleIngest(w, r)
	case r.URL.Path == "/v1/metrics" && r.Method == http.MethodGet:
		s.handleMetrics(w, r)
	case r.URL.Path == "/v1/drain" && r.Method == http.MethodPost:
		s.handleDrain(w)
	case r.URL.Path == "/v1/healthz" && r.Method == http.MethodGet:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	default:
		http.NotFound(w, r)
	}
}

// ingestReply is the JSON body of every ingest response. Accepted counts the
// records admitted before the first rejection; Offset names the byte offset
// of the offending line within the request body, so clients can resume a
// partial upload exactly like a torn-tail trace file.
type ingestReply struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
	Offset   *int64 `json:"offset,omitempty"`
}

// ingestBatch is one connection's pooled decode buffer: up to IngestBatch
// records plus each line's byte offset. Record slots keep their Alts capacity
// across batches and connections, so a warm daemon decodes without per-line
// allocation; admission copies the alternatives out.
type ingestBatch struct {
	recs []trace.StreamRecord
	offs []int64
}

var ingestPool = sync.Pool{New: func() any { return new(ingestBatch) }}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(r.Body)
	var off int64
	accepted := 0
	fail := func(status int, lineOff int64, format string, args ...any) {
		rep := ingestReply{Accepted: accepted, Error: fmt.Sprintf(format, args...)}
		if status == http.StatusBadRequest {
			rep.Offset = &lineOff
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		}
		writeJSON(w, status, rep)
	}

	batch := ingestPool.Get().(*ingestBatch)
	defer func() {
		batch.recs = batch.recs[:0]
		batch.offs = batch.offs[:0]
		ingestPool.Put(batch)
	}()
	var shard *queueShard
	if s.sq != nil {
		shard = s.sq.pick()
	}
	// admit pushes the decoded batch through admission — one engine-lock
	// acquisition for the whole batch, or the lock-free shard path under
	// striping. Record-at-a-time verdicts and order are preserved exactly; on
	// a rejection it reports the failing record and everything admitted stays.
	admit := func() (trace.StreamRecord, int64, admitVerdict) {
		n := 0
		verdict := admitOK
		if shard != nil {
			for _, rec := range batch.recs {
				if verdict = s.admitStriped(rec, shard); verdict != admitOK {
					break
				}
				n++
			}
		} else {
			s.mu.Lock()
			for _, rec := range batch.recs {
				if verdict = s.admitLocked(rec); verdict != admitOK {
					break
				}
				n++
			}
			s.mu.Unlock()
		}
		accepted += n
		var failRec trace.StreamRecord
		var failOff int64
		if verdict != admitOK {
			failRec, failOff = batch.recs[n], batch.offs[n]
		}
		batch.recs = batch.recs[:0]
		batch.offs = batch.offs[:0]
		return failRec, failOff, verdict
	}
	failVerdict := func(rec trace.StreamRecord, lineOff int64, verdict admitVerdict) {
		switch verdict {
		case admitDraining:
			fail(http.StatusServiceUnavailable, lineOff, "server is draining")
		case admitQueueFull:
			fail(http.StatusTooManyRequests, lineOff,
				"arrival queue full (%d)", s.cfg.QueueCap)
		case admitOutOfOrder:
			fail(http.StatusBadRequest, lineOff,
				"arrival round %d is already closed (next round %d)", rec.T, s.nextRound())
		case admitExpired:
			fail(http.StatusBadRequest, lineOff,
				"record expired on arrival: deadline %d before round %d", rec.Deadline(), s.nextRound())
		case admitWindow:
			fail(http.StatusBadRequest, lineOff,
				"window %d exceeds server maximum %d", rec.D, s.cfg.MaxD)
		}
	}

	sawHeader := false
	index := 0
	for {
		line, next, err := ScanBodyLine(br, off)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Intact lines before the failure still admit (a rejection among
			// them takes precedence — the client resolves it first).
			if rec, failOff, v := admit(); v != admitOK {
				failVerdict(rec, failOff, v)
				return
			}
			// A torn final line: the client got cut off mid-record. Reject
			// the tail but keep everything before it.
			if torn, ok := err.(*trace.TornTail); ok {
				fail(http.StatusBadRequest, torn.Offset, "torn final line (no newline)")
				return
			}
			fail(http.StatusBadRequest, off, "read: %v", err)
			return
		}
		lineOff := off
		off = next
		if !sawHeader && index == 0 {
			// A leading stream header is allowed (so a trace file POSTs
			// verbatim) but must match the daemon's contract.
			if n, d, ok := parseHeader(line); ok {
				sawHeader = true
				if n != s.cfg.N || d != s.cfg.D {
					fail(http.StatusBadRequest, lineOff,
						"stream header n=%d d=%d does not match server n=%d d=%d",
						n, d, s.cfg.N, s.cfg.D)
					return
				}
				continue
			}
		}
		// Extend by one slot, reviving a previous batch's slot (and its Alts
		// buffer) when capacity allows.
		if len(batch.recs) < cap(batch.recs) {
			batch.recs = batch.recs[:len(batch.recs)+1]
		} else {
			batch.recs = append(batch.recs, trace.StreamRecord{})
		}
		if err := trace.DecodeStreamRecordInto(&batch.recs[len(batch.recs)-1], line, s.cfg.N, s.cfg.D, index); err != nil {
			batch.recs = batch.recs[:len(batch.recs)-1]
			if rec, failOff, v := admit(); v != admitOK {
				failVerdict(rec, failOff, v)
				return
			}
			s.countReject(&s.rej.Malformed)
			fail(http.StatusBadRequest, lineOff, "%v", err)
			return
		}
		batch.offs = append(batch.offs, lineOff)
		index++
		if len(batch.recs) >= s.cfg.IngestBatch {
			if rec, failOff, v := admit(); v != admitOK {
				failVerdict(rec, failOff, v)
				return
			}
		}
	}
	if rec, failOff, v := admit(); v != admitOK {
		failVerdict(rec, failOff, v)
		return
	}
	writeJSON(w, http.StatusOK, ingestReply{Accepted: accepted})
}

// ScanBodyLine wraps trace.ScanJSONLine for request bodies: identical
// contract (CRLF-tolerant, raw-byte offsets, *TornTail on an unterminated
// final line).
func ScanBodyLine(br *bufio.Reader, off int64) ([]byte, int64, error) {
	return trace.ScanJSONLine(br, off)
}

// parseHeader reports whether line is a bare stream header — an object with
// "n" and no "alts". Records always carry "alts", so the two cannot collide.
func parseHeader(line []byte) (n, d int, ok bool) {
	var h struct {
		N    int   `json:"n"`
		D    int   `json:"d"`
		Alts []int `json:"alts"`
	}
	if err := json.Unmarshal(line, &h); err != nil {
		return 0, 0, false
	}
	if h.Alts != nil || h.N == 0 {
		return 0, 0, false
	}
	return h.N, h.D, true
}

func (s *Server) nextRound() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Round()
}

// retryAfter estimates (in whole seconds, minimum 1) when the queue will
// have drained. The n resources serve at most n queued records per round, so
// a backlog of depth q needs ceil(q/n) rounds; hinting a single round
// regardless of depth (the old behavior) invites a retry stampede exactly
// when the daemon is most loaded. Takes s.mu itself: the ingest failure path
// calls it after releasing the lock.
func (s *Server) retryAfter() int {
	if s.cfg.RoundDur <= 0 {
		return 1
	}
	s.mu.Lock()
	depth := len(s.queue)
	s.mu.Unlock()
	depth += s.stripedDepth()
	rounds := (depth + s.cfg.N - 1) / s.cfg.N
	if rounds < 1 {
		rounds = 1
	}
	secs := int(math.Ceil(float64(rounds) * s.cfg.RoundDur.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, m)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleDrain(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, s.Drain())
}

// formatFloat renders a ratio for the text exposition format; Prometheus
// spells infinities "+Inf"/"-Inf".
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'f', 4, 64)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writePrometheus renders the snapshot in the Prometheus text exposition
// format — hand-rolled, since the daemon takes no dependencies beyond the
// standard library.
func writePrometheus(w io.Writer, m Metrics) {
	g := func(name string, v any, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	g("reqsched_round", m.Round, "Next round the engine will simulate.")
	g("reqsched_requests_total", m.Requests, "Requests admitted to the engine.")
	g("reqsched_fulfilled_total", m.Fulfilled, "Requests served within their window.")
	g("reqsched_expired_total", m.Expired, "Requests that ran out their window.")
	g("reqsched_pending", m.Pending, "Live requests awaiting service.")
	g("reqsched_queue_depth", m.QueueDepth, "Arrivals queued for the next round.")
	fmt.Fprintf(w, "# HELP reqsched_rejected_total Records rejected at ingest.\n# TYPE reqsched_rejected_total counter\n")
	for _, rc := range []struct {
		reason string
		n      int
	}{
		{"malformed", m.Rejected.Malformed},
		{"queue_full", m.Rejected.QueueFull},
		{"expired", m.Rejected.Expired},
		{"draining", m.Rejected.Draining},
	} {
		fmt.Fprintf(w, "reqsched_rejected_total{reason=%q} %d\n", rc.reason, rc.n)
	}
	fmt.Fprintf(w, "# HELP reqsched_resource_served_total Fulfillments per resource.\n# TYPE reqsched_resource_served_total counter\n")
	for i, c := range m.Resources {
		fmt.Fprintf(w, "reqsched_resource_served_total{resource=\"%d\"} %d\n", i, c)
	}
	if len(m.Occupancy) > 0 {
		fmt.Fprintf(w, "# HELP reqsched_resource_occupancy Busy capacity units per resource at the current round.\n# TYPE reqsched_resource_occupancy gauge\n")
		for i, c := range m.Occupancy {
			fmt.Fprintf(w, "reqsched_resource_occupancy{resource=\"%d\"} %d\n", i, c)
		}
	}
	if m.Latency.Samples > 0 {
		fmt.Fprintf(w, "# HELP reqsched_latency_rounds Service latency in rounds.\n# TYPE reqsched_latency_rounds summary\n")
		for _, q := range []struct {
			q string
			v int
		}{{"0.5", m.Latency.P50}, {"0.9", m.Latency.P90}, {"0.99", m.Latency.P99}} {
			fmt.Fprintf(w, "reqsched_latency_rounds{quantile=%q} %d\n", q.q, q.v)
		}
		fmt.Fprintf(w, "reqsched_latency_rounds_count %d\n", m.Latency.Samples)
		g("reqsched_latency_overflow_total", m.Latency.Overflow, "Latency samples clamped into the last bucket.")
		e := 0
		if m.Latency.Exact {
			e = 1
		}
		g("reqsched_latency_exact", e, "1 while no latency sample has been clamped (quantiles are exact).")
	}
	g("reqsched_segments_closed_total", m.Rolling.Closed, "Time segments closed by the cutter.")
	g("reqsched_segments_solved_total", m.Rolling.Solved, "Segments whose offline optimum is folded in.")
	g("reqsched_rolling_opt_total", m.Rolling.Opt, "Offline optimum over solved segments.")
	g("reqsched_rolling_alg_total", m.Rolling.Alg, "Strategy fulfillments over solved segments.")
	g("reqsched_rolling_competitive_ratio", formatFloat(ratioOf(m.Rolling.Opt, m.Rolling.Alg)), "OPT/ALG over solved segments (+Inf when starved).")
	b := 0
	if m.Draining {
		b = 1
	}
	g("reqsched_draining", b, "1 while the server refuses new records.")
}
