// Striped wall-clock ingest. Under the wall clock a record's arrival round
// and engine ID are not determined at ingest — both are assigned at the next
// tick — so admission does not have to serialize on the engine mutex the way
// virtual-clock admission must. Each connection buffers validated records
// into one of Stripes shards guarded by its own lock; the tick merges the
// shards (in shard order, IDs assigned at the merge) into the engine batch.
// With a single connection the merged order is the connection's send order,
// so the schedule is bit-identical to the single-queue path; with concurrent
// connections the interleaving is arbitrary, exactly as it already was for
// concurrent writers racing one shared queue.
package serve

import (
	"sync"
	"sync/atomic"

	"reqsched/internal/core"
	"reqsched/internal/trace"
)

// queueShard is one stripe of the wall-clock arrival queue.
type queueShard struct {
	mu     sync.Mutex
	closed bool // set at the final merge; late admitters see it and reject
	recs   []*core.Request
}

// stripedQueue is the sharded arrival queue. depth tracks the total buffered
// across shards (the queue-cap check and the metrics gauge); next deals
// connections to shards round-robin.
type stripedQueue struct {
	depth  atomic.Int64
	next   atomic.Uint32
	shards []queueShard
}

func newStripedQueue(stripes int) *stripedQueue {
	return &stripedQueue{shards: make([]queueShard, stripes)}
}

// pick assigns an ingest connection a shard, round-robin.
func (sq *stripedQueue) pick() *queueShard {
	return &sq.shards[int(sq.next.Add(1)-1)%len(sq.shards)]
}

// stripedDepth returns the records buffered in shards (0 without striping).
func (s *Server) stripedDepth() int {
	if s.sq == nil {
		return 0
	}
	return int(s.sq.depth.Load())
}

// admitStriped validates rec on the lock-free fast path and buffers it in the
// connection's shard. Only rejections touch the engine mutex (for the
// counters); the admit itself takes the shard lock alone. The checks mirror
// admitLocked's wall-clock arm: the round mirror may lag the engine by a
// tick-in-progress, which only moves records whose expiry races the tick —
// the same records whose fate already depended on queue timing.
func (s *Server) admitStriped(rec trace.StreamRecord, shard *queueShard) admitVerdict {
	if s.closedIn.Load() {
		s.countReject(&s.rej.Draining)
		return admitDraining
	}
	if rec.D > s.cfg.MaxD {
		s.countReject(&s.rej.Malformed)
		return admitWindow
	}
	if rec.T > 0 && rec.T+rec.D-1 < int(s.round.Load()) {
		s.countReject(&s.rej.Expired)
		return admitExpired
	}
	if s.sq.depth.Add(1) > int64(s.cfg.QueueCap) {
		s.sq.depth.Add(-1)
		s.countReject(&s.rej.QueueFull)
		return admitQueueFull
	}
	r := &core.Request{
		Arrive: rec.T, // provisional; the merge assigns the tick round and ID
		Alts:   append([]int(nil), rec.Alts...),
		D:      rec.D,
		W:      rec.W,
	}
	shard.mu.Lock()
	if shard.closed {
		shard.mu.Unlock()
		s.sq.depth.Add(-1)
		s.countReject(&s.rej.Draining)
		return admitDraining
	}
	shard.recs = append(shard.recs, r)
	shard.mu.Unlock()
	return admitOK
}

// countReject bumps one rejection counter under the engine mutex — the slow
// path; accepted records never take it.
func (s *Server) countReject(c *int) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// mergeStripesLocked drains every shard into the engine batch queue at the
// current round, assigning IDs in merge order (shard order, admission order
// within a shard) — the globally-increasing injection order the Stepper
// requires. final additionally closes the shards so admitters that passed the
// draining check before it was set cannot strand records in a drained shard.
func (s *Server) mergeStripesLocked(final bool) {
	if s.sq == nil {
		return
	}
	t := s.st.Round()
	for i := range s.sq.shards {
		sh := &s.sq.shards[i]
		sh.mu.Lock()
		for _, r := range sh.recs {
			r.ID = s.nextID
			s.nextID++
			r.Arrive = t
			s.queue = append(s.queue, r)
		}
		s.sq.depth.Add(int64(-len(sh.recs)))
		sh.recs = sh.recs[:0]
		if final {
			sh.closed = true
		}
		sh.mu.Unlock()
	}
}
