// Package runner is the shared measurement pipeline behind the CLI
// frontends: a manifest of serializable (strategy, source, params) records
// is expanded into grid jobs — stable content-derived IDs included — and
// executed on one of three interchangeable engines: the plain in-process
// worker pool, the journaled local pool with crash-safe resume, or the
// subprocess supervisor with per-job deadlines and retries. The frontends
// (internal/app) only declare records, pick options, and print; everything
// between source and summary lives here, once.
package runner

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reqsched/internal/grid"
	"reqsched/internal/grid/chaos"
	"reqsched/internal/ratio"
	"reqsched/internal/registry"
)

// Record is the declarative description of one measurement cell: a registry
// strategy name, a registry source name (adversary or workload), and the
// source's parameters. Records are pure data — serializable, diffable, and
// convertible to the grid wire format without touching a closure.
type Record struct {
	// Name is the display label measurements are reported under.
	Name string
	// Strategy is a registry strategy spec: a name, optionally followed by
	// ",key=value" parameters (a bare name uses the defaults).
	Strategy string
	// Source is a registry adversary or workload name.
	Source string
	// Params parameterizes the source; unset parameters take the
	// component's schema defaults.
	Params registry.Params
}

// Manifest expands records into the grid job list: each record becomes a
// wire-format Spec (defaults filled, schema validated) with a
// content-derived ID identical to what the same spec has always hashed to.
func Manifest(records []Record) ([]grid.Job, error) {
	specs := make([]grid.Spec, len(records))
	names := make([]string, len(records))
	for i, r := range records {
		spec, err := grid.SpecFor(r.Strategy, r.Source, r.Params)
		if err != nil {
			return nil, fmt.Errorf("runner: record %q: %w", r.Name, err)
		}
		specs[i] = spec
		names[i] = r.Name
	}
	return grid.BuildManifest(specs, names)
}

// Options selects and parameterizes the execution engine.
type Options struct {
	// Tool prefixes progress and warning lines (e.g. "sweep").
	Tool string
	// Workers is the in-process measurement pool size (<= 0: GOMAXPROCS).
	Workers int
	// Shard > 0 runs the cells on that many supervised gridworker
	// subprocesses instead of in-process.
	Shard int
	// JournalPath enables the crash-safe checkpoint journal (JSONL).
	JournalPath string
	// Resume continues from an existing journal (requires JournalPath).
	Resume bool
	// WorkerCmd launches a gridworker subprocess (sharded mode); empty
	// means re-exec this binary with -gridworker appended.
	WorkerCmd []string
	// JobTimeout is the per-cell wall-clock deadline (sharded mode).
	JobTimeout time.Duration
	// Retries is the retry budget per cell before it is marked failed
	// (sharded mode); 0 means no retries.
	Retries int
	// WorkersAt lists TCP gridworker addresses ("host:port"); when set, the
	// cells run on those remote workers over the network transport, one
	// supervisor slot per address.
	WorkersAt []string
	// LinkFault arms one deterministic transport link fault (requires
	// WorkersAt; nil: none).
	LinkFault *chaos.LinkFaults
	// Signals installs SIGINT/SIGTERM handling: an interrupted run drains
	// in-flight cells, flushes checkpoints, and reports Interrupted.
	Signals bool
	// Log receives progress and warning lines (nil: discarded).
	Log io.Writer
}

// Result is what an execution produced.
type Result struct {
	// Measurements holds one entry per job, in manifest order. Entries of
	// failed cells are zero; check Done.
	Measurements []ratio.Measurement
	// Done marks completed cells. A nil Done means every cell completed
	// (the plain path reports no partial grids).
	Done []bool
	// FromJournal counts cells folded from the resume journal; Retried
	// counts subprocess retries.
	FromJournal, Retried int
	// FailureReport is the human-readable report of failed cells; empty
	// when the grid completed.
	FailureReport string
	// Interrupted reports that a signal stopped the run after draining and
	// checkpointing in-flight cells.
	Interrupted bool
}

// AllDone reports whether every cell completed.
func (r *Result) AllDone() bool {
	if r.Interrupted {
		return false
	}
	for _, d := range r.Done {
		if !d {
			return false
		}
	}
	return true
}

// Run executes the manifest. The plain path (no shard, no journal) is the
// in-process worker pool, bit-identical to the historical direct
// ratio.RunParallel call; the journaled and sharded paths add crash-safe
// resume and subprocess supervision with identical measurements.
func Run(ctx context.Context, jobs []grid.Job, o Options) (*Result, error) {
	tool := o.Tool
	if tool == "" {
		tool = "runner"
	}
	log := o.Log
	if log == nil {
		log = io.Discard
	}
	if o.Resume && o.JournalPath == "" {
		return nil, fmt.Errorf("%s: -resume requires -journal", tool)
	}

	if o.LinkFault != nil && len(o.WorkersAt) == 0 {
		return nil, fmt.Errorf("%s: a link fault needs remote workers (-workers-at)", tool)
	}
	if o.Shard <= 0 && o.JournalPath == "" && len(o.WorkersAt) == 0 {
		return &Result{Measurements: ratio.RunParallel(grid.RatioJobs(jobs), o.Workers)}, nil
	}

	var j *grid.Journal
	var done map[string]grid.Record
	if o.JournalPath != "" {
		var scan grid.JournalScan
		var err error
		j, done, scan, err = grid.OpenJournal(o.JournalPath, o.Resume)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		if scan.TornOffset >= 0 {
			fmt.Fprintf(log, "%s: journal had a torn final line at byte %d (crash mid-write); truncated and resuming\n", tool, scan.TornOffset)
		}
		if scan.Skipped > 0 {
			fmt.Fprintf(log, "%s: journal had %d corrupt record(s); their cells will re-run\n", tool, scan.Skipped)
		}
	}

	if o.Signals {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}

	var rep *grid.Report
	var err error
	switch {
	case len(o.WorkersAt) > 0:
		rep, err = grid.Run(ctx, jobs, grid.Options{
			Transport:  &grid.TCPTransport{Addrs: o.WorkersAt, Link: o.LinkFault, Log: log},
			Journal:    j,
			Done:       done,
			JobTimeout: o.JobTimeout,
			Retries:    o.Retries,
			NoRetries:  o.Retries == 0, // runner's 0 means "no retries", not "default"
			Log:        log,
		})
	case o.Shard <= 0:
		rep, err = grid.RunLocal(ctx, jobs, done, j, o.Workers)
	default:
		cmd := o.WorkerCmd
		if len(cmd) == 0 {
			self, eerr := os.Executable()
			if eerr != nil {
				return nil, eerr
			}
			cmd = []string{self, "-gridworker"}
		}
		rep, err = grid.Run(ctx, jobs, grid.Options{
			Workers:    o.Shard,
			WorkerCmd:  cmd,
			Journal:    j,
			Done:       done,
			JobTimeout: o.JobTimeout,
			Retries:    o.Retries,
			NoRetries:  o.Retries == 0, // runner's 0 means "no retries", not "default"
			Log:        log,
		})
	}

	if ctx.Err() != nil {
		n := 0
		res := &Result{Interrupted: true}
		if rep != nil {
			res.Measurements, res.Done = rep.Measurements, rep.Done
			res.FromJournal, res.Retried = rep.FromJournal, rep.Retried
			for _, d := range rep.Done {
				if d {
					n++
				}
			}
		}
		fmt.Fprintf(log, "%s: interrupted; %d/%d cells checkpointed — rerun with -resume to continue\n", tool, n, len(jobs))
		return res, nil
	}
	if err != nil {
		return nil, err
	}
	if rep.FromJournal > 0 || rep.Retried > 0 {
		fmt.Fprintf(log, "%s: %d/%d cells from journal, %d retried\n", tool, rep.FromJournal, len(jobs), rep.Retried)
	}
	if len(rep.LostHosts) > 0 {
		fmt.Fprintf(log, "%s: worker host(s) lost mid-run: %s\n", tool, strings.Join(rep.LostHosts, ", "))
	}
	res := &Result{
		Measurements: rep.Measurements,
		Done:         rep.Done,
		FromJournal:  rep.FromJournal,
		Retried:      rep.Retried,
	}
	if !rep.AllDone() {
		res.FailureReport = rep.FailureReport()
	}
	return res, nil
}

// Measure runs one cell in-process, serially — the single-shot pipeline the
// replay and inspection tools use.
func Measure(job grid.Job) (ratio.Measurement, error) {
	c, err := job.Spec.Build.Construction()
	if err != nil {
		return ratio.Measurement{}, err
	}
	s, err := registry.NewStrategySpec(job.Spec.Strategy)
	if err != nil {
		return ratio.Measurement{}, err
	}
	return ratio.MeasureConstruction(c, s), nil
}

// Stream runs jobs produced on demand through the measurement pool,
// emitting each result as it completes — the bounded-memory variant for
// open-ended manifests. next is called with 0, 1, 2, ... until it reports
// no more jobs; emit receives (index, measurement) in completion order.
func Stream(ctx context.Context, next func(int) (grid.Job, bool), workers int, emit func(int, ratio.Measurement)) error {
	return ratio.RunStreamCtx(ctx, func(i int) (ratio.Job, bool) {
		job, ok := next(i)
		if !ok {
			return ratio.Job{}, false
		}
		return grid.RatioJobs([]grid.Job{job})[0], true
	}, workers, emit)
}
