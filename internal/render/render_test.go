package render

import (
	"strings"
	"testing"

	"reqsched/internal/commnet"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/strategies"
)

func testTrace(t *testing.T) (*core.Trace, []core.Fulfillment) {
	t.Helper()
	b := core.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 0)
	b.Add(1, 0, 1)
	tr := b.Build()
	res := core.Run(strategies.NewBalance(), tr)
	return tr, res.Log
}

func TestGridShowsServedRequests(t *testing.T) {
	tr, log := testTrace(t)
	out := Grid(tr, log, 0, -1)
	if !strings.Contains(out, "S0") || !strings.Contains(out, "S1") {
		t.Fatalf("missing resource rows:\n%s", out)
	}
	// All three requests' IDs must appear.
	for _, id := range []string{"0", "1", "2"} {
		if !strings.Contains(out, id) {
			t.Fatalf("id %s missing:\n%s", id, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 resources
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestGridClipping(t *testing.T) {
	tr, log := testTrace(t)
	if Grid(tr, log, 2, 2) != "" {
		t.Fatal("empty range should render nothing")
	}
	one := Grid(tr, log, 1, 2)
	if strings.Count(one, ".")+strings.Count(one, "2") < 1 {
		t.Fatalf("single-round grid wrong:\n%s", one)
	}
}

func TestArrivalsListsAltsAndDeadlines(t *testing.T) {
	b := core.NewBuilder(3, 2)
	b.Add(0, 0, 1)
	b.AddWindow(2, 5, 2)
	tr := b.Build()
	out := Arrivals(tr, 0, -1)
	if !strings.Contains(out, "t=0") || !strings.Contains(out, "t=2") {
		t.Fatalf("rounds missing:\n%s", out)
	}
	if !strings.Contains(out, "(d=5)") {
		t.Fatalf("non-default deadline not flagged:\n%s", out)
	}
	if strings.Contains(out, "t=1") {
		t.Fatal("empty round rendered")
	}
}

func TestDiffIdenticalAndDifferent(t *testing.T) {
	tr, log := testTrace(t)
	if got := Diff(tr, log, log); got != "(schedules identical)\n" {
		t.Fatalf("identical diff: %q", got)
	}
	opt := offline.OptimumSchedule(tr)
	fix := core.Run(strategies.NewFirstFit(), tr).Log
	// Schedules may or may not differ; force a difference by dropping one
	// fulfillment from the copy.
	if len(fix) > 0 {
		d := Diff(tr, opt, fix[:len(fix)-1])
		if !strings.Contains(d, "round") {
			t.Fatalf("expected at least one differing slot:\n%s", d)
		}
	}
}

func TestLossSummary(t *testing.T) {
	// Overloaded single resource: one of two requests must be lost.
	b := core.NewBuilder(1, 1)
	b.Add(0, 0)
	b.Add(0, 0)
	tr := b.Build()
	res := core.Run(strategies.NewFix(), tr)
	out := LossSummary(tr, res.Log)
	if !strings.Contains(out, "total lost: 1 of 2") {
		t.Fatalf("loss summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "t=0") {
		t.Fatalf("lost round missing:\n%s", out)
	}
}

func TestLossSummaryNoLoss(t *testing.T) {
	tr, log := testTrace(t)
	out := LossSummary(tr, log)
	if !strings.Contains(out, "total lost: 0 of 3") {
		t.Fatalf("expected zero loss:\n%s", out)
	}
}

func TestCommRounds(t *testing.T) {
	rounds := []commnet.CommRound{
		{Sent: 10, Delivered: 8, Dropped: 2, Busiest: 6},
		{Sent: 4, Delivered: 4, Dropped: 0, Busiest: 2},
	}
	out := CommRounds(rounds, 10)
	if !strings.Contains(out, "10") || !strings.Contains(out, "drop") {
		t.Fatalf("transcript render wrong:\n%s", out)
	}
	if CommRounds(nil, 10) != "(no communication)\n" {
		t.Fatal("empty transcript")
	}
}
