// Package render draws ASCII views of traces and schedules: the
// resource-by-round grid (who served what when), request timelines, and
// side-by-side schedule diffs. The adversary example and cmd/tracegen use it
// to make the lower-bound constructions visible.
package render

import (
	"fmt"
	"strings"

	"reqsched/internal/commnet"
	"reqsched/internal/core"
)

// Grid renders the fulfillment log as a resources × rounds table. Each cell
// shows the served request's ID, `.` for an idle slot. Rounds are clipped to
// [from, to) (pass 0, -1 for everything).
func Grid(tr *core.Trace, log []core.Fulfillment, from, to int) string {
	horizon := tr.Horizon()
	if to < 0 || to > horizon {
		to = horizon
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return ""
	}
	cells := make(map[[2]int]int)
	width := 2
	for _, f := range log {
		cells[[2]int{f.Res, f.Round}] = f.Req.ID
		if w := len(fmt.Sprint(f.Req.ID)); w > width {
			width = w
		}
	}
	var sb strings.Builder
	// Header: round numbers.
	fmt.Fprintf(&sb, "%6s", "")
	for t := from; t < to; t++ {
		fmt.Fprintf(&sb, " %*d", width, t)
	}
	sb.WriteByte('\n')
	for i := 0; i < tr.N; i++ {
		fmt.Fprintf(&sb, "S%-4d|", i)
		for t := from; t < to; t++ {
			if id, ok := cells[[2]int{i, t}]; ok {
				fmt.Fprintf(&sb, " %*d", width, id)
			} else {
				fmt.Fprintf(&sb, " %*s", width, ".")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Arrivals renders the injection schedule: one line per round with arrivals,
// each request shown as id[alt0 alt1 ...]. Rounds are clipped to [from, to).
func Arrivals(tr *core.Trace, from, to int) string {
	if to < 0 || to > len(tr.Arrivals) {
		to = len(tr.Arrivals)
	}
	if from < 0 {
		from = 0
	}
	var sb strings.Builder
	for t := from; t < to; t++ {
		rs := tr.Arrivals[t]
		if len(rs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "t=%-4d", t)
		for i := range rs {
			r := &rs[i]
			fmt.Fprintf(&sb, " %d%v", r.ID, r.Alts)
			if r.D != tr.D {
				fmt.Fprintf(&sb, "(d=%d)", r.D)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Diff renders two schedules of the same trace side by side, marking the
// slots where they differ with a `*` column between the grids' cells is too
// wide; instead it lists the differing slots: round, resource, and the
// request each schedule served there.
func Diff(tr *core.Trace, a, b []core.Fulfillment) string {
	type slot = [2]int
	am := make(map[slot]int)
	for _, f := range a {
		am[slot{f.Res, f.Round}] = f.Req.ID
	}
	bm := make(map[slot]int)
	for _, f := range b {
		bm[slot{f.Res, f.Round}] = f.Req.ID
	}
	var sb strings.Builder
	horizon := tr.Horizon()
	for t := 0; t < horizon; t++ {
		for i := 0; i < tr.N; i++ {
			s := slot{i, t}
			av, aok := am[s]
			bv, bok := bm[s]
			if aok == bok && av == bv {
				continue
			}
			left, right := ".", "."
			if aok {
				left = fmt.Sprint(av)
			}
			if bok {
				right = fmt.Sprint(bv)
			}
			fmt.Fprintf(&sb, "round %d, S%d: %s vs %s\n", t, i, left, right)
		}
	}
	if sb.Len() == 0 {
		return "(schedules identical)\n"
	}
	return sb.String()
}

// CommRounds renders a communication transcript: one line per round with
// sent/delivered/dropped counts and a contention bar for the busiest
// mailbox.
func CommRounds(rounds []commnet.CommRound, barWidth int) string {
	if len(rounds) == 0 {
		return "(no communication)\n"
	}
	maxBusy := 1
	for _, r := range rounds {
		if r.Busiest > maxBusy {
			maxBusy = r.Busiest
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%5s %6s %6s %6s  busiest mailbox\n", "round", "sent", "recv", "drop")
	for i, r := range rounds {
		bar := strings.Repeat("#", r.Busiest*barWidth/maxBusy)
		fmt.Fprintf(&sb, "%5d %6d %6d %6d  %s %d\n", i, r.Sent, r.Delivered, r.Dropped, bar, r.Busiest)
	}
	return sb.String()
}

// LossSummary lists the requests in tr that the log did not serve, grouped
// by arrival round — the "who was sacrificed" view of an adversarial run.
func LossSummary(tr *core.Trace, log []core.Fulfillment) string {
	served := make(map[int]bool, len(log))
	for _, f := range log {
		served[f.Req.ID] = true
	}
	var sb strings.Builder
	total := 0
	for t, rs := range tr.Arrivals {
		var lost []string
		for i := range rs {
			if !served[rs[i].ID] {
				lost = append(lost, fmt.Sprintf("%d%v", rs[i].ID, rs[i].Alts))
				total++
			}
		}
		if len(lost) > 0 {
			fmt.Fprintf(&sb, "t=%-4d lost %s\n", t, strings.Join(lost, " "))
		}
	}
	fmt.Fprintf(&sb, "total lost: %d of %d\n", total, tr.NumRequests())
	return sb.String()
}
