package stats

import "testing"

// Regression tests for the clamped-tail bias: Mean and Quantile used to
// average/rank overflow samples at the last bucket's value (size-1) and
// underflow samples at 0, silently biasing latency means and p99 downward
// exactly when the histogram overflows — the case where honesty matters
// most. Clamped tails must be valued at their sentinels (-1 and Size()),
// and Exact must report whether any clamping happened.

func TestMeanCountsOverflowAtSentinel(t *testing.T) {
	h := NewHistogram(4)
	h.Add(1)
	h.Add(10)
	h.Add(10)
	h.Add(10)
	// Samples are 1 and three values at or beyond the range; the overflow
	// tail counts at the >=size sentinel 4: (1 + 3*4) / 4. The biased
	// version reports (1 + 3*3) / 4 = 2.5.
	if got, want := h.Mean(), 3.25; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if h.Exact() {
		t.Error("Exact() true with a clamped tail")
	}
}

func TestQuantileReportsOverflowSentinel(t *testing.T) {
	h := NewHistogram(4)
	h.Add(1)
	h.Add(10)
	h.Add(10)
	h.Add(10)
	// Rank order: 1, >=4, >=4, >=4. The median falls in the overflow tail,
	// so the only honest answer is the >=size sentinel, not the last bucket.
	if got, want := h.Quantile(0.5), 4; got != want {
		t.Errorf("Quantile(0.5) = %d, want the sentinel %d", got, want)
	}
	if got, want := h.Quantile(0.25), 1; got != want {
		t.Errorf("Quantile(0.25) = %d, want %d", got, want)
	}
	if got, want := h.Quantile(1), 4; got != want {
		t.Errorf("Quantile(1) = %d, want the sentinel %d", got, want)
	}
}

func TestMeanAndQuantileCountUnderflowAtSentinel(t *testing.T) {
	h := NewHistogram(3)
	h.Add(-5)
	h.Add(2)
	// The underflow sample counts at the <0 sentinel -1: (-1 + 2) / 2.
	if got, want := h.Mean(), 0.5; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.5), -1; got != want {
		t.Errorf("Quantile(0.5) = %d, want the sentinel %d", got, want)
	}
	if got, want := h.Quantile(1), 2; got != want {
		t.Errorf("Quantile(1) = %d, want %d", got, want)
	}
	if h.Exact() {
		t.Error("Exact() true with a clamped tail")
	}
}

func TestExactHistogramMomentsUnchanged(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 2, 2, 4} {
		h.Add(v)
	}
	if !h.Exact() {
		t.Error("Exact() false without clamping")
	}
	if got, want := h.Mean(), 2.0; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.5), 2; got != want {
		t.Errorf("Quantile(0.5) = %d, want %d", got, want)
	}
	if got, want := h.Quantile(0), 0; got != want {
		t.Errorf("Quantile(0) = %d, want %d", got, want)
	}
	if got, want := h.Quantile(1), 4; got != want {
		t.Errorf("Quantile(1) = %d, want %d", got, want)
	}
}

// A histogram whose real samples share the last bucket with an overflow
// tail: ranks inside the genuine samples stay exact, only ranks in the tail
// report the sentinel.
func TestQuantileSplitsLastBucketFromOverflowTail(t *testing.T) {
	h := NewHistogram(4)
	h.Add(3)
	h.Add(3)
	h.Add(9)
	if got, want := h.Quantile(0.5), 3; got != want {
		t.Errorf("Quantile(0.5) = %d, want the genuine last-bucket value %d", got, want)
	}
	if got, want := h.Quantile(1), 4; got != want {
		t.Errorf("Quantile(1) = %d, want the sentinel %d", got, want)
	}
}
