// Package stats provides the small numeric helpers the benchmark harness and
// CLI tools share: running accumulators, histograms and ratio formatting.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Acc is a streaming accumulator for mean / variance / extrema.
type Acc struct {
	n           int
	mean, m2    float64
	min, max    float64
	initialized bool
}

// Add folds a value into the accumulator (Welford's algorithm).
func (a *Acc) Add(x float64) {
	a.n++
	if !a.initialized || x < a.min {
		a.min = x
	}
	if !a.initialized || x > a.max {
		a.max = x
	}
	a.initialized = true
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of samples.
func (a *Acc) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Acc) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance.
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample (0 with no samples).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest sample (0 with no samples).
func (a *Acc) Max() float64 { return a.max }

func (a *Acc) String() string {
	// With no samples every statistic is undefined; printing the zero values
	// would read as a genuine (and suspiciously perfect) measurement.
	if a.n == 0 {
		return "n=0 mean=n/a std=n/a min=n/a max=n/a"
	}
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f max=%.4f",
		a.n, a.Mean(), a.Std(), a.Min(), a.Max())
}

// Histogram counts integer samples in unit buckets [0, size).
// Out-of-range samples land in the edge buckets and are additionally counted
// in Underflow/Overflow, so folded tails cannot silently bias quantiles.
type Histogram struct {
	buckets   []int
	total     int
	underflow int
	overflow  int
}

// NewHistogram returns a histogram with the given number of unit buckets.
// A size below 1 is clamped to a single bucket, so Add can never index an
// empty bucket array.
func NewHistogram(size int) *Histogram {
	if size < 1 {
		size = 1
	}
	return &Histogram{buckets: make([]int, size)}
}

// Add counts one sample. Samples outside [0, size) are clamped into the edge
// buckets but tracked in Underflow/Overflow; quantiles over a histogram with
// a non-zero overflow count are lower bounds, not exact values.
func (h *Histogram) Add(v int) {
	if v < 0 {
		h.underflow++
		v = 0
	}
	if v >= len(h.buckets) {
		h.overflow++
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
}

// Count returns the number of samples in bucket i.
func (h *Histogram) Count(i int) int { return h.buckets[i] }

// Total returns the number of samples.
func (h *Histogram) Total() int { return h.total }

// Underflow returns the number of samples clamped up into bucket 0.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow returns the number of samples clamped down into the last bucket.
func (h *Histogram) Overflow() int { return h.overflow }

// Size returns the number of unit buckets.
func (h *Histogram) Size() int { return len(h.buckets) }

// Exact reports whether every sample landed inside [0, size): when false,
// Mean and Quantile value the clamped tails at their sentinels (-1 below the
// range, Size() at or above it) rather than pretending the edge buckets are
// real observations.
func (h *Histogram) Exact() bool { return h.underflow == 0 && h.overflow == 0 }

// Mean returns the mean of the samples, valuing clamped tails at their
// sentinels: a sample below the range counts as -1, a sample at or above it
// as Size(). Averaging the tails at the edge buckets instead would bias the
// mean toward the range exactly when the histogram saturates (the case a
// latency report must not understate); with Exact() true this is the plain
// bucket mean. It is 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0
	for v, c := range h.buckets {
		sum += v * c
	}
	// Underflow was clamped up to bucket 0 (sentinel -1: one below per
	// sample); overflow down to bucket size-1 (sentinel size: one above).
	sum += h.overflow - h.underflow
	return float64(sum) / float64(h.total)
}

// Quantile returns the smallest value v such that at least q (0..1) of the
// samples are <= v. Ranks that fall in a clamped tail report the tail's
// sentinel (-1 below the range, Size() at or above it) rather than the edge
// bucket, so a saturated histogram cannot understate its upper quantiles.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	need := int(math.Ceil(q * float64(h.total)))
	if need < 1 {
		// Quantile(0) must still land on a non-empty bucket (the minimum
		// sample), not bucket 0 unconditionally.
		need = 1
	}
	if need <= h.underflow {
		return -1
	}
	if need > h.total-h.overflow {
		return len(h.buckets)
	}
	// In-range ranks: underflow samples sort before everything in bucket 0
	// and overflow samples after everything in the last bucket, so the plain
	// cumulative scan already lands on the right genuine bucket (the
	// underflow inflation of the running count cancels against the underflow
	// ranks it absorbs).
	run := 0
	for i, c := range h.buckets {
		run += c
		if run >= need {
			return i
		}
	}
	return len(h.buckets) - 1
}

// Bars renders an ASCII bar chart, one row per non-empty bucket.
func (h *Histogram) Bars(width int) string {
	max := 0
	for _, c := range h.buckets {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return "(empty)\n"
	}
	var sb strings.Builder
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(max)*float64(width))))
		fmt.Fprintf(&sb, "%4d | %-*s %d\n", i, width, bar, c)
	}
	return sb.String()
}

// Ratio formats p/q as a fixed-point string, tolerating q=0.
func Ratio(p, q int) string {
	if q == 0 {
		if p == 0 {
			return "1.0000"
		}
		return "inf"
	}
	return fmt.Sprintf("%.4f", float64(p)/float64(q))
}
