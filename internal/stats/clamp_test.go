package stats

import (
	"strings"
	"testing"
)

// TestHistogramClampCounts pins the silent-clamping fix: out-of-range
// samples still land in the edge buckets (quantiles stay defined), but the
// folds are now counted so a biased tail cannot masquerade as exact data.
func TestHistogramClampCounts(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 2, 3} {
		h.Add(v)
	}
	if h.Underflow() != 0 || h.Overflow() != 0 {
		t.Fatalf("in-range samples counted as clamped: under=%d over=%d", h.Underflow(), h.Overflow())
	}
	h.Add(-1)
	h.Add(-7)
	h.Add(4)
	h.Add(100)
	h.Add(1 << 30)
	if got := h.Underflow(); got != 2 {
		t.Errorf("underflow %d, want 2", got)
	}
	if got := h.Overflow(); got != 3 {
		t.Errorf("overflow %d, want 3", got)
	}
	// Clamped samples still fold into the edge buckets and the total.
	if got := h.Count(0); got != 3 {
		t.Errorf("bucket 0 holds %d, want 3 (one real + two underflow)", got)
	}
	if got := h.Count(3); got != 4 {
		t.Errorf("bucket 3 holds %d, want 4 (one real + three overflow)", got)
	}
	if got := h.Total(); got != 9 {
		t.Errorf("total %d, want 9", got)
	}
	if got := h.Size(); got != 4 {
		t.Errorf("size %d, want 4", got)
	}
}

// TestAccStringEmpty pins the misleading-extrema fix: an accumulator with no
// samples must say so instead of printing zeros that read like a perfect
// measurement.
func TestAccStringEmpty(t *testing.T) {
	var a Acc
	s := a.String()
	if !strings.Contains(s, "n/a") || !strings.Contains(s, "n=0") {
		t.Errorf("empty Acc prints %q, want n/a markers", s)
	}
	a.Add(2.5)
	s = a.String()
	if strings.Contains(s, "n/a") {
		t.Errorf("non-empty Acc prints %q, want real statistics", s)
	}
	if !strings.Contains(s, "min=2.5000") || !strings.Contains(s, "max=2.5000") {
		t.Errorf("single-sample Acc prints %q", s)
	}
}
