package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, v := range []float64{1, 2, 3, 4} {
		a.Add(v)
	}
	if a.N() != 4 || a.Mean() != 2.5 || a.Min() != 1 || a.Max() != 4 {
		t.Fatalf("acc wrong: %s", a.String())
	}
	// Var of 1,2,3,4 = 5/3.
	if math.Abs(a.Var()-5.0/3.0) > 1e-12 {
		t.Fatalf("var %f", a.Var())
	}
}

func TestAccEmptyAndSingle(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Std() != 0 || a.N() != 0 {
		t.Fatal("zero-value Acc not neutral")
	}
	a.Add(7)
	if a.Var() != 0 || a.Min() != 7 || a.Max() != 7 {
		t.Fatal("single sample wrong")
	}
}

func TestAccMatchesNaiveComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var a Acc
		sum := 0.0
		for _, x := range xs {
			// Clamp to keep the naive two-pass sum well-conditioned.
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				x = 0
			}
			a.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return a.N() == 0
		}
		mean := sum / float64(len(xs))
		return math.Abs(a.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 1, 1, 3, 9, -2} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Count(0) != 2 { // 0 and clamped -2
		t.Fatalf("bucket 0: %d", h.Count(0))
	}
	if h.Count(4) != 1 { // clamped 9
		t.Fatalf("bucket 4: %d", h.Count(4))
	}
	if h.Quantile(0.5) != 1 {
		t.Fatalf("median bucket %d", h.Quantile(0.5))
	}
	if h.Quantile(1.0) != 5 { // the clamped 9 reports the >=size sentinel
		t.Fatalf("max bucket %d", h.Quantile(1.0))
	}
	if h.Bars(10) == "" {
		t.Fatal("no bars")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(3)
	if h.Quantile(0.5) != 0 || h.Bars(5) != "(empty)\n" {
		t.Fatal("empty histogram misbehaves")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.5000" || Ratio(0, 0) != "1.0000" || Ratio(1, 0) != "inf" {
		t.Fatal("ratio formatting")
	}
}

func TestHistogramZeroSize(t *testing.T) {
	// A size below 1 clamps to a single bucket: Add must not panic and every
	// sample lands in bucket 0.
	for _, size := range []int{0, -3} {
		h := NewHistogram(size)
		h.Add(0)
		h.Add(7)
		h.Add(-1)
		if h.Total() != 3 || h.Count(0) != 3 {
			t.Fatalf("size %d: total %d, bucket 0 %d", size, h.Total(), h.Count(0))
		}
		// The samples 7 and -1 clamp into the single bucket, so the extreme
		// quantiles report the sentinels, not bucket 0.
		if h.Quantile(1.0) != 1 {
			t.Fatalf("size %d: quantile(1) %d, want the overflow sentinel 1", size, h.Quantile(1.0))
		}
		if h.Quantile(0) != -1 {
			t.Fatalf("size %d: quantile(0) %d, want the underflow sentinel -1", size, h.Quantile(0))
		}
		if h.Quantile(0.5) != 0 {
			t.Fatalf("size %d: quantile(0.5) %d, want 0", size, h.Quantile(0.5))
		}
	}
}

func TestAccExtremaAfterFirstSample(t *testing.T) {
	// The first sample initializes both extrema even when it is above zero
	// (min) or below zero (max).
	var a Acc
	a.Add(5)
	if a.Min() != 5 || a.Max() != 5 {
		t.Fatalf("extrema after first sample: min %f max %f", a.Min(), a.Max())
	}
	a.Add(-2)
	if a.Min() != -2 || a.Max() != 5 {
		t.Fatalf("extrema after second sample: min %f max %f", a.Min(), a.Max())
	}
}

func TestHistogramQuantileZeroSkipsEmptyBuckets(t *testing.T) {
	// Regression: Quantile(0) computed need=0 and returned bucket 0 even when
	// bucket 0 was empty. The 0-quantile is the minimum sample.
	h := NewHistogram(10)
	h.Add(3)
	h.Add(7)
	if got := h.Quantile(0); got != 3 {
		t.Fatalf("Quantile(0) = %d, want 3 (the minimum sample)", got)
	}
	// Tiny q must behave like the 0-quantile, not round down to nothing.
	if got := h.Quantile(1e-12); got != 3 {
		t.Fatalf("Quantile(1e-12) = %d, want 3", got)
	}
	// An empty histogram still answers 0 by convention.
	if got := NewHistogram(4).Quantile(0); got != 0 {
		t.Fatalf("empty Quantile(0) = %d", got)
	}
}
