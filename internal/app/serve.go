package app

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reqsched"
	"reqsched/internal/core"
	"reqsched/internal/registry"
	"reqsched/internal/serve"
)

// ServeMain is the main program of cmd/serve: it boots the live scheduler
// daemon — an HTTP server ingesting JSONL request records into the round
// engine under any registry strategy — and runs until SIGINT/SIGTERM, when
// it drains gracefully (stops admitting, runs out the deadline window,
// flushes the rolling competitive ratio) and reports the final totals.
//
// Usage examples:
//
//	serve -addr :8080 -strategy A_balance -n 8 -d 4 -round-ms 100
//	serve -addr :0 -strategy A_current,l=2 -virtual-clock
//	tracegen -workload bursty -stream | curl --data-binary @- localhost:8080/v1/requests
func ServeMain(args []string, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveMain(ctx, args, stdout, stderr)
}

// serveMain is ServeMain with the lifetime under caller control, so tests
// can terminate the daemon without delivering signals to the process.
func serveMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("serve", stderr)
	var (
		addr     = fs.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		strategy = fs.String("strategy", "A_balance", "strategy by registry name, with optional parameters: name[,key=value...]")
		n        = nFlag(fs)
		d        = dFlag(fs)
		maxD     = fs.Int("max-d", 0, "largest per-record deadline window admitted (0: -d)")
		roundMS  = fs.Int("round-ms", 100, "wall-clock round length in milliseconds")
		virtual  = fs.Bool("virtual-clock", false, "deterministic clock: record arrival rounds drive the engine instead of a ticker")
		queue    = fs.Int("queue", 4096, "arrival queue capacity (full queue answers 429)")
	)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, stdout, stderr); handled {
		return code
	}

	strat, name, err := buildStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	s, err := serve.New(serve.Config{
		N:            *n,
		D:            *d,
		MaxD:         *maxD,
		Strategy:     strat,
		StrategyName: name,
		Virtual:      *virtual,
		RoundDur:     time.Duration(*roundMS) * time.Millisecond,
		QueueCap:     *queue,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	clock := fmt.Sprintf("round-ms=%d", *roundMS)
	if *virtual {
		clock = "virtual-clock"
	}
	fmt.Fprintf(stdout, "serve: listening on %s strategy=%s n=%d d=%d %s queue=%d\n",
		ln.Addr(), name, *n, *d, clock, *queue)

	httpSrv := &http.Server{Handler: s}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		m := s.Drain()
		fmt.Fprintf(stdout, "serve: drained: requests=%d fulfilled=%d expired=%d rolling ratio %s over %d segments\n",
			m.Requests, m.Fulfilled, m.Expired, m.Rolling.Ratio, m.Rolling.Solved)
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(sctx)
	}()
	if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
		fmt.Fprintln(stderr, err)
		return 1
	}
	<-done
	return 0
}

// serveChecks verifies the tentpole serve-mode equivalence for cmd/verify: a
// gapped workload streamed through the daemon's HTTP ingest under the
// virtual clock must reproduce the batch engine's totals and the offline
// ratio pipeline's OPT on the very same stream.
func serveChecks(add func(name string, ok bool, format string, args ...interface{}), workers int) {
	const name = "serve: virtual clock vs engine"
	tr := reqsched.Bursty(reqsched.WorkloadConfig{N: 6, D: 4, Rounds: 90, Rate: 0, Seed: 5}, 3, 10, 8)
	var buf bytes.Buffer
	if err := reqsched.WriteTraceStream(&buf, tr); err != nil {
		add(name, false, "%v", err)
		return
	}
	s, err := serve.New(serve.Config{N: tr.N, D: tr.D, Strategy: reqsched.NewABalance(), Virtual: true})
	if err != nil {
		add(name, false, "%v", err)
		return
	}
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/requests", bytes.NewReader(buf.Bytes())))
	m := s.Drain()
	want := reqsched.Run(reqsched.NewABalance(), tr)
	opt := reqsched.OptimumParallel(tr, workers)
	ok := rw.Code == http.StatusOK &&
		m.Requests == want.Requests && m.Fulfilled == want.Fulfilled && m.Expired == want.Expired &&
		m.Rolling.Alg == want.Fulfilled && m.Rolling.Opt == opt &&
		m.Rolling.Solved == reqsched.TraceSegmentCount(tr)
	add(name, ok,
		"daemon %d/%d OPT %d vs engine %d/%d OPT %d (%d segments, ingest %d)",
		m.Fulfilled, m.Expired, m.Rolling.Opt, want.Fulfilled, want.Expired, opt,
		m.Rolling.Solved, rw.Code)
}

// buildStrategy resolves a "name[,key=value...]" spec against the registry.
func buildStrategy(spec string) (core.Strategy, string, error) {
	name, _, _ := strings.Cut(spec, ",")
	if _, ok := registry.Get(registry.KindStrategy, name); !ok {
		return nil, "", fmt.Errorf("unknown strategy %q (try -list)", name)
	}
	s, err := registry.NewStrategySpec(spec)
	if err != nil {
		return nil, "", err
	}
	return s, name, nil
}
