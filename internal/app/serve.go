package app

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reqsched"
	"reqsched/internal/core"
	"reqsched/internal/registry"
	"reqsched/internal/serve"
)

// ServeMain is the main program of cmd/serve: it boots the live scheduler
// daemon — an HTTP server ingesting JSONL request records into the round
// engine under any registry strategy — and runs until SIGINT/SIGTERM, when
// it drains gracefully (stops admitting, runs out the deadline window,
// flushes the rolling competitive ratio) and reports the final totals.
//
// Usage examples:
//
//	serve -addr :8080 -strategy A_balance -n 8 -d 4 -round-ms 100
//	serve -addr :0 -strategy A_current,l=2 -virtual-clock
//	tracegen -workload bursty -stream | curl --data-binary @- localhost:8080/v1/requests
func ServeMain(args []string, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveMain(ctx, args, stdout, stderr)
}

// serveMain is ServeMain with the lifetime under caller control, so tests
// can terminate the daemon without delivering signals to the process.
func serveMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("serve", stderr)
	var (
		addr     = fs.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		strategy = fs.String("strategy", "A_balance", "strategy by registry name, with optional parameters: name[,key=value...]")
		n        = nFlag(fs)
		d        = dFlag(fs)
		maxD     = fs.Int("max-d", 0, "largest per-record deadline window admitted (0: -d)")
		hold     = fs.Int("hold", 0, "service model: rounds a served request occupies its resource (0 = 1, unit)")
		capc     = fs.Int("cap", 0, "service model: concurrent services per resource (0 = 1, unit)")
		roundMS  = fs.Int("round-ms", 100, "wall-clock round length in milliseconds")
		virtual  = fs.Bool("virtual-clock", false, "deterministic clock: record arrival rounds drive the engine instead of a ticker")
		queue    = fs.Int("queue", 4096, "arrival queue capacity (full queue answers 429)")
		batch    = fs.Int("ingest-batch", 0, "records admitted per lock acquisition (0: 256, 1: record at a time)")
		stripes  = fs.Int("stripes", 0, "wall-clock arrival queue shards (0: GOMAXPROCS; ignored under -virtual-clock)")
		pprofSrv = fs.String("pprof", "", "also serve net/http/pprof on this address (e.g. localhost:6060; empty: off)")
	)
	workers := workersFlag(fs)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}

	strat, name, err := buildStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	s, err := serve.New(serve.Config{
		N:            *n,
		D:            *d,
		MaxD:         *maxD,
		Strategy:     strat,
		StrategyName: name,
		Model:        core.ServiceModel{Hold: *hold, Cap: *capc},
		Virtual:      *virtual,
		RoundDur:     time.Duration(*roundMS) * time.Millisecond,
		QueueCap:     *queue,
		IngestBatch:  *batch,
		Stripes:      *stripes,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var pprofSrvr *http.Server
	if *pprofSrv != "" {
		// The profiler gets its own mux and listener: the daemon's handler
		// never exposes /debug/pprof, and the default is fully off. The
		// server is closed with the daemon on SIGTERM/drain — it must not
		// outlive the main listener.
		pln, err := net.Listen("tcp", *pprofSrv)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrvr = &http.Server{Handler: pmux}
		defer pprofSrvr.Close()
		go func() { _ = pprofSrvr.Serve(pln) }()
		fmt.Fprintf(stdout, "serve: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	clock := fmt.Sprintf("round-ms=%d", *roundMS)
	if *virtual {
		clock = "virtual-clock"
	}
	model := ""
	if m := (core.ServiceModel{Hold: *hold, Cap: *capc}).Norm(); !m.IsUnit() {
		model = " " + m.String()
	}
	fmt.Fprintf(stdout, "serve: listening on %s strategy=%s n=%d d=%d%s %s queue=%d\n",
		ln.Addr(), name, *n, *d, model, clock, *queue)

	httpSrv := &http.Server{Handler: s}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		m := s.Drain()
		fmt.Fprintf(stdout, "serve: drained: requests=%d fulfilled=%d expired=%d rolling ratio %s over %d segments\n",
			m.Requests, m.Fulfilled, m.Expired, m.Rolling.Ratio, m.Rolling.Solved)
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(sctx)
		if pprofSrvr != nil {
			_ = pprofSrvr.Close()
		}
	}()
	if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
		fmt.Fprintln(stderr, err)
		return 1
	}
	<-done
	return 0
}

// serveChecks verifies the tentpole serve-mode equivalence for cmd/verify: a
// gapped workload streamed through the daemon's HTTP ingest under the
// virtual clock must reproduce the batch engine's totals and the offline
// ratio pipeline's OPT on the very same stream.
func serveChecks(add func(name string, ok bool, format string, args ...interface{}), workers int) {
	const name = "serve: virtual clock vs engine"
	tr := reqsched.Bursty(reqsched.WorkloadConfig{N: 6, D: 4, Rounds: 90, Rate: 0, Seed: 5}, 3, 10, 8)
	var buf bytes.Buffer
	if err := reqsched.WriteTraceStream(&buf, tr); err != nil {
		add(name, false, "%v", err)
		return
	}
	s, err := serve.New(serve.Config{N: tr.N, D: tr.D, Strategy: reqsched.NewABalance(), Virtual: true})
	if err != nil {
		add(name, false, "%v", err)
		return
	}
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/requests", bytes.NewReader(buf.Bytes())))
	m := s.Drain()
	want := reqsched.Run(reqsched.NewABalance(), tr)
	opt := reqsched.OptimumParallel(tr, workers)
	ok := rw.Code == http.StatusOK &&
		m.Requests == want.Requests && m.Fulfilled == want.Fulfilled && m.Expired == want.Expired &&
		m.Rolling.Alg == want.Fulfilled && m.Rolling.Opt == opt &&
		m.Rolling.Solved == reqsched.TraceSegmentCount(tr)
	add(name, ok,
		"daemon %d/%d OPT %d vs engine %d/%d OPT %d (%d segments, ingest %d)",
		m.Fulfilled, m.Expired, m.Rolling.Opt, want.Fulfilled, want.Expired, opt,
		m.Rolling.Solved, rw.Code)

	// The ingest batch size only changes lock cadence, and the rolling batch
	// fallback only changes how segments are solved: both must reproduce the
	// incremental default's totals and rolling ratio exactly.
	run := func(cfg serve.Config) (serve.Metrics, bool) {
		cfg.N, cfg.D, cfg.Virtual = tr.N, tr.D, true
		cfg.Strategy = reqsched.NewABalance()
		s, err := serve.New(cfg)
		if err != nil {
			return serve.Metrics{}, false
		}
		rw := httptest.NewRecorder()
		s.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/requests", bytes.NewReader(buf.Bytes())))
		return s.Drain(), rw.Code == http.StatusOK
	}
	deep, okDeep := run(serve.Config{})
	shallow, okShallow := run(serve.Config{IngestBatch: 1})
	batch, okBatch := run(serve.Config{RollingBatch: true})
	sameTotals := func(a, b serve.Metrics) bool {
		return a.Requests == b.Requests && a.Fulfilled == b.Fulfilled &&
			a.Expired == b.Expired && a.Rolling == b.Rolling
	}
	add("serve: ingest batch sizes identical", okDeep && okShallow && sameTotals(deep, shallow),
		"batch 256: %d/%d rolling %+v, batch 1: %d/%d rolling %+v",
		deep.Requests, deep.Fulfilled, deep.Rolling,
		shallow.Requests, shallow.Fulfilled, shallow.Rolling)
	add("serve: rolling batch fallback matches incremental", okBatch && sameTotals(deep, batch),
		"incremental rolling %+v vs batch-solver rolling %+v", deep.Rolling, batch.Rolling)

	serveStripedCheck(add)
}

// serveStripedCheck pins the sharded wall-clock ingest contract for
// cmd/verify: a sequential client (one POST per tick) driving the striped
// arrival queue produces a schedule bit-identical to the single-queue path —
// same request IDs, same fulfillments, same rolling ratio.
func serveStripedCheck(add func(name string, ok bool, format string, args ...interface{})) {
	const name = "serve: striped ingest vs single queue"
	session := func(stripes int) (*core.Result, serve.Metrics, error) {
		s, err := serve.New(serve.Config{
			N: 4, D: 3, Strategy: reqsched.NewABalance(), KeepLog: true,
			QueueCap: 1 << 12, Stripes: stripes,
		})
		if err != nil {
			return nil, serve.Metrics{}, err
		}
		rng := rand.New(rand.NewSource(7))
		for round := 0; round < 12; round++ {
			var sb strings.Builder
			for i := 0; i < 15; i++ {
				a := rng.Intn(4)
				c := rng.Intn(3)
				if c >= a {
					c++
				}
				fmt.Fprintf(&sb, `{"alts":[%d,%d]}`+"\n", a, c)
			}
			rw := httptest.NewRecorder()
			s.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/requests", strings.NewReader(sb.String())))
			if rw.Code != http.StatusOK {
				return nil, serve.Metrics{}, fmt.Errorf("round %d: ingest status %d", round, rw.Code)
			}
			s.Tick()
		}
		m := s.Drain()
		return s.FinalResult(), m, nil
	}
	single, m1, err1 := session(1)
	striped, m4, err4 := session(4)
	if err1 != nil || err4 != nil {
		add(name, false, "single: %v, striped: %v", err1, err4)
		return
	}
	same := single.Requests == striped.Requests && single.Fulfilled == striped.Fulfilled &&
		len(single.Log) == len(striped.Log) && m1.Rolling == m4.Rolling
	for i := 0; same && i < len(single.Log); i++ {
		a, b := single.Log[i], striped.Log[i]
		same = a.Req.ID == b.Req.ID && a.Res == b.Res && a.Round == b.Round
	}
	add(name, same,
		"single queue %d/%d (%d fulfillments, rolling %+v) vs 4 stripes %d/%d (%d, rolling %+v)",
		single.Requests, single.Fulfilled, len(single.Log), m1.Rolling,
		striped.Requests, striped.Fulfilled, len(striped.Log), m4.Rolling)
}

// buildStrategy resolves a "name[,key=value...]" spec against the registry.
func buildStrategy(spec string) (core.Strategy, string, error) {
	name, _, _ := strings.Cut(spec, ",")
	if _, ok := registry.Get(registry.KindStrategy, name); !ok {
		return nil, "", fmt.Errorf("unknown strategy %q (try -list)", name)
	}
	s, err := registry.NewStrategySpec(spec)
	if err != nil {
		return nil, "", err
	}
	return s, name, nil
}
