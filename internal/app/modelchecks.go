package app

import (
	"fmt"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/registry"
	"reqsched/internal/workload"
)

// modelChecks pins the reusable-resources extension for cmd/verify: under
// hold=k service models the hold_squeeze construction forces the greedy
// router to exactly the factor-2 charging bound, the batch, segmented and
// incremental offline optima agree on hold x cap grids, and greedy's
// empirical ratio stays within the bound (which Baek-Wang sharpen in the
// windowless reusable model, arXiv 2304.03377).
func modelChecks(add func(name string, ok bool, format string, args ...interface{}), workers int) {
	greedy := func() core.Strategy {
		s, err := registry.NewStrategySpec("compose,router=greedy")
		if err != nil {
			panic(err) // the spec is a constant; resolution cannot fail
		}
		return s
	}

	// The construction serves one request per epoch under greedy while the
	// optimum serves two — the ratio is exactly 2 with no additive slack.
	for _, h := range []int{2, 4, 8} {
		c := adversary.HoldSqueeze(h, 30)
		res := core.Run(greedy(), c.Trace)
		opt := offline.OptimumParallel(c.Trace, workers)
		ok := res.Fulfilled > 0 && opt == 2*res.Fulfilled
		add(fmt.Sprintf("model: hold_squeeze hold=%d exactly 2", h), ok,
			"OPT %d vs greedy %d (charging bound %.0f, cf. arXiv 2304.03377)",
			opt, res.Fulfilled, c.Bound)
	}

	// The acceptance pin for the rolling ratio: batch, segmented-parallel and
	// incremental OPT must agree exactly on every hold x cap grid cell, and
	// greedy must sit within the factor-2 charging guarantee throughout.
	mismatch, cells := 0, 0
	worst := 0.0
	for _, h := range []int{1, 2, 4, 8} {
		for _, capc := range []int{1, 2, 3} {
			m := core.ServiceModel{Hold: h, Cap: capc}
			tr := workload.Reusable(workload.Config{N: 6, D: 5, Rounds: 80, Seed: int64(10*h + capc)}, m, 0.9)
			cells++
			want := offline.Optimum(tr)
			if offline.OptimumParallel(tr, workers) != want || offline.OptimumIncremental(tr) != want {
				mismatch++
			}
			res := core.Run(greedy(), tr)
			if res.Fulfilled > 0 {
				if r := float64(want) / float64(res.Fulfilled); r > worst {
					worst = r
				}
			}
		}
	}
	add("model: batch OPT == incremental OPT", mismatch == 0,
		"%d/%d hold x cap grid cells mismatched", mismatch, cells)
	add("model: greedy within charging bound", worst <= 2+1e-9,
		"worst empirical ratio %.4f over the grid vs greedy UB 2 (Baek-Wang, arXiv 2304.03377)", worst)
}
