package app

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"testing"

	"reqsched/internal/grid"
	"reqsched/internal/ratio"
	"reqsched/internal/registry"
	"reqsched/internal/runner"
)

// closureSpecs rebuilds a sweep mode's manifest the way the pre-registry
// frontends did — literal grid.BuildSpec tables — so the tests can prove the
// registry-described records hash to the very same content-derived job IDs.
func closureSpecs(mode string, phases int) ([]grid.Spec, []string) {
	var specs []grid.Spec
	var names []string
	switch mode {
	case "d":
		rows := []struct {
			name  string
			build func(d int) grid.BuildSpec
			ds    []int
		}{
			{"A_fix",
				func(d int) grid.BuildSpec { return grid.BuildSpec{Kind: "fix", D: d, Phases: phases} },
				[]int{2, 3, 4, 6, 8, 12, 16, 24}},
			{"A_fix_balance",
				func(d int) grid.BuildSpec { return grid.BuildSpec{Kind: "fix_balance", D: d, Phases: phases} },
				[]int{2, 4, 6, 8, 12, 16, 24}},
			{"A_eager",
				func(d int) grid.BuildSpec { return grid.BuildSpec{Kind: "eager", D: d, Phases: phases} },
				[]int{2, 4, 6, 8, 12, 16, 24}},
			{"A_balance",
				func(d int) grid.BuildSpec {
					return grid.BuildSpec{Kind: "balance", X: (d + 1) / 3, K: 32, Phases: phases}
				},
				[]int{2, 5, 8, 11, 14}},
			{"A_local_fix",
				func(d int) grid.BuildSpec { return grid.BuildSpec{Kind: "local_fix", D: d, Phases: phases} },
				[]int{1, 2, 4, 8, 16}},
		}
		for _, r := range rows {
			for _, d := range r.ds {
				specs = append(specs, grid.Spec{Strategy: r.name, Build: r.build(d)})
				names = append(names, fmt.Sprintf("%s/d=%d", r.name, d))
			}
		}
	case "l":
		for _, l := range []int{2, 3, 4, 5, 6, 7} {
			specs = append(specs, grid.Spec{
				Strategy: "A_current",
				Build:    grid.BuildSpec{Kind: "current", L: l, Phases: 5},
			})
			names = append(names, fmt.Sprintf("l=%d", l))
		}
	case "load":
		n, d := 8, 4
		snames := make([]string, 0)
		for name := range registry.ListedStrategies() {
			snames = append(snames, name)
		}
		sort.Strings(snames)
		for _, frac := range []float64{0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0} {
			for _, name := range snames {
				specs = append(specs, grid.Spec{
					Strategy: name,
					Build:    grid.BuildSpec{Kind: "uniform", N: n, D: d, Rounds: 150, Rate: frac * float64(n), Seed: 7},
				})
				names = append(names, fmt.Sprintf("%s@%.2f", name, frac))
			}
		}
	}
	return specs, names
}

// sweepRecords returns the registry-record manifest of a sweep mode at the
// default phase count, discarding the printer.
func sweepRecords(mode string) []runner.Record {
	switch mode {
	case "d":
		r, _ := sweepD(60, io.Discard)
		return r
	case "l":
		r, _ := sweepL(io.Discard)
		return r
	default:
		r, _ := sweepLoad(io.Discard)
		return r
	}
}

// TestRecordIDsMatchClosurePath is the stability property of the refactor:
// for every sweep mode, the registry-record pipeline produces the same job
// names, the same wire specs, and — critically — the same sha256-derived job
// IDs as the literal closure-era spec tables, so existing journals and
// sharded runs resume across the refactor boundary.
func TestRecordIDsMatchClosurePath(t *testing.T) {
	for _, mode := range []string{"d", "l", "load"} {
		newJobs, err := runner.Manifest(sweepRecords(mode))
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		specs, names := closureSpecs(mode, 60)
		oldJobs, err := grid.BuildManifest(specs, names)
		if err != nil {
			t.Fatalf("mode %s (closure path): %v", mode, err)
		}
		if len(newJobs) != len(oldJobs) {
			t.Fatalf("mode %s: %d jobs vs %d on the closure path", mode, len(newJobs), len(oldJobs))
		}
		for i := range newJobs {
			if newJobs[i].ID != oldJobs[i].ID {
				t.Errorf("mode %s job %d (%s): ID %s != closure-path %s",
					mode, i, newJobs[i].Name, newJobs[i].ID, oldJobs[i].ID)
			}
			if newJobs[i].Name != oldJobs[i].Name {
				t.Errorf("mode %s job %d: name %q != %q", mode, i, newJobs[i].Name, oldJobs[i].Name)
			}
			if newJobs[i].Spec.Strategy != oldJobs[i].Spec.Strategy || newJobs[i].Spec.Build != oldJobs[i].Spec.Build {
				t.Errorf("mode %s job %d: wire spec diverged: %+v vs %+v",
					mode, i, newJobs[i].Spec, oldJobs[i].Spec)
			}
		}
	}
}

// TestJournalResumeBitIdentical proves the three engines agree measurement
// for measurement on every sweep mode, and that a journal written by one run
// is consumed bit-identically by a resumed one — including a resume over a
// partial (truncated) journal.
func TestJournalResumeBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, mode := range []string{"d", "l", "load"} {
		jobs, err := runner.Manifest(sweepRecords(mode))
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}

		// Closure-path reference: the direct ratio pool over the same jobs.
		want := ratio.RunParallel(grid.RatioJobs(jobs), 2)

		// Engine 1: plain runner path.
		plain, err := runner.Run(ctx, jobs, runner.Options{Workers: 2})
		if err != nil {
			t.Fatalf("mode %s plain: %v", mode, err)
		}
		requireSame(t, mode+" plain", want, plain.Measurements)

		// Engine 2: journaled path, fresh journal.
		path := t.TempDir() + "/journal.jsonl"
		journaled, err := runner.Run(ctx, jobs, runner.Options{Workers: 2, JournalPath: path})
		if err != nil {
			t.Fatalf("mode %s journaled: %v", mode, err)
		}
		if !journaled.AllDone() {
			t.Fatalf("mode %s journaled: incomplete grid", mode)
		}
		requireSame(t, mode+" journaled", want, journaled.Measurements)

		// Truncate the journal to a prefix: a crash mid-sweep. The resumed
		// run folds the surviving cells and re-measures the rest.
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(string(b), "\n")
		keep := len(lines) / 2
		if err := os.WriteFile(path, []byte(strings.Join(lines[:keep], "")), 0o644); err != nil {
			t.Fatal(err)
		}
		resumed, err := runner.Run(ctx, jobs, runner.Options{Workers: 2, JournalPath: path, Resume: true})
		if err != nil {
			t.Fatalf("mode %s resumed: %v", mode, err)
		}
		if !resumed.AllDone() {
			t.Fatalf("mode %s resumed: incomplete grid", mode)
		}
		if resumed.FromJournal == 0 {
			t.Errorf("mode %s resumed: no cells folded from the journal", mode)
		}
		requireSame(t, mode+" resumed", want, resumed.Measurements)
	}
}

func requireSame(t *testing.T, label string, want, got []ratio.Measurement) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d measurements, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: measurement %d diverged: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// TestSpecParamsRoundTrip closes the loop between the two job descriptions:
// a wire BuildSpec extracts to registry params which rebuild the identical
// spec, for every cell of every sweep mode.
func TestSpecParamsRoundTrip(t *testing.T) {
	for _, mode := range []string{"d", "l", "load"} {
		specs, _ := closureSpecs(mode, 60)
		for _, s := range specs {
			p, err := s.Build.Params()
			if err != nil {
				t.Fatalf("mode %s %+v: %v", mode, s.Build, err)
			}
			back, err := grid.SpecFor(s.Strategy, s.Build.Kind, p)
			if err != nil {
				t.Fatalf("mode %s %+v: %v", mode, s.Build, err)
			}
			if back.Build != s.Build || back.Strategy != s.Strategy {
				t.Errorf("mode %s: round trip diverged: %+v vs %+v", mode, back, s)
			}
		}
	}
}
