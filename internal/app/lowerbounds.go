package app

import (
	"fmt"
	"io"

	"reqsched/internal/ratio"
	"reqsched/internal/registry"
)

// LowerboundsMain is the main program of cmd/lowerbounds: the convergence
// of each adversarial construction — the measured ratio OPT/ALG as a
// function of the number of phases, approaching the theorem's bound from
// below. With -csv it emits machine-readable series (construction, phases,
// opt, alg, ratio, bound) for plotting. Each series is a registry record
// (strategy, adversary, params); the phase count is the swept parameter.
func LowerboundsMain(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("lowerbounds", stderr)
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	workers := workersFlag(fs)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}

	phaseCounts := []int{2, 5, 10, 20, 40, 80, 160}

	type series struct {
		name     string
		strategy string
		source   string
		params   registry.Params
	}
	all := []series{
		{"fix(d=4) Thm2.1", "A_fix", "fix", registry.Params{"d": iv(4)}},
		{"current(l=5) Thm2.2", "A_current", "current", registry.Params{"l": iv(5)}},
		{"fix_balance(d=8) Thm2.3", "A_fix_balance", "fix_balance", registry.Params{"d": iv(8)}},
		{"eager(d=4) Thm2.4", "A_eager", "eager", registry.Params{"d": iv(4)}},
		{"balance(x=2,k=32) Thm2.5", "A_balance", "balance", registry.Params{"x": iv(2), "k": iv(32)}},
		{"universal(d=6) Thm2.6 vs A_balance", "A_balance", "universal", registry.Params{"d": iv(6)}},
		{"local_fix(d=4) Thm3.7", "A_local_fix", "local_fix", registry.Params{"d": iv(4)}},
		{"edf_worst(d=4) Obs3.2", "EDF", "edf", registry.Params{"d": iv(4)}},
	}

	if *csv {
		fmt.Fprintln(stdout, "construction,phases,opt,alg,ratio,bound")
	}
	for _, s := range all {
		at := func(phases int) registry.Params {
			p := s.params.Clone()
			p["phases"] = iv(phases)
			return p
		}
		if !*csv {
			head, err := registry.BuildAdversary(s.source, at(1))
			if err != nil {
				fmt.Fprintln(stderr, "lowerbounds:", err)
				return 1
			}
			fmt.Fprintf(stdout, "%s (bound %.4f)\n", s.name, head.Bound)
		}
		for _, p := range phaseCounts {
			c, err := registry.BuildAdversary(s.source, at(p))
			if err != nil {
				fmt.Fprintln(stderr, "lowerbounds:", err)
				return 1
			}
			strat, err := registry.NewStrategy(s.strategy, nil)
			if err != nil {
				fmt.Fprintln(stderr, "lowerbounds:", err)
				return 1
			}
			m := ratio.MeasureConstruction(c, strat)
			if *csv {
				fmt.Fprintf(stdout, "%s,%d,%d,%d,%.6f,%.6f\n", s.name, p, m.OPT, m.ALG, m.Ratio(), c.Bound)
			} else {
				fmt.Fprintf(stdout, "  phases=%4d  OPT=%7d  ALG=%7d  ratio=%.4f\n", p, m.OPT, m.ALG, m.Ratio())
			}
		}
		if !*csv {
			fmt.Fprintln(stdout)
		}
	}
	return 0
}
