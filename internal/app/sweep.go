package app

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"reqsched/internal/adversary"
	"reqsched/internal/grid/chaos"
	"reqsched/internal/ratio"
	"reqsched/internal/registry"
	"reqsched/internal/runner"
)

// splitAddrs parses the -workers-at flag: a comma-separated address list,
// blanks trimmed and dropped.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// iv and fv build registry parameter values from plain Go numbers — the
// record-building shorthand of the frontends.
func iv(v int) registry.Value     { return registry.IntVal(int64(v)) }
func fv(v float64) registry.Value { return registry.FloatVal(v) }

// printer renders measurements as CSV rows. done[i]==false rows (cells that
// failed after retries) are skipped — the failure report names them; nil
// done means every cell completed.
type printer func(ms []ratio.Measurement, done []bool)

// SweepMain is the main program of cmd/sweep: the derived data series of
// the reproduction (DESIGN.md Fig-A/Fig-B) as CSV.
//
//	-mode d     ratio of each strategy on its own adversary as d grows
//	            (the shape of the Table 1 bound formulas);
//	-mode l     A_current's ratio versus l, converging to e/(e-1);
//	-mode load  empirical ratio of every strategy on random load as the
//	            arrival rate sweeps past saturation;
//	-mode model greedy's ratio on reusable-resource traffic over a hold ×
//	            load grid, against the factor-2 charging bound (cf. arXiv
//	            2304.03377).
//
// All modes declare their cells as registry records (strategy, source,
// params) and execute them through the runner pipeline; rows print in a
// fixed order regardless of worker count. -journal/-resume/-shard select
// the fault-tolerant engines; -shard 0 without -journal is the plain
// worker-pool path and produces byte-identical CSV on every path.
func SweepMain(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("sweep", stderr)
	mode := fs.String("mode", "d", "d | l | load | model")
	phases := fs.Int("phases", 60, phasesUsage)
	workers := workersFlag(fs)
	shard := fs.Int("shard", 0, "gridworker subprocesses (0: measure in-process)")
	journalPath := fs.String("journal", "", "checkpoint journal path (JSONL; enables crash-safe resume)")
	resume := fs.Bool("resume", false, "resume from an existing journal (requires -journal)")
	workerCmd := fs.String("worker-cmd", "", "gridworker command (default: re-exec this binary with -gridworker)")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "per-cell wall-clock deadline (sharded mode)")
	retries := fs.Int("retries", 3, "retry budget per cell before it is marked failed (sharded mode)")
	workersAt := fs.String("workers-at", "", "comma-separated TCP gridworker addresses (host:port,...); runs the cells remotely")
	linkChaos := fs.String("link-chaos", "", "deterministic link fault mode:K[@link] (requires -workers-at; default $"+chaos.EnvLink+")")
	gridworker := fs.Bool("gridworker", false, "internal: speak the gridworker protocol on stdin/stdout")
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}
	if *gridworker {
		return gridworkerRun(stderr, 2*time.Second)
	}
	if *resume && *journalPath == "" {
		fmt.Fprintln(stderr, "sweep: -resume requires -journal")
		return 2
	}
	addrs := splitAddrs(*workersAt)
	linkSpec := *linkChaos
	if linkSpec == "" {
		linkSpec = os.Getenv(chaos.EnvLink)
	}
	linkFault, err := chaos.ParseLink(linkSpec)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	if linkFault != nil && len(addrs) == 0 {
		fmt.Fprintln(stderr, "sweep: -link-chaos requires -workers-at")
		return 2
	}

	var records []runner.Record
	var print printer
	switch *mode {
	case "d":
		records, print = sweepD(*phases, stdout)
	case "l":
		records, print = sweepL(stdout)
	case "load":
		records, print = sweepLoad(stdout)
	case "model":
		records, print = sweepModel(stdout)
	default:
		fmt.Fprintf(stderr, "unknown mode %q\n", *mode)
		return 2
	}
	jobs, err := runner.Manifest(records)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	var cmd []string
	if *workerCmd != "" {
		cmd = []string{*workerCmd}
	}
	res, err := runner.Run(context.Background(), jobs, runner.Options{
		Tool:        "sweep",
		Workers:     resolveWorkers(*workers),
		Shard:       *shard,
		JournalPath: *journalPath,
		Resume:      *resume,
		WorkerCmd:   cmd,
		JobTimeout:  *jobTimeout,
		Retries:     *retries,
		WorkersAt:   addrs,
		LinkFault:   linkFault,
		Signals:     true,
		Log:         stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if res.Interrupted {
		return 130
	}
	print(res.Measurements, res.Done)
	if res.FailureReport != "" {
		fmt.Fprint(stderr, res.FailureReport)
		return 1
	}
	return 0
}

func sweepD(phases int, stdout io.Writer) ([]runner.Record, printer) {
	type point struct {
		name string
		d    int
	}
	dp := func(d int) registry.Params {
		return registry.Params{"d": iv(d), "phases": iv(phases)}
	}
	type row struct {
		name   string
		source string
		params func(d int) registry.Params
		ds     []int
	}
	rows := []row{
		{"A_fix", "fix", dp, []int{2, 3, 4, 6, 8, 12, 16, 24}},
		{"A_fix_balance", "fix_balance", dp, []int{2, 4, 6, 8, 12, 16, 24}},
		{"A_eager", "eager", dp, []int{2, 4, 6, 8, 12, 16, 24}},
		{"A_balance", "balance",
			func(d int) registry.Params {
				return registry.Params{"x": iv((d + 1) / 3), "k": iv(32), "phases": iv(phases)}
			},
			[]int{2, 5, 8, 11, 14}},
		{"A_local_fix", "local_fix", dp, []int{1, 2, 4, 8, 16}},
	}
	var records []runner.Record
	var points []point
	for _, r := range rows {
		for _, d := range r.ds {
			records = append(records, runner.Record{
				Name:     fmt.Sprintf("%s/d=%d", r.name, d),
				Strategy: r.name,
				Source:   r.source,
				Params:   r.params(d),
			})
			points = append(points, point{r.name, d})
		}
	}
	print := func(ms []ratio.Measurement, done []bool) {
		fmt.Fprintln(stdout, "strategy,d,opt,alg,measured,provenLB,provenUB")
		for i, m := range ms {
			if done != nil && !done[i] {
				continue
			}
			p := points[i]
			fmt.Fprintf(stdout, "%s,%d,%d,%d,%s,%.6f,%s\n",
				p.name, p.d, m.OPT, m.ALG, ratio.FormatRatio(m.Ratio(), 6), m.Bound, ub(p.name, p.d))
		}
	}
	return records, print
}

func ub(name string, d int) string {
	if _, err := registry.NewStrategy(name, nil); err != nil {
		return ""
	}
	// UpperBound formulas mirror Table 1; reuse the measurement bound field
	// by probing a tiny run is overkill — recompute directly.
	switch name {
	case "A_fix", "A_current", "A_local_fix":
		if name == "A_local_fix" {
			return "2.000000"
		}
		return fmt.Sprintf("%.6f", 2-1/float64(d))
	case "A_fix_balance":
		b := 4.0 / 3.0
		if v := 2 - 2/float64(d); v > b {
			b = v
		}
		if v := 2 - 3/(float64(d)+2); v > b {
			b = v
		}
		return fmt.Sprintf("%.6f", b)
	case "A_eager":
		return fmt.Sprintf("%.6f", (3*float64(d)-2)/(2*float64(d)-1))
	case "A_balance":
		if d == 2 {
			return fmt.Sprintf("%.6f", 4.0/3.0)
		}
		return fmt.Sprintf("%.6f", 6*(float64(d)-1)/(4*float64(d)-3))
	}
	return ""
}

func sweepL(stdout io.Writer) ([]runner.Record, printer) {
	ls := []int{2, 3, 4, 5, 6, 7}
	var records []runner.Record
	for _, l := range ls {
		records = append(records, runner.Record{
			Name:     fmt.Sprintf("l=%d", l),
			Strategy: "A_current",
			Source:   "current",
			Params:   registry.Params{"l": iv(l), "phases": iv(5)},
		})
	}
	print := func(ms []ratio.Measurement, done []bool) {
		fmt.Fprintln(stdout, "l,d,opt,alg,measured,analytic,asymptote")
		for i, m := range ms {
			if done != nil && !done[i] {
				continue
			}
			l := ls[i]
			fmt.Fprintf(stdout, "%d,%d,%d,%d,%s,%.6f,%.6f\n",
				l, m.D, m.OPT, m.ALG, ratio.FormatRatio(m.Ratio(), 6), adversary.CurrentBound(l), 1.5819767)
		}
	}
	return records, print
}

func sweepLoad(stdout io.Writer) ([]runner.Record, printer) {
	n, d := 8, 4
	fracs := []float64{0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0}
	snames := make([]string, 0)
	for name := range registry.ListedStrategies() {
		snames = append(snames, name)
	}
	sort.Strings(snames)

	type point struct {
		name string
		frac float64
	}
	var records []runner.Record
	var points []point
	for _, frac := range fracs {
		for _, name := range snames {
			records = append(records, runner.Record{
				Name:     fmt.Sprintf("%s@%.2f", name, frac),
				Strategy: name,
				Source:   "uniform",
				// The (seeded, deterministic) trace is regenerated per job
				// from the spec, so concurrent runs — and worker processes —
				// never share storage.
				Params: registry.Params{
					"n": iv(n), "d": iv(d), "rounds": iv(150),
					"rate": fv(frac * float64(n)), "seed": iv(7),
				},
			})
			points = append(points, point{name, frac})
		}
	}
	print := func(ms []ratio.Measurement, done []bool) {
		fmt.Fprintln(stdout, "strategy,rate,opt,alg,measured")
		for i, m := range ms {
			if done != nil && !done[i] {
				continue
			}
			p := points[i]
			fmt.Fprintf(stdout, "%s,%.2f,%d,%d,%s\n", p.name, p.frac, m.OPT, m.ALG, ratio.FormatRatio(m.Ratio(), 6))
		}
	}
	return records, print
}

// sweepModel grids the greedy router over reusable-resource traffic: hold ×
// load, capacity 2, with the epoch-relaxed offline optimum as the
// denominator. The greedyUB column is the factor-2 charging bound (each hold
// window absorbs at most cap optimal starts; tight on hold_squeeze), which
// Baek–Wang sharpen in the windowless reusable model (arXiv 2304.03377).
func sweepModel(stdout io.Writer) ([]runner.Record, printer) {
	n, d := 8, 4
	holds := []int{1, 2, 4, 8}
	loads := []float64{0.5, 0.9, 1.5}

	type point struct {
		hold int
		load float64
	}
	var records []runner.Record
	var points []point
	for _, h := range holds {
		for _, load := range loads {
			records = append(records, runner.Record{
				Name:     fmt.Sprintf("greedy/hold=%d@%.2f", h, load),
				Strategy: "compose,router=greedy",
				Source:   "reusable",
				Params: registry.Params{
					"n": iv(n), "d": iv(d), "rounds": iv(200), "seed": iv(7),
					"hold": iv(h), "cap": iv(2), "load": fv(load),
				},
			})
			points = append(points, point{h, load})
		}
	}
	print := func(ms []ratio.Measurement, done []bool) {
		fmt.Fprintln(stdout, "strategy,hold,cap,load,opt,alg,measured,greedyUB")
		for i, m := range ms {
			if done != nil && !done[i] {
				continue
			}
			p := points[i]
			fmt.Fprintf(stdout, "greedy,%d,2,%.2f,%d,%d,%s,2.000000\n",
				p.hold, p.load, m.OPT, m.ALG, ratio.FormatRatio(m.Ratio(), 6))
		}
	}
	return records, print
}
