package app

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a bytes.Buffer safe for the cross-goroutine reads the daemon
// lifecycle test needs (serveMain writes while the test polls).
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeMainLifecycle boots the real daemon main on an ephemeral port,
// streams records over TCP, and shuts it down through context cancellation —
// the same path the signal handler takes.
func TestServeMainLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuf
	exit := make(chan int, 1)
	go func() {
		exit <- serveMain(ctx, []string{"-addr", "127.0.0.1:0", "-virtual-clock", "-n", "2", "-d", "2"}, &out, &errb)
	}()

	addrRE := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(5 * time.Millisecond) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address; stderr: %s", errb.String())
	}

	body := `{"n":2,"d":2}` + "\n" + `{"alts":[0,1]}` + "\n" + `{"t":1,"alts":[1,0]}` + "\n"
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/requests", addr), "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	reply, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, reply)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/v1/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `"requests":2`) {
		t.Fatalf("metrics missing admitted requests: %s", metrics)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d; stderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
	if got := out.String(); !strings.Contains(got, "drained: requests=2 fulfilled=2 expired=0") {
		t.Fatalf("final summary missing drain totals:\n%s", got)
	}
}

// TestServeMainPprof boots the daemon with -pprof on an ephemeral port and
// checks the profiler answers on its own listener — and only when asked for.
func TestServeMainPprof(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuf
	exit := make(chan int, 1)
	go func() {
		exit <- serveMain(ctx, []string{
			"-addr", "127.0.0.1:0", "-virtual-clock", "-n", "2", "-d", "2",
			"-pprof", "127.0.0.1:0",
		}, &out, &errb)
	}()

	pprofRE := regexp.MustCompile(`pprof on http://(\S+)/debug/pprof/`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(5 * time.Millisecond) {
		if m := pprofRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported the pprof address; stdout: %s", out.String())
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}

	// The daemon's own handler must not expose the profiler.
	mainRE := regexp.MustCompile(`listening on (\S+)`)
	m := mainRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no daemon address in output: %s", out.String())
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", m[1]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("daemon handler exposes /debug/pprof/ without -pprof routing")
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d; stderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}

	// The profiler listener must die with the daemon, not linger for the
	// process lifetime.
	if _, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr)); err == nil {
		t.Fatal("pprof listener still answering after daemon shutdown")
	}
}

// TestServeMainUsageErrors pins the exit codes of the flag layer.
func TestServeMainUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-strategy", "no_such_strategy"},
		{"-strategy", "A_balance,bogus=1"},
		{"-d", "4", "-max-d", "2"},
		{"-queue", "-3"},
	} {
		var out, errb bytes.Buffer
		if code := serveMain(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("serveMain(%v): exit %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
	var out, errb bytes.Buffer
	if code := serveMain(context.Background(), []string{"-addr", "256.256.256.256:1"}, &out, &errb); code != 1 {
		t.Errorf("unlistenable address: exit %d, want 1", code)
	}
}
