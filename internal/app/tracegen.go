package app

import (
	"fmt"
	"io"
	"os"

	"reqsched"
	"reqsched/internal/registry"
)

// TracegenMain is the main program of cmd/tracegen: it generates, inspects
// and replays serialized traces.
//
//	tracegen gen  -workload zipf -n 8 -d 4 -rounds 100 -out trace.json
//	tracegen gen  -adversary fix -d 4 -phases 40 -out fix.json
//	tracegen gen  -adversary balance -params x=2,k=16 -out balance.json
//	tracegen gen  -workload bursty -rounds 100000 -stream -out trace.jsonl
//	tracegen info -in trace.json
//	tracegen info -in trace.jsonl -stream -workers 4
//	tracegen run  -in trace.json -strategy A_balance
//
// Workloads and adversaries resolve by registry name (-list shows the
// catalog; -describe a component's parameters). -params overrides schema
// parameters the convenience flags do not cover, e.g. the Theorem 2.5
// construction's x and k. With -stream, gen emits the JSONL stream format
// and info evaluates the offline optimum segment by segment without
// materializing the trace.
func TracegenMain(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return tracegenUsage(stderr)
	}
	switch args[0] {
	case "gen":
		return tracegenGen(args[1:], stdout, stderr)
	case "info":
		return tracegenInfo(args[1:], stdout, stderr)
	case "run":
		return tracegenRun(args[1:], stdout, stderr)
	case "show":
		return tracegenShow(args[1:], stdout, stderr)
	}
	// Top-level -list/-describe (and -h) without a subcommand.
	fs := newFlagSet("tracegen", stderr)
	workers := workersFlag(fs)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}
	return tracegenUsage(stderr)
}

func tracegenUsage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: tracegen gen|info|run|show [flags]  (or tracegen -list)")
	return 2
}

// tracegenShow renders a strategy's schedule on a trace as an ASCII grid.
func tracegenShow(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("tracegen show", stderr)
	in := fs.String("in", "", "trace file")
	name := fs.String("strategy", "A_balance", "strategy name")
	from := fs.Int("from", 0, "first round to draw")
	to := fs.Int("to", -1, "one past the last round to draw (-1: all)")
	losses := fs.Bool("losses", false, "also list unserved requests")
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if *in == "" {
		return tracegenUsage(stderr)
	}
	tr, code := tracegenLoad(*in, stderr)
	if tr == nil {
		return code
	}
	s := reqsched.StrategyByName(*name)
	if s == nil {
		strategySpecError(stderr, *name)
		return 2
	}
	res, err := reqsched.RunChecked(s, tr)
	if err != nil {
		fmt.Fprintf(stderr, "tracegen: invalid trace %s: %v\n", *in, err)
		return 1
	}
	fmt.Fprint(stdout, reqsched.RenderGrid(tr, res.Log, *from, *to))
	if *losses {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, reqsched.RenderLosses(tr, res.Log))
	}
	return 0
}

func tracegenGen(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("tracegen gen", stderr)
	var (
		wl     = fs.String("workload", "uniform", "workload generator by registry name (see tracegen -list)")
		adv    = fs.String("adversary", "", "adversary construction by registry name (overrides -workload)")
		n      = nFlag(fs)
		d      = dFlag(fs)
		rounds = fs.Int("rounds", 100, roundsUsage)
		rate   = fs.Float64("rate", 0, "mean arrivals per round (default n)")
		seed   = seedFlag(fs)
		zipfS  = fs.Float64("zipf", 1.4, "zipf exponent (zipf/video)")
		items  = fs.Int("items", 100, "catalog size (video)")
		on     = fs.Int("on", 5, "burst length (bursty)")
		off    = fs.Int("off", 10, "quiet length (bursty)")
		burst  = fs.Float64("burst", 0, "burst arrivals/round (default 3n)")
		c      = fs.Int("c", 3, "alternatives per request (cchoice)")
		maxW   = fs.Int("maxw", 8, "maximum request weight (weighted)")
		trapE  = fs.Int("trap-every", 20, "rounds between embedded traps (trapmix)")
		hold   = fs.Int("hold", 0, "service model: rounds a served request occupies its resource (0 = 1, unit)")
		capc   = fs.Int("cap", 0, "service model: concurrent services per resource (0 = 1, unit)")
		load   = fs.Float64("load", 0.9, "target utilization of the model's capacity (reusable, when -rate 0)")
		phases = fs.Int("phases", 40, phasesUsage)
		extra  = fs.String("params", "", "extra component parameters as name=value,... (see -describe)")
		out    = fs.String("out", "", "output file (default stdout)")
		stream = fs.Bool("stream", false, "emit the streaming JSONL format instead of one JSON document")
	)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	// Historical defaulting: -rate 0 means "rate = n" — except for the
	// reusable family, where rate 0 asks the generator to derive the rate
	// from -load and the service model.
	if *rate == 0 && *wl != "reusable" {
		*rate = float64(*n)
	}
	if *burst == 0 {
		*burst = 3 * float64(*n)
	}

	var tr *reqsched.Trace
	if *adv != "" {
		comp, ok := registry.Get(registry.KindAdversary, *adv)
		if !ok {
			fmt.Fprintf(stderr, "unknown adversary %q\n", *adv)
			return 2
		}
		p := registry.Params{}
		for _, sp := range comp.Params {
			switch sp.Name {
			case "d":
				p["d"] = iv(*d)
			case "phases":
				p["phases"] = iv(*phases)
			}
		}
		over, err := comp.ParseParams(*extra)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		for k, v := range over {
			p[k] = v
		}
		c, err := registry.BuildAdversary(*adv, p)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		if c.Trace == nil {
			fmt.Fprintf(stderr, "tracegen: adversary %q is adaptive; it has no fixed trace to serialize\n", *adv)
			return 2
		}
		tr = c.Trace
	} else {
		comp, ok := registry.Get(registry.KindWorkload, *wl)
		if !ok {
			fmt.Fprintf(stderr, "unknown workload %q\n", *wl)
			return 2
		}
		vals := map[string]registry.Value{
			"n": iv(*n), "d": iv(*d), "rounds": iv(*rounds),
			"rate": fv(*rate), "seed": registry.IntVal(*seed),
			"s": fv(*zipfS), "items": iv(*items),
			"on": iv(*on), "off": iv(*off), "burst": fv(*burst),
			"c": iv(*c), "maxw": iv(*maxW), "trap_every": iv(*trapE),
			"hold": iv(*hold), "cap": iv(*capc), "load": fv(*load),
		}
		p, err := workloadParams(comp, vals)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		over, err := comp.ParseParams(*extra)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		for k, v := range over {
			p[k] = v
		}
		tr, err = registry.GenerateWorkload(*wl, p)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	write := reqsched.WriteTrace
	if *stream {
		write = reqsched.WriteTraceStream
	}
	if err := write(w, tr); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

func tracegenLoad(path string, stderr io.Writer) (*reqsched.Trace, int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, 1
	}
	defer f.Close()
	tr, err := reqsched.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, 1
	}
	return tr, 0
}

func tracegenInfo(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("tracegen info", stderr)
	in := fs.String("in", "", "trace file")
	stream := fs.Bool("stream", false, "treat the input as a JSONL stream; evaluate segment by segment")
	workers := workersFlag(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if *in == "" {
		return tracegenUsage(stderr)
	}
	if *stream {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		opt, nsegs, err := reqsched.OptimumStream(reqsched.TraceSegments(f), resolveWorkers(*workers))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "offline optimum: %d over %d independent segments\n", opt, nsegs)
		return 0
	}
	tr, code := tracegenLoad(*in, stderr)
	if tr == nil {
		return code
	}
	fmt.Fprintln(stdout, reqsched.SummarizeTrace(tr))
	fmt.Fprintf(stdout, "offline optimum: %d of %d\n", reqsched.Optimum(tr), tr.NumRequests())
	return 0
}

func tracegenRun(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("tracegen run", stderr)
	in := fs.String("in", "", "trace file")
	name := fs.String("strategy", "A_balance", "strategy name")
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if *in == "" {
		return tracegenUsage(stderr)
	}
	tr, code := tracegenLoad(*in, stderr)
	if tr == nil {
		return code
	}
	s := reqsched.StrategyByName(*name)
	if s == nil {
		strategySpecError(stderr, *name)
		return 2
	}
	res, err := reqsched.RunChecked(s, tr)
	if err != nil {
		fmt.Fprintf(stderr, "tracegen: invalid trace %s: %v\n", *in, err)
		return 1
	}
	opt := reqsched.Optimum(tr)
	fmt.Fprintf(stdout, "%s: served %d / %d, expired %d, OPT %d, ratio %.4f, mean latency %.2f\n",
		res.Strategy, res.Fulfilled, tr.NumRequests(), res.Expired, opt,
		float64(opt)/float64(res.Fulfilled), res.MeanLatency())
	return 0
}
