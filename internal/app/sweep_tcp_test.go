package app

import (
	"context"
	"io"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reqsched/internal/grid"
)

// startTCPWorkers boots n in-process TCP gridworkers (stopped on cleanup)
// and returns the comma-joined address list the -workers-at flag takes.
func startTCPWorkers(t *testing.T, n int) string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			grid.ServeWorker(ctx, ln, 20*time.Millisecond, nil, io.Discard)
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
	}
	return strings.Join(addrs, ",")
}

// TestSweepWorkersAtGolden pins the network path of the sweep: two TCP
// gridworkers must produce byte-identical CSV to the plain in-process run —
// clean, under an injected link fault, and across a journal + resume cycle.
func TestSweepWorkersAtGolden(t *testing.T) {
	workers := startTCPWorkers(t, 2)

	args := []string{"-mode", "l", "-workers-at", workers}
	requireGolden(t, "sweep_l.csv", run(t, SweepMain, args...), args...)

	args = []string{"-mode", "l", "-workers-at", workers, "-link-chaos", "drop:2"}
	requireGolden(t, "sweep_l.csv", run(t, SweepMain, args...), args...)

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	args = []string{"-mode", "l", "-workers-at", workers, "-journal", path, "-link-chaos", "trunc:1"}
	requireGolden(t, "sweep_l.csv", run(t, SweepMain, args...), args...)
	args = []string{"-mode", "l", "-workers-at", workers, "-journal", path, "-resume"}
	requireGolden(t, "sweep_l.csv", run(t, SweepMain, args...), args...)
}

func TestSweepLinkChaosUsageErrors(t *testing.T) {
	workers := startTCPWorkers(t, 1)
	if _, code := runCode(t, SweepMain, "-workers-at", workers, "-link-chaos", "bogus:1"); code != 2 {
		t.Errorf("unknown link fault mode: exit %d, want 2", code)
	}
	if _, code := runCode(t, SweepMain, "-link-chaos", "drop:1"); code != 2 {
		t.Errorf("-link-chaos without -workers-at: exit %d, want 2", code)
	}
	// The env fallback must reject a bad spec just as loudly.
	t.Setenv("GRID_CHAOS_LINK", "bogus:1")
	if _, code := runCode(t, SweepMain, "-workers-at", workers, "-mode", "l"); code != 2 {
		t.Errorf("bad GRID_CHAOS_LINK: exit %d, want 2", code)
	}
}
