package app

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// TestCmdStaysThin is the in-repo mirror of the CI grep: no cmd/ file may
// reintroduce an inline strategy/adversary name table or a wire-spec
// literal. Component names belong in internal/registry; the frontends are
// stubs over this package.
func TestCmdStaysThin(t *testing.T) {
	banned := regexp.MustCompile(`"(A_[A-Za-z_]+|EDF[A-Za-z_]*|first_fit|random_fit|ranking)"` +
		`|"(fix|current|current_factorial|fix_balance|eager|balance|universal|universal_anyd|local_fix|edf)"` +
		`|BuildSpec\{`)
	files, err := filepath.Glob(filepath.Join("..", "..", "cmd", "*", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no cmd/ sources found; wrong working directory?")
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if m := banned.Find(b); m != nil {
			t.Errorf("%s contains %q: component name tables belong in internal/registry", f, m)
		}
	}
}
