package app

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"reqsched"
	"reqsched/internal/experiment"
	"reqsched/internal/registry"
	"reqsched/internal/stats"
)

// workloadParams assembles the parameter set a registered workload declares
// from the frontends' flag values: one entry per schema parameter, looked
// up by registry name. Components added to the registry become runnable
// here without touching this file, as long as their parameters reuse
// declared names.
func workloadParams(c registry.Component, vals map[string]registry.Value) (registry.Params, error) {
	p := make(registry.Params, len(c.Params))
	for _, sp := range c.Params {
		v, ok := vals[sp.Name]
		if !ok {
			return nil, fmt.Errorf("workload %q parameter %q has no flag; set it via -describe'd defaults", c.Name, sp.Name)
		}
		p[sp.Name] = v
	}
	return p, nil
}

// SchedsimMain is the main program of cmd/schedsim: it runs one or all
// strategies over a synthetic workload and reports throughput, loss,
// latency, per-resource balance, communication cost, and the empirical
// competitive ratio against the offline optimum. Workloads and strategies
// resolve by registry name (-list shows the catalog).
//
// Usage examples:
//
//	schedsim -workload uniform -n 8 -d 4 -rounds 200 -rate 9
//	schedsim -workload video -items 100 -zipf 1.2 -strategy A_balance
//	schedsim -workload bursty -on 5 -off 10 -burst 25 -all
func SchedsimMain(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("schedsim", stderr)
	var (
		wl        = fs.String("workload", "uniform", "workload generator by registry name (see -list)")
		n         = nFlag(fs)
		d         = dFlag(fs)
		rounds    = fs.Int("rounds", 200, roundsUsage)
		rate      = fs.Float64("rate", 0, "mean arrivals/round (default n)")
		seed      = seedFlag(fs)
		zipfS     = fs.Float64("zipf", 1.4, "zipf exponent (zipf/video)")
		items     = fs.Int("items", 100, "catalog size (video)")
		on        = fs.Int("on", 5, "burst length (bursty)")
		off       = fs.Int("off", 10, "quiet length (bursty)")
		burst     = fs.Float64("burst", 0, "burst arrivals/round (default 3n)")
		choices   = fs.Int("c", 3, "alternatives per request (cchoice)")
		maxW      = fs.Int("maxw", 8, "maximum request weight (weighted)")
		trapEvery = fs.Int("trap-every", 20, "rounds between embedded traps (trapmix)")
		hold      = fs.Int("hold", 0, "service model: rounds a served request occupies its resource (0 = 1, unit)")
		capc      = fs.Int("cap", 0, "service model: concurrent services per resource (0 = 1, unit)")
		load      = fs.Float64("load", 0.9, "target utilization of the model's capacity (reusable, when -rate 0)")
		strategy  = fs.String("strategy", "", "run a single strategy by name")
		all       = fs.Bool("all", false, "run every strategy (default when -strategy empty)")
		series    = fs.Bool("series", false, "emit per-round CSV for the selected strategy instead of the summary")
		latHist   = fs.Bool("latency-hist", false, "print each strategy's service-latency histogram (with clamp counts) after the summary table")
		seeds     = fs.Int("seeds", 1, "aggregate over this many seeds (mean±std instead of one run)")
		config    = fs.String("config", "", "run a declarative JSON experiment suite instead of flags")
		workers   = workersFlag(fs)
	)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}

	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		suite, err := experiment.Load(f)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if *workers != 0 { // unset defers to the suite file's own setting
			suite.Workers = resolveWorkers(*workers)
		}
		rep, err := suite.Run()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprint(stdout, rep.Format())
		return 0
	}
	// Historical defaulting: -rate 0 means "rate = n" — except for the
	// reusable family, where rate 0 asks the generator to derive the rate
	// from -load and the service model.
	if *rate == 0 && *wl != "reusable" {
		*rate = float64(*n)
	}
	if *burst == 0 {
		*burst = 3 * float64(*n)
	}

	comp, ok := registry.Get(registry.KindWorkload, *wl)
	if !ok {
		fmt.Fprintf(stderr, "unknown workload %q\n", *wl)
		return 2
	}
	vals := map[string]registry.Value{
		"n": iv(*n), "d": iv(*d), "rounds": iv(*rounds),
		"rate": fv(*rate), "seed": registry.IntVal(*seed),
		"s": fv(*zipfS), "items": iv(*items),
		"on": iv(*on), "off": iv(*off), "burst": fv(*burst),
		"c": iv(*choices), "maxw": iv(*maxW), "trap_every": iv(*trapEvery),
		"hold": iv(*hold), "cap": iv(*capc), "load": fv(*load),
	}
	params, err := workloadParams(comp, vals)
	if err == nil {
		err = comp.Validate(params)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// Validation is seed-independent, so per-seed generation cannot fail.
	gen := func(seed int64) *reqsched.Trace {
		p := params.Clone()
		p["seed"] = registry.IntVal(seed)
		tr, gerr := registry.GenerateWorkload(*wl, p)
		if gerr != nil {
			panic(gerr)
		}
		return tr
	}
	tr := gen(*seed)

	if *seeds > 1 {
		fmt.Fprintf(stdout, "workload %s aggregated over %d seeds\n\n", *wl, *seeds)
		names := strategyNames(*strategy, *all)
		for _, name := range names {
			name := name
			sum, err := reqsched.SummarizeParallel(
				func() reqsched.Strategy { return reqsched.StrategyByName(name) },
				gen, *seeds, resolveWorkers(*workers))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintln(stdout, sum)
		}
		return 0
	}

	if *series {
		name := *strategy
		if name == "" {
			name = "A_balance"
		}
		s := reqsched.StrategyByName(name)
		if s == nil {
			strategySpecError(stderr, name)
			return 2
		}
		_, sr := reqsched.RunWithSeries(s, tr)
		fmt.Fprintln(stdout, "round,arrived,served,expired,pending,backlog,idle")
		for _, r := range sr.Rounds {
			fmt.Fprintf(stdout, "%d,%d,%d,%d,%d,%d,%d\n",
				r.T, r.Arrived, r.Served, r.Expired, r.Pending, r.Backlog, r.Idle)
		}
		return 0
	}

	fmt.Fprintf(stdout, "workload %s: %s\n", *wl, reqsched.SummarizeTrace(tr))
	opt := reqsched.OptimumParallel(tr, resolveWorkers(*workers))
	fmt.Fprintf(stdout, "offline optimum: %d of %d requests (%d segments)\n\n",
		opt, tr.NumRequests(), reqsched.TraceSegmentCount(tr))

	names := strategyNames(*strategy, *all)

	fmt.Fprintf(stdout, "%-20s %9s %7s %9s %9s %9s %10s %9s\n",
		"strategy", "served", "lost", "ratio", "latency", "balance", "commRound", "messages")
	for _, name := range names {
		s := reqsched.StrategyByName(name)
		if s == nil {
			strategySpecError(stderr, name)
			return 2
		}
		res := reqsched.Run(s, tr)
		fmt.Fprintf(stdout, "%-20s %9d %7d %9s %9.2f %9.3f %10d %9d\n",
			name, res.Fulfilled, res.Expired,
			reqsched.FormatRatio(ratioOf(opt, res.Fulfilled), 4), res.MeanLatency(),
			imbalance(res.PerResource), res.CommRounds, res.Messages)
		if *latHist {
			printLatencyHist(stdout, name, tr, res)
		}
	}
	return 0
}

// printLatencyHist renders one strategy's service-latency distribution in
// unit-round buckets sized to the trace's largest window, naming any clamp
// counts so a folded tail cannot pass as exact data.
func printLatencyHist(w io.Writer, name string, tr *reqsched.Trace, res *reqsched.Result) {
	h := stats.NewHistogram(tr.MaxD())
	for _, f := range res.Log {
		h.Add(f.Round - f.Req.Arrive)
	}
	fmt.Fprintf(w, "\n%s latency (rounds waited):\n", name)
	fmt.Fprint(w, h.Bars(40))
	if !h.Exact() {
		fmt.Fprintf(w, "clamped: %d below 0, %d at/above %d (mean and quantiles value these tails at the sentinels -1 and %d)\n",
			h.Underflow(), h.Overflow(), h.Size(), h.Size())
	}
	fmt.Fprintln(w)
}

// strategyNames resolves the -strategy/-all flags into a sorted name list.
func strategyNames(strategy string, all bool) []string {
	if strategy != "" && !all {
		return []string{strategy}
	}
	var names []string
	for name := range reqsched.Strategies() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ratioOf is OPT/ALG: 1 when both served nothing, +Inf when only the
// strategy starved (OPT served something, ALG nothing).
func ratioOf(opt, alg int) float64 {
	if alg == 0 {
		if opt == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(opt) / float64(alg)
}

// imbalance is max/mean of the per-resource service counts (1.0 = perfectly
// balanced).
func imbalance(per []int) float64 {
	total, max := 0, 0
	for _, c := range per {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(per))
	return float64(max) / mean
}
