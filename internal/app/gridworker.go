package app

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reqsched/internal/grid"
	"reqsched/internal/grid/chaos"
)

// gridworkerRun speaks the gridworker JSONL protocol on the process's real
// stdin/stdout (the supervisor owns both pipes; the stdout parameter of the
// Mains is for human output only). The chaos environment variables
// GRID_CHAOS / GRID_CHAOS_ONCE arm deterministic fault injection for the
// failure property tests.
func gridworkerRun(stderr io.Writer, hb time.Duration) int {
	faults, err := chaos.FromEnv()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := grid.WorkerMain(os.Stdin, os.Stdout, hb, faults); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// gridworkerListen serves the gridworker protocol over TCP until ctx is
// cancelled: each supervisor connection gets the versioned handshake and then
// the same job loop the pipe transport drives over stdin/stdout. The chaos
// process faults (GRID_CHAOS) arm per connection, mirroring per-subprocess
// arming on the pipe transport.
func gridworkerListen(ctx context.Context, addr string, hb time.Duration, stdout, stderr io.Writer) int {
	faults, err := chaos.FromEnv()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "gridworker: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "gridworker: listening on %s (protocol v%d)\n", ln.Addr(), grid.ProtoVersion)
	if err := grid.ServeWorker(ctx, ln, hb, faults, stderr); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// GridworkerMain is the main program of cmd/gridworker: the worker half of
// the fault-tolerant sweep grid — one job line in, heartbeat lines while
// measuring, one sealed result (or error) line out per job. By default it
// speaks the protocol on stdin/stdout for a supervising parent (`sweep
// -shard N`); with -listen it serves the same protocol over TCP for remote
// supervisors (`sweep -workers-at host:port,...`), exiting cleanly on
// SIGINT/SIGTERM. The supervisor re-verifies every returned record either
// way.
func GridworkerMain(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("gridworker", stderr)
	hb := fs.Duration("hb", 2*time.Second, "heartbeat interval while a job is running")
	listen := fs.String("listen", "", "serve the gridworker protocol on this TCP address (host:port) instead of stdin/stdout")
	workers := workersFlag(fs)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}
	if *listen != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return gridworkerListen(ctx, *listen, *hb, stdout, stderr)
	}
	return gridworkerRun(stderr, *hb)
}
