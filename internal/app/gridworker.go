package app

import (
	"fmt"
	"io"
	"os"
	"time"

	"reqsched/internal/grid"
	"reqsched/internal/grid/chaos"
)

// gridworkerRun speaks the gridworker JSONL protocol on the process's real
// stdin/stdout (the supervisor owns both pipes; the stdout parameter of the
// Mains is for human output only). The chaos environment variables
// GRID_CHAOS / GRID_CHAOS_ONCE arm deterministic fault injection for the
// failure property tests.
func gridworkerRun(stderr io.Writer, hb time.Duration) int {
	faults, err := chaos.FromEnv()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := grid.WorkerMain(os.Stdin, os.Stdout, hb, faults); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// GridworkerMain is the main program of cmd/gridworker: the subprocess half
// of the fault-tolerant sweep grid — one job line in, heartbeat lines while
// measuring, one sealed result (or error) line out per job; exit 0 on stdin
// EOF. The supervisor (internal/grid.Run, wired through `sweep -shard N`)
// spawns a pool of these and re-verifies every returned record.
func GridworkerMain(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("gridworker", stderr)
	hb := fs.Duration("hb", 2*time.Second, "heartbeat interval while a job is running")
	workers := workersFlag(fs)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}
	return gridworkerRun(stderr, *hb)
}
