package app

import (
	"fmt"
	"io"

	"reqsched"
	"reqsched/internal/ballsbins"
	"reqsched/internal/table"
)

// PaperMain is the main program of cmd/paper: it reproduces the paper's
// entire evaluation in one run — the artifact script. Sections: Table 1
// (global strategies), the local strategies, lower-bound convergence, the
// tie-breaking ablation, the EDF observations, the weighted offline optima,
// the streamed adaptive adversary, a random-workload summary, and the
// Section 1.1 balls-into-bins measurement that motivates the two-choice
// model. Use -quick for a fast pass and -full for publication-scale phase
// counts. Every measurement routes through the parallel harness; each cell
// is an independent deterministic job, so the output is identical for every
// worker count.
func PaperMain(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("paper", stderr)
	quick := fs.Bool("quick", false, "small phase counts (seconds)")
	full := fs.Bool("full", false, "publication-scale phase counts (minutes)")
	workers := workersFlag(fs)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}

	cfg := table.Config{Phases: 60, Groups: 32}
	if *quick {
		cfg = table.Config{Phases: 12, Groups: 8}
	}
	if *full {
		cfg = table.Config{Phases: 200, Groups: 64}
	}
	w := resolveWorkers(*workers)

	fail := func(err error) int {
		fmt.Fprintln(stderr, "paper:", err)
		return 1
	}
	section := func(title string) {
		fmt.Fprintf(stdout, "\n=== %s ===\n\n", title)
	}

	section("Table 1 — global strategies (lower-bound adversaries, measured vs proven)")
	rows, err := table.RowsParallel(cfg, w)
	if err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, table.Format(rows))

	section("Local strategies and EDF (Theorems 3.7, 3.8; Observation 3.2)")
	rows, err = table.LocalRowsParallel(cfg, w)
	if err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, table.Format(rows))

	section("Lower-bound convergence (A_fix, d=4): ratio approaches 2 - 1/d = 1.75")
	phaseCounts := []int{5, 20, 80, 320}
	jobs := make([]reqsched.MeasureJob, len(phaseCounts))
	for i, p := range phaseCounts {
		jobs[i] = reqsched.MeasureJob{
			Name:     fmt.Sprintf("phases=%d", p),
			Build:    func() reqsched.Construction { return reqsched.AdversaryFix(4, p) },
			Strategy: reqsched.NewAFix,
		}
	}
	ms, err := reqsched.MeasureParallelChecked(jobs, w)
	if err != nil {
		return fail(err)
	}
	for i, p := range phaseCounts {
		fmt.Fprintf(stdout, "  phases %4d: ratio %.4f\n", p, ms[i].Ratio())
	}

	section("Tie-breaking ablation: what does each adversary exploit?")
	fixTrace := reqsched.AdversaryFix(4, cfg.Phases).Trace
	eagerTrace := reqsched.AdversaryEager(4, cfg.Phases).Trace
	ablation := []struct {
		name string
		tr   *reqsched.Trace
		mk   func() reqsched.Strategy
	}{
		{"fix adversary, original       ", fixTrace, reqsched.NewAFix},
		{"fix adversary, shuffled alts  ", reqsched.ShuffleAlts(fixTrace, 1), reqsched.NewAFix},
		{"fix adversary, shuffled order ", reqsched.ShuffleArrivalOrder(fixTrace, 1), reqsched.NewAFix},
		{"eager adversary, original     ", eagerTrace, reqsched.NewAEager},
		{"eager adversary, shuffled alts", reqsched.ShuffleAlts(eagerTrace, 1), reqsched.NewAEager},
		{"eager adversary, shuffled ord ", reqsched.ShuffleArrivalOrder(eagerTrace, 1), reqsched.NewAEager},
	}
	jobs = jobs[:0]
	for _, r := range ablation {
		jobs = append(jobs, reqsched.MeasureJob{
			Name:     r.name,
			Build:    func() reqsched.Construction { return reqsched.Construction{Name: r.name, Trace: r.tr} },
			Strategy: r.mk,
		})
	}
	ms, err = reqsched.MeasureParallelChecked(jobs, w)
	if err != nil {
		return fail(err)
	}
	for i, r := range ablation {
		fmt.Fprintf(stdout, "  %s ratio %.4f\n", r.name, ms[i].Ratio())
	}

	section("Observation 3.1/3.2 — EDF")
	single := reqsched.SingleChoice(reqsched.WorkloadConfig{N: 4, D: 4, Rounds: 60, Rate: 6, Seed: 2})
	edf := reqsched.Run(reqsched.NewEDF(), single)
	fmt.Fprintf(stdout, "  single-choice: EDF %d == OPT %d (greedy EDS %d)\n",
		edf.Fulfilled, reqsched.OptimumParallel(single, w), reqsched.EarliestDeadlineSchedule(single))
	worstJobs := []reqsched.MeasureJob{{
		Name:     "EDF worst case",
		Build:    func() reqsched.Construction { return reqsched.AdversaryEDF(4, cfg.Phases) },
		Strategy: reqsched.NewEDF,
	}}
	ms, err = reqsched.MeasureParallelChecked(worstJobs, w)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "  two-choice worst case: ratio %.4f (exactly 2)\n", ms[0].Ratio())

	section("Weighted extension — segmented offline optima (profit, min latency)")
	weighted := reqsched.WithWeights(reqsched.Bursty(reqsched.WorkloadConfig{
		N: 8, D: 4, Rounds: 400, Rate: 0, Seed: 7}, 12, 20, 14), 8, 7)
	profit := reqsched.MaxProfitParallel(weighted, w)
	fmt.Fprintf(stdout, "  bursty weighted workload: %d requests, %d segments\n",
		weighted.NumRequests(), reqsched.TraceSegmentCount(weighted))
	fmt.Fprintf(stdout, "  max profit (segmented): %d\n", profit)
	for _, s := range []reqsched.Strategy{reqsched.NewFixWeighted(), reqsched.NewEagerWeighted()} {
		res := reqsched.Run(s, weighted)
		fmt.Fprintf(stdout, "  %-17s weight served %6d  profit ratio %.4f\n",
			s.Name()+":", res.WeightFulfilled, float64(profit)/float64(res.WeightFulfilled))
	}
	_, latency := reqsched.OptimumMinLatencyParallel(weighted, w)
	fmt.Fprintf(stdout, "  min total latency among max-cardinality schedules: %d\n", latency)

	section("Adaptive adversary, streamed (Theorem 2.6): OPT computed segment by segment")
	for _, mk := range []func() reqsched.Strategy{reqsched.NewAEager, reqsched.NewEDF} {
		s := mk()
		m, nsegs := reqsched.MeasureAdaptiveStream(s, reqsched.AdversaryUniversal(6, maxInt(5, cfg.Phases/2)).Source, w)
		fmt.Fprintf(stdout, "  %-12s ratio %.4f  (%d segments, trace never materialized)\n",
			s.Name()+":", m.Ratio(), nsegs)
	}

	section("Random two-choice load (uniform, rate 0.9n): mean ratio over seeds")
	sum, err := reqsched.SummarizeParallel(reqsched.NewABalance, func(seed int64) *reqsched.Trace {
		return reqsched.Uniform(reqsched.WorkloadConfig{N: 16, D: 4, Rounds: 100, Rate: 14.4, Seed: seed})
	}, 20, w)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "  %s\n", sum)

	section("Section 1.1 — the power of two choices (balls into bins, n = 100000)")
	for _, c := range []int{1, 2, 3} {
		fmt.Fprintf(stdout, "  c=%d: max load %d\n", c, ballsbins.MaxLoad(ballsbins.Greedy(100000, 100000, c, 1)))
	}
	cres := ballsbins.Collision(100000, 100000, 2, 4, 40, 1)
	fmt.Fprintf(stdout, "  collision protocol: placed all in %d communication rounds\n", cres.Rounds)
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
