package app

import (
	"fmt"
	"io"

	"reqsched/internal/table"
)

// Table1Main is the main program of cmd/table1: it regenerates the paper's
// Table 1 — for every strategy it runs the corresponding lower-bound
// adversary, measures the empirical competitive ratio OPT/ALG, and prints
// it next to the proven lower and upper bounds. Ratios approach the proven
// lower bound from below as -phases grows (the competitive definition's
// additive constant washes out) and must never exceed the proven upper
// bound.
func Table1Main(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("table1", stderr)
	phases := fs.Int("phases", 40, "adversary phases/intervals per run")
	groups := fs.Int("groups", 32, "resource groups for the Theorem 2.5 construction")
	localOnly := fs.Bool("local", false, "only the local strategies (Theorems 3.7/3.8)")
	model := fs.Bool("model", false, "append the reusable-resources rows: greedy under hold=k service models vs the factor-2 charging bound (cf. arXiv 2304.03377)")
	workers := workersFlag(fs)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}

	cfg := table.Config{Phases: *phases, Groups: *groups}
	if !*localOnly {
		rows, err := table.RowsParallel(cfg, resolveWorkers(*workers))
		if err != nil {
			fmt.Fprintln(stderr, "table1:", err)
			return 1
		}
		fmt.Fprintln(stdout, "Table 1 — global strategies (measured on each row's lower-bound adversary)")
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, table.Format(rows))
		fmt.Fprintln(stdout)
	}
	rows, err := table.LocalRowsParallel(cfg, resolveWorkers(*workers))
	if err != nil {
		fmt.Fprintln(stderr, "table1:", err)
		return 1
	}
	fmt.Fprintln(stdout, "Local strategies and EDF (Theorems 3.7, 3.8; Observation 3.2)")
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, table.Format(rows))
	if *model {
		rows, err := table.ModelRowsParallel(cfg, resolveWorkers(*workers))
		if err != nil {
			fmt.Fprintln(stderr, "table1:", err)
			return 1
		}
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "Reusable resources — greedy under hold=k service models (charging bound 2; cf. arXiv 2304.03377)")
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, table.Format(rows))
	}
	return 0
}
