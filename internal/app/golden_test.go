package app

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary double as a gridworker subprocess: the
// sharded-sweep tests spawn os.Args[0] with this variable set, so the
// supervisor path runs end to end without building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("APP_TEST_GRIDWORKER") == "1" {
		os.Exit(GridworkerMain(nil, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

type mainFunc func(args []string, stdout, stderr io.Writer) int

// run executes a Main in-process and returns its stdout, failing the test on
// a non-zero exit.
func run(t *testing.T, main mainFunc, args ...string) string {
	t.Helper()
	out, code := runCode(t, main, args...)
	if code != 0 {
		t.Fatalf("%v: exit %d", args, code)
	}
	return out
}

func runCode(t *testing.T, main mainFunc, args ...string) (string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := main(args, &out, &errb)
	if code != 0 && errb.Len() > 0 {
		t.Logf("%v stderr: %s", args, errb.String())
	}
	return out.String(), code
}

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func requireGolden(t *testing.T, name, got string, args ...string) {
	t.Helper()
	if want := golden(t, name); got != want {
		t.Errorf("%v: output differs from golden %s (%d vs %d bytes)", args, name, len(got), len(want))
	}
}

// workerCounts pins the outputs byte-identical for serial, small-pool, and
// wider-pool execution — the acceptance matrix of the refactor.
var workerCounts = []string{"1", "2", "4"}

func TestSweepGolden(t *testing.T) {
	for _, mode := range []string{"d", "l", "load"} {
		for _, w := range workerCounts {
			args := []string{"-mode", mode, "-workers", w}
			got := run(t, SweepMain, args...)
			requireGolden(t, "sweep_"+mode+".csv", got, args...)
		}
	}
}

func TestSweepJournalGolden(t *testing.T) {
	// The journaled engine must print the same CSV as the plain pool, and a
	// resumed run must reproduce it bit-identically from checkpoints.
	for _, mode := range []string{"d", "l", "load"} {
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		args := []string{"-mode", mode, "-workers", "2", "-journal", path}
		got := run(t, SweepMain, args...)
		requireGolden(t, "sweep_"+mode+".csv", got, args...)

		args = append(args, "-resume")
		got = run(t, SweepMain, args...)
		requireGolden(t, "sweep_"+mode+".csv", got, args...)
	}
}

func TestSweepShardGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: spawns subprocesses")
	}
	// The subprocess supervisor path: the test binary re-execs itself as the
	// gridworker (see TestMain) and the CSV stays byte-identical.
	t.Setenv("APP_TEST_GRIDWORKER", "1")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"d", "l", "load"} {
		args := []string{"-mode", mode, "-shard", "2", "-worker-cmd", exe}
		got := run(t, SweepMain, args...)
		requireGolden(t, "sweep_"+mode+".csv", got, args...)
	}
}

func TestTable1Golden(t *testing.T) {
	for _, w := range workerCounts {
		requireGolden(t, "table1.txt", run(t, Table1Main, "-workers", w), "-workers", w)
	}
	requireGolden(t, "table1_local.txt", run(t, Table1Main, "-local", "-phases", "8"))
	requireGolden(t, "table1_small.txt", run(t, Table1Main, "-phases", "8", "-groups", "8"))
}

func TestSchedsimGolden(t *testing.T) {
	for _, w := range workerCounts {
		requireGolden(t, "schedsim.txt", run(t, SchedsimMain, "-workers", w), "-workers", w)
	}
	requireGolden(t, "schedsim_series.txt", run(t, SchedsimMain, "-series"))
	requireGolden(t, "schedsim_eager.txt", run(t, SchedsimMain, "-strategy", "A_eager"))
	requireGolden(t, "schedsim_seeds.txt", run(t, SchedsimMain, "-seeds", "3", "-strategy", "A_balance"))
}

func TestPaperGolden(t *testing.T) {
	for _, w := range workerCounts {
		requireGolden(t, "paper_quick.txt", run(t, PaperMain, "-quick", "-workers", w), "-workers", w)
	}
}

func TestLowerboundsGolden(t *testing.T) {
	requireGolden(t, "lowerbounds.csv", run(t, LowerboundsMain, "-csv"))
}

func TestTracegenGolden(t *testing.T) {
	gen := run(t, TracegenMain, "gen", "-workload", "zipf", "-n", "6", "-d", "3", "-rounds", "40", "-seed", "3")
	requireGolden(t, "tracegen_zipf.json", gen)

	in := filepath.Join("testdata", "golden", "tracegen_zipf.json")
	requireGolden(t, "tracegen_info.txt", run(t, TracegenMain, "info", "-in", in))
	requireGolden(t, "tracegen_run.txt", run(t, TracegenMain, "run", "-in", in, "-strategy", "A_balance"))
}

func TestListDescribeEveryBinary(t *testing.T) {
	mains := map[string]mainFunc{
		"sweep": SweepMain, "paper": PaperMain, "schedsim": SchedsimMain,
		"table1": Table1Main, "lowerbounds": LowerboundsMain, "bench": BenchMain,
		"verify": VerifyMain, "tracegen": TracegenMain, "gridworker": GridworkerMain,
		"serve": ServeMain,
	}
	var want string
	for name, main := range mains {
		list := run(t, main, "-list")
		if want == "" {
			want = list
		}
		if list != want {
			t.Errorf("%s -list differs from the shared registry listing", name)
		}
		if !strings.Contains(list, "A_balance") || !strings.Contains(list, "universal") ||
			!strings.Contains(list, "uniform") || !strings.Contains(list, "cardinality") {
			t.Errorf("%s -list is missing a registry kind:\n%s", name, list)
		}
		desc := run(t, main, "-describe", "balance")
		if !strings.Contains(desc, "x") || !strings.Contains(desc, "k") {
			t.Errorf("%s -describe balance lacks the schema:\n%s", name, desc)
		}
		if _, code := runCode(t, main, "-describe", "no_such_component"); code != 2 {
			t.Errorf("%s -describe unknown: exit %d, want 2", name, code)
		}
	}
}

func TestSweepUsageErrors(t *testing.T) {
	if _, code := runCode(t, SweepMain, "-resume"); code != 2 {
		t.Errorf("-resume without -journal: exit %d, want 2", code)
	}
	if _, code := runCode(t, SweepMain, "-mode", "bogus"); code != 2 {
		t.Errorf("unknown mode: exit %d, want 2", code)
	}
	if _, code := runCode(t, SchedsimMain, "-workload", "bogus"); code != 2 {
		t.Errorf("unknown workload: exit %d, want 2", code)
	}
	if _, code := runCode(t, TracegenMain, "gen", "-workload", "zipf", "-params", "s=0.5"); code != 2 {
		t.Errorf("out-of-range zipf exponent: exit %d, want 2", code)
	}
}
