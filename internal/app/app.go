// Package app hosts the main program of every cmd/ binary as a testable
// function: XxxMain(args, stdout, stderr) parses flags, runs the tool, and
// returns the process exit code. The cmd/ directories are thin stubs over
// this package, which is what lets the golden tests run the real tools
// in-process and pin their output byte for byte.
//
// Flag conventions, unified across binaries and documented in each -help:
//
//	-workers 0   measurement pool size (<= 0: GOMAXPROCS)
//	-seed    1   random seed
//	-n       8   resources
//
// Every binary also supports -list (the registry catalog) and
// -describe name (one component's parameter schema); both are backed solely
// by internal/registry.
package app

import (
	"flag"
	"fmt"
	"io"
	"runtime"

	"reqsched/internal/registry"
)

// Canonical help text for the flags shared across binaries.
const (
	workersUsage = "measurement pool size (<= 0: GOMAXPROCS)"
	seedUsage    = "random seed"
	nUsage       = "resources"
	dUsage       = "deadline window"
	roundsUsage  = "rounds with arrivals"
	phasesUsage  = "adversary phases"
)

func workersFlag(fs *flag.FlagSet) *int { return fs.Int("workers", 0, workersUsage) }

// resolveWorkers maps the shared -workers convention to the concrete pool
// size: any value <= 0 resolves to runtime.GOMAXPROCS(0). Every binary
// resolves through here, so "-workers 0" means the same thing everywhere and
// -describe can report the value the pools will actually use.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}
func seedFlag(fs *flag.FlagSet) *int64 { return fs.Int64("seed", 1, seedUsage) }
func nFlag(fs *flag.FlagSet) *int      { return fs.Int("n", 8, nUsage) }
func dFlag(fs *flag.FlagSet) *int      { return fs.Int("d", 4, dUsage) }

// newFlagSet returns a ContinueOnError flag set writing usage to stderr, so
// the Mains can run in-process under test.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parse runs fs.Parse and folds the outcome into (proceed, exit code):
// -h/-help prints usage and exits 0; a bad flag exits 2.
func parse(fs *flag.FlagSet, args []string) (bool, int) {
	switch err := fs.Parse(args); err {
	case nil:
		return true, 0
	case flag.ErrHelp:
		return false, 0
	default:
		return false, 2
	}
}

// strategySpecError reports why a -strategy spec failed to resolve. The
// facade's StrategyByName returns bare nil; the registry error underneath
// names the failing part (unknown name, unknown axis component with the
// catalog, bad parameter), which is what the user needs to fix the spec.
func strategySpecError(stderr io.Writer, spec string) {
	if _, err := registry.NewStrategySpec(spec); err != nil {
		fmt.Fprintf(stderr, "%v (try -list)\n", err)
		return
	}
	fmt.Fprintf(stderr, "unknown strategy %q (try -list)\n", spec)
}

// listingFlags registers the -list/-describe flags every binary carries.
func listingFlags(fs *flag.FlagSet) (list *bool, describe *string) {
	list = fs.Bool("list", false, "list every registered strategy, adversary, workload and objective, then exit")
	describe = fs.String("describe", "", "print a registered component's doc and parameter schema (name or kind/name), then exit")
	return list, describe
}

// listing handles -list/-describe against the registry. It returns whether
// the request was one of the two (the caller returns the code then). workers
// is the binary's resolved -workers value, reported under -describe so the
// effective pool size (GOMAXPROCS when the flag is unset) is visible.
func listing(list bool, describe string, workers int, stdout, stderr io.Writer) (bool, int) {
	if describe != "" {
		c, ok := registry.Find(describe)
		if !ok {
			fmt.Fprintf(stderr, "unknown component %q (try -list)\n", describe)
			return true, 2
		}
		fmt.Fprint(stdout, c.Describe())
		fmt.Fprintf(stdout, "\nworkers: %d (shared -workers flag; <= 0 resolves to GOMAXPROCS)\n", workers)
		return true, 0
	}
	if list {
		for _, kind := range registry.Kinds() {
			for _, c := range registry.All(kind) {
				fmt.Fprintf(stdout, "%-9s %-18s %s\n", c.Kind, c.Name, c.Doc)
			}
		}
		return true, 0
	}
	return false, 0
}
