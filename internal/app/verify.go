package app

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"reqsched"
	"reqsched/internal/grid"
	"reqsched/internal/grid/chaos"
)

type verifyCheck struct {
	name string
	ok   bool
	info string
}

// VerifyMain is the main program of cmd/verify: it runs the reproduction's
// headline checks in one shot — a CI-style gate. It measures every Table 1
// row's adversary in parallel, checks proven bounds on both sides,
// re-validates the structural augmenting-path claims of the upper-bound
// proofs, cross-checks the segmented parallel offline optimum against the
// monolithic solver, exercises the fault-tolerant grid (journal resume,
// torn-tail truncation, and a chaos-killed worker subprocess), and exits
// non-zero on any violation. With -tools it additionally shells out to
// `go vet ./...` and the race-detector tests of the concurrent packages.
func VerifyMain(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("verify", stderr)
	workers := workersFlag(fs)
	tools := fs.Bool("tools", false, "also run `go vet ./...` and `go test -race` on the concurrent packages")
	gridworker := fs.Bool("gridworker", false, "internal: speak the gridworker protocol on stdin/stdout (used by the grid checks to re-exec this binary)")
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	w := resolveWorkers(*workers)
	if handled, code := listing(*list, *describe, w, stdout, stderr); handled {
		return code
	}

	if *gridworker {
		return gridworkerRun(stderr, 2*time.Second)
	}

	var checks []verifyCheck
	add := func(name string, ok bool, format string, args ...interface{}) {
		checks = append(checks, verifyCheck{name, ok, fmt.Sprintf(format, args...)})
	}

	// 1. Every Table 1 row: measured within (LB - tolerance, UB].
	type row struct {
		name     string
		build    func() reqsched.Construction
		strategy func() reqsched.Strategy
		lb, ub   float64
	}
	rows := []row{
		{"A_fix d=4", func() reqsched.Construction { return reqsched.AdversaryFix(4, 120) },
			reqsched.NewAFix, 1.75, 1.75},
		{"A_current d=2", func() reqsched.Construction { return reqsched.AdversaryEager(2, 120) },
			reqsched.NewACurrent, 4.0 / 3, 1.5},
		{"A_current l=5", func() reqsched.Construction { return reqsched.AdversaryCurrent(5, 5) },
			reqsched.NewACurrent, reqsched.AdversaryCurrentBound(5), 2 - 1.0/60},
		{"A_fix_balance d=8", func() reqsched.Construction { return reqsched.AdversaryFixBalance(8, 120) },
			reqsched.NewAFixBalance, 24.0 / 18, 1.75},
		{"A_eager d=4", func() reqsched.Construction { return reqsched.AdversaryEager(4, 120) },
			reqsched.NewAEager, 4.0 / 3, 10.0 / 7},
		{"A_balance x=2 k=64", func() reqsched.Construction { return reqsched.AdversaryBalance(2, 64, 60) },
			reqsched.NewABalance, 27.0 / 21, 24.0 / 17},
		{"universal vs A_balance", func() reqsched.Construction { return reqsched.AdversaryUniversal(6, 40) },
			reqsched.NewABalance, 45.0 / 41, 30.0 / 21},
		{"A_local_fix d=4", func() reqsched.Construction { return reqsched.AdversaryLocalFix(4, 120) },
			reqsched.NewALocalFix, 2, 2},
		{"EDF worst d=4", func() reqsched.Construction { return reqsched.AdversaryEDF(4, 120) },
			reqsched.NewEDF, 2, 2},
	}
	jobs := make([]reqsched.MeasureJob, len(rows))
	for i, r := range rows {
		jobs[i] = reqsched.MeasureJob{Name: r.name, Build: r.build, Strategy: r.strategy}
	}
	results := reqsched.MeasureParallel(jobs, w)
	for i, m := range results {
		r := rows[i]
		got := m.Ratio()
		ok := got <= r.ub+1e-9 && got >= r.lb-0.02
		add("bounds: "+r.name, ok, "measured %.4f, proven LB %.4f, UB %.4f", got, r.lb, r.ub)
	}

	// 2. Structural proof claims on a stress workload, in name order so the
	// report is byte-identical across runs.
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 6, D: 4, Rounds: 60, Rate: 10, Seed: 99})
	opt := reqsched.Optimum(tr)
	strategies := reqsched.Strategies()
	names := make([]string, 0, len(strategies))
	for name := range strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := reqsched.Run(strategies[name], tr)
		err := reqsched.ValidateLog(tr, res.Log)
		add("valid schedule: "+name, err == nil && res.Fulfilled <= opt,
			"served %d of %d (OPT %d), err=%v", res.Fulfilled, tr.NumRequests(), opt, err)
	}

	// 3. Observation 3.1: EDF optimal for single-choice.
	single := reqsched.SingleChoice(reqsched.WorkloadConfig{N: 4, D: 4, Rounds: 50, Rate: 6, Seed: 5})
	edf := reqsched.Run(reqsched.NewEDF(), single)
	add("EDF single-choice optimal", edf.Fulfilled == reqsched.Optimum(single),
		"EDF %d vs OPT %d", edf.Fulfilled, reqsched.Optimum(single))

	// 4. Segmented parallel OPT agrees with the monolithic solver on every
	// oblivious Table 1 adversary trace and a batch of random workloads.
	// (Adaptive constructions have no fixed trace; the offline package's
	// property tests cover their materialized runs.)
	for _, r := range rows {
		tr := r.build().Trace
		if tr == nil {
			continue
		}
		want := reqsched.Optimum(tr)
		got := reqsched.OptimumParallel(tr, w)
		add("segmented OPT: "+r.name, got == want,
			"parallel %d vs monolithic %d (%d segments)", got, want, reqsched.TraceSegmentCount(tr))
	}
	rng := rand.New(rand.NewSource(424242))
	mismatches, trials := 0, 40
	for i := 0; i < trials; i++ {
		cfg := reqsched.WorkloadConfig{
			N: 2 + rng.Intn(8), D: 1 + rng.Intn(5), Rounds: 20 + rng.Intn(60),
			Rate: rng.Float64() * 12, Seed: rng.Int63(),
		}
		var tr *reqsched.Trace
		if i%2 == 0 {
			tr = reqsched.Uniform(cfg)
		} else {
			r := cfg.Rate
			cfg.Rate = 0
			tr = reqsched.Bursty(cfg, 3, 2+rng.Intn(6), r)
		}
		if reqsched.OptimumParallel(tr, w) != reqsched.Optimum(tr) {
			mismatches++
		}
	}
	add("segmented OPT: random traces", mismatches == 0,
		"%d/%d random workloads mismatched", mismatches, trials)

	// 4a. The incremental rolling optimum — one maintained matching, one
	// augmenting-path search per request, sealed at clean segment cuts —
	// agrees with the monolithic solver on every oblivious Table 1 adversary
	// trace and a fresh batch of random workloads. This is the solver behind
	// the serve daemon's rolling ratio and the workers=1 adaptive stream.
	for _, r := range rows {
		tr := r.build().Trace
		if tr == nil {
			continue
		}
		want := reqsched.Optimum(tr)
		got := reqsched.OptimumIncremental(tr)
		add("incremental OPT: "+r.name, got == want,
			"incremental %d vs monolithic %d (%d segments)", got, want, reqsched.TraceSegmentCount(tr))
	}
	irng := rand.New(rand.NewSource(424242))
	incMismatches, incTrials := 0, 40
	for i := 0; i < incTrials; i++ {
		cfg := reqsched.WorkloadConfig{
			N: 2 + irng.Intn(8), D: 1 + irng.Intn(5), Rounds: 20 + irng.Intn(60),
			Rate: irng.Float64() * 12, Seed: irng.Int63(),
		}
		var tr *reqsched.Trace
		if i%2 == 0 {
			tr = reqsched.Uniform(cfg)
		} else {
			r := cfg.Rate
			cfg.Rate = 0
			tr = reqsched.Bursty(cfg, 3, 2+irng.Intn(6), r)
		}
		if reqsched.OptimumIncremental(tr) != reqsched.Optimum(tr) {
			incMismatches++
		}
	}
	add("incremental OPT: random traces", incMismatches == 0,
		"%d/%d random workloads mismatched", incMismatches, incTrials)

	// 4b. The weighted segmented solvers agree with their monolithic
	// counterparts: identical max profit and identical minimum latency on
	// weighted variants of the oblivious adversary traces and a batch of
	// random weighted workloads. The monolithic weighted solvers are
	// superquadratic, so the largest row trace (A_balance k=64, ~35k
	// requests) is skipped here; the offline package's property tests and
	// cmd/bench cover the weighted solvers at scale.
	for _, r := range rows {
		tr := r.build().Trace
		if tr == nil || tr.NumRequests() > 5000 {
			continue
		}
		wtr := reqsched.WithWeights(tr, 8, 77)
		wantP := reqsched.MaxProfit(wtr)
		gotP := reqsched.MaxProfitParallel(wtr, w)
		add("segmented profit: "+r.name, gotP == wantP,
			"parallel %d vs monolithic %d", gotP, wantP)
		_, wantL := reqsched.OptimumMinLatency(wtr)
		logP, gotL := reqsched.OptimumMinLatencyParallel(wtr, w)
		add("segmented min latency: "+r.name,
			gotL == wantL && reqsched.ValidateLog(wtr, logP) == nil,
			"parallel %d vs monolithic %d (schedule of %d valid=%v)",
			gotL, wantL, len(logP), reqsched.ValidateLog(wtr, logP) == nil)
	}
	wMismatches, wTrials := 0, 25
	for i := 0; i < wTrials; i++ {
		cfg := reqsched.WorkloadConfig{
			N: 2 + rng.Intn(6), D: 1 + rng.Intn(4), Rounds: 15 + rng.Intn(40),
			Rate: rng.Float64() * 8, Seed: rng.Int63(),
		}
		var tr *reqsched.Trace
		if i%2 == 0 {
			tr = reqsched.Uniform(cfg)
		} else {
			r := cfg.Rate
			cfg.Rate = 0
			tr = reqsched.Bursty(cfg, 3, 2+rng.Intn(5), r)
		}
		wtr := reqsched.WithWeights(tr, 1+rng.Intn(9), rng.Int63())
		_, wantL := reqsched.OptimumMinLatency(wtr)
		_, gotL := reqsched.OptimumMinLatencyParallel(wtr, w)
		if reqsched.MaxProfitParallel(wtr, w) != reqsched.MaxProfit(wtr) || gotL != wantL {
			wMismatches++
		}
	}
	add("segmented weighted: random traces", wMismatches == 0,
		"%d/%d random weighted workloads mismatched", wMismatches, wTrials)

	// 4c. The streamed adaptive pipeline reproduces the materialized adaptive
	// measurement on the Theorem 2.6 adversary.
	wantAd := reqsched.MeasureConstruction(reqsched.AdversaryUniversal(6, 40), reqsched.NewABalance())
	gotAd, nsegs := reqsched.MeasureAdaptiveStream(reqsched.NewABalance(), reqsched.AdversaryUniversal(6, 40).Source, w)
	add("adaptive stream OPT", gotAd.OPT == wantAd.OPT && gotAd.ALG == wantAd.ALG,
		"stream OPT/ALG %d/%d vs post-hoc %d/%d (%d segments)",
		gotAd.OPT, gotAd.ALG, wantAd.OPT, wantAd.ALG, nsegs)

	// 4d. Serve mode: the live daemon under the virtual clock reproduces the
	// batch engine and the offline ratio pipeline bit for bit on the same
	// stream.
	serveChecks(add, w)

	// 4e. Policy decomposition: every canonical compose(...) form reproduces
	// its legacy fused strategy bit for bit, and the SJF queue order relieves
	// head-of-line blocking in the pinned experiment.
	composeChecks(add)

	// 4f. Reusable resources: hold_squeeze forces the greedy router to
	// exactly the factor-2 charging bound, and batch, segmented and
	// incremental offline optima agree under hold x cap service-model grids.
	modelChecks(add, w)

	// 5. Fault-tolerant grid: deterministic manifests, journal resume with
	// torn-tail truncation, and a chaos-killed worker subprocess — the
	// machinery behind cmd/sweep -shard/-journal/-resume.
	gridChecks(add, w)

	// 5a. Network grid: the TCP transport behind `sweep -workers-at` —
	// bit-identical to the plain run, clean journals under an injected link
	// fault, and crash-consistent resume after a supervisor kill mid-protocol.
	gridTCPChecks(add, w)

	// 6. Optional toolchain gates.
	if *tools {
		cmds := [][]string{
			{"go", "vet", "./..."},
			{"go", "test", "-race", "./internal/offline", "./internal/ratio", "./internal/experiment", "./internal/grid", "./internal/serve", "./internal/policy", "./internal/matching", "./internal/core", "./internal/trace"},
		}
		for _, args := range cmds {
			cmd := exec.Command(args[0], args[1:]...)
			out, err := cmd.CombinedOutput()
			info := "ok"
			if err != nil {
				info = fmt.Sprintf("%v\n%s", err, out)
			}
			add("tool: "+strings.Join(args, " "), err == nil, "%s", info)
		}
	}

	// Report.
	failures := 0
	for _, c := range checks {
		status := "PASS"
		if !c.ok {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(stdout, "%-4s %-38s %s\n", status, c.name, c.info)
	}
	fmt.Fprintf(stdout, "\n%d checks, %d failures\n", len(checks), failures)
	if failures > 0 {
		return 1
	}
	return 0
}

// composeChecks verifies the Router x QueueOrder x Admission x Priority
// decomposition. Each canonical compose(router=X) spec must produce the same
// schedule — entry for entry — as the fused legacy strategy it decomposes
// (the axes share the exact routing code, so any divergence is a composition
// bug, not a tuning difference). The final check pins the decomposition's
// payoff: on the head-of-line-blocking workload the SJF order rescues
// tight-window requests that FCFS starves, at no throughput cost.
func composeChecks(add func(name string, ok bool, format string, args ...interface{})) {
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 6, D: 4, Rounds: 60, Rate: 10, Seed: 99})
	sameLog := func(a, b *reqsched.Result) bool {
		if a.Fulfilled != b.Fulfilled || a.Expired != b.Expired || len(a.Log) != len(b.Log) {
			return false
		}
		for i := range a.Log {
			if a.Log[i].Req.ID != b.Log[i].Req.ID || a.Log[i].Res != b.Log[i].Res || a.Log[i].Round != b.Log[i].Round {
				return false
			}
		}
		return true
	}
	for _, p := range [][2]string{
		{"A_fix", "compose,router=fix"},
		{"A_current", "compose,router=current"},
		{"A_fix_balance", "compose,router=fix_balance"},
		{"A_eager", "compose,router=eager"},
		{"A_balance", "compose,router=balance"},
		{"first_fit", "compose,router=first_fit"},
	} {
		legacy := reqsched.Run(reqsched.StrategyByName(p[0]), tr)
		comp := reqsched.Run(reqsched.StrategyByName(p[1]), tr)
		add("compose equiv: "+p[0], sameLog(legacy, comp),
			"%s served %d, %s served %d, schedules identical=%v",
			p[0], legacy.Fulfilled, p[1], comp.Fulfilled, sameLog(legacy, comp))
	}

	mixed := reqsched.MixedDeadlines(reqsched.WorkloadConfig{N: 4, D: 6, Rounds: 120, Rate: 6, Seed: 7})
	tight := func(res *reqsched.Result) int {
		c := 0
		for _, f := range res.Log {
			if f.Req.D <= 2 {
				c++
			}
		}
		return c
	}
	fcfs := reqsched.Run(reqsched.StrategyByName("compose,router=current,order=fcfs"), mixed)
	sjf := reqsched.Run(reqsched.StrategyByName("compose,router=current,order=sjf"), mixed)
	add("compose: SJF relieves HoL blocking",
		tight(sjf) >= 3*tight(fcfs) && sjf.Fulfilled >= fcfs.Fulfilled,
		"tight-window served: FCFS %d, SJF %d (throughput %d vs %d)",
		tight(fcfs), tight(sjf), fcfs.Fulfilled, sjf.Fulfilled)
}

// gridChecks exercises the fault-tolerant sweep grid end to end: manifest
// determinism, bit-identical measurements across the in-process, journaled,
// and subprocess paths, crash resume over a torn journal, and a chaos-killed
// worker being retried transparently.
func gridChecks(add func(name string, ok bool, format string, args ...interface{}), workers int) {
	specs := []grid.Spec{
		{Strategy: "A_fix", Build: grid.BuildSpec{Kind: "fix", D: 4, Phases: 8}},
		{Strategy: "A_eager", Build: grid.BuildSpec{Kind: "eager", D: 4, Phases: 8}},
		{Strategy: "A_current", Build: grid.BuildSpec{Kind: "current", L: 2, Phases: 2}},
		{Strategy: "EDF", Build: grid.BuildSpec{Kind: "uniform", N: 4, D: 3, Rounds: 30, Rate: 5, Seed: 3}},
	}
	names := []string{"fix/d=4", "eager/d=4", "current/l=2", "edf/uniform"}
	jobs, err := grid.BuildManifest(specs, names)
	if err != nil {
		add("grid: manifest", false, "%v", err)
		return
	}
	again, _ := grid.BuildManifest(specs, names)
	det := true
	for i := range jobs {
		det = det && jobs[i].ID == again[i].ID
	}
	add("grid: deterministic manifest IDs", det, "%d cells", len(jobs))

	want := reqsched.MeasureParallel(grid.RatioJobs(jobs), workers)
	same := func(ms []reqsched.Measurement) bool {
		if len(ms) != len(want) {
			return false
		}
		for i := range want {
			if ms[i] != want[i] {
				return false
			}
		}
		return true
	}

	dir, err := os.MkdirTemp("", "verify-grid")
	if err != nil {
		add("grid: tempdir", false, "%v", err)
		return
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	// Journaled in-process run, then crash-resume over a torn prefix.
	path := filepath.Join(dir, "journal.jsonl")
	j, done, _, err := grid.OpenJournal(path, false)
	ok := err == nil
	var rep *grid.Report
	if ok {
		rep, err = grid.RunLocal(ctx, jobs, done, j, workers)
		j.Close()
		ok = err == nil && rep.AllDone() && same(rep.Measurements)
	}
	add("grid: journaled run matches plain", ok, "%d cells journaled, err=%v", len(jobs), err)

	ok = false
	var info string
	if b, rerr := os.ReadFile(path); rerr == nil {
		// Keep two intact lines plus half of the third: a crash mid-append.
		cut, lines := 0, 0
		for i, c := range b {
			if c == '\n' {
				lines++
				if lines == 2 {
					cut = i + 1
					break
				}
			}
		}
		torn := append(append([]byte{}, b[:cut]...), b[cut:cut+10]...)
		if werr := os.WriteFile(path, torn, 0o644); werr == nil {
			j, done, scan, oerr := grid.OpenJournal(path, true)
			if oerr == nil {
				rep, err = grid.RunLocal(ctx, jobs, done, j, workers)
				j.Close()
				ok = err == nil && scan.TornOffset == int64(cut) && rep.FromJournal == 2 &&
					rep.AllDone() && same(rep.Measurements)
				info = fmt.Sprintf("torn at byte %d, %d/%d cells from journal", scan.TornOffset, rep.FromJournal, len(jobs))
			} else {
				info = oerr.Error()
			}
		}
	}
	add("grid: torn-journal crash resume", ok, "%s", info)

	// Subprocess supervisor with a chaos kill on the first job: the worker
	// dies mid-cell, is respawned, and the grid still completes bit-identically.
	exe, err := os.Executable()
	if err != nil {
		add("grid: chaos-killed worker retried", false, "%v", err)
		return
	}
	rep, err = grid.Run(ctx, jobs, grid.Options{
		Workers:     2,
		WorkerCmd:   []string{exe, "-gridworker"},
		WorkerEnv:   []string{chaos.EnvSpec + "=kill:0", chaos.EnvOnce + "=" + filepath.Join(dir, "fired")},
		JobTimeout:  time.Minute,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	ok = err == nil && rep.AllDone() && rep.Retried >= 1 && same(rep.Measurements)
	retried := 0
	if rep != nil {
		retried = rep.Retried
	}
	add("grid: chaos-killed worker retried", ok, "%d retried, err=%v", retried, err)
}

// gridTCPChecks exercises the network transport end to end against
// in-process TCP gridworkers: a clean remote run matching the plain pool, a
// remote run with an injected link fault whose journal stays one verified
// record per cell, and a supervisor killed mid-protocol whose resumed journal
// is a permutation of the uninterrupted run's.
func gridTCPChecks(add func(name string, ok bool, format string, args ...interface{}), workers int) {
	specs := []grid.Spec{
		{Strategy: "A_fix", Build: grid.BuildSpec{Kind: "fix", D: 4, Phases: 8}},
		{Strategy: "A_eager", Build: grid.BuildSpec{Kind: "eager", D: 4, Phases: 8}},
		{Strategy: "A_current", Build: grid.BuildSpec{Kind: "current", L: 2, Phases: 2}},
		{Strategy: "EDF", Build: grid.BuildSpec{Kind: "uniform", N: 4, D: 3, Rounds: 30, Rate: 5, Seed: 3}},
	}
	jobs, err := grid.BuildManifest(specs, []string{"fix/d=4", "eager/d=4", "current/l=2", "edf/uniform"})
	if err != nil {
		add("grid: TCP manifest", false, "%v", err)
		return
	}
	want := reqsched.MeasureParallel(grid.RatioJobs(jobs), workers)
	same := func(ms []reqsched.Measurement) bool {
		if len(ms) != len(want) {
			return false
		}
		for i := range want {
			if ms[i] != want[i] {
				return false
			}
		}
		return true
	}

	dir, err := os.MkdirTemp("", "verify-grid-tcp")
	if err != nil {
		add("grid: TCP tempdir", false, "%v", err)
		return
	}
	defer os.RemoveAll(dir)

	// Two in-process TCP gridworkers for the whole check block.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	addrs := make([]string, 2)
	for i := range addrs {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			add("grid: TCP listen", false, "%v", lerr)
			return
		}
		addrs[i] = ln.Addr().String()
		go grid.ServeWorker(wctx, ln, 20*time.Millisecond, nil, io.Discard)
	}
	tcpOpts := func(link *chaos.LinkFaults) grid.Options {
		return grid.Options{
			Transport: &grid.TCPTransport{
				Addrs: addrs, Link: link,
				BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
			},
			JobTimeout:  time.Minute,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
		}
	}
	journalRecords := func(path string) (map[string]grid.Record, error) {
		f, rerr := os.Open(path)
		if rerr != nil {
			return nil, rerr
		}
		defer f.Close()
		recs, scan, rerr := grid.ReadJournal(f)
		if rerr != nil {
			return nil, rerr
		}
		if scan.Skipped > 0 || scan.TornOffset >= 0 {
			return nil, fmt.Errorf("journal damaged: %+v", scan)
		}
		byID := make(map[string]grid.Record, len(recs))
		for _, r := range recs {
			if verr := r.Verify(); verr != nil {
				return nil, verr
			}
			byID[r.ID] = r
		}
		if len(byID) != len(recs) {
			return nil, fmt.Errorf("journal holds duplicate records (%d lines, %d cells)", len(recs), len(byID))
		}
		return byID, nil
	}

	// Clean remote run.
	rep, err := grid.Run(context.Background(), jobs, tcpOpts(nil))
	ok := err == nil && rep.AllDone() && len(rep.LostHosts) == 0 && same(rep.Measurements)
	add("grid: TCP transport matches plain", ok, "%d cells on %d workers, err=%v", len(jobs), len(addrs), err)

	// Link fault: the connection drops at protocol message 2; the grid must
	// complete with a journal of exactly one verified record per cell.
	path := filepath.Join(dir, "link.jsonl")
	j, done, _, err := grid.OpenJournal(path, false)
	ok = err == nil
	if ok {
		opts := tcpOpts(&chaos.LinkFaults{Mode: chaos.LinkDrop, Msg: 2})
		opts.Journal = j
		opts.Done = done
		rep, err = grid.Run(context.Background(), jobs, opts)
		j.Close()
		ok = err == nil && rep.AllDone() && same(rep.Measurements)
		if ok {
			byID, jerr := journalRecords(path)
			ok = jerr == nil && len(byID) == len(jobs)
			if jerr != nil {
				err = jerr
			}
		}
	}
	add("grid: TCP link fault journals clean", ok, "drop at msg 2, err=%v", err)

	// Supervisor killed mid-protocol, then resumed: the final journal must
	// hold the same records an uninterrupted run journals.
	path = filepath.Join(dir, "kill.jsonl")
	j, done, _, err = grid.OpenJournal(path, false)
	ok = err == nil
	if ok {
		ctx, cancel := context.WithCancel(context.Background())
		var msgs int64
		opts := tcpOpts(nil)
		opts.Transport.(*grid.TCPTransport).MsgHook = func(string, int) {
			if atomic.AddInt64(&msgs, 1) == 5 {
				cancel()
			}
		}
		opts.Journal = j
		opts.Done = done
		grid.Run(ctx, jobs, opts)
		j.Close()
		cancel()
		var j2 *grid.Journal
		var done2 map[string]grid.Record
		j2, done2, _, err = grid.OpenJournal(path, true)
		ok = err == nil
		if ok {
			rep, err = grid.Run(context.Background(), jobs, tcpOptsWithJournal(tcpOpts(nil), j2, done2))
			j2.Close()
			ok = err == nil && rep.AllDone() && same(rep.Measurements)
			if ok {
				byID, jerr := journalRecords(path)
				ok = jerr == nil && len(byID) == len(jobs)
				if jerr != nil {
					err = jerr
				}
			}
		}
	}
	add("grid: TCP supervisor kill + resume", ok, "killed at msg 5, err=%v", err)
}

func tcpOptsWithJournal(o grid.Options, j *grid.Journal, done map[string]grid.Record) grid.Options {
	o.Journal = j
	o.Done = done
	return o
}
