package app

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"reqsched"
)

// benchEntry is one strategy's measured baseline.
type benchEntry struct {
	Strategy       string  `json:"strategy"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	Fulfilled      int     `json:"fulfilled"`
}

// benchOfflineEntry is one worker count's segmented-solver timing.
type benchOfflineEntry struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is monolithic ns / segmented ns at this worker count.
	Speedup float64 `json:"speedup_vs_monolithic"`
}

// benchOffline records the segmented parallel offline optimum against the
// monolithic Hopcroft–Karp solver on a gapped bursty trace (clean segment
// cuts between bursts).
type benchOffline struct {
	Workload struct {
		N         int     `json:"n"`
		D         int     `json:"d"`
		Rounds    int     `json:"rounds"`
		On        int     `json:"on"`
		Off       int     `json:"off"`
		BurstRate float64 `json:"burst_rate"`
		Seed      int64   `json:"seed"`
		Requests  int     `json:"requests"`
	} `json:"workload"`
	Segments int `json:"segments"`
	Optimum  int `json:"optimum"`
	// GOMAXPROCS records the CPUs the timings ran on: with one visible CPU
	// the speedup is algorithmic (many small matchings beat one monolithic
	// run), not thread-level.
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	MonolithicNs float64             `json:"monolithic_ns_per_op"`
	Entries      []benchOfflineEntry `json:"entries"`
}

// benchWeighted records the segmented weighted offline solvers (max profit,
// min latency) against their monolithic min-cost-flow counterparts on a
// gapped bursty trace with harmonic request weights. The monolithic solvers
// run successive shortest paths over the whole graph and scale superlinearly
// in the trace, so they are timed once (reps=1) and the min-latency pair runs
// on a tenth of the profit workload to keep the harness bounded.
type benchWeighted struct {
	Workload struct {
		N         int     `json:"n"`
		D         int     `json:"d"`
		Rounds    int     `json:"rounds"`
		On        int     `json:"on"`
		Off       int     `json:"off"`
		BurstRate float64 `json:"burst_rate"`
		Seed      int64   `json:"seed"`
		MaxW      int     `json:"max_weight"`
		Requests  int     `json:"requests"`
	} `json:"workload"`
	Segments   int `json:"segments"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// MaxProfit section: the weighted optimum and per-worker-count timings.
	Profit             int                 `json:"profit"`
	ProfitMonolithicNs float64             `json:"profit_monolithic_ns_per_op"`
	ProfitEntries      []benchOfflineEntry `json:"profit_entries"`
	// MinLatency section, on a smaller slice of the same workload shape.
	MinLatencyRequests     int                 `json:"min_latency_requests"`
	MinLatency             int                 `json:"min_latency"`
	MinLatencyMonolithicNs float64             `json:"min_latency_monolithic_ns_per_op"`
	MinLatencyEntries      []benchOfflineEntry `json:"min_latency_entries"`
}

// benchBaseline is the file format of BENCH_engine.json.
type benchBaseline struct {
	Workload struct {
		N        int     `json:"n"`
		D        int     `json:"d"`
		Rounds   int     `json:"rounds"`
		Rate     float64 `json:"rate"`
		Seed     int64   `json:"seed"`
		Requests int     `json:"requests"`
	} `json:"workload"`
	Entries  []benchEntry   `json:"entries"`
	Offline  *benchOffline  `json:"offline,omitempty"`
	Weighted *benchWeighted `json:"weighted,omitempty"`
}

// timeIt returns the fastest of reps timed runs of f in nanoseconds.
func timeIt(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// runBenchOffline measures the monolithic and segmented offline solvers on
// a multi-segment trace of roughly `requests` requests.
func runBenchOffline(requests int, stderr io.Writer) (*benchOffline, error) {
	// Bursts of 4 rounds at burstRate, then 8 silent rounds (> d-1): every
	// burst is an independent segment.
	const (
		n, d      = 16, 4
		on, off   = 4, 8
		burstRate = 50.0
		seed      = 5
	)
	rounds := requests * (on + off) / (on * int(burstRate))
	cfg := reqsched.WorkloadConfig{N: n, D: d, Rounds: rounds, Rate: 0, Seed: seed}
	tr := reqsched.Bursty(cfg, on, off, burstRate)

	var o benchOffline
	o.Workload.N = n
	o.Workload.D = d
	o.Workload.Rounds = rounds
	o.Workload.On = on
	o.Workload.Off = off
	o.Workload.BurstRate = burstRate
	o.Workload.Seed = seed
	o.Workload.Requests = tr.NumRequests()
	o.Segments = reqsched.TraceSegmentCount(tr)
	o.GOMAXPROCS = runtime.GOMAXPROCS(0)

	want := 0
	o.MonolithicNs = timeIt(2, func() { want = reqsched.Optimum(tr) })
	o.Optimum = want
	for _, workers := range []int{1, 2, 4, 8} {
		var got int
		ns := timeIt(3, func() { got = reqsched.OptimumParallel(tr, workers) })
		if got != want {
			return nil, fmt.Errorf("BUG: OptimumParallel(workers=%d) = %d, Optimum = %d", workers, got, want)
		}
		o.Entries = append(o.Entries, benchOfflineEntry{
			Workers: workers,
			NsPerOp: ns,
			Speedup: o.MonolithicNs / ns,
		})
		fmt.Fprintf(stderr, "offline workers=%d %14.0f ns/op  speedup %.2fx\n",
			workers, ns, o.MonolithicNs/ns)
	}
	return &o, nil
}

// benchWeightedWorkload builds the gapped bursty weighted trace the
// weighted benchmarks run on, sized to roughly `requests` requests.
func benchWeightedWorkload(requests int) (*reqsched.Trace, int) {
	const (
		n, d      = 16, 4
		on, off   = 4, 8
		burstRate = 50.0
		seed      = 5
		maxW      = 8
	)
	rounds := requests * (on + off) / (on * int(burstRate))
	cfg := reqsched.WorkloadConfig{N: n, D: d, Rounds: rounds, Rate: 0, Seed: seed}
	return reqsched.WithWeights(reqsched.Bursty(cfg, on, off, burstRate), maxW, seed), rounds
}

// runBenchWeighted measures the monolithic and segmented weighted offline
// solvers on a multi-segment weighted trace of roughly `requests` requests.
func runBenchWeighted(requests int, stderr io.Writer) (*benchWeighted, error) {
	tr, rounds := benchWeightedWorkload(requests)

	var wt benchWeighted
	wt.Workload.N = tr.N
	wt.Workload.D = tr.D
	wt.Workload.Rounds = rounds
	wt.Workload.On = 4
	wt.Workload.Off = 8
	wt.Workload.BurstRate = 50.0
	wt.Workload.Seed = 5
	wt.Workload.MaxW = 8
	wt.Workload.Requests = tr.NumRequests()
	wt.Segments = reqsched.TraceSegmentCount(tr)
	wt.GOMAXPROCS = runtime.GOMAXPROCS(0)

	// Max profit. The monolithic successive-shortest-paths solver is
	// superlinear in the trace (~40 min at 10^5 requests on one core), so one
	// rep only.
	want := 0
	wt.ProfitMonolithicNs = timeIt(1, func() { want = reqsched.MaxProfit(tr) })
	wt.Profit = want
	fmt.Fprintf(stderr, "weighted profit monolithic %14.0f ns/op\n", wt.ProfitMonolithicNs)
	for _, workers := range []int{1, 2, 4, 8} {
		var got int
		ns := timeIt(3, func() { got = reqsched.MaxProfitParallel(tr, workers) })
		if got != want {
			return nil, fmt.Errorf("BUG: MaxProfitParallel(workers=%d) = %d, MaxProfit = %d", workers, got, want)
		}
		wt.ProfitEntries = append(wt.ProfitEntries, benchOfflineEntry{
			Workers: workers, NsPerOp: ns, Speedup: wt.ProfitMonolithicNs / ns,
		})
		fmt.Fprintf(stderr, "weighted profit workers=%d %14.0f ns/op  speedup %.2fx\n",
			workers, ns, wt.ProfitMonolithicNs/ns)
	}

	// Min latency, same shape at a tenth of the size (its monolithic solver
	// pushes every augmenting path, not just the profitable ones).
	small, _ := benchWeightedWorkload(requests / 10)
	wt.MinLatencyRequests = small.NumRequests()
	wantLat := 0
	wt.MinLatencyMonolithicNs = timeIt(1, func() { _, wantLat = reqsched.OptimumMinLatency(small) })
	wt.MinLatency = wantLat
	fmt.Fprintf(stderr, "weighted minlat monolithic %14.0f ns/op\n", wt.MinLatencyMonolithicNs)
	for _, workers := range []int{1, 2, 4, 8} {
		var gotLat int
		ns := timeIt(3, func() { _, gotLat = reqsched.OptimumMinLatencyParallel(small, workers) })
		if gotLat != wantLat {
			return nil, fmt.Errorf("BUG: OptimumMinLatencyParallel(workers=%d) = %d, OptimumMinLatency = %d", workers, gotLat, wantLat)
		}
		wt.MinLatencyEntries = append(wt.MinLatencyEntries, benchOfflineEntry{
			Workers: workers, NsPerOp: ns, Speedup: wt.MinLatencyMonolithicNs / ns,
		})
		fmt.Fprintf(stderr, "weighted minlat workers=%d %14.0f ns/op  speedup %.2fx\n",
			workers, ns, wt.MinLatencyMonolithicNs/ns)
	}
	return &wt, nil
}

// benchStrategies is the historical baseline set BENCH_engine.json records:
// the Table 1 strategies plus the references and baselines whose timings
// the alloc-regression tests in EXPERIMENTS.md compare against. The set is
// pinned — entries are a file format, not an iteration default — so it
// stays a literal here rather than a registry query.
var benchStrategies = []string{
	"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance",
	"EDF", "first_fit", "A_local_fix", "A_local_eager",
}

// BenchMain is the main program of cmd/bench: it records the engine's
// performance baseline as JSON. It runs the BenchmarkEngine workload
// (uniform, N=16, D=6, 300 rounds, rate 18, seed 11) through each strategy
// under testing.Benchmark and emits one entry per strategy with ns/op,
// allocs/op, bytes/op and derived throughput, plus an offline section
// benchmarking the segmented parallel optimum against the monolithic solver
// on a million-request multi-segment trace. The checked-in
// BENCH_engine.json is the reference the alloc-regression tests in
// EXPERIMENTS.md compare against:
//
//	go run ./cmd/bench -out BENCH_engine.json
func BenchMain(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("bench", stderr)
	out := fs.String("out", "", "output file (default stdout)")
	benchtime := fs.Duration("benchtime", 0, "per-strategy benchmark time (default testing's 1s)")
	offlineReqs := fs.Int("offline-requests", 1_000_000, "request count for the segmented-optimum benchmark (0 skips it)")
	weightedReqs := fs.Int("weighted-requests", 100_000, "request count for the weighted-optima benchmark (0 skips it; the monolithic reference is superlinear — ~40 min at the default size)")
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, stdout, stderr); handled {
		return code
	}
	if *benchtime > 0 {
		// testing.Benchmark honours the -test.benchtime flag.
		flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ExitOnError)
		testing.Init()
		flag.Set("test.benchtime", benchtime.String())
	}

	cfg := reqsched.WorkloadConfig{N: 16, D: 6, Rounds: 300, Rate: 18, Seed: 11}
	tr := reqsched.Uniform(cfg)

	var base benchBaseline
	base.Workload.N = cfg.N
	base.Workload.D = cfg.D
	base.Workload.Rounds = cfg.Rounds
	base.Workload.Rate = cfg.Rate
	base.Workload.Seed = cfg.Seed
	base.Workload.Requests = tr.NumRequests()

	for _, name := range benchStrategies {
		name := name
		var fulfilled int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := reqsched.RunChecked(reqsched.StrategyByName(name), tr)
				if err != nil {
					b.Fatalf("run %s: %v", name, err)
				}
				fulfilled = res.Fulfilled
			}
		})
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		opsPerSec := 0.0
		if nsPerOp > 0 {
			opsPerSec = 1e9 / nsPerOp
		}
		totalRounds := float64(tr.Horizon())
		base.Entries = append(base.Entries, benchEntry{
			Strategy:       name,
			NsPerOp:        nsPerOp,
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
			RoundsPerSec:   opsPerSec * totalRounds,
			RequestsPerSec: opsPerSec * float64(tr.NumRequests()),
			Fulfilled:      fulfilled,
		})
		fmt.Fprintf(stderr, "%-16s %12.0f ns/op %8d allocs/op %10d B/op  served %d\n",
			name, nsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), fulfilled)
	}

	if *offlineReqs > 0 {
		o, err := runBenchOffline(*offlineReqs, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		base.Offline = o
	}
	if *weightedReqs > 0 {
		wt, err := runBenchWeighted(*weightedReqs, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		base.Weighted = wt
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&base); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}
