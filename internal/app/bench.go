package app

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"reqsched"
	"reqsched/internal/core"
	"reqsched/internal/registry"
	"reqsched/internal/serve"
	"reqsched/internal/workload"
)

// benchEntry is one strategy's measured baseline.
type benchEntry struct {
	Strategy       string  `json:"strategy"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	Fulfilled      int     `json:"fulfilled"`
}

// benchOfflineEntry is one worker count's segmented-solver timing.
type benchOfflineEntry struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is monolithic ns / segmented ns at this worker count.
	Speedup float64 `json:"speedup_vs_monolithic"`
}

// benchOffline records the segmented parallel offline optimum against the
// monolithic Hopcroft–Karp solver on a gapped bursty trace (clean segment
// cuts between bursts).
type benchOffline struct {
	Workload struct {
		N         int     `json:"n"`
		D         int     `json:"d"`
		Rounds    int     `json:"rounds"`
		On        int     `json:"on"`
		Off       int     `json:"off"`
		BurstRate float64 `json:"burst_rate"`
		Seed      int64   `json:"seed"`
		Requests  int     `json:"requests"`
	} `json:"workload"`
	Segments int `json:"segments"`
	Optimum  int `json:"optimum"`
	// GOMAXPROCS records the CPUs the timings ran on: with one visible CPU
	// the speedup is algorithmic (many small matchings beat one monolithic
	// run), not thread-level.
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	MonolithicNs float64             `json:"monolithic_ns_per_op"`
	Entries      []benchOfflineEntry `json:"entries"`
}

// benchWeighted records the segmented weighted offline solvers (max profit,
// min latency) against their monolithic min-cost-flow counterparts on a
// gapped bursty trace with harmonic request weights. The monolithic solvers
// run successive shortest paths over the whole graph and scale superlinearly
// in the trace, so they are timed once (reps=1) and the min-latency pair runs
// on a tenth of the profit workload to keep the harness bounded.
type benchWeighted struct {
	Workload struct {
		N         int     `json:"n"`
		D         int     `json:"d"`
		Rounds    int     `json:"rounds"`
		On        int     `json:"on"`
		Off       int     `json:"off"`
		BurstRate float64 `json:"burst_rate"`
		Seed      int64   `json:"seed"`
		MaxW      int     `json:"max_weight"`
		Requests  int     `json:"requests"`
	} `json:"workload"`
	Segments   int `json:"segments"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// MaxProfit section: the weighted optimum and per-worker-count timings.
	Profit             int                 `json:"profit"`
	ProfitMonolithicNs float64             `json:"profit_monolithic_ns_per_op"`
	ProfitEntries      []benchOfflineEntry `json:"profit_entries"`
	// MinLatency section, on a smaller slice of the same workload shape.
	MinLatencyRequests     int                 `json:"min_latency_requests"`
	MinLatency             int                 `json:"min_latency"`
	MinLatencyMonolithicNs float64             `json:"min_latency_monolithic_ns_per_op"`
	MinLatencyEntries      []benchOfflineEntry `json:"min_latency_entries"`
}

// benchWorkload describes the gapped bursty trace the offline-style sections
// run on (bursts of `on` rounds at `burst_rate`, then `off` silent rounds, so
// every burst is an independent segment).
type benchWorkload struct {
	N         int     `json:"n"`
	D         int     `json:"d"`
	Rounds    int     `json:"rounds"`
	On        int     `json:"on"`
	Off       int     `json:"off"`
	BurstRate float64 `json:"burst_rate"`
	Seed      int64   `json:"seed"`
	Requests  int     `json:"requests"`
}

// benchIncremental records the incremental rolling optimum (one maintained
// matching, one augmenting-path search per request, scratch reused across
// segment seals) against the cold path the serve daemon used to run: a fresh
// graph and Hopcroft–Karp solve per materialized segment sub-trace. One op is
// a full pass over the trace; the alloc reduction is the headline — the
// incremental path never rebuilds the graph.
type benchIncremental struct {
	// TargetRequests reproduces the section: the -incremental-requests value.
	TargetRequests int           `json:"target_requests"`
	Workload       benchWorkload `json:"workload"`
	Segments       int           `json:"segments"`
	Optimum        int           `json:"optimum"`
	GOMAXPROCS     int           `json:"gomaxprocs"`
	// Cold: offline.Optimum on each pre-materialized segment sub-trace.
	ColdNsPerOp     float64 `json:"cold_ns_per_op"`
	ColdAllocsPerOp int64   `json:"cold_allocs_per_op"`
	ColdBytesPerOp  int64   `json:"cold_bytes_per_op"`
	// Incremental: OptimumIncremental over the whole trace.
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	SpeedupVsCold  float64 `json:"speedup_vs_cold"`
	AllocReduction float64 `json:"alloc_reduction_vs_cold"`
}

// benchServeEntry is one serve-daemon configuration's measured ingest rate:
// a full session — HTTP ingest of the whole JSONL stream, engine stepping
// under the virtual clock, rolling-optimum worker, drain — per op.
type benchServeEntry struct {
	Mode           string  `json:"mode"`
	IngestBatch    int     `json:"ingest_batch"`
	RollingBatch   bool    `json:"rolling_batch"`
	NsPerRequest   float64 `json:"ns_per_request"`
	RequestsPerSec float64 `json:"requests_per_sec"`
}

// benchServeIngest records end-to-end daemon ingest throughput, legacy shape
// (record-at-a-time admission locking, whole-segment rolling solves) against
// the batched + incremental default.
type benchServeIngest struct {
	TargetRequests  int               `json:"target_requests"`
	Workload        benchWorkload     `json:"workload"`
	Segments        int               `json:"segments"`
	GOMAXPROCS      int               `json:"gomaxprocs"`
	Entries         []benchServeEntry `json:"entries"`
	SpeedupVsLegacy float64           `json:"speedup_vs_legacy"`
}

// benchModelEntry is one service model's engine timing: the greedy router on
// reusable-resource traffic sized to the model's capacity. One op is a full
// trace run.
type benchModelEntry struct {
	Hold        int     `json:"hold"`
	Cap         int     `json:"cap"`
	Requests    int     `json:"requests"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Fulfilled   int     `json:"fulfilled"`
}

// benchModelHold records the engine under hold=k service models — the
// occupancy-tracking window path — against the unit-model hold=1 row, which
// must stay on the historical zero-extra-alloc fast path.
type benchModelHold struct {
	TargetRequests int `json:"target_requests"`
	Workload       struct {
		N    int     `json:"n"`
		D    int     `json:"d"`
		Load float64 `json:"load"`
		Seed int64   `json:"seed"`
	} `json:"workload"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Entries    []benchModelEntry `json:"entries"`
}

// benchBaseline is the file format of BENCH_engine.json.
type benchBaseline struct {
	Workload struct {
		N        int     `json:"n"`
		D        int     `json:"d"`
		Rounds   int     `json:"rounds"`
		Rate     float64 `json:"rate"`
		Seed     int64   `json:"seed"`
		Requests int     `json:"requests"`
	} `json:"workload"`
	Entries     []benchEntry      `json:"entries"`
	Offline     *benchOffline     `json:"offline,omitempty"`
	Weighted    *benchWeighted    `json:"weighted,omitempty"`
	Incremental *benchIncremental `json:"incremental_opt,omitempty"`
	ServeIngest *benchServeIngest `json:"serve_ingest,omitempty"`
	ModelHold   *benchModelHold   `json:"model_hold,omitempty"`
}

// timeIt returns the fastest of reps timed runs of f in nanoseconds.
func timeIt(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// runBenchOffline measures the monolithic and segmented offline solvers on
// a multi-segment trace of roughly `requests` requests.
func runBenchOffline(requests int, stderr io.Writer) (*benchOffline, error) {
	// Bursts of 4 rounds at burstRate, then 8 silent rounds (> d-1): every
	// burst is an independent segment.
	const (
		n, d      = 16, 4
		on, off   = 4, 8
		burstRate = 50.0
		seed      = 5
	)
	rounds := requests * (on + off) / (on * int(burstRate))
	cfg := reqsched.WorkloadConfig{N: n, D: d, Rounds: rounds, Rate: 0, Seed: seed}
	tr := reqsched.Bursty(cfg, on, off, burstRate)

	var o benchOffline
	o.Workload.N = n
	o.Workload.D = d
	o.Workload.Rounds = rounds
	o.Workload.On = on
	o.Workload.Off = off
	o.Workload.BurstRate = burstRate
	o.Workload.Seed = seed
	o.Workload.Requests = tr.NumRequests()
	o.Segments = reqsched.TraceSegmentCount(tr)
	o.GOMAXPROCS = runtime.GOMAXPROCS(0)

	want := 0
	o.MonolithicNs = timeIt(2, func() { want = reqsched.Optimum(tr) })
	o.Optimum = want
	for _, workers := range []int{1, 2, 4, 8} {
		var got int
		ns := timeIt(3, func() { got = reqsched.OptimumParallel(tr, workers) })
		if got != want {
			return nil, fmt.Errorf("BUG: OptimumParallel(workers=%d) = %d, Optimum = %d", workers, got, want)
		}
		o.Entries = append(o.Entries, benchOfflineEntry{
			Workers: workers,
			NsPerOp: ns,
			Speedup: o.MonolithicNs / ns,
		})
		fmt.Fprintf(stderr, "offline workers=%d %14.0f ns/op  speedup %.2fx\n",
			workers, ns, o.MonolithicNs/ns)
	}
	return &o, nil
}

// benchBurstyTrace builds the gapped bursty trace the incremental and serve
// sections run on (same shape as runBenchOffline), sized to roughly
// `requests` requests.
func benchBurstyTrace(requests int) (*reqsched.Trace, benchWorkload) {
	const (
		n, d      = 16, 4
		on, off   = 4, 8
		burstRate = 50.0
		seed      = 5
	)
	rounds := requests * (on + off) / (on * int(burstRate))
	cfg := reqsched.WorkloadConfig{N: n, D: d, Rounds: rounds, Rate: 0, Seed: seed}
	tr := reqsched.Bursty(cfg, on, off, burstRate)
	return tr, benchWorkload{
		N: n, D: d, Rounds: rounds, On: on, Off: off,
		BurstRate: burstRate, Seed: seed, Requests: tr.NumRequests(),
	}
}

// runBenchIncremental measures the incremental rolling optimum against cold
// per-segment solves on a multi-segment trace of roughly `requests` requests.
func runBenchIncremental(requests int, stderr io.Writer) (*benchIncremental, error) {
	tr, wl := benchBurstyTrace(requests)

	o := &benchIncremental{TargetRequests: requests, Workload: wl}
	o.Segments = reqsched.TraceSegmentCount(tr)
	o.GOMAXPROCS = runtime.GOMAXPROCS(0)

	// Pre-materialize the segment sub-traces so the cold timing is the solve
	// alone — exactly the work the serve daemon's rolling worker used to do
	// per closed segment — not the cutting.
	var buf bytes.Buffer
	if err := reqsched.WriteTraceStream(&buf, tr); err != nil {
		return nil, err
	}
	var segs []*reqsched.Trace
	for sub, err := range reqsched.TraceSegments(bytes.NewReader(buf.Bytes())) {
		if err != nil {
			return nil, err
		}
		segs = append(segs, sub)
	}

	want := reqsched.Optimum(tr)
	o.Optimum = want

	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sum := 0
			for _, sub := range segs {
				sum += reqsched.Optimum(sub)
			}
			if sum != want {
				b.Fatalf("cold segment sum %d, Optimum %d", sum, want)
			}
		}
	})
	o.ColdNsPerOp = float64(cold.T.Nanoseconds()) / float64(cold.N)
	o.ColdAllocsPerOp = cold.AllocsPerOp()
	o.ColdBytesPerOp = cold.AllocedBytesPerOp()

	inc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := reqsched.OptimumIncremental(tr); got != want {
				b.Fatalf("OptimumIncremental %d, Optimum %d", got, want)
			}
		}
	})
	o.NsPerOp = float64(inc.T.Nanoseconds()) / float64(inc.N)
	o.AllocsPerOp = inc.AllocsPerOp()
	o.BytesPerOp = inc.AllocedBytesPerOp()
	if o.NsPerOp > 0 {
		o.SpeedupVsCold = o.ColdNsPerOp / o.NsPerOp
	}
	if o.AllocsPerOp > 0 {
		o.AllocReduction = float64(o.ColdAllocsPerOp) / float64(o.AllocsPerOp)
	}
	fmt.Fprintf(stderr, "incremental cold %14.0f ns/op %8d allocs/op\n", o.ColdNsPerOp, o.ColdAllocsPerOp)
	fmt.Fprintf(stderr, "incremental inc  %14.0f ns/op %8d allocs/op  speedup %.2fx  allocs %.1fx fewer\n",
		o.NsPerOp, o.AllocsPerOp, o.SpeedupVsCold, o.AllocReduction)
	return o, nil
}

// runBenchModelHold measures the engine under hold=k service models: the
// greedy router on reusable-resource traffic of roughly `requests` requests
// per cell, rounds scaled so every model sees the same request count at the
// same utilization. The hold=1,cap=1 row runs the historical unit-model fast
// path; the others exercise the occupancy-tracking window.
func runBenchModelHold(requests int, stderr io.Writer) (*benchModelHold, error) {
	const (
		n, d = 16, 4
		load = 0.9
		seed = 11
	)
	o := &benchModelHold{TargetRequests: requests}
	o.Workload.N = n
	o.Workload.D = d
	o.Workload.Load = load
	o.Workload.Seed = seed
	o.GOMAXPROCS = runtime.GOMAXPROCS(0)

	greedy := func() core.Strategy {
		s, err := registry.NewStrategySpec("compose,router=greedy")
		if err != nil {
			panic(err) // the spec is a constant; resolution cannot fail
		}
		return s
	}
	for _, m := range []core.ServiceModel{{Hold: 1, Cap: 1}, {Hold: 2, Cap: 1}, {Hold: 4, Cap: 2}, {Hold: 8, Cap: 2}} {
		// rate = load*n*cap/hold, so rounds = requests*hold/(load*n*cap) keeps
		// the request count at the target for every model.
		rounds := int(float64(requests) * float64(m.Hold) / (load * float64(n) * float64(m.Cap)))
		tr := workload.Reusable(workload.Config{N: n, D: d, Rounds: rounds, Seed: seed}, m, load)
		var fulfilled int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.RunChecked(greedy(), tr)
				if err != nil {
					b.Fatalf("run greedy under %s: %v", m, err)
				}
				fulfilled = res.Fulfilled
			}
		})
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		o.Entries = append(o.Entries, benchModelEntry{
			Hold: m.Hold, Cap: m.Cap, Requests: tr.NumRequests(),
			NsPerOp:     nsPerOp,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Fulfilled:   fulfilled,
		})
		fmt.Fprintf(stderr, "model %-14s %12.0f ns/op %8d allocs/op %10d B/op  served %d of %d\n",
			m, nsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), fulfilled, tr.NumRequests())
	}
	return o, nil
}

// serveIngestModes are the two daemon shapes the serve section compares. The
// legacy shape is the pre-sharding daemon: one admission lock acquisition per
// record and whole-segment rolling solves.
var serveIngestModes = []struct {
	mode         string
	ingestBatch  int
	rollingBatch bool
}{
	{"legacy", 1, true},
	{"batched_incremental", 0, false},
}

// runBenchServeIngest measures end-to-end daemon throughput: the bursty JSONL
// stream POSTed to a virtual-clock serve.Server, drain included, so decode,
// admission, engine stepping and the rolling-optimum worker all count.
func runBenchServeIngest(requests int, stderr io.Writer) (*benchServeIngest, error) {
	tr, wl := benchBurstyTrace(requests)
	o := &benchServeIngest{TargetRequests: requests, Workload: wl}
	o.Segments = reqsched.TraceSegmentCount(tr)
	o.GOMAXPROCS = runtime.GOMAXPROCS(0)

	var buf bytes.Buffer
	if err := reqsched.WriteTraceStream(&buf, tr); err != nil {
		return nil, err
	}
	body := buf.Bytes()

	var rolling *serve.RollingRatio // cross-checked across modes
	for _, m := range serveIngestModes {
		var mrolling serve.RollingRatio
		session := func() error {
			// A_fix is the cheapest engine strategy, so the session time is
			// dominated by the machinery under test — decode, admission,
			// rolling optimum — not by strategy bookkeeping.
			s, err := serve.New(serve.Config{
				N: tr.N, D: tr.D,
				Strategy: reqsched.NewAFix(), StrategyName: "A_fix",
				Virtual:      true,
				QueueCap:     1 << 20,
				IngestBatch:  m.ingestBatch,
				RollingBatch: m.rollingBatch,
			})
			if err != nil {
				return err
			}
			rw := httptest.NewRecorder()
			s.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/requests", bytes.NewReader(body)))
			if rw.Code != http.StatusOK {
				return fmt.Errorf("serve ingest (%s): status %d: %s", m.mode, rw.Code, rw.Body.String())
			}
			met := s.Drain()
			if met.Requests != tr.NumRequests() {
				return fmt.Errorf("serve ingest (%s): admitted %d of %d", m.mode, met.Requests, tr.NumRequests())
			}
			mrolling = met.Rolling
			return nil
		}
		var serr error
		ns := timeIt(3, func() {
			if err := session(); err != nil && serr == nil {
				serr = err
			}
		})
		if serr != nil {
			return nil, serr
		}
		if rolling == nil {
			r := mrolling
			rolling = &r
		} else if *rolling != mrolling {
			return nil, fmt.Errorf("BUG: serve ingest rolling totals differ: %s %+v vs %+v",
				m.mode, mrolling, *rolling)
		}
		perReq := ns / float64(tr.NumRequests())
		o.Entries = append(o.Entries, benchServeEntry{
			Mode:           m.mode,
			IngestBatch:    m.ingestBatch,
			RollingBatch:   m.rollingBatch,
			NsPerRequest:   perReq,
			RequestsPerSec: 1e9 / perReq,
		})
		fmt.Fprintf(stderr, "serve ingest %-20s %8.0f ns/request  %12.0f requests/s\n",
			m.mode, perReq, 1e9/perReq)
	}
	if len(o.Entries) == 2 && o.Entries[1].NsPerRequest > 0 {
		o.SpeedupVsLegacy = o.Entries[0].NsPerRequest / o.Entries[1].NsPerRequest
		fmt.Fprintf(stderr, "serve ingest speedup %.2fx\n", o.SpeedupVsLegacy)
	}
	return o, nil
}

// benchWeightedWorkload builds the gapped bursty weighted trace the
// weighted benchmarks run on, sized to roughly `requests` requests.
func benchWeightedWorkload(requests int) (*reqsched.Trace, int) {
	const (
		n, d      = 16, 4
		on, off   = 4, 8
		burstRate = 50.0
		seed      = 5
		maxW      = 8
	)
	rounds := requests * (on + off) / (on * int(burstRate))
	cfg := reqsched.WorkloadConfig{N: n, D: d, Rounds: rounds, Rate: 0, Seed: seed}
	return reqsched.WithWeights(reqsched.Bursty(cfg, on, off, burstRate), maxW, seed), rounds
}

// runBenchWeighted measures the monolithic and segmented weighted offline
// solvers on a multi-segment weighted trace of roughly `requests` requests.
func runBenchWeighted(requests int, stderr io.Writer) (*benchWeighted, error) {
	tr, rounds := benchWeightedWorkload(requests)

	var wt benchWeighted
	wt.Workload.N = tr.N
	wt.Workload.D = tr.D
	wt.Workload.Rounds = rounds
	wt.Workload.On = 4
	wt.Workload.Off = 8
	wt.Workload.BurstRate = 50.0
	wt.Workload.Seed = 5
	wt.Workload.MaxW = 8
	wt.Workload.Requests = tr.NumRequests()
	wt.Segments = reqsched.TraceSegmentCount(tr)
	wt.GOMAXPROCS = runtime.GOMAXPROCS(0)

	// Max profit. The monolithic successive-shortest-paths solver is
	// superlinear in the trace (~40 min at 10^5 requests on one core), so one
	// rep only.
	want := 0
	wt.ProfitMonolithicNs = timeIt(1, func() { want = reqsched.MaxProfit(tr) })
	wt.Profit = want
	fmt.Fprintf(stderr, "weighted profit monolithic %14.0f ns/op\n", wt.ProfitMonolithicNs)
	for _, workers := range []int{1, 2, 4, 8} {
		var got int
		ns := timeIt(3, func() { got = reqsched.MaxProfitParallel(tr, workers) })
		if got != want {
			return nil, fmt.Errorf("BUG: MaxProfitParallel(workers=%d) = %d, MaxProfit = %d", workers, got, want)
		}
		wt.ProfitEntries = append(wt.ProfitEntries, benchOfflineEntry{
			Workers: workers, NsPerOp: ns, Speedup: wt.ProfitMonolithicNs / ns,
		})
		fmt.Fprintf(stderr, "weighted profit workers=%d %14.0f ns/op  speedup %.2fx\n",
			workers, ns, wt.ProfitMonolithicNs/ns)
	}

	// Min latency, same shape at a tenth of the size (its monolithic solver
	// pushes every augmenting path, not just the profitable ones).
	small, _ := benchWeightedWorkload(requests / 10)
	wt.MinLatencyRequests = small.NumRequests()
	wantLat := 0
	wt.MinLatencyMonolithicNs = timeIt(1, func() { _, wantLat = reqsched.OptimumMinLatency(small) })
	wt.MinLatency = wantLat
	fmt.Fprintf(stderr, "weighted minlat monolithic %14.0f ns/op\n", wt.MinLatencyMonolithicNs)
	for _, workers := range []int{1, 2, 4, 8} {
		var gotLat int
		ns := timeIt(3, func() { _, gotLat = reqsched.OptimumMinLatencyParallel(small, workers) })
		if gotLat != wantLat {
			return nil, fmt.Errorf("BUG: OptimumMinLatencyParallel(workers=%d) = %d, OptimumMinLatency = %d", workers, gotLat, wantLat)
		}
		wt.MinLatencyEntries = append(wt.MinLatencyEntries, benchOfflineEntry{
			Workers: workers, NsPerOp: ns, Speedup: wt.MinLatencyMonolithicNs / ns,
		})
		fmt.Fprintf(stderr, "weighted minlat workers=%d %14.0f ns/op  speedup %.2fx\n",
			workers, ns, wt.MinLatencyMonolithicNs/ns)
	}
	return &wt, nil
}

// benchStrategies is the historical baseline set BENCH_engine.json records:
// the Table 1 strategies plus the references and baselines whose timings
// the alloc-regression tests in EXPERIMENTS.md compare against. The set is
// pinned — entries are a file format, not an iteration default — so it
// stays a literal here rather than a registry query.
var benchStrategies = []string{
	"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance",
	"EDF", "first_fit", "A_local_fix", "A_local_eager",
}

// BenchMain is the main program of cmd/bench: it records the engine's
// performance baseline as JSON. It runs the BenchmarkEngine workload
// (uniform, N=16, D=6, 300 rounds, rate 18, seed 11) through each strategy
// under testing.Benchmark and emits one entry per strategy with ns/op,
// allocs/op, bytes/op and derived throughput, plus an offline section
// benchmarking the segmented parallel optimum against the monolithic solver
// on a million-request multi-segment trace. The checked-in
// BENCH_engine.json is the reference the alloc-regression tests in
// EXPERIMENTS.md compare against:
//
//	go run ./cmd/bench -out BENCH_engine.json
func BenchMain(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("bench", stderr)
	out := fs.String("out", "", "output file (default stdout)")
	benchtime := fs.Duration("benchtime", 0, "per-strategy benchmark time (default testing's 1s)")
	offlineReqs := fs.Int("offline-requests", 1_000_000, "request count for the segmented-optimum benchmark (0 skips it)")
	weightedReqs := fs.Int("weighted-requests", 100_000, "request count for the weighted-optima benchmark (0 skips it; the monolithic reference is superlinear — ~40 min at the default size)")
	incReqs := fs.Int("incremental-requests", 200_000, "request count for the incremental-optimum benchmark (0 skips it)")
	serveReqs := fs.Int("serve-requests", 50_000, "request count for the serve-ingest benchmark (0 skips it)")
	modelReqs := fs.Int("model-requests", 50_000, "request count per service model for the model_hold benchmark (0 skips it)")
	regressFile := fs.String("check-regress", "", "baseline BENCH_engine.json: rerun the incremental_opt, serve_ingest and model_hold sections at the baseline's sizes and fail if ns/op regresses past -regress-tolerance (skips everything else)")
	regressTol := fs.Float64("regress-tolerance", 0.25, "allowed fractional ns/op regression in -check-regress mode")
	workers := workersFlag(fs)
	list, describe := listingFlags(fs)
	if ok, code := parse(fs, args); !ok {
		return code
	}
	if handled, code := listing(*list, *describe, resolveWorkers(*workers), stdout, stderr); handled {
		return code
	}
	if *regressFile != "" {
		return benchCheckRegress(*regressFile, *regressTol, stdout, stderr)
	}
	if *benchtime > 0 {
		// testing.Benchmark honours the -test.benchtime flag.
		flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ExitOnError)
		testing.Init()
		flag.Set("test.benchtime", benchtime.String())
	}

	cfg := reqsched.WorkloadConfig{N: 16, D: 6, Rounds: 300, Rate: 18, Seed: 11}
	tr := reqsched.Uniform(cfg)

	var base benchBaseline
	base.Workload.N = cfg.N
	base.Workload.D = cfg.D
	base.Workload.Rounds = cfg.Rounds
	base.Workload.Rate = cfg.Rate
	base.Workload.Seed = cfg.Seed
	base.Workload.Requests = tr.NumRequests()

	for _, name := range benchStrategies {
		name := name
		var fulfilled int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := reqsched.RunChecked(reqsched.StrategyByName(name), tr)
				if err != nil {
					b.Fatalf("run %s: %v", name, err)
				}
				fulfilled = res.Fulfilled
			}
		})
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		opsPerSec := 0.0
		if nsPerOp > 0 {
			opsPerSec = 1e9 / nsPerOp
		}
		totalRounds := float64(tr.Horizon())
		base.Entries = append(base.Entries, benchEntry{
			Strategy:       name,
			NsPerOp:        nsPerOp,
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
			RoundsPerSec:   opsPerSec * totalRounds,
			RequestsPerSec: opsPerSec * float64(tr.NumRequests()),
			Fulfilled:      fulfilled,
		})
		fmt.Fprintf(stderr, "%-16s %12.0f ns/op %8d allocs/op %10d B/op  served %d\n",
			name, nsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), fulfilled)
	}

	if *offlineReqs > 0 {
		o, err := runBenchOffline(*offlineReqs, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		base.Offline = o
	}
	if *weightedReqs > 0 {
		wt, err := runBenchWeighted(*weightedReqs, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		base.Weighted = wt
	}
	if *incReqs > 0 {
		inc, err := runBenchIncremental(*incReqs, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		base.Incremental = inc
	}
	if *serveReqs > 0 {
		si, err := runBenchServeIngest(*serveReqs, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		base.ServeIngest = si
	}
	if *modelReqs > 0 {
		mh, err := runBenchModelHold(*modelReqs, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		base.ModelHold = mh
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&base); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// benchCheckRegress is the CI benchmark-regression guard: it reruns the cheap
// incremental_opt, serve_ingest and model_hold sections at the sizes recorded
// in the checked-in baseline and fails if any ns/op metric regressed past tol
// (fractional — 0.25 allows +25%). Getting faster never fails; the strategy,
// offline and weighted sections are too slow for a CI gate and are skipped.
func benchCheckRegress(path string, tol float64, stdout, stderr io.Writer) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "parse %s: %v\n", path, err)
		return 1
	}
	if base.Incremental == nil && base.ServeIngest == nil && base.ModelHold == nil {
		fmt.Fprintf(stderr, "%s has no incremental_opt, serve_ingest or model_hold section to check\n", path)
		return 1
	}
	failed := false
	check := func(name string, baseline, got float64) {
		limit := baseline * (1 + tol)
		ok := got <= limit
		verdict := "ok"
		if !ok {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(stdout, "%-34s baseline %12.0f ns  now %12.0f ns  (limit %12.0f)  %s\n",
			name, baseline, got, limit, verdict)
	}
	if base.Incremental != nil {
		got, err := runBenchIncremental(base.Incremental.TargetRequests, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		check("incremental_opt.ns_per_op", base.Incremental.NsPerOp, got.NsPerOp)
		check("incremental_opt.cold_ns_per_op", base.Incremental.ColdNsPerOp, got.ColdNsPerOp)
	}
	if base.ServeIngest != nil {
		got, err := runBenchServeIngest(base.ServeIngest.TargetRequests, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		want := make(map[string]float64, len(base.ServeIngest.Entries))
		for _, e := range base.ServeIngest.Entries {
			want[e.Mode] = e.NsPerRequest
		}
		for _, e := range got.Entries {
			if baseline, ok := want[e.Mode]; ok {
				check("serve_ingest."+e.Mode+".ns_per_request", baseline, e.NsPerRequest)
			}
		}
	}
	if base.ModelHold != nil {
		got, err := runBenchModelHold(base.ModelHold.TargetRequests, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		want := make(map[string]float64, len(base.ModelHold.Entries))
		for _, e := range base.ModelHold.Entries {
			want[fmt.Sprintf("hold=%d,cap=%d", e.Hold, e.Cap)] = e.NsPerOp
		}
		for _, e := range got.Entries {
			key := fmt.Sprintf("hold=%d,cap=%d", e.Hold, e.Cap)
			if baseline, ok := want[key]; ok {
				check("model_hold."+key+".ns_per_op", baseline, e.NsPerOp)
			}
		}
	}
	if failed {
		fmt.Fprintln(stderr, "bench: performance regression past tolerance; rerun on a quiet machine or regenerate the baseline with cmd/bench -out")
		return 1
	}
	return 0
}
