package local

import (
	"reqsched/internal/commnet"
	"reqsched/internal/core"
)

// Eager is A_local_eager (Section 3.2): a three-phase message protocol that
// achieves a competitive ratio of at most 5/3 (Theorem 3.8) using at most
// nine communication rounds per scheduling round:
//
//   - Phase 1 (2 rounds): like A_local_fix, but *all* unscheduled requests
//     (old and new) are sent, first to their first alternative, failures to
//     the second.
//   - Phase 2 (2 rounds): every request scheduled at a future slot pings its
//     other alternative; a resource whose current slot is unused acknowledges
//     one of them, which then cancels its old reservation and is served
//     immediately — no current slot stays idle while some scheduled request
//     could use it.
//   - Phase 3 (5 rounds): every still-unscheduled request q "rivals" at its
//     alternatives in turn: the resource names the request r occupying its
//     current slot and r's other resource S_r; q proposes r to S_r; if S_r
//     accepts, q uses a high-priority tagged message to take r's place in the
//     current slot. The confirm round of the first alternative overlaps the
//     send round of the second, exactly as in the paper.
//
// With the WideMailbox option the per-resource receive capacity is 2d-2
// instead of d, which (per the paper's note) lets the last round of Phase 2
// overlap the first of Phase 3, saving one communication round.
type Eager struct {
	transcripting
	wide bool
	d    int
}

// NewEager returns the A_local_eager strategy with mailbox capacity d.
func NewEager() *Eager { return &Eager{} }

// NewEagerWide returns the variant with mailbox capacity 2d-2, which runs in
// eight communication rounds per scheduling round instead of nine.
func NewEagerWide() *Eager { return &Eager{wide: true} }

// Name implements core.Strategy.
func (s *Eager) Name() string {
	if s.wide {
		return "A_local_eager_wide"
	}
	return "A_local_eager"
}

// Begin implements core.Strategy.
func (s *Eager) Begin(n, d int) {
	capacity := d
	if s.wide {
		if capacity = 2*d - 2; capacity < 1 {
			capacity = 1
		}
	}
	s.begin(n, capacity)
	s.d = d
}

// CommTotals implements core.CommAccountant.
func (s *Eager) CommTotals() (rounds, messages int) { return s.nw.Totals() }

// Round implements core.Strategy.
func (s *Eager) Round(ctx *core.RoundContext) {
	// Phase 1: all unscheduled requests try both alternatives.
	failed := sendToAlternative(s.nw, ctx, ctx.Unassigned(), 0)
	failed = sendToAlternative(s.nw, ctx, failed, 1)

	// Phase 2: pull scheduled requests forward into idle current slots.
	s.pullForward(ctx)

	// Phase 3: rival exchanges, first alternative then second. The confirm
	// round of the first sub-phase shares a communication round with the
	// send round of the second.
	pending0 := s.rivalSend(ctx, failed, 0)
	deals0 := s.rivalPropose(ctx, pending0)
	// Round 3 of the phase: confirms of sub-phase 0 + sends of sub-phase 1.
	// Requests whose exchange was acknowledged know they will be seated and
	// do not re-send.
	known := scheduledSet(ctx, failed)
	for _, dl := range deals0 {
		known[dl.Q.ID] = true
	}
	pending1 := s.confirmAndSend(ctx, deals0, subtract(failed, known))
	deals1 := s.rivalPropose(ctx, pending1)
	s.confirmAndSend(ctx, deals1, nil)
}

// pullForward implements Phase 2. Two communication rounds: the ping (every
// future-scheduled request to its other alternative) and the cancel+move of
// the acknowledged requests.
func (s *Eager) pullForward(ctx *core.RoundContext) {
	to := make([][]commnet.Msg, ctx.N)
	for _, a := range ctx.W.Snapshot() {
		if a.Round <= ctx.T || len(a.Req.Alts) != 2 {
			continue
		}
		other := a.Req.Other(a.Res)
		to[other] = append(to[other], commnet.Msg{Req: a.Req})
	}
	received, _ := s.nw.Deliver(to)

	cancels := make([][]commnet.Msg, ctx.N)
	var moves []*core.Request
	for i := 0; i < ctx.N; i++ {
		if !ctx.W.Free(i, ctx.T) || len(received[i]) == 0 {
			continue
		}
		// Acknowledge one request (the first in admission order) and move
		// it to the current slot.
		r := received[i][0].Req
		prevRes, _, ok := ctx.W.AssignmentOf(r)
		if !ok {
			continue
		}
		cancels[prevRes] = append(cancels[prevRes], commnet.Msg{Req: r})
		moves = append(moves, r)
		// Reserve immediately so a later resource in this loop does not
		// also serve r — each request pinged exactly one resource, so this
		// cannot happen, but the reservation keeps the invariant local.
		ctx.W.Unassign(r)
		ctx.W.Assign(r, i, ctx.T)
	}
	if len(moves) > 0 {
		s.nw.Deliver(cancels)
	}
}

// rival is one Phase 3 negotiation: the unscheduled request Q rivals at
// resource Res, which nominated the current-slot occupant R to be moved to
// its other alternative.
type rival struct {
	Q   *core.Request
	Res int
	R   *core.Request
}

// rivalSend implements the first communication round of a Phase 3 sub-phase:
// unscheduled requests contact their alternative `alt`; each resource selects
// one rival and nominates its current-slot occupant. Requests whose resource
// has a free current slot are simply accepted on the spot (the resource
// behaves as in Phase 1; this only arises when mailbox overflow dropped them
// earlier).
func (s *Eager) rivalSend(ctx *core.RoundContext, reqs []*core.Request, alt int) []rival {
	to := make([][]commnet.Msg, ctx.N)
	for _, q := range reqs {
		if ctx.W.Assigned(q) || alt >= len(q.Alts) || len(q.Alts) != 2 {
			continue
		}
		dest := q.Alts[alt]
		to[dest] = append(to[dest], commnet.Msg{Req: q})
	}
	received, _ := s.nw.Deliver(to)
	var deals []rival
	for i := 0; i < ctx.N; i++ {
		if len(received[i]) == 0 {
			continue
		}
		if ctx.W.Free(i, ctx.T) {
			// Degenerate case: the slot is idle after Phase 2, so serve the
			// first admitted rival directly.
			q := received[i][0].Req
			ctx.W.Assign(q, i, ctx.T)
			continue
		}
		r := ctx.W.At(i, ctx.T)
		if len(r.Alts) != 2 {
			continue // occupant has nowhere to move
		}
		deals = append(deals, rival{Q: received[i][0].Req, Res: i, R: r})
	}
	return deals
}

// rivalPropose implements the second communication round of a sub-phase:
// each selected rival q proposes the occupant R to R's other resource, which
// accepts as many proposals as it can schedule. Accepted occupants move
// immediately (the paper: "an acknowledgment received by q implies that
// request r is scheduled by S_r"); the corresponding deals are returned for
// the confirm round.
func (s *Eager) rivalPropose(ctx *core.RoundContext, deals []rival) []rival {
	if len(deals) == 0 {
		return nil
	}
	to := make([][]commnet.Msg, ctx.N)
	byMsg := make(map[*core.Request]rival, len(deals))
	for _, dl := range deals {
		sr := dl.R.Other(dl.Res)
		to[sr] = append(to[sr], commnet.Msg{Req: dl.Q, Payload: dl.R})
		byMsg[dl.Q] = dl
	}
	received, _ := s.nw.Deliver(to)
	var acked []rival
	for j := 0; j < ctx.N; j++ {
		for _, m := range received[j] {
			dl := byMsg[m.Req]
			r := m.Payload
			round, ok := earliestFree(ctx.W, j, r)
			if !ok {
				continue // no acknowledgment: q stays unsuccessful
			}
			ctx.W.Unassign(r)
			ctx.W.Assign(r, j, round)
			acked = append(acked, dl)
		}
	}
	return acked
}

// confirmAndSend implements the shared third communication round: acked
// rivals send the high-priority exchange message to claim the vacated
// current slot, while the still-unsuccessful requests of the next sub-phase
// send their initial rival messages. Returns the next sub-phase's deals.
func (s *Eager) confirmAndSend(ctx *core.RoundContext, acked []rival, nextReqs []*core.Request) []rival {
	to := make([][]commnet.Msg, ctx.N)
	for _, dl := range acked {
		to[dl.Res] = append(to[dl.Res], commnet.Msg{Req: dl.Q, Priority: true})
	}
	for _, q := range nextReqs {
		if ctx.W.Assigned(q) || len(q.Alts) != 2 {
			continue
		}
		to[q.Alts[1]] = append(to[q.Alts[1]], commnet.Msg{Req: q})
	}
	received, _ := s.nw.Deliver(to)
	var deals []rival
	for i := 0; i < ctx.N; i++ {
		rivals := received[i][:0:0]
		for _, m := range received[i] {
			if m.Priority {
				// Exchange: the occupant already moved in rivalPropose, so
				// the current slot is free for q.
				if ctx.W.Free(i, ctx.T) && !ctx.W.Assigned(m.Req) {
					ctx.W.Assign(m.Req, i, ctx.T)
				}
			} else {
				rivals = append(rivals, m)
			}
		}
		if len(rivals) == 0 {
			continue
		}
		if ctx.W.Free(i, ctx.T) {
			q := rivals[0].Req
			if !ctx.W.Assigned(q) {
				ctx.W.Assign(q, i, ctx.T)
			}
			continue
		}
		r := ctx.W.At(i, ctx.T)
		if len(r.Alts) != 2 {
			continue
		}
		deals = append(deals, rival{Q: rivals[0].Req, Res: i, R: r})
	}
	return deals
}

// scheduledSet returns the subset of reqs that are now scheduled.
func scheduledSet(ctx *core.RoundContext, reqs []*core.Request) map[int]bool {
	set := make(map[int]bool)
	for _, r := range reqs {
		if ctx.W.Assigned(r) {
			set[r.ID] = true
		}
	}
	return set
}

// subtract returns reqs minus the IDs in drop, preserving order.
func subtract(reqs []*core.Request, drop map[int]bool) []*core.Request {
	var out []*core.Request
	for _, r := range reqs {
		if !drop[r.ID] {
			out = append(out, r)
		}
	}
	return out
}
