package local

import (
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/workload"
)

// Failure injection: with lossy links the local protocols must degrade
// gracefully — schedules stay valid (structural impossibility of anything
// else), throughput drops with the loss rate, and zero loss reproduces the
// baseline exactly.

func lossTrace(seed int64) *core.Trace {
	return workload.Uniform(workload.Config{N: 6, D: 4, Rounds: 40, Rate: 9, Seed: seed})
}

func TestZeroLossMatchesBaseline(t *testing.T) {
	tr := lossTrace(1)
	base := core.Run(NewFix(), tr)
	s := NewFix()
	s.InjectLoss(0, 42)
	withZero := core.Run(s, tr)
	if base.Fulfilled != withZero.Fulfilled {
		t.Fatalf("zero loss changed outcome: %d vs %d", base.Fulfilled, withZero.Fulfilled)
	}
	if s.MessagesLost() != 0 {
		t.Fatalf("lost %d messages at rate 0", s.MessagesLost())
	}
}

func TestLossDegradesGracefully(t *testing.T) {
	for _, mk := range []func() interface {
		core.Strategy
		InjectLoss(float64, int64)
		MessagesLost() int
	}{
		func() interface {
			core.Strategy
			InjectLoss(float64, int64)
			MessagesLost() int
		} {
			return NewFix()
		},
		func() interface {
			core.Strategy
			InjectLoss(float64, int64)
			MessagesLost() int
		} {
			return NewEager()
		},
	} {
		tr := lossTrace(2)
		baseline := core.Run(mk(), tr).Fulfilled

		prev := baseline
		for _, rate := range []float64{0.1, 0.3, 0.6} {
			s := mk()
			s.InjectLoss(rate, 7)
			res := core.Run(s, tr)
			if err := core.ValidateLog(tr, res.Log); err != nil {
				t.Fatalf("%s rate %.1f: %v", s.Name(), rate, err)
			}
			if s.MessagesLost() == 0 {
				t.Fatalf("%s rate %.1f: no messages lost", s.Name(), rate)
			}
			if res.Fulfilled > baseline {
				t.Fatalf("%s rate %.1f: loss improved throughput %d > %d",
					s.Name(), rate, res.Fulfilled, baseline)
			}
			// Monotone degradation holds in aggregate; allow slack of 5%
			// of the baseline for single-seed noise.
			if float64(res.Fulfilled) > float64(prev)+0.05*float64(baseline) {
				t.Fatalf("%s: throughput rose from %d to %d as loss increased",
					s.Name(), prev, res.Fulfilled)
			}
			prev = res.Fulfilled
		}
		// Severe loss must still serve something (first tries get through
		// with probability 0.4).
		if prev == 0 {
			t.Fatal("total collapse at 60% loss")
		}
	}
}

func TestLossDeterministicPerSeed(t *testing.T) {
	tr := lossTrace(3)
	run := func() int {
		s := NewEager()
		s.InjectLoss(0.25, 99)
		return core.Run(s, tr).Fulfilled
	}
	if run() != run() {
		t.Fatal("lossy run not deterministic per seed")
	}
}

func TestLocalEagerRecoversSomeLossViaRetries(t *testing.T) {
	// A_local_eager re-sends every unscheduled request each scheduling
	// round (Phase 1 sends *all* unscheduled), so it should tolerate loss
	// better than A_local_fix, which gives a request only one chance.
	tr := lossTrace(4)
	fix := NewFix()
	fix.InjectLoss(0.3, 5)
	eager := NewEager()
	eager.InjectLoss(0.3, 5)
	f := core.Run(fix, tr)
	e := core.Run(eager, tr)
	if e.Fulfilled <= f.Fulfilled {
		t.Fatalf("retrying protocol served %d, one-shot %d", e.Fulfilled, f.Fulfilled)
	}
}
