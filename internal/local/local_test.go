package local

import (
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/workload"
)

func TestLocalFixExactlyTwoOnTheorem37(t *testing.T) {
	// Theorem 3.7: per interval OPT serves all 4d, A_local_fix serves 2d.
	for _, d := range []int{1, 2, 4, 8} {
		intervals := 25
		c := adversary.LocalFix(d, intervals)
		res := core.Run(NewFix(), c.Trace)
		if err := core.ValidateLog(c.Trace, res.Log); err != nil {
			t.Fatal(err)
		}
		opt := offline.Optimum(c.Trace)
		if opt != 4*d*intervals {
			t.Fatalf("d=%d: OPT=%d want %d", d, opt, 4*d*intervals)
		}
		if res.Fulfilled != 2*d*intervals {
			t.Fatalf("d=%d: ALG=%d want %d (ratio exactly 2)", d, res.Fulfilled, 2*d*intervals)
		}
	}
}

func TestLocalFixUsesTwoCommRoundsPerSchedulingRound(t *testing.T) {
	tr := workload.Uniform(workload.Config{N: 6, D: 3, Rounds: 30, Rate: 8, Seed: 1})
	res := core.Run(NewFix(), tr)
	roundsWithArrivals := 0
	for _, rs := range tr.Arrivals {
		if len(rs) > 0 {
			roundsWithArrivals++
		}
	}
	if res.CommRounds > 2*roundsWithArrivals {
		t.Fatalf("comm rounds %d exceed 2 per arrival round (%d)", res.CommRounds, roundsWithArrivals)
	}
	if res.Messages == 0 {
		t.Fatal("no messages accounted")
	}
}

func TestLocalFixWithinUpperBoundTwo(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tr := workload.Uniform(workload.Config{N: 5, D: 3, Rounds: 30, Rate: 8, Seed: seed})
		res := core.Run(NewFix(), tr)
		opt := offline.Optimum(tr)
		slack := float64(tr.N * tr.D)
		if float64(opt) > 2*float64(res.Fulfilled)+slack {
			t.Fatalf("seed %d: OPT %d > 2*%d + %.0f", seed, opt, res.Fulfilled, slack)
		}
	}
}

func TestLocalEagerValidAndWithinFiveThirds(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, mk := range []func() core.Strategy{
			func() core.Strategy { return NewEager() },
			func() core.Strategy { return NewEagerWide() },
		} {
			tr := workload.Uniform(workload.Config{N: 5, D: 4, Rounds: 30, Rate: 9, Seed: seed})
			s := mk()
			res := core.Run(s, tr)
			if err := core.ValidateLog(tr, res.Log); err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
			opt := offline.Optimum(tr)
			slack := float64(tr.N * tr.D)
			if float64(opt) > 5.0/3.0*float64(res.Fulfilled)+slack {
				t.Fatalf("%s seed %d: OPT %d > 5/3*%d + %.0f",
					s.Name(), seed, opt, res.Fulfilled, slack)
			}
		}
	}
}

func TestLocalEagerWithinFiveThirdsOnAdversarialInputs(t *testing.T) {
	cases := []adversary.Construction{
		adversary.LocalFix(4, 20),
		adversary.Fix(4, 20),
		adversary.Eager(4, 20),
		adversary.FixBalance(4, 20),
	}
	for _, c := range cases {
		res := core.Run(NewEager(), c.Trace)
		if err := core.ValidateLog(c.Trace, res.Log); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		opt := offline.Optimum(c.Trace)
		slack := float64(c.Trace.N * c.Trace.D * 2)
		if float64(opt) > 5.0/3.0*float64(res.Fulfilled)+slack {
			t.Fatalf("on %s: OPT %d ALG %d exceeds 5/3", c.Name, opt, res.Fulfilled)
		}
	}
}

func TestLocalEagerBeatsLocalFixOnTheorem37(t *testing.T) {
	// The rescheduling phases must recover part of R3 that A_local_fix
	// loses entirely.
	c := adversary.LocalFix(4, 25)
	fix := core.Run(NewFix(), c.Trace)
	eager := core.Run(NewEager(), c.Trace)
	if eager.Fulfilled <= fix.Fulfilled {
		t.Fatalf("local eager %d should beat local fix %d", eager.Fulfilled, fix.Fulfilled)
	}
}

func TestLocalEagerCommRoundBudget(t *testing.T) {
	tr := workload.Uniform(workload.Config{N: 6, D: 4, Rounds: 40, Rate: 10, Seed: 3})
	horizon := tr.Horizon()
	res := core.Run(NewEager(), tr)
	if res.CommRounds > 9*horizon {
		t.Fatalf("comm rounds %d exceed 9 per scheduling round (%d rounds)", res.CommRounds, horizon)
	}
	wide := core.Run(NewEagerWide(), tr)
	if wide.CommRounds > 8*horizon {
		t.Fatalf("wide variant comm rounds %d exceed 8 per scheduling round", wide.CommRounds)
	}
}

func TestLocalEagerNoIdleCurrentSlotWithPulledRequest(t *testing.T) {
	// Phase 2 property: if a resource's current slot is idle at service time
	// while some request scheduled at a *future* slot of another resource
	// names it, Phase 2 should have moved one such request forward. We
	// verify a weaker, checkable form: on a two-resource workload where one
	// resource is systematically preferred, the other resource still serves
	// requests (pull-forward works).
	b := core.NewBuilder(2, 3)
	for t0 := 0; t0 < 10; t0++ {
		// Two requests per round, both listing resource 0 first.
		b.Add(t0, 0, 1)
		b.Add(t0, 0, 1)
	}
	tr := b.Build()
	res := core.Run(NewEager(), tr)
	if res.PerResource[1] == 0 {
		t.Fatal("phase 2 never moved a request to the idle resource")
	}
	if res.Fulfilled != tr.NumRequests() {
		t.Fatalf("fulfilled %d of %d; pull-forward should serve all", res.Fulfilled, tr.NumRequests())
	}
}

func TestLocalStrategiesDeterministic(t *testing.T) {
	tr := workload.Zipf(workload.Config{N: 6, D: 3, Rounds: 25, Rate: 8, Seed: 9}, 1.4)
	for _, mk := range []func() core.Strategy{
		func() core.Strategy { return NewFix() },
		func() core.Strategy { return NewEager() },
	} {
		a := core.Run(mk(), tr)
		b := core.Run(mk(), tr)
		if a.Fulfilled != b.Fulfilled || a.CommRounds != b.CommRounds || a.Messages != b.Messages {
			t.Fatalf("%s not deterministic", mk().Name())
		}
	}
}

func TestLocalFixSingleAlternativeRequests(t *testing.T) {
	// Requests with one alternative are legal: they only get the first
	// communication round.
	b := core.NewBuilder(2, 2)
	b.Add(0, 0)
	b.Add(0, 0)
	b.Add(0, 0) // third cannot fit (2 slots on resource 0)
	tr := b.Build()
	res := core.Run(NewFix(), tr)
	if res.Fulfilled != 2 {
		t.Fatalf("fulfilled %d want 2", res.Fulfilled)
	}
}

func TestLocalEagerMixedDeadlines(t *testing.T) {
	b := core.NewBuilder(3, 4)
	b.AddWindow(0, 1, 0, 1)
	b.AddWindow(0, 4, 0, 1)
	b.AddWindow(0, 2, 1, 2)
	b.AddWindow(1, 3, 2, 0)
	tr := b.Build()
	res := core.Run(NewEager(), tr)
	if err := core.ValidateLog(tr, res.Log); err != nil {
		t.Fatal(err)
	}
	if res.Fulfilled != 4 {
		t.Fatalf("fulfilled %d want 4", res.Fulfilled)
	}
}

func TestLocalFixTranscriptOnTheorem37(t *testing.T) {
	// Per interval the transcript must show exactly the proof's traffic:
	// communication round 1 carries 4d messages (R1, R2 to their first
	// alternatives, R3's 2d to S1) of which 2d are dropped at S1's mailbox;
	// round 2 carries the 2d failed R3 requests to S3, half dropped.
	d := 4
	c := adversary.LocalFix(d, 3)
	s := NewFix()
	s.EnableTranscript()
	core.Run(s, c.Trace)
	rounds := s.Transcript()
	if len(rounds) != 6 { // 2 per interval, 3 intervals
		t.Fatalf("transcript has %d comm rounds, want 6", len(rounds))
	}
	for i := 0; i < len(rounds); i += 2 {
		cr1, cr2 := rounds[i], rounds[i+1]
		if cr1.Sent != 4*d || cr1.Dropped != 2*d || cr1.Busiest != 3*d {
			t.Fatalf("interval %d round 1: %+v", i/2, cr1)
		}
		if cr2.Sent != 2*d || cr2.Dropped != d {
			t.Fatalf("interval %d round 2: %+v", i/2, cr2)
		}
	}
}

func TestTranscriptDisabledByDefault(t *testing.T) {
	s := NewFix()
	core.Run(s, adversary.LocalFix(2, 2).Trace)
	if s.Transcript() != nil {
		t.Fatal("transcript recorded without being enabled")
	}
}

func TestLocalEagerTranscriptBounded(t *testing.T) {
	tr := workload.Uniform(workload.Config{N: 5, D: 3, Rounds: 20, Rate: 8, Seed: 4})
	s := NewEager()
	s.EnableTranscript()
	res := core.Run(s, tr)
	rounds := s.Transcript()
	if len(rounds) != res.CommRounds {
		t.Fatalf("transcript %d rounds, accounting says %d", len(rounds), res.CommRounds)
	}
	sent := 0
	for _, cr := range rounds {
		sent += cr.Sent
		if cr.Delivered+cr.Dropped != cr.Sent {
			t.Fatalf("round accounting broken: %+v", cr)
		}
	}
	if sent != res.Messages {
		t.Fatalf("transcript total %d, accounting %d", sent, res.Messages)
	}
}
