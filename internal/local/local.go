// Package local implements the paper's distributed scheduling strategies
// (Section 3.2): A_local_fix (two communication rounds per scheduling round,
// exactly 2-competitive, Theorem 3.7) and A_local_eager (three phases, at
// most nine communication rounds, 5/3-competitive, Theorem 3.8). Both are
// built on the message-passing substrate of internal/commnet: requests know
// nothing about each other and learn about the resources' state only through
// capped message exchanges.
package local

import (
	"sort"

	"reqsched/internal/commnet"
	"reqsched/internal/core"
)

// accept performs a resource's local admission: it matches a maximal number
// of the received requests to its free slots, assigning earliest-deadline
// requests to earliest slots (the locally optimal rule), and returns the
// rejected remainder. The resource only ever inspects its own slots.
func accept(w *core.Window, res int, msgs []commnet.Msg) (rejected []commnet.Msg) {
	if len(msgs) == 0 {
		return nil
	}
	byDeadline := append([]commnet.Msg(nil), msgs...)
	sort.SliceStable(byDeadline, func(a, b int) bool {
		da, db := byDeadline[a].Req.Deadline(), byDeadline[b].Req.Deadline()
		if da != db {
			return da < db
		}
		return byDeadline[a].Req.ID < byDeadline[b].Req.ID
	})
	for _, m := range byDeadline {
		if round, ok := earliestFree(w, res, m.Req); ok {
			w.Assign(m.Req, res, round)
		} else {
			rejected = append(rejected, m)
		}
	}
	return rejected
}

// earliestFree returns the earliest free slot of resource res usable by r.
func earliestFree(w *core.Window, res int, r *core.Request) (int, bool) {
	last := r.Deadline()
	if max := w.Round() + w.Depth() - 1; last > max {
		last = max
	}
	for round := w.Round(); round <= last; round++ {
		if w.Free(res, round) {
			return round, true
		}
	}
	return 0, false
}

// transcripting is embedded by the local strategies to optionally record
// per-communication-round summaries and inject message loss.
type transcripting struct {
	record   bool
	lossRate float64
	lossSeed int64
	nw       *commnet.Network
}

// InjectLoss makes every message of the next run vanish in transit with the
// given probability (failure injection; deterministic per seed). Lost
// messages are silent: the affected request simply never hears back this
// scheduling round, which degrades throughput but can never produce an
// invalid schedule.
func (tp *transcripting) InjectLoss(rate float64, seed int64) {
	tp.lossRate = rate
	tp.lossSeed = seed
}

// MessagesLost returns the number of messages lost in transit in the last
// run.
func (tp *transcripting) MessagesLost() int {
	if tp.nw == nil {
		return 0
	}
	return tp.nw.Lost()
}

// EnableTranscript makes the next run record per-communication-round
// summaries, retrievable with Transcript after the run.
func (tp *transcripting) EnableTranscript() { tp.record = true }

// Transcript returns the recorded communication-round summaries of the last
// run (nil unless EnableTranscript was called before it).
func (tp *transcripting) Transcript() []commnet.CommRound {
	if tp.nw == nil {
		return nil
	}
	return tp.nw.TranscriptRounds()
}

func (tp *transcripting) begin(n, cap int) *commnet.Network {
	tp.nw = commnet.New(n, cap)
	if tp.record {
		tp.nw.StartTranscript()
	}
	if tp.lossRate > 0 {
		tp.nw.InjectLoss(tp.lossRate, tp.lossSeed)
	}
	return tp.nw
}

// Fix is A_local_fix: each new request is sent to its first alternative
// resource, which admits at most d messages (LDF) and accepts a maximal
// subset into its free slots; rejected and dropped requests try their second
// alternative in a second communication round. Requests that fail both stay
// unscheduled forever (no rescheduling, like A_fix). Exactly 2-competitive
// (Theorem 3.7), two communication rounds per scheduling round.
type Fix struct {
	transcripting
}

// NewFix returns the A_local_fix strategy.
func NewFix() *Fix { return &Fix{} }

// Name implements core.Strategy.
func (*Fix) Name() string { return "A_local_fix" }

// Begin implements core.Strategy.
func (s *Fix) Begin(n, d int) { s.begin(n, d) }

// CommTotals implements core.CommAccountant.
func (s *Fix) CommTotals() (rounds, messages int) { return s.nw.Totals() }

// Round implements core.Strategy.
func (s *Fix) Round(ctx *core.RoundContext) {
	failed := sendToAlternative(s.nw, ctx, ctx.Arrivals, 0)
	sendToAlternative(s.nw, ctx, failed, 1)
}

// sendToAlternative runs one communication round: each request is sent to
// its alternative with the given index (requests without one fail
// immediately); resources admit and accept; the failures are returned in ID
// order.
func sendToAlternative(nw *commnet.Network, ctx *core.RoundContext, reqs []*core.Request, alt int) []*core.Request {
	to := make([][]commnet.Msg, ctx.N)
	var failed []*core.Request
	for _, r := range reqs {
		if alt >= len(r.Alts) {
			failed = append(failed, r)
			continue
		}
		dest := r.Alts[alt]
		to[dest] = append(to[dest], commnet.Msg{Req: r})
	}
	received, dropped := nw.Deliver(to)
	for i := 0; i < ctx.N; i++ {
		for _, m := range accept(ctx.W, i, received[i]) {
			failed = append(failed, m.Req)
		}
		for _, m := range dropped[i] {
			failed = append(failed, m.Req)
		}
	}
	sort.Slice(failed, func(a, b int) bool { return failed[a].ID < failed[b].ID })
	return failed
}
