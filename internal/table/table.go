// Package table regenerates the paper's Table 1: for every strategy row it
// runs the matching lower-bound adversary, measures OPT/ALG, and pairs the
// measurement with the proven lower and upper bounds. Used by cmd/table1 and
// the benchmark harness.
package table

import (
	"fmt"
	"strings"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/local"
	"reqsched/internal/ratio"
	"reqsched/internal/strategies"
)

func localFix() core.Strategy   { return local.NewFix() }
func localEager() core.Strategy { return local.NewEager() }

// Entry is one measured cell of the Table 1 reproduction.
type Entry struct {
	Row      string // strategy name (Table 1 row)
	Param    string // the construction's natural parameter, e.g. "d=4"
	Theorem  string
	D        int
	OPT, ALG int
	ProvenLB float64
	LBNote   string // "asympt." when the proven LB is a limit
	ProvenUB float64
}

// Measured returns the empirical ratio OPT/ALG.
func (e Entry) Measured() float64 {
	if e.ALG == 0 {
		return 0
	}
	return float64(e.OPT) / float64(e.ALG)
}

// Config controls the reproduction's scale.
type Config struct {
	// Phases is the number of adversary phases/intervals (the additive
	// constant washes out as it grows).
	Phases int
	// Groups is the group count for the Theorem 2.5 construction (its
	// bound holds in the limit of many groups).
	Groups int
}

// DefaultConfig returns the scale used by cmd/table1 and the benches.
func DefaultConfig() Config { return Config{Phases: 40, Groups: 32} }

func entry(row, param, theorem string, d int, m ratio.Measurement) Entry {
	lb, asym, _ := strategies.LowerBound(row, d)
	ub, _ := strategies.UpperBound(row, d)
	note := ""
	if asym {
		note = "asympt."
	}
	return Entry{
		Row: row, Param: param, Theorem: theorem, D: d,
		OPT: m.OPT, ALG: m.ALG,
		ProvenLB: lb, LBNote: note, ProvenUB: ub,
	}
}

// Rows measures every Table 1 row on its lower-bound construction across a
// spread of deadline windows.
func Rows(cfg Config) []Entry {
	var out []Entry

	// Row 1: A_fix, Theorem 2.1, LB = UB = 2 - 1/d.
	for _, d := range []int{2, 3, 4, 8, 16} {
		m := ratio.MeasureConstruction(adversary.Fix(d, cfg.Phases), strategies.NewFix())
		out = append(out, entry("A_fix", fmt.Sprintf("d=%d", d), "Thm 2.1", d, m))
	}

	// Row 2: A_current. d=2 via the Theorem 2.4 construction; growing l via
	// Theorem 2.2 (d = lcm(1..l)), converging to e/(e-1).
	m := ratio.MeasureConstruction(adversary.Eager(2, cfg.Phases), strategies.NewCurrent())
	out = append(out, entry("A_current", "d=2", "Thm 2.4", 2, m))
	for _, l := range []int{3, 4, 5, 6} {
		c := adversary.Current(l, max(2, cfg.Phases/8))
		m := ratio.MeasureConstruction(c, strategies.NewCurrent())
		out = append(out, entry("A_current", fmt.Sprintf("l=%d,d=%d", l, c.D), "Thm 2.2", c.D, m))
	}

	// Row 3: A_fix_balance. d=2 via Theorem 2.4; even d via Theorem 2.3.
	m = ratio.MeasureConstruction(adversary.Eager(2, cfg.Phases), strategies.NewFixBalance())
	out = append(out, entry("A_fix_balance", "d=2", "Thm 2.4", 2, m))
	for _, d := range []int{4, 8, 12, 16} {
		m := ratio.MeasureConstruction(adversary.FixBalance(d, cfg.Phases), strategies.NewFixBalance())
		out = append(out, entry("A_fix_balance", fmt.Sprintf("d=%d", d), "Thm 2.3", d, m))
	}

	// Row 4: A_eager, Theorem 2.4, LB 4/3 for all d.
	for _, d := range []int{2, 4, 8, 16} {
		m := ratio.MeasureConstruction(adversary.Eager(d, cfg.Phases), strategies.NewEager())
		out = append(out, entry("A_eager", fmt.Sprintf("d=%d", d), "Thm 2.4", d, m))
	}

	// Row 5: A_balance. d=2 via Theorem 2.4; d=3x-1 via Theorem 2.5.
	m = ratio.MeasureConstruction(adversary.Eager(2, cfg.Phases), strategies.NewBalance())
	out = append(out, entry("A_balance", "d=2", "Thm 2.4", 2, m))
	for _, x := range []int{1, 2, 3, 4} {
		d := 3*x - 1
		c := adversary.Balance(x, cfg.Groups, cfg.Phases)
		m := ratio.MeasureConstruction(c, strategies.NewBalance())
		out = append(out, entry("A_balance", fmt.Sprintf("x=%d,k=%d", x, cfg.Groups), "Thm 2.5", d, m))
	}

	// Row 6: the universal adversary versus every deterministic strategy.
	for _, s := range allUniversalTargets() {
		c := adversary.Universal(6, max(5, cfg.Phases/2))
		m := ratio.MeasureConstruction(c, s)
		e := entry(s.Name(), "d=6", "Thm 2.6", 6, m)
		e.Row = "any (" + s.Name() + ")"
		e.ProvenLB = strategies.UniversalLowerBound()
		e.LBNote = "universal"
		out = append(out, e)
	}
	return out
}

// LocalRows measures the local strategies (Theorems 3.7, 3.8).
func LocalRows(cfg Config) []Entry {
	var out []Entry
	for _, d := range []int{2, 4, 8} {
		m := ratio.MeasureConstruction(adversary.LocalFix(d, cfg.Phases), localFix())
		out = append(out, entry("A_local_fix", fmt.Sprintf("d=%d", d), "Thm 3.7", d, m))
	}
	for _, d := range []int{2, 4, 8} {
		m := ratio.MeasureConstruction(adversary.LocalFix(d, cfg.Phases), localEager())
		e := entry("A_local_eager", fmt.Sprintf("d=%d", d), "Thm 3.8", d, m)
		out = append(out, e)
	}
	// EDF's exactly-2 family (Observation 3.2).
	for _, d := range []int{2, 4} {
		m := ratio.MeasureConstruction(adversary.EDFWorstCase(d, cfg.Phases), strategies.NewEDF())
		out = append(out, entry("EDF", fmt.Sprintf("d=%d", d), "Obs 3.2", d, m))
	}
	return out
}

// Format renders entries as an aligned text table.
func Format(entries []Entry) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-12s %-9s %8s %8s %9s %9s %-8s %9s %s\n",
		"strategy", "param", "theorem", "OPT", "ALG", "measured", "provenLB", "", "provenUB", "UB ok")
	for _, e := range entries {
		ok := "yes"
		if e.ProvenUB > 0 && e.Measured() > e.ProvenUB+1e-9 {
			ok = "VIOLATED"
		}
		lb := fmt.Sprintf("%9.4f", e.ProvenLB)
		if e.ProvenLB == 0 {
			lb = "        —" // the paper proves no lower bound for this row
		}
		fmt.Fprintf(&sb, "%-22s %-12s %-9s %8d %8d %9.4f %s %-8s %9.4f %s\n",
			e.Row, e.Param, e.Theorem, e.OPT, e.ALG, e.Measured(), lb, e.LBNote, e.ProvenUB, ok)
	}
	return sb.String()
}

func allUniversalTargets() []core.Strategy {
	out := strategies.Global()
	out = append(out, strategies.NewEDF(), strategies.NewFirstFit())
	out = append(out, localFix(), localEager())
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
