// Package table regenerates the paper's Table 1: for every strategy row it
// runs the matching lower-bound adversary, measures OPT/ALG, and pairs the
// measurement with the proven lower and upper bounds. Used by cmd/table1 and
// the benchmark harness. Every row is a registry record (strategy name,
// adversary name, params) measured through the same grid manifest pipeline
// as cmd/sweep, so a row is reproducible from its labels alone.
package table

import (
	"fmt"
	"strings"

	"reqsched/internal/adversary"
	"reqsched/internal/grid"
	"reqsched/internal/ratio"
	"reqsched/internal/registry"
	"reqsched/internal/strategies"
)

// Entry is one measured cell of the Table 1 reproduction.
type Entry struct {
	Row      string // strategy name (Table 1 row)
	Param    string // the construction's natural parameter, e.g. "d=4"
	Theorem  string
	D        int
	OPT, ALG int
	ProvenLB float64
	LBNote   string // "asympt." when the proven LB is a limit
	ProvenUB float64
}

// Measured returns the empirical ratio OPT/ALG.
func (e Entry) Measured() float64 {
	if e.ALG == 0 {
		return 0
	}
	return float64(e.OPT) / float64(e.ALG)
}

// Config controls the reproduction's scale.
type Config struct {
	// Phases is the number of adversary phases/intervals (the additive
	// constant washes out as it grows).
	Phases int
	// Groups is the group count for the Theorem 2.5 construction (its
	// bound holds in the limit of many groups).
	Groups int
}

// DefaultConfig returns the scale used by cmd/table1 and the benches.
func DefaultConfig() Config { return Config{Phases: 40, Groups: 32} }

func entry(row, param, theorem string, d int, m ratio.Measurement) Entry {
	lb, asym, _ := strategies.LowerBound(row, d)
	ub, _ := strategies.UpperBound(row, d)
	note := ""
	if asym {
		note = "asympt."
	}
	return Entry{
		Row: row, Param: param, Theorem: theorem, D: d,
		OPT: m.OPT, ALG: m.ALG,
		ProvenLB: lb, LBNote: note, ProvenUB: ub,
	}
}

// rowSpec is one Table 1 cell, declared once as a registry record — strategy
// and adversary by name plus the construction's parameters — and measured
// either serially or on the ratio worker pool through the grid manifest
// pipeline. Both execution paths share the same spec list, so their output is
// identical by construction.
type rowSpec struct {
	row, param, theorem string
	d                   int
	strategy, source    string
	params              registry.Params
	// universal marks Row 6 cells: relabel "any (strategy)" and attach the
	// universal lower bound instead of the strategy's own.
	universal bool
	// bounds overrides the strategies.LowerBound/UpperBound lookup — the
	// service-model rows' greedy bounds come from the reusable-resources
	// literature, not the paper's Table 1.
	bounds bool
	lb, ub float64
	lbNote string
}

func iv(v int) registry.Value { return registry.IntVal(int64(v)) }

// rowSpecs declares every Table 1 row on its lower-bound construction across
// a spread of deadline windows.
func rowSpecs(cfg Config) []rowSpec {
	var specs []rowSpec
	add := func(row, param, theorem string, d int, source string, params registry.Params) {
		specs = append(specs, rowSpec{row: row, param: param, theorem: theorem,
			d: d, strategy: row, source: source, params: params})
	}

	// Row 1: A_fix, Theorem 2.1, LB = UB = 2 - 1/d.
	for _, d := range []int{2, 3, 4, 8, 16} {
		add("A_fix", fmt.Sprintf("d=%d", d), "Thm 2.1", d,
			"fix", registry.Params{"d": iv(d), "phases": iv(cfg.Phases)})
	}

	// Row 2: A_current. d=2 via the Theorem 2.4 construction; growing l via
	// Theorem 2.2 (d = lcm(1..l)), converging to e/(e-1).
	add("A_current", "d=2", "Thm 2.4", 2,
		"eager", registry.Params{"d": iv(2), "phases": iv(cfg.Phases)})
	for _, l := range []int{3, 4, 5, 6} {
		d := adversary.Current(l, 2).D // d = lcm(1..l), read off a throwaway build
		add("A_current", fmt.Sprintf("l=%d,d=%d", l, d), "Thm 2.2", d,
			"current", registry.Params{"l": iv(l), "phases": iv(max(2, cfg.Phases/8))})
	}

	// Row 3: A_fix_balance. d=2 via Theorem 2.4; even d via Theorem 2.3.
	add("A_fix_balance", "d=2", "Thm 2.4", 2,
		"eager", registry.Params{"d": iv(2), "phases": iv(cfg.Phases)})
	for _, d := range []int{4, 8, 12, 16} {
		add("A_fix_balance", fmt.Sprintf("d=%d", d), "Thm 2.3", d,
			"fix_balance", registry.Params{"d": iv(d), "phases": iv(cfg.Phases)})
	}

	// Row 4: A_eager, Theorem 2.4, LB 4/3 for all d.
	for _, d := range []int{2, 4, 8, 16} {
		add("A_eager", fmt.Sprintf("d=%d", d), "Thm 2.4", d,
			"eager", registry.Params{"d": iv(d), "phases": iv(cfg.Phases)})
	}

	// Row 5: A_balance. d=2 via Theorem 2.4; d=3x-1 via Theorem 2.5.
	add("A_balance", "d=2", "Thm 2.4", 2,
		"eager", registry.Params{"d": iv(2), "phases": iv(cfg.Phases)})
	for _, x := range []int{1, 2, 3, 4} {
		d := 3*x - 1
		add("A_balance", fmt.Sprintf("x=%d,k=%d", x, cfg.Groups), "Thm 2.5", d,
			"balance", registry.Params{"x": iv(x), "k": iv(cfg.Groups), "phases": iv(cfg.Phases)})
	}

	// Row 6: the universal adversary versus every deterministic strategy.
	for _, name := range universalTargets() {
		specs = append(specs, rowSpec{
			row: name, param: "d=6", theorem: "Thm 2.6", d: 6,
			strategy: name, source: "universal",
			params:    registry.Params{"d": iv(6), "phases": iv(max(5, cfg.Phases/2))},
			universal: true,
		})
	}
	return specs
}

// localRowSpecs declares the local-strategy rows (Theorems 3.7, 3.8) and
// EDF's exactly-2 family (Observation 3.2).
func localRowSpecs(cfg Config) []rowSpec {
	var specs []rowSpec
	for _, d := range []int{2, 4, 8} {
		specs = append(specs, rowSpec{
			row: "A_local_fix", param: fmt.Sprintf("d=%d", d), theorem: "Thm 3.7", d: d,
			strategy: "A_local_fix", source: "local_fix",
			params: registry.Params{"d": iv(d), "phases": iv(cfg.Phases)},
		})
	}
	for _, d := range []int{2, 4, 8} {
		specs = append(specs, rowSpec{
			row: "A_local_eager", param: fmt.Sprintf("d=%d", d), theorem: "Thm 3.8", d: d,
			strategy: "A_local_eager", source: "local_fix",
			params: registry.Params{"d": iv(d), "phases": iv(cfg.Phases)},
		})
	}
	for _, d := range []int{2, 4} {
		specs = append(specs, rowSpec{
			row: "EDF", param: fmt.Sprintf("d=%d", d), theorem: "Obs 3.2", d: d,
			strategy: "EDF", source: "edf",
			params: registry.Params{"d": iv(d), "phases": iv(cfg.Phases)},
		})
	}
	return specs
}

// modelRowSpecs declares the reusable-resources rows: the greedy router under
// hold=k service models. The hold_squeeze construction forces the greedy /
// maximal-matching charging-argument factor 2 exactly (each hold window
// absorbs at most cap optimal starts); the Baek–Wang analysis (arXiv
// 2304.03377) sharpens the guarantee in the windowless reusable model, so
// the reusable-workload rows report how far below 2 greedy sits on stochastic
// traffic at the same hold.
func modelRowSpecs(cfg Config) []rowSpec {
	const greedy = "compose,router=greedy"
	var specs []rowSpec
	for _, h := range []int{2, 4, 8} {
		specs = append(specs, rowSpec{
			row: "greedy", param: fmt.Sprintf("hold=%d", h), theorem: "charging", d: h - 1,
			strategy: greedy, source: "hold_squeeze",
			params: registry.Params{"hold": iv(h), "phases": iv(cfg.Phases)},
			bounds: true, lb: 2, ub: 2, lbNote: "exact",
		})
	}
	for _, h := range []int{2, 4, 8} {
		specs = append(specs, rowSpec{
			row: "greedy", param: fmt.Sprintf("hold=%d,cap=2", h), theorem: "BW 23", d: 4,
			strategy: greedy, source: "reusable",
			params: registry.Params{
				"n": iv(8), "d": iv(4), "rounds": iv(300), "seed": iv(1),
				"hold": iv(h), "cap": iv(2),
			},
			bounds: true, ub: 2,
		})
	}
	return specs
}

// measureSpecs resolves the specs into a grid manifest and measures it on the
// ratio worker pool (workers <= 0: GOMAXPROCS; 1: serial), converting the
// measurements, in spec order, into entries. Every job is independent and
// deterministic, so the output does not depend on workers.
func measureSpecs(specs []rowSpec, workers int) ([]Entry, error) {
	gspecs := make([]grid.Spec, len(specs))
	names := make([]string, len(specs))
	for i, sp := range specs {
		gs, err := grid.SpecFor(sp.strategy, sp.source, sp.params)
		if err != nil {
			return nil, fmt.Errorf("table: row %s %s: %w", sp.row, sp.param, err)
		}
		gspecs[i] = gs
		names[i] = sp.row + " " + sp.param
	}
	jobs, err := grid.BuildManifest(gspecs, names)
	if err != nil {
		return nil, err
	}
	ms, err := ratio.RunParallelChecked(grid.RatioJobs(jobs), workers)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, len(specs))
	for i, sp := range specs {
		e := entry(sp.row, sp.param, sp.theorem, sp.d, ms[i])
		if sp.universal {
			e.Row = "any (" + sp.row + ")"
			e.ProvenLB = strategies.UniversalLowerBound()
			e.LBNote = "universal"
		}
		if sp.bounds {
			e.ProvenLB, e.ProvenUB, e.LBNote = sp.lb, sp.ub, sp.lbNote
		}
		out[i] = e
	}
	return out, nil
}

// Rows measures every Table 1 row on its lower-bound construction across a
// spread of deadline windows, serially.
func Rows(cfg Config) []Entry {
	out, err := measureSpecs(rowSpecs(cfg), 1)
	if err != nil {
		panic(err)
	}
	return out
}

// RowsParallel is Rows on the ratio worker pool: identical entries (every
// cell is an independent deterministic measurement), job panics surfaced as
// an error instead of taking the harness down.
func RowsParallel(cfg Config, workers int) ([]Entry, error) {
	return measureSpecs(rowSpecs(cfg), workers)
}

// LocalRows measures the local strategies (Theorems 3.7, 3.8), serially.
func LocalRows(cfg Config) []Entry {
	out, err := measureSpecs(localRowSpecs(cfg), 1)
	if err != nil {
		panic(err)
	}
	return out
}

// LocalRowsParallel is LocalRows on the ratio worker pool.
func LocalRowsParallel(cfg Config, workers int) ([]Entry, error) {
	return measureSpecs(localRowSpecs(cfg), workers)
}

// ModelRows measures the reusable-resources rows (greedy under hold=k
// service models), serially.
func ModelRows(cfg Config) []Entry {
	out, err := measureSpecs(modelRowSpecs(cfg), 1)
	if err != nil {
		panic(err)
	}
	return out
}

// ModelRowsParallel is ModelRows on the ratio worker pool.
func ModelRowsParallel(cfg Config, workers int) ([]Entry, error) {
	return measureSpecs(modelRowSpecs(cfg), workers)
}

// Format renders entries as an aligned text table.
func Format(entries []Entry) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-12s %-9s %8s %8s %9s %9s %-8s %9s %s\n",
		"strategy", "param", "theorem", "OPT", "ALG", "measured", "provenLB", "", "provenUB", "UB ok")
	for _, e := range entries {
		ok := "yes"
		if e.ProvenUB > 0 && e.Measured() > e.ProvenUB+1e-9 {
			ok = "VIOLATED"
		}
		lb := fmt.Sprintf("%9.4f", e.ProvenLB)
		if e.ProvenLB == 0 {
			lb = "        —" // the paper proves no lower bound for this row
		}
		fmt.Fprintf(&sb, "%-22s %-12s %-9s %8d %8d %9.4f %s %-8s %9.4f %s\n",
			e.Row, e.Param, e.Theorem, e.OPT, e.ALG, e.Measured(), lb, e.LBNote, e.ProvenUB, ok)
	}
	return sb.String()
}

// universalTargets lists every deterministic strategy Row 6 pits against the
// universal adversary, in the paper's row order.
func universalTargets() []string {
	return []string{
		"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance",
		"EDF", "first_fit", "A_local_fix", "A_local_eager",
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
