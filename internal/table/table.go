// Package table regenerates the paper's Table 1: for every strategy row it
// runs the matching lower-bound adversary, measures OPT/ALG, and pairs the
// measurement with the proven lower and upper bounds. Used by cmd/table1 and
// the benchmark harness.
package table

import (
	"fmt"
	"strings"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/local"
	"reqsched/internal/ratio"
	"reqsched/internal/strategies"
)

func localFix() core.Strategy   { return local.NewFix() }
func localEager() core.Strategy { return local.NewEager() }

// Entry is one measured cell of the Table 1 reproduction.
type Entry struct {
	Row      string // strategy name (Table 1 row)
	Param    string // the construction's natural parameter, e.g. "d=4"
	Theorem  string
	D        int
	OPT, ALG int
	ProvenLB float64
	LBNote   string // "asympt." when the proven LB is a limit
	ProvenUB float64
}

// Measured returns the empirical ratio OPT/ALG.
func (e Entry) Measured() float64 {
	if e.ALG == 0 {
		return 0
	}
	return float64(e.OPT) / float64(e.ALG)
}

// Config controls the reproduction's scale.
type Config struct {
	// Phases is the number of adversary phases/intervals (the additive
	// constant washes out as it grows).
	Phases int
	// Groups is the group count for the Theorem 2.5 construction (its
	// bound holds in the limit of many groups).
	Groups int
}

// DefaultConfig returns the scale used by cmd/table1 and the benches.
func DefaultConfig() Config { return Config{Phases: 40, Groups: 32} }

func entry(row, param, theorem string, d int, m ratio.Measurement) Entry {
	lb, asym, _ := strategies.LowerBound(row, d)
	ub, _ := strategies.UpperBound(row, d)
	note := ""
	if asym {
		note = "asympt."
	}
	return Entry{
		Row: row, Param: param, Theorem: theorem, D: d,
		OPT: m.OPT, ALG: m.ALG,
		ProvenLB: lb, LBNote: note, ProvenUB: ub,
	}
}

// rowSpec is one Table 1 cell, declared once and measured either serially or
// on the ratio worker pool: the construction and strategy factories a
// ratio.Job needs (factories, because adaptive sources and strategies are
// stateful), plus the labels entry() attaches. Both execution paths share the
// same spec list, so their output is identical by construction.
type rowSpec struct {
	row, param, theorem string
	d                   int
	build               func() adversary.Construction
	strategy            func() core.Strategy
	// universal marks Row 6 cells: relabel "any (strategy)" and attach the
	// universal lower bound instead of the strategy's own.
	universal bool
}

// rowSpecs declares every Table 1 row on its lower-bound construction across
// a spread of deadline windows.
func rowSpecs(cfg Config) []rowSpec {
	var specs []rowSpec
	add := func(row, param, theorem string, d int,
		build func() adversary.Construction, strategy func() core.Strategy) {
		specs = append(specs, rowSpec{row: row, param: param, theorem: theorem,
			d: d, build: build, strategy: strategy})
	}

	// Row 1: A_fix, Theorem 2.1, LB = UB = 2 - 1/d.
	for _, d := range []int{2, 3, 4, 8, 16} {
		add("A_fix", fmt.Sprintf("d=%d", d), "Thm 2.1", d,
			func() adversary.Construction { return adversary.Fix(d, cfg.Phases) },
			func() core.Strategy { return strategies.NewFix() })
	}

	// Row 2: A_current. d=2 via the Theorem 2.4 construction; growing l via
	// Theorem 2.2 (d = lcm(1..l)), converging to e/(e-1).
	add("A_current", "d=2", "Thm 2.4", 2,
		func() adversary.Construction { return adversary.Eager(2, cfg.Phases) },
		func() core.Strategy { return strategies.NewCurrent() })
	for _, l := range []int{3, 4, 5, 6} {
		d := adversary.Current(l, 2).D // d = lcm(1..l), read off a throwaway build
		add("A_current", fmt.Sprintf("l=%d,d=%d", l, d), "Thm 2.2", d,
			func() adversary.Construction { return adversary.Current(l, max(2, cfg.Phases/8)) },
			func() core.Strategy { return strategies.NewCurrent() })
	}

	// Row 3: A_fix_balance. d=2 via Theorem 2.4; even d via Theorem 2.3.
	add("A_fix_balance", "d=2", "Thm 2.4", 2,
		func() adversary.Construction { return adversary.Eager(2, cfg.Phases) },
		func() core.Strategy { return strategies.NewFixBalance() })
	for _, d := range []int{4, 8, 12, 16} {
		add("A_fix_balance", fmt.Sprintf("d=%d", d), "Thm 2.3", d,
			func() adversary.Construction { return adversary.FixBalance(d, cfg.Phases) },
			func() core.Strategy { return strategies.NewFixBalance() })
	}

	// Row 4: A_eager, Theorem 2.4, LB 4/3 for all d.
	for _, d := range []int{2, 4, 8, 16} {
		add("A_eager", fmt.Sprintf("d=%d", d), "Thm 2.4", d,
			func() adversary.Construction { return adversary.Eager(d, cfg.Phases) },
			func() core.Strategy { return strategies.NewEager() })
	}

	// Row 5: A_balance. d=2 via Theorem 2.4; d=3x-1 via Theorem 2.5.
	add("A_balance", "d=2", "Thm 2.4", 2,
		func() adversary.Construction { return adversary.Eager(2, cfg.Phases) },
		func() core.Strategy { return strategies.NewBalance() })
	for _, x := range []int{1, 2, 3, 4} {
		d := 3*x - 1
		add("A_balance", fmt.Sprintf("x=%d,k=%d", x, cfg.Groups), "Thm 2.5", d,
			func() adversary.Construction { return adversary.Balance(x, cfg.Groups, cfg.Phases) },
			func() core.Strategy { return strategies.NewBalance() })
	}

	// Row 6: the universal adversary versus every deterministic strategy.
	for _, mk := range universalTargets() {
		name := mk().Name()
		specs = append(specs, rowSpec{
			row: name, param: "d=6", theorem: "Thm 2.6", d: 6,
			build:    func() adversary.Construction { return adversary.Universal(6, max(5, cfg.Phases/2)) },
			strategy: mk, universal: true,
		})
	}
	return specs
}

// localRowSpecs declares the local-strategy rows (Theorems 3.7, 3.8) and
// EDF's exactly-2 family (Observation 3.2).
func localRowSpecs(cfg Config) []rowSpec {
	var specs []rowSpec
	for _, d := range []int{2, 4, 8} {
		specs = append(specs, rowSpec{
			row: "A_local_fix", param: fmt.Sprintf("d=%d", d), theorem: "Thm 3.7", d: d,
			build:    func() adversary.Construction { return adversary.LocalFix(d, cfg.Phases) },
			strategy: localFix,
		})
	}
	for _, d := range []int{2, 4, 8} {
		specs = append(specs, rowSpec{
			row: "A_local_eager", param: fmt.Sprintf("d=%d", d), theorem: "Thm 3.8", d: d,
			build:    func() adversary.Construction { return adversary.LocalFix(d, cfg.Phases) },
			strategy: localEager,
		})
	}
	for _, d := range []int{2, 4} {
		specs = append(specs, rowSpec{
			row: "EDF", param: fmt.Sprintf("d=%d", d), theorem: "Obs 3.2", d: d,
			build:    func() adversary.Construction { return adversary.EDFWorstCase(d, cfg.Phases) },
			strategy: func() core.Strategy { return strategies.NewEDF() },
		})
	}
	return specs
}

// measureSpecs measures the specs on the ratio worker pool (workers <= 0:
// GOMAXPROCS; 1: serial) and converts the measurements, in spec order, into
// entries. Every job is independent and deterministic, so the output does
// not depend on workers.
func measureSpecs(specs []rowSpec, workers int) ([]Entry, error) {
	jobs := make([]ratio.Job, len(specs))
	for i, sp := range specs {
		jobs[i] = ratio.Job{Name: sp.row + " " + sp.param, Build: sp.build, Strategy: sp.strategy}
	}
	ms, err := ratio.RunParallelChecked(jobs, workers)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, len(specs))
	for i, sp := range specs {
		e := entry(sp.row, sp.param, sp.theorem, sp.d, ms[i])
		if sp.universal {
			e.Row = "any (" + sp.row + ")"
			e.ProvenLB = strategies.UniversalLowerBound()
			e.LBNote = "universal"
		}
		out[i] = e
	}
	return out, nil
}

// Rows measures every Table 1 row on its lower-bound construction across a
// spread of deadline windows, serially.
func Rows(cfg Config) []Entry {
	out, err := measureSpecs(rowSpecs(cfg), 1)
	if err != nil {
		panic(err)
	}
	return out
}

// RowsParallel is Rows on the ratio worker pool: identical entries (every
// cell is an independent deterministic measurement), job panics surfaced as
// an error instead of taking the harness down.
func RowsParallel(cfg Config, workers int) ([]Entry, error) {
	return measureSpecs(rowSpecs(cfg), workers)
}

// LocalRows measures the local strategies (Theorems 3.7, 3.8), serially.
func LocalRows(cfg Config) []Entry {
	out, err := measureSpecs(localRowSpecs(cfg), 1)
	if err != nil {
		panic(err)
	}
	return out
}

// LocalRowsParallel is LocalRows on the ratio worker pool.
func LocalRowsParallel(cfg Config, workers int) ([]Entry, error) {
	return measureSpecs(localRowSpecs(cfg), workers)
}

// Format renders entries as an aligned text table.
func Format(entries []Entry) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-12s %-9s %8s %8s %9s %9s %-8s %9s %s\n",
		"strategy", "param", "theorem", "OPT", "ALG", "measured", "provenLB", "", "provenUB", "UB ok")
	for _, e := range entries {
		ok := "yes"
		if e.ProvenUB > 0 && e.Measured() > e.ProvenUB+1e-9 {
			ok = "VIOLATED"
		}
		lb := fmt.Sprintf("%9.4f", e.ProvenLB)
		if e.ProvenLB == 0 {
			lb = "        —" // the paper proves no lower bound for this row
		}
		fmt.Fprintf(&sb, "%-22s %-12s %-9s %8d %8d %9.4f %s %-8s %9.4f %s\n",
			e.Row, e.Param, e.Theorem, e.OPT, e.ALG, e.Measured(), lb, e.LBNote, e.ProvenUB, ok)
	}
	return sb.String()
}

// universalTargets lists factories for every deterministic strategy Row 6
// pits against the universal adversary — factories, because each measurement
// needs its own stateful instance.
func universalTargets() []func() core.Strategy {
	return []func() core.Strategy{
		func() core.Strategy { return strategies.NewFix() },
		func() core.Strategy { return strategies.NewCurrent() },
		func() core.Strategy { return strategies.NewFixBalance() },
		func() core.Strategy { return strategies.NewEager() },
		func() core.Strategy { return strategies.NewBalance() },
		func() core.Strategy { return strategies.NewEDF() },
		func() core.Strategy { return strategies.NewFirstFit() },
		localFix,
		localEager,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
