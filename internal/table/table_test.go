package table

import (
	"strings"
	"testing"
)

func smallConfig() Config { return Config{Phases: 16, Groups: 8} }

func TestRowsCoverEveryTableRow(t *testing.T) {
	entries := Rows(smallConfig())
	rows := map[string]bool{}
	for _, e := range entries {
		rows[e.Row] = true
	}
	for _, want := range []string{"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance"} {
		if !rows[want] {
			t.Errorf("missing row %s", want)
		}
	}
	universal := 0
	for name := range rows {
		if strings.HasPrefix(name, "any (") {
			universal++
		}
	}
	if universal < 5 {
		t.Errorf("universal row only covers %d strategies", universal)
	}
}

func TestRowsRespectUpperBounds(t *testing.T) {
	for _, e := range Rows(smallConfig()) {
		if e.ProvenUB == 0 {
			t.Errorf("%s %s: missing upper bound", e.Row, e.Param)
			continue
		}
		if e.Measured() > e.ProvenUB+1e-9 {
			t.Errorf("%s %s: measured %.4f exceeds UB %.4f", e.Row, e.Param, e.Measured(), e.ProvenUB)
		}
	}
}

func TestRowsApproachLowerBoundsFromBelow(t *testing.T) {
	// At modest phase counts the measurement sits below the proven LB but
	// within 20% of it for the non-asymptotic rows (the A_current l-rows
	// and the universal rows measure against limits, skip those).
	for _, e := range Rows(smallConfig()) {
		if e.LBNote != "" || e.ProvenLB == 0 {
			continue
		}
		if e.Measured() > e.ProvenLB+1e-9 {
			t.Errorf("%s %s: measured %.4f above proven LB %.4f",
				e.Row, e.Param, e.Measured(), e.ProvenLB)
		}
		if e.Measured() < e.ProvenLB*0.8 {
			t.Errorf("%s %s: measured %.4f too far below LB %.4f",
				e.Row, e.Param, e.Measured(), e.ProvenLB)
		}
	}
}

func TestLocalRows(t *testing.T) {
	entries := LocalRows(smallConfig())
	sawExactTwo := false
	for _, e := range entries {
		if e.Row == "A_local_fix" && e.Measured() == 2.0 {
			sawExactTwo = true
		}
		if e.Row == "A_local_eager" && e.Measured() > 5.0/3.0+1e-9 {
			t.Errorf("local eager %s: %.4f exceeds 5/3", e.Param, e.Measured())
		}
	}
	if !sawExactTwo {
		t.Error("A_local_fix never measured exactly 2 on its adversary")
	}
}

func TestFormatAlignsAndFlagsViolations(t *testing.T) {
	entries := []Entry{
		{Row: "A_fix", Param: "d=2", Theorem: "Thm", OPT: 3, ALG: 2, ProvenLB: 1.5, ProvenUB: 1.5},
		{Row: "bogus", Param: "d=2", Theorem: "Thm", OPT: 4, ALG: 2, ProvenLB: 1.5, ProvenUB: 1.5},
		{Row: "nolb", Param: "d=2", Theorem: "Thm", OPT: 2, ALG: 2, ProvenUB: 2},
	}
	out := Format(entries)
	if !strings.Contains(out, "VIOLATED") {
		t.Error("UB violation not flagged")
	}
	if !strings.Contains(out, "—") {
		t.Error("missing LB not rendered as dash")
	}
	if strings.Count(out, "\n") != 4 { // header + 3 rows
		t.Errorf("unexpected line count:\n%s", out)
	}
}

func TestEntryMeasuredZeroALG(t *testing.T) {
	e := Entry{OPT: 5, ALG: 0}
	if e.Measured() != 0 {
		t.Fatal("zero ALG should measure 0 (sentinel)")
	}
}

func TestRowsParallelEqualsRows(t *testing.T) {
	// Every cell is an independent deterministic measurement, so the parallel
	// harness must reproduce the serial entries exactly at any worker count.
	cfg := smallConfig()
	want := Rows(cfg)
	wantLocal := LocalRows(cfg)
	for _, workers := range []int{2, 4, 0} {
		got, err := RowsParallel(cfg, workers)
		if err != nil {
			t.Fatalf("RowsParallel(workers=%d): %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("RowsParallel(workers=%d): %d entries, serial %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RowsParallel(workers=%d) entry %d = %+v, serial %+v", workers, i, got[i], want[i])
			}
		}
		gotLocal, err := LocalRowsParallel(cfg, workers)
		if err != nil {
			t.Fatalf("LocalRowsParallel(workers=%d): %v", workers, err)
		}
		if len(gotLocal) != len(wantLocal) {
			t.Fatalf("LocalRowsParallel(workers=%d): %d entries, serial %d", workers, len(gotLocal), len(wantLocal))
		}
		for i := range wantLocal {
			if gotLocal[i] != wantLocal[i] {
				t.Fatalf("LocalRowsParallel(workers=%d) entry %d = %+v, serial %+v", workers, i, gotLocal[i], wantLocal[i])
			}
		}
	}
}
