package trace

import (
	"bytes"
	"strings"
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	orig := workload.Zipf(workload.Config{N: 6, D: 4, Rounds: 20, Rate: 7, Seed: 5}, 1.3)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != orig.N || got.D != orig.D || got.NumRequests() != orig.NumRequests() {
		t.Fatalf("header mismatch: %d/%d/%d vs %d/%d/%d",
			got.N, got.D, got.NumRequests(), orig.N, orig.D, orig.NumRequests())
	}
	a, b := orig.Requests(), got.Requests()
	for i := range a {
		if a[i].Arrive != b[i].Arrive || a[i].D != b[i].D || len(a[i].Alts) != len(b[i].Alts) {
			t.Fatalf("request %d differs: %v vs %v", i, a[i], b[i])
		}
		for j := range a[i].Alts {
			if a[i].Alts[j] != b[i].Alts[j] {
				t.Fatalf("request %d alts differ", i)
			}
		}
	}
}

func TestRoundTripPerRequestDeadlines(t *testing.T) {
	b := core.NewBuilder(3, 5)
	b.AddWindow(0, 2, 0, 1)
	b.AddWindow(1, 5, 1, 2) // equals default: omitted on disk
	b.AddWindow(3, 1, 2)
	var buf bytes.Buffer
	if err := Write(&buf, b.Build()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reqs := got.Requests()
	if reqs[0].D != 2 || reqs[1].D != 5 || reqs[2].D != 1 {
		t.Fatalf("deadlines lost: %d %d %d", reqs[0].D, reqs[1].D, reqs[2].D)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := Read(strings.NewReader(`{"n":0,"d":1,"requests":[]}`)); err == nil {
		t.Fatal("expected header validation error")
	}
	if _, err := Read(strings.NewReader(`{"n":2,"d":1,"requests":[{"t":0,"alts":[5]}]}`)); err == nil {
		t.Fatal("expected trace validation error")
	}
}

func TestSummarize(t *testing.T) {
	b := core.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 0)
	b.Add(2, 0, 1)
	s := Summarize(b.Build())
	if s.Requests != 3 || s.Rounds != 2 || s.PeakArrival != 2 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.Horizon != 4 { // last arrival at 2, d=2 -> deadline 3 -> horizon 4
		t.Fatalf("horizon %d", s.Horizon)
	}
	if s.MeanArrival != 1.5 {
		t.Fatalf("mean %f", s.MeanArrival)
	}
	if s.String() == "" {
		t.Fatal("empty string form")
	}
}

func TestRoundTripWeights(t *testing.T) {
	b := core.NewBuilder(3, 2)
	b.Add(0, 0, 1)
	b.AddWeighted(0, 7, 1, 2)
	b.AddWeighted(1, 1, 2, 0) // explicit default weight: omitted on disk
	var buf bytes.Buffer
	if err := Write(&buf, b.Build()); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), `"w":`) != 1 {
		t.Fatalf("default weights should be omitted: %s", buf.String())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reqs := got.Requests()
	if reqs[0].Weight() != 1 || reqs[1].Weight() != 7 || reqs[2].Weight() != 1 {
		t.Fatalf("weights lost: %d %d %d", reqs[0].Weight(), reqs[1].Weight(), reqs[2].Weight())
	}
}

func TestReadRejectsNegativeWeight(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"n":2,"d":1,"requests":[{"t":0,"alts":[0],"w":-3}]}`)); err == nil {
		t.Fatal("negative weight accepted")
	}
}
