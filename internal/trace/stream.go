// Streaming JSONL trace format. The one-document JSON format (Write/Read)
// materializes the whole trace on both ends; million-request traces need a
// representation that can be produced and consumed request by request. The
// stream format is JSON Lines: a header object {"n":..,"d":..} followed by
// one request record per line, in nondecreasing arrival-round order — the
// same records as the document format, so both describe identical traces.
// The arrival-order requirement is what makes single-pass segmentation
// possible: a reader can cut the stream wherever an arrival round lies past
// every earlier request's deadline, and hand each independent time segment
// to the offline solver without ever holding more than one segment.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"

	"reqsched/internal/core"
)

// streamHeader is the first line of a JSONL trace stream. Hold and Cap carry
// the service model and are omitted for the unit model, keeping unit streams
// byte-identical to the historical format.
type streamHeader struct {
	N    int `json:"n"`
	D    int `json:"d"`
	Hold int `json:"hold,omitempty"`
	Cap  int `json:"cap,omitempty"`
}

// StreamWriter emits a trace as JSONL without materializing it: the caller
// adds requests one by one in nondecreasing arrival-round order.
type StreamWriter struct {
	enc   *json.Encoder
	n, d  int
	lastT int
	count int
}

// NewStreamWriter writes the stream header for a trace over n resources with
// default deadline window d and returns the writer.
func NewStreamWriter(w io.Writer, n, d int) (*StreamWriter, error) {
	return NewStreamWriterModel(w, n, d, core.UnitModel())
}

// NewStreamWriterModel is NewStreamWriter for a trace under service model m;
// a non-unit model is recorded in the stream header.
func NewStreamWriterModel(w io.Writer, n, d int, m core.ServiceModel) (*StreamWriter, error) {
	if n < 1 || d < 1 {
		return nil, fmt.Errorf("trace: invalid stream header n=%d d=%d", n, d)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	h := streamHeader{N: n, D: d}
	if m = m.Norm(); !m.IsUnit() {
		h.Hold, h.Cap = m.Hold, m.Cap
	}
	sw := &StreamWriter{enc: json.NewEncoder(w), n: n, d: d}
	if err := sw.enc.Encode(h); err != nil {
		return nil, fmt.Errorf("trace: stream header: %w", err)
	}
	return sw, nil
}

// Add appends one request arriving at round t with deadline window d (<= 0:
// the stream default), weight w (<= 1: the default 1) and the given
// alternatives. Arrival rounds must be nondecreasing — the property
// single-pass readers and the Segments cutter rely on.
func (sw *StreamWriter) Add(t, d, w int, alts ...int) error {
	if t < sw.lastT {
		return fmt.Errorf("trace: stream arrival at round %d after round %d", t, sw.lastT)
	}
	if err := checkRecord(sw.n, sw.count, t, d, alts); err != nil {
		return err
	}
	sw.lastT = t
	sw.count++
	rec := fileRecord{T: t, Alts: alts}
	if d > 0 && d != sw.d {
		rec.D = d
	}
	if w > 1 {
		rec.W = w
	}
	return sw.enc.Encode(rec)
}

// Count returns the number of requests written so far.
func (sw *StreamWriter) Count() int { return sw.count }

// WriteStream serializes an already materialized trace as JSONL — the
// convenience path; generators that never build a Trace use StreamWriter
// directly.
func WriteStream(w io.Writer, tr *core.Trace) error {
	sw, err := NewStreamWriterModel(w, tr.N, tr.D, tr.Model)
	if err != nil {
		return err
	}
	for _, r := range tr.Requests() {
		if err := sw.Add(r.Arrive, r.D, r.Weight(), r.Alts...); err != nil {
			return err
		}
	}
	return nil
}

// checkRecord validates one stream record against the header; index names the
// record in errors.
func checkRecord(n, index, t, d int, alts []int) error {
	if t < 0 {
		return fmt.Errorf("trace: stream request %d has negative arrival round %d", index, t)
	}
	if d < 0 {
		return fmt.Errorf("trace: stream request %d has negative window %d", index, d)
	}
	if len(alts) < 1 {
		return fmt.Errorf("trace: stream request %d has no alternatives", index)
	}
	for i, a := range alts {
		if a < 0 || a >= n {
			return fmt.Errorf("trace: stream request %d names resource %d outside [0,%d)", index, a, n)
		}
		for _, b := range alts[:i] {
			if a == b {
				return fmt.Errorf("trace: stream request %d repeats alternative %d", index, a)
			}
		}
	}
	return nil
}

// StreamRecord is one decoded request of a JSONL trace stream, rounds still
// absolute. D and W are already resolved against the stream defaults.
type StreamRecord struct {
	// T is the arrival round; D the deadline window; W the weight.
	T, D, W int
	// Alts lists the alternative resources in preference order. The slice is
	// owned by the caller (freshly decoded each record).
	Alts []int
}

// Deadline returns the last round the request may be served in.
func (r StreamRecord) Deadline() int { return r.T + r.D - 1 }

// TornTail reports a truncated final JSONL line — the signature of a crash
// (or power loss) mid-append: every intact record ends with a newline, so an
// unterminated last line can only be a partial write. Offset is the byte
// offset at which the torn line starts; resume logic can truncate the file
// there and treat the tail as absent instead of failing the whole file.
type TornTail struct {
	Offset int64
}

func (e *TornTail) Error() string {
	return fmt.Sprintf("trace: torn final JSONL line at byte offset %d (truncated write)", e.Offset)
}

// ScanJSONLine reads one newline-terminated line from r, where off is the
// byte offset of the line's start. It returns the line with its terminator
// stripped (without diagnosing its JSON), the offset just past its newline,
// io.EOF on a clean end of input (only whitespace remained), or a *TornTail
// when the input ends in an unterminated line. A trailing "\r" before the
// newline is stripped too, so CRLF streams (curl from Windows, text-mode
// file transfers) parse identically to LF ones; offsets always count the
// raw bytes consumed, so torn-tail truncation points stay exact. It is the
// shared low-level scanner of the trace stream reader and the grid
// checkpoint journal.
func ScanJSONLine(r *bufio.Reader, off int64) (line []byte, next int64, err error) {
	for {
		line, err = r.ReadBytes('\n')
		next = off + int64(len(line))
		blank := len(bytes.TrimSpace(line)) == 0
		if err == nil {
			if blank { // skip whitespace-only lines between records
				off = next
				continue
			}
			line = bytes.TrimSuffix(line, []byte("\n"))
			line = bytes.TrimSuffix(line, []byte("\r"))
			return line, next, nil
		}
		if err == io.EOF {
			if blank {
				return nil, next, io.EOF
			}
			return nil, next, &TornTail{Offset: off}
		}
		return nil, next, err
	}
}

// StreamReader decodes a JSONL trace stream record by record, validating each
// against the header and the nondecreasing-arrival-order invariant. Records
// are newline-terminated; an unterminated final line is reported as a
// *TornTail naming its byte offset, so crash-resume callers can distinguish
// a torn append from real corruption.
type StreamReader struct {
	r      *bufio.Reader
	n, d   int
	model  core.ServiceModel
	index  int
	lastT  int
	offset int64
}

// NewStreamReader reads and validates the stream header.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	sr := &StreamReader{r: bufio.NewReader(r)}
	line, next, err := ScanJSONLine(sr.r, 0)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: stream header: %w", io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("trace: stream header: %w", err)
	}
	sr.offset = next
	var h streamHeader
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("trace: stream header: %w", err)
	}
	if h.N < 1 || h.D < 1 {
		return nil, fmt.Errorf("trace: invalid stream header n=%d d=%d", h.N, h.D)
	}
	m := core.ServiceModel{Hold: h.Hold, Cap: h.Cap}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("trace: stream header: %w", err)
	}
	sr.n, sr.d, sr.model = h.N, h.D, m.Norm()
	return sr, nil
}

// N returns the number of resources; D the default deadline window.
func (sr *StreamReader) N() int { return sr.n }
func (sr *StreamReader) D() int { return sr.d }

// Model returns the stream's service model (normalized; unit when the header
// carries none).
func (sr *StreamReader) Model() core.ServiceModel { return sr.model }

// Count returns the number of records decoded so far.
func (sr *StreamReader) Count() int { return sr.index }

// Offset returns the byte offset just past the last fully consumed line —
// the truncation point a resume should use when Next reports a *TornTail.
func (sr *StreamReader) Offset() int64 { return sr.offset }

// Next decodes and validates the next record. It returns io.EOF after the
// last record, or a *TornTail if the stream ends in a truncated line.
func (sr *StreamReader) Next() (StreamRecord, error) {
	line, next, err := ScanJSONLine(sr.r, sr.offset)
	if err != nil {
		if err == io.EOF {
			return StreamRecord{}, io.EOF
		}
		var torn *TornTail
		if errors.As(err, &torn) {
			return StreamRecord{}, err
		}
		return StreamRecord{}, fmt.Errorf("trace: stream request %d: %w", sr.index, err)
	}
	sr.offset = next
	out, err := DecodeStreamRecord(line, sr.n, sr.d, sr.index)
	if err != nil {
		return StreamRecord{}, err
	}
	if out.T < sr.lastT {
		return StreamRecord{}, fmt.Errorf("trace: stream request %d at round %d after round %d", sr.index, out.T, sr.lastT)
	}
	sr.lastT = out.T
	sr.index++
	return out, nil
}

// DecodeStreamRecord decodes and validates one JSONL request line against a
// stream contract (n resources, default deadline window d), resolving the D
// and W defaults; index names the record in errors. It is the line-level core
// of StreamReader.Next, exported for ingest paths — like the serve daemon —
// that receive records outside a file stream and enforce ordering themselves.
func DecodeStreamRecord(line []byte, n, d, index int) (StreamRecord, error) {
	var out StreamRecord
	if err := DecodeStreamRecordInto(&out, line, n, d, index); err != nil {
		return StreamRecord{}, err
	}
	return out, nil
}

// DecodeStreamRecordInto is DecodeStreamRecord reusing out's Alts capacity:
// the decoder appends into out.Alts[:0], so a hot ingest loop that copies
// alternatives out of the record reaches zero allocations per line once the
// buffer has grown to the widest record. On error the record fields are
// unspecified, but the Alts buffer is retained for the next call.
func DecodeStreamRecordInto(out *StreamRecord, line []byte, n, d, index int) error {
	rec := fileRecord{Alts: out.Alts[:0]}
	err := json.Unmarshal(line, &rec)
	out.Alts = rec.Alts // keep the (possibly regrown) buffer either way
	if err != nil {
		return fmt.Errorf("trace: stream request %d: %w", index, err)
	}
	if err := checkRecord(n, index, rec.T, rec.D, rec.Alts); err != nil {
		return err
	}
	out.T, out.D, out.W = rec.T, rec.D, rec.W
	if out.D == 0 {
		out.D = d
	}
	if out.W < 1 {
		out.W = 1
	}
	return nil
}

// ReadStream materializes a whole JSONL stream as a validated trace — the
// convenience inverse of WriteStream, for streams known to fit in memory.
func ReadStream(r io.Reader) (*core.Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	b := core.NewBuilder(sr.N(), sr.D())
	if m := sr.Model(); !m.IsUnit() {
		b.SetModel(m)
	}
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		id := b.AddWindow(rec.T, rec.D, rec.Alts...)
		if rec.W > 1 {
			b.SetWeight(id, rec.W)
		}
	}
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// SegmentCutter accumulates requests fed in nondecreasing arrival-round
// order and cuts them into independent time segments: a cut falls before
// every request whose arrival round is past the deadline of every request
// seen so far (the same clean-cut rule as offline.SegmentTrace). Each
// finished segment is a self-contained sub-trace with rounds shifted to
// start at 0 and its own request IDs from 0; segment optima therefore sum to
// the whole input's optimum. It is the push-style core under Segments and
// SegmentsOf, and the piece the adaptive streaming pipeline feeds directly
// from the engine's observe callback.
type SegmentCutter struct {
	n, d  int
	m     core.ServiceModel
	b     *core.Builder
	count int
	lo    int
	maxDL int
}

// NewSegmentCutter returns a cutter for requests over n resources with
// default deadline window d, under the unit service model.
func NewSegmentCutter(n, d int) *SegmentCutter {
	return NewSegmentCutterModel(n, d, core.UnitModel())
}

// NewSegmentCutterModel is NewSegmentCutter under service model m. With hold
// > 1 a cut must additionally fall on an epoch boundary (a round that is a
// multiple of hold — the rule offline.SegmentTrace uses), so a service
// started in one segment cannot still occupy its resource in the next, and
// segment origins are shifted only by whole epochs so each segment's
// epoch-relaxed optimum is unchanged by the shift.
func NewSegmentCutterModel(n, d int, m core.ServiceModel) *SegmentCutter {
	m = m.Norm()
	return &SegmentCutter{n: n, d: d, m: m, b: newSegBuilder(n, d, m), maxDL: -1}
}

func newSegBuilder(n, d int, m core.ServiceModel) *core.Builder {
	b := core.NewBuilder(n, d)
	if !m.IsUnit() {
		b.SetModel(m)
	}
	return b
}

// Add appends one request. If the request opens a new segment — its arrival
// round is past every earlier deadline, and at an epoch boundary when hold >
// 1 — the finished segment is returned; otherwise Add returns nil. Arrival
// rounds must be nondecreasing.
func (sc *SegmentCutter) Add(rec StreamRecord) *core.Trace {
	var done *core.Trace
	if sc.count > 0 && rec.T > sc.maxDL && rec.T%sc.m.Hold == 0 {
		done = sc.flush()
	}
	if sc.count == 0 {
		// Epoch-floor the origin: shifting by a non-multiple of hold would
		// move requests across epoch boundaries and change the segment's
		// epoch-relaxed optimum. At hold = 1 this is exactly rec.T.
		sc.lo = rec.T - rec.T%sc.m.Hold
	}
	id := sc.b.AddWindow(rec.T-sc.lo, rec.D, rec.Alts...)
	if rec.W > 1 {
		sc.b.SetWeight(id, rec.W)
	}
	sc.count++
	if dl := rec.Deadline(); dl > sc.maxDL {
		sc.maxDL = dl
	}
	return done
}

// Finish returns the trailing open segment, or nil if no requests are
// buffered. The cutter is reusable afterwards.
func (sc *SegmentCutter) Finish() *core.Trace {
	if sc.count == 0 {
		return nil
	}
	return sc.flush()
}

func (sc *SegmentCutter) flush() *core.Trace {
	tr := sc.b.Build()
	sc.b = newSegBuilder(sc.n, sc.d, sc.m)
	sc.count = 0
	return tr
}

// SegmentsOf cuts any source of stream records — already validated, in
// nondecreasing arrival order — into independent time segments, holding at
// most one open segment. A record error is yielded once as (nil, err) and
// ends the iteration.
func SegmentsOf(n, d int, recs iter.Seq2[StreamRecord, error]) iter.Seq2[*core.Trace, error] {
	return SegmentsOfModel(n, d, core.UnitModel(), recs)
}

// SegmentsOfModel is SegmentsOf under service model m: segments carry the
// model and cuts respect its epoch boundaries.
func SegmentsOfModel(n, d int, m core.ServiceModel, recs iter.Seq2[StreamRecord, error]) iter.Seq2[*core.Trace, error] {
	return func(yield func(*core.Trace, error) bool) {
		sc := NewSegmentCutterModel(n, d, m)
		for rec, err := range recs {
			if err != nil {
				yield(nil, err)
				return
			}
			if done := sc.Add(rec); done != nil && !yield(done, nil) {
				return
			}
		}
		if done := sc.Finish(); done != nil {
			yield(done, nil)
		}
	}
}

// Segments iterates over the independent time segments of a JSONL trace
// stream without ever materializing more than one segment. A header or
// record error is yielded once as (nil, err) and ends the iteration.
func Segments(r io.Reader) iter.Seq2[*core.Trace, error] {
	return func(yield func(*core.Trace, error) bool) {
		sr, err := NewStreamReader(r)
		if err != nil {
			yield(nil, err)
			return
		}
		recs := func(yield func(StreamRecord, error) bool) {
			for {
				rec, err := sr.Next()
				if err == io.EOF {
					return
				}
				if !yield(rec, err) || err != nil {
					return
				}
			}
		}
		SegmentsOfModel(sr.N(), sr.D(), sr.Model(), recs)(yield)
	}
}
