package trace

import (
	"bytes"
	"testing"

	"reqsched/internal/core"
)

// FuzzRead ensures the deserializer never panics and never yields an invalid
// trace on arbitrary input, and that valid outputs survive a round trip.
func FuzzRead(f *testing.F) {
	seed := func(build func(b *core.Builder)) {
		b := core.NewBuilder(3, 2)
		build(b)
		var buf bytes.Buffer
		if err := Write(&buf, b.Build()); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(func(b *core.Builder) { b.Add(0, 0, 1) })
	seed(func(b *core.Builder) { b.AddWindow(2, 5, 2); b.Add(3, 1, 0) })
	f.Add([]byte(`{"n":1,"d":1,"requests":[{"t":0,"alts":[0]}]}`))
	f.Add([]byte(`{"n":0}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"n":2,"d":1,"requests":[{"t":-1,"alts":[0,1]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read returned invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if tr2.NumRequests() != tr.NumRequests() || tr2.N != tr.N || tr2.D != tr.D {
			t.Fatal("round trip changed the trace")
		}
	})
}
