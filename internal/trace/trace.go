// Package trace serializes request traces to JSON so adversarial and
// synthetic workloads can be stored, inspected and replayed (cmd/tracegen),
// and provides summary statistics for a trace.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"reqsched/internal/core"
)

// fileFormat is the on-disk representation: compact per-request records
// rather than the in-memory round-indexed layout.
type fileFormat struct {
	N int `json:"n"`
	D int `json:"d"`
	// Hold and Cap carry the trace's service model; both are omitted for the
	// unit model, so pre-model files and unit traces are byte-identical to
	// the historical format.
	Hold     int          `json:"hold,omitempty"`
	Cap      int          `json:"cap,omitempty"`
	Requests []fileRecord `json:"requests"`
}

type fileRecord struct {
	T    int   `json:"t"`
	Alts []int `json:"alts"`
	D    int   `json:"d,omitempty"` // omitted when equal to the trace default
	W    int   `json:"w,omitempty"` // omitted at the default weight 1
}

// Write serializes tr as JSON.
func Write(w io.Writer, tr *core.Trace) error {
	ff := fileFormat{N: tr.N, D: tr.D}
	if m := tr.Model.Norm(); !m.IsUnit() {
		ff.Hold, ff.Cap = m.Hold, m.Cap
	}
	for _, r := range tr.Requests() {
		rec := fileRecord{T: r.Arrive, Alts: r.Alts}
		if r.D != tr.D {
			rec.D = r.D
		}
		if r.Weight() != 1 {
			rec.W = r.Weight()
		}
		ff.Requests = append(ff.Requests, rec)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ff)
}

// Read deserializes a trace written by Write and validates it.
func Read(r io.Reader) (*core.Trace, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if ff.N < 1 || ff.D < 1 {
		return nil, fmt.Errorf("trace: invalid header n=%d d=%d", ff.N, ff.D)
	}
	m := core.ServiceModel{Hold: ff.Hold, Cap: ff.Cap}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	b := core.NewBuilder(ff.N, ff.D)
	if !m.Norm().IsUnit() {
		b.SetModel(m.Norm())
	}
	for i, rec := range ff.Requests {
		// Validate before handing to the Builder: the Builder treats bad
		// input as a programming error and panics, but Read is an input
		// boundary and must reject malformed files gracefully. (Alternative
		// ranges and duplicates are caught by Trace.Validate below.)
		if rec.T < 0 {
			return nil, fmt.Errorf("trace: request %d has negative arrival round %d", i, rec.T)
		}
		if rec.D < 0 {
			return nil, fmt.Errorf("trace: request %d has negative window %d", i, rec.D)
		}
		if rec.W < 0 {
			return nil, fmt.Errorf("trace: request %d has negative weight %d", i, rec.W)
		}
		d := rec.D
		if d == 0 {
			d = ff.D
		}
		id := b.AddWindow(rec.T, d, rec.Alts...)
		if rec.W > 1 {
			b.SetWeight(id, rec.W)
		}
	}
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Stats summarizes a trace.
type Stats struct {
	N, D        int
	Requests    int
	Rounds      int     // rounds with arrivals
	Horizon     int     // simulation horizon
	PeakArrival int     // max arrivals in one round
	MeanArrival float64 // mean arrivals per round with arrivals
	Load        float64 // requests / (n * horizon): nominal utilization
}

// Summarize computes Stats for tr.
func Summarize(tr *core.Trace) Stats {
	s := Stats{
		N:        tr.N,
		D:        tr.D,
		Requests: tr.NumRequests(),
		Horizon:  tr.Horizon(),
	}
	for _, rs := range tr.Arrivals {
		if len(rs) == 0 {
			continue
		}
		s.Rounds++
		if len(rs) > s.PeakArrival {
			s.PeakArrival = len(rs)
		}
	}
	if s.Rounds > 0 {
		s.MeanArrival = float64(s.Requests) / float64(s.Rounds)
	}
	if s.Horizon > 0 {
		s.Load = float64(s.Requests) / float64(s.N*s.Horizon)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d d=%d requests=%d arrival-rounds=%d horizon=%d peak=%d mean=%.2f load=%.2f",
		s.N, s.D, s.Requests, s.Rounds, s.Horizon, s.PeakArrival, s.MeanArrival, s.Load)
}
