package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"reqsched/internal/core"
)

// gappedStreamTrace builds a trace with quiet stretches between bursts so the
// stream has clean segment cuts.
func gappedStreamTrace(rng *rand.Rand, n, d, bursts int) *core.Trace {
	b := core.NewBuilder(n, d)
	t := 0
	for burst := 0; burst < bursts; burst++ {
		for i := 0; i < 1+rng.Intn(4); i++ {
			a := rng.Intn(n)
			c := (a + 1) % n
			id := b.AddWindow(t, 1+rng.Intn(d), a, c)
			if rng.Intn(3) == 0 {
				b.SetWeight(id, 2+rng.Intn(4))
			}
		}
		t += d + 2
	}
	return b.Build()
}

func tracesEqual(a, b *core.Trace) bool {
	if a.N != b.N || a.D != b.D || a.NumRequests() != b.NumRequests() {
		return false
	}
	ra, rb := a.Requests(), b.Requests()
	for i := range ra {
		x, y := ra[i], rb[i]
		if x.Arrive != y.Arrive || x.D != y.D || x.Weight() != y.Weight() {
			return false
		}
		if len(x.Alts) != len(y.Alts) {
			return false
		}
		for j := range x.Alts {
			if x.Alts[j] != y.Alts[j] {
				return false
			}
		}
	}
	return true
}

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		tr := gappedStreamTrace(rng, 2+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(5))
		var buf bytes.Buffer
		if err := WriteStream(&buf, tr); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadStream(&buf)
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if !tracesEqual(tr, got) {
			t.Fatalf("trial %d: roundtrip mismatch", trial)
		}
	}
}

func TestStreamMatchesDocumentFormat(t *testing.T) {
	// The two serializations describe identical traces.
	rng := rand.New(rand.NewSource(2))
	tr := gappedStreamTrace(rng, 4, 3, 4)
	var doc, stream bytes.Buffer
	if err := Write(&doc, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteStream(&stream, tr); err != nil {
		t.Fatal(err)
	}
	fromDoc, err := Read(&doc)
	if err != nil {
		t.Fatal(err)
	}
	fromStream, err := ReadStream(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(fromDoc, fromStream) {
		t.Fatal("document and stream formats decode differently")
	}
}

func TestStreamWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Add(5, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sw.Add(4, 0, 0, 1); err == nil {
		t.Fatal("decreasing arrival round accepted")
	}
	if sw.Count() != 1 {
		t.Fatalf("count %d after one good record", sw.Count())
	}
}

func TestStreamWriterRejectsBadRecords(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  error
	}{
		{"negative round", sw.Add(-1, 0, 0, 1)},
		{"negative window", sw.Add(0, -2, 0, 1)},
		{"no alternatives", sw.Add(0, 0, 0)},
		{"resource out of range", sw.Add(0, 0, 0, 3)},
		{"duplicate alternative", sw.Add(0, 0, 0, 1, 1)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
	if _, err := NewStreamWriter(&buf, 0, 2); err == nil {
		t.Fatal("n=0 header accepted")
	}
}

func TestStreamReaderRejectsMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"garbage header", "not json\n"},
		{"bad header values", `{"n":0,"d":2}` + "\n"},
		{"garbage record", `{"n":2,"d":2}` + "\n" + "nope\n"},
		{"record out of range", `{"n":2,"d":2}` + "\n" + `{"t":0,"alts":[5]}` + "\n"},
		{"decreasing rounds", `{"n":2,"d":2}` + "\n" + `{"t":3,"alts":[0]}` + "\n" + `{"t":1,"alts":[0]}` + "\n"},
	}
	for _, c := range cases {
		if _, err := ReadStream(strings.NewReader(c.input)); err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
}

func TestStreamReaderEOF(t *testing.T) {
	sr, err := NewStreamReader(strings.NewReader(`{"n":2,"d":3}` + "\n" + `{"t":1,"alts":[0,1],"w":4}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.T != 1 || rec.D != 3 || rec.W != 4 {
		t.Fatalf("record %+v: defaults not resolved", rec)
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if sr.Count() != 1 {
		t.Fatalf("count %d", sr.Count())
	}
}

func TestStreamReaderTornTail(t *testing.T) {
	// A crash mid-append leaves an unterminated final line. The reader must
	// return a *TornTail naming the byte offset where the torn line starts,
	// after having delivered every intact record, so resume can truncate the
	// tail and treat it as absent.
	header := `{"n":2,"d":3}` + "\n"
	rec := `{"t":1,"alts":[0,1]}` + "\n"
	torn := `{"t":2,"alts":[0`
	sr, err := NewStreamReader(strings.NewReader(header + rec + torn))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatalf("intact record before the torn tail rejected: %v", err)
	}
	_, err = sr.Next()
	var tt *TornTail
	if !errors.As(err, &tt) {
		t.Fatalf("want *TornTail, got %v", err)
	}
	wantOff := int64(len(header) + len(rec))
	if tt.Offset != wantOff {
		t.Fatalf("torn offset %d, want %d", tt.Offset, wantOff)
	}
	if sr.Offset() != wantOff {
		t.Fatalf("reader offset %d, want %d (truncation point)", sr.Offset(), wantOff)
	}
	if sr.Count() != 1 {
		t.Fatalf("count %d, want 1", sr.Count())
	}

	// ReadStream surfaces the same error instead of silently dropping data.
	if _, err := ReadStream(strings.NewReader(header + rec + torn)); !errors.As(err, &tt) {
		t.Fatalf("ReadStream: want *TornTail, got %v", err)
	}

	// A torn header is reported too.
	if _, err := NewStreamReader(strings.NewReader(`{"n":2`)); !errors.As(err, &tt) {
		t.Fatalf("torn header: want *TornTail, got %v", err)
	}

	// Trailing whitespace after the final newline is a clean EOF, not a tear.
	sr, err = NewStreamReader(strings.NewReader(header + rec + "  \n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("whitespace tail: want io.EOF, got %v", err)
	}
}

func TestStreamReaderTornTailAtEveryByte(t *testing.T) {
	// Truncating a valid stream at any byte position must yield either the
	// full prefix of intact records plus io.EOF (cut exactly on a newline) or
	// the prefix plus a *TornTail at the last newline — never a hard failure
	// and never a phantom record.
	rng := rand.New(rand.NewSource(7))
	tr := gappedStreamTrace(rng, 3, 3, 3)
	var buf bytes.Buffer
	if err := WriteStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	firstNL := bytes.IndexByte(full, '\n') + 1
	for cut := firstNL; cut <= len(full); cut++ {
		sr, err := NewStreamReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header: %v", cut, err)
		}
		lastNL := bytes.LastIndexByte(full[:cut], '\n') + 1
		n := 0
		for {
			_, err := sr.Next()
			if err == io.EOF {
				if cut != lastNL {
					t.Fatalf("cut %d: clean EOF despite torn tail", cut)
				}
				break
			}
			var tt *TornTail
			if errors.As(err, &tt) {
				if cut == lastNL {
					t.Fatalf("cut %d: TornTail despite newline-terminated input", cut)
				}
				if tt.Offset != int64(lastNL) {
					t.Fatalf("cut %d: torn offset %d, want %d", cut, tt.Offset, lastNL)
				}
				break
			}
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			n++
		}
		if want := bytes.Count(full[firstNL:lastNL], []byte("\n")); n != want {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, n, want)
		}
	}
}

func TestSegmentsCutAndShift(t *testing.T) {
	// Two bursts separated by a quiet stretch: two segments, each starting at
	// round 0, weights preserved.
	b := core.NewBuilder(3, 2)
	b.Add(0, 0, 1)
	id := b.Add(1, 1, 2)
	b.SetWeight(id, 5)
	b.Add(10, 0, 2)
	tr := b.Build()
	var buf bytes.Buffer
	if err := WriteStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var segs []*core.Trace
	for seg, err := range Segments(&buf) {
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, seg)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if segs[0].NumRequests() != 2 || segs[1].NumRequests() != 1 {
		t.Fatalf("segment sizes %d, %d", segs[0].NumRequests(), segs[1].NumRequests())
	}
	if segs[1].Requests()[0].Arrive != 0 {
		t.Fatalf("second segment not shifted: arrive %d", segs[1].Requests()[0].Arrive)
	}
	if w := segs[0].Requests()[1].Weight(); w != 5 {
		t.Fatalf("weight lost across segmentation: %d", w)
	}
	for _, seg := range segs {
		if err := seg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSegmentsRequestCountsAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		tr := gappedStreamTrace(rng, 2+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(4))
		var buf bytes.Buffer
		if err := WriteStream(&buf, tr); err != nil {
			t.Fatal(err)
		}
		total := 0
		for seg, err := range Segments(&buf) {
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := seg.Validate(); err != nil {
				t.Fatalf("trial %d: segment invalid: %v", trial, err)
			}
			total += seg.NumRequests()
		}
		if total != tr.NumRequests() {
			t.Fatalf("trial %d: segments hold %d requests, trace has %d",
				trial, total, tr.NumRequests())
		}
	}
}

func TestSegmentsPropagatesErrors(t *testing.T) {
	input := `{"n":2,"d":2}` + "\n" + `{"t":0,"alts":[0]}` + "\n" + `{"t":9,"alts":[7]}` + "\n"
	var got error
	count := 0
	for seg, err := range Segments(strings.NewReader(input)) {
		if err != nil {
			got = err
			break
		}
		_ = seg
		count++
	}
	if got == nil {
		t.Fatal("bad record not reported")
	}
	// The buffered segment is only flushed by a *valid* record past its
	// deadlines; a bad record aborts the stream without yielding it.
	if count != 0 {
		t.Fatalf("yielded %d segments despite the error, want 0", count)
	}
}
