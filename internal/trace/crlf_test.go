package trace

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func newBufReader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

// crlf converts a LF-terminated stream to CRLF line endings — the shape curl
// uploads from Windows clients, or any text-mode file transfer, produce.
func crlf(b []byte) []byte {
	return bytes.ReplaceAll(b, []byte("\n"), []byte("\r\n"))
}

// TestStreamCRLFEquivalent pins the CRLF-tolerance fix: a stream with \r\n
// line endings must decode to exactly the same trace as its \n twin.
func TestStreamCRLFEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := gappedStreamTrace(rng, 4, 3, 3)
	var buf bytes.Buffer
	if err := WriteStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadStream(bytes.NewReader(crlf(buf.Bytes())))
	if err != nil {
		t.Fatalf("CRLF stream rejected: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("CRLF stream decodes to a different trace than the LF original")
	}
}

// TestStreamReaderTornTailAtEveryByteCRLF extends the truncate-at-every-byte
// property to CRLF streams: any cut yields the intact-record prefix plus a
// clean EOF or a *TornTail whose offset counts the raw bytes (including the
// \r), never a hard failure or a phantom record. In particular a line cut
// between its \r and \n is torn, not parsed.
func TestStreamReaderTornTailAtEveryByteCRLF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := gappedStreamTrace(rng, 3, 3, 3)
	var buf bytes.Buffer
	if err := WriteStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := crlf(buf.Bytes())
	firstNL := bytes.IndexByte(full, '\n') + 1
	for cut := firstNL; cut <= len(full); cut++ {
		sr, err := NewStreamReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header: %v", cut, err)
		}
		lastNL := bytes.LastIndexByte(full[:cut], '\n') + 1
		n := 0
		for {
			_, err := sr.Next()
			if err == io.EOF {
				if cut != lastNL {
					t.Fatalf("cut %d: clean EOF despite torn tail", cut)
				}
				break
			}
			var tt *TornTail
			if errors.As(err, &tt) {
				if cut == lastNL {
					t.Fatalf("cut %d: TornTail despite newline-terminated input", cut)
				}
				if tt.Offset != int64(lastNL) {
					t.Fatalf("cut %d: torn offset %d, want %d", cut, tt.Offset, lastNL)
				}
				break
			}
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			n++
		}
		if want := bytes.Count(full[firstNL:lastNL], []byte("\n")); n != want {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, n, want)
		}
	}
}

// TestScanJSONLineStripsTerminator pins the scanner contract directly: the
// returned line carries no \n or \r terminator, while offsets still count
// every raw byte so journal truncation points stay exact.
func TestScanJSONLineStripsTerminator(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
		next int64
	}{
		{"{\"a\":1}\n", `{"a":1}`, 8},
		{"{\"a\":1}\r\n", `{"a":1}`, 9},
		{"{\"a\":1}\r\nmore", `{"a":1}`, 9},
	} {
		line, next, err := ScanJSONLine(newBufReader(tc.in), 0)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if string(line) != tc.want {
			t.Errorf("%q: line %q, want %q", tc.in, line, tc.want)
		}
		if next != tc.next {
			t.Errorf("%q: next offset %d, want %d", tc.in, next, tc.next)
		}
	}
	// A lone "\r" with no newline is a torn line, not a blank one.
	_, _, err := ScanJSONLine(newBufReader("{\"a\":1}\r"), 0)
	var tt *TornTail
	if !errors.As(err, &tt) || tt.Offset != 0 {
		t.Fatalf("unterminated CR line: want TornTail at 0, got %v", err)
	}
	// "\r\n" alone is whitespace: clean EOF.
	if _, _, err := ScanJSONLine(newBufReader("\r\n"), 0); err != io.EOF {
		t.Fatalf("CRLF-only input: want io.EOF, got %v", err)
	}
}
