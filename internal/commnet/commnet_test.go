package commnet

import (
	"testing"

	"reqsched/internal/core"
)

func req(id, arrive, d int) *core.Request {
	return &core.Request{ID: id, Arrive: arrive, Alts: []int{0, 1}, D: d}
}

func TestDeliverCapAndLDF(t *testing.T) {
	nw := New(2, 2)
	// Three messages to resource 0 with different deadlines: latest deadline
	// first, so the earliest-deadline message is dropped.
	to := make([][]Msg, 2)
	to[0] = []Msg{
		{Req: req(1, 0, 1)}, // deadline 0
		{Req: req(2, 0, 3)}, // deadline 2
		{Req: req(3, 0, 2)}, // deadline 1
	}
	received, rejected := nw.Deliver(to)
	if len(received[0]) != 2 || len(rejected[0]) != 1 {
		t.Fatalf("received %d rejected %d", len(received[0]), len(rejected[0]))
	}
	if received[0][0].Req.ID != 2 || received[0][1].Req.ID != 3 {
		t.Fatalf("LDF order wrong: %d, %d", received[0][0].Req.ID, received[0][1].Req.ID)
	}
	if rejected[0][0].Req.ID != 1 {
		t.Fatalf("dropped wrong message: %d", rejected[0][0].Req.ID)
	}
	if nw.Dropped() != 1 {
		t.Fatalf("dropped count %d", nw.Dropped())
	}
}

func TestDeliverTiesByLowerID(t *testing.T) {
	nw := New(1, 1)
	to := [][]Msg{{
		{Req: req(7, 0, 2)},
		{Req: req(3, 0, 2)},
	}}
	received, _ := nw.Deliver(to)
	if received[0][0].Req.ID != 3 {
		t.Fatalf("tie should admit lower ID, got %d", received[0][0].Req.ID)
	}
}

func TestDeliverPriorityFirst(t *testing.T) {
	nw := New(1, 1)
	to := [][]Msg{{
		{Req: req(1, 0, 9)},                 // latest deadline but untagged
		{Req: req(2, 0, 1), Priority: true}, // tagged wins
	}}
	received, _ := nw.Deliver(to)
	if received[0][0].Req.ID != 2 {
		t.Fatalf("priority message not admitted first")
	}
}

func TestAccountingSkipsEmptyRounds(t *testing.T) {
	nw := New(3, 2)
	nw.Deliver(make([][]Msg, 3)) // no messages: free
	if r, m := nw.Totals(); r != 0 || m != 0 {
		t.Fatalf("empty round counted: %d rounds %d msgs", r, m)
	}
	to := make([][]Msg, 3)
	to[1] = []Msg{{Req: req(1, 0, 2)}}
	to[2] = []Msg{{Req: req(2, 0, 2)}, {Req: req(3, 0, 2)}}
	nw.Deliver(to)
	if r, m := nw.Totals(); r != 1 || m != 3 {
		t.Fatalf("accounting wrong: %d rounds %d msgs", r, m)
	}
}

func TestDeliverDoesNotMutateInput(t *testing.T) {
	nw := New(1, 1)
	msgs := []Msg{{Req: req(1, 0, 1)}, {Req: req(2, 0, 5)}}
	nw.Deliver([][]Msg{msgs})
	if msgs[0].Req.ID != 1 || msgs[1].Req.ID != 2 {
		t.Fatal("Deliver reordered the caller's slice")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 1)
}
