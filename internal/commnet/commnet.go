// Package commnet models the communication substrate of the paper's local
// strategies (Sections 1.3 and 3.2): requests and resources exchange
// fixed-size messages in synchronous communication rounds. A resource can
// receive at most `cap` messages per communication round (the paper uses
// d, or 2d-2 for the compressed A_local_eager variant); excess messages are
// dropped, their senders notified. Admission follows the paper's LDF rule —
// latest deadline first — with ties broken towards lower request IDs, and
// high-priority tagged messages (Phase 3 of A_local_eager) are always
// admitted first.
//
// The package accounts communication rounds and message totals, which is the
// cost measure for local strategies: "the time to exchange information in a
// distributed system usually by far dominates the time of internal
// computations."
package commnet

import (
	"math/rand"
	"sort"

	"reqsched/internal/core"
)

// Msg is one fixed-size message about a request, addressed to a resource.
type Msg struct {
	// Req is the request the message is about (also its deadline carrier
	// for the LDF admission rule).
	Req *core.Request
	// Priority marks the high-priority tag of A_local_eager's Phase 3: the
	// message is admitted ahead of untagged ones.
	Priority bool
	// Payload carries protocol-specific data (e.g. the request proposed for
	// relocation). May be nil.
	Payload *core.Request
}

// Network tracks communication-round and message accounting for one
// simulation run.
type Network struct {
	n   int
	cap int

	rounds   int
	messages int
	dropped  int
	lost     int

	lossRate float64
	lossRng  *rand.Rand

	transcript *Transcript
}

// InjectLoss makes every message independently vanish in transit with the
// given probability (failure injection for robustness testing). Lost
// messages are silent — unlike mailbox drops, the sender is *not* notified,
// modeling a lossy network rather than admission control. Deterministic per
// seed.
func (nw *Network) InjectLoss(rate float64, seed int64) {
	if rate < 0 || rate >= 1 {
		panic("commnet: loss rate must be in [0, 1)")
	}
	nw.lossRate = rate
	nw.lossRng = rand.New(rand.NewSource(seed))
}

// Lost returns the number of messages lost in transit so far.
func (nw *Network) Lost() int { return nw.lost }

// CommRound summarizes one communication round of a transcript.
type CommRound struct {
	// Sent counts messages sent; Delivered and Dropped its split.
	Sent, Delivered, Dropped int
	// Busiest is the largest per-resource message count this round — the
	// contention hot spot.
	Busiest int
}

// Transcript records per-communication-round summaries when enabled with
// StartTranscript; the local-strategy tests and the cluster example use it
// to inspect protocol behavior.
type Transcript struct {
	Rounds []CommRound
}

// StartTranscript begins recording round summaries (resetting any previous
// transcript).
func (nw *Network) StartTranscript() { nw.transcript = &Transcript{} }

// TranscriptRounds returns the recorded summaries (nil if never started).
func (nw *Network) TranscriptRounds() []CommRound {
	if nw.transcript == nil {
		return nil
	}
	return nw.transcript.Rounds
}

// New returns a network of n resources with per-resource, per-round receive
// capacity cap.
func New(n, cap int) *Network {
	if n < 1 || cap < 1 {
		panic("commnet: need n >= 1 and cap >= 1")
	}
	return &Network{n: n, cap: cap}
}

// Cap returns the per-resource receive capacity.
func (nw *Network) Cap() int { return nw.cap }

// Totals returns the number of communication rounds executed and messages
// sent so far.
func (nw *Network) Totals() (rounds, messages int) { return nw.rounds, nw.messages }

// Dropped returns the number of messages lost to capacity so far.
func (nw *Network) Dropped() int { return nw.dropped }

// Deliver executes one communication round. to[i] holds the messages
// addressed to resource i; the returned received[i] holds the at most cap
// admitted messages (priority first, then latest deadline first, ties by
// lower request ID) and rejected[i] the dropped ones, whose senders are
// notified per the model. A round with no messages at all costs nothing and
// is not counted.
func (nw *Network) Deliver(to [][]Msg) (received, rejected [][]Msg) {
	if len(to) != nw.n {
		panic("commnet: destination slice size mismatch")
	}
	received = make([][]Msg, nw.n)
	rejected = make([][]Msg, nw.n)
	total := 0
	var cr CommRound
	for i, msgs := range to {
		total += len(msgs)
		if nw.lossRate > 0 && len(msgs) > 0 {
			kept := make([]Msg, 0, len(msgs))
			for _, m := range msgs {
				if nw.lossRng.Float64() < nw.lossRate {
					nw.lost++
					continue
				}
				kept = append(kept, m)
			}
			msgs = kept
		}
		if len(msgs) > cr.Busiest {
			cr.Busiest = len(msgs)
		}
		if len(msgs) == 0 {
			continue
		}
		sorted := append([]Msg(nil), msgs...)
		sort.SliceStable(sorted, func(a, b int) bool {
			ma, mb := sorted[a], sorted[b]
			if ma.Priority != mb.Priority {
				return ma.Priority
			}
			if ma.Req.Deadline() != mb.Req.Deadline() {
				return ma.Req.Deadline() > mb.Req.Deadline() // latest deadline first
			}
			return ma.Req.ID < mb.Req.ID
		})
		k := nw.cap
		if k > len(sorted) {
			k = len(sorted)
		}
		received[i] = sorted[:k]
		rejected[i] = sorted[k:]
		nw.dropped += len(sorted) - k
		cr.Delivered += k
		cr.Dropped += len(sorted) - k
	}
	if total > 0 {
		nw.rounds++
		nw.messages += total
		if nw.transcript != nil {
			cr.Sent = total
			nw.transcript.Rounds = append(nw.transcript.Rounds, cr)
		}
	}
	return received, rejected
}
