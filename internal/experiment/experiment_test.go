package experiment

import (
	"strings"
	"testing"
)

func TestLoadValidConfig(t *testing.T) {
	js := `{
		"name": "smoke",
		"workload": {"kind": "zipf", "n": 6, "d": 3, "rounds": 20, "rate": 7, "zipf": 1.5},
		"strategies": ["A_balance", "A_fix", "EDF"],
		"seeds": 3
	}`
	c, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
	// Sorted best-first: A_balance should not be last.
	if rep.Rows[len(rep.Rows)-1].Strategy == "A_balance" {
		t.Fatalf("A_balance ranked last: %v", rep.Rows)
	}
	for _, row := range rep.Rows {
		if row.Summary.Ratio.Mean() < 1 {
			t.Fatalf("%s mean ratio < 1", row.Strategy)
		}
	}
	out := rep.Format()
	if !strings.Contains(out, "smoke") || !strings.Contains(out, "A_balance") {
		t.Fatalf("format missing fields:\n%s", out)
	}
}

func TestLoadDefaultsAllStrategies(t *testing.T) {
	js := `{"workload": {"kind": "uniform", "n": 4, "d": 2, "rounds": 10}}`
	c, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Strategies) < 10 {
		t.Fatalf("default strategy list too short: %v", c.Strategies)
	}
	if c.Seeds != 1 || c.Workload.Rate != 4 {
		t.Fatalf("defaults wrong: seeds=%d rate=%f", c.Seeds, c.Workload.Rate)
	}
}

func TestLoadRejectsBadConfigs(t *testing.T) {
	cases := []string{
		`{bad json`,
		`{"workload": {"kind": "nope", "n": 2, "d": 2, "rounds": 5}}`,
		`{"workload": {"kind": "uniform", "n": 0, "d": 2, "rounds": 5}}`,
		`{"workload": {"kind": "uniform", "n": 2, "d": 2, "rounds": 5}, "strategies": ["bogus"]}`,
		`{"workload": {"kind": "cchoice", "n": 2, "d": 2, "rounds": 5, "choices": 5}}`,
		`{"workload": {"kind": "uniform", "n": 2, "d": 2, "rounds": 5}, "typo": 1}`,
	}
	for i, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Fatalf("case %d accepted: %s", i, js)
		}
	}
}

func TestRunEveryWorkloadKind(t *testing.T) {
	for _, kind := range []string{"uniform", "zipf", "bursty", "video", "single", "cchoice", "mixed"} {
		c := &Config{
			Workload:   WorkloadSpec{Kind: kind, N: 4, D: 2, Rounds: 8, Rate: 4, Choices: 2},
			Strategies: []string{"A_balance"},
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if rep.MeanOptimum <= 0 {
			t.Fatalf("%s: empty optimum", kind)
		}
	}
}

func TestRunIncludesLocalStrategies(t *testing.T) {
	c := &Config{
		Workload:   WorkloadSpec{Kind: "uniform", N: 4, D: 3, Rounds: 10, Rate: 5},
		Strategies: []string{"A_local_fix", "A_local_eager"},
		Seeds:      2,
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
}

func TestRunTrapMix(t *testing.T) {
	c := &Config{
		Workload:   WorkloadSpec{Kind: "trapmix", N: 8, D: 4, Rounds: 40, Rate: 4},
		Strategies: []string{"A_fix", "A_balance"},
		Seeds:      2,
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Sorted best-first: the rescheduler must beat the fixer on traps.
	if rep.Rows[0].Strategy != "A_balance" {
		t.Fatalf("expected A_balance first, got %v", rep.Rows[0].Strategy)
	}
}

func TestRunWorkerCountDoesNotChangeReport(t *testing.T) {
	// The report is folded in seed order, so every worker count produces the
	// same numbers — including the stddev, which is order-sensitive.
	mk := func(workers int) *Config {
		return &Config{
			Workload:   WorkloadSpec{Kind: "bursty", N: 4, D: 2, Rounds: 20, Rate: 3, On: 3, Off: 4},
			Strategies: []string{"A_fix", "A_balance"},
			Seeds:      6,
			Workers:    workers,
		}
	}
	base, err := mk(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		rep, err := mk(workers).Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.MeanOptimum != base.MeanOptimum {
			t.Fatalf("workers=%d: mean OPT %f vs %f", workers, rep.MeanOptimum, base.MeanOptimum)
		}
		for i := range base.Rows {
			a, b := base.Rows[i].Summary, rep.Rows[i].Summary
			if rep.Rows[i].Strategy != base.Rows[i].Strategy ||
				a.Ratio.Mean() != b.Ratio.Mean() || a.Ratio.Std() != b.Ratio.Std() ||
				a.Served.Mean() != b.Served.Mean() || a.Starved != b.Starved {
				t.Fatalf("workers=%d row %d differs:\n%v\n%v", workers, i, a, b)
			}
		}
	}
}
