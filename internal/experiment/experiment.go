// Package experiment runs declarative experiment suites: a JSON document
// names a workload family, a set of strategies and a seed count, and the
// runner produces per-strategy competitive-ratio summaries against the
// offline optimum. This is the reproducible-config surface a downstream
// user scripts against (cmd/schedsim -config).
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/ratio"
	"reqsched/internal/registry"
	"reqsched/internal/workload"
)

// Config is one experiment suite.
type Config struct {
	// Name labels the suite in reports.
	Name string `json:"name"`
	// Workload selects and parameterizes the generator.
	Workload WorkloadSpec `json:"workload"`
	// Strategies lists strategy names (empty = all).
	Strategies []string `json:"strategies,omitempty"`
	// Seeds is the number of seeds to aggregate over (default 1).
	Seeds int `json:"seeds,omitempty"`
	// Workers sizes the worker pool the per-seed simulations and offline
	// optima run on (<= 0: GOMAXPROCS). Results are independent of the
	// worker count: the runner folds measurements in seed order.
	Workers int `json:"workers,omitempty"`
}

// WorkloadSpec parameterizes a workload family.
type WorkloadSpec struct {
	// Kind: uniform | zipf | bursty | video | single | cchoice | mixed.
	Kind string `json:"kind"`
	// N resources, D window, Rounds with arrivals, Rate mean arrivals/round.
	N      int     `json:"n"`
	D      int     `json:"d"`
	Rounds int     `json:"rounds"`
	Rate   float64 `json:"rate"`
	// Zipf exponent (zipf, video); Items catalog size (video); On/Off/Burst
	// (bursty); Choices (cchoice); TrapEvery (trapmix); MaxWeight (weighted).
	Zipf      float64 `json:"zipf,omitempty"`
	Items     int     `json:"items,omitempty"`
	On        int     `json:"on,omitempty"`
	Off       int     `json:"off,omitempty"`
	Burst     float64 `json:"burst,omitempty"`
	Choices   int     `json:"choices,omitempty"`
	TrapEvery int     `json:"trapEvery,omitempty"`
	MaxWeight int     `json:"maxWeight,omitempty"`
}

// validate normalizes defaults and rejects nonsense.
func (c *Config) validate() error {
	w := &c.Workload
	if w.N < 1 || w.D < 1 || w.Rounds < 1 {
		return fmt.Errorf("experiment: need n, d, rounds >= 1 (got %d, %d, %d)", w.N, w.D, w.Rounds)
	}
	if w.Rate <= 0 {
		w.Rate = float64(w.N)
	}
	if c.Seeds <= 0 {
		c.Seeds = 1
	}
	switch w.Kind {
	case "uniform", "zipf", "bursty", "video", "single", "cchoice", "mixed", "trapmix", "weighted":
	default:
		return fmt.Errorf("experiment: unknown workload kind %q", w.Kind)
	}
	if w.Kind == "weighted" && w.MaxWeight < 1 {
		w.MaxWeight = 10
	}
	if w.Kind == "trapmix" {
		if w.N < 6 {
			return fmt.Errorf("experiment: trapmix needs n >= 6")
		}
		if w.TrapEvery < 1 {
			w.TrapEvery = 10
		}
	}
	if w.Kind == "zipf" || w.Kind == "video" {
		if w.Zipf <= 1 {
			w.Zipf = 1.4
		}
	}
	if w.Kind == "video" && w.Items < 2 {
		w.Items = 100
	}
	if w.Kind == "bursty" {
		if w.On < 1 {
			w.On = 5
		}
		if w.Off < 1 {
			w.Off = 10
		}
		if w.Burst <= 0 {
			w.Burst = 3 * w.Rate
		}
	}
	if w.Kind == "cchoice" {
		if w.Choices < 1 || w.Choices > w.N {
			return fmt.Errorf("experiment: choices %d out of range", w.Choices)
		}
	}
	if len(c.Strategies) == 0 {
		for name := range allStrategies() {
			c.Strategies = append(c.Strategies, name)
		}
		sort.Strings(c.Strategies)
	} else {
		for _, name := range c.Strategies {
			if _, ok := strategyFactory(name); !ok {
				return fmt.Errorf("experiment: unknown strategy %q", name)
			}
		}
	}
	return nil
}

// strategyFactory resolves a suite strategy entry: a parameterless listed
// name from allStrategies, or any registry strategy spec such as
// "compose,router=greedy,order=sjf" — so suites can compare composed
// policies against the fused strategies.
func strategyFactory(name string) (func() core.Strategy, bool) {
	if mk, ok := allStrategies()[name]; ok {
		return mk, true
	}
	if _, err := registry.NewStrategySpec(name); err != nil {
		return nil, false
	}
	return func() core.Strategy {
		s, err := registry.NewStrategySpec(name)
		if err != nil {
			panic(err) // unreachable: spec validated at resolution
		}
		return s
	}, true
}

// allStrategies exposes every parameterless registered strategy to suite
// configs — the registry's listed set plus the weighted extensions. The two
// seed-parameterized randomized strategies are excluded: a suite names a
// deterministic algorithm, the seeds axis belongs to the workload.
func allStrategies() map[string]func() core.Strategy {
	m := make(map[string]func() core.Strategy)
	for _, c := range registry.All(registry.KindStrategy) {
		// Grouped parameters (the shared service-model group) don't make a
		// strategy "parameterized" — only a schema of its own (seeds, axes)
		// does.
		own := false
		for _, p := range c.Params {
			if p.Group == "" {
				own = true
				break
			}
		}
		if own {
			continue
		}
		name := c.Name
		m[name] = func() core.Strategy {
			s, err := registry.NewStrategy(name, nil)
			if err != nil {
				panic(err) // unreachable: parameterless construction
			}
			return s
		}
	}
	return m
}

// generator returns the seed-indexed trace factory for the spec.
func (w *WorkloadSpec) generator() func(seed int64) *core.Trace {
	cfg := func(seed int64) workload.Config {
		return workload.Config{N: w.N, D: w.D, Rounds: w.Rounds, Rate: w.Rate, Seed: seed}
	}
	switch w.Kind {
	case "uniform":
		return func(s int64) *core.Trace { return workload.Uniform(cfg(s)) }
	case "zipf":
		return func(s int64) *core.Trace { return workload.Zipf(cfg(s), w.Zipf) }
	case "bursty":
		return func(s int64) *core.Trace { return workload.Bursty(cfg(s), w.On, w.Off, w.Burst) }
	case "video":
		return func(s int64) *core.Trace { return workload.VideoServer(cfg(s), w.Items, w.Zipf) }
	case "single":
		return func(s int64) *core.Trace { return workload.SingleChoice(cfg(s)) }
	case "cchoice":
		return func(s int64) *core.Trace { return workload.CChoice(cfg(s), w.Choices) }
	case "mixed":
		return func(s int64) *core.Trace { return workload.MixedDeadlines(cfg(s)) }
	case "trapmix":
		return func(s int64) *core.Trace { return workload.TrapMix(cfg(s), w.TrapEvery) }
	case "weighted":
		return func(s int64) *core.Trace { return workload.Weighted(cfg(s), w.MaxWeight) }
	}
	panic("experiment: unreachable: " + w.Kind)
}

// Load parses and validates a Config from JSON.
func Load(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("experiment: decode: %w", err)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Row is one strategy's aggregated outcome.
type Row struct {
	Strategy string
	Summary  *ratio.Summary
}

// Report is the outcome of a suite run.
type Report struct {
	Config *Config
	// MeanOptimum is the offline optimum averaged over seeds.
	MeanOptimum float64
	Rows        []Row
}

// Run executes the suite: every strategy against the same seed family. The
// per-seed work (simulation plus segmented offline optimum) runs on a
// Workers-sized pool; the report is identical for every worker count.
func (c *Config) Run() (*Report, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	gen := c.Workload.generator()
	rep := &Report{Config: c}
	optSum := 0
	for seed := int64(0); seed < int64(c.Seeds); seed++ {
		optSum += offline.OptimumParallel(gen(seed), c.Workers)
	}
	rep.MeanOptimum = float64(optSum) / float64(c.Seeds)
	for _, name := range c.Strategies {
		mk, ok := strategyFactory(name)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown strategy %q", name)
		}
		sum, err := ratio.SummarizeParallel(mk, gen, c.Seeds, c.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiment: strategy %s: %w", name, err)
		}
		rep.Rows = append(rep.Rows, Row{Strategy: name, Summary: sum})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		return rep.Rows[i].Summary.Ratio.Mean() < rep.Rows[j].Summary.Ratio.Mean()
	})
	return rep, nil
}

// Format renders the report as an aligned table, best strategy first.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "suite %q: %s workload, n=%d d=%d rounds=%d rate=%.1f, %d seed(s), mean OPT %.1f\n\n",
		r.Config.Name, r.Config.Workload.Kind, r.Config.Workload.N, r.Config.Workload.D,
		r.Config.Workload.Rounds, r.Config.Workload.Rate, r.Config.Seeds, r.MeanOptimum)
	fmt.Fprintf(&sb, "%-20s %10s %9s %9s %10s\n", "strategy", "ratio", "±std", "max", "served")
	for _, row := range r.Rows {
		s := row.Summary
		fmt.Fprintf(&sb, "%-20s %10.4f %9.4f %9.4f %10.1f\n",
			row.Strategy, s.Ratio.Mean(), s.Ratio.Std(), s.Ratio.Max(), s.Served.Mean())
	}
	return sb.String()
}
