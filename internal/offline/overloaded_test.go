package offline

import (
	"math/rand"
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

func TestOverloadedSetsEmptyWhenAllServed(t *testing.T) {
	b := core.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 0)
	tr := b.Build()
	res := core.Run(strategies.NewBalance(), tr)
	if ovs := OverloadedSets(tr, res.Log); len(ovs) != 0 {
		t.Fatalf("no failures but %d overloads", len(ovs))
	}
}

func TestOverloadedSetsClosure(t *testing.T) {
	// The set must be closed: the alternatives of every same-round request
	// served inside S are inside S.
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 40; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(6), 8)
		res := core.Run(strategies.NewFix(), tr)
		served := map[int]*core.Fulfillment{}
		for i := range res.Log {
			served[res.Log[i].Req.ID] = &res.Log[i]
		}
		for _, ov := range OverloadedSets(tr, res.Log) {
			inS := map[int]bool{}
			for _, r := range ov.Resources {
				inS[r] = true
			}
			// Failed requests' alternatives are in S.
			for _, r := range ov.Failed {
				for _, a := range r.Alts {
					if !inS[a] {
						t.Fatalf("trial %d: failed %v alternative %d outside S", trial, r, a)
					}
				}
			}
			// Closure over same-round scheduled requests.
			for i := range tr.Arrivals[ov.Round] {
				req := &tr.Arrivals[ov.Round][i]
				f := served[req.ID]
				if f == nil || !inS[f.Res] {
					continue
				}
				for _, a := range req.Alts {
					if !inS[a] {
						t.Fatalf("trial %d: closure violated at resource %d", trial, a)
					}
				}
			}
		}
	}
}

func TestTheorem33ClaimsOnAFix(t *testing.T) {
	// Claim (1): on every A_fix execution with uniform windows, every
	// resource of an overloaded set serves a cohort request in its last
	// window slot. Claim (2): the optimum cannot serve more than (d-1)|S|
	// of the failed requests; since OPT-ALG equals the number of augmenting
	// paths, the failed-and-OPT-servable count per round is bounded by the
	// total (d-1)·sum|S|.
	for seed := int64(0); seed < 8; seed++ {
		tr := workload.Uniform(workload.Config{N: 5, D: 3, Rounds: 25, Rate: 9, Seed: seed})
		res := core.Run(strategies.NewFix(), tr)
		ovs := OverloadedSets(tr, res.Log)
		capacity := 0
		failed := 0
		for _, ov := range ovs {
			if !LastSlotUsedByCohort(tr, res.Log, ov, tr.D) {
				t.Fatalf("seed %d round %d: overloaded resource idle in last cohort slot",
					seed, ov.Round)
			}
			capacity += (tr.D - 1) * len(ov.Resources)
			failed += len(ov.Failed)
		}
		// The proof's capacity argument: even OPT cannot recover more than
		// (d-1)|S| failed requests per round, hence in total.
		loss := Optimum(tr) - res.Fulfilled
		if loss > capacity {
			t.Fatalf("seed %d: OPT recovers %d failed requests, capacity bound %d",
				seed, loss, capacity)
		}
		if failed < loss {
			t.Fatalf("seed %d: accounting broken: %d failed < %d loss", seed, failed, loss)
		}
	}
}

func TestTheorem33ClaimsOnAdversarialTrace(t *testing.T) {
	// Same claims on the Theorem 2.1 input itself: per phase the overloaded
	// set is exactly {S2, S3} and 2d-2... the failed block requests' set.
	d := 4
	b := core.NewBuilder(4, d)
	b.Block(0, 1, 2)
	for p := 1; p <= 6; p++ {
		t0 := p*d - 1
		for i := 0; i < d-1; i++ {
			b.Add(t0, 1, 0)
			b.Add(t0, 2, 3)
		}
		b.Block(t0+1, 1, 2)
	}
	tr := b.Build()
	res := core.Run(strategies.NewFix(), tr)
	ovs := OverloadedSets(tr, res.Log)
	if len(ovs) == 0 {
		t.Fatal("adversarial trace produced no overloads")
	}
	for _, ov := range ovs {
		if !LastSlotUsedByCohort(tr, res.Log, ov, d) {
			t.Fatalf("round %d: claim (1) violated", ov.Round)
		}
		// The failed requests are block requests on (S2, S3) = {1, 2}.
		for _, r := range ov.Resources {
			if r != 1 && r != 2 {
				t.Fatalf("round %d: unexpected overloaded resource %d", ov.Round, r)
			}
		}
		if len(ov.Failed) != 2*d-2 {
			t.Fatalf("round %d: %d failed, want %d", ov.Round, len(ov.Failed), 2*d-2)
		}
	}
}
