package offline

import (
	"fmt"

	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// This file implements the analysis device of the paper's upper-bound proofs
// (Section 3): compare the online schedule with a fixed optimal schedule via
// the symmetric difference of their matchings and classify the augmenting
// paths by *order* — the number of requests on the path. Theorem 3.3's proof
// starts from "no request that fails in A_fix is the beginning of an
// augmenting path of order 1"; Theorem 3.5's from "every augmenting path is
// of order at least 3" for A_eager. AugmentingOrders makes those statements
// checkable on real executions.

// LogMatching converts a fulfillment log into a matching on the trace's full
// request/slot graph.
func LogMatching(tr *core.Trace, log []core.Fulfillment) *matching.Matching {
	m := matching.NewMatching(tr.NumRequests(), tr.Horizon()*tr.N)
	for _, f := range log {
		m.Match(f.Req.ID, SlotIndex(tr.N, f.Res, f.Round))
	}
	return m
}

// AugmentingOrders diffs the online schedule against one optimal schedule
// and returns a histogram: orders[k] is the number of augmenting paths (for
// the online matching) containing exactly k requests. The total loss of the
// online algorithm against this optimum equals the total number of
// augmenting paths (sum over the histogram).
func AugmentingOrders(tr *core.Trace, log []core.Fulfillment) map[int]int {
	alg := LogMatching(tr, log)
	opt, _ := OptimumMatching(tr)
	comps := matching.SymmetricDifference(alg, opt)
	orders := make(map[int]int)
	for i := range comps {
		c := &comps[i]
		if !matching.AugmentingFor(c, alg) {
			continue
		}
		requests := 0
		for _, isLeft := range c.Left {
			if isLeft {
				requests++
			}
		}
		orders[requests]++
	}
	return orders
}

// MinAugmentingOrder returns the smallest order in the histogram, or 0 when
// the online schedule is optimal (no augmenting paths at all).
func MinAugmentingOrder(orders map[int]int) int {
	min := 0
	for k, v := range orders {
		if v > 0 && (min == 0 || k < min) {
			min = k
		}
	}
	return min
}

// TotalAugmenting sums the histogram: exactly OPT - ALG.
func TotalAugmenting(orders map[int]int) int {
	total := 0
	for _, v := range orders {
		total += v
	}
	return total
}

// CheckOrderAtLeast verifies the structural claim of an upper-bound proof:
// every augmenting path against the optimum has at least minOrder requests.
// Returns an error naming the violating order otherwise.
func CheckOrderAtLeast(tr *core.Trace, log []core.Fulfillment, minOrder int) error {
	orders := AugmentingOrders(tr, log)
	if m := MinAugmentingOrder(orders); m != 0 && m < minOrder {
		return fmt.Errorf("offline: augmenting path of order %d exists (want >= %d); histogram %v",
			m, minOrder, orders)
	}
	return nil
}
