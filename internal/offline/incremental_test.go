package offline

import (
	"math/rand"
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

// checkIncremental asserts OptimumIncremental == Optimum, and that a reused
// Solver agrees too.
func checkIncremental(t *testing.T, name string, tr *core.Trace, sv *Solver) {
	t.Helper()
	want := Optimum(tr)
	if got := OptimumIncremental(tr); got != want {
		t.Fatalf("%s: OptimumIncremental = %d, Optimum = %d", name, got, want)
	}
	if got := sv.Optimum(tr); got != want {
		t.Fatalf("%s: Solver.Optimum = %d, Optimum = %d", name, got, want)
	}
}

func TestOptimumIncrementalEqualsOptimumOnAdversaries(t *testing.T) {
	cons := []adversary.Construction{
		adversary.Fix(2, 6),
		adversary.Fix(4, 3),
		adversary.Current(3, 3),
		adversary.CurrentFactorial(3, 2),
		adversary.FixBalance(2, 6),
		adversary.FixBalance(4, 3),
		adversary.Eager(2, 6),
		adversary.Eager(4, 3),
		adversary.Balance(2, 3, 3),
		adversary.Balance(3, 2, 2),
		adversary.UniversalAnyD(4, 3),
		adversary.UniversalAnyD(5, 2),
		adversary.LocalFix(3, 4),
		adversary.EDFWorstCase(3, 4),
		adversary.Universal(3, 3),
		adversary.Universal(6, 2),
	}
	sv := NewSolver()
	for _, c := range cons {
		tr := c.Trace
		if tr == nil {
			_, tr = core.RunAdaptive(strategies.NewFix(), c.Source)
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s: adaptive trace invalid: %v", c.Name, err)
			}
		}
		checkIncremental(t, c.Name, tr, sv)
	}
}

func TestOptimumIncrementalEqualsOptimumRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sv := NewSolver()
	for i := 0; i < 150; i++ {
		tr := gappedTrace(rng, 2+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(4), 5)
		checkIncremental(t, "gapped", tr, sv)
	}
	for i := 0; i < 150; i++ {
		tr := randomTrace(rng, 2+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(8), 6)
		checkIncremental(t, "dense", tr, sv)
	}
	for seed := int64(0); seed < 100; seed++ {
		cfg := workload.Config{N: 4, D: 3, Rounds: 10, Rate: 3, Seed: seed}
		checkIncremental(t, "uniform", workload.Uniform(cfg), sv)
	}
	for seed := int64(0); seed < 100; seed++ {
		cfg := workload.Config{N: 4, D: 2, Rounds: 12, Rate: 2, Seed: seed}
		checkIncremental(t, "bursty", workload.Bursty(cfg, 3, 4, 5), sv)
	}
}

// TestIncrementalOptReorderWithinSegment pins the satellite property: feeding
// a segment's requests in any order yields the same sealed optimum, because
// max-cardinality matching is order-independent. Race-enabled via the -tools
// race list.
func TestIncrementalOptReorderWithinSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(6), 5)
		want := Optimum(tr)
		reqs := tr.Requests()
		if len(reqs) == 0 {
			continue
		}
		o := NewIncrementalOpt(tr.N)
		for shuffle := 0; shuffle < 3; shuffle++ {
			rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
			o.Rebase(0)
			for _, r := range reqs {
				o.AddRequest(r)
			}
			if got := o.Seal(); got != want {
				t.Fatalf("trial %d shuffle %d: sealed %d, Optimum %d", trial, shuffle, got, want)
			}
		}
	}
}

// TestIncrementalOptSealIsolation pins that segments fed through one reused
// tracker are independent: each seal reports exactly that segment's optimum.
func TestIncrementalOptSealIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	o := NewIncrementalOpt(5)
	for seg := 0; seg < 50; seg++ {
		tr := randomTrace(rng, 5, 1+rng.Intn(3), 1+rng.Intn(6), 4)
		for _, r := range tr.Requests() {
			o.AddRequest(r)
		}
		if got, want := o.Seal(), Optimum(tr); got != want {
			t.Fatalf("segment %d: sealed %d, Optimum %d", seg, got, want)
		}
	}
}

// TestIncrementalOptServableBit pins Add's return value: it reports whether
// the offline optimum of the open segment grew, so the running count of true
// returns equals Opt().
func TestIncrementalOptServableBit(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr := randomTrace(rng, 4, 3, 6, 5)
	o := NewIncrementalOpt(tr.N)
	grew := 0
	for _, r := range tr.Requests() {
		if o.AddRequest(r) {
			grew++
		}
		if grew != o.Opt() {
			t.Fatalf("after request %d: %d grows, Opt %d", r.ID, grew, o.Opt())
		}
	}
	if o.Opt() != Optimum(tr) {
		t.Fatalf("final Opt %d, Optimum %d", o.Opt(), Optimum(tr))
	}
}

func BenchmarkOptimumIncrementalVsCold(b *testing.B) {
	tr := workload.Bursty(workload.Config{N: 16, D: 4, Rounds: 4000, Rate: 0, Seed: 5}, 4, 8, 50)
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			OptimumIncremental(tr)
		}
	})
	b.Run("solver_reused", func(b *testing.B) {
		b.ReportAllocs()
		sv := NewSolver()
		for i := 0; i < b.N; i++ {
			sv.Optimum(tr)
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Optimum(tr)
		}
	})
}
