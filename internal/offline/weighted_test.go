package offline

import (
	"bytes"
	"math/rand"
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/strategies"
	"reqsched/internal/trace"
	"reqsched/internal/workload"
)

// checkWeighted asserts that both weighted parallel solvers agree exactly
// with their monolithic counterparts for several worker counts: identical
// max profit, identical (unique) minimum latency, and a min-latency log that
// is a valid schedule of maximum cardinality whose recomputed latency matches
// the reported total.
func checkWeighted(t *testing.T, name string, tr *core.Trace) {
	t.Helper()
	wantProfit := MaxProfit(tr)
	wantLog, wantLat := OptimumMinLatency(tr)
	for _, workers := range []int{1, 2, 4, 8} {
		if got := MaxProfitParallel(tr, workers); got != wantProfit {
			t.Fatalf("%s: MaxProfitParallel(workers=%d) = %d, MaxProfit = %d",
				name, workers, got, wantProfit)
		}
		log, lat := OptimumMinLatencyParallel(tr, workers)
		if lat != wantLat {
			t.Fatalf("%s: OptimumMinLatencyParallel(workers=%d) latency %d, OptimumMinLatency %d",
				name, workers, lat, wantLat)
		}
		if len(log) != len(wantLog) {
			t.Fatalf("%s: parallel min-latency schedule serves %d, monolithic %d",
				name, len(log), len(wantLog))
		}
		if err := core.ValidateLog(tr, log); err != nil {
			t.Fatalf("%s: parallel min-latency log invalid (workers=%d): %v", name, workers, err)
		}
		sum := 0
		for _, f := range log {
			sum += f.Round - f.Req.Arrive
		}
		if sum != lat {
			t.Fatalf("%s: log latency %d != reported %d (workers=%d)", name, sum, lat, workers)
		}
	}
}

func TestWeightedParallelEqualsMonolithicOnAdversaries(t *testing.T) {
	// Every Table 1 construction family, unweighted and with harmonic weights
	// grafted on (the adversary shapes stress the segmentation; the weights
	// stress the objectives).
	cons := []adversary.Construction{
		adversary.Fix(2, 6),
		adversary.Fix(4, 3),
		adversary.Current(3, 3),
		adversary.CurrentFactorial(3, 2),
		adversary.FixBalance(2, 6),
		adversary.FixBalance(4, 3),
		adversary.Eager(2, 6),
		adversary.Eager(4, 3),
		adversary.Balance(2, 3, 3),
		adversary.Balance(3, 2, 2),
		adversary.UniversalAnyD(4, 3),
		adversary.UniversalAnyD(5, 2),
		adversary.LocalFix(3, 4),
		adversary.EDFWorstCase(3, 4),
		adversary.Universal(3, 3),
		adversary.Universal(6, 2),
	}
	for _, c := range cons {
		tr := c.Trace
		if tr == nil {
			// Adaptive constructions generate their trace during a run.
			_, tr = core.RunAdaptive(strategies.NewFix(), c.Source)
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s: adaptive trace invalid: %v", c.Name, err)
			}
		}
		checkWeighted(t, c.Name, tr)
		checkWeighted(t, c.Name+"+weights", workload.WithWeights(tr, 8, 3))
	}
}

func TestWeightedParallelEqualsMonolithicRandom(t *testing.T) {
	// >= 1000 seeded weighted workloads across the same shapes as the
	// cardinality property test: bursty multi-segment, dense single-segment,
	// single-choice, and generator-family traces.
	rng := rand.New(rand.NewSource(17))
	trials := 0
	weighted := func(tr *core.Trace) *core.Trace {
		return workload.WithWeights(tr, 1+rng.Intn(9), rng.Int63())
	}
	for seed := int64(0); seed < 250; seed++ {
		tr := weighted(gappedTrace(rng, 2+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(4), 5))
		checkWeighted(t, "gapped", tr)
		trials++
	}
	for seed := int64(0); seed < 250; seed++ {
		tr := weighted(randomTrace(rng, 2+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(8), 6))
		checkWeighted(t, "dense", tr)
		trials++
	}
	for seed := int64(0); seed < 250; seed++ {
		tr := weighted(randomSingleChoiceTrace(rng, 1+rng.Intn(4), 1+rng.Intn(5), 1+rng.Intn(8), 4))
		checkWeighted(t, "single-choice", tr)
		trials++
	}
	for seed := int64(0); seed < 150; seed++ {
		cfg := workload.Config{N: 4, D: 3, Rounds: 10, Rate: 3, Seed: seed}
		checkWeighted(t, "uniform", weighted(workload.Uniform(cfg)))
		trials++
	}
	for seed := int64(0); seed < 150; seed++ {
		cfg := workload.Config{N: 4, D: 2, Rounds: 12, Rate: 2, Seed: seed}
		checkWeighted(t, "bursty", weighted(workload.Bursty(cfg, 3, 4, 5)))
		trials++
	}
	if trials < 1000 {
		t.Fatalf("only %d trials, want >= 1000", trials)
	}
}

func TestMaxProfitStreamEqualsMonolithic(t *testing.T) {
	// Round-trip weighted traces through the JSONL stream segmenter and sum
	// the per-segment profits on the pool — must equal the whole-trace solver.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		tr := workload.WithWeights(
			gappedTrace(rng, 2+rng.Intn(4), 1+rng.Intn(3), 2+rng.Intn(4), 5),
			1+rng.Intn(9), rng.Int63())
		var buf bytes.Buffer
		if err := trace.WriteStream(&buf, tr); err != nil {
			t.Fatalf("trial %d: write stream: %v", trial, err)
		}
		profit, nsegs, err := MaxProfitStream(trace.Segments(&buf), 3)
		if err != nil {
			t.Fatalf("trial %d: stream: %v", trial, err)
		}
		if want := MaxProfit(tr); profit != want {
			t.Fatalf("trial %d: MaxProfitStream = %d (%d segments), MaxProfit = %d",
				trial, profit, nsegs, want)
		}
	}
}

func TestWeightedParallelUnweightedConsistency(t *testing.T) {
	// On unweighted traces profit degenerates to cardinality, and the
	// min-latency schedule must still have maximum cardinality.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		tr := gappedTrace(rng, 2+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(3), 4)
		opt := Optimum(tr)
		if got := MaxProfitParallel(tr, 4); got != opt {
			t.Fatalf("trial %d: unweighted MaxProfitParallel %d != Optimum %d", trial, got, opt)
		}
		log, _ := OptimumMinLatencyParallel(tr, 4)
		if len(log) != opt {
			t.Fatalf("trial %d: min-latency schedule serves %d, Optimum %d", trial, len(log), opt)
		}
	}
}

func TestWeightedParallelEmptyAndDegenerate(t *testing.T) {
	empty := core.NewBuilder(3, 2).Build()
	if got := MaxProfitParallel(empty, 4); got != 0 {
		t.Fatalf("empty trace profit: %d", got)
	}
	if log, lat := OptimumMinLatencyParallel(empty, 4); len(log) != 0 || lat != 0 {
		t.Fatalf("empty trace min latency: %d fulfillments, latency %d", len(log), lat)
	}
	b := core.NewBuilder(1, 1)
	b.Add(0, 0)
	one := b.Build()
	if got := MaxProfitParallel(one, 8); got != 1 {
		t.Fatalf("one request profit: %d", got)
	}
	if log, lat := OptimumMinLatencyParallel(one, 8); len(log) != 1 || lat != 0 {
		t.Fatalf("one request min latency: %d fulfillments, latency %d", len(log), lat)
	}
}
