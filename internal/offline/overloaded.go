package offline

import (
	"sort"

	"reqsched/internal/core"
)

// This file makes the "overloaded resource set" accounting of Theorem 3.3's
// proof executable. For a round t with failed requests, the proof builds a
// set S of overloaded resources: start with the alternatives of the failed
// requests injected at t, then repeatedly add the alternatives of requests
// injected at t that are *scheduled* at resources already in S, until the
// set is closed. The proof then argues (for A_fix-style maximal strategies):
//
//  1. for every resource in S, the last window slot s_{i,t+d-1} serves a
//     request injected at t (otherwise the maximality rule is violated);
//  2. at most (d-1)|S| of the failed requests can be served even by the
//     optimum, which caps the competitive ratio at 2 - 1/d.
//
// OverloadedSets computes S per injection round from an actual execution;
// the tests verify both claims on random and adversarial A_fix runs.

// Overload describes one injection round's overloaded-set accounting.
type Overload struct {
	// Round is the injection round t.
	Round int
	// Failed lists the requests injected at t that the schedule never
	// served, in ID order.
	Failed []*core.Request
	// Resources is the closed overloaded resource set S, ascending.
	Resources []int
	// ScheduledAt counts, per resource of S, the requests injected at t
	// that the schedule served on that resource (parallel to Resources).
	ScheduledAt []int
}

// OverloadedSets computes the per-round overload accounting of a schedule.
// Rounds whose injected requests were all served are omitted.
func OverloadedSets(tr *core.Trace, log []core.Fulfillment) []Overload {
	served := make(map[int]*core.Fulfillment, len(log))
	for i := range log {
		served[log[i].Req.ID] = &log[i]
	}
	var out []Overload
	for t, injected := range tr.Arrivals {
		var failed []*core.Request
		for i := range injected {
			if served[injected[i].ID] == nil {
				failed = append(failed, &injected[i])
			}
		}
		if len(failed) == 0 {
			continue
		}
		inS := make(map[int]bool)
		for _, r := range failed {
			for _, a := range r.Alts {
				inS[a] = true
			}
		}
		// Close the set: alternatives of same-round requests served inside S
		// join S.
		for changed := true; changed; {
			changed = false
			for i := range injected {
				f := served[injected[i].ID]
				if f == nil || !inS[f.Res] {
					continue
				}
				for _, a := range injected[i].Alts {
					if !inS[a] {
						inS[a] = true
						changed = true
					}
				}
			}
		}
		ov := Overload{Round: t, Failed: failed}
		for res := range inS {
			ov.Resources = append(ov.Resources, res)
		}
		sort.Ints(ov.Resources)
		ov.ScheduledAt = make([]int, len(ov.Resources))
		idx := make(map[int]int, len(ov.Resources))
		for i, res := range ov.Resources {
			idx[res] = i
		}
		for i := range injected {
			if f := served[injected[i].ID]; f != nil {
				if j, ok := idx[f.Res]; ok {
					ov.ScheduledAt[j]++
				}
			}
		}
		out = append(out, ov)
	}
	return out
}

// LastSlotUsedByCohort reports, for an overload at round t, whether every
// resource of S serves a round-t request in its last window slot t+d-1 —
// claim (1) of the Theorem 3.3 proof for A_fix. d is the uniform window of
// the failed requests' cohort (the claim is stated for uniform windows).
func LastSlotUsedByCohort(tr *core.Trace, log []core.Fulfillment, ov Overload, d int) bool {
	type slot = [2]int
	bySlot := make(map[slot]*core.Request)
	for i := range log {
		bySlot[slot{log[i].Res, log[i].Round}] = log[i].Req
	}
	for _, res := range ov.Resources {
		r := bySlot[slot{res, ov.Round + d - 1}]
		if r == nil || r.Arrive != ov.Round {
			return false
		}
	}
	return true
}
