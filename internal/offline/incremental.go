// Incremental offline optimum. The segmented solvers in this package answer
// "what was OPT" after a segment is complete; IncrementalOpt answers "what is
// OPT so far" while a segment is still open, by maintaining a maximum matching
// (matching.Incremental) that grows one request at a time. Max-cardinality
// matching is order-independent, so a sealed segment reports bit for bit the
// same optimum as Optimum/OptimumParallel/OptimumStream on the same requests.
package offline

import (
	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// IncrementalOpt maintains the offline optimum of an open segment as requests
// arrive, one augmenting-path search per request. Slots are remapped densely:
// slot (res, t) of the current segment maps to right vertex (t-base)*n + res,
// where base is the arrival round of the segment's first request — O(1) per
// edge and allocation-free once buffers reach steady state, which is what
// lets the serve daemon's rolling-OPT worker run per-admitted-request instead
// of per-sealed-segment. Not safe for concurrent use.
type IncrementalOpt struct {
	n       int
	capc    int
	hold    int
	inc     *matching.Incremental
	base    int     // absolute epoch of right-vertex row 0; valid when started
	started bool    // base has been fixed for the open segment
	adj     []int32 // per-request neighbor buffer, reused
	count   int     // requests fed since the last Seal
}

// NewIncrementalOpt returns an incremental optimum tracker for n resources
// under the unit service model.
func NewIncrementalOpt(n int) *IncrementalOpt {
	return NewIncrementalOptModel(n, core.UnitModel())
}

// NewIncrementalOptModel returns an incremental optimum tracker for n
// resources under service model m: right vertices are the (epoch, resource,
// unit) slots of the epoch relaxation, so a sealed segment reports bit for
// bit the same optimum as the batch solvers under the same model.
func NewIncrementalOptModel(n int, m core.ServiceModel) *IncrementalOpt {
	m = m.Norm()
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &IncrementalOpt{n: n, capc: m.Cap, hold: m.Hold, inc: matching.NewIncremental()}
}

// Rebase fixes the slot-row origin of the next open segment explicitly (a
// round; rows start at its epoch), so its requests may then be fed in any
// order as long as none arrives before base — the shape the reordering
// property tests exercise. Only valid while no segment is open; without it,
// Add anchors base to its first request and requires nondecreasing arrival
// rounds.
func (o *IncrementalOpt) Rebase(base int) {
	if o.count > 0 {
		panic("offline: Rebase with an open segment")
	}
	o.base, o.started = base/o.hold, true
}

// Add feeds one request — arrival round t, deadline window d, resource
// alternatives alts — and repairs the matching. It reports whether the request
// is servable by an offline schedule of everything seen since the last Seal
// (i.e. whether the optimum grew). Requests must arrive in nondecreasing t
// within a segment (unless Rebase fixed an earlier origin); t may jump
// backwards only across a Seal.
func (o *IncrementalOpt) Add(t, d int, alts []int) bool {
	eLo, eHi := t/o.hold, (t+d-1)/o.hold
	if !o.started {
		o.base, o.started = eLo, true
	}
	o.count++
	o.inc.EnsureRight((eHi - o.base + 1) * o.n * o.capc)
	o.adj = o.adj[:0]
	for _, a := range alts {
		for e := eLo; e <= eHi; e++ {
			for u := 0; u < o.capc; u++ {
				o.adj = append(o.adj, int32(((e-o.base)*o.n+a)*o.capc+u))
			}
		}
	}
	return o.inc.AddLeft(o.adj)
}

// AddRequest feeds one core.Request.
func (o *IncrementalOpt) AddRequest(r *core.Request) bool {
	return o.Add(r.Arrive, r.D, r.Alts)
}

// Opt returns the offline optimum of every request fed since the last Seal.
func (o *IncrementalOpt) Opt() int { return o.inc.Size() }

// Count returns the number of requests fed since the last Seal.
func (o *IncrementalOpt) Count() int { return o.count }

// Seal closes the open segment, returning its final optimum and resetting the
// tracker for the next segment. All buffers are kept, so a long-running
// consumer allocates nothing per segment at steady state.
func (o *IncrementalOpt) Seal() int {
	opt := o.inc.Size()
	o.inc.Rewind()
	o.count, o.started = 0, false
	return opt
}

// OptimumIncremental returns exactly Optimum(tr), computed by feeding the
// trace's requests in arrival order through an IncrementalOpt — the
// single-pass O(request × path) shape the serve rolling-ratio worker uses,
// exposed whole-trace for verification and benchmarks. Segment seals are
// unnecessary for the value: maximum matching decomposes over independent
// pieces whether or not the matcher is rewound between them.
func OptimumIncremental(tr *core.Trace) int {
	o := NewIncrementalOptModel(tr.N, tr.Model)
	opt := 0
	maxDL := -1
	for t := range tr.Arrivals {
		rs := tr.Arrivals[t]
		if len(rs) == 0 {
			continue
		}
		// Seal at clean cuts so right-vertex rows restart at the new base and
		// memory stays proportional to the widest open window, not the horizon.
		// Cuts must be epoch-aligned so no epoch slot spans the seal.
		if o.Count() > 0 && t > maxDL && t%o.hold == 0 {
			opt += o.Seal()
		}
		for i := range rs {
			r := &rs[i]
			o.AddRequest(r)
			if dl := r.Deadline(); dl > maxDL {
				maxDL = dl
			}
		}
	}
	return opt + o.Seal()
}

// Solver is a reusable batch segment solver: Optimum(tr) with the segSolver
// scratch (graph, matching, Hopcroft–Karp buffers) kept across calls, so a
// long-running consumer solving many segments — the serve rolling-ratio
// worker's batch fallback — allocates per its largest segment, not per
// segment. Not safe for concurrent use.
type Solver struct {
	ss *segSolver
}

// NewSolver returns a batch solver with empty scratch.
func NewSolver() *Solver { return &Solver{ss: newSegSolver()} }

// Optimum returns exactly Optimum(tr), reusing the solver's scratch.
func (s *Solver) Optimum(tr *core.Trace) int {
	return int(s.ss.cardinality(spaceOf(tr), wholeTraceSegment(tr)))
}
