package offline

import (
	"math/rand"
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

func TestAugmentingTotalsEqualLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 30; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(8), 6)
		opt := Optimum(tr)
		for _, s := range []core.Strategy{strategies.NewFix(), strategies.NewEager()} {
			res := core.Run(s, tr)
			orders := AugmentingOrders(tr, res.Log)
			if got := TotalAugmenting(orders); got != opt-res.Fulfilled {
				t.Fatalf("trial %d %s: %d augmenting paths but loss is %d-%d",
					trial, s.Name(), got, opt, res.Fulfilled)
			}
		}
	}
}

func TestFixFamilyHasNoOrderOnePaths(t *testing.T) {
	// Theorem 3.3's opening claim: a failed A_fix request is never directly
	// connected to an unused slot (the matching is maximal), so every
	// augmenting path has order >= 2. Same for the maximal baselines.
	for seed := int64(0); seed < 6; seed++ {
		tr := workload.Uniform(workload.Config{N: 5, D: 3, Rounds: 30, Rate: 9, Seed: seed})
		for _, s := range []core.Strategy{
			strategies.NewFix(), strategies.NewFixBalance(),
			strategies.NewCurrent(), strategies.NewFirstFit(),
		} {
			res := core.Run(s, tr)
			if err := CheckOrderAtLeast(tr, res.Log, 2); err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
		}
	}
}

func TestEagerFamilyHasNoOrderTwoPaths(t *testing.T) {
	// Theorem 3.5's claim: A_eager admits no augmenting paths of order 1 or
	// 2, because each round it computes a maximum matching over the whole
	// known subgraph. Same for A_balance (Theorem 3.6 relies on it too).
	for seed := int64(0); seed < 6; seed++ {
		tr := workload.Uniform(workload.Config{N: 5, D: 4, Rounds: 30, Rate: 9, Seed: seed})
		for _, s := range []core.Strategy{strategies.NewEager(), strategies.NewBalance()} {
			res := core.Run(s, tr)
			if err := CheckOrderAtLeast(tr, res.Log, 3); err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
		}
	}
}

func TestEagerOrderClaimOnAdversarialInput(t *testing.T) {
	// The same claims on the inputs engineered to hurt: the Theorem 2.4
	// trace forces A_eager's full 4/3 loss, yet every augmenting path still
	// has order >= 3.
	b := core.NewBuilder(4, 4)
	b.Block(0, 0, 3)
	for p := 1; p <= 10; p++ {
		t0 := 2 + (p-1)*4
		odd := p%2 == 1
		inner, outer := [2]int{1, 2}, [2]int{0, 3}
		if !odd {
			inner, outer = outer, inner
		}
		for i := 0; i < 2; i++ {
			b.Add(t0, outer[0], inner[0])
		}
		for i := 0; i < 2; i++ {
			b.Add(t0, inner[1], outer[1])
		}
		for i := 0; i < 4; i++ {
			b.Add(t0, inner[0], inner[1])
		}
		b.Block(t0+2, inner[0], inner[1])
	}
	tr := b.Build()
	res := core.Run(strategies.NewEager(), tr)
	if err := CheckOrderAtLeast(tr, res.Log, 3); err != nil {
		t.Fatal(err)
	}
	orders := AugmentingOrders(tr, res.Log)
	if TotalAugmenting(orders) == 0 {
		t.Fatal("expected losses on the adversarial trace")
	}
}

func TestMinAugmentingOrderHelpers(t *testing.T) {
	if MinAugmentingOrder(map[int]int{}) != 0 {
		t.Fatal("empty histogram should report 0")
	}
	if MinAugmentingOrder(map[int]int{3: 1, 2: 0, 5: 4}) != 3 {
		t.Fatal("zero-count entries must be ignored")
	}
	if TotalAugmenting(map[int]int{2: 3, 4: 1}) != 4 {
		t.Fatal("total wrong")
	}
}

func TestLogMatchingRoundTrip(t *testing.T) {
	b := core.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 0)
	tr := b.Build()
	res := core.Run(strategies.NewBalance(), tr)
	m := LogMatching(tr, res.Log)
	if m.Size() != res.Fulfilled {
		t.Fatalf("matching size %d != fulfilled %d", m.Size(), res.Fulfilled)
	}
}
