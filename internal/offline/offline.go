// Package offline computes the optimal offline schedule of a trace: the
// maximum-cardinality matching in the paper's bipartite graph G = (R ∪ S, E)
// between requests and time slots (Section 1.2). Competitive ratios are
// measured against this optimum.
package offline

import (
	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// SlotIndex maps the slot of resource res at round t to its right-vertex
// index in the request/slot graph of a trace over n resources.
func SlotIndex(n, res, t int) int { return t*n + res }

// SlotOf inverts SlotIndex.
func SlotOf(n, idx int) (res, t int) { return idx % n, idx / n }

// BuildGraph constructs the full bipartite graph of a trace: left vertices
// are requests in ID order; right vertices are all (resource, round) slots up
// to the trace horizon. Each request is adjacent to the slots of its
// alternatives (in listed order) during its deadline window, earliest round
// first — the same deterministic edge order the online strategies use.
func BuildGraph(tr *core.Trace) *matching.Graph {
	horizon := tr.Horizon()
	g := matching.NewGraph(tr.NumRequests(), horizon*tr.N)
	for _, r := range tr.Requests() {
		for _, a := range r.Alts {
			for t := r.Arrive; t <= r.Deadline(); t++ {
				g.AddEdge(r.ID, SlotIndex(tr.N, a, t))
			}
		}
	}
	return g
}

// Optimum returns the number of requests an optimal offline algorithm
// fulfills: the maximum matching cardinality of the trace graph, computed by
// Hopcroft–Karp.
func Optimum(tr *core.Trace) int {
	return matching.HopcroftKarp(BuildGraph(tr)).Size()
}

// OptimumMatching returns one optimal offline schedule as an explicit
// matching plus its cardinality.
func OptimumMatching(tr *core.Trace) (*matching.Matching, int) {
	m := matching.HopcroftKarp(BuildGraph(tr))
	return m, m.Size()
}

// OptimumSchedule converts an optimal matching into a fulfillment log,
// suitable for core.ValidateLog and for diffing against an online schedule.
func OptimumSchedule(tr *core.Trace) []core.Fulfillment {
	m, _ := OptimumMatching(tr)
	reqs := tr.Requests()
	var log []core.Fulfillment
	for l, r := range m.L2R {
		if r == matching.None {
			continue
		}
		res, t := SlotOf(tr.N, int(r))
		log = append(log, core.Fulfillment{Req: reqs[l], Res: res, Round: t})
	}
	return log
}

// OptimumByFlow recomputes the optimum with Dinic max-flow — an independent
// implementation used to cross-check Optimum in tests.
func OptimumByFlow(tr *core.Trace) int {
	return matching.MaxMatchingByFlow(BuildGraph(tr))
}

// OptimumMinLatency returns an optimal offline schedule that, among all
// maximum-cardinality schedules, minimizes the total service latency (sum of
// service round minus arrival round), computed by min-cost max-flow charging
// each matched pair its true latency: −arrive on the request side, the slot
// round on the slot side. Charging both sides makes the minimized value the
// latency itself — well-defined however ties between equally cheap schedules
// break, which is what lets OptimumMinLatencyParallel pin against it exactly.
// Useful as the latency baseline for the examples: the online strategies'
// mean latency can be compared against the best any schedule of maximum
// throughput could do.
func OptimumMinLatency(tr *core.Trace) ([]core.Fulfillment, int) {
	g := BuildGraph(tr)
	reqs := tr.Requests()
	arrive := make([]int64, len(reqs))
	for i, r := range reqs {
		arrive[i] = -int64(r.Arrive)
	}
	costs := make([]int64, g.NRight())
	for idx := range costs {
		_, t := SlotOf(tr.N, idx)
		costs[idx] = int64(t)
	}
	m := matching.MinCostMatchingLR(g, arrive, costs)
	var log []core.Fulfillment
	latency := 0
	for l, r := range m.L2R {
		if r == matching.None {
			continue
		}
		res, t := SlotOf(tr.N, int(r))
		log = append(log, core.Fulfillment{Req: reqs[l], Res: res, Round: t})
		latency += t - reqs[l].Arrive
	}
	return log, latency
}

// MaxProfit returns the maximum total weight an offline schedule can serve —
// the optimum of the weighted extension (equals Optimum on unweighted
// traces).
func MaxProfit(tr *core.Trace) int {
	g := BuildGraph(tr)
	reqs := tr.Requests()
	profit := make([]int64, len(reqs))
	for i, r := range reqs {
		profit[i] = int64(r.Weight())
	}
	m := matching.MaxProfitMatching(g, profit)
	return int(matching.ProfitOf(m, profit))
}

// EarliestDeadlineSchedule serves each trace greedily: in every round, every
// resource serves, among the live requests that name it and are not yet
// served this round, the one with the earliest deadline (ties by ID), its own
// copy bookkeeping ignored. For single-alternative traces this is the EDF
// strategy of Observation 3.1 and returns the optimum. The function returns
// the number of requests fulfilled.
//
// Resources are scanned in index order within a round; because a request may
// name several resources, a request already taken by a lower-indexed resource
// this round is skipped by higher-indexed ones.
func EarliestDeadlineSchedule(tr *core.Trace) int {
	horizon := tr.Horizon()
	// perResource[i] holds live request pointers naming resource i. Request
	// IDs are dense (0..NumRequests-1), so served is a flat bitmap rather
	// than a map — the same alloc-regression class the engine scratch fixed.
	perResource := make([][]*core.Request, tr.N)
	served := make([]bool, tr.NumRequests())
	fulfilled := 0
	for t := 0; t < horizon; t++ {
		if t < len(tr.Arrivals) {
			for i := range tr.Arrivals[t] {
				r := &tr.Arrivals[t][i]
				for _, a := range r.Alts {
					perResource[a] = append(perResource[a], r)
				}
			}
		}
		for i := 0; i < tr.N; i++ {
			q := perResource[i]
			live := q[:0]
			var pick *core.Request
			for _, r := range q {
				if served[r.ID] || r.Deadline() < t {
					continue
				}
				live = append(live, r)
				if pick == nil || r.Deadline() < pick.Deadline() ||
					(r.Deadline() == pick.Deadline() && r.ID < pick.ID) {
					pick = r
				}
			}
			perResource[i] = live
			if pick != nil {
				served[pick.ID] = true
				fulfilled++
			}
		}
	}
	return fulfilled
}
