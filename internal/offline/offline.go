// Package offline computes the optimal offline schedule of a trace: the
// maximum-cardinality matching in the paper's bipartite graph G = (R ∪ S, E)
// between requests and time slots (Section 1.2). Competitive ratios are
// measured against this optimum.
package offline

import (
	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// SlotIndex maps the slot of resource res at round t to its right-vertex
// index in the request/slot graph of a trace over n resources (unit service
// model; see epochSlot for the general form).
func SlotIndex(n, res, t int) int { return t*n + res }

// SlotOf inverts SlotIndex.
func SlotOf(n, idx int) (res, t int) { return idx % n, idx / n }

// Offline optima under a general core.ServiceModel are computed in the *epoch
// relaxation*: time is cut into epochs of Hold rounds, each (epoch, resource)
// pair carries Cap capacity-unit slots, and a request is admissible in every
// epoch its deadline window touches. This upper-bounds every engine-feasible
// schedule — service starts on one capacity unit are at least Hold rounds
// apart, and floor((t+Hold)/Hold) = floor(t/Hold)+1, so the starts of any
// feasible schedule map injectively to distinct epoch slots. At hold=1 the
// relaxation is exact for any capacity (slots of one round are independent),
// and at the unit model the graph below is the legacy request/slot graph
// vertex for vertex, edge for edge.

// epochSlot maps capacity unit u of resource res in epoch e to its
// right-vertex index.
func epochSlot(n, capc, res, e, u int) int { return (e*n+res)*capc + u }

// epochSlotOf inverts epochSlot, dropping the (interchangeable) unit.
func epochSlotOf(n, capc, idx int) (res, e int) { return (idx / capc) % n, idx / (n * capc) }

// BuildGraph constructs the full bipartite graph of a trace: left vertices
// are requests in ID order; right vertices are all (epoch, resource, unit)
// slots up to the trace horizon — under the unit model, exactly the
// (resource, round) slots. Each request is adjacent to the slots of its
// alternatives (in listed order) during its deadline window, earliest epoch
// first — the same deterministic edge order the online strategies use.
func BuildGraph(tr *core.Trace) *matching.Graph {
	m := tr.Model.Norm()
	horizon := tr.Horizon()
	epochs := 0
	if horizon > 0 {
		epochs = (horizon-1)/m.Hold + 1
	}
	g := matching.NewGraph(tr.NumRequests(), epochs*tr.N*m.Cap)
	for _, r := range tr.Requests() {
		for _, a := range r.Alts {
			for e := r.Arrive / m.Hold; e <= r.Deadline()/m.Hold; e++ {
				for u := 0; u < m.Cap; u++ {
					g.AddEdge(r.ID, epochSlot(tr.N, m.Cap, a, e, u))
				}
			}
		}
	}
	return g
}

// Optimum returns the number of requests an optimal offline algorithm
// fulfills: the maximum matching cardinality of the trace graph, computed by
// Hopcroft–Karp.
func Optimum(tr *core.Trace) int {
	return matching.HopcroftKarp(BuildGraph(tr)).Size()
}

// OptimumMatching returns one optimal offline schedule as an explicit
// matching plus its cardinality.
func OptimumMatching(tr *core.Trace) (*matching.Matching, int) {
	m := matching.HopcroftKarp(BuildGraph(tr))
	return m, m.Size()
}

// OptimumSchedule converts an optimal matching into a fulfillment log,
// suitable for core.ValidateLog and for diffing against an online schedule.
// Under hold > 1 the log is the epoch relaxation's schedule — each service is
// stamped at its epoch start (clamped to the request's arrival) and the log
// is an upper bound, not necessarily engine-feasible round for round.
func OptimumSchedule(tr *core.Trace) []core.Fulfillment {
	sm := tr.Model.Norm()
	m, _ := OptimumMatching(tr)
	reqs := tr.Requests()
	var log []core.Fulfillment
	for l, r := range m.L2R {
		if r == matching.None {
			continue
		}
		res, e := epochSlotOf(tr.N, sm.Cap, int(r))
		t := e * sm.Hold
		if t < reqs[l].Arrive {
			t = reqs[l].Arrive
		}
		log = append(log, core.Fulfillment{Req: reqs[l], Res: res, Round: t})
	}
	return log
}

// OptimumByFlow recomputes the optimum with Dinic max-flow — an independent
// implementation used to cross-check Optimum in tests.
func OptimumByFlow(tr *core.Trace) int {
	return matching.MaxMatchingByFlow(BuildGraph(tr))
}

// OptimumMinLatency returns an optimal offline schedule that, among all
// maximum-cardinality schedules, minimizes the total service latency (sum of
// service round minus arrival round), computed by min-cost max-flow charging
// each matched pair its true latency: −arrive on the request side, the slot
// round on the slot side. Charging both sides makes the minimized value the
// latency itself — well-defined however ties between equally cheap schedules
// break, which is what lets OptimumMinLatencyParallel pin against it exactly.
// Useful as the latency baseline for the examples: the online strategies'
// mean latency can be compared against the best any schedule of maximum
// throughput could do.
// Under a general service model latency is measured in the epoch relaxation:
// a request arriving in epoch eA served in epoch e costs (e−eA)·Hold rounds —
// per-vertex decomposable (−eA·Hold on the request side, e·Hold on the slot
// side), never negative, and exactly (service round − arrival round) at the
// unit model.
func OptimumMinLatency(tr *core.Trace) ([]core.Fulfillment, int) {
	sm := tr.Model.Norm()
	g := BuildGraph(tr)
	reqs := tr.Requests()
	arrive := make([]int64, len(reqs))
	for i, r := range reqs {
		arrive[i] = -int64(r.Arrive / sm.Hold * sm.Hold)
	}
	costs := make([]int64, g.NRight())
	for idx := range costs {
		_, e := epochSlotOf(tr.N, sm.Cap, idx)
		costs[idx] = int64(e * sm.Hold)
	}
	m := matching.MinCostMatchingLR(g, arrive, costs)
	var log []core.Fulfillment
	latency := 0
	for l, r := range m.L2R {
		if r == matching.None {
			continue
		}
		res, e := epochSlotOf(tr.N, sm.Cap, int(r))
		t := e * sm.Hold
		latency += t - reqs[l].Arrive/sm.Hold*sm.Hold
		if t < reqs[l].Arrive {
			t = reqs[l].Arrive
		}
		log = append(log, core.Fulfillment{Req: reqs[l], Res: res, Round: t})
	}
	return log, latency
}

// MaxProfit returns the maximum total weight an offline schedule can serve —
// the optimum of the weighted extension (equals Optimum on unweighted
// traces).
func MaxProfit(tr *core.Trace) int {
	g := BuildGraph(tr)
	reqs := tr.Requests()
	profit := make([]int64, len(reqs))
	for i, r := range reqs {
		profit[i] = int64(r.Weight())
	}
	m := matching.MaxProfitMatching(g, profit)
	return int(matching.ProfitOf(m, profit))
}

// EarliestDeadlineSchedule serves each trace greedily: in every round, every
// resource serves, among the live requests that name it and are not yet
// served this round, the one with the earliest deadline (ties by ID), its own
// copy bookkeeping ignored. For single-alternative traces this is the EDF
// strategy of Observation 3.1 and returns the optimum. The function returns
// the number of requests fulfilled.
//
// Resources are scanned in index order within a round; because a request may
// name several resources, a request already taken by a lower-indexed resource
// this round is skipped by higher-indexed ones.
func EarliestDeadlineSchedule(tr *core.Trace) int {
	if !tr.Model.IsUnit() {
		panic("offline: EarliestDeadlineSchedule supports the unit service model only")
	}
	horizon := tr.Horizon()
	// perResource[i] holds live request pointers naming resource i. Request
	// IDs are dense (0..NumRequests-1), so served is a flat bitmap rather
	// than a map — the same alloc-regression class the engine scratch fixed.
	perResource := make([][]*core.Request, tr.N)
	served := make([]bool, tr.NumRequests())
	fulfilled := 0
	for t := 0; t < horizon; t++ {
		if t < len(tr.Arrivals) {
			for i := range tr.Arrivals[t] {
				r := &tr.Arrivals[t][i]
				for _, a := range r.Alts {
					perResource[a] = append(perResource[a], r)
				}
			}
		}
		for i := 0; i < tr.N; i++ {
			q := perResource[i]
			live := q[:0]
			var pick *core.Request
			for _, r := range q {
				if served[r.ID] || r.Deadline() < t {
					continue
				}
				live = append(live, r)
				if pick == nil || r.Deadline() < pick.Deadline() ||
					(r.Deadline() == pick.Deadline() && r.ID < pick.ID) {
					pick = r
				}
			}
			perResource[i] = live
			if pick != nil {
				served[pick.ID] = true
				fulfilled++
			}
		}
	}
	return fulfilled
}
