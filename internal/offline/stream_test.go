package offline

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"reqsched/internal/trace"
)

func TestOptimumStreamEqualsOptimum(t *testing.T) {
	// Serialize gapped traces as JSONL, re-segment them from the stream and
	// solve segment by segment: the sum must equal the monolithic optimum.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		tr := gappedTrace(rng, 2+rng.Intn(4), 1+rng.Intn(3), 2+rng.Intn(4), 5)
		want := Optimum(tr)
		var buf bytes.Buffer
		if err := trace.WriteStream(&buf, tr); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		for _, workers := range []int{1, 4} {
			buf2 := bytes.NewReader(buf.Bytes())
			got, nsegs, err := OptimumStream(trace.Segments(buf2), workers)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if got != want {
				t.Fatalf("trial %d: OptimumStream(workers=%d) = %d, Optimum = %d",
					trial, workers, got, want)
			}
			if nsegs < 1 {
				t.Fatalf("trial %d: %d segments", trial, nsegs)
			}
		}
	}
}

func TestOptimumStreamPropagatesError(t *testing.T) {
	bad := `{"n":2,"d":2}` + "\n" + `{"t":0,"alts":[9]}` + "\n"
	_, _, err := OptimumStream(trace.Segments(strings.NewReader(bad)), 2)
	if err == nil {
		t.Fatal("stream error swallowed")
	}
}
