// Segmented offline optimum. Maximum matching decomposes exactly over the
// connected components of the request/slot graph G = (R ∪ S, E): no
// augmenting path crosses between components, so the optimum of a trace is
// the sum of the optima of its independent pieces. Long traces whose deadline
// windows do not all overlap split at quiet round boundaries into time
// segments that can be solved concurrently — the one remaining serial,
// memory-proportional-to-horizon bottleneck of the measurement harness
// becomes an embarrassingly parallel sum of small Hopcroft–Karp runs.
package offline

import (
	"iter"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// Segment is one independent piece of a trace's request/slot graph: the
// requests Reqs, every one of whose deadline windows lies within rounds
// [Lo, Hi]. No request outside the segment competes for a slot inside it, so
// its maximum matching can be computed in isolation and summed.
type Segment struct {
	// Lo and Hi bound the segment's rounds, inclusive.
	Lo, Hi int
	// Reqs are the segment's requests, in ID order.
	Reqs []*core.Request
}

// SegmentTrace cuts tr at every round boundary no request's deadline window
// crosses: a boundary before round t is clean when every request that arrived
// earlier has a deadline before t. Under hold > 1 a cut must additionally be
// epoch-aligned (t a multiple of Hold) so no epoch slot is shared across the
// cut. Arrivals are stored in round order, so one pass tracking the running
// maximum deadline finds all clean cuts in O(requests + horizon). Traces with
// permanently overlapping windows yield a single segment; callers that still
// want to decompose them use Components.
func SegmentTrace(tr *core.Trace) []Segment {
	hold := tr.Model.Norm().Hold
	var segs []Segment
	var cur []*core.Request
	lo, maxDL := 0, -1
	for t := range tr.Arrivals {
		rs := tr.Arrivals[t]
		if len(rs) == 0 {
			continue
		}
		if len(cur) > 0 && t > maxDL && t%hold == 0 {
			segs = append(segs, Segment{Lo: lo, Hi: maxDL, Reqs: cur})
			cur = nil
		}
		if len(cur) == 0 {
			lo = t
		}
		for i := range rs {
			r := &rs[i]
			cur = append(cur, r)
			if dl := r.Deadline(); dl > maxDL {
				maxDL = dl
			}
		}
	}
	if len(cur) > 0 {
		segs = append(segs, Segment{Lo: lo, Hi: maxDL, Reqs: cur})
	}
	return segs
}

// Components decomposes tr into the connected components of its request/slot
// graph with a union-find over slots — the exact decomposition even when
// deadline windows overlap everywhere and no clean time cut exists (e.g.
// resource-disjoint request populations). The union-find runs over (epoch,
// resource) slots — under the unit model, exactly the (round, resource) slots;
// the capacity units of one slot are interchangeable and never split across
// components. Components are returned in order of their lowest request ID;
// each component's Lo/Hi bound its requests' windows, though components may
// overlap in time.
func Components(tr *core.Trace) []Segment {
	n := tr.N
	hold := tr.Model.Norm().Hold
	epochs := 0
	if h := tr.Horizon(); h > 0 {
		epochs = (h-1)/hold + 1
	}
	parent := make([]int32, epochs*n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	reqs := tr.Requests()
	for _, r := range reqs {
		first := int32(SlotIndex(n, r.Alts[0], r.Arrive/hold))
		lo, hi := r.Arrive/hold, r.Deadline()/hold
		for _, a := range r.Alts {
			for e := lo; e <= hi; e++ {
				union(first, int32(SlotIndex(n, a, e)))
			}
		}
	}
	// Group requests by component root, components ordered by first request.
	index := make(map[int32]int)
	var segs []Segment
	for _, r := range reqs {
		root := find(int32(SlotIndex(n, r.Alts[0], r.Arrive/hold)))
		i, ok := index[root]
		if !ok {
			i = len(segs)
			index[root] = i
			segs = append(segs, Segment{Lo: r.Arrive, Hi: r.Deadline()})
		}
		seg := &segs[i]
		seg.Reqs = append(seg.Reqs, r)
		if r.Arrive < seg.Lo {
			seg.Lo = r.Arrive
		}
		if dl := r.Deadline(); dl > seg.Hi {
			seg.Hi = dl
		}
	}
	return segs
}

// segSolver is the per-worker scratch of the segmented solvers: the graph,
// matching and matching.Scratch reused across every segment a worker claims,
// plus the buffers the weighted objectives need (per-request profits, per-slot
// absolute coordinates). Buffers grow monotonically to the largest segment
// seen, so steady-state allocation is per worker, not per segment. A segSolver
// is not safe for concurrent use — give each goroutine its own.
type segSolver struct {
	g       matching.Graph
	m       matching.Matching
	sc      matching.Scratch
	slotIDs map[int]int32
	profit  []int64 // per-left-vertex weights (MaxProfit) or -arrive (min-latency)
	cost    []int64 // per-right-vertex absolute slot round (min-latency)
	absRes  []int32 // per-right-vertex absolute resource index
	absT    []int32 // per-right-vertex absolute round
}

func newSegSolver() *segSolver { return &segSolver{slotIDs: make(map[int]int32)} }

// space is the slot geometry a segment is solved in: n resources under a
// normalized service model. Under the unit model (capc=1, hold=1) every index
// computation below reduces literally to the legacy round-slot arithmetic.
type space struct {
	n, capc, hold int
}

func spaceOf(tr *core.Trace) space {
	m := tr.Model.Norm()
	return space{n: tr.N, capc: m.Cap, hold: m.Hold}
}

// build constructs the segment's bipartite graph into the solver's reusable
// storage. Right vertices are the segment's (epoch, resource, unit) slots —
// under the unit model, the (round, resource) slots: remapped arithmetically
// into the [Lo, Hi] × n × cap rectangle when the segment covers it densely, or
// through first-seen compact numbering when the segment is sparse in its span
// (union-find components interleaved with others), so a component never pays
// for rounds it does not touch. When slotMeta is set, absRes/absT record each
// right vertex's absolute resource and epoch-start round — the inverse mapping
// the min-latency objective needs for costs and fulfillment logs. Objective
// values (cardinality, profit, min latency) do not depend on the remapping or
// the edge order, so sums over segments equal the monolithic solvers exactly.
func (ss *segSolver) build(sp space, seg Segment, slotMeta bool) {
	n, capc, hold := sp.n, sp.capc, sp.hold
	edges := 0
	for _, r := range seg.Reqs {
		edges += len(r.Alts) * (r.Deadline()/hold - r.Arrive/hold + 1) * capc
	}
	g := &ss.g
	eSegLo, eSegHi := seg.Lo/hold, seg.Hi/hold
	if rect := (eSegHi - eSegLo + 1) * n * capc; rect <= 4*edges {
		g.Reset(len(seg.Reqs), rect)
		for l, r := range seg.Reqs {
			lo, hi := r.Arrive/hold, r.Deadline()/hold
			for _, a := range r.Alts {
				for e := lo; e <= hi; e++ {
					for u := 0; u < capc; u++ {
						g.AddEdge(l, ((e-eSegLo)*n+a)*capc+u)
					}
				}
			}
		}
		if slotMeta {
			ss.absRes = growInt32(ss.absRes, rect)
			ss.absT = growInt32(ss.absT, rect)
			for idx := 0; idx < rect; idx++ {
				ss.absRes[idx] = int32((idx / capc) % n)
				ss.absT[idx] = int32((eSegLo + idx/(n*capc)) * hold)
			}
		}
	} else {
		clear(ss.slotIDs)
		nRight := 0
		for _, r := range seg.Reqs {
			lo, hi := r.Arrive/hold, r.Deadline()/hold
			for _, a := range r.Alts {
				for e := lo; e <= hi; e++ {
					s := SlotIndex(n, a, e)
					if _, ok := ss.slotIDs[s]; !ok {
						ss.slotIDs[s] = int32(nRight)
						nRight += capc
					}
				}
			}
		}
		g.Reset(len(seg.Reqs), nRight)
		if slotMeta {
			ss.absRes = growInt32(ss.absRes, nRight)
			ss.absT = growInt32(ss.absT, nRight)
		}
		for l, r := range seg.Reqs {
			lo, hi := r.Arrive/hold, r.Deadline()/hold
			for _, a := range r.Alts {
				for e := lo; e <= hi; e++ {
					idx := ss.slotIDs[SlotIndex(n, a, e)]
					for u := int32(0); u < int32(capc); u++ {
						g.AddEdge(l, int(idx+u))
						if slotMeta {
							ss.absRes[idx+u] = int32(a)
							ss.absT[idx+u] = int32(e * hold)
						}
					}
				}
			}
		}
	}
}

// growInt32 returns s with length at least n, reusing capacity.
func growInt32(s []int32, n int) []int32 {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]int32, n)
}

// growInt64 returns s with length at least n, reusing capacity.
func growInt64(s []int64, n int) []int64 {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]int64, n)
}

// cardinality computes the maximum matching cardinality of one segment with
// Hopcroft–Karp — the unweighted offline optimum of the piece.
func (ss *segSolver) cardinality(sp space, seg Segment) int64 {
	ss.build(sp, seg, false)
	ss.m.Reset(ss.g.NLeft(), ss.g.NRight())
	ss.sc.HopcroftKarpExtend(&ss.g, &ss.m)
	return int64(ss.m.Size())
}

// maxProfit computes the maximum total weight an offline schedule can serve
// within one segment (the weighted objective's optimum for the piece).
func (ss *segSolver) maxProfit(sp space, seg Segment) int64 {
	ss.build(sp, seg, false)
	ss.profit = growInt64(ss.profit, len(seg.Reqs))
	for i, r := range seg.Reqs {
		ss.profit[i] = int64(r.Weight())
	}
	m := matching.MaxProfitMatching(&ss.g, ss.profit[:len(seg.Reqs)])
	return matching.ProfitOf(m, ss.profit[:len(seg.Reqs)])
}

// minLatency computes a maximum-cardinality schedule of one segment that
// minimizes total service latency (sum of service round minus arrival round),
// appending its fulfillments — in absolute rounds — to log. It returns the
// extended log and the segment's latency. The minimum latency of a segment is
// a well-defined optimum value, so the sum over independent segments equals
// the monolithic OptimumMinLatency latency exactly, whichever of the equally
// cheap schedules either solver picks.
func (ss *segSolver) minLatency(sp space, seg Segment, log []core.Fulfillment) ([]core.Fulfillment, int64) {
	ss.build(sp, seg, true)
	nl, nr := ss.g.NLeft(), ss.g.NRight()
	ss.profit = growInt64(ss.profit, nl)
	for i, r := range seg.Reqs {
		ss.profit[i] = -int64(r.Arrive / sp.hold * sp.hold)
	}
	ss.cost = growInt64(ss.cost, nr)
	for idx := 0; idx < nr; idx++ {
		ss.cost[idx] = int64(ss.absT[idx])
	}
	m := matching.MinCostMatchingLR(&ss.g, ss.profit[:nl], ss.cost[:nr])
	latency := int64(0)
	for l, r := range m.L2R {
		if r == matching.None {
			continue
		}
		req := seg.Reqs[l]
		t := int(ss.absT[r])
		latency += int64(t - req.Arrive/sp.hold*sp.hold)
		if t < req.Arrive {
			t = req.Arrive
		}
		log = append(log, core.Fulfillment{Req: req, Res: int(ss.absRes[r]), Round: t})
	}
	return log, latency
}

// segments decomposes tr into independent pieces: clean time cuts, falling
// back to union-find connected components when no cut exists.
func segments(tr *core.Trace) []Segment {
	segs := SegmentTrace(tr)
	if len(segs) <= 1 {
		segs = Components(tr)
	}
	return segs
}

// OptimumParallel returns exactly Optimum(tr), computed by decomposing the
// trace into independent segments (clean time cuts, falling back to
// union-find connected components when no cut exists) and solving each with
// Hopcroft–Karp on a worker pool. Each worker owns its segSolver scratch, so
// steady-state allocation is per worker, not per segment, and peak memory is
// proportional to the largest segment rather than the horizon. workers <= 0
// means GOMAXPROCS.
func OptimumParallel(tr *core.Trace, workers int) int {
	return int(sumSegments(spaceOf(tr), segments(tr), workers, (*segSolver).cardinality))
}

// MaxProfitParallel returns exactly MaxProfit(tr) — the weighted offline
// optimum — by solving independent segments on a worker pool. Matchings of
// any objective decompose exactly over connected components (no augmenting or
// profit-improving path crosses between them), so the per-segment int64
// profit folds sum to the monolithic value.
func MaxProfitParallel(tr *core.Trace, workers int) int {
	return int(sumSegments(spaceOf(tr), segments(tr), workers, (*segSolver).maxProfit))
}

// OptimumMinLatencyParallel returns a schedule with OptimumMinLatency's exact
// guarantees — maximum cardinality, minimum total latency — computed per
// segment on a worker pool. Per-segment fulfillment logs (already in absolute
// rounds) are stitched back in request-ID order; the latency total equals the
// monolithic solver's exactly, though the two may pick different equally
// cheap schedules.
func OptimumMinLatencyParallel(tr *core.Trace, workers int) ([]core.Fulfillment, int) {
	segs := segments(tr)
	type piece struct {
		log     []core.Fulfillment
		latency int64
	}
	pieces := mapSegments(spaceOf(tr), segs, workers, func(ss *segSolver, sp space, seg Segment) piece {
		log, latency := ss.minLatency(sp, seg, nil)
		return piece{log, latency}
	})
	var log []core.Fulfillment
	latency := int64(0)
	for _, p := range pieces {
		log = append(log, p.log...)
		latency += p.latency
	}
	sort.Slice(log, func(i, j int) bool { return log[i].Req.ID < log[j].Req.ID })
	return log, int(latency)
}

// sumSegments folds a per-segment int64 objective over a worker pool. The sum
// is order-independent, so the result is deterministic regardless of
// scheduling.
func sumSegments(sp space, segs []Segment, workers int, solve func(*segSolver, space, Segment) int64) int64 {
	if len(segs) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	if workers <= 1 {
		ss := newSegSolver()
		total := int64(0)
		for _, seg := range segs {
			total += solve(ss, sp, seg)
		}
		return total
	}
	var (
		total atomic.Int64
		next  atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ss := newSegSolver()
			sum := int64(0)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(segs) {
					break
				}
				sum += solve(ss, sp, segs[i])
			}
			total.Add(sum)
		}()
	}
	wg.Wait()
	return total.Load()
}

// mapSegments runs solve over every segment on a worker pool with per-worker
// scratch, storing results by segment index — the shape objectives with
// structured per-segment results (min-latency logs) need. Workers claim
// segments through an atomic cursor; results land at their segment's index,
// so the output is deterministic regardless of scheduling.
func mapSegments[T any](sp space, segs []Segment, workers int, solve func(ss *segSolver, sp space, seg Segment) T) []T {
	out := make([]T, len(segs))
	if len(segs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	if workers <= 1 {
		ss := newSegSolver()
		for i, seg := range segs {
			out[i] = solve(ss, sp, seg)
		}
		return out
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ss := newSegSolver()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(segs) {
					break
				}
				out[i] = solve(ss, sp, segs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// wholeTraceSegment wraps an independent sub-trace as one Segment.
func wholeTraceSegment(tr *core.Trace) Segment {
	return Segment{Lo: 0, Hi: tr.Horizon() - 1, Reqs: tr.Requests()}
}

// streamSegments folds a per-segment int64 objective over a stream of
// independent sub-traces on a worker pool, holding at most workers+1 segments
// in memory at once. The first error from the iterator stops consumption and
// is returned after in-flight segments finish.
func streamSegments(segments iter.Seq2[*core.Trace, error], workers int, solve func(*segSolver, space, Segment) int64) (total int64, nsegs int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ch := make(chan *core.Trace)
	var (
		sum atomic.Int64
		wg  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ss := newSegSolver()
			acc := int64(0)
			for tr := range ch {
				acc += solve(ss, spaceOf(tr), wholeTraceSegment(tr))
			}
			sum.Add(acc)
		}()
	}
	for tr, serr := range segments {
		if serr != nil {
			err = serr
			break
		}
		ch <- tr
		nsegs++
	}
	close(ch)
	wg.Wait()
	if err != nil {
		return 0, nsegs, err
	}
	return sum.Load(), nsegs, nil
}

// OptimumStream sums the offline optimum over a stream of independent
// sub-traces (one per yielded value, e.g. trace.Segments over a JSONL
// stream) on a worker pool, holding at most workers+1 segments in memory at
// once — the bounded-memory evaluation path for traces too large to
// materialize. It returns the total optimum and the number of segments
// consumed. The first error from the iterator stops consumption and is
// returned after in-flight segments finish.
func OptimumStream(segments iter.Seq2[*core.Trace, error], workers int) (opt, nsegs int, err error) {
	total, nsegs, err := streamSegments(segments, workers, (*segSolver).cardinality)
	return int(total), nsegs, err
}

// MaxProfitStream sums the weighted offline optimum (maximum total weight
// served) over a stream of independent sub-traces on a worker pool — the
// bounded-memory sibling of MaxProfitParallel. It returns the total profit
// and the number of segments consumed.
func MaxProfitStream(segments iter.Seq2[*core.Trace, error], workers int) (profit, nsegs int, err error) {
	total, nsegs, err := streamSegments(segments, workers, (*segSolver).maxProfit)
	return int(total), nsegs, err
}
