// Segmented offline optimum. Maximum matching decomposes exactly over the
// connected components of the request/slot graph G = (R ∪ S, E): no
// augmenting path crosses between components, so the optimum of a trace is
// the sum of the optima of its independent pieces. Long traces whose deadline
// windows do not all overlap split at quiet round boundaries into time
// segments that can be solved concurrently — the one remaining serial,
// memory-proportional-to-horizon bottleneck of the measurement harness
// becomes an embarrassingly parallel sum of small Hopcroft–Karp runs.
package offline

import (
	"iter"
	"runtime"
	"sync"
	"sync/atomic"

	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// Segment is one independent piece of a trace's request/slot graph: the
// requests Reqs, every one of whose deadline windows lies within rounds
// [Lo, Hi]. No request outside the segment competes for a slot inside it, so
// its maximum matching can be computed in isolation and summed.
type Segment struct {
	// Lo and Hi bound the segment's rounds, inclusive.
	Lo, Hi int
	// Reqs are the segment's requests, in ID order.
	Reqs []*core.Request
}

// SegmentTrace cuts tr at every round boundary no request's deadline window
// crosses: a boundary before round t is clean when every request that arrived
// earlier has a deadline before t. Arrivals are stored in round order, so one
// pass tracking the running maximum deadline finds all clean cuts in
// O(requests + horizon). Traces with permanently overlapping windows yield a
// single segment; callers that still want to decompose them use Components.
func SegmentTrace(tr *core.Trace) []Segment {
	var segs []Segment
	var cur []*core.Request
	lo, maxDL := 0, -1
	for t := range tr.Arrivals {
		rs := tr.Arrivals[t]
		if len(rs) == 0 {
			continue
		}
		if len(cur) > 0 && t > maxDL {
			segs = append(segs, Segment{Lo: lo, Hi: maxDL, Reqs: cur})
			cur = nil
		}
		if len(cur) == 0 {
			lo = t
		}
		for i := range rs {
			r := &rs[i]
			cur = append(cur, r)
			if dl := r.Deadline(); dl > maxDL {
				maxDL = dl
			}
		}
	}
	if len(cur) > 0 {
		segs = append(segs, Segment{Lo: lo, Hi: maxDL, Reqs: cur})
	}
	return segs
}

// Components decomposes tr into the connected components of its request/slot
// graph with a union-find over slots — the exact decomposition even when
// deadline windows overlap everywhere and no clean time cut exists (e.g.
// resource-disjoint request populations). Components are returned in order of
// their lowest request ID; each component's Lo/Hi bound its requests' windows,
// though components may overlap in time.
func Components(tr *core.Trace) []Segment {
	n := tr.N
	parent := make([]int32, tr.Horizon()*n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	reqs := tr.Requests()
	for _, r := range reqs {
		first := int32(SlotIndex(n, r.Alts[0], r.Arrive))
		lo, hi := r.Arrive, r.Deadline()
		for _, a := range r.Alts {
			for t := lo; t <= hi; t++ {
				union(first, int32(SlotIndex(n, a, t)))
			}
		}
	}
	// Group requests by component root, components ordered by first request.
	index := make(map[int32]int)
	var segs []Segment
	for _, r := range reqs {
		root := find(int32(SlotIndex(n, r.Alts[0], r.Arrive)))
		i, ok := index[root]
		if !ok {
			i = len(segs)
			index[root] = i
			segs = append(segs, Segment{Lo: r.Arrive, Hi: r.Deadline()})
		}
		seg := &segs[i]
		seg.Reqs = append(seg.Reqs, r)
		if r.Arrive < seg.Lo {
			seg.Lo = r.Arrive
		}
		if dl := r.Deadline(); dl > seg.Hi {
			seg.Hi = dl
		}
	}
	return segs
}

// solveSegment computes the maximum matching cardinality of one segment with
// Hopcroft–Karp on caller-owned scratch. Right vertices are the segment's
// slots: remapped arithmetically into the [Lo, Hi] × n rectangle when the
// segment covers it densely, or through first-seen compact numbering when the
// segment is sparse in its span (union-find components interleaved with
// others), so a component never pays for rounds it does not touch. The
// cardinality of a maximum matching does not depend on the remapping or the
// edge order, so the sum over segments equals Optimum exactly.
func solveSegment(n int, seg Segment, g *matching.Graph, m *matching.Matching, sc *matching.Scratch, slotIDs map[int]int32) int {
	edges := 0
	for _, r := range seg.Reqs {
		edges += len(r.Alts) * (r.Deadline() - r.Arrive + 1)
	}
	if rect := (seg.Hi - seg.Lo + 1) * n; rect <= 4*edges {
		g.Reset(len(seg.Reqs), rect)
		for l, r := range seg.Reqs {
			lo, hi := r.Arrive, r.Deadline()
			for _, a := range r.Alts {
				for t := lo; t <= hi; t++ {
					g.AddEdge(l, (t-seg.Lo)*n+a)
				}
			}
		}
	} else {
		clear(slotIDs)
		nRight := 0
		for _, r := range seg.Reqs {
			lo, hi := r.Arrive, r.Deadline()
			for _, a := range r.Alts {
				for t := lo; t <= hi; t++ {
					s := SlotIndex(n, a, t)
					if _, ok := slotIDs[s]; !ok {
						slotIDs[s] = int32(nRight)
						nRight++
					}
				}
			}
		}
		g.Reset(len(seg.Reqs), nRight)
		for l, r := range seg.Reqs {
			lo, hi := r.Arrive, r.Deadline()
			for _, a := range r.Alts {
				for t := lo; t <= hi; t++ {
					g.AddEdge(l, int(slotIDs[SlotIndex(n, a, t)]))
				}
			}
		}
	}
	m.Reset(g.NLeft(), g.NRight())
	sc.HopcroftKarpExtend(g, m)
	return m.Size()
}

// OptimumParallel returns exactly Optimum(tr), computed by decomposing the
// trace into independent segments (clean time cuts, falling back to
// union-find connected components when no cut exists) and solving each with
// Hopcroft–Karp on a worker pool. Each worker owns its graph, matching and
// matching.Scratch, so steady-state allocation is per worker, not per
// segment, and peak memory is proportional to the largest segment rather than
// the horizon. workers <= 0 means GOMAXPROCS.
func OptimumParallel(tr *core.Trace, workers int) int {
	segs := SegmentTrace(tr)
	if len(segs) <= 1 {
		segs = Components(tr)
	}
	return solveSegments(tr.N, segs, workers)
}

// solveSegments sums the per-segment optima over a worker pool. Workers claim
// segments through an atomic cursor; the sum is order-independent, so the
// result is deterministic regardless of scheduling.
func solveSegments(n int, segs []Segment, workers int) int {
	if len(segs) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	if workers <= 1 {
		var (
			g       matching.Graph
			m       matching.Matching
			sc      matching.Scratch
			slotIDs = make(map[int]int32)
		)
		total := 0
		for _, seg := range segs {
			total += solveSegment(n, seg, &g, &m, &sc, slotIDs)
		}
		return total
	}
	var (
		total atomic.Int64
		next  atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var (
				g       matching.Graph
				m       matching.Matching
				sc      matching.Scratch
				slotIDs = make(map[int]int32)
			)
			sum := 0
			for {
				i := int(next.Add(1)) - 1
				if i >= len(segs) {
					break
				}
				sum += solveSegment(n, segs[i], &g, &m, &sc, slotIDs)
			}
			total.Add(int64(sum))
		}()
	}
	wg.Wait()
	return int(total.Load())
}

// OptimumStream sums the offline optimum over a stream of independent
// sub-traces (one per yielded value, e.g. trace.Segments over a JSONL
// stream) on a worker pool, holding at most workers+1 segments in memory at
// once — the bounded-memory evaluation path for traces too large to
// materialize. It returns the total optimum and the number of segments
// consumed. The first error from the iterator stops consumption and is
// returned after in-flight segments finish.
func OptimumStream(segments iter.Seq2[*core.Trace, error], workers int) (opt, nsegs int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ch := make(chan *core.Trace)
	var (
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var (
				g       matching.Graph
				m       matching.Matching
				sc      matching.Scratch
				slotIDs = make(map[int]int32)
			)
			sum := 0
			for tr := range ch {
				seg := Segment{Lo: 0, Hi: tr.Horizon() - 1, Reqs: tr.Requests()}
				sum += solveSegment(tr.N, seg, &g, &m, &sc, slotIDs)
			}
			total.Add(int64(sum))
		}()
	}
	for tr, serr := range segments {
		if serr != nil {
			err = serr
			break
		}
		ch <- tr
		nsegs++
	}
	close(ch)
	wg.Wait()
	if err != nil {
		return 0, nsegs, err
	}
	return int(total.Load()), nsegs, nil
}
