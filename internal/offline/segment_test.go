package offline

import (
	"math/rand"
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

// gappedTrace builds a random two-choice trace with quiet stretches long
// enough that SegmentTrace finds clean cuts.
func gappedTrace(rng *rand.Rand, n, d, bursts, perBurst int) *core.Trace {
	b := core.NewBuilder(n, d)
	t := 0
	for burst := 0; burst < bursts; burst++ {
		for i := 0; i < 1+rng.Intn(perBurst); i++ {
			a := rng.Intn(n)
			c := rng.Intn(n - 1)
			if c >= a {
				c++
			}
			b.Add(t+rng.Intn(2), a, c)
		}
		t += 2 + d + rng.Intn(3) // past every deadline of the burst
	}
	return b.Build()
}

// checkParallel asserts OptimumParallel == Optimum for several worker counts.
func checkParallel(t *testing.T, name string, tr *core.Trace) {
	t.Helper()
	want := Optimum(tr)
	for _, workers := range []int{1, 2, 4, 8} {
		if got := OptimumParallel(tr, workers); got != want {
			t.Fatalf("%s: OptimumParallel(workers=%d) = %d, Optimum = %d",
				name, workers, got, want)
		}
	}
}

func TestOptimumParallelEqualsOptimumOnAdversaries(t *testing.T) {
	// Every Table 1 construction family, fixed and adaptive.
	cons := []adversary.Construction{
		adversary.Fix(2, 6),
		adversary.Fix(4, 3),
		adversary.Current(3, 3),
		adversary.CurrentFactorial(3, 2),
		adversary.FixBalance(2, 6),
		adversary.FixBalance(4, 3),
		adversary.Eager(2, 6),
		adversary.Eager(4, 3),
		adversary.Balance(2, 3, 3),
		adversary.Balance(3, 2, 2),
		adversary.UniversalAnyD(4, 3),
		adversary.UniversalAnyD(5, 2),
		adversary.LocalFix(3, 4),
		adversary.EDFWorstCase(3, 4),
		adversary.Universal(3, 3),
		adversary.Universal(6, 2),
	}
	for _, c := range cons {
		tr := c.Trace
		if tr == nil {
			// Adaptive constructions generate their trace during a run.
			_, tr = core.RunAdaptive(strategies.NewFix(), c.Source)
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s: adaptive trace invalid: %v", c.Name, err)
			}
		}
		checkParallel(t, c.Name, tr)
	}
}

func TestOptimumParallelEqualsOptimumRandom(t *testing.T) {
	// >= 1000 seeded workloads across every shape the decomposition must
	// handle: bursty multi-segment, dense single-segment, single-choice with
	// mixed deadlines, and generator-family traces.
	rng := rand.New(rand.NewSource(7))
	trials := 0
	for seed := int64(0); seed < 250; seed++ {
		tr := gappedTrace(rng, 2+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(4), 5)
		checkParallel(t, "gapped", tr)
		trials++
	}
	for seed := int64(0); seed < 250; seed++ {
		tr := randomTrace(rng, 2+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(8), 6)
		checkParallel(t, "dense", tr)
		trials++
	}
	for seed := int64(0); seed < 250; seed++ {
		tr := randomSingleChoiceTrace(rng, 1+rng.Intn(4), 1+rng.Intn(5), 1+rng.Intn(8), 4)
		checkParallel(t, "single-choice", tr)
		trials++
	}
	for seed := int64(0); seed < 150; seed++ {
		cfg := workload.Config{N: 4, D: 3, Rounds: 10, Rate: 3, Seed: seed}
		checkParallel(t, "uniform", workload.Uniform(cfg))
		trials++
	}
	for seed := int64(0); seed < 150; seed++ {
		cfg := workload.Config{N: 4, D: 2, Rounds: 12, Rate: 2, Seed: seed}
		checkParallel(t, "bursty", workload.Bursty(cfg, 3, 4, 5))
		trials++
	}
	if trials < 1000 {
		t.Fatalf("only %d trials, want >= 1000", trials)
	}
}

func TestOptimumParallelSingleSegmentFallsBackToComponents(t *testing.T) {
	// All windows overlap (everything arrives at round 0), so no clean time
	// cut exists; the components fallback must still match.
	b := core.NewBuilder(6, 4)
	for i := 0; i < 20; i++ {
		b.Add(0, i%6, (i+1)%6)
	}
	tr := b.Build()
	if segs := SegmentTrace(tr); len(segs) != 1 {
		t.Fatalf("expected one time segment, got %d", len(segs))
	}
	checkParallel(t, "all-overlapping", tr)
}

func TestComponentsSplitsResourceDisjointPopulations(t *testing.T) {
	// Two request populations on disjoint resource sets, fully overlapping in
	// time: time cuts see one segment, the slot graph has two components.
	b := core.NewBuilder(4, 3)
	for i := 0; i < 5; i++ {
		b.Add(0, 0, 1)
		b.Add(0, 2, 3)
	}
	tr := b.Build()
	if segs := SegmentTrace(tr); len(segs) != 1 {
		t.Fatalf("expected one time segment, got %d", len(segs))
	}
	comps := Components(tr)
	if len(comps) != 2 {
		t.Fatalf("expected 2 components, got %d", len(comps))
	}
	total := 0
	for _, c := range comps {
		total += len(c.Reqs)
	}
	if total != tr.NumRequests() {
		t.Fatalf("components hold %d requests, trace has %d", total, tr.NumRequests())
	}
	checkParallel(t, "resource-disjoint", tr)
}

func TestSegmentTraceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		tr := gappedTrace(rng, 2+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(3), 4)
		segs := SegmentTrace(tr)
		seen := 0
		prevHi := -1
		for _, seg := range segs {
			if seg.Lo <= prevHi {
				t.Fatalf("trial %d: segment [%d,%d] overlaps previous (hi %d)",
					trial, seg.Lo, seg.Hi, prevHi)
			}
			prevHi = seg.Hi
			for _, r := range seg.Reqs {
				if r.Arrive < seg.Lo || r.Deadline() > seg.Hi {
					t.Fatalf("trial %d: request %d window [%d,%d] outside segment [%d,%d]",
						trial, r.ID, r.Arrive, r.Deadline(), seg.Lo, seg.Hi)
				}
				seen++
			}
		}
		if seen != tr.NumRequests() {
			t.Fatalf("trial %d: segments hold %d requests, trace has %d",
				trial, seen, tr.NumRequests())
		}
	}
}

func TestOptimumParallelEmptyAndDegenerate(t *testing.T) {
	empty := core.NewBuilder(3, 2).Build()
	if got := OptimumParallel(empty, 4); got != 0 {
		t.Fatalf("empty trace: %d", got)
	}
	b := core.NewBuilder(1, 1)
	b.Add(0, 0)
	if got := OptimumParallel(b.Build(), 8); got != 1 {
		t.Fatalf("one request: %d", got)
	}
}

func TestComponentsMatchSegmentsOnGappedTraces(t *testing.T) {
	// On a trace with clean time cuts, the components decomposition is at
	// least as fine — both must sum to the same optimum.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		tr := gappedTrace(rng, 3, 2, 3, 4)
		want := Optimum(tr)
		if got := int(sumSegments(spaceOf(tr), Components(tr), 3, (*segSolver).cardinality)); got != want {
			t.Fatalf("trial %d: components sum %d, Optimum %d", trial, got, want)
		}
		if got := int(sumSegments(spaceOf(tr), SegmentTrace(tr), 3, (*segSolver).cardinality)); got != want {
			t.Fatalf("trial %d: segments sum %d, Optimum %d", trial, got, want)
		}
	}
}
