package offline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reqsched/internal/core"
	"reqsched/internal/matching"
)

// randomTrace builds a random two-choice trace.
func randomTrace(rng *rand.Rand, n, d, rounds, perRound int) *core.Trace {
	b := core.NewBuilder(n, d)
	for t := 0; t < rounds; t++ {
		k := rng.Intn(perRound + 1)
		for i := 0; i < k; i++ {
			a := rng.Intn(n)
			c := rng.Intn(n - 1)
			if c >= a {
				c++
			}
			b.Add(t, a, c)
		}
	}
	return b.Build()
}

// randomSingleChoiceTrace builds a trace where every request names one
// resource, with mixed deadlines.
func randomSingleChoiceTrace(rng *rand.Rand, n, maxD, rounds, perRound int) *core.Trace {
	b := core.NewBuilder(n, maxD)
	for t := 0; t < rounds; t++ {
		k := rng.Intn(perRound + 1)
		for i := 0; i < k; i++ {
			b.AddWindow(t, 1+rng.Intn(maxD), rng.Intn(n))
		}
	}
	return b.Build()
}

func TestOptimumTinyByHand(t *testing.T) {
	// 1 resource, d=1: three identical requests in one round, one slot.
	b := core.NewBuilder(1, 1)
	b.Add(0, 0)
	b.Add(0, 0)
	b.Add(0, 0)
	if got := Optimum(b.Build()); got != 1 {
		t.Fatalf("optimum %d want 1", got)
	}
	// 2 resources, d=2: four requests naming both — perfect fit.
	b2 := core.NewBuilder(2, 2)
	for i := 0; i < 4; i++ {
		b2.Add(0, 0, 1)
	}
	if got := Optimum(b2.Build()); got != 4 {
		t.Fatalf("optimum %d want 4", got)
	}
	// ...and a fifth must be lost.
	b2.Add(0, 0, 1)
	if got := Optimum(b2.Build()); got != 4 {
		t.Fatalf("optimum %d want 4", got)
	}
}

func TestOptimumBlockSaturates(t *testing.T) {
	// block(a, d) is exactly serviceable by its a resources over d rounds.
	for _, a := range []int{2, 3, 6} {
		for _, d := range []int{2, 3, 5} {
			b := core.NewBuilder(a, d)
			res := make([]int, a)
			for i := range res {
				res[i] = i
			}
			b.Block(0, res...)
			tr := b.Build()
			if got := Optimum(tr); got != a*d {
				t.Fatalf("block(%d,%d): optimum %d want %d", a, d, got, a*d)
			}
		}
	}
}

func TestOptimumEqualsFlowCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 40; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(8), 6)
		hk := Optimum(tr)
		fl := OptimumByFlow(tr)
		if hk != fl {
			t.Fatalf("trial %d: HK %d != flow %d", trial, hk, fl)
		}
	}
}

func TestOptimumScheduleIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		tr := randomTrace(rng, 3, 3, 6, 5)
		log := OptimumSchedule(tr)
		if err := core.ValidateLog(tr, log); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(log) != Optimum(tr) {
			t.Fatalf("trial %d: schedule size %d != optimum", trial, len(log))
		}
	}
}

func TestSlotIndexRoundTrip(t *testing.T) {
	f := func(res, tt uint8, n uint8) bool {
		nn := int(n%7) + 1
		r := int(res) % nn
		tm := int(tt)
		gotRes, gotT := SlotOf(nn, SlotIndex(nn, r, tm))
		return gotRes == r && gotT == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEDFSingleChoiceIsOptimal(t *testing.T) {
	// Observation 3.1: with one alternative per request, EDF fulfills as many
	// requests as the offline optimum — even with mixed deadlines.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		tr := randomSingleChoiceTrace(rng, 1+rng.Intn(4), 1+rng.Intn(5), 1+rng.Intn(10), 5)
		edf := EarliestDeadlineSchedule(tr)
		opt := Optimum(tr)
		if edf != opt {
			t.Fatalf("trial %d: EDF %d != OPT %d (n=%d)", trial, edf, opt, tr.N)
		}
	}
}

func TestEDFScheduleNeverBeatsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(8), 5)
		if e, o := EarliestDeadlineSchedule(tr), Optimum(tr); e > o {
			t.Fatalf("trial %d: EDF-style greedy %d exceeds OPT %d", trial, e, o)
		}
	}
}

func TestBuildGraphEdgeOrder(t *testing.T) {
	// A request arriving at t=1 with alts (2, 0) and d=2 must list slots
	// (2,1),(2,2),(0,1),(0,2) in that order.
	b := core.NewBuilder(3, 2)
	b.Add(1, 2, 0)
	tr := b.Build()
	g := BuildGraph(tr)
	adj := g.Adj(0)
	want := []int{
		SlotIndex(3, 2, 1), SlotIndex(3, 2, 2),
		SlotIndex(3, 0, 1), SlotIndex(3, 0, 2),
	}
	if len(adj) != len(want) {
		t.Fatalf("adjacency %v", adj)
	}
	for i := range want {
		if int(adj[i]) != want[i] {
			t.Fatalf("edge %d: got %d want %d", i, adj[i], want[i])
		}
	}
	if g.NRight() != tr.Horizon()*tr.N {
		t.Fatalf("right side %d", g.NRight())
	}
	_ = matching.None
}

func TestOptimumMinLatencyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 30; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(6), 5)
		log, latency := OptimumMinLatency(tr)
		if err := core.ValidateLog(tr, log); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(log) != Optimum(tr) {
			t.Fatalf("trial %d: min-latency schedule size %d != optimum %d",
				trial, len(log), Optimum(tr))
		}
		// Latency must be no worse than the plain HK optimum's latency.
		hk := OptimumSchedule(tr)
		hkLatency := 0
		for _, f := range hk {
			hkLatency += f.Round - f.Req.Arrive
		}
		if latency > hkLatency {
			t.Fatalf("trial %d: min-latency %d > HK latency %d", trial, latency, hkLatency)
		}
		// Recompute the reported latency from the log.
		sum := 0
		for _, f := range log {
			sum += f.Round - f.Req.Arrive
		}
		if sum != latency {
			t.Fatalf("trial %d: reported latency %d, log says %d", trial, latency, sum)
		}
	}
}

func TestOptimumMinLatencyServesEagerly(t *testing.T) {
	// One resource, two rounds, one flexible request: it must be served at
	// round 0, not 1.
	b := core.NewBuilder(1, 2)
	b.Add(0, 0)
	tr := b.Build()
	log, latency := OptimumMinLatency(tr)
	if len(log) != 1 || log[0].Round != 0 || latency != 0 {
		t.Fatalf("log %+v latency %d", log, latency)
	}
}

func TestOptimumMonotoneInRequests(t *testing.T) {
	// Adding requests never decreases the offline optimum: the competitive
	// accounting implicitly relies on this. Built incrementally round by
	// round.
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 25; trial++ {
		b := core.NewBuilder(3, 3)
		prev := 0
		for t0 := 0; t0 < 8; t0++ {
			for i := 0; i < 1+rng.Intn(3); i++ {
				a := rng.Intn(3)
				c := (a + 1 + rng.Intn(2)) % 3
				b.Add(t0, a, c)
			}
			opt := Optimum(b.Build())
			if opt < prev {
				t.Fatalf("trial %d: OPT dropped from %d to %d after adding requests", trial, prev, opt)
			}
			prev = opt
		}
	}
}

func TestOptimumBoundedByCapacityAndDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(8), 6)
		opt := Optimum(tr)
		if opt > tr.NumRequests() {
			t.Fatalf("OPT %d exceeds demand %d", opt, tr.NumRequests())
		}
		if opt > tr.N*tr.Horizon() {
			t.Fatalf("OPT %d exceeds capacity %d", opt, tr.N*tr.Horizon())
		}
	}
}
