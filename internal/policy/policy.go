// Package policy decomposes an online scheduling strategy into four
// orthogonal, separately registered axes and recomposes them into a
// core.Strategy:
//
//   - Router: which resource (and window slot) serves each request — the
//     paper's strategy bodies (fix, current, fix_balance, eager, balance)
//     plus the greedy/first-fit baselines.
//   - QueueOrder: which pending request a resource prefers first (FCFS,
//     SJF, priority-FCFS).
//   - Admission: accept or reject each request on arrival (always, per-round
//     burst cap, backlog limit).
//   - Priority: a score per request feeding the order axis (constant,
//     weight, SLO age).
//
// The paper fuses the first two decisions into one object; factoring them
// apart multiplies scenario coverage combinatorially while the canonical
// compositions (router=X, order=fcfs, admit=always, prio=constant) remain
// byte-identical to the fused strategies in internal/strategies — a property
// the equivalence tests and cmd/verify pin.
package policy

import (
	"fmt"
	"sort"

	"reqsched/internal/core"
)

// Router decides which resource and window slot serves each request. It is
// the resource-assignment half of a fused strategy: given the admitted
// pending queue in service-preference order (most preferred first), it
// writes assignments into ctx.W.
//
// Routers must derive any arrival/backlog split from the requests themselves
// (r.Arrive == ctx.T identifies this round's arrivals) rather than from
// ctx.Arrivals, which the admission axis may have filtered. Like strategy
// instances, routers may carry per-instance scratch and are not safe for
// concurrent use.
type Router interface {
	Name() string
	Begin(n, d int)
	Route(ctx *core.RoundContext, queue []*core.Request)
}

// QueueOrder ranks pending requests for service preference. Less reports
// whether a should be served before b at round t; pa and pb are the requests'
// scores under the composition's Priority axis. Implementations must be
// deterministic and need not break every tie: Composite sorts stably over a
// queue already in arrival (ID) order, so unordered pairs keep that order.
type QueueOrder interface {
	Name() string
	Less(a, b *core.Request, pa, pb float64, t int) bool
}

// Priority scores a request at round t. Higher scores are preferred by
// orders that consume them (priority_fcfs); aging policies grow the score
// with waiting time.
type Priority interface {
	Name() string
	Score(r *core.Request, t int) float64
}

// Admission accepts or rejects each request once, in the round it arrives.
// Rejected requests are never routed: they stay in the engine's pending set
// until their deadline passes and count as expired — the online analogue of
// answering 429 at ingest. Implementations may keep per-round state; Begin
// resets it.
type Admission interface {
	Name() string
	Begin(n, d int)
	Admit(ctx *core.RoundContext, r *core.Request) bool
}

// Composite assembles one component per axis into a core.Strategy. Each
// round it (1) runs admission over this round's arrivals, (2) builds the
// admitted queue, (3) scores it under the priority axis, (4) stably sorts it
// under the queue order, and (5) hands it to the router. All buffers are
// reused across rounds, so with the always-admit axis the steady-state round
// allocates nothing beyond what the router itself does.
type Composite struct {
	name   string
	router Router
	order  QueueOrder
	prio   Priority
	admit  Admission

	queue    []*core.Request
	keys     []float64
	rejected map[int]int // rejected request ID -> deadline, purged on expiry
	srt      queueSorter
}

// NewComposite returns the composition under the given display name (the
// registry uses the round-trippable spec, e.g. "compose,router=greedy").
func NewComposite(name string, r Router, o QueueOrder, p Priority, a Admission) *Composite {
	return &Composite{name: name, router: r, order: o, prio: p, admit: a}
}

// Name implements core.Strategy.
func (c *Composite) Name() string { return c.name }

// SupportsModel implements core.ModelSupporter by delegating to the router —
// the only axis that touches window slots. Order, priority and admission read
// at most Window.Assigned, which is model-agnostic.
func (c *Composite) SupportsModel(m core.ServiceModel) error {
	if ms, ok := c.router.(core.ModelSupporter); ok {
		return ms.SupportsModel(m)
	}
	return fmt.Errorf("policy: router %q supports only the unit service model, not %s", c.router.Name(), m)
}

// Begin implements core.Strategy.
func (c *Composite) Begin(n, d int) {
	c.router.Begin(n, d)
	c.admit.Begin(n, d)
	clear(c.rejected)
}

// Round implements core.Strategy.
func (c *Composite) Round(ctx *core.RoundContext) {
	for _, r := range ctx.Arrivals {
		if !c.admit.Admit(ctx, r) {
			if c.rejected == nil {
				c.rejected = make(map[int]int)
			}
			c.rejected[r.ID] = r.Deadline()
		}
	}
	q := c.queue[:0]
	if len(c.rejected) == 0 {
		q = append(q, ctx.Pending...)
	} else {
		for id, dl := range c.rejected {
			if dl < ctx.T {
				delete(c.rejected, id)
			}
		}
		for _, r := range ctx.Pending {
			if _, rej := c.rejected[r.ID]; !rej {
				q = append(q, r)
			}
		}
	}
	c.queue = q
	if cap(c.keys) < len(q) {
		c.keys = make([]float64, len(q))
	}
	keys := c.keys[:len(q)]
	for i, r := range q {
		keys[i] = c.prio.Score(r, ctx.T)
	}
	c.srt = queueSorter{q: q, keys: keys, ord: c.order, t: ctx.T}
	sort.Stable(&c.srt)
	c.router.Route(ctx, q)
}

// queueSorter sorts the queue and its priority keys together under the
// composition's order. It lives inside Composite so taking its address for
// sort.Stable does not allocate.
type queueSorter struct {
	q    []*core.Request
	keys []float64
	ord  QueueOrder
	t    int
}

func (s *queueSorter) Len() int { return len(s.q) }
func (s *queueSorter) Less(i, j int) bool {
	return s.ord.Less(s.q[i], s.q[j], s.keys[i], s.keys[j], s.t)
}
func (s *queueSorter) Swap(i, j int) {
	s.q[i], s.q[j] = s.q[j], s.q[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
