package policy_test

import (
	"fmt"
	"sync"
	"testing"

	"reqsched"
	"reqsched/internal/core"
	"reqsched/internal/registry"
)

// canonical maps each fused strategy to its composed form. The compositions
// use the default order/admission/priority axes (fcfs/always/constant), so
// they must reproduce the fused strategies' schedules byte for byte — the
// determinism contract every golden and adversary construction leans on.
var canonical = [][2]string{
	{"A_fix", "compose,router=fix"},
	{"A_current", "compose,router=current"},
	{"A_fix_balance", "compose,router=fix_balance"},
	{"A_eager", "compose,router=eager"},
	{"A_balance", "compose,router=balance"},
	{"first_fit", "compose,router=first_fit"},
}

// sameSchedule fails unless the two results carry the identical fulfillment
// schedule: same requests (by ID), resources and rounds, in the same service
// order.
func sameSchedule(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a.Requests != b.Requests || a.Fulfilled != b.Fulfilled || a.Expired != b.Expired {
		t.Errorf("%s: totals diverge: %d/%d/%d vs %d/%d/%d",
			label, a.Requests, a.Fulfilled, a.Expired, b.Requests, b.Fulfilled, b.Expired)
		return
	}
	if len(a.Log) != len(b.Log) {
		t.Errorf("%s: log length %d vs %d", label, len(a.Log), len(b.Log))
		return
	}
	for i := range a.Log {
		fa, fb := a.Log[i], b.Log[i]
		if fa.Req.ID != fb.Req.ID || fa.Res != fb.Res || fa.Round != fb.Round {
			t.Errorf("%s: schedule diverges at entry %d: req %d res %d round %d vs req %d res %d round %d",
				label, i, fa.Req.ID, fa.Res, fa.Round, fb.Req.ID, fb.Res, fb.Round)
			return
		}
	}
}

// runParallel fans job indices 0..n-1 over `workers` goroutines — the
// property holds per strategy instance, so instances built inside fn must
// stay goroutine-local (each index constructs its own).
func runParallel(t *testing.T, workers, n int, fn func(i int)) {
	t.Helper()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// TestCanonicalCompositionsMatchLegacyOnAdversaries runs every canonical
// composition against every registered lower-bound construction — the Table
// 1 adversaries plus the local/EDF/universal ones — and demands the exact
// fused schedule (oblivious constructions) or the exact measurement
// (adaptive ones), at worker-pool sizes 1, 2 and 4.
func TestCanonicalCompositionsMatchLegacyOnAdversaries(t *testing.T) {
	advs := registry.Names(registry.KindAdversary)
	type job struct {
		adv  string
		pair [2]string
	}
	var jobs []job
	for _, adv := range advs {
		for _, pair := range canonical {
			jobs = append(jobs, job{adv, pair})
		}
	}
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			runParallel(t, workers, len(jobs), func(i int) {
				j := jobs[i]
				label := fmt.Sprintf("%s vs %s on adversary %s", j.pair[0], j.pair[1], j.adv)
				c, err := registry.BuildAdversary(j.adv, registry.Params{"phases": registry.IntVal(2)})
				if err != nil {
					t.Errorf("%s: build: %v", label, err)
					return
				}
				if c.Trace != nil {
					legacy := reqsched.StrategyByName(j.pair[0])
					composed := reqsched.StrategyByName(j.pair[1])
					// Constructions for non-unit service models (hold_squeeze)
					// only apply to model-aware pairs; skip the rest — the
					// engine would reject them.
					if core.CheckModelSupport(legacy, c.Trace.Model) != nil ||
						core.CheckModelSupport(composed, c.Trace.Model) != nil {
						return
					}
					sameSchedule(t, label, reqsched.Run(legacy, c.Trace), reqsched.Run(composed, c.Trace))
					return
				}
				// Adaptive source: the construction generates the trace while
				// observing the strategy, so compare the end-to-end measurement.
				ml := reqsched.MeasureConstruction(c, reqsched.StrategyByName(j.pair[0]))
				c2, err := registry.BuildAdversary(j.adv, registry.Params{"phases": registry.IntVal(2)})
				if err != nil {
					t.Errorf("%s: rebuild: %v", label, err)
					return
				}
				mc := reqsched.MeasureConstruction(c2, reqsched.StrategyByName(j.pair[1]))
				if ml.OPT != mc.OPT || ml.ALG != mc.ALG || ml.Expired != mc.Expired {
					t.Errorf("%s: adaptive measurement diverges: OPT %d ALG %d expired %d vs OPT %d ALG %d expired %d",
						label, ml.OPT, ml.ALG, ml.Expired, mc.OPT, mc.ALG, mc.Expired)
				}
			})
		})
	}
}

// TestCanonicalCompositionsMatchLegacyOnRandomWorkloads is the bulk property
// sweep: ≥1000 random workloads per worker-pool size (uniform, bursty and
// mixed-deadline families across n, d, load and seed), each checked for a
// byte-identical schedule between a fused strategy and its composition.
func TestCanonicalCompositionsMatchLegacyOnRandomWorkloads(t *testing.T) {
	const total = 1050
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			runParallel(t, workers, total, func(i int) {
				cfg := reqsched.WorkloadConfig{
					N:      2 + i%5,
					D:      1 + i%4,
					Rounds: 10 + i%21,
					Rate:   0.6 * float64(1+i%7),
					Seed:   int64(100000*workers + i),
				}
				var tr *reqsched.Trace
				switch i % 3 {
				case 0:
					tr = reqsched.Uniform(cfg)
				case 1:
					tr = reqsched.Bursty(cfg, 2+i%3, 3+i%5, 3*cfg.Rate)
				default:
					tr = reqsched.MixedDeadlines(cfg)
				}
				pair := canonical[i%len(canonical)]
				label := fmt.Sprintf("%s vs %s on workload %d (n=%d d=%d)", pair[0], pair[1], i, cfg.N, cfg.D)
				legacy := reqsched.Run(reqsched.StrategyByName(pair[0]), tr)
				composed := reqsched.Run(reqsched.StrategyByName(pair[1]), tr)
				sameSchedule(t, label, legacy, composed)
			})
		})
	}
}

// TestDefaultComposeIsBalance: the all-defaults composition is A_balance —
// the paper's best simple strategy is the default composition.
func TestDefaultComposeIsBalance(t *testing.T) {
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 8, D: 4, Rounds: 80, Rate: 9, Seed: 3})
	legacy := reqsched.Run(reqsched.StrategyByName("A_balance"), tr)
	composed := reqsched.Run(reqsched.StrategyByName("compose"), tr)
	sameSchedule(t, "A_balance vs compose", legacy, composed)
}
