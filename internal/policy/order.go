package policy

import "reqsched/internal/core"

// FCFS serves requests in arrival order. On a queue already in ID order this
// is the identity under a stable sort, which is exactly the fused strategies'
// contract: requests processed in ID (arrival) order. Every canonical
// composition uses it.
type FCFS struct{}

// Name implements QueueOrder.
func (FCFS) Name() string { return "fcfs" }

// Less implements QueueOrder.
func (FCFS) Less(a, b *core.Request, _, _ float64, _ int) bool {
	return a.Arrive < b.Arrive
}

// SJF serves the tightest deadline window first. In the deadline model a
// request's window length D is its "job size": a small-D request must be
// served within a few rounds or it is lost, the way a short LLM request is
// cheap to finish but suffers most from waiting behind long ones. Under
// overload, FCFS lets wide-window heads of line starve tight-window arrivals
// — the head-of-line-blocking effect SJF relieves (see the pinned experiment
// in hol_test.go). Ties fall back to arrival order.
type SJF struct{}

// Name implements QueueOrder.
func (SJF) Name() string { return "sjf" }

// Less implements QueueOrder.
func (SJF) Less(a, b *core.Request, _, _ float64, _ int) bool {
	if a.D != b.D {
		return a.D < b.D
	}
	return a.Arrive < b.Arrive
}

// PriorityFCFS serves strictly by descending priority score, FCFS within a
// score class. Combined with the slo_age priority it implements aged
// SLO-class scheduling; with the weight priority, weighted precedence.
type PriorityFCFS struct{}

// Name implements QueueOrder.
func (PriorityFCFS) Name() string { return "priority_fcfs" }

// Less implements QueueOrder.
func (PriorityFCFS) Less(a, b *core.Request, pa, pb float64, _ int) bool {
	if pa != pb {
		return pa > pb
	}
	return a.Arrive < b.Arrive
}
