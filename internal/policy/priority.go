package policy

import "reqsched/internal/core"

// ConstantPriority scores every request 0: no priority signal, order axes
// fall back to their own keys. The canonical compositions use it.
type ConstantPriority struct{}

// Name implements Priority.
func (ConstantPriority) Name() string { return "constant" }

// Score implements Priority.
func (ConstantPriority) Score(*core.Request, int) float64 { return 0 }

// WeightPriority scores a request by its weight, so priority_fcfs serves
// heavy (high-profit) requests first — the greedy end of the weighted
// objective.
type WeightPriority struct{}

// Name implements Priority.
func (WeightPriority) Name() string { return "weight" }

// Score implements Priority.
func (WeightPriority) Score(r *core.Request, _ int) float64 {
	return float64(r.Weight())
}

// SLOAgePriority implements aged SLO scheduling: score = base + age_weight ×
// rounds waited. With priority_fcfs this keeps long-waiting requests from
// starving under any static class order — the anti-starvation half of an
// SLO-aware scheduler.
type SLOAgePriority struct {
	Base      float64
	AgeWeight float64
}

// Name implements Priority.
func (SLOAgePriority) Name() string { return "slo_age" }

// Score implements Priority.
func (p SLOAgePriority) Score(r *core.Request, t int) float64 {
	return p.Base + p.AgeWeight*float64(t-r.Arrive)
}
