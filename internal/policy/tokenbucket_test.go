package policy_test

import (
	"testing"

	"reqsched"
	"reqsched/internal/core"
	"reqsched/internal/policy"
	"reqsched/internal/registry"
)

// admitSequence drives a TokenBucketAdmission through scripted rounds and
// returns how many of each round's arrivals it admits.
func admitSequence(b *policy.TokenBucketAdmission, arrivals map[int]int, horizon int) map[int]int {
	b.Begin(1, 1)
	out := make(map[int]int)
	r := &core.Request{Alts: []int{0}, D: 1}
	for t := 0; t < horizon; t++ {
		ctx := &core.RoundContext{T: t}
		for i := 0; i < arrivals[t]; i++ {
			if b.Admit(ctx, r) {
				out[t]++
			}
		}
	}
	return out
}

// TestTokenBucketAdmission pins the rate-limiting semantics: the bucket
// starts full, a burst up to Burst passes untrimmed, idle rounds bank
// capacity at Rate tokens per round up to Burst, and the long-run admitted
// rate is Rate.
func TestTokenBucketAdmission(t *testing.T) {
	// Burst 3, rate 1: the opening burst of 5 is trimmed to the full bucket.
	got := admitSequence(&policy.TokenBucketAdmission{Rate: 1, Burst: 3}, map[int]int{0: 5}, 1)
	if got[0] != 3 {
		t.Errorf("opening burst: admitted %d, want the full bucket 3", got[0])
	}

	// After draining the bucket, each round refills exactly one token.
	got = admitSequence(&policy.TokenBucketAdmission{Rate: 1, Burst: 3}, map[int]int{0: 5, 1: 2, 2: 2}, 3)
	if got[1] != 1 || got[2] != 1 {
		t.Errorf("steady state: admitted %d,%d per round, want 1,1", got[1], got[2])
	}

	// Idle rounds bank capacity, capped at Burst: after 10 idle rounds only
	// Burst tokens are available, not 10.
	got = admitSequence(&policy.TokenBucketAdmission{Rate: 1, Burst: 3}, map[int]int{0: 3, 10: 6}, 11)
	if got[10] != 3 {
		t.Errorf("banked burst: admitted %d, want cap at Burst 3", got[10])
	}

	// Fractional rates accrue: rate 0.5 admits one request every two rounds.
	arr := make(map[int]int)
	for t := 1; t <= 8; t++ {
		arr[t] = 1
	}
	got = admitSequence(&policy.TokenBucketAdmission{Rate: 0.5, Burst: 1}, arr, 9)
	total := 0
	for _, c := range got {
		total += c
	}
	// The bucket starts full (1 token, spent at round 1); refills accrue
	// from the first observed round, reaching a whole token every second
	// round after that (rounds 3, 5, 7).
	if total != 4 {
		t.Errorf("rate 0.5 over 8 rounds: admitted %d, want 4", total)
	}
}

// TestTokenBucketComposedCapsThroughput runs the composed strategy end to
// end: with rate r on an overloaded workload, the admitted (and hence
// fulfilled) count is bounded by burst + r*horizon.
func TestTokenBucketComposedCapsThroughput(t *testing.T) {
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 4, D: 2, Rounds: 100, Rate: 12, Seed: 9})
	s, err := registry.NewStrategySpec("compose,router=greedy,admit=token_bucket,rate=2,burst=5")
	if err != nil {
		t.Fatal(err)
	}
	res := reqsched.Run(s, tr)
	limit := 5 + 2*tr.Horizon()
	if res.Fulfilled > limit {
		t.Errorf("fulfilled %d exceeds the admission ceiling %d", res.Fulfilled, limit)
	}
	unlimited := reqsched.Run(reqsched.StrategyByName("compose,router=greedy"), tr)
	if res.Fulfilled >= unlimited.Fulfilled {
		t.Errorf("token bucket admitted %d >= unlimited %d on an overloaded trace",
			res.Fulfilled, unlimited.Fulfilled)
	}
}
