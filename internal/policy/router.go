package policy

import "reqsched/internal/core"

// The paper-strategy routers (fix, current, fix_balance, eager, balance)
// live in internal/strategies next to the fused bodies they share code with;
// this file holds the two matching-free baselines. Both assign each request
// to its first free slot (alternatives in listed order, earliest round
// first) and never reschedule — what distinguishes them is who gets to pick
// first, i.e. the queue order, which makes greedy the cleanest vehicle for
// order-axis experiments such as SJF vs FCFS.

// firstFreeSlot scans the request's admissible slots in the deterministic
// preference order (alternatives as listed, rounds ascending, clipped to the
// deadline) and returns the first free one. Equivalent to
// ctx.W.FreeSlotsFor(r)[0] without allocating the slice.
func firstFreeSlot(w *core.Window, r *core.Request) (res, round int, ok bool) {
	t := w.Round()
	last := r.Deadline()
	if max := t + w.Depth() - 1; last > max {
		last = max
	}
	for _, a := range r.Alts {
		for rd := t; rd <= last; rd++ {
			if w.Free(a, rd) {
				return a, rd, true
			}
		}
	}
	return 0, 0, false
}

// GreedyRouter assigns every unassigned queued request — not just this
// round's arrivals — to its first free slot each round, in queue order.
// Unlike first_fit it retries: a request that found no slot competes again
// next round, so the queue order decides who claims the slots the advancing
// window opens up.
type GreedyRouter struct{}

// Name implements Router.
func (GreedyRouter) Name() string { return "greedy" }

// Begin implements Router.
func (GreedyRouter) Begin(int, int) {}

// SupportsModel implements core.ModelSupporter: the scan through Window.Free
// is occupancy-aware, so any service model is supported — greedy is the
// Baek–Wang vehicle for the reusable-resources experiments.
func (GreedyRouter) SupportsModel(core.ServiceModel) error { return nil }

// Route implements Router.
func (GreedyRouter) Route(ctx *core.RoundContext, queue []*core.Request) {
	for _, r := range queue {
		if ctx.W.Assigned(r) {
			continue
		}
		if res, round, ok := firstFreeSlot(ctx.W, r); ok {
			ctx.W.Assign(r, res, round)
		}
	}
}

// FirstFitRouter is the strategies.FirstFit baseline as a router: each of
// this round's arrivals goes to its first free slot, misses are never
// retried. Composed with fcfs/always/constant it reproduces first_fit
// byte-identically.
type FirstFitRouter struct{}

// Name implements Router.
func (FirstFitRouter) Name() string { return "first_fit" }

// Begin implements Router.
func (FirstFitRouter) Begin(int, int) {}

// SupportsModel implements core.ModelSupporter: first-fit scans free slots.
func (FirstFitRouter) SupportsModel(core.ServiceModel) error { return nil }

// Route implements Router.
func (FirstFitRouter) Route(ctx *core.RoundContext, queue []*core.Request) {
	for _, r := range queue {
		if r.Arrive != ctx.T {
			continue
		}
		if res, round, ok := firstFreeSlot(ctx.W, r); ok {
			ctx.W.Assign(r, res, round)
		}
	}
}
