package policy_test

import (
	"testing"

	"reqsched"
)

// tightServed counts fulfilled requests with deadline window <= tight.
func tightServed(res *reqsched.Result, tight int) int {
	c := 0
	for _, f := range res.Log {
		if f.Req.D <= tight {
			c++
		}
	}
	return c
}

// TestSJFRelievesHeadOfLineBlocking is the pinned head-of-line-blocking
// experiment the policy decomposition exists to enable (ROADMAP: the H1-SJF
// result inside the paper's two-choice deadline model).
//
// Setup: mixed deadline windows (uniform 1..6) at 1.5x overload on the
// current router, which assigns only the current round's slots — so the
// queue order alone decides who gets served today. Under FCFS, wide-window
// requests at the head of the queue soak up the slots round after round
// while tight-window (D <= 2) arrivals expire behind them: classic
// head-of-line blocking. SJF serves the tightest windows first and rescues
// them — a ~6x jump in tight-window service — at no cost in total
// throughput, because wide-window requests can wait and still make their
// deadlines.
//
// The exact totals are pinned: the workload and both strategies are
// deterministic, so any drift here is a behavior change in the engine, the
// router bodies, or the order axis.
func TestSJFRelievesHeadOfLineBlocking(t *testing.T) {
	tr := reqsched.MixedDeadlines(reqsched.WorkloadConfig{
		N: 4, D: 6, Rounds: 120, Rate: 6, Seed: 7,
	})
	fcfs := reqsched.Run(reqsched.StrategyByName("compose,router=current,order=fcfs"), tr)
	sjf := reqsched.Run(reqsched.StrategyByName("compose,router=current,order=sjf"), tr)

	if fcfs.Requests != 687 {
		t.Fatalf("workload drifted: %d requests, want 687", fcfs.Requests)
	}
	if got, want := fcfs.Fulfilled, 485; got != want {
		t.Errorf("FCFS fulfilled %d, want %d", got, want)
	}
	if got, want := sjf.Fulfilled, 485; got != want {
		t.Errorf("SJF fulfilled %d, want %d", got, want)
	}
	if got, want := tightServed(fcfs, 2), 36; got != want {
		t.Errorf("FCFS tight-window service %d, want %d", got, want)
	}
	if got, want := tightServed(sjf, 2), 214; got != want {
		t.Errorf("SJF tight-window service %d, want %d", got, want)
	}
	// The qualitative claims behind the pinned numbers, so a legitimate
	// re-pin cannot silently invert the result: SJF must serve several times
	// more tight-window requests without losing total throughput.
	if tightServed(sjf, 2) < 3*tightServed(fcfs, 2) {
		t.Errorf("SJF no longer relieves head-of-line blocking: tight %d vs %d",
			tightServed(sjf, 2), tightServed(fcfs, 2))
	}
	if sjf.Fulfilled < fcfs.Fulfilled {
		t.Errorf("SJF lost throughput: %d vs %d", sjf.Fulfilled, fcfs.Fulfilled)
	}
}
