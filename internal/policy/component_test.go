package policy_test

import (
	"testing"

	"reqsched"
	"reqsched/internal/core"
	"reqsched/internal/policy"
)

// TestOrderComponents checks the Less relations directly.
func TestOrderComponents(t *testing.T) {
	early := &core.Request{ID: 0, Arrive: 0, D: 5}
	late := &core.Request{ID: 3, Arrive: 2, D: 1}
	// FCFS: earlier arrival first, regardless of window.
	if !(policy.FCFS{}).Less(early, late, 0, 0, 2) {
		t.Error("FCFS does not prefer the earlier arrival")
	}
	if (policy.FCFS{}).Less(late, early, 0, 0, 2) {
		t.Error("FCFS prefers the later arrival")
	}
	if !(policy.SJF{}).Less(late, early, 0, 0, 2) {
		t.Error("SJF does not prefer the tighter window")
	}
	if (policy.SJF{}).Less(early, late, 0, 0, 2) {
		t.Error("SJF prefers the wider window")
	}
	// priority_fcfs: score beats arrival; equal scores fall back to arrival.
	if !(policy.PriorityFCFS{}).Less(late, early, 2, 1, 2) {
		t.Error("priority_fcfs does not prefer the higher score")
	}
	if !(policy.PriorityFCFS{}).Less(early, late, 1, 1, 2) {
		t.Error("priority_fcfs with equal scores does not fall back to FCFS")
	}
}

// TestPriorityComponents checks the scoring rules.
func TestPriorityComponents(t *testing.T) {
	r := &core.Request{ID: 1, Arrive: 3, D: 4, W: 7}
	if got := (policy.ConstantPriority{}).Score(r, 10); got != 0 {
		t.Errorf("constant score %v, want 0", got)
	}
	if got := (policy.WeightPriority{}).Score(r, 10); got != 7 {
		t.Errorf("weight score %v, want 7", got)
	}
	unweighted := &core.Request{ID: 2, Arrive: 0, D: 1}
	if got := (policy.WeightPriority{}).Score(unweighted, 0); got != 1 {
		t.Errorf("weight score of unweighted request %v, want the default weight 1", got)
	}
	p := policy.SLOAgePriority{Base: 2, AgeWeight: 0.5}
	if got := p.Score(r, 7); got != 2+0.5*4 {
		t.Errorf("slo_age score %v, want 4", got)
	}
}

// TestBurstAdmissionCapsArrivals: with k=1 on an overloaded workload the
// composition admits one arrival per round; the rest are rejected and
// expire. Totals are conserved (requests = fulfilled + expired), and the
// always-admit composition serves strictly more.
func TestBurstAdmissionCapsArrivals(t *testing.T) {
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 4, D: 3, Rounds: 60, Rate: 6, Seed: 9})
	capped := reqsched.Run(reqsched.StrategyByName("compose,router=greedy,admit=burst,k=1"), tr)
	open := reqsched.Run(reqsched.StrategyByName("compose,router=greedy"), tr)
	if capped.Requests != open.Requests {
		t.Fatalf("admission changed the request count: %d vs %d", capped.Requests, open.Requests)
	}
	if capped.Fulfilled+capped.Expired != capped.Requests {
		t.Errorf("totals not conserved: %d + %d != %d", capped.Fulfilled, capped.Expired, capped.Requests)
	}
	// At most one admission per round can be fulfilled.
	if rounds := len(tr.Arrivals); capped.Fulfilled > rounds {
		t.Errorf("burst k=1 fulfilled %d > %d rounds", capped.Fulfilled, rounds)
	}
	if capped.Fulfilled >= open.Fulfilled {
		t.Errorf("burst k=1 (%d) should serve fewer than always-admit (%d) under overload",
			capped.Fulfilled, open.Fulfilled)
	}
	if capped.Fulfilled == 0 {
		t.Error("burst k=1 served nothing")
	}
}

// TestBacklogAdmissionShedsLoad: limit=0 closes intake whenever any backlog
// is carried; on an overloaded workload that still admits work whenever the
// queue fully drains, and a generous limit admits everything.
func TestBacklogAdmissionShedsLoad(t *testing.T) {
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 2, D: 2, Rounds: 40, Rate: 4, Seed: 5})
	strict := reqsched.Run(reqsched.StrategyByName("compose,router=greedy,admit=backlog,limit=0"), tr)
	open := reqsched.Run(reqsched.StrategyByName("compose,router=greedy"), tr)
	loose := reqsched.Run(reqsched.StrategyByName("compose,router=greedy,admit=backlog,limit=10000"), tr)
	if strict.Fulfilled >= open.Fulfilled {
		t.Errorf("backlog limit=0 (%d) should shed load vs always-admit (%d)", strict.Fulfilled, open.Fulfilled)
	}
	if loose.Fulfilled != open.Fulfilled || loose.Expired != open.Expired {
		t.Errorf("backlog limit=10000 (%d/%d) should match always-admit (%d/%d)",
			loose.Fulfilled, loose.Expired, open.Fulfilled, open.Expired)
	}
	if strict.Fulfilled+strict.Expired != strict.Requests {
		t.Errorf("totals not conserved: %d + %d != %d", strict.Fulfilled, strict.Expired, strict.Requests)
	}
}
