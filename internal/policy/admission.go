package policy

import "reqsched/internal/core"

// AdmitAll accepts every arrival: the paper's model, and the admission axis
// of every canonical composition.
type AdmitAll struct{}

// Name implements Admission.
func (AdmitAll) Name() string { return "always" }

// Begin implements Admission.
func (AdmitAll) Begin(int, int) {}

// Admit implements Admission.
func (AdmitAll) Admit(*core.RoundContext, *core.Request) bool { return true }

// BurstAdmission caps arrivals at K per round, rejecting the rest — a token
// bucket with window one round. It bounds how much backlog a burst can
// inject, trading rejected requests for the survivors' service quality.
type BurstAdmission struct {
	K int

	t     int
	count int
}

// Name implements Admission.
func (*BurstAdmission) Name() string { return "burst" }

// Begin implements Admission.
func (b *BurstAdmission) Begin(int, int) { b.t, b.count = -1, 0 }

// Admit implements Admission.
func (b *BurstAdmission) Admit(ctx *core.RoundContext, _ *core.Request) bool {
	if ctx.T != b.t {
		b.t, b.count = ctx.T, 0
	}
	b.count++
	return b.count <= b.K
}

// TokenBucketAdmission admits while the bucket has a token: Rate tokens
// accrue per round up to Burst, one is spent per admitted request. Unlike
// BurstAdmission's fixed per-round cap it lets idle rounds bank capacity, so
// a burst up to Burst passes untrimmed while the long-run admitted rate stays
// at Rate per round — classic rate limiting at the scheduling edge.
type TokenBucketAdmission struct {
	Rate  float64
	Burst int

	t      int
	tokens float64
}

// Name implements Admission.
func (*TokenBucketAdmission) Name() string { return "token_bucket" }

// Begin implements Admission: the bucket starts full.
func (b *TokenBucketAdmission) Begin(int, int) {
	b.t = -1
	b.tokens = float64(b.Burst)
}

// Admit implements Admission.
func (b *TokenBucketAdmission) Admit(ctx *core.RoundContext, _ *core.Request) bool {
	if ctx.T != b.t {
		if b.t >= 0 {
			b.tokens += b.Rate * float64(ctx.T-b.t)
			if max := float64(b.Burst); b.tokens > max {
				b.tokens = max
			}
		}
		b.t = ctx.T
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// BacklogAdmission rejects arrivals while the unassigned backlog carried
// from earlier rounds is at or above Limit — load shedding keyed to queue
// depth rather than arrival rate, the engine-side analogue of the serve
// daemon's 429-on-full-queue.
type BacklogAdmission struct {
	Limit int

	t       int
	allowed int
	taken   int
}

// Name implements Admission.
func (*BacklogAdmission) Name() string { return "backlog" }

// Begin implements Admission.
func (a *BacklogAdmission) Begin(int, int) { a.t = -1 }

// Admit implements Admission.
func (a *BacklogAdmission) Admit(ctx *core.RoundContext, _ *core.Request) bool {
	if ctx.T != a.t {
		// Backlog carried into this round: pending requests from earlier
		// rounds still waiting for a slot. This round's arrivals (already in
		// ctx.Pending when the strategy runs) are excluded — they are what
		// is being admitted.
		backlog := 0
		for _, r := range ctx.Pending {
			if r.Arrive < ctx.T && !ctx.W.Assigned(r) {
				backlog++
			}
		}
		a.t = ctx.T
		a.allowed = a.Limit - backlog
		a.taken = 0
	}
	a.taken++
	return a.taken <= a.allowed
}
