package policy_test

import (
	"testing"

	"reqsched"
)

// TestComposedFormsAddNoEngineAllocs pins the zero-overhead contract of the
// decomposition: once constructed (and warmed once so the reusable queue/key
// buffers have grown to the workload's high-water mark), a canonical
// compose(router=X) strategy allocates exactly as much per simulation as the
// fused legacy strategy it decomposes. The composite's queue, priority keys,
// and sorter all live in reused scratch, and FCFS ordering with no rejections
// never touches the rejected map — so the steady-state hot path is the same
// allocation-free round loop. BenchmarkEngineAllocs covers the same pairs
// with construction included; this test isolates the engine hot path.
func TestComposedFormsAddNoEngineAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow with -short")
	}
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 16, D: 6, Rounds: 300, Rate: 18, Seed: 11})
	for _, p := range [][2]string{
		{"A_fix", "compose,router=fix"},
		{"A_current", "compose,router=current"},
		{"A_fix_balance", "compose,router=fix_balance"},
		{"A_eager", "compose,router=eager"},
		{"A_balance", "compose,router=balance"},
	} {
		legacy := reqsched.StrategyByName(p[0])
		comp := reqsched.StrategyByName(p[1])
		// Warm both so one-time buffer growth is off the books.
		reqsched.Run(legacy, tr)
		reqsched.Run(comp, tr)
		want := testing.AllocsPerRun(10, func() { reqsched.Run(legacy, tr) })
		got := testing.AllocsPerRun(10, func() { reqsched.Run(comp, tr) })
		if got > want {
			t.Errorf("%s allocates %v per run, fused %s only %v", p[1], got, p[0], want)
		}
	}
}
