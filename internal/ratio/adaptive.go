// Streaming adaptive measurement. RunAdaptive materializes the adversary's
// whole trace before the offline optimum is taken — fine for the paper-sized
// constructions, horizon-proportional memory for long adaptive runs. The
// streaming path instead pipes the engine's generated rounds through a
// trace.SegmentCutter as they are produced and folds each finished segment
// into the segmented offline solver, so peak memory is the largest segment
// (plus workers in flight), not the run.
package ratio

import (
	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/trace"
)

// RunAdaptiveStream runs s against an adaptive source and computes its
// competitive ratio incrementally: every round the adversary generates is
// pushed through a clean-cut segmenter, and finished segments are solved on
// an offline.OptimumStream worker pool while the run is still in progress.
// At a clean cut every earlier request is already served or expired, so the
// flushed rows are no longer referenced by the engine and the garbage
// collector reclaims them — the full trace never exists in memory. It
// returns the measurement (identical OPT, ALG and Expired to MeasureAdaptive
// on the same source) and the number of segments the run decomposed into.
// workers <= 0 means GOMAXPROCS; workers == 1 takes the incremental fast
// path, which maintains the optimum matching request by request instead of
// materializing and solving segment sub-traces — same values, no per-segment
// graph construction.
func RunAdaptiveStream(s core.Strategy, src core.AdaptiveSource, workers int) (Measurement, int) {
	if workers == 1 {
		return runAdaptiveIncremental(s, src)
	}
	var res *core.Result
	segs := func(yield func(*core.Trace, error) bool) {
		sc := trace.NewSegmentCutter(src.N(), src.D())
		r, ok := core.RunAdaptiveObserved(s, src, func(t int, arrivals []core.Request) bool {
			for i := range arrivals {
				a := &arrivals[i]
				rec := trace.StreamRecord{T: a.Arrive, D: a.D, W: a.Weight(), Alts: a.Alts}
				if done := sc.Add(rec); done != nil && !yield(done, nil) {
					return false
				}
			}
			return true
		})
		res = r
		if !ok {
			return
		}
		if done := sc.Finish(); done != nil {
			yield(done, nil)
		}
	}
	opt, nsegs, err := offline.OptimumStream(segs, workers)
	if err != nil {
		// The iterator above never yields an error; OptimumStream can only
		// propagate one from it.
		panic(err)
	}
	return Measurement{
		Strategy: s.Name(),
		Input:    "adaptive",
		N:        src.N(),
		D:        src.D(),
		OPT:      opt,
		ALG:      res.Fulfilled,
		Expired:  res.Expired,
	}, nsegs
}

// runAdaptiveIncremental is the single-worker shape of RunAdaptiveStream:
// arrivals feed an offline.IncrementalOpt directly, sealed at exactly the
// clean cuts the SegmentCutter would make (arrival round past every earlier
// deadline), so OPT and the segment count match the pool path bit for bit
// while no segment sub-trace is ever materialized.
func runAdaptiveIncremental(s core.Strategy, src core.AdaptiveSource) (Measurement, int) {
	inc := offline.NewIncrementalOpt(src.N())
	opt, nsegs, maxDL := 0, 0, -1
	res, ok := core.RunAdaptiveObserved(s, src, func(t int, arrivals []core.Request) bool {
		for i := range arrivals {
			a := &arrivals[i]
			if inc.Count() > 0 && a.Arrive > maxDL {
				opt += inc.Seal()
				nsegs++
			}
			inc.Add(a.Arrive, a.D, a.Alts)
			if dl := a.Deadline(); dl > maxDL {
				maxDL = dl
			}
		}
		return true
	})
	if ok && inc.Count() > 0 {
		opt += inc.Seal()
		nsegs++
	}
	return Measurement{
		Strategy: s.Name(),
		Input:    "adaptive",
		N:        src.N(),
		D:        src.D(),
		OPT:      opt,
		ALG:      res.Fulfilled,
		Expired:  res.Expired,
	}, nsegs
}
