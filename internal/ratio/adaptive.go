// Streaming adaptive measurement. RunAdaptive materializes the adversary's
// whole trace before the offline optimum is taken — fine for the paper-sized
// constructions, horizon-proportional memory for long adaptive runs. The
// streaming path instead pipes the engine's generated rounds through a
// trace.SegmentCutter as they are produced and folds each finished segment
// into the segmented offline solver, so peak memory is the largest segment
// (plus workers in flight), not the run.
package ratio

import (
	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/trace"
)

// RunAdaptiveStream runs s against an adaptive source and computes its
// competitive ratio incrementally: every round the adversary generates is
// pushed through a clean-cut segmenter, and finished segments are solved on
// an offline.OptimumStream worker pool while the run is still in progress.
// At a clean cut every earlier request is already served or expired, so the
// flushed rows are no longer referenced by the engine and the garbage
// collector reclaims them — the full trace never exists in memory. It
// returns the measurement (identical OPT, ALG and Expired to MeasureAdaptive
// on the same source) and the number of segments the run decomposed into.
// workers <= 0 means GOMAXPROCS.
func RunAdaptiveStream(s core.Strategy, src core.AdaptiveSource, workers int) (Measurement, int) {
	var res *core.Result
	segs := func(yield func(*core.Trace, error) bool) {
		sc := trace.NewSegmentCutter(src.N(), src.D())
		r, ok := core.RunAdaptiveObserved(s, src, func(t int, arrivals []core.Request) bool {
			for i := range arrivals {
				a := &arrivals[i]
				rec := trace.StreamRecord{T: a.Arrive, D: a.D, W: a.Weight(), Alts: a.Alts}
				if done := sc.Add(rec); done != nil && !yield(done, nil) {
					return false
				}
			}
			return true
		})
		res = r
		if !ok {
			return
		}
		if done := sc.Finish(); done != nil {
			yield(done, nil)
		}
	}
	opt, nsegs, err := offline.OptimumStream(segs, workers)
	if err != nil {
		// The iterator above never yields an error; OptimumStream can only
		// propagate one from it.
		panic(err)
	}
	return Measurement{
		Strategy: s.Name(),
		Input:    "adaptive",
		N:        src.N(),
		D:        src.D(),
		OPT:      opt,
		ALG:      res.Fulfilled,
		Expired:  res.Expired,
	}, nsegs
}
