package ratio

import (
	"fmt"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/stats"
)

// Summary aggregates a strategy's empirical competitive ratio over a family
// of workloads (one per seed): mean, deviation and extremes of OPT/ALG, plus
// service-rate statistics. Used by cmd/schedsim -seeds and the examples to
// report numbers that do not hinge on a single seed.
type Summary struct {
	Strategy string
	Seeds    int
	Ratio    stats.Acc
	Served   stats.Acc
	Expired  stats.Acc
	// Starved counts seeds where the strategy fulfilled nothing although the
	// offline optimum was positive. Such runs have an infinite empirical
	// ratio and cannot be folded into the mean, so they are counted
	// explicitly instead of being silently skipped (which would bias the
	// mean optimistically).
	Starved int
}

func (s *Summary) String() string {
	// A summary with no finite-ratio samples (every seed starved) would
	// otherwise print the accumulator's zero values — "ratio 0.0000±0.0000
	// (max 0.0000)" — which reads as a perfect score instead of a total loss.
	if s.Ratio.N() == 0 {
		return fmt.Sprintf("%s over %d seeds: ratio n/a (no finite samples), served %.1f±%.1f, starved %d",
			s.Strategy, s.Seeds, s.Served.Mean(), s.Served.Std(), s.Starved)
	}
	return fmt.Sprintf("%s over %d seeds: ratio %.4f±%.4f (max %.4f), served %.1f±%.1f, starved %d",
		s.Strategy, s.Seeds, s.Ratio.Mean(), s.Ratio.Std(), s.Ratio.Max(),
		s.Served.Mean(), s.Served.Std(), s.Starved)
}

// Summarize measures mk() against the traces produced by gen(seed) for seeds
// 0..seeds-1.
func Summarize(mk func() core.Strategy, gen func(seed int64) *core.Trace, seeds int) *Summary {
	var sum Summary
	sum.Seeds = seeds
	for seed := int64(0); seed < int64(seeds); seed++ {
		tr := gen(seed)
		s := mk()
		if sum.Strategy == "" {
			sum.Strategy = s.Name()
		}
		res := core.Run(s, tr)
		opt := offline.Optimum(tr)
		if res.Fulfilled > 0 {
			sum.Ratio.Add(float64(opt) / float64(res.Fulfilled))
		} else if opt == 0 {
			sum.Ratio.Add(1)
		} else {
			// Infinite ratio: the strategy starved while OPT served opt
			// requests. Excluded from the mean, surfaced in Starved.
			sum.Starved++
		}
		sum.Served.Add(float64(res.Fulfilled))
		sum.Expired.Add(float64(res.Expired))
	}
	return &sum
}
