package ratio

import (
	"errors"
	"strings"
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

// idleStrategy never assigns anything: every seed it runs on is starved.
type idleStrategy struct{}

func (idleStrategy) Name() string             { return "idle" }
func (idleStrategy) Begin(n, d int)           {}
func (idleStrategy) Round(*core.RoundContext) {}

func TestSummarizeCountsStarvedSeeds(t *testing.T) {
	gen := func(seed int64) *core.Trace {
		return workload.Uniform(workload.Config{N: 4, D: 3, Rounds: 10, Rate: 6, Seed: seed})
	}
	sum := Summarize(func() core.Strategy { return idleStrategy{} }, gen, 4)
	if sum.Starved != 4 {
		t.Fatalf("starved %d, want 4", sum.Starved)
	}
	if sum.Ratio.N() != 0 {
		t.Fatalf("starved seeds leaked into the ratio mean: n=%d", sum.Ratio.N())
	}
	if !strings.Contains(sum.String(), "starved 4") {
		t.Fatalf("String() hides starvation: %q", sum.String())
	}
	// A working strategy on the same workloads starves nowhere.
	sum = Summarize(func() core.Strategy { return strategies.NewBalance() }, gen, 4)
	if sum.Starved != 0 {
		t.Fatalf("A_balance starved %d seeds on light load", sum.Starved)
	}
	if sum.Ratio.N() != 4 {
		t.Fatalf("ratio samples %d, want 4", sum.Ratio.N())
	}
}

func TestMeasureCheckedRejectsInvalidTrace(t *testing.T) {
	tr := &core.Trace{N: 2, D: 2, Arrivals: [][]core.Request{
		{{ID: 0, Arrive: 0, D: 2, Alts: []int{9}}},
	}}
	if _, err := MeasureChecked(strategies.NewBalance(), tr); err == nil {
		t.Fatal("MeasureChecked accepted an invalid trace")
	}
}

func TestRunParallelCheckedAttributesPanics(t *testing.T) {
	jobs := []Job{
		{
			Name:     "healthy-before",
			Build:    func() adversary.Construction { return adversary.Fix(2, 10) },
			Strategy: func() core.Strategy { return strategies.NewFix() },
		},
		{
			Name:     "exploding-build",
			Build:    func() adversary.Construction { panic("boom in Build") },
			Strategy: func() core.Strategy { return strategies.NewFix() },
		},
		{
			Name:     "healthy-after",
			Build:    func() adversary.Construction { return adversary.Fix(3, 10) },
			Strategy: func() core.Strategy { return strategies.NewFix() },
		},
	}
	out, err := RunParallelChecked(jobs, 2)
	if err == nil {
		t.Fatal("panicking job produced no error")
	}
	var jp *JobPanic
	if !errors.As(err, &jp) {
		t.Fatalf("error %T is not a *JobPanic", err)
	}
	if jp.Name != "exploding-build" || jp.Index != 1 {
		t.Fatalf("panic attributed to job %d (%s)", jp.Index, jp.Name)
	}
	if !strings.Contains(err.Error(), "exploding-build") {
		t.Fatalf("error %q does not name the job", err)
	}
	if len(jp.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	// Siblings ran to completion despite the failure between them.
	if out[0].ALG == 0 || out[2].ALG == 0 {
		t.Fatalf("sibling jobs did not complete: %+v", out)
	}
	if out[0].Input != "healthy-before" || out[2].Input != "healthy-after" {
		t.Fatalf("sibling labels wrong: %+v", out)
	}
}

func TestRunParallelRepanicsWithJobPanic(t *testing.T) {
	jobs := []Job{{
		Name:     "nil-deref",
		Build:    func() adversary.Construction { return adversary.Fix(2, 10) },
		Strategy: func() core.Strategy { return nil }, // nil strategy: Name() panics
	}}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunParallel swallowed the job panic")
		}
		jp, ok := r.(error)
		if !ok || !strings.Contains(jp.Error(), "nil-deref") {
			t.Fatalf("re-panic value %v does not attribute the job", r)
		}
	}()
	RunParallel(jobs, 1)
}
