package ratio

import (
	"math"
	"strconv"
)

// FormatRatio renders a measured competitive ratio with the given number of
// decimals, spelling starvation out as "inf" (the strategy served nothing
// while OPT served something) instead of a misleading numeric value, and NaN
// (0/0 style degenerate aggregates) as "NaN". It is the one formatting rule
// shared by every CSV- and table-emitting tool, so grid resume runs compare
// byte-identically to uninterrupted ones.
func FormatRatio(r float64, decimals int) string {
	switch {
	case math.IsInf(r, 1):
		return "inf"
	case math.IsInf(r, -1):
		return "-inf"
	case math.IsNaN(r):
		return "NaN"
	}
	return strconv.FormatFloat(r, 'f', decimals, 64)
}
