package ratio

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

func ctxTestJob(seed int64) Job {
	return Job{
		Name: "ctx job",
		Build: func() adversary.Construction {
			return adversary.Construction{Trace: workload.Uniform(workload.Config{
				N: 3, D: 2, Rounds: 10, Rate: 3, Seed: seed,
			})}
		},
		Strategy: func() core.Strategy { return nil },
	}
}

func measureJob(seed int64, mk func() core.Strategy) Job {
	j := ctxTestJob(seed)
	j.Strategy = mk
	return j
}

func TestRunStreamCtxCancelDrainsCompletedWork(t *testing.T) {
	// Cancel after the third emission: everything already emitted stays, the
	// emitted prefix is contiguous in job order, and the error reports the
	// cancellation. The producer must stop — the stream is infinite, so a
	// missed cancellation hangs the test.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var produced atomic.Int64
	var emitted []int
	err := RunStreamCtx(ctx, func(i int) (Job, bool) {
		produced.Add(1)
		return measureJob(int64(i), func() core.Strategy { return strategies.NewFix() }), true
	}, 2, func(i int, m Measurement) {
		emitted = append(emitted, i)
		if len(emitted) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in error, got %v", err)
	}
	if len(emitted) < 3 {
		t.Fatalf("only %d emissions before cancel", len(emitted))
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emission order broken: %v", emitted)
		}
	}
	// The gate bounds in-flight work, so production can't run away past the
	// cancellation point by more than the pool's window.
	if p := produced.Load(); p > int64(len(emitted))+2*2+1 {
		t.Fatalf("producer generated %d jobs for %d emissions after cancel", p, len(emitted))
	}
}

func TestRunParallelCtxCancelKeepsFinishedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: no job should run
	jobs := make([]Job, 8)
	var ran atomic.Int64
	for i := range jobs {
		seed := int64(i)
		jobs[i] = measureJob(seed, func() core.Strategy {
			ran.Add(1)
			return strategies.NewFix()
		})
	}
	out, err := RunParallelCtx(ctx, jobs, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(out) != len(jobs) {
		t.Fatalf("got %d slots, want %d", len(out), len(jobs))
	}
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran despite pre-cancelled context", ran.Load())
	}
}

func TestRunParallelCtxBackgroundMatchesChecked(t *testing.T) {
	jobs := []Job{
		measureJob(1, func() core.Strategy { return strategies.NewFix() }),
		measureJob(2, func() core.Strategy { return strategies.NewFix() }),
	}
	a, errA := RunParallelChecked(jobs, 2)
	b, errB := RunParallelCtx(context.Background(), jobs, 2)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
