package ratio

import (
	"fmt"
	"math"
	"testing"
)

func TestFormatRatio(t *testing.T) {
	cases := []struct {
		r        float64
		decimals int
		want     string
	}{
		{math.Inf(1), 6, "inf"},
		{math.Inf(1), 4, "inf"},
		{math.Inf(-1), 6, "-inf"},
		{math.NaN(), 6, "NaN"},
		{1, 6, "1.000000"},
		{4.0 / 3.0, 6, "1.333333"},
		{1.75, 4, "1.7500"},
		{0, 4, "0.0000"},
		{2 - 1.0/60, 6, "1.983333"},
	}
	for _, c := range cases {
		if got := FormatRatio(c.r, c.decimals); got != c.want {
			t.Errorf("FormatRatio(%v, %d) = %q, want %q", c.r, c.decimals, got, c.want)
		}
	}
}

func TestFormatRatioMatchesPrintf(t *testing.T) {
	// The finite path must be byte-identical to the fmt verbs the CLI tools
	// historically used (%.6f in sweep, %.4f in schedsim), so swapping them
	// for the shared helper changes no output.
	for _, r := range []float64{1, 1.5, 4.0 / 3.0, 1.9833333333, 0.123456789, 173.0 / 97} {
		if got, want := FormatRatio(r, 6), fmt.Sprintf("%.6f", r); got != want {
			t.Errorf("FormatRatio(%v, 6) = %q, want %q", r, got, want)
		}
		if got, want := FormatRatio(r, 4), fmt.Sprintf("%.4f", r); got != want {
			t.Errorf("FormatRatio(%v, 4) = %q, want %q", r, got, want)
		}
	}
}
