package ratio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
)

// RunStreamChecked executes jobs produced on demand by next on a worker pool
// and delivers their measurements to emit strictly in job order — the
// bounded-memory sibling of RunParallelChecked for sweeps too large to hold
// as a slice. next(i) returns the i-th job, or ok=false to end the stream;
// it is called from a single goroutine in index order, so generators may be
// stateful. emit(i, m) is likewise called from a single goroutine in index
// order, which makes any fold over the results deterministic regardless of
// worker scheduling.
//
// At most 2×workers jobs exist between generation and emission (workers <= 0
// means GOMAXPROCS): a ticket gate stops the producer until earlier results
// have been emitted, so memory stays bounded by the pool, not the sweep.
// Panics are attributed exactly as in RunParallelChecked: each failed job
// contributes one *JobPanic (in job order) to the joined error, sibling jobs
// run to completion, and failed jobs are skipped by emit.
func RunStreamChecked(next func(i int) (Job, bool), workers int, emit func(i int, m Measurement)) error {
	return RunStreamCtx(context.Background(), next, workers, emit)
}

// RunStreamCtx is RunStreamChecked with cooperative cancellation: when ctx
// is cancelled the producer stops generating jobs, in-flight jobs drain to
// completion, and every finished measurement is still emitted in job order —
// the property a SIGINT handler needs to flush a checkpoint journal without
// dropping completed work. The returned error then includes ctx's error.
func RunStreamCtx(ctx context.Context, next func(i int) (Job, bool), workers int, emit func(i int, m Measurement)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type task struct {
		i   int
		job Job
	}
	type result struct {
		i   int
		m   Measurement
		err error
	}
	tasks := make(chan task)
	results := make(chan result)
	tickets := make(chan struct{}, 2*workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				m, err := runJob(t.job, t.i)
				results <- result{t.i, m, err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	go func() {
		defer close(tasks)
		for i := 0; ; i++ {
			if ctx.Err() != nil {
				return
			}
			job, ok := next(i)
			if !ok {
				return
			}
			// Block on the ticket gate and cancellation together: a full gate
			// must not delay the reaction to ctx. A ticket acquired here is
			// always followed by the task send (workers are still draining),
			// so the gate stays balanced.
			select {
			case tickets <- struct{}{}:
			case <-ctx.Done():
				return
			}
			tasks <- task{i, job}
		}
	}()

	// Reorder and emit. pending holds results that arrived ahead of the next
	// index to emit; the ticket gate bounds it to 2*workers entries.
	pending := make(map[int]result, 2*workers)
	var errs []error
	nextEmit := 0
	for r := range results {
		pending[r.i] = r
		for {
			q, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			if q.err != nil {
				errs = append(errs, q.err)
			} else {
				emit(nextEmit, q.m)
			}
			nextEmit++
			<-tickets
		}
	}
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// SummarizeParallel is Summarize on a worker pool: the per-seed simulations
// and offline optima run concurrently, while the summary is folded strictly
// in seed order, so the result is bit-identical to Summarize for every worker
// count. A panicking seed surfaces as a *JobPanic naming it (the completed
// seeds are still folded and Seeds records only them).
func SummarizeParallel(mk func() core.Strategy, gen func(seed int64) *core.Trace, seeds, workers int) (*Summary, error) {
	var sum Summary
	sum.Strategy = mk().Name()
	err := RunStreamChecked(func(i int) (Job, bool) {
		if i >= seeds {
			return Job{}, false
		}
		seed := int64(i)
		return Job{
			Name:     fmt.Sprintf("seed %d", seed),
			Build:    func() adversary.Construction { return adversary.Construction{Trace: gen(seed)} },
			Strategy: mk,
		}, true
	}, workers, func(i int, m Measurement) {
		sum.Seeds++
		if m.ALG > 0 {
			sum.Ratio.Add(float64(m.OPT) / float64(m.ALG))
		} else if m.OPT == 0 {
			sum.Ratio.Add(1)
		} else {
			sum.Starved++
		}
		sum.Served.Add(float64(m.ALG))
		sum.Expired.Add(float64(m.Expired))
	})
	return &sum, err
}
