package ratio

import (
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/strategies"
)

func parallelJobs() []Job {
	return []Job{
		{
			Name:     "fix-d2",
			Build:    func() adversary.Construction { return adversary.Fix(2, 20) },
			Strategy: func() core.Strategy { return strategies.NewFix() },
		},
		{
			Name:     "fix-d4",
			Build:    func() adversary.Construction { return adversary.Fix(4, 20) },
			Strategy: func() core.Strategy { return strategies.NewFix() },
		},
		{
			Name:     "eager-d4",
			Build:    func() adversary.Construction { return adversary.Eager(4, 20) },
			Strategy: func() core.Strategy { return strategies.NewEager() },
		},
		{
			Name:     "universal",
			Build:    func() adversary.Construction { return adversary.Universal(6, 10) },
			Strategy: func() core.Strategy { return strategies.NewBalance() },
		},
		{
			Name:     "balance-x2",
			Build:    func() adversary.Construction { return adversary.Balance(2, 8, 20) },
			Strategy: func() core.Strategy { return strategies.NewBalance() },
		},
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	jobs := parallelJobs()
	seq := make([]Measurement, len(jobs))
	for i, j := range jobs {
		seq[i] = MeasureConstruction(j.Build(), j.Strategy())
		seq[i].Input = j.Name
	}
	for _, workers := range []int{1, 2, 8, 0} {
		par := RunParallel(jobs, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: got %d results", workers, len(par))
		}
		for i := range seq {
			if par[i].OPT != seq[i].OPT || par[i].ALG != seq[i].ALG || par[i].Input != seq[i].Input {
				t.Fatalf("workers=%d job %d: %+v vs %+v", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestRunParallelEmpty(t *testing.T) {
	if out := RunParallel(nil, 4); len(out) != 0 {
		t.Fatal("empty job list should return empty results")
	}
}

func TestRunParallelOrderPreserved(t *testing.T) {
	jobs := parallelJobs()
	out := RunParallel(jobs, 3)
	for i, j := range jobs {
		if out[i].Input != j.Name {
			t.Fatalf("result %d carries name %q, want %q", i, out[i].Input, j.Name)
		}
	}
}

func TestRunParallelRace(t *testing.T) {
	// Stress the pool with many small jobs; `go test -race` covers the
	// synchronization.
	var jobs []Job
	for i := 0; i < 32; i++ {
		d := 2 + (i % 3)
		jobs = append(jobs, Job{
			Build:    func() adversary.Construction { return adversary.Fix(d*2, 5) },
			Strategy: func() core.Strategy { return strategies.NewFix() },
		})
	}
	out := RunParallel(jobs, 8)
	for i, m := range out {
		if m.OPT == 0 || m.ALG == 0 {
			t.Fatalf("job %d empty: %+v", i, m)
		}
	}
}
