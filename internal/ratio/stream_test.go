package ratio

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

func TestRunStreamCheckedMatchesSequential(t *testing.T) {
	jobs := parallelJobs()
	seq := make([]Measurement, len(jobs))
	for i, j := range jobs {
		seq[i] = MeasureConstruction(j.Build(), j.Strategy())
		seq[i].Input = j.Name
	}
	for _, workers := range []int{1, 2, 8, 0} {
		var got []Measurement
		err := RunStreamChecked(func(i int) (Job, bool) {
			if i >= len(jobs) {
				return Job{}, false
			}
			return jobs[i], true
		}, workers, func(i int, m Measurement) {
			if i != len(got) {
				t.Fatalf("workers=%d: emit index %d out of order (have %d)", workers, i, len(got))
			}
			got = append(got, m)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(seq) {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i := range seq {
			if got[i].OPT != seq[i].OPT || got[i].ALG != seq[i].ALG || got[i].Input != seq[i].Input {
				t.Fatalf("workers=%d job %d: %+v vs %+v", workers, i, got[i], seq[i])
			}
		}
	}
}

func TestRunStreamCheckedLargeSweepBounded(t *testing.T) {
	// Far more jobs than the pool can hold at once; every result must arrive,
	// in order. `go test -race` covers the synchronization.
	const total = 200
	emitted := 0
	err := RunStreamChecked(func(i int) (Job, bool) {
		if i >= total {
			return Job{}, false
		}
		d := 2 + (i % 3)
		return Job{
			Build:    func() adversary.Construction { return adversary.Fix(d*2, 3) },
			Strategy: func() core.Strategy { return strategies.NewFix() },
		}, true
	}, 4, func(i int, m Measurement) {
		if i != emitted {
			t.Fatalf("emit index %d, want %d", i, emitted)
		}
		if m.ALG == 0 {
			t.Fatalf("job %d empty: %+v", i, m)
		}
		emitted++
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != total {
		t.Fatalf("emitted %d of %d", emitted, total)
	}
}

func TestRunStreamCheckedAttributesPanics(t *testing.T) {
	names := []string{"ok-0", "boom-1", "ok-2", "boom-3", "ok-4"}
	var got []int
	err := RunStreamChecked(func(i int) (Job, bool) {
		if i >= len(names) {
			return Job{}, false
		}
		name := names[i]
		return Job{
			Name: name,
			Build: func() adversary.Construction {
				if strings.HasPrefix(name, "boom") {
					panic("boom in Build")
				}
				return adversary.Fix(2, 5)
			},
			Strategy: func() core.Strategy { return strategies.NewFix() },
		}, true
	}, 3, func(i int, m Measurement) {
		got = append(got, i)
	})
	if err == nil {
		t.Fatal("panicking jobs produced no error")
	}
	var jp *JobPanic
	if !errors.As(err, &jp) {
		t.Fatalf("error %T is not a *JobPanic", err)
	}
	for _, name := range []string{"boom-1", "boom-3"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not name %s", err, name)
		}
	}
	// Failed jobs are skipped by emit; siblings still arrive in order.
	if !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Fatalf("emitted %v, want [0 2 4]", got)
	}
}

func TestSummarizeParallelMatchesSummarize(t *testing.T) {
	gens := map[string]func(seed int64) *core.Trace{
		"uniform": func(seed int64) *core.Trace {
			return workload.Uniform(workload.Config{N: 4, D: 3, Rounds: 10, Rate: 6, Seed: seed})
		},
		"bursty": func(seed int64) *core.Trace {
			return workload.Bursty(workload.Config{N: 3, D: 2, Rounds: 12, Rate: 2, Seed: seed}, 3, 4, 5)
		},
	}
	for name, gen := range gens {
		want := Summarize(func() core.Strategy { return strategies.NewBalance() }, gen, 8)
		for _, workers := range []int{1, 3} {
			got, err := SummarizeParallel(func() core.Strategy { return strategies.NewBalance() }, gen, 8, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			// Bit-identical, not approximately equal: the parallel runner folds
			// in seed order, so even Welford's order-sensitive accumulator
			// matches exactly.
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d:\n got %+v\nwant %+v", name, workers, got, want)
			}
		}
	}
}

func TestSummarizeParallelCountsStarvedSeeds(t *testing.T) {
	gen := func(seed int64) *core.Trace {
		return workload.Uniform(workload.Config{N: 4, D: 3, Rounds: 10, Rate: 6, Seed: seed})
	}
	sum, err := SummarizeParallel(func() core.Strategy { return idleStrategy{} }, gen, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Starved != 4 || sum.Ratio.N() != 0 {
		t.Fatalf("starved %d ratio-n %d, want 4 and 0", sum.Starved, sum.Ratio.N())
	}
}
