package ratio

import (
	"strings"
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/workload"
)

// TestSummaryStringStarved pins the misleading-extrema fix: a summary whose
// every seed starved has no finite ratio samples, and used to print
// "ratio 0.0000±0.0000 (max 0.0000)" — the zero values of an empty
// accumulator, reading like a perfect score. It must print n/a instead.
func TestSummaryStringStarved(t *testing.T) {
	gen := func(seed int64) *core.Trace {
		return workload.Uniform(workload.Config{N: 3, D: 2, Rounds: 10, Rate: 4, Seed: seed})
	}
	sum := Summarize(func() core.Strategy { return idleStrategy{} }, gen, 3)
	if sum.Starved != 3 {
		t.Fatalf("idle strategy starved %d of 3 seeds, want all", sum.Starved)
	}
	if sum.Ratio.N() != 0 {
		t.Fatalf("starved summary has %d finite ratio samples, want 0", sum.Ratio.N())
	}
	s := sum.String()
	if !strings.Contains(s, "ratio n/a") {
		t.Errorf("fully starved summary prints %q, want 'ratio n/a'", s)
	}
	if !strings.Contains(s, "starved 3") {
		t.Errorf("summary %q should still report the starved count", s)
	}

	// A summary with finite samples keeps the numeric format.
	var ok Summary
	ok.Strategy, ok.Seeds = "x", 1
	ok.Ratio.Add(1.25)
	ok.Served.Add(10)
	if s := ok.String(); strings.Contains(s, "n/a") || !strings.Contains(s, "1.2500") {
		t.Errorf("healthy summary prints %q", s)
	}
}
