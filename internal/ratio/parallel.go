package ratio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
)

// Job is one measurement for RunParallel: a construction factory paired with
// a strategy factory. Factories, not instances, because constructions with
// adaptive sources and most strategies are stateful and must not be shared
// across goroutines.
type Job struct {
	// Name labels the measurement in the result.
	Name string
	// Build creates the adversarial input.
	Build func() adversary.Construction
	// Strategy creates the online strategy to measure.
	Strategy func() core.Strategy
}

// JobPanic reports that one job of a parallel sweep panicked. The job's name
// and index attribute the failure; Value is the recovered panic value and
// Stack the goroutine stack captured at recovery. Sibling jobs are
// unaffected: they run to completion before the error is surfaced.
type JobPanic struct {
	Name  string
	Index int
	Value any
	Stack []byte
}

func (e *JobPanic) Error() string {
	return fmt.Sprintf("ratio: job %d (%s) panicked: %v", e.Index, e.name(), e.Value)
}

func (e *JobPanic) name() string {
	if e.Name == "" {
		return "unnamed"
	}
	return e.Name
}

// RunParallel executes the jobs on up to `workers` goroutines (GOMAXPROCS if
// workers <= 0) and returns the measurements in job order. Each job runs a
// full simulation plus a Hopcroft–Karp optimum, so the work units are coarse
// and the speedup is near-linear; the Table 1 harness and the sweep tool use
// it to regenerate the whole evaluation in one pass.
//
// A job that panics does not take the sweep down anonymously: the panic is
// recovered per job, siblings finish, and RunParallel re-panics with a
// *JobPanic naming the offending job. Callers that prefer an error use
// RunParallelChecked.
func RunParallel(jobs []Job, workers int) []Measurement {
	out, err := RunParallelChecked(jobs, workers)
	if err != nil {
		panic(err)
	}
	return out
}

// RunParallelChecked is RunParallel returning job panics as an error instead
// of re-panicking. The measurements of the jobs that completed are returned
// in job order either way (failed jobs leave their zero value); the error
// joins one *JobPanic per failed job, in job order.
func RunParallelChecked(jobs []Job, workers int) ([]Measurement, error) {
	return RunParallelCtx(context.Background(), jobs, workers)
}

// RunParallelCtx is RunParallelChecked with cooperative cancellation: when
// ctx is cancelled, no further jobs are dispatched, but jobs already running
// drain to completion and their measurements are kept — so a SIGINT-driven
// caller loses no finished work. The returned error then includes ctx's
// error alongside any per-job panics; undispatched jobs keep their zero
// Measurement.
func RunParallelCtx(ctx context.Context, jobs []Job, workers int) ([]Measurement, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]Measurement, len(jobs))
	if len(jobs) == 0 {
		return out, ctx.Err()
	}
	errs := make([]error, len(jobs), len(jobs)+1)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = runJob(jobs[i], i)
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return out, errors.Join(errs...)
}

// runJob measures one job, converting a panic anywhere in the construction
// build, the simulation, or the optimum into an attributed *JobPanic.
func runJob(job Job, index int) (m Measurement, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &JobPanic{Name: job.Name, Index: index, Value: r, Stack: debug.Stack()}
		}
	}()
	m = MeasureConstruction(job.Build(), job.Strategy())
	if job.Name != "" {
		m.Input = job.Name
	}
	return m, nil
}
