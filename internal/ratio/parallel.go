package ratio

import (
	"runtime"
	"sync"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
)

// Job is one measurement for RunParallel: a construction factory paired with
// a strategy factory. Factories, not instances, because constructions with
// adaptive sources and most strategies are stateful and must not be shared
// across goroutines.
type Job struct {
	// Name labels the measurement in the result.
	Name string
	// Build creates the adversarial input.
	Build func() adversary.Construction
	// Strategy creates the online strategy to measure.
	Strategy func() core.Strategy
}

// RunParallel executes the jobs on up to `workers` goroutines (GOMAXPROCS if
// workers <= 0) and returns the measurements in job order. Each job runs a
// full simulation plus a Hopcroft–Karp optimum, so the work units are coarse
// and the speedup is near-linear; the Table 1 harness and the sweep tool use
// it to regenerate the whole evaluation in one pass.
func RunParallel(jobs []Job, workers int) []Measurement {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]Measurement, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job := jobs[i]
				m := MeasureConstruction(job.Build(), job.Strategy())
				if job.Name != "" {
					m.Input = job.Name
				}
				out[i] = m
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
