package ratio

import (
	"math"
	"strings"
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

func TestMeasureAgainstOptimum(t *testing.T) {
	tr := workload.Uniform(workload.Config{N: 4, D: 3, Rounds: 20, Rate: 5, Seed: 1})
	m := Measure(strategies.NewBalance(), tr)
	if m.ALG > m.OPT {
		t.Fatalf("ALG %d > OPT %d", m.ALG, m.OPT)
	}
	if m.Ratio() < 1 {
		t.Fatalf("ratio %f < 1", m.Ratio())
	}
	if m.N != 4 || m.D != 3 || m.Strategy != "A_balance" {
		t.Fatalf("metadata wrong: %+v", m)
	}
	if !strings.Contains(m.String(), "A_balance") {
		t.Fatal("String() missing strategy")
	}
}

func TestRatioEdgeCases(t *testing.T) {
	if r := (Measurement{OPT: 0, ALG: 0}).Ratio(); r != 1 {
		t.Fatalf("0/0 ratio %f", r)
	}
	if r := (Measurement{OPT: 5, ALG: 0}).Ratio(); !math.IsInf(r, 1) {
		t.Fatalf("5/0 ratio %f", r)
	}
	if r := (Measurement{OPT: 6, ALG: 4}).Ratio(); r != 1.5 {
		t.Fatalf("6/4 ratio %f", r)
	}
}

func TestMeasureConstructionFixedTrace(t *testing.T) {
	c := adversary.Fix(4, 20)
	m := MeasureConstruction(c, strategies.NewFix())
	if m.Input != "fix" || m.Bound != c.Bound {
		t.Fatalf("construction metadata lost: %+v", m)
	}
	if m.Ratio() <= 1.5 || m.Ratio() > c.Bound {
		t.Fatalf("ratio %f outside (1.5, %f]", m.Ratio(), c.Bound)
	}
}

func TestMeasureConstructionAdaptive(t *testing.T) {
	c := adversary.Universal(3, 8)
	m := MeasureConstruction(c, strategies.NewEager())
	if m.OPT == 0 || m.ALG == 0 {
		t.Fatalf("adaptive measurement empty: %+v", m)
	}
	if m.Ratio() < 45.0/41.0 {
		t.Fatalf("universal ratio %f below bound", m.Ratio())
	}
}

func TestConvergenceMonotone(t *testing.T) {
	ms := Convergence(
		func(p int) adversary.Construction { return adversary.Fix(4, p) },
		func() core.Strategy { return strategies.NewFix() },
		[]int{2, 8, 32, 128},
	)
	if len(ms) != 4 {
		t.Fatalf("got %d measurements", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Ratio() <= ms[i-1].Ratio() {
			t.Fatalf("ratio not increasing: %f then %f", ms[i-1].Ratio(), ms[i].Ratio())
		}
	}
	if last := ms[len(ms)-1].Ratio(); last > 1.75 || last < 1.74 {
		t.Fatalf("128-phase ratio %f not near 1.75", last)
	}
}

func TestSummarizeAggregates(t *testing.T) {
	gen := func(seed int64) *core.Trace {
		return workload.Uniform(workload.Config{N: 4, D: 3, Rounds: 15, Rate: 6, Seed: seed})
	}
	sum := Summarize(func() core.Strategy { return strategies.NewBalance() }, gen, 6)
	if sum.Seeds != 6 || sum.Ratio.N() != 6 {
		t.Fatalf("seed accounting: %+v", sum)
	}
	if sum.Strategy != "A_balance" {
		t.Fatalf("strategy name %q", sum.Strategy)
	}
	if sum.Ratio.Mean() < 1 {
		t.Fatalf("mean ratio %f below 1", sum.Ratio.Mean())
	}
	if sum.Ratio.Max() > 2 {
		t.Fatalf("balance ratio %f above 2 on random load", sum.Ratio.Max())
	}
	if sum.String() == "" {
		t.Fatal("empty string form")
	}
}

func TestSummarizeStableUnderGoodStrategy(t *testing.T) {
	// On light load A_balance should be optimal for every seed: mean 1, std 0.
	gen := func(seed int64) *core.Trace {
		return workload.Uniform(workload.Config{N: 8, D: 4, Rounds: 20, Rate: 3, Seed: seed})
	}
	sum := Summarize(func() core.Strategy { return strategies.NewBalance() }, gen, 5)
	if sum.Ratio.Mean() != 1 || sum.Ratio.Std() != 0 {
		t.Fatalf("light load should be ratio 1 for all seeds: %s", sum)
	}
}
