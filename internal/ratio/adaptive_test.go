package ratio

import (
	"testing"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/strategies"
)

func TestRunAdaptiveStreamMatchesMeasureAdaptive(t *testing.T) {
	// The streamed pipeline must compute the identical measurement to the
	// materialize-then-solve path on the Theorem 2.6 adversary: the strategy
	// and adversary are deterministic, so both runs generate the same trace,
	// and the segmented OPT sums to the monolithic optimum.
	for _, tc := range []struct{ d, cycles int }{{3, 3}, {3, 5}, {6, 2}} {
		for _, mk := range []func() core.Strategy{
			func() core.Strategy { return strategies.NewFix() },
			func() core.Strategy { return strategies.NewEager() },
			func() core.Strategy { return strategies.NewEDF() },
		} {
			want := MeasureAdaptive(mk(), adversary.Universal(tc.d, tc.cycles).Source)
			for _, workers := range []int{1, 3} {
				got, nsegs := RunAdaptiveStream(mk(), adversary.Universal(tc.d, tc.cycles).Source, workers)
				if nsegs < 1 {
					t.Fatalf("d=%d cycles=%d %s: no segments", tc.d, tc.cycles, want.Strategy)
				}
				if got.OPT != want.OPT || got.ALG != want.ALG || got.Expired != want.Expired {
					t.Fatalf("d=%d cycles=%d %s workers=%d: stream OPT/ALG/Expired %d/%d/%d, post-hoc %d/%d/%d",
						tc.d, tc.cycles, want.Strategy, workers,
						got.OPT, got.ALG, got.Expired, want.OPT, want.ALG, want.Expired)
				}
			}
		}
	}
}

// gappedSource is an adaptive source with silent stretches longer than the
// deadline window between bursts, so the streaming pipeline must cut one
// segment per burst.
type gappedSource struct {
	n, d, bursts int
	period       int
}

func newGappedSource(n, d, bursts int) *gappedSource {
	return &gappedSource{n: n, d: d, bursts: bursts, period: 2*d + 3}
}

func (g *gappedSource) N() int { return g.n }
func (g *gappedSource) D() int { return g.d }

func (g *gappedSource) Next(t int, isServed func(id int) bool) [][]int {
	if t%g.period != 0 {
		return nil
	}
	// A small two-choice clump per burst; more requests than slots on the
	// first resource pair so some must expire under any strategy.
	var specs [][]int
	for i := 0; i < g.d+2; i++ {
		specs = append(specs, []int{i % g.n, (i + 1) % g.n})
	}
	return specs
}

func (g *gappedSource) Done(t int) bool { return t >= g.bursts*g.period }

// TestRunAdaptiveStreamIncrementalPathMatchesPool pins the workers==1
// incremental fast path (request-by-request matching, no materialized
// segments) against the segment-solving worker pool: identical measurement
// and identical segment count.
func TestRunAdaptiveStreamIncrementalPathMatchesPool(t *testing.T) {
	for _, mk := range []func() core.Strategy{
		func() core.Strategy { return strategies.NewFix() },
		func() core.Strategy { return strategies.NewEager() },
		func() core.Strategy { return strategies.NewEDF() },
	} {
		inc, isegs := RunAdaptiveStream(mk(), newGappedSource(4, 3, 6), 1)
		pool, psegs := RunAdaptiveStream(mk(), newGappedSource(4, 3, 6), 2)
		if inc != pool || isegs != psegs {
			t.Fatalf("%s: incremental %+v (%d segs), pool %+v (%d segs)",
				inc.Strategy, inc, isegs, pool, psegs)
		}
		adv, asegs := RunAdaptiveStream(mk(), adversary.Universal(3, 4).Source, 1)
		advPool, apsegs := RunAdaptiveStream(mk(), adversary.Universal(3, 4).Source, 2)
		if adv != advPool || asegs != apsegs {
			t.Fatalf("%s adversary: incremental %+v (%d segs), pool %+v (%d segs)",
				adv.Strategy, adv, asegs, advPool, apsegs)
		}
	}
}

func TestRunAdaptiveStreamSegmentsGappedSource(t *testing.T) {
	const bursts = 7
	src := newGappedSource(3, 2, bursts)
	got, nsegs := RunAdaptiveStream(strategies.NewEager(), src, 2)
	if nsegs != bursts {
		t.Fatalf("expected %d segments (one per burst), got %d", bursts, nsegs)
	}
	want := MeasureAdaptive(strategies.NewEager(), newGappedSource(3, 2, bursts))
	if got.OPT != want.OPT || got.ALG != want.ALG || got.Expired != want.Expired {
		t.Fatalf("stream OPT/ALG/Expired %d/%d/%d, post-hoc %d/%d/%d",
			got.OPT, got.ALG, got.Expired, want.OPT, want.ALG, want.Expired)
	}
	if want.OPT == 0 || want.ALG == 0 {
		t.Fatalf("degenerate gapped measurement: %+v", want)
	}
}
