// Package ratio measures empirical competitive ratios: it runs an online
// strategy and the offline optimum on the same input and reports
// perf_OPT / perf_ALG, plus sweep and convergence helpers used by the
// Table 1 harness.
package ratio

import (
	"fmt"
	"math"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/offline"
)

// Measurement is one (strategy, input) competitive-ratio data point.
type Measurement struct {
	Strategy string
	Input    string
	N, D     int
	OPT, ALG int
	// Expired counts the requests the strategy let pass their deadlines
	// (Requests - ALG on complete runs).
	Expired int
	// Bound is the theoretical bound attached to the input (0 if none).
	Bound float64
}

// Ratio returns OPT/ALG (the empirical competitive ratio; +Inf if the
// strategy served nothing while OPT served something, 1 if both are zero).
func (m Measurement) Ratio() float64 {
	if m.ALG == 0 {
		if m.OPT == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(m.OPT) / float64(m.ALG)
}

func (m Measurement) String() string {
	return fmt.Sprintf("%s on %s (n=%d d=%d): OPT=%d ALG=%d ratio=%.4f bound=%.4f",
		m.Strategy, m.Input, m.N, m.D, m.OPT, m.ALG, m.Ratio(), m.Bound)
}

// Measure runs s over tr and compares with the offline optimum. The trace
// must be valid; Measure panics otherwise. Input boundaries (CLI tools fed
// serialized traces) should use MeasureChecked.
func Measure(s core.Strategy, tr *core.Trace) Measurement {
	m, err := MeasureChecked(s, tr)
	if err != nil {
		panic(err)
	}
	return m
}

// MeasureChecked is Measure for untrusted traces: instead of panicking on an
// invalid trace it returns the validation error, which names the first
// offending request.
func MeasureChecked(s core.Strategy, tr *core.Trace) (Measurement, error) {
	res, err := core.RunChecked(s, tr)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Strategy: s.Name(),
		Input:    "trace",
		N:        tr.N,
		D:        tr.D,
		OPT:      offline.Optimum(tr),
		ALG:      res.Fulfilled,
		Expired:  res.Expired,
	}, nil
}

// MeasureAdaptive runs s against an adaptive source, then computes the
// optimum of the generated trace.
func MeasureAdaptive(s core.Strategy, src core.AdaptiveSource) Measurement {
	res, tr := core.RunAdaptive(s, src)
	return Measurement{
		Strategy: s.Name(),
		Input:    "adaptive",
		N:        tr.N,
		D:        tr.D,
		OPT:      offline.Optimum(tr),
		ALG:      res.Fulfilled,
		Expired:  res.Expired,
	}
}

// MeasureConstruction runs s on an adversarial construction (fixed trace or
// adaptive source) and attaches the construction's bound.
func MeasureConstruction(c adversary.Construction, s core.Strategy) Measurement {
	var m Measurement
	if c.Source != nil {
		m = MeasureAdaptive(s, c.Source)
	} else {
		m = Measure(s, c.Trace)
	}
	m.Input = c.Name
	m.Bound = c.Bound
	return m
}

// Convergence measures the ratio of strategy mk() on build(phases) for each
// phase count, showing convergence of the empirical ratio to the bound as the
// additive constant washes out.
func Convergence(build func(phases int) adversary.Construction, mk func() core.Strategy, phaseCounts []int) []Measurement {
	out := make([]Measurement, 0, len(phaseCounts))
	for _, p := range phaseCounts {
		c := build(p)
		out = append(out, MeasureConstruction(c, mk()))
	}
	return out
}
