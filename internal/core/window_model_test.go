package core

import (
	"math/rand"
	"testing"
)

// Model-based testing of the Window: drive it with random valid operation
// sequences and compare every observation against a trivially correct
// map-based reference model.

type refModel struct {
	n, depth int
	t        int
	slots    map[[2]int]int // (res, round) -> request ID
	where    map[int][2]int
}

func newRefModel(n, depth int) *refModel {
	return &refModel{n: n, depth: depth, slots: map[[2]int]int{}, where: map[int][2]int{}}
}

func (m *refModel) assign(id, res, round int) {
	m.slots[[2]int{res, round}] = id
	m.where[id] = [2]int{res, round}
}

func (m *refModel) unassign(id int) {
	if loc, ok := m.where[id]; ok {
		delete(m.slots, loc)
		delete(m.where, id)
	}
}

func (m *refModel) advance() { m.t++ }

func TestWindowAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(4)
		depth := 1 + rng.Intn(5)
		w := NewWindow(n, depth)
		ref := newRefModel(n, depth)

		// Requests with generous windows so assignments are legal anywhere
		// within the sliding window.
		reqs := make([]*Request, 30)
		for i := range reqs {
			alts := rng.Perm(n)
			reqs[i] = &Request{ID: i, Arrive: 0, Alts: alts, D: 1 << 20}
		}

		for step := 0; step < 300; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // assign a random unassigned request to a free slot
				r := reqs[rng.Intn(len(reqs))]
				if w.Assigned(r) {
					continue
				}
				res := r.Alts[rng.Intn(len(r.Alts))]
				round := w.Round() + rng.Intn(depth)
				if !w.Free(res, round) {
					continue
				}
				w.Assign(r, res, round)
				ref.assign(r.ID, res, round)
			case 4, 5: // unassign a random request
				r := reqs[rng.Intn(len(reqs))]
				w.Unassign(r)
				ref.unassign(r.ID)
			case 6: // advance: clear the current row in both first
				for res := 0; res < n; res++ {
					if rr := w.At(res, w.Round()); rr != nil {
						w.Unassign(rr)
						ref.unassign(rr.ID)
					}
				}
				w.advance()
				ref.advance()
			case 7: // snapshot cross-check
				snap := w.Snapshot()
				if len(snap) != len(ref.where) {
					t.Fatalf("trial %d step %d: snapshot %d vs model %d",
						trial, step, len(snap), len(ref.where))
				}
				for _, a := range snap {
					if loc, ok := ref.where[a.Req.ID]; !ok || loc != [2]int{a.Res, a.Round} {
						t.Fatalf("trial %d: snapshot disagrees for request %d", trial, a.Req.ID)
					}
				}
			default: // point observations
				res := rng.Intn(n)
				round := w.Round() + rng.Intn(depth)
				id, occupied := ref.slots[[2]int{res, round}]
				got := w.At(res, round)
				if occupied != (got != nil) {
					t.Fatalf("trial %d step %d: At(%d,%d) = %v, model occupied=%v",
						trial, step, res, round, got, occupied)
				}
				if occupied && got.ID != id {
					t.Fatalf("trial %d: occupant mismatch %d vs %d", trial, got.ID, id)
				}
				if w.Free(res, round) == occupied {
					t.Fatalf("trial %d: Free disagrees with model", trial)
				}
			}
		}
	}
}
