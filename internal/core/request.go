// Package core defines the scheduling model of the paper: synchronized
// rounds, n resources serving one request per round, and requests that name
// two (or, as an extension, c) alternative resources and must be served within
// a window of d rounds from arrival. It provides the round engine that drives
// an online Strategy over a Trace and the validity checks that every schedule
// must pass.
package core

import "fmt"

// Request is one unit-size request. It arrives in round Arrive, names the
// alternative resources Alts (the paper's model has exactly two; EDF supports
// any c >= 1 as the extension discussed with Observation 3.2), and must be
// fulfilled during rounds Arrive .. Arrive+D-1.
type Request struct {
	// ID is the request's position in the trace-wide arrival order: requests
	// are numbered first by arrival round, then by injection order within the
	// round. Strategies break ties by ID, which is what lets the adversary
	// constructions steer them.
	ID int
	// Arrive is the arrival round.
	Arrive int
	// Alts lists the alternative resources in preference order. Strategies
	// explore alternatives in this order; the adversary chooses the order.
	Alts []int
	// D is the deadline window length in rounds (>= 1).
	D int
	// W is the request's weight for the weighted extension (0 means the
	// default weight 1; the paper's model is unweighted). The weighted
	// objective maximizes the total weight served.
	W int
}

// Weight returns the request's effective weight (>= 1).
func (r *Request) Weight() int {
	if r.W <= 0 {
		return 1
	}
	return r.W
}

// Deadline returns the last round in which the request may be fulfilled.
func (r *Request) Deadline() int { return r.Arrive + r.D - 1 }

// HasAlt reports whether resource i is one of the request's alternatives.
func (r *Request) HasAlt(i int) bool {
	for _, a := range r.Alts {
		if a == i {
			return true
		}
	}
	return false
}

// Other returns the alternative different from resource i. It panics unless
// the request has exactly two alternatives and i is one of them; it exists for
// the two-choice protocols (local strategies) that bounce a rejected request
// to "the other" resource.
func (r *Request) Other(i int) int {
	if len(r.Alts) != 2 {
		panic(fmt.Sprintf("core: Other on request %d with %d alternatives", r.ID, len(r.Alts)))
	}
	switch i {
	case r.Alts[0]:
		return r.Alts[1]
	case r.Alts[1]:
		return r.Alts[0]
	}
	panic(fmt.Sprintf("core: resource %d is not an alternative of request %d", i, r.ID))
}

func (r *Request) String() string {
	return fmt.Sprintf("req %d (t=%d, alts=%v, d=%d)", r.ID, r.Arrive, r.Alts, r.D)
}
