package core

// RoundStats aggregates one simulation round for time-series analysis.
type RoundStats struct {
	// T is the round index.
	T int
	// Arrived counts requests injected this round; Served those fulfilled;
	// Expired those whose deadline passed at the start of the round.
	Arrived, Served, Expired int
	// Pending counts live requests after the round (still waiting).
	Pending int
	// Backlog counts pending requests that hold no future slot.
	Backlog int
	// Idle counts resources that served nothing this round.
	Idle int
}

// Series is the per-round trace of a run, used by cmd/schedsim -series and
// the burst-analysis example.
type Series struct {
	Rounds []RoundStats
}

// PeakPending returns the largest pending count over the run.
func (s *Series) PeakPending() int {
	peak := 0
	for _, r := range s.Rounds {
		if r.Pending > peak {
			peak = r.Pending
		}
	}
	return peak
}

// TotalIdle returns the total number of idle resource-rounds.
func (s *Series) TotalIdle() int {
	total := 0
	for _, r := range s.Rounds {
		total += r.Idle
	}
	return total
}

// RunWithSeries behaves exactly like Run but also records per-round
// statistics. Run's own results are unaffected (the collector is observe-
// only); tests assert both entry points produce identical schedules.
func RunWithSeries(s Strategy, tr *Trace) (*Result, *Series) {
	series := &Series{}
	res, err := run(s, tr, series)
	if err != nil {
		panic(err)
	}
	return res, series
}

// Run simulates strategy s over trace tr and returns the result. The trace
// must be valid; Run panics on an invalid trace since that is a programming
// error in a generator, not an input condition. Input boundaries (CLI tools
// replaying serialized traces) should use RunChecked instead.
func Run(s Strategy, tr *Trace) *Result {
	res, err := run(s, tr, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// RunChecked is Run for untrusted traces: instead of panicking on an invalid
// trace it returns the validation error, which names the first offending
// request. The simulation itself is identical to Run.
func RunChecked(s Strategy, tr *Trace) (*Result, error) {
	return run(s, tr, nil)
}
