package core_test

import (
	"fmt"
	"testing"

	"reqsched"
	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/registry"
)

// The service-model refactor's compatibility contract: a trace carrying an
// explicit hold=1,cap=1 model must behave bit-identically to the same trace
// with the model left at its zero value — same engine schedules for every
// strategy, same value from all three offline optima, and no extra
// allocations on the warm path. These tests pin that contract on the Table 1
// adversaries and on random workloads.

// explicitUnit returns a shallow copy of tr stamped with the explicit unit
// model (the trace data is shared; the engine never mutates it).
func explicitUnit(tr *core.Trace) *core.Trace {
	cp := *tr
	cp.Model = core.UnitModel()
	return &cp
}

// sameSchedule fails unless the two results carry the identical fulfillment
// schedule in the identical service order.
func sameSchedule(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a.Requests != b.Requests || a.Fulfilled != b.Fulfilled || a.Expired != b.Expired {
		t.Errorf("%s: totals diverge: %d/%d/%d vs %d/%d/%d",
			label, a.Requests, a.Fulfilled, a.Expired, b.Requests, b.Fulfilled, b.Expired)
		return
	}
	if len(a.Log) != len(b.Log) {
		t.Errorf("%s: log length %d vs %d", label, len(a.Log), len(b.Log))
		return
	}
	for i := range a.Log {
		fa, fb := a.Log[i], b.Log[i]
		if fa.Req.ID != fb.Req.ID || fa.Res != fb.Res || fa.Round != fb.Round {
			t.Errorf("%s: schedule diverges at entry %d: req %d res %d round %d vs req %d res %d round %d",
				label, i, fa.Req.ID, fa.Res, fa.Round, fb.Req.ID, fb.Res, fb.Round)
			return
		}
	}
}

// optimaAgree checks that batch, segmented-parallel and incremental OPT agree
// on tr, and that the explicit-unit copy yields the same value from each.
func optimaAgree(t *testing.T, label string, tr *core.Trace) {
	t.Helper()
	want := offline.Optimum(tr)
	if got := offline.OptimumParallel(tr, 3); got != want {
		t.Errorf("%s: segmented OPT %d vs batch %d", label, got, want)
	}
	if got := offline.OptimumIncremental(tr); got != want {
		t.Errorf("%s: incremental OPT %d vs batch %d", label, got, want)
	}
	cp := explicitUnit(tr)
	if got := offline.Optimum(cp); got != want {
		t.Errorf("%s: explicit unit model changed batch OPT: %d vs %d", label, got, want)
	}
	if got := offline.OptimumParallel(cp, 3); got != want {
		t.Errorf("%s: explicit unit model changed segmented OPT: %d vs %d", label, got, want)
	}
	if got := offline.OptimumIncremental(cp); got != want {
		t.Errorf("%s: explicit unit model changed incremental OPT: %d vs %d", label, got, want)
	}
}

// listedStrategyNames returns the registry's listed strategy names in a
// deterministic order.
func listedStrategyNames() []string {
	var names []string
	for _, c := range registry.All(registry.KindStrategy) {
		if c.Listed {
			names = append(names, c.Name)
		}
	}
	return names
}

// TestExplicitUnitModelBitIdenticalOnAdversaries: every oblivious registered
// construction (the Table 1 adversaries plus the local/EDF/universal ones),
// every listed strategy — stamping the explicit unit model on the trace must
// not move a single fulfillment, and the three offline optima must agree
// before and after.
func TestExplicitUnitModelBitIdenticalOnAdversaries(t *testing.T) {
	strategies := listedStrategyNames()
	for _, adv := range registry.Names(registry.KindAdversary) {
		c, err := registry.BuildAdversary(adv, registry.Params{"phases": registry.IntVal(2)})
		if err != nil {
			t.Errorf("build %s: %v", adv, err)
			continue
		}
		// Adaptive sources regenerate their trace per run; the oblivious
		// constructions cover the bit-identity property. Constructions for
		// non-unit models (hold_squeeze) have no zero-model twin to compare.
		if c.Trace == nil || !c.Trace.Model.IsUnit() {
			continue
		}
		optimaAgree(t, adv, c.Trace)
		for _, name := range strategies {
			label := fmt.Sprintf("%s on adversary %s", name, adv)
			a := reqsched.Run(reqsched.StrategyByName(name), c.Trace)
			b := reqsched.Run(reqsched.StrategyByName(name), explicitUnit(c.Trace))
			sameSchedule(t, label, a, b)
		}
	}
}

// TestExplicitUnitModelBitIdenticalOnRandomWorkloads is the property sweep
// over the random workload families (uniform, bursty, mixed-deadline),
// rotating through every listed strategy.
func TestExplicitUnitModelBitIdenticalOnRandomWorkloads(t *testing.T) {
	strategies := listedStrategyNames()
	for i := 0; i < 90; i++ {
		cfg := reqsched.WorkloadConfig{
			N:      2 + i%5,
			D:      1 + i%4,
			Rounds: 10 + i%21,
			Rate:   0.6 * float64(1+i%7),
			Seed:   int64(7000 + i),
		}
		var tr *reqsched.Trace
		switch i % 3 {
		case 0:
			tr = reqsched.Uniform(cfg)
		case 1:
			tr = reqsched.Bursty(cfg, 2+i%3, 3+i%5, 3*cfg.Rate)
		default:
			tr = reqsched.MixedDeadlines(cfg)
		}
		optimaAgree(t, fmt.Sprintf("workload %d", i), tr)
		name := strategies[i%len(strategies)]
		label := fmt.Sprintf("%s on workload %d (n=%d d=%d)", name, i, cfg.N, cfg.D)
		a := reqsched.Run(reqsched.StrategyByName(name), tr)
		b := reqsched.Run(reqsched.StrategyByName(name), explicitUnit(tr))
		sameSchedule(t, label, a, b)
	}
}

// TestUnitModelRunAddsNoAllocs is the warm-path allocation guard for the
// model abstraction: stamping the explicit unit model on a trace must leave
// the engine's steady-state allocation count exactly where the zero-model
// (legacy) run has it — the occupancy machinery must stay entirely off the
// unit-model path.
func TestUnitModelRunAddsNoAllocs(t *testing.T) {
	tr := reqsched.Uniform(reqsched.WorkloadConfig{N: 8, D: 4, Rounds: 120, Rate: 9, Seed: 5})
	cp := explicitUnit(tr)
	for _, name := range []string{"A_balance", "A_fix", "compose,router=greedy", "first_fit"} {
		s := reqsched.StrategyByName(name)
		// Warm so one-time buffer growth is off the books. Steady-state
		// counts still jitter ±1/run with map rehash timing (randomized
		// iteration order), so allow exactly that — a real model-path leak
		// would cost at least one allocation per round (>100 here), and the
		// occupancy grid at window construction would cost dozens per run.
		for i := 0; i < 5; i++ {
			reqsched.Run(s, tr)
		}
		want := testing.AllocsPerRun(10, func() { reqsched.Run(s, tr) })
		got := testing.AllocsPerRun(10, func() { reqsched.Run(s, cp) })
		if got > want+1 {
			t.Errorf("%s: explicit unit model allocates %.1f/run, zero model %.1f/run", name, got, want)
		}
	}
}

// TestEngineHoldSemantics pins the reusable-resources engine behavior: a
// service started at round r occupies its resource for [r, r+hold), so on a
// single resource with hold=3 and per-round deadlines only every third
// arrival can be served.
func TestEngineHoldSemantics(t *testing.T) {
	b := core.NewBuilder(1, 1)
	b.SetModel(core.ServiceModel{Hold: 3})
	for tt := 0; tt < 6; tt++ {
		b.AddWindow(tt, 1, 0)
	}
	tr := b.Build()
	res, err := core.RunChecked(reqsched.StrategyByName("compose,router=greedy"), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fulfilled != 2 || res.Expired != 4 {
		t.Fatalf("hold=3: fulfilled %d expired %d, want 2/4", res.Fulfilled, res.Expired)
	}
	for i, wantRound := range []int{0, 3} {
		if res.Log[i].Round != wantRound {
			t.Errorf("hold=3: service %d at round %d, want %d", i, res.Log[i].Round, wantRound)
		}
	}
	if got := offline.Optimum(tr); got != 2 {
		t.Errorf("hold=3: OPT = %d, want 2 (occupancy binds the optimum too)", got)
	}
}

// TestEngineCapSemantics: cap=2 serves two concurrent requests per resource;
// the third arrival in a full window expires.
func TestEngineCapSemantics(t *testing.T) {
	b := core.NewBuilder(1, 1)
	b.SetModel(core.ServiceModel{Hold: 2, Cap: 2})
	for i := 0; i < 3; i++ {
		b.AddWindow(0, 1, 0)
	}
	b.AddWindow(2, 1, 0)
	b.AddWindow(2, 1, 0)
	tr := b.Build()
	res, err := core.RunChecked(reqsched.StrategyByName("compose,router=greedy"), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fulfilled != 4 || res.Expired != 1 {
		t.Fatalf("hold=2,cap=2: fulfilled %d expired %d, want 4/1", res.Fulfilled, res.Expired)
	}
	if got := offline.Optimum(tr); got != 4 {
		t.Errorf("hold=2,cap=2: OPT = %d, want 4", got)
	}
}

// TestModelGatingErrors: strategies that plan joint future schedules
// (matching-based) must be rejected under hold>1 rather than silently
// computing an occupancy-blind schedule; scan-based routers pass.
func TestModelGatingErrors(t *testing.T) {
	b := core.NewBuilder(2, 2)
	b.SetModel(core.ServiceModel{Hold: 2})
	b.Add(0, 0, 1)
	tr := b.Build()
	if _, err := core.RunChecked(reqsched.StrategyByName("A_balance"), tr); err == nil {
		t.Error("A_balance must be rejected under hold=2")
	}
	if err := core.CheckModelSupport(reqsched.StrategyByName("A_fix"), tr.Model); err == nil {
		t.Error("CheckModelSupport must reject A_fix under hold=2")
	}
	if _, err := core.RunChecked(reqsched.StrategyByName("compose,router=greedy"), tr); err != nil {
		t.Errorf("greedy router must run under hold=2: %v", err)
	}
	// Any capacity is fine at hold=1: one-round slots stay independent, so
	// the matching-based planners remain correct.
	if err := core.CheckModelSupport(reqsched.StrategyByName("A_balance"), core.ServiceModel{Cap: 3}); err != nil {
		t.Errorf("A_balance must accept hold=1,cap=3: %v", err)
	}
}
