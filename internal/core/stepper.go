package core

import "fmt"

// Stepper drives the round engine one round at a time: expire, admit this
// round's arrivals, let the strategy (re)compute the schedule, serve the
// current row, slide the window. It is the single engine body under Run /
// RunChecked / RunWithSeries (which feed it a materialized trace round by
// round) and the live serving daemon (which feeds it arrivals as they come in
// off the network). Both paths therefore produce bit-identical schedules on
// the same arrival sequence — the property the serve-mode equivalence checks
// pin.
//
// All per-round scratch — the served set, the pending buffer, the round
// context — is allocated once and reused, so a simulation's allocation cost
// is dominated by the strategy, not the engine.
type Stepper struct {
	s       Strategy
	n, d    int
	t       int
	w       *Window
	res     *Result
	pending []*Request
	ctx     RoundContext
	served  map[int]bool

	// KeepLog appends every fulfillment to Result.Log (the batch engine's
	// default). Long-running daemons disable it to keep memory bounded and
	// watch fulfillments through Observe instead.
	KeepLog bool
	// TrackBacklog makes Step count pending requests holding no slot (the
	// per-round series' Backlog column); it costs a window lookup per pending
	// request, so it is off unless a series is being collected.
	TrackBacklog bool
	// Observe, if non-nil, is called once per fulfillment as it is served,
	// before Step returns. The live daemon hooks its latency histogram and
	// rolling-ratio accounting here.
	Observe func(Fulfillment)
}

// NewStepper returns a stepper for strategy s over n resources with default
// deadline window d and schedule lookahead depth (clamped up to d), under the
// unit service model. It calls s.Begin and positions the engine at round 0.
func NewStepper(s Strategy, n, d, depth int) *Stepper {
	return NewStepperModel(s, n, d, depth, UnitModel())
}

// NewStepperModel is NewStepper under an explicit service model. It panics if
// the strategy does not support m (see CheckModelSupport); callers that need
// a graceful error check support before constructing.
func NewStepperModel(s Strategy, n, d, depth int, m ServiceModel) *Stepper {
	if n < 1 || d < 1 {
		panic(fmt.Sprintf("core: invalid stepper params n=%d d=%d", n, d))
	}
	if err := CheckModelSupport(s, m); err != nil {
		panic(err)
	}
	if depth < d {
		depth = d
	}
	w := NewWindowModel(n, depth, m)
	s.Begin(n, d)
	st := &Stepper{
		s: s, n: n, d: d, w: w,
		res: &Result{
			Strategy:    s.Name(),
			N:           n,
			D:           d,
			PerResource: make([]int, n),
		},
		served:  make(map[int]bool, n),
		KeepLog: true,
	}
	st.ctx.N = n
	st.ctx.D = d
	st.ctx.W = w
	return st
}

// Round returns the round the next Step will simulate.
func (st *Stepper) Round() int { return st.t }

// Pending returns the number of live requests (arrived, unfulfilled,
// deadline not yet expired at the last completed round).
func (st *Stepper) Pending() int { return len(st.pending) }

// Depth returns the schedule window's lookahead depth in rounds.
func (st *Stepper) Depth() int { return st.w.Depth() }

// Model returns the service model the engine runs under.
func (st *Stepper) Model() ServiceModel { return st.w.Model() }

// Occupancy returns how many capacity units of resource res are busy at the
// round the next Step will simulate — holds of already-served requests plus
// any assignment planned for that round. The live daemon exposes these as
// per-resource gauges.
func (st *Stepper) Occupancy(res int) int { return st.w.OccupancyAt(res, st.t) }

// Result returns the running totals. The pointer stays live across Steps;
// callers must treat it as read-only and only look between Step calls.
func (st *Stepper) Result() *Result { return st.res }

// Step simulates one round with the given arrivals and advances the engine.
// Arrivals must carry Arrive == Round() and globally increasing IDs in
// injection order (the trace invariant); the slice itself may be reused by
// the caller after Step returns, but the *Request values must stay alive
// until served or expired.
func (st *Stepper) Step(arrivals []*Request) RoundStats {
	t := st.t
	var rs RoundStats
	rs.T = t
	// 1. Expire requests whose deadline has passed. (Assigned requests can
	// never expire: assignments are validated against deadlines and served
	// when their slot becomes current.)
	live := st.pending[:0]
	for _, r := range st.pending {
		if r.Deadline() < t {
			st.res.Expired++
			rs.Expired++
		} else {
			live = append(live, r)
		}
	}
	// 2. Receive new requests.
	st.pending = append(live, arrivals...)
	st.res.Requests += len(arrivals)

	// 3. Let the strategy (re)compute the schedule.
	st.ctx.T = t
	st.ctx.Arrivals = arrivals
	st.ctx.Pending = st.pending
	st.s.Round(&st.ctx)

	rs.Arrived = len(arrivals)

	// 4. Serve the current row. Under the unit model the served slot is
	// released immediately (Unassign); under a general model the storage cell
	// is consumed but the occupancy of the hold span stays busy until those
	// rounds slide past the window.
	clear(st.served)
	if st.w.occ == nil {
		for i := 0; i < st.n; i++ {
			r := st.w.At(i, t)
			if r == nil {
				rs.Idle++
				continue
			}
			st.w.Unassign(r)
			st.res.Fulfilled++
			st.res.WeightFulfilled += r.Weight()
			st.res.LatencySum += t - r.Arrive
			st.res.PerResource[i]++
			f := Fulfillment{Req: r, Res: i, Round: t}
			if st.KeepLog {
				st.res.Log = append(st.res.Log, f)
			}
			if st.Observe != nil {
				st.Observe(f)
			}
			st.served[r.ID] = true
		}
	} else {
		capc := st.w.model.Cap
		row := st.w.rows[t%st.w.depth]
		for i := 0; i < st.n; i++ {
			started := 0
			for c := i * capc; c < (i+1)*capc; c++ {
				r := row[c]
				if r == nil {
					continue
				}
				st.w.consume(r)
				started++
				st.res.Fulfilled++
				st.res.WeightFulfilled += r.Weight()
				st.res.LatencySum += t - r.Arrive
				st.res.PerResource[i]++
				f := Fulfillment{Req: r, Res: i, Round: t}
				if st.KeepLog {
					st.res.Log = append(st.res.Log, f)
				}
				if st.Observe != nil {
					st.Observe(f)
				}
				st.served[r.ID] = true
			}
			if started == 0 {
				rs.Idle++
			}
		}
	}
	if len(st.served) > 0 {
		live := st.pending[:0]
		for _, r := range st.pending {
			if !st.served[r.ID] {
				live = append(live, r)
			}
		}
		st.pending = live
	}
	rs.Served = len(st.served)
	rs.Pending = len(st.pending)
	if st.TrackBacklog {
		for _, r := range st.pending {
			if !st.w.Assigned(r) {
				rs.Backlog++
			}
		}
	}

	// 5. Slide the window.
	st.w.advance()
	st.t++
	return rs
}

// Finish closes the run: remaining pending requests are counted expired and
// the totals are returned. The engine must have been stepped past every
// assignment (the batch driver runs to the trace horizon; the daemon drains
// until Pending() == 0), so a surviving assignment is a programming error.
func (st *Stepper) Finish() *Result {
	st.res.Expired += len(st.pending)
	st.pending = st.pending[:0]
	if st.w.NumAssigned() > 0 {
		panic(fmt.Sprintf("core: assignments %v survived past horizon", st.w.Snapshot()))
	}
	if ca, ok := st.s.(CommAccountant); ok {
		st.res.CommRounds, st.res.Messages = ca.CommTotals()
	}
	return st.res
}
