package core

import "testing"

// TestServiceModelNormValidateString pins the zero-value contract: an unset
// model means the paper's unit model, negatives are rejected rather than
// silently normalized, and String renders the registry's canonical parameter
// order.
func TestServiceModelNormValidateString(t *testing.T) {
	var zero ServiceModel
	if !zero.IsUnit() {
		t.Error("zero ServiceModel must be the unit model")
	}
	if got := zero.Norm(); got != UnitModel() {
		t.Errorf("zero.Norm() = %+v, want %+v", got, UnitModel())
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero model must validate: %v", err)
	}
	if got := (ServiceModel{Hold: 4, Cap: 2}).String(); got != "hold=4,cap=2" {
		t.Errorf("String() = %q, want %q", got, "hold=4,cap=2")
	}
	if got := zero.String(); got != "hold=1,cap=1" {
		t.Errorf("zero String() = %q, want %q", got, "hold=1,cap=1")
	}
	if (ServiceModel{Hold: 2, Cap: 1}).IsUnit() {
		t.Error("hold=2 must not be unit")
	}
	if (ServiceModel{Hold: 1, Cap: 2}).IsUnit() {
		t.Error("cap=2 must not be unit")
	}
	for _, bad := range []ServiceModel{{Hold: -1}, {Cap: -2}, {Hold: -1, Cap: -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) must reject negatives", bad)
		}
	}
	// Norm passes negatives through so Validate can see them — only exact
	// zero means "unset".
	if got := (ServiceModel{Hold: -3}).Norm().Hold; got != -3 {
		t.Errorf("Norm must not launder a negative hold: got %d", got)
	}
}

// TestWindowModelOccupancy drives the occupancy-tracking window directly: a
// service started at round r occupies one capacity unit of its resource for
// the full span [r, r+Hold), Free consults the whole span, and Unassign
// releases every round of it.
func TestWindowModelOccupancy(t *testing.T) {
	m := ServiceModel{Hold: 2, Cap: 2}
	w := NewWindowModel(1, 4, m)
	r1 := &Request{ID: 1, Arrive: 0, Alts: []int{0}, D: 4}
	r2 := &Request{ID: 2, Arrive: 0, Alts: []int{0}, D: 4}
	r3 := &Request{ID: 3, Arrive: 0, Alts: []int{0}, D: 4}

	w.Assign(r1, 0, 0)
	for round, want := range map[int]int{0: 1, 1: 1, 2: 0} {
		if got := w.OccupancyAt(0, round); got != want {
			t.Fatalf("after one assign: OccupancyAt(0,%d) = %d, want %d", round, got, want)
		}
	}
	if !w.Free(0, 0) {
		t.Fatal("cap=2: one assignment must leave round 0 free")
	}

	w.Assign(r2, 0, 0)
	if got := w.OccupancyAt(0, 1); got != 2 {
		t.Fatalf("two holds spanning round 1: occupancy %d, want 2", got)
	}
	// Both capacity units are consumed across [0,2); a service started at
	// round 1 would overlap them, so rounds 0 and 1 are full but round 2 is
	// free.
	if w.Free(0, 0) || w.Free(0, 1) {
		t.Fatal("rounds 0 and 1 must be full at cap=2 with two hold=2 services")
	}
	if !w.Free(0, 2) {
		t.Fatal("round 2 must be free: both holds end before it")
	}
	if got := w.AssignedCount(0, 0); got != 2 {
		t.Fatalf("AssignedCount(0,0) = %d, want 2", got)
	}

	w.Unassign(r2)
	if !w.Free(0, 1) {
		t.Fatal("after unassign, round 1 must have a free capacity unit again")
	}
	w.Assign(r3, 0, 1)
	for round, want := range map[int]int{0: 1, 1: 2, 2: 1, 3: 0} {
		if got := w.OccupancyAt(0, round); got != want {
			t.Fatalf("staggered holds: OccupancyAt(0,%d) = %d, want %d", round, got, want)
		}
	}
}
