package core

import "fmt"

// Window is the sliding schedule the engine maintains: for each resource, the
// assignments to the next `depth` rounds (the current round t through
// t+depth-1). Strategies mutate it during their Round callback; at the end of
// the round the engine fulfills every request assigned to the current row and
// slides the window forward.
//
// All mutations are validated: a request can only be assigned to a free slot
// of one of its alternative resources, within [current round, deadline], and
// only while unassigned. This makes an invalid schedule impossible to express,
// which is the first of the reproduction's global invariants.
//
// Under a non-unit ServiceModel a resource has model.Cap storage cells per
// round and a request served at round t occupies one capacity unit for the
// rounds [t, t+model.Hold). Feasibility is tracked as per-round occupancy
// counts (occ): because every hold interval has the same length, "occupancy
// never exceeds Cap in any round" is exactly equivalent to a consistent
// per-unit realization, so no explicit unit bookkeeping is needed. Under the
// unit model occ stays nil and every operation takes the legacy code path
// untouched — the basis of the bit-identity and zero-alloc guarantees.
type Window struct {
	n     int
	depth int
	model ServiceModel
	t     int          // current round
	rows  [][]*Request // rows[t' % depth][res*Cap + cell]
	where map[int]slotRef

	// occ[t' % occLen][res] counts capacity units of res busy in round t' —
	// both planned assignments and holds of already-served requests. nil for
	// the unit model. occLen = depth + Hold - 1 so a request starting at the
	// last window round can record its full hold span.
	occ    [][]int32
	occLen int
}

type slotRef struct{ res, round, cell int }

// NewWindow returns a window over n resources looking depth rounds ahead,
// positioned at round 0, under the unit service model.
func NewWindow(n, depth int) *Window {
	return NewWindowModel(n, depth, UnitModel())
}

// NewWindowModel returns a window over n resources looking depth rounds
// ahead, positioned at round 0, under service model m.
func NewWindowModel(n, depth int, m ServiceModel) *Window {
	m = m.Norm()
	if err := m.Validate(); err != nil {
		panic(err)
	}
	w := &Window{
		n:     n,
		depth: depth,
		model: m,
		rows:  make([][]*Request, depth),
		where: make(map[int]slotRef),
	}
	for i := range w.rows {
		w.rows[i] = make([]*Request, n*m.Cap)
	}
	if !m.IsUnit() {
		w.occLen = depth + m.Hold - 1
		w.occ = make([][]int32, w.occLen)
		for i := range w.occ {
			w.occ[i] = make([]int32, n)
		}
	}
	return w
}

// N returns the number of resources.
func (w *Window) N() int { return w.n }

// Depth returns the lookahead depth in rounds.
func (w *Window) Depth() int { return w.depth }

// Model returns the service model the window schedules under.
func (w *Window) Model() ServiceModel { return w.model }

// Round returns the current round t. Valid slot rounds are t .. t+Depth()-1.
func (w *Window) Round() int { return w.t }

func (w *Window) row(round int) []*Request {
	if round < w.t || round >= w.t+w.depth {
		panic(fmt.Sprintf("core: slot round %d outside window [%d,%d)", round, w.t, w.t+w.depth))
	}
	return w.rows[round%w.depth]
}

func (w *Window) occAdd(res, round, delta int) {
	for rr := round; rr < round+w.model.Hold; rr++ {
		w.occ[rr%w.occLen][res] += int32(delta)
	}
}

// At returns the request assigned to resource res at the given round, or nil.
// Under capacities > 1 it returns the first of possibly several assignments.
func (w *Window) At(res, round int) *Request {
	row := w.row(round)
	if w.occ == nil {
		return row[res]
	}
	c0 := res * w.model.Cap
	for c := c0; c < c0+w.model.Cap; c++ {
		if row[c] != nil {
			return row[c]
		}
	}
	return nil
}

// Free reports whether request service can start on resource res at the given
// round: under the unit model, that its slot is unassigned; under a general
// model, that a capacity unit of res is available for the full hold span
// [round, round+Hold).
func (w *Window) Free(res, round int) bool {
	if w.occ == nil {
		return w.row(round)[res] == nil
	}
	w.row(round) // bounds-check the start round
	capc := int32(w.model.Cap)
	for rr := round; rr < round+w.model.Hold; rr++ {
		if w.occ[rr%w.occLen][res] >= capc {
			return false
		}
	}
	return true
}

// AssignedCount returns how many requests are assigned to resource res at the
// given round (0 or 1 under the unit model, up to Cap otherwise).
func (w *Window) AssignedCount(res, round int) int {
	row := w.row(round)
	if w.occ == nil {
		if row[res] != nil {
			return 1
		}
		return 0
	}
	c0, count := res*w.model.Cap, 0
	for c := c0; c < c0+w.model.Cap; c++ {
		if row[c] != nil {
			count++
		}
	}
	return count
}

// OccupancyAt returns how many capacity units of resource res are busy at the
// given round — planned assignments plus holds of already-served requests.
func (w *Window) OccupancyAt(res, round int) int {
	if w.occ == nil {
		if w.row(round)[res] != nil {
			return 1
		}
		return 0
	}
	if round < w.t || round >= w.t+w.occLen {
		panic(fmt.Sprintf("core: occupancy round %d outside [%d,%d)", round, w.t, w.t+w.occLen))
	}
	return int(w.occ[round%w.occLen][res])
}

// AssignmentOf returns where request r is currently assigned.
func (w *Window) AssignmentOf(r *Request) (res, round int, ok bool) {
	ref, ok := w.where[r.ID]
	return ref.res, ref.round, ok
}

// Assigned reports whether request r currently holds a slot.
func (w *Window) Assigned(r *Request) bool {
	_, ok := w.where[r.ID]
	return ok
}

// Assign gives a slot of (res, round) to request r. It panics if the resource
// has no capacity free over the hold span, the round is outside the window,
// past the request's deadline, before its arrival, res is not one of its
// alternatives, or if r is already assigned (call Unassign first to move a
// request).
func (w *Window) Assign(r *Request, res, round int) {
	row := w.row(round)
	if res < 0 || res >= w.n {
		panic(fmt.Sprintf("core: resource %d outside [0,%d)", res, w.n))
	}
	cell := res
	if w.occ == nil {
		if row[res] != nil {
			panic(fmt.Sprintf("core: slot (%d,%d) already holds %v", res, round, row[res]))
		}
	} else {
		capc := int32(w.model.Cap)
		for rr := round; rr < round+w.model.Hold; rr++ {
			if w.occ[rr%w.occLen][res] >= capc {
				panic(fmt.Sprintf("core: resource %d at capacity in round %d for start at round %d", res, rr, round))
			}
		}
		// A storage cell must exist: assignments starting this round are a
		// subset of this round's occupancy, which is below Cap.
		cell = -1
		c0 := res * w.model.Cap
		for c := c0; c < c0+w.model.Cap; c++ {
			if row[c] == nil {
				cell = c
				break
			}
		}
		if cell < 0 {
			panic(fmt.Sprintf("core: no free cell on resource %d at round %d", res, round))
		}
	}
	if round > r.Deadline() {
		panic(fmt.Sprintf("core: %v assigned past deadline at round %d", r, round))
	}
	if round < r.Arrive {
		panic(fmt.Sprintf("core: %v assigned before arrival at round %d", r, round))
	}
	if !r.HasAlt(res) {
		panic(fmt.Sprintf("core: %v assigned to non-alternative %d", r, res))
	}
	if ref, ok := w.where[r.ID]; ok {
		panic(fmt.Sprintf("core: %v already assigned at (%d,%d)", r, ref.res, ref.round))
	}
	row[cell] = r
	w.where[r.ID] = slotRef{res, round, cell}
	if w.occ != nil {
		w.occAdd(res, round, 1)
	}
}

// Unassign releases the slot held by r, if any, freeing its occupancy.
func (w *Window) Unassign(r *Request) {
	ref, ok := w.where[r.ID]
	if !ok {
		return
	}
	w.rows[ref.round%w.depth][ref.cell] = nil
	delete(w.where, r.ID)
	if w.occ != nil {
		w.occAdd(ref.res, ref.round, -1)
	}
}

// consume removes r's assignment because the engine is serving it now: the
// storage cell is released but — unlike Unassign — the occupancy of the hold
// span [round, round+Hold) stays busy until those rounds slide past.
func (w *Window) consume(r *Request) {
	ref, ok := w.where[r.ID]
	if !ok {
		return
	}
	w.rows[ref.round%w.depth][ref.cell] = nil
	delete(w.where, r.ID)
}

// Snapshot returns all current assignments. The order is deterministic:
// ascending (round, resource).
func (w *Window) Snapshot() []Assignment {
	return w.AppendAssignments(make([]Assignment, 0, len(w.where)))
}

// AppendAssignments appends all current assignments to dst and returns the
// extended slice, in the same deterministic ascending (round, resource) order
// as Snapshot. Callers that snapshot every round pass a reused buffer
// (dst[:0]) to avoid the per-round allocation.
func (w *Window) AppendAssignments(dst []Assignment) []Assignment {
	capc := w.model.Cap
	for round := w.t; round < w.t+w.depth; round++ {
		row := w.rows[round%w.depth]
		for cell, r := range row {
			if r != nil {
				dst = append(dst, Assignment{Req: r, Res: cell / capc, Round: round})
			}
		}
	}
	return dst
}

// NumAssigned returns the number of requests currently holding a slot.
func (w *Window) NumAssigned() int { return len(w.where) }

// Reset clears every assignment in the window, keeping the allocated storage.
// Strategies that recompute their matching from scratch each round (A_eager,
// A_balance) snapshot, reset and re-apply. Occupancy held by already-served
// requests survives a Reset — only planned assignments are withdrawn.
func (w *Window) Reset() {
	if w.occ != nil {
		for _, ref := range w.where {
			w.occAdd(ref.res, ref.round, -1)
		}
	}
	for _, row := range w.rows {
		for i := range row {
			row[i] = nil
		}
	}
	clear(w.where)
}

// FreeSlotsFor returns the free slots request r could take right now, in
// preference order: alternatives in listed order, then ascending round. This
// is the deterministic "first listed alternative, earliest slot" tie-break
// the adversary constructions rely on.
func (w *Window) FreeSlotsFor(r *Request) []Assignment {
	var out []Assignment
	last := r.Deadline()
	if max := w.t + w.depth - 1; last > max {
		last = max
	}
	for _, res := range r.Alts {
		for round := w.t; round <= last; round++ {
			if w.Free(res, round) {
				out = append(out, Assignment{Req: r, Res: res, Round: round})
			}
		}
	}
	return out
}

// advance slides the window one round forward. The engine calls this after
// consuming the current row; the row must already be empty.
func (w *Window) advance() {
	row := w.rows[w.t%w.depth]
	for i, r := range row {
		if r != nil {
			panic(fmt.Sprintf("core: advancing over unconsumed slot (%d,%d)=%v", i/w.model.Cap, w.t, r))
		}
	}
	if w.occ != nil {
		// Round t is leaving the window; its occupancy index will be reused
		// for round t+occLen, which must start empty.
		clear(w.occ[w.t%w.occLen])
	}
	w.t++
}

// Assignment records that a request holds (or held) the slot of resource Res
// in round Round.
type Assignment struct {
	Req   *Request
	Res   int
	Round int
}
