package core

import "fmt"

// Window is the sliding schedule the engine maintains: for each resource, the
// assignments to the next `depth` rounds (the current round t through
// t+depth-1). Strategies mutate it during their Round callback; at the end of
// the round the engine fulfills every request assigned to the current row and
// slides the window forward.
//
// All mutations are validated: a request can only be assigned to a free slot
// of one of its alternative resources, within [current round, deadline], and
// only while unassigned. This makes an invalid schedule impossible to express,
// which is the first of the reproduction's global invariants.
type Window struct {
	n     int
	depth int
	t     int          // current round
	rows  [][]*Request // rows[t' % depth][i]
	where map[int]slotRef
}

type slotRef struct{ res, round int }

// NewWindow returns a window over n resources looking depth rounds ahead,
// positioned at round 0.
func NewWindow(n, depth int) *Window {
	w := &Window{
		n:     n,
		depth: depth,
		rows:  make([][]*Request, depth),
		where: make(map[int]slotRef),
	}
	for i := range w.rows {
		w.rows[i] = make([]*Request, n)
	}
	return w
}

// N returns the number of resources.
func (w *Window) N() int { return w.n }

// Depth returns the lookahead depth in rounds.
func (w *Window) Depth() int { return w.depth }

// Round returns the current round t. Valid slot rounds are t .. t+Depth()-1.
func (w *Window) Round() int { return w.t }

func (w *Window) row(round int) []*Request {
	if round < w.t || round >= w.t+w.depth {
		panic(fmt.Sprintf("core: slot round %d outside window [%d,%d)", round, w.t, w.t+w.depth))
	}
	return w.rows[round%w.depth]
}

// At returns the request assigned to resource res at the given round, or nil.
func (w *Window) At(res, round int) *Request { return w.row(round)[res] }

// Free reports whether the slot (res, round) is unassigned.
func (w *Window) Free(res, round int) bool { return w.row(round)[res] == nil }

// AssignmentOf returns where request r is currently assigned.
func (w *Window) AssignmentOf(r *Request) (res, round int, ok bool) {
	ref, ok := w.where[r.ID]
	return ref.res, ref.round, ok
}

// Assigned reports whether request r currently holds a slot.
func (w *Window) Assigned(r *Request) bool {
	_, ok := w.where[r.ID]
	return ok
}

// Assign gives the slot (res, round) to request r. It panics if the slot is
// occupied, outside the window, past the request's deadline, before its
// arrival, not one of its alternatives, or if r is already assigned (call
// Unassign first to move a request).
func (w *Window) Assign(r *Request, res, round int) {
	row := w.row(round)
	if res < 0 || res >= w.n {
		panic(fmt.Sprintf("core: resource %d outside [0,%d)", res, w.n))
	}
	if row[res] != nil {
		panic(fmt.Sprintf("core: slot (%d,%d) already holds %v", res, round, row[res]))
	}
	if round > r.Deadline() {
		panic(fmt.Sprintf("core: %v assigned past deadline at round %d", r, round))
	}
	if round < r.Arrive {
		panic(fmt.Sprintf("core: %v assigned before arrival at round %d", r, round))
	}
	if !r.HasAlt(res) {
		panic(fmt.Sprintf("core: %v assigned to non-alternative %d", r, res))
	}
	if ref, ok := w.where[r.ID]; ok {
		panic(fmt.Sprintf("core: %v already assigned at (%d,%d)", r, ref.res, ref.round))
	}
	row[res] = r
	w.where[r.ID] = slotRef{res, round}
}

// Unassign releases the slot held by r, if any.
func (w *Window) Unassign(r *Request) {
	ref, ok := w.where[r.ID]
	if !ok {
		return
	}
	w.rows[ref.round%w.depth][ref.res] = nil
	delete(w.where, r.ID)
}

// Snapshot returns all current assignments. The order is deterministic:
// ascending (round, resource).
func (w *Window) Snapshot() []Assignment {
	return w.AppendAssignments(make([]Assignment, 0, len(w.where)))
}

// AppendAssignments appends all current assignments to dst and returns the
// extended slice, in the same deterministic ascending (round, resource) order
// as Snapshot. Callers that snapshot every round pass a reused buffer
// (dst[:0]) to avoid the per-round allocation.
func (w *Window) AppendAssignments(dst []Assignment) []Assignment {
	for round := w.t; round < w.t+w.depth; round++ {
		row := w.rows[round%w.depth]
		for res, r := range row {
			if r != nil {
				dst = append(dst, Assignment{Req: r, Res: res, Round: round})
			}
		}
	}
	return dst
}

// NumAssigned returns the number of requests currently holding a slot.
func (w *Window) NumAssigned() int { return len(w.where) }

// Reset clears every assignment in the window, keeping the allocated storage.
// Strategies that recompute their matching from scratch each round (A_eager,
// A_balance) snapshot, reset and re-apply.
func (w *Window) Reset() {
	for _, row := range w.rows {
		for i := range row {
			row[i] = nil
		}
	}
	clear(w.where)
}

// FreeSlotsFor returns the free slots request r could take right now, in
// preference order: alternatives in listed order, then ascending round. This
// is the deterministic "first listed alternative, earliest slot" tie-break
// the adversary constructions rely on.
func (w *Window) FreeSlotsFor(r *Request) []Assignment {
	var out []Assignment
	last := r.Deadline()
	if max := w.t + w.depth - 1; last > max {
		last = max
	}
	for _, res := range r.Alts {
		for round := w.t; round <= last; round++ {
			if w.Free(res, round) {
				out = append(out, Assignment{Req: r, Res: res, Round: round})
			}
		}
	}
	return out
}

// advance slides the window one round forward. The engine calls this after
// consuming the current row; the row must already be empty.
func (w *Window) advance() {
	row := w.rows[w.t%w.depth]
	for i, r := range row {
		if r != nil {
			panic(fmt.Sprintf("core: advancing over unconsumed slot (%d,%d)=%v", i, w.t, r))
		}
	}
	w.t++
}

// Assignment records that a request holds (or held) the slot of resource Res
// in round Round.
type Assignment struct {
	Req   *Request
	Res   int
	Round int
}
