package core

import "fmt"

// ServiceModel describes how a resource serves requests — the assumption the
// SPAA'99 paper leaves implicit (a resource serves one request per round and
// is instantly free again) lifted into an explicit, pluggable value.
//
//   - Cap is the per-resource capacity: how many requests a resource can hold
//     in service concurrently.
//   - Hold is the service time: a request served at round t occupies one
//     capacity unit of its resource for the Hold consecutive rounds
//     [t, t+Hold) — the reusable-resources family of Delong et al.
//     (arXiv 2110.07084) and Baek–Wang (arXiv 2304.03377).
//
// The legacy paper model is Cap=1, Hold=1. The zero value normalizes to it
// (see Norm), so traces built before the model existed keep their meaning.
// Deadlines keep their paper semantics under every model: a request must
// *start* service within its window; the hold may extend past the deadline.
type ServiceModel struct {
	Cap  int
	Hold int
}

// UnitModel returns the paper's implicit service model: unit capacity,
// instant release.
func UnitModel() ServiceModel { return ServiceModel{Cap: 1, Hold: 1} }

// Norm maps unset (zero or negative-free zero-value) fields to 1, so the
// zero ServiceModel means the legacy unit model.
func (m ServiceModel) Norm() ServiceModel {
	if m.Cap == 0 {
		m.Cap = 1
	}
	if m.Hold == 0 {
		m.Hold = 1
	}
	return m
}

// IsUnit reports whether m (normalized) is the legacy cap=1, hold=1 model.
func (m ServiceModel) IsUnit() bool {
	m = m.Norm()
	return m.Cap == 1 && m.Hold == 1
}

// Validate rejects non-positive capacities or hold times (after Norm's
// zero-means-unset mapping).
func (m ServiceModel) Validate() error {
	n := m.Norm()
	if n.Cap < 1 {
		return fmt.Errorf("core: service model capacity %d < 1", m.Cap)
	}
	if n.Hold < 1 {
		return fmt.Errorf("core: service model hold %d < 1", m.Hold)
	}
	return nil
}

// String renders the model in the registry's canonical parameter order.
func (m ServiceModel) String() string {
	m = m.Norm()
	return fmt.Sprintf("hold=%d,cap=%d", m.Hold, m.Cap)
}

// ModelSupporter is implemented by strategies that support non-unit service
// models. SupportsModel reports whether the strategy's routing logic is
// correct under m: scan-based strategies (first-fit, greedy, EDF) consult
// Window.Free and work under any model; the matching-based paper strategies
// plan joint schedules over future slots and support any capacity only at
// hold=1 (slots of one round are independent), rejecting longer holds.
type ModelSupporter interface {
	SupportsModel(m ServiceModel) error
}

// CheckModelSupport reports whether strategy s can run under service model m.
// Every strategy supports the unit model; a non-unit model requires s to
// implement ModelSupporter and accept m — the conservative default, so a
// strategy written against unit-capacity instant release can never silently
// compute a wrong schedule under occupancy.
func CheckModelSupport(s Strategy, m ServiceModel) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.IsUnit() {
		return nil
	}
	ms, ok := s.(ModelSupporter)
	if !ok {
		return fmt.Errorf("core: strategy %q supports only the unit service model, not %s", s.Name(), m)
	}
	if err := ms.SupportsModel(m.Norm()); err != nil {
		return fmt.Errorf("core: strategy %q: %w", s.Name(), err)
	}
	return nil
}
