package core

import (
	"fmt"
	"sort"
)

// Strategy is an online scheduling strategy. The engine calls Begin once,
// then Round for every round until the trace is exhausted and all windows
// closed. A strategy fulfills requests by assigning them to slots of the
// Window; whatever sits in the current row when Round returns is served.
type Strategy interface {
	// Name identifies the strategy in results and tables.
	Name() string
	// Begin resets the strategy for a run over n resources with default
	// window d.
	Begin(n, d int)
	// Round is called once per round with the round context. The strategy
	// may assign, move (unassign+assign), or leave requests unscheduled.
	Round(ctx *RoundContext)
}

// RoundContext is everything a strategy may look at in round T. Global
// strategies use all of it; local strategies are written against the
// message-passing substrate and only touch the window through protocol
// actions.
type RoundContext struct {
	// T is the current round.
	T int
	// N is the number of resources; D the default window length.
	N, D int
	// Arrivals are the requests injected this round, in ID order. The slice
	// is engine scratch reused between rounds: strategies may retain the
	// *Request pointers but must not retain the slice itself past Round.
	Arrivals []*Request
	// Pending are all live requests (arrived, unfulfilled, deadline not yet
	// passed), including Arrivals, in ID order. Some may hold future slots.
	// Like Arrivals, the slice is only valid during the Round call.
	Pending []*Request
	// W is the schedule window, positioned at round T.
	W *Window

	// unassigned is the reusable buffer behind Unassigned. The engine keeps
	// the context (and thus the buffer) alive across rounds, so strategies
	// that call Unassigned every round allocate nothing in steady state.
	unassigned []*Request
}

// Unassigned returns the pending requests that currently hold no slot, in ID
// order. Like Arrivals and Pending, the returned slice is engine scratch: it
// is valid until the next Unassigned call and must not be retained past
// Round.
func (ctx *RoundContext) Unassigned() []*Request {
	out := ctx.unassigned[:0]
	for _, r := range ctx.Pending {
		if !ctx.W.Assigned(r) {
			out = append(out, r)
		}
	}
	ctx.unassigned = out
	return out
}

// Fulfillment records that request Req was served by resource Res in round
// Round. The engine's log of fulfillments is the online algorithm's matching
// in the paper's bipartite graph G.
type Fulfillment struct {
	Req   *Request
	Res   int
	Round int
}

// Result aggregates one simulation run.
type Result struct {
	Strategy  string
	N, D      int
	Requests  int
	Fulfilled int
	Expired   int
	// LatencySum is the sum over fulfilled requests of (service round -
	// arrival round); divide by Fulfilled for the mean service delay.
	LatencySum int
	// WeightFulfilled sums the weights of fulfilled requests (equals
	// Fulfilled on unweighted traces).
	WeightFulfilled int
	// PerResource[i] counts requests served by resource i.
	PerResource []int
	// Log is the full fulfillment schedule in service order.
	Log []Fulfillment
	// CommRounds and Messages are filled by local strategies (zero for
	// global ones): total communication rounds used and messages sent.
	CommRounds int
	Messages   int
}

// MeanLatency returns the average service delay in rounds, or 0 if nothing
// was fulfilled.
func (res *Result) MeanLatency() float64 {
	if res.Fulfilled == 0 {
		return 0
	}
	return float64(res.LatencySum) / float64(res.Fulfilled)
}

// CommAccountant is implemented by strategies (the local ones) that consume
// communication rounds and messages; the engine copies the totals into the
// Result.
type CommAccountant interface {
	CommTotals() (rounds, messages int)
}

// run is the engine body shared by Run, RunChecked and RunWithSeries; series
// may be nil. It returns an error (rather than panicking) when the trace is
// invalid, so CLI tools fed hand-edited inputs can report it gracefully. The
// round loop itself lives in Stepper — the same code the live serving daemon
// drives with network arrivals — so the batch and live paths cannot drift.
func run(s Strategy, tr *Trace, series *Series) (*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := CheckModelSupport(s, tr.Model); err != nil {
		return nil, err
	}
	st := NewStepperModel(s, tr.N, tr.D, tr.MaxD(), tr.Model)
	st.TrackBacklog = series != nil
	st.res.Log = make([]Fulfillment, 0, tr.NumRequests())

	horizon := tr.Horizon()
	var arrivals []*Request // reused across rounds; see RoundContext.Arrivals
	for t := 0; t < horizon; t++ {
		arrivals = arrivals[:0]
		if t < len(tr.Arrivals) {
			row := tr.Arrivals[t]
			for i := range row {
				arrivals = append(arrivals, &row[i])
			}
		}
		rs := st.Step(arrivals)
		if series != nil {
			series.Rounds = append(series.Rounds, rs)
		}
	}
	return st.Finish(), nil
}

// ValidateLog checks that a fulfillment log is a feasible schedule for the
// trace: every request served at most once, within its window, at one of its
// alternatives, and no resource over-committed — under the unit model no slot
// serves two requests; under a general model no resource ever has more than
// Cap service starts inside any Hold-round sliding window. This is the
// independent end-to-end check applied to every strategy in tests.
func ValidateLog(tr *Trace, log []Fulfillment) error {
	m := tr.Model.Norm()
	servedReq := make(map[int]bool)
	var servedSlot map[[2]int]bool
	var starts map[int][]int
	if m.IsUnit() {
		servedSlot = make(map[[2]int]bool)
	} else {
		starts = make(map[int][]int)
	}
	for _, f := range log {
		r := f.Req
		if servedReq[r.ID] {
			return fmt.Errorf("core: request %d served twice", r.ID)
		}
		servedReq[r.ID] = true
		if f.Round < r.Arrive || f.Round > r.Deadline() {
			return fmt.Errorf("core: %v served at round %d outside window", r, f.Round)
		}
		if !r.HasAlt(f.Res) {
			return fmt.Errorf("core: %v served by non-alternative %d", r, f.Res)
		}
		if m.IsUnit() {
			slot := [2]int{f.Res, f.Round}
			if servedSlot[slot] {
				return fmt.Errorf("core: slot (%d,%d) used twice", f.Res, f.Round)
			}
			servedSlot[slot] = true
		} else {
			starts[f.Res] = append(starts[f.Res], f.Round)
		}
	}
	for res, rounds := range starts {
		sort.Ints(rounds)
		// Two-pointer sliding window: every Hold-round span may contain at
		// most Cap service starts (starts occupy [t, t+Hold), so any two
		// starts within Hold rounds of each other overlap).
		lo := 0
		for hi := range rounds {
			for rounds[lo] <= rounds[hi]-m.Hold {
				lo++
			}
			if hi-lo+1 > m.Cap {
				return fmt.Errorf("core: resource %d starts %d services in rounds (%d,%d], capacity %d",
					res, hi-lo+1, rounds[hi]-m.Hold, rounds[hi], m.Cap)
			}
		}
	}
	return nil
}
