package core

import (
	"strings"
	"testing"
)

func TestBuilderAssignsSequentialIDs(t *testing.T) {
	b := NewBuilder(4, 3)
	b.Add(0, 0, 1)
	b.Add(0, 2, 3)
	b.Add(1, 1, 2)
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumRequests() != 3 {
		t.Fatalf("got %d requests", tr.NumRequests())
	}
	reqs := tr.Requests()
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
	}
	if reqs[2].Arrive != 1 {
		t.Fatalf("third request arrives at %d", reqs[2].Arrive)
	}
}

func TestBuilderOutOfOrderRoundsRenumbered(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(5, 0, 1)
	b.Add(1, 1, 0)
	b.Add(5, 1, 0)
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	reqs := tr.Requests()
	if reqs[0].Arrive != 1 || reqs[1].Arrive != 5 || reqs[2].Arrive != 5 {
		t.Fatalf("arrival order broken: %v %v %v", reqs[0], reqs[1], reqs[2])
	}
	// Within round 5, Add order preserved: first-added has alts (0,1).
	if reqs[1].Alts[0] != 0 {
		t.Fatal("injection order within round not preserved")
	}
}

func TestBuilderBlock(t *testing.T) {
	b := NewBuilder(6, 4)
	b.Block(0, 2, 3)
	tr := b.Build()
	if tr.NumRequests() != 8 { // block(2, 4) = 2*4 requests
		t.Fatalf("block(2,4) has %d requests", tr.NumRequests())
	}
	// block(3, d) over resources 0,1,2.
	b2 := NewBuilder(6, 2)
	b2.Block(0, 0, 1, 2)
	tr2 := b2.Build()
	if tr2.NumRequests() != 6 {
		t.Fatalf("block(3,2) has %d requests", tr2.NumRequests())
	}
	// Group i is directed to res[i], res[i+1 mod a].
	r := tr2.Requests()[4] // third group, first request
	if r.Alts[0] != 2 || r.Alts[1] != 0 {
		t.Fatalf("wraparound group alts %v", r.Alts)
	}
}

func TestTraceValidateCatchesBadAlts(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	tr := b.Build()
	tr.Arrivals[0][0].Alts = []int{0, 0}
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "repeats") {
		t.Fatalf("want repeat error, got %v", err)
	}
	tr.Arrivals[0][0].Alts = []int{0, 5}
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("want range error, got %v", err)
	}
}

func TestTraceHorizonCoversDeadlines(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(4, 0, 1) // deadline 6
	tr := b.Build()
	if h := tr.Horizon(); h != 7 {
		t.Fatalf("horizon %d want 7", h)
	}
	if tr.MaxD() != 3 {
		t.Fatalf("MaxD %d", tr.MaxD())
	}
}

func TestRequestOther(t *testing.T) {
	r := &Request{ID: 0, Alts: []int{3, 7}, D: 1}
	if r.Other(3) != 7 || r.Other(7) != 3 {
		t.Fatal("Other broken")
	}
}

func TestWindowAssignUnassign(t *testing.T) {
	w := NewWindow(2, 3)
	r := &Request{ID: 0, Arrive: 0, Alts: []int{0, 1}, D: 3}
	w.Assign(r, 0, 1)
	if w.Free(0, 1) {
		t.Fatal("slot should be taken")
	}
	if res, round, ok := w.AssignmentOf(r); !ok || res != 0 || round != 1 {
		t.Fatalf("AssignmentOf: %d %d %v", res, round, ok)
	}
	w.Unassign(r)
	if !w.Free(0, 1) || w.Assigned(r) {
		t.Fatal("unassign failed")
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}

func TestWindowRejectsInvalidAssignments(t *testing.T) {
	w := NewWindow(2, 2)
	r := &Request{ID: 0, Arrive: 0, Alts: []int{0, 1}, D: 2}
	mustPanic(t, "past deadline", func() {
		w2 := NewWindow(2, 5)
		short := &Request{ID: 1, Arrive: 0, Alts: []int{0}, D: 1}
		w2.Assign(short, 0, 1)
	})
	mustPanic(t, "outside window", func() { w.Assign(r, 0, 2) })
	mustPanic(t, "non-alternative", func() {
		o := &Request{ID: 2, Arrive: 0, Alts: []int{1}, D: 2}
		w.Assign(o, 0, 0)
	})
	w.Assign(r, 0, 0)
	mustPanic(t, "occupied slot", func() {
		o := &Request{ID: 3, Arrive: 0, Alts: []int{0, 1}, D: 2}
		w.Assign(o, 0, 0)
	})
	mustPanic(t, "double assign", func() { w.Assign(r, 1, 1) })
}

func TestWindowFreeSlotsForPreferenceOrder(t *testing.T) {
	w := NewWindow(3, 3)
	r := &Request{ID: 0, Arrive: 0, Alts: []int{2, 0}, D: 3}
	blocker := &Request{ID: 1, Arrive: 0, Alts: []int{2}, D: 3}
	w.Assign(blocker, 2, 0)
	slots := w.FreeSlotsFor(r)
	// First alternative (2) rounds 1,2 then second alternative (0) rounds 0,1,2.
	want := []Assignment{{r, 2, 1}, {r, 2, 2}, {r, 0, 0}, {r, 0, 1}, {r, 0, 2}}
	if len(slots) != len(want) {
		t.Fatalf("got %d slots want %d", len(slots), len(want))
	}
	for i := range want {
		if slots[i].Res != want[i].Res || slots[i].Round != want[i].Round {
			t.Fatalf("slot %d: got (%d,%d) want (%d,%d)",
				i, slots[i].Res, slots[i].Round, want[i].Res, want[i].Round)
		}
	}
}

func TestWindowFreeSlotsForClipsToDeadline(t *testing.T) {
	w := NewWindow(1, 5)
	r := &Request{ID: 0, Arrive: 0, Alts: []int{0}, D: 2}
	slots := w.FreeSlotsFor(r)
	if len(slots) != 2 {
		t.Fatalf("got %d slots want 2 (deadline clip)", len(slots))
	}
}

func TestWindowSnapshotAndReset(t *testing.T) {
	w := NewWindow(2, 2)
	a := &Request{ID: 0, Arrive: 0, Alts: []int{0, 1}, D: 2}
	bq := &Request{ID: 1, Arrive: 0, Alts: []int{1, 0}, D: 2}
	w.Assign(a, 0, 1)
	w.Assign(bq, 1, 0)
	snap := w.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot %d", len(snap))
	}
	// Deterministic order: ascending (round, resource).
	if snap[0].Req.ID != 1 || snap[1].Req.ID != 0 {
		t.Fatalf("snapshot order: %v", snap)
	}
	w.Reset()
	if len(w.Snapshot()) != 0 || w.Assigned(a) {
		t.Fatal("reset incomplete")
	}
}

// greedyFirstFit is a trivial strategy used to exercise the engine: it
// assigns each new arrival to its first free slot and never reschedules.
type greedyFirstFit struct{}

func (greedyFirstFit) Name() string   { return "greedy-first-fit" }
func (greedyFirstFit) Begin(n, d int) {}
func (greedyFirstFit) Round(ctx *RoundContext) {
	for _, r := range ctx.Arrivals {
		if slots := ctx.W.FreeSlotsFor(r); len(slots) > 0 {
			ctx.W.Assign(r, slots[0].Res, slots[0].Round)
		}
	}
}

func TestEngineServesAndExpires(t *testing.T) {
	b := NewBuilder(2, 2)
	// Round 0: 5 requests all wanting resources 0 and 1. Capacity over two
	// rounds is 4, so exactly one expires.
	for i := 0; i < 5; i++ {
		b.Add(0, 0, 1)
	}
	tr := b.Build()
	res := Run(greedyFirstFit{}, tr)
	if res.Fulfilled != 4 || res.Expired != 1 {
		t.Fatalf("fulfilled=%d expired=%d", res.Fulfilled, res.Expired)
	}
	if err := ValidateLog(tr, res.Log); err != nil {
		t.Fatal(err)
	}
	if res.PerResource[0]+res.PerResource[1] != 4 {
		t.Fatalf("per-resource %v", res.PerResource)
	}
}

func TestEngineLatencyAccounting(t *testing.T) {
	b := NewBuilder(1, 3)
	b.Add(0, 0) // served round 0: latency 0
	b.Add(0, 0) // served round 1: latency 1
	b.Add(0, 0) // served round 2: latency 2
	tr := b.Build()
	res := Run(greedyFirstFit{}, tr)
	if res.Fulfilled != 3 || res.LatencySum != 3 {
		t.Fatalf("fulfilled=%d latencySum=%d", res.Fulfilled, res.LatencySum)
	}
	if res.MeanLatency() != 1.0 {
		t.Fatalf("mean latency %f", res.MeanLatency())
	}
}

func TestEngineEmptyTrace(t *testing.T) {
	tr := NewBuilder(3, 2).Build()
	res := Run(greedyFirstFit{}, tr)
	if res.Fulfilled != 0 || res.Expired != 0 || res.Requests != 0 {
		t.Fatalf("empty trace result %+v", res)
	}
}

func TestEngineMixedDeadlines(t *testing.T) {
	b := NewBuilder(1, 4)
	b.AddWindow(0, 1, 0) // must be served at round 0
	b.AddWindow(0, 4, 0) // flexible
	tr := b.Build()
	res := Run(greedyFirstFit{}, tr)
	// greedyFirstFit serves ID 0 at round 0 (its only slot), ID 1 at round 1.
	if res.Fulfilled != 2 {
		t.Fatalf("fulfilled=%d", res.Fulfilled)
	}
	if err := ValidateLog(tr, res.Log); err != nil {
		t.Fatal(err)
	}
}

func TestValidateLogCatchesViolations(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	tr := b.Build()
	r := tr.Requests()[0]

	if err := ValidateLog(tr, []Fulfillment{{r, 0, 0}, {r, 1, 1}}); err == nil {
		t.Fatal("double service undetected")
	}
	if err := ValidateLog(tr, []Fulfillment{{r, 0, 5}}); err == nil {
		t.Fatal("late service undetected")
	}
	b2 := NewBuilder(2, 2)
	b2.Add(0, 0, 1)
	b2.Add(0, 0, 1)
	tr2 := b2.Build()
	r0, r1 := tr2.Requests()[0], tr2.Requests()[1]
	if err := ValidateLog(tr2, []Fulfillment{{r0, 0, 0}, {r1, 0, 0}}); err == nil {
		t.Fatal("slot collision undetected")
	}
	if err := ValidateLog(tr2, []Fulfillment{{r0, 0, 0}, {r1, 1, 0}}); err != nil {
		t.Fatalf("valid log rejected: %v", err)
	}
}

func TestRoundContextUnassigned(t *testing.T) {
	// Strategy that checks Unassigned midway: assign only the first arrival.
	var observed int
	s := strategyFunc{
		name: "probe",
		round: func(ctx *RoundContext) {
			if len(ctx.Arrivals) > 0 {
				r := ctx.Arrivals[0]
				slots := ctx.W.FreeSlotsFor(r)
				ctx.W.Assign(r, slots[0].Res, slots[0].Round)
			}
			observed = len(ctx.Unassigned())
		},
	}
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 1)
	b.Add(0, 0, 1)
	Run(s, b.Build())
	_ = observed
}

type strategyFunc struct {
	name  string
	round func(*RoundContext)
}

func (s strategyFunc) Name() string            { return s.name }
func (s strategyFunc) Begin(n, d int)          {}
func (s strategyFunc) Round(ctx *RoundContext) { s.round(ctx) }

func TestRunWithSeriesMatchesRun(t *testing.T) {
	b := NewBuilder(3, 2)
	for t0 := 0; t0 < 10; t0++ {
		for i := 0; i <= t0%3; i++ {
			b.Add(t0, i%3, (i+1)%3)
		}
	}
	tr := b.Build()
	direct := Run(greedyFirstFit{}, tr)
	instrumented, series := RunWithSeries(greedyFirstFit{}, tr)
	if direct.Fulfilled != instrumented.Fulfilled || direct.Expired != instrumented.Expired {
		t.Fatalf("instrumentation changed the run: %d/%d vs %d/%d",
			direct.Fulfilled, direct.Expired, instrumented.Fulfilled, instrumented.Expired)
	}
	if len(series.Rounds) != tr.Horizon() {
		t.Fatalf("series has %d rounds, horizon %d", len(series.Rounds), tr.Horizon())
	}
	var arrived, servedTotal, expired, idle int
	for _, r := range series.Rounds {
		arrived += r.Arrived
		servedTotal += r.Served
		expired += r.Expired
		idle += r.Idle
		if r.Backlog > r.Pending {
			t.Fatalf("round %d: backlog %d exceeds pending %d", r.T, r.Backlog, r.Pending)
		}
	}
	if arrived != tr.NumRequests() {
		t.Fatalf("series arrived %d != %d", arrived, tr.NumRequests())
	}
	if servedTotal != direct.Fulfilled {
		t.Fatalf("series served %d != %d", servedTotal, direct.Fulfilled)
	}
	if expired != direct.Expired {
		t.Fatalf("series expired %d != %d", expired, direct.Expired)
	}
	if idle != series.TotalIdle() {
		t.Fatal("TotalIdle inconsistent")
	}
	if servedTotal+idle != tr.N*tr.Horizon() {
		t.Fatalf("served %d + idle %d != capacity %d", servedTotal, idle, tr.N*tr.Horizon())
	}
	if series.PeakPending() < 0 {
		t.Fatal("peak pending negative")
	}
	// Last round must drain everything.
	last := series.Rounds[len(series.Rounds)-1]
	if last.Pending != 0 {
		t.Fatalf("pending %d after horizon", last.Pending)
	}
}

func TestRunCheckedRejectsInvalidTrace(t *testing.T) {
	// A trace naming a resource outside [0, N) — the shape a hand-edited
	// trace file takes after deserialization — must come back as an error
	// naming the offending request, not a panic.
	tr := &Trace{N: 2, D: 2, Arrivals: [][]Request{
		{{ID: 0, Arrive: 0, D: 2, Alts: []int{5}}},
	}}
	res, err := RunChecked(greedyFirstFit{}, tr)
	if err == nil {
		t.Fatal("RunChecked accepted an invalid trace")
	}
	if res != nil {
		t.Fatalf("RunChecked returned a result alongside the error: %+v", res)
	}
	if !strings.Contains(err.Error(), "resource 5") {
		t.Fatalf("error %q does not name the offending resource", err)
	}
}

func TestRunCheckedMatchesRun(t *testing.T) {
	tr := twoReqTrace()
	direct := Run(greedyFirstFit{}, tr)
	checked, err := RunChecked(greedyFirstFit{}, tr)
	if err != nil {
		t.Fatalf("RunChecked on a valid trace: %v", err)
	}
	if checked.Fulfilled != direct.Fulfilled || checked.Expired != direct.Expired {
		t.Fatalf("checked run diverged: %+v vs %+v", checked, direct)
	}
}
