package core

import (
	"testing"
)

// replaySource replays a fixed trace through the adaptive interface; running
// a strategy against it must reproduce core.Run exactly. This pins the two
// engines to identical semantics (expiry order, pending order, service).
type replaySource struct {
	tr *Trace
}

func (r *replaySource) N() int { return r.tr.N }
func (r *replaySource) D() int { return r.tr.D }
func (r *replaySource) Done(t int) bool {
	return t >= len(r.tr.Arrivals)
}
func (r *replaySource) Next(t int, isServed func(int) bool) [][]int {
	if t >= len(r.tr.Arrivals) {
		return nil
	}
	var specs [][]int
	for i := range r.tr.Arrivals[t] {
		specs = append(specs, r.tr.Arrivals[t][i].Alts)
	}
	return specs
}

// uniformTrace builds a deterministic trace with uniform windows (the
// adaptive interface injects with the default window only).
func uniformTrace() *Trace {
	b := NewBuilder(4, 3)
	pattern := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}}
	for t := 0; t < 20; t++ {
		for i := 0; i <= t%4; i++ {
			p := pattern[(t+i)%len(pattern)]
			b.Add(t, p[0], p[1])
		}
	}
	return b.Build()
}

func TestRunAdaptiveReplayMatchesRun(t *testing.T) {
	tr := uniformTrace()
	direct := Run(greedyFirstFit{}, tr)
	adaptive, genTr := RunAdaptive(greedyFirstFit{}, &replaySource{tr: tr})

	if direct.Fulfilled != adaptive.Fulfilled || direct.Expired != adaptive.Expired {
		t.Fatalf("served %d/%d vs %d/%d", direct.Fulfilled, direct.Expired,
			adaptive.Fulfilled, adaptive.Expired)
	}
	if len(direct.Log) != len(adaptive.Log) {
		t.Fatalf("log lengths differ: %d vs %d", len(direct.Log), len(adaptive.Log))
	}
	for i := range direct.Log {
		a, b := direct.Log[i], adaptive.Log[i]
		if a.Req.ID != b.Req.ID || a.Res != b.Res || a.Round != b.Round {
			t.Fatalf("log entry %d differs: %+v vs %+v", i, a, b)
		}
	}
	// The regenerated trace must be equivalent to the original.
	if err := genTr.Validate(); err != nil {
		t.Fatal(err)
	}
	if genTr.NumRequests() != tr.NumRequests() {
		t.Fatalf("regenerated trace has %d requests, want %d", genTr.NumRequests(), tr.NumRequests())
	}
}

func TestRunAdaptiveObservesService(t *testing.T) {
	// A source that injects one request per round to resource 0 and stops
	// as soon as it observes its first request served: the isServed
	// callback must reflect completed rounds.
	src := &probeSource{}
	res, tr := RunAdaptive(greedyFirstFit{}, src)
	if res.Fulfilled == 0 {
		t.Fatal("nothing served")
	}
	if src.sawServed < 1 {
		t.Fatal("source never observed a served request")
	}
	if err := ValidateLog(tr, res.Log); err != nil {
		t.Fatal(err)
	}
}

type probeSource struct {
	injected  int
	sawServed int
}

func (p *probeSource) N() int { return 2 }
func (p *probeSource) D() int { return 2 }
func (p *probeSource) Done(t int) bool {
	return p.sawServed > 0 && t > 3
}
func (p *probeSource) Next(t int, isServed func(int) bool) [][]int {
	for id := 0; id < p.injected; id++ {
		if isServed(id) {
			p.sawServed++
			break
		}
	}
	p.injected++
	return [][]int{{0, 1}}
}

func TestRunAdaptiveEmptySource(t *testing.T) {
	src := &emptySource{}
	res, tr := RunAdaptive(greedyFirstFit{}, src)
	if res.Fulfilled != 0 || res.Requests != 0 || tr.NumRequests() != 0 {
		t.Fatalf("empty source produced work: %+v", res)
	}
}

type emptySource struct{}

func (emptySource) N() int                           { return 1 }
func (emptySource) D() int                           { return 1 }
func (emptySource) Done(t int) bool                  { return true }
func (emptySource) Next(int, func(int) bool) [][]int { return nil }
