package core

import (
	"strings"
	"testing"
)

// Failure injection at the strategy boundary: a buggy or malicious strategy
// must be unable to express an invalid schedule — every illegal mutation
// panics with a descriptive message. These tests drive the engine with
// deliberately broken strategies.

// badStrategy runs a single misbehaving action at a chosen round.
type badStrategy struct {
	at     int
	action func(*RoundContext)
}

func (badStrategy) Name() string   { return "bad" }
func (badStrategy) Begin(n, d int) {}
func (s badStrategy) Round(ctx *RoundContext) {
	if ctx.T == s.at {
		s.action(ctx)
	}
}

func expectEnginePanic(t *testing.T, substr string, s Strategy, tr *Trace) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok {
			if err, isErr := r.(error); isErr {
				msg = err.Error()
			} else {
				t.Fatalf("panic of unexpected type: %v", r)
			}
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not mention %q", msg, substr)
		}
	}()
	Run(s, tr)
}

func twoReqTrace() *Trace {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 0)
	return b.Build()
}

func TestEngineRejectsAssignToOccupiedSlot(t *testing.T) {
	expectEnginePanic(t, "already holds", badStrategy{at: 0, action: func(ctx *RoundContext) {
		ctx.W.Assign(ctx.Arrivals[0], 0, 0)
		ctx.W.Assign(ctx.Arrivals[1], 0, 0)
	}}, twoReqTrace())
}

func TestEngineRejectsDoubleAssign(t *testing.T) {
	expectEnginePanic(t, "already assigned", badStrategy{at: 0, action: func(ctx *RoundContext) {
		ctx.W.Assign(ctx.Arrivals[0], 0, 0)
		ctx.W.Assign(ctx.Arrivals[0], 1, 1)
	}}, twoReqTrace())
}

func TestEngineRejectsNonAlternative(t *testing.T) {
	b := NewBuilder(3, 2)
	b.Add(0, 0, 1)
	tr := b.Build()
	expectEnginePanic(t, "non-alternative", badStrategy{at: 0, action: func(ctx *RoundContext) {
		ctx.W.Assign(ctx.Arrivals[0], 2, 0)
	}}, tr)
}

func TestEngineRejectsPastDeadline(t *testing.T) {
	b := NewBuilder(2, 4)
	b.AddWindow(0, 1, 0, 1) // deadline round 0
	tr := b.Build()
	expectEnginePanic(t, "past deadline", badStrategy{at: 0, action: func(ctx *RoundContext) {
		ctx.W.Assign(ctx.Arrivals[0], 0, 1)
	}}, tr)
}

func TestEngineRejectsOutsideWindow(t *testing.T) {
	expectEnginePanic(t, "outside window", badStrategy{at: 0, action: func(ctx *RoundContext) {
		ctx.W.Assign(ctx.Arrivals[0], 0, 5)
	}}, twoReqTrace())
}

func TestEngineRejectsInvalidTrace(t *testing.T) {
	tr := twoReqTrace()
	tr.Arrivals[0][0].Alts = []int{0, 0}
	expectEnginePanic(t, "repeats", greedyFirstFit{}, tr)
}

func TestEngineToleratesDoNothingStrategy(t *testing.T) {
	// A strategy that never assigns anything is legal: everything expires.
	res := Run(badStrategy{at: -1}, twoReqTrace())
	if res.Fulfilled != 0 || res.Expired != 2 {
		t.Fatalf("do-nothing: %d/%d", res.Fulfilled, res.Expired)
	}
}

func TestEngineToleratesUnassignEverything(t *testing.T) {
	// A strategy that assigns then immediately unassigns leaves clean state.
	s := badStrategy{at: 0, action: func(ctx *RoundContext) {
		r := ctx.Arrivals[0]
		ctx.W.Assign(r, 0, 0)
		ctx.W.Unassign(r)
	}}
	res := Run(s, twoReqTrace())
	if res.Fulfilled != 0 || res.Expired != 2 {
		t.Fatalf("assign+unassign: %d/%d", res.Fulfilled, res.Expired)
	}
}
