package core

import (
	"fmt"
	"sort"
)

// Trace is a complete request sequence: the adversary's (or a workload
// generator's) input to the scheduling problem.
type Trace struct {
	// N is the number of resources.
	N int
	// D is the default deadline window length for requests added without an
	// explicit one.
	D int
	// Arrivals[t] lists the requests injected at round t, in injection order.
	Arrivals [][]Request
	// Model is the service model the trace is meant to run under. The zero
	// value is the paper's unit model (cap=1, hold=1) — see ServiceModel.Norm
	// — so traces built before the model existed keep their meaning.
	Model ServiceModel
}

// NumRequests returns the total number of requests in the trace.
func (tr *Trace) NumRequests() int {
	n := 0
	for _, rs := range tr.Arrivals {
		n += len(rs)
	}
	return n
}

// LastArrival returns the last round with any arrivals, or -1 for an empty
// trace.
func (tr *Trace) LastArrival() int {
	for t := len(tr.Arrivals) - 1; t >= 0; t-- {
		if len(tr.Arrivals[t]) > 0 {
			return t
		}
	}
	return -1
}

// MaxD returns the largest deadline window of any request (at least tr.D).
func (tr *Trace) MaxD() int {
	d := tr.D
	for _, rs := range tr.Arrivals {
		for i := range rs {
			if rs[i].D > d {
				d = rs[i].D
			}
		}
	}
	return d
}

// Horizon returns the number of rounds a simulation must run so every request
// either is fulfilled or expires: one past the latest deadline.
func (tr *Trace) Horizon() int {
	h := 0
	for _, rs := range tr.Arrivals {
		for i := range rs {
			if dl := rs[i].Deadline() + 1; dl > h {
				h = dl
			}
		}
	}
	return h
}

// MaxAlts returns the largest number of alternatives of any request (2 in the
// paper's model).
func (tr *Trace) MaxAlts() int {
	m := 0
	for _, rs := range tr.Arrivals {
		for i := range rs {
			if len(rs[i].Alts) > m {
				m = len(rs[i].Alts)
			}
		}
	}
	return m
}

// Validate checks the structural invariants of the trace: IDs are the global
// injection order, arrival rounds match positions, alternatives are distinct
// in-range resources, and windows are positive. Returns the first violation.
func (tr *Trace) Validate() error {
	if tr.N < 1 {
		return fmt.Errorf("trace: N=%d < 1", tr.N)
	}
	if tr.D < 1 {
		return fmt.Errorf("trace: D=%d < 1", tr.D)
	}
	if err := tr.Model.Validate(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	next := 0
	// seen[a] == gen marks resource a as already named by the current request;
	// bumping gen per request resets the table without reallocating, so the
	// duplicate check costs one allocation per Validate, not one per request.
	seen := make([]int, tr.N)
	gen := 0
	for t, rs := range tr.Arrivals {
		for i := range rs {
			r := &rs[i]
			if r.ID != next {
				return fmt.Errorf("trace: request at round %d pos %d has ID %d, want %d", t, i, r.ID, next)
			}
			next++
			if r.Arrive != t {
				return fmt.Errorf("trace: %v stored at round %d", r, t)
			}
			if r.D < 1 {
				return fmt.Errorf("trace: %v has non-positive window", r)
			}
			if len(r.Alts) < 1 {
				return fmt.Errorf("trace: %v has no alternatives", r)
			}
			gen++
			for _, a := range r.Alts {
				if a < 0 || a >= tr.N {
					return fmt.Errorf("trace: %v names resource %d outside [0,%d)", r, a, tr.N)
				}
				if seen[a] == gen {
					return fmt.Errorf("trace: %v repeats alternative %d", r, a)
				}
				seen[a] = gen
			}
		}
	}
	return nil
}

// Requests returns pointers to all requests in ID order. The pointers refer
// into the trace's own storage; callers must not mutate them while a
// simulation is running.
func (tr *Trace) Requests() []*Request {
	out := make([]*Request, 0, tr.NumRequests())
	for t := range tr.Arrivals {
		for i := range tr.Arrivals[t] {
			out = append(out, &tr.Arrivals[t][i])
		}
	}
	return out
}

// Builder incrementally constructs a valid Trace, assigning request IDs in
// injection order. Arrivals may be added out of round order; Build sorts the
// rounds but the per-round injection order (and thus the ID order within a
// round) is the order of Add calls.
type Builder struct {
	n, d    int
	model   ServiceModel
	nextID  int
	pending []Request
}

// NewBuilder returns a Builder for n resources and default window d.
func NewBuilder(n, d int) *Builder {
	if n < 1 || d < 1 {
		panic(fmt.Sprintf("core: invalid builder params n=%d d=%d", n, d))
	}
	return &Builder{n: n, d: d}
}

// N returns the number of resources the builder was created with.
func (b *Builder) N() int { return b.n }

// D returns the default deadline window.
func (b *Builder) D() int { return b.d }

// SetModel sets the service model the built traces will carry. The zero value
// (never calling SetModel) keeps the unit model.
func (b *Builder) SetModel(m ServiceModel) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	b.model = m
}

// Add injects one request at round t with the default window and the given
// alternatives (in preference order). It returns the assigned ID.
func (b *Builder) Add(t int, alts ...int) int {
	return b.AddWindow(t, b.d, alts...)
}

// AddWindow injects one request at round t with an explicit window d.
func (b *Builder) AddWindow(t, d int, alts ...int) int {
	return b.add(t, d, 0, alts)
}

// AddWeighted injects one request at round t with the default window and an
// explicit weight (the weighted extension; w <= 0 means the default 1).
func (b *Builder) AddWeighted(t, w int, alts ...int) int {
	return b.add(t, b.d, w, alts)
}

func (b *Builder) add(t, d, w int, alts []int) int {
	if t < 0 {
		panic(fmt.Sprintf("core: arrival round %d < 0", t))
	}
	id := b.nextID
	b.nextID++
	b.pending = append(b.pending, Request{
		ID:     id,
		Arrive: t,
		Alts:   append([]int(nil), alts...),
		D:      d,
		W:      w,
	})
	return id
}

// SetWeight sets the weight of a previously added request, addressed by the
// provisional ID returned from Add/AddWindow/AddWeighted. The weight moves
// with the request through Build's renumbering.
func (b *Builder) SetWeight(id, w int) {
	if id < 0 || id >= len(b.pending) {
		panic(fmt.Sprintf("core: SetWeight on unknown id %d", id))
	}
	b.pending[id].W = w
}

// AddGroup injects count identical requests at round t (the paper's request
// groups R_i and blocks), returning their IDs.
func (b *Builder) AddGroup(t, count int, alts ...int) []int {
	ids := make([]int, count)
	for i := range ids {
		ids[i] = b.Add(t, alts...)
	}
	return ids
}

// Block injects the paper's block(a, d) structure at round t over the
// resources res[0..a-1]: for each i, d requests directed to res[i] and
// res[(i+1) mod a]. A block(2, d) on {x, y} is the commonly used special case
// of 2d requests each naming both resources; the paper also uses block(1, d)
// (d requests pinned to a single pair). All block requests can be fulfilled
// exactly by saturating all d rounds of all a resources.
func (b *Builder) Block(t int, res ...int) {
	a := len(res)
	if a == 1 {
		panic("core: Block needs at least 2 resources; use AddGroup for block(1,d)")
	}
	for i := 0; i < a; i++ {
		b.AddGroup(t, b.d, res[i], res[(i+1)%a])
	}
}

// Build finalizes the trace. The builder can keep being used afterwards;
// subsequent Build calls include all requests added so far.
func (b *Builder) Build() *Trace {
	reqs := append([]Request(nil), b.pending...)
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].Arrive != reqs[j].Arrive {
			return reqs[i].Arrive < reqs[j].Arrive
		}
		return reqs[i].ID < reqs[j].ID
	})
	maxT := -1
	if len(reqs) > 0 {
		maxT = reqs[len(reqs)-1].Arrive
	}
	tr := &Trace{
		N:        b.n,
		D:        b.d,
		Arrivals: make([][]Request, maxT+1),
		Model:    b.model,
	}
	// Renumber IDs into global injection order (arrival round, then original
	// Add order) so the Trace invariant holds even when rounds were added out
	// of order.
	for i := range reqs {
		reqs[i].ID = i
		t := reqs[i].Arrive
		tr.Arrivals[t] = append(tr.Arrivals[t], reqs[i])
	}
	return tr
}
