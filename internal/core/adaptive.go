package core

import "fmt"

// AdaptiveSource generates arrivals round by round while observing which
// requests the online algorithm has fulfilled so far. The paper's Theorem 2.6
// adversary is adaptive: in its second phase it blocks whichever colored
// request group the algorithm neglected most. Non-adaptive constructions use
// plain Traces.
type AdaptiveSource interface {
	// N returns the number of resources; D the default deadline window.
	N() int
	D() int
	// Next returns the alternative lists of the requests to inject at round
	// t (empty for none). isServed reports whether the request with the
	// given trace-wide ID has been fulfilled; IDs are assigned sequentially
	// in injection order, so the source can track the IDs of its own
	// requests by counting. Next is called for every round until it has
	// returned Done.
	Next(t int, isServed func(id int) bool) [][]int
	// Done reports that no further requests will be injected at round t or
	// later; the engine then runs the window dry and stops.
	Done(t int) bool
}

// RunAdaptive simulates strategy s against an adaptive adversary and returns
// the result together with the trace the adversary ended up generating (for
// computing the offline optimum afterwards).
func RunAdaptive(s Strategy, src AdaptiveSource) (*Result, *Trace) {
	n, d := src.N(), src.D()
	if n < 1 || d < 1 {
		panic(fmt.Sprintf("core: adaptive source with n=%d d=%d", n, d))
	}
	w := NewWindow(n, d)
	s.Begin(n, d)

	tr := &Trace{N: n, D: d}
	res := &Result{
		Strategy:    s.Name(),
		N:           n,
		D:           d,
		PerResource: make([]int, n),
	}
	served := make(map[int]bool)
	isServed := func(id int) bool { return served[id] }

	var (
		pending  []*Request
		arrivals []*Request // reused across rounds; see RoundContext.Arrivals
		ctx      RoundContext
	)
	servedNow := make(map[int]bool, n)
	nextID := 0
	injectionOver := false
	drainUntil := 0

	for t := 0; ; t++ {
		// Expire.
		live := pending[:0]
		for _, r := range pending {
			if r.Deadline() < t {
				res.Expired++
			} else {
				live = append(live, r)
			}
		}
		pending = live

		// Inject.
		arrivals = arrivals[:0]
		if !injectionOver {
			if src.Done(t) {
				injectionOver = true
				drainUntil = t + d
			} else {
				specs := src.Next(t, isServed)
				tr.Arrivals = append(tr.Arrivals, make([]Request, len(specs)))
				row := tr.Arrivals[t]
				for i, alts := range specs {
					row[i] = Request{
						ID:     nextID,
						Arrive: t,
						Alts:   append([]int(nil), alts...),
						D:      d,
					}
					nextID++
					arrivals = append(arrivals, &row[i])
					res.Requests++
				}
			}
		}
		if injectionOver {
			tr.Arrivals = append(tr.Arrivals, nil)
		}

		pending = append(pending, arrivals...)
		// Rewrite fields rather than the struct so the context's Unassigned
		// scratch buffer is reused across rounds.
		ctx.T = t
		ctx.N = n
		ctx.D = d
		ctx.Arrivals = arrivals
		ctx.Pending = pending
		ctx.W = w
		s.Round(&ctx)

		clear(servedNow)
		for i := 0; i < n; i++ {
			r := w.At(i, t)
			if r == nil {
				continue
			}
			w.Unassign(r)
			served[r.ID] = true
			servedNow[r.ID] = true
			res.Fulfilled++
			res.WeightFulfilled += r.Weight()
			res.LatencySum += t - r.Arrive
			res.PerResource[i]++
			res.Log = append(res.Log, Fulfillment{Req: r, Res: i, Round: t})
		}
		if len(servedNow) > 0 {
			live := pending[:0]
			for _, r := range pending {
				if !servedNow[r.ID] {
					live = append(live, r)
				}
			}
			pending = live
		}
		w.advance()

		if injectionOver && t >= drainUntil && len(pending) == 0 {
			break
		}
	}
	res.Expired += len(pending)
	// Trim trailing empty rounds so Trace.Horizon is tight.
	for len(tr.Arrivals) > 0 && len(tr.Arrivals[len(tr.Arrivals)-1]) == 0 {
		tr.Arrivals = tr.Arrivals[:len(tr.Arrivals)-1]
	}
	if ca, ok := s.(CommAccountant); ok {
		res.CommRounds, res.Messages = ca.CommTotals()
	}
	return res, tr
}
