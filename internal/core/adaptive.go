package core

import "fmt"

// AdaptiveSource generates arrivals round by round while observing which
// requests the online algorithm has fulfilled so far. The paper's Theorem 2.6
// adversary is adaptive: in its second phase it blocks whichever colored
// request group the algorithm neglected most. Non-adaptive constructions use
// plain Traces.
type AdaptiveSource interface {
	// N returns the number of resources; D the default deadline window.
	N() int
	D() int
	// Next returns the alternative lists of the requests to inject at round
	// t (empty for none). isServed reports whether the request with the
	// given trace-wide ID has been fulfilled; IDs are assigned sequentially
	// in injection order, so the source can track the IDs of its own
	// requests by counting. Next is called for every round until it has
	// returned Done.
	Next(t int, isServed func(id int) bool) [][]int
	// Done reports that no further requests will be injected at round t or
	// later; the engine then runs the window dry and stops.
	Done(t int) bool
}

// RunAdaptiveObserved simulates strategy s against an adaptive adversary,
// handing each round's generated arrivals to observe as they are produced —
// the bounded-memory primitive under RunAdaptive and the adaptive streaming
// pipeline. observe is called once per simulated round with the round number
// and that round's freshly allocated request row (nil when none arrive); the
// row is never reused, so the observer may retain it. An observer that
// returns false aborts the run: the returned ok is false and the Result is
// partial. Request IDs are assigned sequentially in injection order; served
// tracking is a dense bitmap grown in step with them.
func RunAdaptiveObserved(s Strategy, src AdaptiveSource, observe func(t int, arrivals []Request) bool) (res *Result, ok bool) {
	n, d := src.N(), src.D()
	if n < 1 || d < 1 {
		panic(fmt.Sprintf("core: adaptive source with n=%d d=%d", n, d))
	}
	w := NewWindow(n, d)
	s.Begin(n, d)

	res = &Result{
		Strategy:    s.Name(),
		N:           n,
		D:           d,
		PerResource: make([]int, n),
	}
	var served []bool // indexed by sequentially assigned request ID
	isServed := func(id int) bool { return id < len(served) && served[id] }

	var (
		pending  []*Request
		arrivals []*Request // reused across rounds; see RoundContext.Arrivals
		ctx      RoundContext
	)
	nextID := 0
	injectionOver := false
	drainUntil := 0

	for t := 0; ; t++ {
		// Expire.
		live := pending[:0]
		for _, r := range pending {
			if r.Deadline() < t {
				res.Expired++
			} else {
				live = append(live, r)
			}
		}
		pending = live

		// Inject.
		arrivals = arrivals[:0]
		var row []Request
		if !injectionOver {
			if src.Done(t) {
				injectionOver = true
				drainUntil = t + d
			} else if specs := src.Next(t, isServed); len(specs) > 0 {
				row = make([]Request, len(specs))
				for i, alts := range specs {
					row[i] = Request{
						ID:     nextID,
						Arrive: t,
						Alts:   append([]int(nil), alts...),
						D:      d,
					}
					nextID++
					served = append(served, false)
					arrivals = append(arrivals, &row[i])
					res.Requests++
				}
			}
		}
		if !observe(t, row) {
			return res, false
		}

		pending = append(pending, arrivals...)
		// Rewrite fields rather than the struct so the context's Unassigned
		// scratch buffer is reused across rounds.
		ctx.T = t
		ctx.N = n
		ctx.D = d
		ctx.Arrivals = arrivals
		ctx.Pending = pending
		ctx.W = w
		s.Round(&ctx)

		servedNow := 0
		for i := 0; i < n; i++ {
			r := w.At(i, t)
			if r == nil {
				continue
			}
			w.Unassign(r)
			served[r.ID] = true
			servedNow++
			res.Fulfilled++
			res.WeightFulfilled += r.Weight()
			res.LatencySum += t - r.Arrive
			res.PerResource[i]++
			res.Log = append(res.Log, Fulfillment{Req: r, Res: i, Round: t})
		}
		if servedNow > 0 {
			// pending holds only requests unserved before this round, so the
			// dense bitmap alone identifies this round's departures.
			live := pending[:0]
			for _, r := range pending {
				if !served[r.ID] {
					live = append(live, r)
				}
			}
			pending = live
		}
		w.advance()

		if injectionOver && t >= drainUntil && len(pending) == 0 {
			break
		}
	}
	res.Expired += len(pending)
	if ca, ok := s.(CommAccountant); ok {
		res.CommRounds, res.Messages = ca.CommTotals()
	}
	return res, true
}

// RunAdaptive simulates strategy s against an adaptive adversary and returns
// the result together with the trace the adversary ended up generating (for
// computing the offline optimum afterwards). Callers that cannot afford the
// materialized trace stream segments through RunAdaptiveObserved instead
// (ratio.MeasureAdaptiveStream).
func RunAdaptive(s Strategy, src AdaptiveSource) (*Result, *Trace) {
	tr := &Trace{N: src.N(), D: src.D()}
	res, _ := RunAdaptiveObserved(s, src, func(t int, arrivals []Request) bool {
		tr.Arrivals = append(tr.Arrivals, arrivals)
		return true
	})
	// Trim trailing empty rounds so Trace.Horizon is tight.
	for len(tr.Arrivals) > 0 && len(tr.Arrivals[len(tr.Arrivals)-1]) == 0 {
		tr.Arrivals = tr.Arrivals[:len(tr.Arrivals)-1]
	}
	return res, tr
}
