package grid

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"reqsched/internal/grid/chaos"
	"reqsched/internal/ratio"
	"reqsched/internal/trace"
)

// The gridworker protocol is JSONL over stdin/stdout: the supervisor writes
// one workerIn line per job; the worker answers with heartbeat lines while
// measuring and exactly one result or error line per job. stderr is free-form
// diagnostics. The worker exits 0 on stdin EOF.

// workerIn is one supervisor→worker line.
type workerIn struct {
	Job *Job `json:"job,omitempty"`
}

// workerOut is one worker→supervisor line; exactly one field is set.
type workerOut struct {
	// HB is a liveness beat naming the in-flight job's ID.
	HB string `json:"hb,omitempty"`
	// Result is the completed cell, sealed with its digest.
	Result *Record `json:"result,omitempty"`
	// Err reports a job-level failure (bad spec, panic) without killing the
	// worker; the supervisor counts it against the job's retry budget.
	Err *jobError `json:"error,omitempty"`
}

type jobError struct {
	ID  string `json:"id"`
	Msg string `json:"msg"`
}

// lineWriter serializes whole-line writes so heartbeats never interleave
// with results.
type lineWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

func (lw *lineWriter) send(v workerOut) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.err != nil {
		return lw.err
	}
	if _, err := lw.w.Write(append(line, '\n')); err == nil {
		lw.err = lw.w.Flush()
	} else {
		lw.err = err
	}
	return lw.err
}

// measureSpec runs one spec, converting panics anywhere in the construction
// build or the measurement into an error (the worker must survive a bad
// cell: its siblings still need it).
func measureSpec(s Spec) (m ratio.Measurement, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("measure panicked: %v\n%s", r, debug.Stack())
		}
	}()
	c, err := s.Build.Construction()
	if err != nil {
		return ratio.Measurement{}, err
	}
	st := newStrategy(s.Strategy)
	if st == nil {
		return ratio.Measurement{}, fmt.Errorf("unknown strategy %q", s.Strategy)
	}
	return ratio.MeasureConstruction(c, st), nil
}

// WorkerMain is the body of cmd/gridworker (and of the self-exec worker
// modes of cmd/sweep and the tests): it reads job lines from in, emits
// heartbeats every hbInterval while a job is running, and writes one sealed
// result (or error) line per job to out. Faults, when armed, fire at their
// configured job indices — flt is nil in production. WorkerMain returns on
// stdin EOF; a torn final stdin line (the supervisor died mid-write) is
// treated as EOF.
func WorkerMain(in io.Reader, out io.Writer, hbInterval time.Duration, flt *chaos.Faults) error {
	if hbInterval <= 0 {
		hbInterval = 2 * time.Second
	}
	lw := &lineWriter{w: bufio.NewWriter(out)}
	br := bufio.NewReader(in)
	var off int64
	for jobIndex := 0; ; jobIndex++ {
		line, next, err := trace.ScanJSONLine(br, off)
		if err != nil {
			var torn *trace.TornTail
			if err == io.EOF || errors.As(err, &torn) {
				return nil
			}
			return fmt.Errorf("gridworker: stdin: %w", err)
		}
		off = next
		var msg workerIn
		if err := json.Unmarshal(line, &msg); err != nil {
			return fmt.Errorf("gridworker: bad input line: %w", err)
		}
		if msg.Job == nil {
			continue
		}
		job := *msg.Job

		if flt.KillAt(jobIndex) {
			os.Exit(3) // simulate OOM-kill: no answer, no goodbye
		}
		if flt.StallAt(jobIndex) {
			select {} // hang without heartbeats until the supervisor reaps us
		}

		// Heartbeat while the measurement runs.
		stop := make(chan struct{})
		var hbWG sync.WaitGroup
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(hbInterval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					lw.send(workerOut{HB: job.ID})
				}
			}
		}()
		m, err := measureSpec(job.Spec)
		close(stop)
		hbWG.Wait()

		if err != nil {
			if err := lw.send(workerOut{Err: &jobError{ID: job.ID, Msg: err.Error()}}); err != nil {
				return err
			}
			continue
		}
		if job.Name != "" {
			m.Input = job.Name
		}
		rec := Record{ID: job.ID, M: MeasOf(m)}
		rec.Seal()
		if flt.CorruptAt(jobIndex) {
			// Tamper after sealing: the digest no longer matches, the way a
			// bit flip or a buggy worker would produce a poisoned row.
			rec.M.ALG = rec.M.OPT + 1000
		}
		if err := lw.send(workerOut{Result: &rec}); err != nil {
			return err
		}
	}
}
