package grid_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reqsched/internal/grid"
	"reqsched/internal/grid/chaos"
	"reqsched/internal/ratio"
)

// startWorker boots one in-process TCP gridworker on an ephemeral port and
// returns its address. The worker is stopped (listener and live connections
// closed) on test cleanup.
func startWorker(t *testing.T, hb time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		grid.ServeWorker(ctx, ln, hb, nil, io.Discard)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String()
}

func startWorkers(t *testing.T, n int, hb time.Duration) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = startWorker(t, hb)
	}
	return addrs
}

// tcpOpts returns fast-reacting supervisor options running on the given TCP
// workers, with an optional armed link fault.
func tcpOpts(addrs []string, link *chaos.LinkFaults) grid.Options {
	return grid.Options{
		Transport: &grid.TCPTransport{
			Addrs:       addrs,
			Link:        link,
			DialTimeout: 5 * time.Second,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
		},
		JobTimeout:  30 * time.Second,
		Heartbeat:   2 * time.Second,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

// requireCleanJournal asserts the journal at path holds exactly one verified
// record per cell, matching the clean measurements — undamaged, no
// duplicates, no poison.
func requireCleanJournal(t *testing.T, path string, jobs []grid.Job, want []ratio.Measurement) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, scan, err := grid.ReadJournal(f)
	f.Close()
	if err != nil || scan.Skipped > 0 || scan.TornOffset >= 0 {
		t.Fatalf("journal damaged: err=%v scan=%+v", err, scan)
	}
	if len(recs) != len(jobs) {
		t.Fatalf("journal holds %d records, want %d (one per cell)", len(recs), len(jobs))
	}
	byID := make(map[string]grid.Record, len(recs))
	for _, r := range recs {
		if err := r.Verify(); err != nil {
			t.Fatal(err)
		}
		byID[r.ID] = r
	}
	if len(byID) != len(jobs) {
		t.Fatalf("journal holds %d distinct cells, want %d", len(byID), len(jobs))
	}
	for i, job := range jobs {
		if got := byID[job.ID].M.ToMeasurement(); got != want[i] {
			t.Fatalf("journaled cell %d differs: %+v vs %+v", i, got, want[i])
		}
	}
}

func TestTCPSupervisorMatchesInProcess(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	for _, n := range []int{1, 2} {
		addrs := startWorkers(t, n, 20*time.Millisecond)
		rep, err := grid.Run(context.Background(), jobs, tcpOpts(addrs, nil))
		if err != nil {
			t.Fatalf("workers=%d: %v", n, err)
		}
		if !rep.AllDone() || len(rep.Failures) != 0 || len(rep.LostHosts) != 0 {
			t.Fatalf("workers=%d: incomplete grid: %s", n, rep.FailureReport())
		}
		requireSameMeasurements(t, want, rep.Measurements, fmt.Sprintf("tcp workers=%d", n))
	}
}

// TestTCPLinkFaultSchedules is the network half of the single-fault property:
// ANY single link fault — connection dropped, silently stalled, truncated
// mid-message, or a host partitioned away — at any protocol message position
// must leave the journal identical to the clean in-process run, one verified
// record per cell, with the grid completing on whatever workers survive.
func TestTCPLinkFaultSchedules(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	type fault struct {
		mode string
		msg  int
		link int
	}
	var faults []fault
	for msg := 0; msg < 3; msg++ {
		faults = append(faults, fault{chaos.LinkDrop, msg, 0}, fault{chaos.LinkTrunc, msg, 0})
	}
	faults = append(faults,
		fault{chaos.LinkStall, 0, 0},
		fault{chaos.LinkStall, 1, 0},
		fault{chaos.LinkPartition, 1, 1},
	)
	for _, f := range faults {
		f := f
		t.Run(fmt.Sprintf("%s_at_%d_link_%d", f.mode, f.msg, f.link), func(t *testing.T) {
			t.Parallel()
			addrs := startWorkers(t, 2, 20*time.Millisecond)
			jpath := filepath.Join(t.TempDir(), "journal.jsonl")
			j, done, _, err := grid.OpenJournal(jpath, false)
			if err != nil {
				t.Fatal(err)
			}
			opts := tcpOpts(addrs, &chaos.LinkFaults{Mode: f.mode, Msg: f.msg, Link: f.link})
			if f.mode == chaos.LinkStall {
				// Tight liveness so the silent link is reaped quickly.
				opts.Heartbeat = 300 * time.Millisecond
			}
			opts.Journal = j
			opts.Done = done
			rep, err := grid.Run(context.Background(), jobs, opts)
			if err != nil {
				t.Fatal(err)
			}
			j.Close()
			if !rep.AllDone() || len(rep.Failures) != 0 {
				t.Fatalf("incomplete grid under link fault: %s", rep.FailureReport())
			}
			requireSameMeasurements(t, want, rep.Measurements, "link-faulted grid")
			if f.mode == chaos.LinkPartition {
				if len(rep.LostHosts) != 1 || rep.LostHosts[0] != addrs[f.link] {
					t.Fatalf("partition must name the lost host %s, got %v", addrs[f.link], rep.LostHosts)
				}
			} else if rep.Retried < 1 {
				t.Fatal("link fault did not cost a retry (did it fire?)")
			}
			requireCleanJournal(t, jpath, jobs, want)
		})
	}
}

// TestTCPWorkerRestartReconnects kills the worker process mid-sweep and
// restarts it on the same address: the transport's backoff redial must find
// the fresh process, re-handshake, and finish the grid — no lost hosts, no
// failed cells.
func TestTCPWorkerRestartReconnects(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan struct{})
	go func() {
		defer close(wdone)
		grid.ServeWorker(wctx, ln, 20*time.Millisecond, nil, io.Discard)
	}()

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var once sync.Once
	var restartErr atomic.Value
	tr := &grid.TCPTransport{
		Addrs:       []string{addr},
		DialTimeout: 5 * time.Second,
		Redials:     40,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MsgHook: func(a string, msg int) {
			if msg != 3 {
				return
			}
			once.Do(func() {
				// Kill the worker process and bring a new one up on the same
				// address — synchronously, so the supervisor's redials find
				// it. The port may linger briefly after close; retry the bind.
				wcancel()
				<-wdone
				var ln2 net.Listener
				for i := 0; i < 200; i++ {
					var lerr error
					if ln2, lerr = net.Listen("tcp", addr); lerr == nil {
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
				if ln2 == nil {
					restartErr.Store(fmt.Errorf("could not rebind %s", addr))
					return
				}
				go grid.ServeWorker(ctx2, ln2, 20*time.Millisecond, nil, io.Discard)
			})
		},
	}
	opts := tcpOpts(nil, nil)
	opts.Transport = tr
	rep, err := grid.Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if e := restartErr.Load(); e != nil {
		t.Fatal(e)
	}
	if !rep.AllDone() || len(rep.Failures) != 0 || len(rep.LostHosts) != 0 {
		t.Fatalf("grid did not survive the worker restart: %s", rep.FailureReport())
	}
	requireSameMeasurements(t, want, rep.Measurements, "restarted worker")
	if rep.Retried < 1 {
		t.Fatal("restart did not cost a retry (did the kill fire?)")
	}
}

// TestTCPAllHostsLostFailsExplicitly partitions the only worker away: the
// remaining cells must fail explicitly — naming the lost host — while every
// cell completed before the partition stays journaled and correct.
func TestTCPAllHostsLostFailsExplicitly(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	addrs := startWorkers(t, 1, 20*time.Millisecond)
	rep, err := grid.Run(context.Background(), jobs,
		tcpOpts(addrs, &chaos.LinkFaults{Mode: chaos.LinkPartition, Msg: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllDone() {
		t.Fatal("grid claims completion with its only host partitioned away")
	}
	if len(rep.LostHosts) != 1 || rep.LostHosts[0] != addrs[0] {
		t.Fatalf("lost hosts %v, want [%s]", rep.LostHosts, addrs[0])
	}
	if len(rep.Failures) == 0 {
		t.Fatal("no explicit failures for the stranded cells")
	}
	failed := make(map[int]bool)
	for _, f := range rep.Failures {
		if !strings.Contains(f.Err, "all worker hosts lost") || !strings.Contains(f.Err, addrs[0]) {
			t.Fatalf("failure does not name the loss: %+v", f)
		}
		failed[f.Index] = true
	}
	for i := range jobs {
		switch {
		case rep.Done[i] && failed[i]:
			t.Fatalf("cell %d both done and failed", i)
		case !rep.Done[i] && !failed[i]:
			t.Fatalf("cell %d neither done nor failed", i)
		case rep.Done[i] && rep.Measurements[i] != want[i]:
			t.Fatalf("cell %d poisoned: %+v vs %+v", i, rep.Measurements[i], want[i])
		}
	}
	if rpt := rep.FailureReport(); !strings.Contains(rpt, "lost worker hosts: "+addrs[0]) {
		t.Fatalf("failure report does not name the lost host: %q", rpt)
	}
}

// TestTCPSupervisorKillAtEveryMessageBoundary is the network crash-resume
// property: kill the supervisor at every protocol message boundary of a
// remote sweep (including mid-network-read, with a torn tail on the journal),
// then resume against the same workers — the final journal must be a
// permutation of the uninterrupted run's lines, and the measurements
// identical.
func TestTCPSupervisorKillAtEveryMessageBoundary(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	dir := t.TempDir()

	// Uninterrupted journaled reference run.
	refPath := filepath.Join(dir, "ref.jsonl")
	j, done, _, err := grid.OpenJournal(refPath, false)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := grid.RunLocal(context.Background(), jobs, done, j, 2)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	requireSameMeasurements(t, want, rep.Measurements, "reference run")
	refSorted := append([]string(nil), readLines(t, refPath)...)
	sort.Strings(refSorted)

	addrs := startWorkers(t, 2, 20*time.Millisecond)
	completedClean := false
	for k := 0; k < 200 && !completedClean; k++ {
		name := fmt.Sprintf("kill_at_msg_%d", k)
		path := filepath.Join(dir, name+".jsonl")
		j, done, _, err := grid.OpenJournal(path, false)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var total int64
		opts := tcpOpts(addrs, nil)
		opts.Transport.(*grid.TCPTransport).MsgHook = func(a string, msg int) {
			// The supervisor dies the instant global message k crosses any
			// link — between a network write and the corresponding read.
			if atomic.AddInt64(&total, 1) == int64(k)+1 {
				cancel()
			}
		}
		opts.Journal = j
		opts.Done = done
		_, runErr := grid.Run(ctx, jobs, opts)
		j.Close()
		killed := atomic.LoadInt64(&total) > int64(k)
		cancel()
		if !killed {
			// Message k was never reached: the run completed uninterrupted.
			// This is the loop's natural end.
			if runErr != nil {
				t.Fatalf("%s: clean run failed: %v", name, runErr)
			}
			completedClean = true
		} else if k%2 == 1 {
			// Odd boundaries also simulate the crash landing mid-append: tear
			// half of a not-yet-journaled record onto the journal tail.
			tearPendingRecord(t, path, refSorted)
		}

		// Resume with a fresh transport against the same workers.
		j2, done2, _, err := grid.OpenJournal(path, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opts2 := tcpOpts(addrs, nil)
		opts2.Journal = j2
		opts2.Done = done2
		rep2, err := grid.Run(context.Background(), jobs, opts2)
		if err != nil {
			t.Fatalf("%s: resume: %v", name, err)
		}
		j2.Close()
		if !rep2.AllDone() || len(rep2.Failures) != 0 {
			t.Fatalf("%s: resume incomplete: %s", name, rep2.FailureReport())
		}
		requireSameMeasurements(t, want, rep2.Measurements, name)
		gotSorted := append([]string(nil), readLines(t, path)...)
		sort.Strings(gotSorted)
		if strings.Join(gotSorted, "") != strings.Join(refSorted, "") {
			t.Fatalf("%s: resumed journal is not a permutation of the reference:\n got %q\nwant %q",
				name, gotSorted, refSorted)
		}
	}
	if !completedClean {
		t.Fatal("no kill boundary let the run finish — runaway message count?")
	}
}

// tearPendingRecord appends the first half of a reference journal line whose
// record is not yet in the journal at path — the footprint of a supervisor
// crash mid-append. No-op when every record is already journaled.
func tearPendingRecord(t *testing.T, path string, refLines []string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := grid.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(recs))
	for _, r := range recs {
		have[r.ID] = true
	}
	for _, line := range refLines {
		var rec grid.Record
		if json.Unmarshal([]byte(line), &rec) != nil || have[rec.ID] {
			continue
		}
		w, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteString(line[:len(line)/2]); err != nil {
			t.Fatal(err)
		}
		w.Close()
		return
	}
}

func TestTCPHandshakeVersionMismatch(t *testing.T) {
	// A worker speaking a future protocol: the transport must declare the
	// host lost with an error naming both versions, never retry into it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			br := bufio.NewReader(nc)
			br.ReadBytes('\n')
			fmt.Fprintf(nc, `{"hello":{"proto":99}}`+"\n")
			nc.Close()
		}
	}()
	tr := &grid.TCPTransport{Addrs: []string{ln.Addr().String()}, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}
	_, err = tr.Dial(context.Background(), 0)
	var hl *grid.HostLost
	if !errors.As(err, &hl) {
		t.Fatalf("version mismatch must be a HostLost, got %v", err)
	}
	for _, wantSub := range []string{"version mismatch", "v99", fmt.Sprintf("v%d", grid.ProtoVersion)} {
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}

	// A supervisor speaking a future protocol against a real worker: the
	// worker must still answer with its own version (so the supervisor can
	// name both sides) and then hang up without serving jobs.
	addr := startWorker(t, 20*time.Millisecond)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(nc, `{"hello":{"proto":99,"peer":"supervisor"}}`+"\n")
	br := bufio.NewReader(nc)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Hello *struct {
			Proto int `json:"proto"`
		} `json:"hello"`
	}
	if err := json.Unmarshal(line, &h); err != nil || h.Hello == nil || h.Hello.Proto != grid.ProtoVersion {
		t.Fatalf("worker hello reply %q must carry proto %d", line, grid.ProtoVersion)
	}
	if _, err := br.ReadBytes('\n'); err == nil {
		t.Fatal("worker kept talking to a mismatched supervisor")
	}
}

// TestTCPDuplicateResultDiscarded runs against a fake worker that re-sends
// the previous job's (already accepted) sealed record before each new result —
// the late-duplicate footprint of a retried job. At-most-once acceptance must
// discard and count every duplicate, journaling exactly one record per cell.
func TestTCPDuplicateResultDiscarded(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				br := bufio.NewReader(nc)
				if _, err := br.ReadBytes('\n'); err != nil {
					return
				}
				fmt.Fprintf(nc, `{"hello":{"proto":%d,"peer":"gridworker"}}`+"\n", grid.ProtoVersion)
				enc := json.NewEncoder(nc)
				var prev *grid.Record
				for {
					line, err := br.ReadBytes('\n')
					if err != nil {
						return
					}
					var in struct {
						Job *grid.Job `json:"job"`
					}
					if json.Unmarshal(line, &in) != nil || in.Job == nil {
						continue
					}
					rec := grid.Record{ID: in.Job.ID, M: grid.MeasOf(want[in.Job.Index])}
					rec.Seal()
					if prev != nil {
						enc.Encode(struct {
							Result *grid.Record `json:"result"`
						}{prev})
					}
					if enc.Encode(struct {
						Result *grid.Record `json:"result"`
					}{&rec}) != nil {
						return
					}
					prev = &rec
				}
			}()
		}
	}()

	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, done, _, err := grid.OpenJournal(jpath, false)
	if err != nil {
		t.Fatal(err)
	}
	opts := tcpOpts([]string{ln.Addr().String()}, nil)
	opts.Journal = j
	opts.Done = done
	rep, err := grid.Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if !rep.AllDone() || len(rep.Failures) != 0 {
		t.Fatalf("incomplete grid: %s", rep.FailureReport())
	}
	requireSameMeasurements(t, want, rep.Measurements, "duplicating worker")
	if wantDup := len(jobs) - 1; rep.Duplicates != wantDup {
		t.Fatalf("accepted run discarded %d duplicates, want %d", rep.Duplicates, wantDup)
	}
	requireCleanJournal(t, jpath, jobs, want)
}
