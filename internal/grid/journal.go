package grid

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"reqsched/internal/ratio"
	"reqsched/internal/trace"
)

// Meas is the serializable subset of ratio.Measurement the grid transports
// across process boundaries and journals on disk. The wire form is explicit
// so the journal format stays stable even if Measurement grows fields.
type Meas struct {
	Strategy string  `json:"strategy"`
	Input    string  `json:"input"`
	N        int     `json:"n"`
	D        int     `json:"d"`
	OPT      int     `json:"opt"`
	ALG      int     `json:"alg"`
	Expired  int     `json:"expired"`
	Bound    float64 `json:"bound"`
}

// ToMeasurement converts back to the ratio type the harness folds.
func (m Meas) ToMeasurement() ratio.Measurement {
	return ratio.Measurement{
		Strategy: m.Strategy, Input: m.Input, N: m.N, D: m.D,
		OPT: m.OPT, ALG: m.ALG, Expired: m.Expired, Bound: m.Bound,
	}
}

// MeasOf converts a ratio.Measurement to its wire form.
func MeasOf(m ratio.Measurement) Meas {
	return Meas{
		Strategy: m.Strategy, Input: m.Input, N: m.N, D: m.D,
		OPT: m.OPT, ALG: m.ALG, Expired: m.Expired, Bound: m.Bound,
	}
}

// Record is one completed grid cell: the job's ID, its measurement, and a
// digest binding the two. The digest serves two independent purposes: on the
// worker protocol it catches records corrupted (or fabricated sloppily) by a
// sick worker before they can poison a row, and in the journal it catches
// on-disk corruption on resume.
type Record struct {
	ID     string `json:"id"`
	M      Meas   `json:"m"`
	Digest string `json:"digest"`
}

// digest computes the canonical digest over (ID, M).
func (r Record) digest() string {
	b, err := json.Marshal(struct {
		ID string `json:"id"`
		M  Meas   `json:"m"`
	}{r.ID, r.M})
	if err != nil {
		panic(fmt.Sprintf("grid: marshal record: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:12])
}

// Seal fills in the record's digest.
func (r *Record) Seal() { r.Digest = r.digest() }

// Verify checks the digest and the measurement invariants that hold for
// every honest measurement: ALG is a feasible schedule so 0 <= ALG <= OPT,
// counters are non-negative, and the model parameters are sane. A record
// failing Verify is never folded into grid results — the supervisor retries
// the cell instead.
func (r Record) Verify() error {
	if r.ID == "" {
		return errors.New("grid: record without a job ID")
	}
	if want := r.digest(); r.Digest != want {
		return fmt.Errorf("grid: record %s: digest mismatch (%s != %s)", r.ID, r.Digest, want)
	}
	m := r.M
	if m.ALG < 0 || m.OPT < 0 || m.ALG > m.OPT {
		return fmt.Errorf("grid: record %s: impossible OPT/ALG %d/%d (ALG must be in [0, OPT])", r.ID, m.OPT, m.ALG)
	}
	if m.Expired < 0 {
		return fmt.Errorf("grid: record %s: negative expired count %d", r.ID, m.Expired)
	}
	if m.N < 1 || m.D < 1 {
		return fmt.Errorf("grid: record %s: invalid model n=%d d=%d", r.ID, m.N, m.D)
	}
	return nil
}

// JournalScan diagnoses what a journal read found beyond the good records.
type JournalScan struct {
	// Lines counts the newline-terminated lines examined.
	Lines int
	// Skipped counts terminated lines that failed to parse or verify —
	// on-disk corruption; their jobs are simply re-run.
	Skipped int
	// TornOffset is the byte offset of a truncated final line (a crash
	// mid-append), or -1. Resume truncates the file there: the torn tail is
	// treated as absent, exactly as if the crash had hit one record earlier.
	TornOffset int64
}

// ReadJournal reads checkpoint records from r. Records that fail to parse or
// verify are skipped and counted (their cells re-run on resume); a torn
// final line is reported via JournalScan.TornOffset instead of failing the
// whole file. Only I/O failures are returned as errors.
func ReadJournal(r io.Reader) ([]Record, JournalScan, error) {
	scan := JournalScan{TornOffset: -1}
	var recs []Record
	br := bufio.NewReader(r)
	var off int64
	for {
		line, next, err := trace.ScanJSONLine(br, off)
		if err == io.EOF {
			return recs, scan, nil
		}
		var torn *trace.TornTail
		if errors.As(err, &torn) {
			scan.TornOffset = torn.Offset
			return recs, scan, nil
		}
		if err != nil {
			return recs, scan, fmt.Errorf("grid: journal read: %w", err)
		}
		off = next
		scan.Lines++
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Verify() != nil {
			scan.Skipped++
			continue
		}
		recs = append(recs, rec)
	}
}

// Journal is the append-only JSONL checkpoint file of a grid run. Appends
// are serialized, newline-terminated, and synced, so after a crash the file
// holds every acknowledged record plus at most one torn tail — which
// OpenJournal detects and truncates on resume.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal at path, scans it, and
// positions it for appending. If resume is false the journal must be empty
// or absent — refusing to silently mix two different runs' checkpoints. On
// resume, a torn final line is truncated away (scan.TornOffset records where)
// and corrupt records are dropped from the returned map, so their cells
// re-run.
func OpenJournal(path string, resume bool) (*Journal, map[string]Record, JournalScan, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, JournalScan{}, err
	}
	recs, scan, err := ReadJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, scan, err
	}
	if !resume && (len(recs) > 0 || scan.Lines > 0 || scan.TornOffset >= 0) {
		f.Close()
		return nil, nil, scan, fmt.Errorf("grid: journal %s already holds %d records (pass resume to continue it, or use a fresh path)", path, len(recs))
	}
	if scan.TornOffset >= 0 {
		if err := f.Truncate(scan.TornOffset); err != nil {
			f.Close()
			return nil, nil, scan, fmt.Errorf("grid: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, scan, err
	}
	done := make(map[string]Record, len(recs))
	for _, rec := range recs {
		done[rec.ID] = rec
	}
	return &Journal{f: f}, done, scan, nil
}

// Append seals rec (computing its digest), writes it as one JSONL line, and
// syncs, so an acknowledged checkpoint survives a crash of the supervisor
// itself.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	rec.Seal()
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("grid: marshal journal record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("grid: journal append: %w", err)
	}
	return j.f.Sync()
}

// Close closes the underlying file. Safe on nil.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
