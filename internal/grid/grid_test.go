package grid_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reqsched/internal/grid"
	"reqsched/internal/grid/chaos"
	"reqsched/internal/ratio"
)

// TestMain doubles as the gridworker body: the supervisor tests spawn this
// test binary with GRID_TEST_WORKER=1 and it speaks the worker protocol on
// stdin/stdout instead of running tests — the standard re-exec trick, so the
// real subprocess machinery (pipes, kills, respawns) is exercised without a
// separately built binary.
func TestMain(m *testing.M) {
	if os.Getenv("GRID_TEST_WORKER") == "1" {
		hb := 50 * time.Millisecond
		if v := os.Getenv("GRID_TEST_HB"); v != "" {
			if d, err := time.ParseDuration(v); err == nil {
				hb = d
			}
		}
		faults, err := chaos.FromEnv()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := grid.WorkerMain(os.Stdin, os.Stdout, hb, faults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testManifest is a small, fast, heterogeneous grid: adversarial traces, an
// adaptive source, and a random workload, across several strategies.
func testManifest(t *testing.T) []grid.Job {
	t.Helper()
	specs := []grid.Spec{
		{Strategy: "A_fix", Build: grid.BuildSpec{Kind: "fix", D: 2, Phases: 4}},
		{Strategy: "A_eager", Build: grid.BuildSpec{Kind: "eager", D: 4, Phases: 4}},
		{Strategy: "A_current", Build: grid.BuildSpec{Kind: "current", L: 2, Phases: 2}},
		{Strategy: "A_balance", Build: grid.BuildSpec{Kind: "balance", X: 1, K: 4, Phases: 4}},
		{Strategy: "EDF", Build: grid.BuildSpec{Kind: "uniform", N: 4, D: 3, Rounds: 20, Rate: 5, Seed: 3}},
		{Strategy: "A_fix_balance", Build: grid.BuildSpec{Kind: "fix_balance", D: 4, Phases: 4}},
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = fmt.Sprintf("%s/%s#%d", s.Strategy, s.Build.Kind, i)
	}
	jobs, err := grid.BuildManifest(specs, names)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// cleanMeasurements is the ground truth: the plain in-process pool.
func cleanMeasurements(t *testing.T, jobs []grid.Job) []ratio.Measurement {
	t.Helper()
	ms, err := ratio.RunParallelChecked(grid.RatioJobs(jobs), 2)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func requireSameMeasurements(t *testing.T, want, got []ratio.Measurement, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d measurements", ctx, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: cell %d differs:\n got %+v\nwant %+v", ctx, i, got[i], want[i])
		}
	}
}

// supervisorOpts returns fast-reacting options spawning this test binary as
// the worker.
func supervisorOpts(t *testing.T, workers int, env ...string) grid.Options {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return grid.Options{
		Workers:     workers,
		WorkerCmd:   []string{exe},
		WorkerEnv:   append([]string{"GRID_TEST_WORKER=1", "GRID_TEST_HB=20ms"}, env...),
		JobTimeout:  30 * time.Second,
		Heartbeat:   2 * time.Second,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

// TestOptionsValidate pins that option values which would silently misbehave
// (negative timers arming degenerate timeouts, the old negative-Retries
// sentinel) are rejected up front with errors naming the bad field.
func TestOptionsValidate(t *testing.T) {
	jobs := testManifest(t)
	cases := []struct {
		name   string
		mutate func(*grid.Options)
		want   string
	}{
		{"negative job timeout", func(o *grid.Options) { o.JobTimeout = -time.Second }, "JobTimeout"},
		{"negative heartbeat", func(o *grid.Options) { o.Heartbeat = -time.Second }, "Heartbeat"},
		{"negative backoff base", func(o *grid.Options) { o.BackoffBase = -time.Second }, "BackoffBase"},
		{"negative backoff max", func(o *grid.Options) { o.BackoffMax = -time.Second }, "BackoffMax"},
		{"inverted backoff", func(o *grid.Options) { o.BackoffBase = time.Second; o.BackoffMax = time.Millisecond }, "BackoffMax"},
		{"negative retries", func(o *grid.Options) { o.Retries = -1 }, "retry budget"},
	}
	for _, c := range cases {
		opts := supervisorOpts(t, 1)
		c.mutate(&opts)
		if err := opts.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error naming %s", c.name, err, c.want)
		}
		if _, err := grid.Run(context.Background(), jobs, opts); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Run accepted bad options (err %v)", c.name, err)
		}
	}
	// Zero everywhere stays the documented "use the default".
	if err := (&grid.Options{}).Validate(); err != nil {
		t.Errorf("zero options must validate: %v", err)
	}
}

func TestSupervisorMatchesInProcess(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	for _, workers := range []int{1, 3} {
		rep, err := grid.Run(context.Background(), jobs, supervisorOpts(t, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.AllDone() || len(rep.Failures) != 0 {
			t.Fatalf("workers=%d: incomplete grid: %s", workers, rep.FailureReport())
		}
		requireSameMeasurements(t, want, rep.Measurements, fmt.Sprintf("workers=%d", workers))
	}
}

func TestRunLocalMatchesInProcess(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	dir := t.TempDir()
	j, done, _, err := grid.OpenJournal(filepath.Join(dir, "j.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rep, err := grid.RunLocal(context.Background(), jobs, done, j, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDone() {
		t.Fatalf("incomplete: %s", rep.FailureReport())
	}
	requireSameMeasurements(t, want, rep.Measurements, "local")
}

// TestChaosSingleFaultSchedules is the tentpole property test: ANY single
// fault — a worker OOM-killed before answering, hung without heartbeats, or
// returning a corrupted record, at any job position — must cost at most a
// retry and leave the grid bit-identical to a clean single-shot run, with
// the corrupt record never journaled.
func TestChaosSingleFaultSchedules(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	type fault struct {
		mode string
		at   int
	}
	var faults []fault
	for at := 0; at < 3; at++ {
		faults = append(faults, fault{chaos.Kill, at}, fault{chaos.Corrupt, at})
	}
	faults = append(faults, fault{chaos.Stall, 0}, fault{chaos.Stall, 2})
	for _, f := range faults {
		f := f
		t.Run(fmt.Sprintf("%s_at_%d", f.mode, f.at), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			jpath := filepath.Join(dir, "journal.jsonl")
			j, done, _, err := grid.OpenJournal(jpath, false)
			if err != nil {
				t.Fatal(err)
			}
			opts := supervisorOpts(t, 2,
				chaos.EnvSpec+"="+fmt.Sprintf("%s:%d", f.mode, f.at),
				chaos.EnvOnce+"="+filepath.Join(dir, "fired"),
			)
			if f.mode == chaos.Stall {
				// Tight liveness so the stalled worker is reaped quickly.
				opts.Heartbeat = 300 * time.Millisecond
			}
			opts.Journal = j
			opts.Done = done
			rep, err := grid.Run(context.Background(), jobs, opts)
			if err != nil {
				t.Fatal(err)
			}
			j.Close()
			if !rep.AllDone() || len(rep.Failures) != 0 {
				t.Fatalf("incomplete grid under fault: %s", rep.FailureReport())
			}
			requireSameMeasurements(t, want, rep.Measurements, "faulted grid")
			if rep.Retried < 1 {
				t.Fatalf("fault did not cost a retry (did it fire?)")
			}
			// The journal must hold exactly one verified record per cell —
			// in particular, no corrupted record was ever written.
			f2, err := os.Open(jpath)
			if err != nil {
				t.Fatal(err)
			}
			recs, scan, err := grid.ReadJournal(f2)
			f2.Close()
			if err != nil || scan.Skipped > 0 || scan.TornOffset >= 0 {
				t.Fatalf("journal damaged: err=%v scan=%+v", err, scan)
			}
			byID := make(map[string]grid.Record, len(recs))
			for _, r := range recs {
				if err := r.Verify(); err != nil {
					t.Fatal(err)
				}
				byID[r.ID] = r
			}
			if len(byID) != len(jobs) {
				t.Fatalf("journal holds %d cells, want %d", len(byID), len(jobs))
			}
			for i, job := range jobs {
				if got := byID[job.ID].M.ToMeasurement(); got != want[i] {
					t.Fatalf("journaled cell %d differs: %+v vs %+v", i, got, want[i])
				}
			}
		})
	}
}

// TestChaosPersistentCorruption drops the once-file: every worker process
// corrupts its third job (per-process index 2), no retries. With one worker
// dispatching in manifest order and a recycle after each failure, cells 2
// and 5 deterministically hit the fault in every attempt; they must be
// reported failed explicitly, with the rest of the grid intact and the
// poisoned records never emitted.
func TestChaosPersistentCorruption(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	opts := supervisorOpts(t, 1, chaos.EnvSpec+"=corrupt:2")
	opts.NoRetries = true // fail fast
	rep, err := grid.Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 2 {
		t.Fatalf("want exactly 2 failed cells, got %d: %s", len(rep.Failures), rep.FailureReport())
	}
	failed := map[int]bool{2: true, 5: true}
	for _, f := range rep.Failures {
		if !failed[f.Index] || !strings.Contains(f.Err, "digest mismatch") {
			t.Fatalf("unexpected failure: %+v", f)
		}
	}
	for i := range jobs {
		if failed[i] {
			if rep.Done[i] {
				t.Fatalf("corrupted cell %d marked done", i)
			}
			continue
		}
		if !rep.Done[i] {
			t.Fatalf("healthy cell %d did not complete", i)
		}
		if rep.Measurements[i] != want[i] {
			t.Fatalf("cell %d poisoned: %+v vs %+v", i, rep.Measurements[i], want[i])
		}
	}
	if rpt := rep.FailureReport(); !strings.Contains(rpt, "2 of 6 cells failed") {
		t.Fatalf("failure report does not name the loss: %q", rpt)
	}
}

// TestCrashResumeAtEveryJobBoundary is the crash-resume property test: kill
// the supervisor after any number of completed cells (journal = that prefix,
// possibly with a torn tail from the in-flight append), then resume — the
// final measurements and journal must equal an uninterrupted run's exactly.
func TestCrashResumeAtEveryJobBoundary(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	dir := t.TempDir()

	// Uninterrupted journaled run: the reference journal.
	refPath := filepath.Join(dir, "ref.jsonl")
	j, done, _, err := grid.OpenJournal(refPath, false)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := grid.RunLocal(context.Background(), jobs, done, j, 2)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	requireSameMeasurements(t, want, rep.Measurements, "reference run")
	refLines := readLines(t, refPath)
	if len(refLines) != len(jobs) {
		t.Fatalf("reference journal has %d lines, want %d", len(refLines), len(jobs))
	}

	for k := 0; k <= len(jobs); k++ {
		for _, torn := range []bool{false, true} {
			if torn && k == len(jobs) {
				continue // nothing left in flight to tear
			}
			name := fmt.Sprintf("k=%d,torn=%v", k, torn)
			path := filepath.Join(dir, fmt.Sprintf("crash_%d_%v.jsonl", k, torn))
			content := strings.Join(refLines[:k], "")
			if torn {
				// The crash hit mid-append of cell k: half a record, no
				// newline.
				content += refLines[k][:len(refLines[k])/2]
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			j, done, scan, err := grid.OpenJournal(path, true)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if torn != (scan.TornOffset >= 0) {
				t.Fatalf("%s: torn detection wrong: %+v", name, scan)
			}
			if len(done) != k {
				t.Fatalf("%s: resumed with %d cells, want %d", name, len(done), k)
			}
			rep, err := grid.RunLocal(context.Background(), jobs, done, j, 2)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			j.Close()
			if rep.FromJournal != k {
				t.Fatalf("%s: %d cells from journal, want %d", name, rep.FromJournal, k)
			}
			requireSameMeasurements(t, want, rep.Measurements, name)
			// The resumed journal must again hold exactly one verified
			// record per cell, and they must equal the reference records.
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			recs, scan2, err := grid.ReadJournal(f)
			f.Close()
			if err != nil || scan2.Skipped > 0 || scan2.TornOffset >= 0 {
				t.Fatalf("%s: resumed journal damaged: err=%v scan=%+v", name, err, scan2)
			}
			if len(recs) != len(jobs) {
				t.Fatalf("%s: resumed journal has %d records, want %d", name, len(recs), len(jobs))
			}
		}
	}
}

// TestSupervisorResume exercises the crash-resume path through the real
// subprocess supervisor for one boundary (the local runner covers them all).
func TestSupervisorResume(t *testing.T) {
	jobs := testManifest(t)
	want := cleanMeasurements(t, jobs)
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")

	j, done, _, err := grid.OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	opts := supervisorOpts(t, 2)
	opts.Journal = j
	opts.Done = done
	if _, err := grid.Run(context.Background(), jobs, opts); err != nil {
		t.Fatal(err)
	}
	j.Close()

	lines := readLines(t, path)
	if err := os.WriteFile(path, []byte(strings.Join(lines[:2], "")+lines[2][:10]), 0o644); err != nil {
		t.Fatal(err)
	}
	j, done, scan, err := grid.OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if scan.TornOffset < 0 || len(done) != 2 {
		t.Fatalf("scan %+v, done %d", scan, len(done))
	}
	opts = supervisorOpts(t, 2)
	opts.Journal = j
	opts.Done = done
	rep, err := grid.Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if rep.FromJournal != 2 {
		t.Fatalf("%d from journal, want 2", rep.FromJournal)
	}
	requireSameMeasurements(t, want, rep.Measurements, "subprocess resume")
}

func TestRunLocalCancellationFlushesJournal(t *testing.T) {
	jobs := testManifest(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	j, done, _, err := grid.OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled up front: nothing runs, nothing is lost, no failure entries
	rep, err := grid.RunLocal(ctx, jobs, done, j, 2)
	if err == nil {
		t.Fatal("want ctx error")
	}
	j.Close()
	if len(rep.Failures) != 0 {
		t.Fatalf("cancellation must not fabricate failures: %+v", rep.Failures)
	}
	// Resume completes the grid.
	j, done, _, err = grid.OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = grid.RunLocal(context.Background(), jobs, done, j, 2)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if !rep.AllDone() {
		t.Fatalf("resume after cancel incomplete: %s", rep.FailureReport())
	}
	requireSameMeasurements(t, cleanMeasurements(t, jobs), rep.Measurements, "resume after cancel")
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.SplitAfter(string(b), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	return lines
}
