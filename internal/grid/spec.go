// Package grid is the fault-tolerant distributed execution layer for
// measurement grids: the paper's evaluation is a grid of (construction,
// strategy) cells, and a sweep that outgrows one process must survive
// workers that crash, hang, or return garbage. The package provides
//
//   - a serializable job description (Spec) with deterministic content-derived
//     job IDs, so the same grid built twice — or on two machines — names its
//     cells identically;
//   - an append-only JSONL checkpoint journal (Journal) with per-record
//     digests and torn-write detection, so an interrupted sweep resumes
//     bit-identically;
//   - a supervisor (Run) that spawns gridworker subprocesses speaking a JSONL
//     stdin/stdout protocol, with per-job wall-clock deadlines, heartbeat
//     liveness, exponential backoff with seeded jitter, a bounded retry
//     budget, and supervisor-side re-verification of every returned record;
//   - an in-process runner (RunLocal) sharing the journal/resume semantics
//     but executing on the ratio worker pool — the -shard 0 path;
//   - a deterministic chaos layer (subpackage chaos) injecting kill, stall,
//     and corrupt-record faults at fixed job indices, used by the property
//     tests proving single-fault schedules reproduce the clean grid.
package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/local"
	"reqsched/internal/strategies"
	"reqsched/internal/workload"
)

// Spec describes one grid cell — a (construction, strategy) measurement — in
// a serializable, deterministic form. Unlike ratio.Job's closures, a Spec can
// cross a process boundary and derive a stable identity from its content.
type Spec struct {
	// Strategy names the online strategy (reqsched.Strategies key).
	Strategy string `json:"strategy"`
	// Build describes the adversarial construction or synthetic workload.
	Build BuildSpec `json:"build"`
}

// BuildSpec selects and parameterizes an input family. Kind chooses the
// builder; the remaining fields are that builder's parameters (unused ones
// stay zero and are omitted from the wire form, keeping IDs stable when new
// parameters are added).
type BuildSpec struct {
	// Kind is one of the adversary kinds "fix", "current", "fix_balance",
	// "eager", "balance", "universal", "universal_anyd", "local_fix", "edf",
	// or the workload kinds "uniform", "zipf", "bursty", "single", "cchoice".
	Kind string `json:"kind"`
	// Adversary parameters (Table 1 families).
	D      int `json:"d,omitempty"`
	Phases int `json:"phases,omitempty"`
	L      int `json:"l,omitempty"`
	X      int `json:"x,omitempty"`
	K      int `json:"k,omitempty"`
	// Workload parameters (synthetic generators).
	N      int     `json:"n,omitempty"`
	Rounds int     `json:"rounds,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	S      float64 `json:"s,omitempty"`
	On     int     `json:"on,omitempty"`
	Off    int     `json:"off,omitempty"`
	Burst  float64 `json:"burst,omitempty"`
	C      int     `json:"c,omitempty"`
}

// Construction materializes the input the spec describes. Generation is
// deterministic: the same spec yields the same trace (or adaptive source) in
// every process, which is what makes cross-process measurements and resume
// runs bit-identical.
func (b BuildSpec) Construction() (adversary.Construction, error) {
	cfg := workload.Config{N: b.N, D: b.D, Rounds: b.Rounds, Rate: b.Rate, Seed: b.Seed}
	switch b.Kind {
	case "fix":
		return adversary.Fix(b.D, b.Phases), nil
	case "current":
		return adversary.Current(b.L, b.Phases), nil
	case "fix_balance":
		return adversary.FixBalance(b.D, b.Phases), nil
	case "eager":
		return adversary.Eager(b.D, b.Phases), nil
	case "balance":
		return adversary.Balance(b.X, b.K, b.Phases), nil
	case "universal":
		return adversary.Universal(b.D, b.Phases), nil
	case "universal_anyd":
		return adversary.UniversalAnyD(b.D, b.Phases), nil
	case "local_fix":
		return adversary.LocalFix(b.D, b.Phases), nil
	case "edf":
		return adversary.EDFWorstCase(b.D, b.Phases), nil
	case "uniform":
		return adversary.Construction{Trace: workload.Uniform(cfg)}, nil
	case "zipf":
		return adversary.Construction{Trace: workload.Zipf(cfg, b.S)}, nil
	case "bursty":
		return adversary.Construction{Trace: workload.Bursty(cfg, b.On, b.Off, b.Burst)}, nil
	case "single":
		return adversary.Construction{Trace: workload.SingleChoice(cfg)}, nil
	case "cchoice":
		return adversary.Construction{Trace: workload.CChoice(cfg, b.C)}, nil
	}
	return adversary.Construction{}, fmt.Errorf("grid: unknown build kind %q", b.Kind)
}

// knownKinds mirrors the Construction switch for cheap validation without
// materializing a trace.
var knownKinds = map[string]bool{
	"fix": true, "current": true, "fix_balance": true, "eager": true,
	"balance": true, "universal": true, "universal_anyd": true,
	"local_fix": true, "edf": true,
	"uniform": true, "zipf": true, "bursty": true, "single": true, "cchoice": true,
}

// newStrategy returns a fresh instance of the named strategy — the same
// registry reqsched.Strategies exposes (global + local strategies) — or nil.
func newStrategy(name string) core.Strategy {
	if s, ok := strategies.New()[name]; ok {
		return s
	}
	for _, s := range []core.Strategy{local.NewFix(), local.NewEager(), local.NewEagerWide()} {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// Validate checks that the spec names a known build kind and strategy without
// generating the input — the cheap pre-flight the runners do on the whole
// manifest before any work starts.
func (s Spec) Validate() error {
	if !knownKinds[s.Build.Kind] {
		return fmt.Errorf("grid: unknown build kind %q", s.Build.Kind)
	}
	if newStrategy(s.Strategy) == nil {
		return fmt.Errorf("grid: unknown strategy %q", s.Strategy)
	}
	return nil
}

// Job is one manifest entry: a spec plus its deterministic ID and its row
// position in the grid's output.
type Job struct {
	// Index is the job's position in the manifest (the output row order).
	Index int `json:"index"`
	// ID is the content-derived job identity the journal is keyed by.
	ID string `json:"id"`
	// Name is a human-readable label for logs and failure reports; it does
	// not participate in the ID.
	Name string `json:"name,omitempty"`
	// Spec is the serializable job description.
	Spec Spec `json:"spec"`
}

// specID derives the deterministic job ID: a truncated SHA-256 over the
// spec's canonical JSON encoding (struct field order is fixed, zero-valued
// parameters are omitted), salted with the occurrence counter when the same
// spec appears more than once in a manifest.
func specID(s Spec, occurrence int) string {
	b, err := json.Marshal(s)
	if err != nil { // a Spec is plain data; Marshal cannot fail
		panic(fmt.Sprintf("grid: marshal spec: %v", err))
	}
	if occurrence > 0 {
		b = append(b, fmt.Sprintf("#%d", occurrence)...)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// BuildManifest turns named specs into a validated manifest with
// deterministic IDs. names may be nil (unnamed jobs) or must match specs in
// length. Duplicate specs get occurrence-salted IDs, so every manifest entry
// is individually addressable in the journal.
func BuildManifest(specs []Spec, names []string) ([]Job, error) {
	if names != nil && len(names) != len(specs) {
		return nil, fmt.Errorf("grid: %d names for %d specs", len(names), len(specs))
	}
	jobs := make([]Job, len(specs))
	seen := make(map[string]int, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("grid: job %d: %w", i, err)
		}
		base := specID(s, 0)
		id := base
		if n := seen[base]; n > 0 {
			id = specID(s, n)
		}
		seen[base]++
		jobs[i] = Job{Index: i, ID: id, Spec: s}
		if names != nil {
			jobs[i].Name = names[i]
		}
	}
	return jobs, nil
}
