// Package grid is the fault-tolerant distributed execution layer for
// measurement grids: the paper's evaluation is a grid of (construction,
// strategy) cells, and a sweep that outgrows one process must survive
// workers that crash, hang, or return garbage. The package provides
//
//   - a serializable job description (Spec) with deterministic content-derived
//     job IDs, so the same grid built twice — or on two machines — names its
//     cells identically;
//   - an append-only JSONL checkpoint journal (Journal) with per-record
//     digests and torn-write detection, so an interrupted sweep resumes
//     bit-identically;
//   - a supervisor (Run) that drives gridworkers over a pluggable Transport —
//     subprocess pipes (PipeTransport) or TCP to remote hosts (TCPTransport,
//     with a versioned handshake, deadlines, backoff redial, and host-loss
//     requeueing) — speaking one JSONL protocol, with per-job wall-clock
//     deadlines, heartbeat liveness, exponential backoff with seeded jitter,
//     a bounded retry budget, at-most-once record acceptance, and
//     supervisor-side re-verification of every returned record;
//   - the worker side of both transports: WorkerMain (one pipe/connection)
//     and ServeWorker (the TCP accept loop behind `gridworker -listen`);
//   - an in-process runner (RunLocal) sharing the journal/resume semantics
//     but executing on the ratio worker pool — the -shard 0 path;
//   - a deterministic chaos layer (subpackage chaos) injecting kill, stall,
//     and corrupt-record process faults at fixed job indices plus
//     drop/stall/trunc/partition link faults at fixed protocol message
//     indices, used by the property tests proving single-fault schedules
//     reproduce the clean grid.
package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/registry"
)

// Spec describes one grid cell — a (construction, strategy) measurement — in
// a serializable, deterministic form. Unlike ratio.Job's closures, a Spec can
// cross a process boundary and derive a stable identity from its content.
type Spec struct {
	// Strategy names the online strategy (reqsched.Strategies key).
	Strategy string `json:"strategy"`
	// Build describes the adversarial construction or synthetic workload.
	Build BuildSpec `json:"build"`
}

// BuildSpec selects and parameterizes an input family. Kind names a
// registered adversary or workload component (internal/registry); the
// remaining fields are that component's parameters (unused ones stay zero
// and are omitted from the wire form, keeping IDs stable when new
// parameters are added). The field set is the union of every component's
// schema — the JSON tags are the registry parameter names, so a
// (component, params) record and a BuildSpec are two spellings of the same
// job.
type BuildSpec struct {
	// Kind is a registry adversary name ("fix", "current",
	// "current_factorial", "fix_balance", "eager", "balance", "universal",
	// "universal_anyd", "local_fix", "edf") or workload name ("uniform",
	// "zipf", "bursty", "video", "single", "cchoice", "mixed", "weighted",
	// "trapmix").
	Kind string `json:"kind"`
	// Adversary parameters (Table 1 families).
	D      int `json:"d,omitempty"`
	Phases int `json:"phases,omitempty"`
	L      int `json:"l,omitempty"`
	X      int `json:"x,omitempty"`
	K      int `json:"k,omitempty"`
	// Workload parameters (synthetic generators).
	N      int     `json:"n,omitempty"`
	Rounds int     `json:"rounds,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	S      float64 `json:"s,omitempty"`
	On     int     `json:"on,omitempty"`
	Off    int     `json:"off,omitempty"`
	Burst  float64 `json:"burst,omitempty"`
	C      int     `json:"c,omitempty"`
	// Extended workload parameters (video/weighted/trapmix families).
	Items     int `json:"items,omitempty"`
	MaxW      int `json:"maxw,omitempty"`
	TrapEvery int `json:"trap_every,omitempty"`
	// Service-model parameters (the registry ModelParams group and the
	// reusable/hold_squeeze families). Zero means unset — the unit model —
	// so pre-model specs keep their job IDs.
	Hold int     `json:"hold,omitempty"`
	Cap  int     `json:"cap,omitempty"`
	Load float64 `json:"load,omitempty"`
}

// specFields maps registry parameter names onto BuildSpec fields. Every
// parameter a registered adversary or workload declares must appear here
// (the registry parity test enforces it); the JSON tag of each field equals
// its key.
var specFields = map[string]struct {
	get func(*BuildSpec) registry.Value
	set func(*BuildSpec, registry.Value)
}{
	"d":      {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.D)) }, func(b *BuildSpec, v registry.Value) { b.D = int(v.I) }},
	"phases": {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.Phases)) }, func(b *BuildSpec, v registry.Value) { b.Phases = int(v.I) }},
	"l":      {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.L)) }, func(b *BuildSpec, v registry.Value) { b.L = int(v.I) }},
	"x":      {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.X)) }, func(b *BuildSpec, v registry.Value) { b.X = int(v.I) }},
	"k":      {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.K)) }, func(b *BuildSpec, v registry.Value) { b.K = int(v.I) }},
	"n":      {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.N)) }, func(b *BuildSpec, v registry.Value) { b.N = int(v.I) }},
	"rounds": {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.Rounds)) }, func(b *BuildSpec, v registry.Value) { b.Rounds = int(v.I) }},
	"rate":   {func(b *BuildSpec) registry.Value { return registry.FloatVal(b.Rate) }, func(b *BuildSpec, v registry.Value) { b.Rate = v.F }},
	"seed":   {func(b *BuildSpec) registry.Value { return registry.IntVal(b.Seed) }, func(b *BuildSpec, v registry.Value) { b.Seed = v.I }},
	"s":      {func(b *BuildSpec) registry.Value { return registry.FloatVal(b.S) }, func(b *BuildSpec, v registry.Value) { b.S = v.F }},
	"on":     {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.On)) }, func(b *BuildSpec, v registry.Value) { b.On = int(v.I) }},
	"off":    {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.Off)) }, func(b *BuildSpec, v registry.Value) { b.Off = int(v.I) }},
	"burst":  {func(b *BuildSpec) registry.Value { return registry.FloatVal(b.Burst) }, func(b *BuildSpec, v registry.Value) { b.Burst = v.F }},
	"c":      {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.C)) }, func(b *BuildSpec, v registry.Value) { b.C = int(v.I) }},
	"items":  {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.Items)) }, func(b *BuildSpec, v registry.Value) { b.Items = int(v.I) }},
	"maxw":   {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.MaxW)) }, func(b *BuildSpec, v registry.Value) { b.MaxW = int(v.I) }},
	"trap_every": {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.TrapEvery)) },
		func(b *BuildSpec, v registry.Value) { b.TrapEvery = int(v.I) }},
	"hold": {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.Hold)) }, func(b *BuildSpec, v registry.Value) { b.Hold = int(v.I) }},
	"cap":  {func(b *BuildSpec) registry.Value { return registry.IntVal(int64(b.Cap)) }, func(b *BuildSpec, v registry.Value) { b.Cap = int(v.I) }},
	"load": {func(b *BuildSpec) registry.Value { return registry.FloatVal(b.Load) }, func(b *BuildSpec, v registry.Value) { b.Load = v.F }},
}

// SpecFieldNames lists the registry parameter names BuildSpec can carry —
// exported for the parity test that pins every registered component's
// schema to the wire format.
func SpecFieldNames() []string {
	names := make([]string, 0, len(specFields))
	for name := range specFields {
		names = append(names, name)
	}
	return names
}

// Params extracts the spec's parameter set for its component's schema: one
// value per declared parameter, straight off the fields (zeros included —
// the wire format has no "omitted" distinct from zero).
func (b BuildSpec) Params() (registry.Params, error) {
	c, ok := registry.SourceComponent(b.Kind)
	if !ok {
		return nil, fmt.Errorf("grid: unknown build kind %q", b.Kind)
	}
	p := make(registry.Params, len(c.Params))
	for _, sp := range c.Params {
		f, ok := specFields[sp.Name]
		if !ok {
			return nil, fmt.Errorf("grid: %s %q parameter %q has no BuildSpec field", c.Kind, c.Name, sp.Name)
		}
		p[sp.Name] = f.get(&b)
	}
	return p, nil
}

// SpecFor builds the wire-format Spec for a (strategy, source, params)
// registry record — the declarative manifest entry. Unset parameters take
// the component's defaults, so the spec (and hence the job ID) is fully
// determined by the record.
func SpecFor(strategy, source string, p registry.Params) (Spec, error) {
	c, ok := registry.SourceComponent(source)
	if !ok {
		return Spec{}, fmt.Errorf("grid: unknown build kind %q", source)
	}
	full, err := c.Apply(p)
	if err != nil {
		return Spec{}, err
	}
	b := BuildSpec{Kind: source}
	for name, v := range full {
		f, ok := specFields[name]
		if !ok {
			return Spec{}, fmt.Errorf("grid: %s %q parameter %q has no BuildSpec field", c.Kind, c.Name, name)
		}
		f.set(&b, v)
	}
	s := Spec{Strategy: strategy, Build: b}
	return s, s.Validate()
}

// Construction materializes the input the spec describes by resolving its
// kind in the registry. Generation is deterministic: the same spec yields
// the same trace (or adaptive source) in every process, which is what makes
// cross-process measurements and resume runs bit-identical.
func (b BuildSpec) Construction() (adversary.Construction, error) {
	p, err := b.Params()
	if err != nil {
		return adversary.Construction{}, err
	}
	return registry.BuildSource(b.Kind, p)
}

// newStrategy returns a fresh instance of the strategy spec
// ("name[,key=value...]") from the registry, or nil. Bare names construct
// with default parameters, so pre-existing manifests (and their
// content-derived job IDs) are unchanged; parameterized specs such as
// "compose,router=greedy,order=sjf" hash to their own IDs.
func newStrategy(spec string) core.Strategy {
	s, err := registry.NewStrategySpec(spec)
	if err != nil {
		return nil
	}
	return s
}

// Validate checks that the spec names a known build kind and strategy, and
// that its parameters pass the component's schema, without generating the
// input — the cheap pre-flight the runners do on the whole manifest before
// any work starts.
func (s Spec) Validate() error {
	c, ok := registry.SourceComponent(s.Build.Kind)
	if !ok {
		return fmt.Errorf("grid: unknown build kind %q", s.Build.Kind)
	}
	p, err := s.Build.Params()
	if err != nil {
		return err
	}
	if err := c.Validate(p); err != nil {
		return fmt.Errorf("grid: %w", err)
	}
	if newStrategy(s.Strategy) == nil {
		return fmt.Errorf("grid: unknown strategy %q", s.Strategy)
	}
	return nil
}

// Job is one manifest entry: a spec plus its deterministic ID and its row
// position in the grid's output.
type Job struct {
	// Index is the job's position in the manifest (the output row order).
	Index int `json:"index"`
	// ID is the content-derived job identity the journal is keyed by.
	ID string `json:"id"`
	// Name is a human-readable label for logs and failure reports; it does
	// not participate in the ID.
	Name string `json:"name,omitempty"`
	// Spec is the serializable job description.
	Spec Spec `json:"spec"`
}

// specID derives the deterministic job ID: a truncated SHA-256 over the
// spec's canonical JSON encoding (struct field order is fixed, zero-valued
// parameters are omitted), salted with the occurrence counter when the same
// spec appears more than once in a manifest.
func specID(s Spec, occurrence int) string {
	b, err := json.Marshal(s)
	if err != nil { // a Spec is plain data; Marshal cannot fail
		panic(fmt.Sprintf("grid: marshal spec: %v", err))
	}
	if occurrence > 0 {
		b = append(b, fmt.Sprintf("#%d", occurrence)...)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// BuildManifest turns named specs into a validated manifest with
// deterministic IDs. names may be nil (unnamed jobs) or must match specs in
// length. Duplicate specs get occurrence-salted IDs, so every manifest entry
// is individually addressable in the journal.
func BuildManifest(specs []Spec, names []string) ([]Job, error) {
	if names != nil && len(names) != len(specs) {
		return nil, fmt.Errorf("grid: %d names for %d specs", len(names), len(specs))
	}
	jobs := make([]Job, len(specs))
	seen := make(map[string]int, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("grid: job %d: %w", i, err)
		}
		base := specID(s, 0)
		id := base
		if n := seen[base]; n > 0 {
			id = specID(s, n)
		}
		seen[base]++
		jobs[i] = Job{Index: i, ID: id, Spec: s}
		if names != nil {
			jobs[i].Name = names[i]
		}
	}
	return jobs, nil
}
