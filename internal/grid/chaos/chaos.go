// Package chaos is the deterministic fault-injection layer of the grid
// worker: a worker process can be armed — via environment variables, so the
// supervisor's spawn path is exercised unchanged — to die, hang, or emit a
// corrupt record at a fixed job index. Faults are deterministic (they fire at
// an exact job count, never at random) so property tests can enumerate every
// single-fault schedule and prove each one still yields the clean grid.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Environment variables arming a worker process.
const (
	// EnvSpec holds the fault spec: "kill:N", "stall:N", or "corrupt:N",
	// where N is the 0-based index of the job (within one worker process) the
	// fault fires at. Empty or unset: no faults.
	EnvSpec = "GRID_CHAOS"
	// EnvOnce names a flag file making the fault fire at most once globally:
	// the first firing claims the file (O_CREATE|O_EXCL), and respawned
	// workers that find it claimed run clean. Without it, a fault re-fires in
	// every respawned process — the "fault persists until the retry budget is
	// exhausted" schedule.
	EnvOnce = "GRID_CHAOS_ONCE"
)

// Fault modes.
const (
	// Kill exits the process without responding, as if SIGKILLed or OOMed:
	// the supervisor sees the stream end mid-job.
	Kill = "kill"
	// Stall hangs forever without heartbeats: the supervisor's liveness
	// timeout must reap it.
	Stall = "stall"
	// Corrupt returns the job's record with the measurement tampered after
	// sealing: the supervisor's digest check must reject it.
	Corrupt = "corrupt"
)

// Faults is one worker process's armed fault plan. The zero value (or a nil
// pointer) injects nothing.
type Faults struct {
	mode     string
	at       int
	oncePath string
}

// Parse builds a plan from a spec string ("mode:N") and an optional
// once-file path. An empty spec returns nil (no faults).
func Parse(spec, oncePath string) (*Faults, error) {
	if spec == "" {
		return nil, nil
	}
	mode, at, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("chaos: spec %q is not mode:N", spec)
	}
	if mode != Kill && mode != Stall && mode != Corrupt {
		return nil, fmt.Errorf("chaos: unknown fault mode %q", mode)
	}
	n, err := strconv.Atoi(at)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("chaos: bad job index %q", at)
	}
	return &Faults{mode: mode, at: n, oncePath: oncePath}, nil
}

// FromEnv builds the plan the supervisor armed via EnvSpec/EnvOnce.
func FromEnv() (*Faults, error) {
	return Parse(os.Getenv(EnvSpec), os.Getenv(EnvOnce))
}

// fires reports whether the given fault mode triggers for the jobIndex-th
// job of this process, claiming the once-file if one is configured.
func (f *Faults) fires(mode string, jobIndex int) bool {
	if f == nil || f.mode != mode || jobIndex != f.at {
		return false
	}
	if f.oncePath != "" {
		fd, err := os.OpenFile(f.oncePath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return false // already claimed by an earlier firing
		}
		fd.Close()
	}
	return true
}

// KillAt reports whether the process should die before answering job i.
func (f *Faults) KillAt(i int) bool { return f.fires(Kill, i) }

// StallAt reports whether the process should hang on job i.
func (f *Faults) StallAt(i int) bool { return f.fires(Stall, i) }

// CorruptAt reports whether job i's record should be tampered with.
func (f *Faults) CorruptAt(i int) bool { return f.fires(Corrupt, i) }
