// Package chaos is the deterministic fault-injection layer of the grid:
// a worker process can be armed — via environment variables, so the
// supervisor's spawn path is exercised unchanged — to die, hang, or emit a
// corrupt record at a fixed job index, and a network transport can be armed
// to drop, stall, truncate, or partition a worker link at a fixed protocol
// message index. Faults are deterministic (they fire at an exact job or
// message count, never at random) so property tests can enumerate every
// single-fault schedule and prove each one still yields the clean grid.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Environment variables arming a worker process.
const (
	// EnvSpec holds the fault spec: "kill:N", "stall:N", or "corrupt:N",
	// where N is the 0-based index of the job (within one worker process) the
	// fault fires at. Empty or unset: no faults.
	EnvSpec = "GRID_CHAOS"
	// EnvOnce names a flag file making the fault fire at most once globally:
	// the first firing claims the file (O_CREATE|O_EXCL), and respawned
	// workers that find it claimed run clean. Without it, a fault re-fires in
	// every respawned process — the "fault persists until the retry budget is
	// exhausted" schedule.
	EnvOnce = "GRID_CHAOS_ONCE"
	// EnvLink holds the supervisor-side transport link fault spec:
	// "mode:K[@link]", where mode is one of LinkDrop/LinkStall/LinkTrunc/
	// LinkPartition, K is the 0-based index of the protocol message the fault
	// fires at, and link is the 0-based worker address the fault is pinned to
	// (default 0). Empty or unset: no link faults.
	EnvLink = "GRID_CHAOS_LINK"
)

// Fault modes.
const (
	// Kill exits the process without responding, as if SIGKILLed or OOMed:
	// the supervisor sees the stream end mid-job.
	Kill = "kill"
	// Stall hangs forever without heartbeats: the supervisor's liveness
	// timeout must reap it.
	Stall = "stall"
	// Corrupt returns the job's record with the measurement tampered after
	// sealing: the supervisor's digest check must reject it.
	Corrupt = "corrupt"
)

// Link fault modes, injected at the supervisor's network transport. A link
// fault fires at most once per transport, so every armed schedule is a
// single-fault schedule.
const (
	// LinkDrop closes the connection at message k, as if the peer reset it:
	// the supervisor sees the stream end mid-job and retries.
	LinkDrop = "drop"
	// LinkStall silences the link at message k without closing it: messages
	// vanish in both directions while the connection looks healthy, so the
	// heartbeat liveness timeout must reap the slot.
	LinkStall = "stall"
	// LinkTrunc delivers only half of message k and then closes the
	// connection — a peer dying mid-write. Whichever side reads the torn
	// line must treat it as a dead peer, never as a parseable record.
	LinkTrunc = "trunc"
	// LinkPartition closes the connection at message k and makes every
	// further dial to that host fail: the host has disappeared. Its in-flight
	// jobs return to the queue and the sweep completes on surviving workers.
	LinkPartition = "partition"
)

// Faults is one worker process's armed fault plan. The zero value (or a nil
// pointer) injects nothing.
type Faults struct {
	mode     string
	at       int
	oncePath string
}

// Parse builds a plan from a spec string ("mode:N") and an optional
// once-file path. An empty spec returns nil (no faults).
func Parse(spec, oncePath string) (*Faults, error) {
	if spec == "" {
		return nil, nil
	}
	mode, at, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("chaos: spec %q is not mode:N", spec)
	}
	if mode != Kill && mode != Stall && mode != Corrupt {
		return nil, fmt.Errorf("chaos: unknown fault mode %q (valid: %s, %s, %s)", mode, Kill, Stall, Corrupt)
	}
	n, err := strconv.Atoi(at)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("chaos: bad job index %q", at)
	}
	return &Faults{mode: mode, at: n, oncePath: oncePath}, nil
}

// FromEnv builds the plan the supervisor armed via EnvSpec/EnvOnce.
func FromEnv() (*Faults, error) {
	return Parse(os.Getenv(EnvSpec), os.Getenv(EnvOnce))
}

// fires reports whether the given fault mode triggers for the jobIndex-th
// job of this process, claiming the once-file if one is configured.
func (f *Faults) fires(mode string, jobIndex int) bool {
	if f == nil || f.mode != mode || jobIndex != f.at {
		return false
	}
	if f.oncePath != "" {
		fd, err := os.OpenFile(f.oncePath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return false // already claimed by an earlier firing
		}
		fd.Close()
	}
	return true
}

// KillAt reports whether the process should die before answering job i.
func (f *Faults) KillAt(i int) bool { return f.fires(Kill, i) }

// LinkFaults is one armed transport link fault plan: Mode fires when protocol
// message number Msg (0-based, counted per link across reconnects) crosses
// the link to worker address number Link. The transport disarms the plan
// after one firing, except LinkPartition, which is permanent by nature. A nil
// plan injects nothing.
type LinkFaults struct {
	Mode string
	Msg  int
	Link int
}

// ParseLink builds a link fault plan from a spec string "mode:K[@link]". An
// empty spec (or the literal "none", for CI matrix convenience) returns nil.
// Unknown modes and malformed indices are errors naming the bad part — a
// misspelled fault must never be silently ignored.
func ParseLink(spec string) (*LinkFaults, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	mode, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("chaos: link spec %q is not mode:K[@link]", spec)
	}
	switch mode {
	case LinkDrop, LinkStall, LinkTrunc, LinkPartition:
	default:
		return nil, fmt.Errorf("chaos: unknown link fault mode %q (valid: %s, %s, %s, %s)",
			mode, LinkDrop, LinkStall, LinkTrunc, LinkPartition)
	}
	at, linkStr, hasLink := strings.Cut(rest, "@")
	k, err := strconv.Atoi(at)
	if err != nil || k < 0 {
		return nil, fmt.Errorf("chaos: bad link message index %q", at)
	}
	link := 0
	if hasLink {
		link, err = strconv.Atoi(linkStr)
		if err != nil || link < 0 {
			return nil, fmt.Errorf("chaos: bad link number %q", linkStr)
		}
	}
	return &LinkFaults{Mode: mode, Msg: k, Link: link}, nil
}

// LinkFromEnv builds the plan armed via EnvLink.
func LinkFromEnv() (*LinkFaults, error) {
	return ParseLink(os.Getenv(EnvLink))
}

// StallAt reports whether the process should hang on job i.
func (f *Faults) StallAt(i int) bool { return f.fires(Stall, i) }

// CorruptAt reports whether job i's record should be tampered with.
func (f *Faults) CorruptAt(i int) bool { return f.fires(Corrupt, i) }
