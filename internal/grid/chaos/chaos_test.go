package chaos

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRejectsUnknownMode(t *testing.T) {
	// An unknown fault mode must be a hard error naming the bad mode — a
	// misspelled chaos spec that silently injects nothing would make a
	// passing chaos suite meaningless.
	for _, spec := range []string{"explode:3", "Kill:1", "kil:0"} {
		f, err := Parse(spec, "")
		if err == nil || f != nil {
			t.Fatalf("Parse(%q) = %v, %v; want error", spec, f, err)
		}
		mode, _, _ := strings.Cut(spec, ":")
		if !strings.Contains(err.Error(), mode) {
			t.Fatalf("Parse(%q) error does not name the bad mode: %v", spec, err)
		}
		if !strings.Contains(err.Error(), Kill) {
			t.Fatalf("Parse(%q) error does not list the valid modes: %v", spec, err)
		}
	}
}

func TestParseRejectsBadIndexAndShape(t *testing.T) {
	for _, spec := range []string{"kill", "kill:", "kill:x", "kill:-1"} {
		if _, err := Parse(spec, ""); err == nil {
			t.Fatalf("Parse(%q) accepted a malformed spec", spec)
		}
	}
	f, err := Parse("stall:2", "")
	if err != nil || f == nil || !f.StallAt(2) || f.StallAt(1) || f.KillAt(2) {
		t.Fatalf("Parse(stall:2) = %+v, %v", f, err)
	}
}

func TestFromEnvPropagatesErrors(t *testing.T) {
	t.Setenv(EnvSpec, "frobnicate:1")
	if _, err := FromEnv(); err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Fatalf("FromEnv with unknown mode: err=%v, want error naming it", err)
	}
	t.Setenv(EnvSpec, "")
	if f, err := FromEnv(); err != nil || f != nil {
		t.Fatalf("FromEnv empty: %+v, %v", f, err)
	}
}

func TestParseLink(t *testing.T) {
	for _, spec := range []string{"", "none"} {
		if f, err := ParseLink(spec); err != nil || f != nil {
			t.Fatalf("ParseLink(%q) = %+v, %v; want nil, nil", spec, f, err)
		}
	}
	f, err := ParseLink("drop:5")
	if err != nil || f.Mode != LinkDrop || f.Msg != 5 || f.Link != 0 {
		t.Fatalf("ParseLink(drop:5) = %+v, %v", f, err)
	}
	f, err = ParseLink("partition:3@1")
	if err != nil || f.Mode != LinkPartition || f.Msg != 3 || f.Link != 1 {
		t.Fatalf("ParseLink(partition:3@1) = %+v, %v", f, err)
	}
}

func TestParseLinkRejectsUnknownMode(t *testing.T) {
	for _, spec := range []string{"sever:1", "drop", "drop:x", "drop:-1", "drop:1@x", "drop:1@-2"} {
		if _, err := ParseLink(spec); err == nil {
			t.Fatalf("ParseLink(%q) accepted a malformed spec", spec)
		}
	}
	_, err := ParseLink("sever:1")
	if !strings.Contains(err.Error(), "sever") || !strings.Contains(err.Error(), LinkPartition) {
		t.Fatalf("ParseLink(sever:1) error must name the bad mode and the valid ones: %v", err)
	}
	t.Setenv(EnvLink, "sever:1")
	if _, err := LinkFromEnv(); err == nil {
		t.Fatal("LinkFromEnv with unknown mode must error")
	}
}

func TestOnceFileClaimedAcrossPlans(t *testing.T) {
	once := filepath.Join(t.TempDir(), "fired")
	a, err := Parse("kill:0", once)
	if err != nil {
		t.Fatal(err)
	}
	if !a.KillAt(0) {
		t.Fatal("first firing should claim the once-file and fire")
	}
	b, _ := Parse("kill:0", once)
	if b.KillAt(0) {
		t.Fatal("second plan found the once-file claimed and must not fire")
	}
}
