package grid

import (
	"context"
	"errors"
	"sort"

	"reqsched/internal/adversary"
	"reqsched/internal/core"
	"reqsched/internal/ratio"
)

// RatioJobs converts a manifest into in-process measurement jobs for
// ratio.RunParallel — the unsharded, journal-free fast path of cmd/sweep.
// Inputs are rebuilt deterministically from the specs, so the measurements
// match the subprocess and resume paths bit for bit.
func RatioJobs(jobs []Job) []ratio.Job {
	out := make([]ratio.Job, len(jobs))
	for i, job := range jobs {
		job := job
		out[i] = ratio.Job{
			Name: job.Name,
			Build: func() adversary.Construction {
				c, err := job.Spec.Build.Construction()
				if err != nil {
					panic(err)
				}
				return c
			},
			Strategy: func() core.Strategy { return newStrategy(job.Spec.Strategy) },
		}
	}
	return out
}

// RunLocal executes the manifest in-process on the ratio worker pool — the
// -shard 0 path — with the same journal/resume semantics as the subprocess
// supervisor: journaled cells are folded without re-running, every completed
// cell is appended to the journal in manifest order, and cancellation drains
// in-flight jobs and flushes their checkpoints before returning, so a SIGINT
// loses no finished work. Measurements are bit-identical to
// ratio.RunParallel over the same manifest: both paths run
// ratio.MeasureConstruction on deterministically rebuilt inputs.
func RunLocal(ctx context.Context, jobs []Job, done map[string]Record, j *Journal, workers int) (*Report, error) {
	rep, pending, err := fold(jobs, done)
	if err != nil {
		return nil, err
	}
	if len(pending) == 0 {
		return rep, ctx.Err()
	}
	var jerrs []error
	rjobs := RatioJobs(jobs)
	runErr := ratio.RunStreamCtx(ctx, func(i int) (ratio.Job, bool) {
		if i >= len(pending) {
			return ratio.Job{}, false
		}
		return rjobs[pending[i]], true
	}, workers, func(i int, m ratio.Measurement) {
		idx := pending[i]
		rep.Measurements[idx] = m
		rep.Done[idx] = true
		if err := j.Append(Record{ID: jobs[idx].ID, M: MeasOf(m)}); err != nil {
			jerrs = append(jerrs, err)
		}
	})

	// Attribute in-process panics to their cells as explicit failures, the
	// same partial-grid semantics as the subprocess path (there is no retry
	// here: a panic on identical input is deterministic).
	panicMsg := make(map[int]string)
	collect := func(err error) {
		var jp *ratio.JobPanic
		if errors.As(err, &jp) {
			panicMsg[jp.Index] = jp.Error()
		}
	}
	if runErr != nil {
		if joined, ok := runErr.(interface{ Unwrap() []error }); ok {
			for _, e := range joined.Unwrap() {
				collect(e)
			}
		} else {
			collect(runErr)
		}
	}
	if ctx.Err() == nil {
		for i, idx := range pending {
			if !rep.Done[idx] {
				rep.Failures = append(rep.Failures, Failure{
					Index: idx, ID: jobs[idx].ID, Name: jobs[idx].Name,
					Attempts: 1, Err: panicMsg[i],
				})
			}
		}
		sort.Slice(rep.Failures, func(a, b int) bool { return rep.Failures[a].Index < rep.Failures[b].Index })
	}
	if len(jerrs) > 0 {
		return rep, errors.Join(jerrs...)
	}
	return rep, ctx.Err()
}
