package grid

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"reqsched/internal/ratio"
)

// Options configures the grid supervisor.
type Options struct {
	// Workers is the number of worker slots (<= 0: 1). Ignored when the
	// Transport pins its own slot count (the TCP transport runs one slot per
	// worker address).
	Workers int
	// Transport hands the supervisor worker connections. Nil selects the
	// pipe transport built from WorkerCmd/WorkerEnv.
	Transport Transport
	// WorkerCmd is the argv spawning one worker (required when Transport is
	// nil). The worker must speak the gridworker JSONL protocol on
	// stdin/stdout.
	WorkerCmd []string
	// WorkerEnv is appended to the inherited environment of each worker.
	WorkerEnv []string
	// Journal, when non-nil, receives every verified record as it completes.
	Journal *Journal
	// Done holds journaled records from a previous run (by job ID); their
	// cells are folded without re-running.
	Done map[string]Record
	// JobTimeout is the per-job wall-clock deadline (default 5m).
	JobTimeout time.Duration
	// Heartbeat is the maximum silence before a worker is declared dead and
	// reaped (default 15s). It must comfortably exceed the worker's beat
	// interval.
	Heartbeat time.Duration
	// Retries is how many times a failed cell is re-attempted after its
	// first failure before being marked failed (0: default 3). Negative
	// budgets are rejected by Validate; set NoRetries for a true zero budget.
	Retries int
	// NoRetries disables re-attempts entirely: every cell gets exactly one
	// try. It exists because Retries == 0 selects the default budget.
	NoRetries bool
	// BackoffBase and BackoffMax shape the exponential retry backoff
	// (defaults 100ms and 5s); Seed seeds its jitter.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Seed        int64
	// Log receives worker stderr and supervisor diagnostics (nil: discard).
	Log io.Writer
}

// Validate rejects option values that would silently misbehave — negative
// durations arm timers that fire immediately (or never), and a negative retry
// budget used to be a hidden "no retries" sentinel. Zero always means "use
// the default" and stays valid.
func (o *Options) Validate() error {
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"JobTimeout", o.JobTimeout},
		{"Heartbeat", o.Heartbeat},
		{"BackoffBase", o.BackoffBase},
		{"BackoffMax", o.BackoffMax},
	} {
		if d.v < 0 {
			return fmt.Errorf("grid: negative %s %s (zero selects the default)", d.name, d.v)
		}
	}
	if o.BackoffBase > 0 && o.BackoffMax > 0 && o.BackoffMax < o.BackoffBase {
		return fmt.Errorf("grid: BackoffMax %s below BackoffBase %s", o.BackoffMax, o.BackoffBase)
	}
	if o.Retries < 0 {
		return fmt.Errorf("grid: negative retry budget %d (set NoRetries for a zero budget)", o.Retries)
	}
	return nil
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = 1
	}
	if out.JobTimeout <= 0 {
		out.JobTimeout = 5 * time.Minute
	}
	if out.Heartbeat <= 0 {
		out.Heartbeat = 15 * time.Second
	}
	switch {
	case out.NoRetries || out.Retries < 0:
		out.Retries = 0
	case out.Retries == 0:
		out.Retries = 3
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 100 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 5 * time.Second
	}
	if out.Log == nil {
		out.Log = io.Discard
	}
	return out
}

// Failure is one grid cell that exhausted its retry budget. The grid still
// completes: sibling cells are unaffected, and the failure is reported
// explicitly instead of poisoning or silently dropping the row.
type Failure struct {
	Index    int
	ID       string
	Name     string
	Attempts int
	Err      string
}

// Report is the outcome of a grid run: measurements by manifest index (zero
// where Done[i] is false), provenance counters, and the explicit failure
// list.
type Report struct {
	Measurements []ratio.Measurement
	Done         []bool
	// FromJournal counts cells folded from the checkpoint journal without
	// re-running; Retried counts re-attempts after failures.
	FromJournal int
	Retried     int
	// Duplicates counts stale records discarded by at-most-once acceptance:
	// a retried job whose first attempt's record surfaces late is counted
	// here, never journaled twice.
	Duplicates int
	// LostHosts names worker hosts (sorted) that disappeared mid-run; their
	// in-flight cells were requeued onto survivors.
	LostHosts []string
	Failures  []Failure
}

// AllDone reports whether every cell completed.
func (r *Report) AllDone() bool {
	for _, d := range r.Done {
		if !d {
			return false
		}
	}
	return true
}

// FailureReport formats the failed cells for humans; empty when none failed.
func (r *Report) FailureReport() string {
	if len(r.Failures) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "grid: %d of %d cells failed after retries:\n", len(r.Failures), len(r.Done))
	for _, f := range r.Failures {
		name := f.Name
		if name == "" {
			name = f.ID
		}
		fmt.Fprintf(&b, "  cell %d (%s): %d attempts, last error: %s\n", f.Index, name, f.Attempts, f.Err)
	}
	if len(r.LostHosts) > 0 {
		fmt.Fprintf(&b, "  lost worker hosts: %s\n", strings.Join(r.LostHosts, ", "))
	}
	return b.String()
}

// fold seeds a report with journaled records and returns the indices still
// pending. A journaled record is re-verified before it is trusted — a
// corrupted checkpoint re-runs its cell rather than poisoning the grid.
func fold(jobs []Job, done map[string]Record) (*Report, []int, error) {
	rep := &Report{
		Measurements: make([]ratio.Measurement, len(jobs)),
		Done:         make([]bool, len(jobs)),
	}
	var pending []int
	for i, job := range jobs {
		if job.Index != i {
			return nil, nil, fmt.Errorf("grid: job %d has index %d (manifest must be in index order)", i, job.Index)
		}
		if err := job.Spec.Validate(); err != nil {
			return nil, nil, err
		}
		if rec, ok := done[job.ID]; ok && rec.Verify() == nil {
			rep.Measurements[i] = rec.M.ToMeasurement()
			rep.Done[i] = true
			rep.FromJournal++
			continue
		}
		pending = append(pending, i)
	}
	return rep, pending, nil
}

// slot is one supervisor worker slot: it owns at most one live worker
// connection and replaces it after any failure (a worker that timed out,
// died, or returned a bad record is never trusted with another job).
type slot struct {
	opts  *Options
	tr    Transport
	idx   int
	isDup func(id string) bool
	c     WorkerConn
}

func (s *slot) ensure(ctx context.Context) error {
	if s.c != nil {
		return nil
	}
	c, err := s.tr.Dial(ctx, s.idx)
	if err != nil {
		return err
	}
	s.c = c
	return nil
}

func (s *slot) recycle() {
	if s.c != nil {
		s.c.Close()
		s.c = nil
	}
}

// resetTimer safely re-arms a timer for d.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// attempt runs one job on the slot's worker once, enforcing the wall-clock
// deadline and heartbeat liveness, and re-verifying the returned record
// (digest + OPT/ALG invariants) before trusting it.
func (s *slot) attempt(ctx context.Context, job Job) (Record, error) {
	if err := s.ensure(ctx); err != nil {
		return Record{}, err
	}
	if err := s.c.Send(job); err != nil {
		return Record{}, fmt.Errorf("send job: %w", err)
	}
	deadline := time.NewTimer(s.opts.JobTimeout)
	defer deadline.Stop()
	hb := time.NewTimer(s.opts.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return Record{}, ctx.Err()
		case pl, ok := <-s.c.Lines():
			if !ok {
				return Record{}, errors.New("worker exited mid-job")
			}
			if pl.err != nil {
				return Record{}, fmt.Errorf("worker stream: %w", pl.err)
			}
			out := pl.out
			switch {
			case out.HB != "":
				if out.HB == job.ID {
					resetTimer(hb, s.opts.Heartbeat)
				}
				// Stale beats from a previous job are ignored: they prove the
				// process is alive but not that OUR job is progressing.
			case out.Err != nil:
				if out.Err.ID != job.ID {
					return Record{}, fmt.Errorf("error for wrong job %s (want %s)", out.Err.ID, job.ID)
				}
				return Record{}, fmt.Errorf("worker job error: %s", out.Err.Msg)
			case out.Result != nil:
				rec := *out.Result
				if rec.ID != job.ID {
					// At-most-once acceptance: a record for a job the grid
					// already accepted is a late duplicate (a retried job's
					// first attempt surfacing) — discard it and keep waiting
					// for ours. A record for an unknown job is a sick worker.
					if s.isDup != nil && s.isDup(rec.ID) {
						continue
					}
					return Record{}, fmt.Errorf("result for wrong job %s (want %s)", rec.ID, job.ID)
				}
				if err := rec.Verify(); err != nil {
					return Record{}, fmt.Errorf("rejected worker record: %w", err)
				}
				return rec, nil
			}
		case <-deadline.C:
			return Record{}, fmt.Errorf("job deadline %s exceeded", s.opts.JobTimeout)
		case <-hb.C:
			return Record{}, fmt.Errorf("no heartbeat within %s", s.opts.Heartbeat)
		}
	}
}

// runJob drives one job through the retry loop: exponential backoff with
// jitter between attempts, a fresh worker after every failure, and a bounded
// budget after which the cell is marked failed. A *HostLost error short-
// circuits the loop unretried — the host is gone for good, so the caller must
// requeue the job onto a surviving slot instead of burning its budget here.
// It returns the verified record, the number of attempts made, and the last
// error if the budget ran out.
func (s *slot) runJob(ctx context.Context, job Job, backoff func(attempt int) time.Duration) (Record, int, error) {
	var lastErr error
	for attempt := 0; attempt <= s.opts.Retries; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff(attempt))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return Record{}, attempt, errors.Join(lastErr, ctx.Err())
			}
		}
		if err := ctx.Err(); err != nil {
			return Record{}, attempt, errors.Join(lastErr, err)
		}
		rec, err := s.attempt(ctx, job)
		if err == nil {
			return rec, attempt + 1, nil
		}
		s.recycle()
		var hl *HostLost
		if errors.As(err, &hl) {
			return Record{}, attempt, err
		}
		lastErr = err
	}
	return Record{}, s.opts.Retries + 1, lastErr
}

// Run executes the manifest on a pool of worker slots, journaling every
// verified record as it completes. Cells already present (and verifiable) in
// opts.Done are folded without re-running, which is what makes an interrupted
// grid resume bit-identically. Cancellation stops dispatching and returns
// ctx's error with the partial report — everything already journaled
// survives. Cells that exhaust their retry budget appear in Report.Failures;
// a worker host that disappears mid-run retires its slot, returns its
// in-flight cell to the queue, and is named in Report.LostHosts — the sweep
// completes on survivors, and only fails (explicitly) once every host is
// gone. Run returns a non-ctx error only for invalid options or
// infrastructure failures (journal write errors).
func Run(ctx context.Context, jobs []Job, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	rep, pending, err := fold(jobs, o.Done)
	if err != nil {
		return nil, err
	}
	if len(pending) == 0 {
		return rep, ctx.Err()
	}
	tr := o.Transport
	if tr == nil {
		tr = &PipeTransport{Cmd: o.WorkerCmd, Env: o.WorkerEnv, Log: o.Log}
	}
	workers := o.Workers
	if n := tr.Slots(); n > 0 {
		workers = n
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var mu sync.Mutex // guards rep, accepted, hardErrs, rng, remaining, live
	var hardErrs []error
	rng := rand.New(rand.NewSource(o.Seed))
	backoff := func(attempt int) time.Duration {
		d := o.BackoffBase << (attempt - 1)
		if d > o.BackoffMax || d <= 0 {
			d = o.BackoffMax
		}
		mu.Lock()
		j := time.Duration(rng.Int63n(int64(d)/2 + 1))
		mu.Unlock()
		return d + j
	}

	// accepted is the at-most-once gate: one entry per record the grid has
	// taken (folded from the journal or accepted live). Late duplicates —
	// a retried job's first attempt surfacing after the retry already
	// succeeded — are counted and discarded, never double-journaled.
	accepted := make(map[string]bool, len(jobs))
	for i, d := range rep.Done {
		if d {
			accepted[jobs[i].ID] = true
		}
	}
	isDup := func(id string) bool {
		mu.Lock()
		defer mu.Unlock()
		if !accepted[id] {
			return false
		}
		rep.Duplicates++
		return true
	}

	// The queue is buffered to hold every pending cell so a retiring slot can
	// requeue its in-flight cell without blocking; done closes when the last
	// cell reaches a terminal state (accepted or failed).
	queue := make(chan int, len(jobs))
	for _, idx := range pending {
		queue <- idx
	}
	remaining := len(pending)
	done := make(chan struct{})
	finishJob := func() { // callers hold mu
		remaining--
		if remaining == 0 {
			close(done)
		}
	}
	live := workers

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slotIdx int) {
			defer wg.Done()
			s := &slot{opts: &o, tr: tr, idx: slotIdx, isDup: isDup}
			defer s.recycle()
			for {
				var idx int
				select {
				case <-ctx.Done():
					return
				case <-done:
					return
				case idx = <-queue:
				}
				rec, attempts, err := s.runJob(ctx, jobs[idx], backoff)
				var hl *HostLost
				if err != nil && ctx.Err() == nil && errors.As(err, &hl) {
					// The slot's host is gone for good: hand the cell back to
					// the queue for survivors and retire this slot. The queue
					// requeue and the live decrement happen under one mutex
					// hold so the last retiring slot sees every handed-back
					// cell when it drains.
					mu.Lock()
					rep.Retried += attempts
					queue <- idx
					rep.LostHosts = append(rep.LostHosts, hl.Host)
					live--
					fmt.Fprintf(o.Log, "grid: worker host %s lost: %v; requeueing cell %d on survivors\n", hl.Host, hl.Err, idx)
					if live == 0 {
						reason := fmt.Sprintf("all worker hosts lost (%s)", joinSorted(rep.LostHosts))
					drain:
						for {
							select {
							case i := <-queue:
								rep.Failures = append(rep.Failures, Failure{
									Index: i, ID: jobs[i].ID, Name: jobs[i].Name,
									Attempts: 0, Err: reason,
								})
								finishJob()
							default:
								break drain
							}
						}
						fmt.Fprintf(o.Log, "grid: %s; failing %d remaining cells\n", reason, len(rep.Failures))
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				rep.Retried += attempts - 1
				if err != nil {
					if ctx.Err() == nil {
						rep.Failures = append(rep.Failures, Failure{
							Index: idx, ID: jobs[idx].ID, Name: jobs[idx].Name,
							Attempts: attempts, Err: err.Error(),
						})
						fmt.Fprintf(o.Log, "grid: cell %d (%s) failed after %d attempts: %v\n",
							idx, jobs[idx].ID, attempts, err)
						finishJob()
					}
					mu.Unlock()
					continue
				}
				rep.Measurements[idx] = rec.M.ToMeasurement()
				rep.Done[idx] = true
				accepted[jobs[idx].ID] = true
				finishJob()
				mu.Unlock()
				if jerr := o.Journal.Append(rec); jerr != nil {
					mu.Lock()
					hardErrs = append(hardErrs, jerr)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	sort.Slice(rep.Failures, func(i, j int) bool { return rep.Failures[i].Index < rep.Failures[j].Index })
	rep.LostHosts = dedupSorted(rep.LostHosts)
	if len(hardErrs) > 0 {
		return rep, errors.Join(hardErrs...)
	}
	return rep, ctx.Err()
}

func joinSorted(hosts []string) string {
	return strings.Join(dedupSorted(append([]string(nil), hosts...)), ", ")
}

func dedupSorted(hosts []string) []string {
	sort.Strings(hosts)
	out := hosts[:0]
	for i, h := range hosts {
		if i == 0 || hosts[i-1] != h {
			out = append(out, h)
		}
	}
	return out
}
