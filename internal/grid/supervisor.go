package grid

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"reqsched/internal/ratio"
)

// Options configures the subprocess supervisor.
type Options struct {
	// Workers is the number of worker subprocesses (<= 0: 1).
	Workers int
	// WorkerCmd is the argv spawning one worker (required). The worker must
	// speak the gridworker JSONL protocol on stdin/stdout.
	WorkerCmd []string
	// WorkerEnv is appended to the inherited environment of each worker.
	WorkerEnv []string
	// Journal, when non-nil, receives every verified record as it completes.
	Journal *Journal
	// Done holds journaled records from a previous run (by job ID); their
	// cells are folded without re-running.
	Done map[string]Record
	// JobTimeout is the per-job wall-clock deadline (default 5m).
	JobTimeout time.Duration
	// Heartbeat is the maximum silence before a worker is declared dead and
	// reaped (default 15s). It must comfortably exceed the worker's beat
	// interval.
	Heartbeat time.Duration
	// Retries is how many times a failed cell is re-attempted after its
	// first failure before being marked failed (0: default 3; negative:
	// no retries).
	Retries int
	// BackoffBase and BackoffMax shape the exponential retry backoff
	// (defaults 100ms and 5s); Seed seeds its jitter.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Seed        int64
	// Log receives worker stderr and supervisor diagnostics (nil: discard).
	Log io.Writer
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = 1
	}
	if out.JobTimeout <= 0 {
		out.JobTimeout = 5 * time.Minute
	}
	if out.Heartbeat <= 0 {
		out.Heartbeat = 15 * time.Second
	}
	if out.Retries < 0 {
		out.Retries = 0
	} else if out.Retries == 0 {
		out.Retries = 3
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 100 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 5 * time.Second
	}
	if out.Log == nil {
		out.Log = io.Discard
	}
	return out
}

// Failure is one grid cell that exhausted its retry budget. The grid still
// completes: sibling cells are unaffected, and the failure is reported
// explicitly instead of poisoning or silently dropping the row.
type Failure struct {
	Index    int
	ID       string
	Name     string
	Attempts int
	Err      string
}

// Report is the outcome of a grid run: measurements by manifest index (zero
// where Done[i] is false), provenance counters, and the explicit failure
// list.
type Report struct {
	Measurements []ratio.Measurement
	Done         []bool
	// FromJournal counts cells folded from the checkpoint journal without
	// re-running; Retried counts re-attempts after failures.
	FromJournal int
	Retried     int
	Failures    []Failure
}

// AllDone reports whether every cell completed.
func (r *Report) AllDone() bool {
	for _, d := range r.Done {
		if !d {
			return false
		}
	}
	return true
}

// FailureReport formats the failed cells for humans; empty when none failed.
func (r *Report) FailureReport() string {
	if len(r.Failures) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "grid: %d of %d cells failed after retries:\n", len(r.Failures), len(r.Done))
	for _, f := range r.Failures {
		name := f.Name
		if name == "" {
			name = f.ID
		}
		fmt.Fprintf(&b, "  cell %d (%s): %d attempts, last error: %s\n", f.Index, name, f.Attempts, f.Err)
	}
	return b.String()
}

// fold seeds a report with journaled records and returns the indices still
// pending. A journaled record is re-verified before it is trusted — a
// corrupted checkpoint re-runs its cell rather than poisoning the grid.
func fold(jobs []Job, done map[string]Record) (*Report, []int, error) {
	rep := &Report{
		Measurements: make([]ratio.Measurement, len(jobs)),
		Done:         make([]bool, len(jobs)),
	}
	var pending []int
	for i, job := range jobs {
		if job.Index != i {
			return nil, nil, fmt.Errorf("grid: job %d has index %d (manifest must be in index order)", i, job.Index)
		}
		if err := job.Spec.Validate(); err != nil {
			return nil, nil, err
		}
		if rec, ok := done[job.ID]; ok && rec.Verify() == nil {
			rep.Measurements[i] = rec.M.ToMeasurement()
			rep.Done[i] = true
			rep.FromJournal++
			continue
		}
		pending = append(pending, i)
	}
	return rep, pending, nil
}

// procLine is one parsed worker stdout line, or the read error that ended
// the stream.
type procLine struct {
	out workerOut
	err error
}

// proc is one live worker subprocess.
type proc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan procLine
}

func spawnWorker(o *Options) (*proc, error) {
	if len(o.WorkerCmd) == 0 {
		return nil, errors.New("grid: no worker command configured")
	}
	cmd := exec.Command(o.WorkerCmd[0], o.WorkerCmd[1:]...)
	cmd.Env = append(os.Environ(), o.WorkerEnv...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = o.Log
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("grid: spawn worker: %w", err)
	}
	p := &proc{cmd: cmd, stdin: stdin, lines: make(chan procLine, 4)}
	go func() {
		defer close(p.lines)
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var out workerOut
			if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
				// A worker emitting unparseable lines is sick: report and
				// stop reading; the supervisor reaps and respawns.
				p.lines <- procLine{err: fmt.Errorf("unparseable worker line: %w", err)}
				return
			}
			p.lines <- procLine{out: out}
		}
		if err := sc.Err(); err != nil {
			p.lines <- procLine{err: err}
		}
	}()
	return p, nil
}

// send writes one job line to the worker.
func (p *proc) send(job Job) error {
	line, err := json.Marshal(workerIn{Job: &job})
	if err != nil {
		return err
	}
	_, err = p.stdin.Write(append(line, '\n'))
	return err
}

// kill tears the worker down and reaps it.
func (p *proc) kill() {
	p.stdin.Close()
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	p.cmd.Wait()
	// Drain the reader goroutine so it can exit.
	for range p.lines {
	}
}

// slot is one supervisor worker slot: it owns at most one live subprocess
// and replaces it after any failure (a worker that timed out, died, or
// returned a bad record is never trusted with another job).
type slot struct {
	opts *Options
	p    *proc
}

func (s *slot) ensure() error {
	if s.p != nil {
		return nil
	}
	p, err := spawnWorker(s.opts)
	if err != nil {
		return err
	}
	s.p = p
	return nil
}

func (s *slot) recycle() {
	if s.p != nil {
		s.p.kill()
		s.p = nil
	}
}

// resetTimer safely re-arms a timer for d.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// attempt runs one job on the slot's worker once, enforcing the wall-clock
// deadline and heartbeat liveness, and re-verifying the returned record
// (digest + OPT/ALG invariants) before trusting it.
func (s *slot) attempt(ctx context.Context, job Job) (Record, error) {
	if err := s.ensure(); err != nil {
		return Record{}, err
	}
	if err := s.p.send(job); err != nil {
		return Record{}, fmt.Errorf("send job: %w", err)
	}
	deadline := time.NewTimer(s.opts.JobTimeout)
	defer deadline.Stop()
	hb := time.NewTimer(s.opts.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return Record{}, ctx.Err()
		case pl, ok := <-s.p.lines:
			if !ok {
				return Record{}, errors.New("worker exited mid-job")
			}
			if pl.err != nil {
				return Record{}, fmt.Errorf("worker stream: %w", pl.err)
			}
			out := pl.out
			switch {
			case out.HB != "":
				if out.HB == job.ID {
					resetTimer(hb, s.opts.Heartbeat)
				}
				// Stale beats from a previous job are ignored: they prove the
				// process is alive but not that OUR job is progressing.
			case out.Err != nil:
				if out.Err.ID != job.ID {
					return Record{}, fmt.Errorf("error for wrong job %s (want %s)", out.Err.ID, job.ID)
				}
				return Record{}, fmt.Errorf("worker job error: %s", out.Err.Msg)
			case out.Result != nil:
				rec := *out.Result
				if rec.ID != job.ID {
					return Record{}, fmt.Errorf("result for wrong job %s (want %s)", rec.ID, job.ID)
				}
				if err := rec.Verify(); err != nil {
					return Record{}, fmt.Errorf("rejected worker record: %w", err)
				}
				return rec, nil
			}
		case <-deadline.C:
			return Record{}, fmt.Errorf("job deadline %s exceeded", s.opts.JobTimeout)
		case <-hb.C:
			return Record{}, fmt.Errorf("no heartbeat within %s", s.opts.Heartbeat)
		}
	}
}

// runJob drives one job through the retry loop: exponential backoff with
// jitter between attempts, a fresh worker after every failure, and a bounded
// budget after which the cell is marked failed. It returns the verified
// record, the number of attempts made, and the last error if the budget ran
// out.
func (s *slot) runJob(ctx context.Context, job Job, backoff func(attempt int) time.Duration) (Record, int, error) {
	var lastErr error
	for attempt := 0; attempt <= s.opts.Retries; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff(attempt))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return Record{}, attempt, errors.Join(lastErr, ctx.Err())
			}
		}
		if err := ctx.Err(); err != nil {
			return Record{}, attempt, errors.Join(lastErr, err)
		}
		rec, err := s.attempt(ctx, job)
		if err == nil {
			return rec, attempt + 1, nil
		}
		lastErr = err
		s.recycle()
	}
	return Record{}, s.opts.Retries + 1, lastErr
}

// Run executes the manifest on a pool of worker subprocesses, journaling
// every verified record as it completes. Cells already present (and
// verifiable) in opts.Done are folded without re-running, which is what
// makes an interrupted grid resume bit-identically. Cancellation stops
// dispatching and returns ctx's error with the partial report — everything
// already journaled survives. Cells that exhaust their retry budget appear
// in Report.Failures; Run only returns a non-ctx error for infrastructure
// failures (unspawnable workers with nothing completed, journal write
// errors).
func Run(ctx context.Context, jobs []Job, opts Options) (*Report, error) {
	o := opts.withDefaults()
	rep, pending, err := fold(jobs, o.Done)
	if err != nil {
		return nil, err
	}
	if len(pending) == 0 {
		return rep, ctx.Err()
	}
	workers := o.Workers
	if workers > len(pending) {
		workers = len(pending)
	}

	var mu sync.Mutex // guards rep, hardErrs, rng
	var hardErrs []error
	rng := rand.New(rand.NewSource(o.Seed))
	backoff := func(attempt int) time.Duration {
		d := o.BackoffBase << (attempt - 1)
		if d > o.BackoffMax || d <= 0 {
			d = o.BackoffMax
		}
		mu.Lock()
		j := time.Duration(rng.Int63n(int64(d)/2 + 1))
		mu.Unlock()
		return d + j
	}

	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &slot{opts: &o}
			defer s.recycle()
			for idx := range queue {
				rec, attempts, err := s.runJob(ctx, jobs[idx], backoff)
				mu.Lock()
				rep.Retried += attempts - 1
				if err != nil {
					if ctx.Err() == nil {
						rep.Failures = append(rep.Failures, Failure{
							Index: idx, ID: jobs[idx].ID, Name: jobs[idx].Name,
							Attempts: attempts, Err: err.Error(),
						})
						fmt.Fprintf(o.Log, "grid: cell %d (%s) failed after %d attempts: %v\n",
							idx, jobs[idx].ID, attempts, err)
					}
					mu.Unlock()
					continue
				}
				rep.Measurements[idx] = rec.M.ToMeasurement()
				rep.Done[idx] = true
				mu.Unlock()
				if jerr := o.Journal.Append(rec); jerr != nil {
					mu.Lock()
					hardErrs = append(hardErrs, jerr)
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for _, idx := range pending {
		select {
		case queue <- idx:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(queue)
	wg.Wait()

	sort.Slice(rep.Failures, func(i, j int) bool { return rep.Failures[i].Index < rep.Failures[j].Index })
	if len(hardErrs) > 0 {
		return rep, errors.Join(hardErrs...)
	}
	return rep, ctx.Err()
}
