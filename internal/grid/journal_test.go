package grid

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reqsched/internal/ratio"
)

func sampleRecord(id string, opt, alg int) Record {
	r := Record{ID: id, M: MeasOf(ratio.Measurement{
		Strategy: "A_fix", Input: "fix/d=4", N: 5, D: 4,
		OPT: opt, ALG: alg, Expired: opt - alg, Bound: 1.75,
	})}
	r.Seal()
	return r
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, done, scan, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 || scan.Lines != 0 {
		t.Fatalf("fresh journal not empty: done=%d scan=%+v", len(done), scan)
	}
	recs := []Record{sampleRecord("aaaa", 8, 5), sampleRecord("bbbb", 12, 12)}
	for _, r := range recs {
		if err := j.Append(Record{ID: r.ID, M: r.M}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, done, scan, err = OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if scan.TornOffset >= 0 || scan.Skipped != 0 || len(done) != 2 {
		t.Fatalf("reload: done=%d scan=%+v", len(done), scan)
	}
	for _, r := range recs {
		got, ok := done[r.ID]
		if !ok {
			t.Fatalf("record %s lost", r.ID)
		}
		if got.M != r.M || got.Digest != r.Digest {
			t.Fatalf("record %s mutated: %+v vs %+v", r.ID, got, r)
		}
		if got.M.ToMeasurement() != r.M.ToMeasurement() {
			t.Fatalf("measurement round-trip differs for %s", r.ID)
		}
	}
}

func TestOpenJournalRefusesNonEmptyWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _, _, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{ID: "x", M: sampleRecord("x", 3, 3).M}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, _, err := OpenJournal(path, false); err == nil {
		t.Fatal("OpenJournal overwrote a non-empty journal without -resume")
	}
}

func TestOpenJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _, _, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{ID: "x", M: sampleRecord("x", 3, 3).M}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	intact := int64(len(b))
	// Simulate a crash mid-append: half a second record, no newline.
	if err := os.WriteFile(path, append(b, b[:len(b)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	j, done, scan, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if scan.TornOffset != intact || len(done) != 1 {
		t.Fatalf("torn resume: done=%d scan=%+v want offset %d", len(done), scan, intact)
	}
	// The torn bytes must be gone so the next append starts a clean line.
	if err := j.Append(Record{ID: "y", M: sampleRecord("y", 7, 6).M}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, done, scan, err = OpenJournal(path, true)
	if err != nil || scan.TornOffset >= 0 || scan.Skipped != 0 || len(done) != 2 {
		t.Fatalf("after truncate+append: done=%d scan=%+v err=%v", len(done), scan, err)
	}
}

func TestReadJournalSkipsCorruptTerminatedLines(t *testing.T) {
	good := sampleRecord("good", 9, 8)
	tampered := sampleRecord("bad", 9, 8)
	tampered.M.ALG = 1 // digest now stale
	var sb strings.Builder
	writeRec := func(r Record) {
		b, _ := json.Marshal(r)
		sb.Write(b)
		sb.WriteByte('\n')
	}
	writeRec(good)
	writeRec(tampered)
	sb.WriteString("not json at all\n")
	writeRec(Record{ID: "neg", M: Meas{N: 2, D: 1, OPT: 3, ALG: 5}}) // ALG > OPT, unsealed
	recs, scan, err := ReadJournal(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "good" {
		t.Fatalf("recs = %+v", recs)
	}
	if scan.Skipped != 3 || scan.TornOffset >= 0 {
		t.Fatalf("scan = %+v, want 3 skipped and no torn tail", scan)
	}
}

func TestRecordVerifyInvariants(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"alg_above_opt", func(r *Record) { r.M.ALG = r.M.OPT + 1; r.Seal() }},
		{"negative_expired", func(r *Record) { r.M.Expired = -1; r.Seal() }},
		{"zero_n", func(r *Record) { r.M.N = 0; r.Seal() }},
		{"stale_digest", func(r *Record) { r.M.ALG-- }},
		{"missing_id", func(r *Record) { r.ID = ""; r.Seal() }},
	}
	for _, tc := range cases {
		r := sampleRecord("abcd", 10, 7)
		if err := r.Verify(); err != nil {
			t.Fatalf("%s: clean record rejected: %v", tc.name, err)
		}
		tc.mutate(&r)
		if err := r.Verify(); err == nil {
			t.Errorf("%s: tampered record passed verification", tc.name)
		}
	}
}
