package grid

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
)

// procLine is one parsed worker protocol line, or the error that ended the
// stream. A closed Lines channel means the worker (or its connection) is
// gone.
type procLine struct {
	out workerOut
	err error
}

// WorkerConn is one live connection to a gridworker: job lines go down,
// parsed heartbeat/result/error lines come back. A connection serves at most
// one job at a time and is discarded after any failure — the supervisor never
// trusts a connection that misbehaved with another job.
type WorkerConn interface {
	// Send writes one job line to the worker.
	Send(job Job) error
	// Lines is the worker's response stream; it is closed when the
	// connection ends.
	Lines() <-chan procLine
	// Close tears the connection down (and, for pipe transports, reaps the
	// subprocess). It must unblock a pending read and may be called from a
	// goroutine other than the reader's.
	Close()
	// Addr names the worker endpoint for logs and failure reports.
	Addr() string
}

// Transport hands the supervisor worker connections. Implementations own the
// reconnect policy: Dial blocks through redial backoff and returns *HostLost
// only once the endpoint is deemed gone for good, at which point the
// supervisor requeues the slot's in-flight job and retires the slot.
type Transport interface {
	// Dial obtains a fresh worker connection for the given supervisor slot.
	Dial(ctx context.Context, slot int) (WorkerConn, error)
	// Slots is the transport's natural concurrency (0: the caller's
	// Options.Workers decides). The TCP transport pins one slot per worker
	// address.
	Slots() int
}

// HostLost is the error a Transport returns when a worker endpoint is gone
// for good — unreachable past the redial budget, partitioned, or speaking an
// incompatible protocol. The supervisor reacts by returning the slot's
// in-flight job to the queue and completing the sweep on surviving workers;
// the failure report names the lost host.
type HostLost struct {
	Host string
	Err  error
}

func (e *HostLost) Error() string {
	return fmt.Sprintf("grid: worker host %s lost: %v", e.Host, e.Err)
}

func (e *HostLost) Unwrap() error { return e.Err }

// PipeTransport spawns gridworker subprocesses speaking the JSONL protocol
// over stdin/stdout — the single-machine transport. Every Dial is a fresh
// process; there is no redial policy, so a spawn failure is an ordinary
// (retry-budgeted) error, never a HostLost.
type PipeTransport struct {
	// Cmd is the argv spawning one worker (required).
	Cmd []string
	// Env is appended to the inherited environment of each worker.
	Env []string
	// Log receives worker stderr (nil: discard).
	Log io.Writer
}

func (t *PipeTransport) Slots() int { return 0 }

func (t *PipeTransport) Dial(ctx context.Context, slot int) (WorkerConn, error) {
	if len(t.Cmd) == 0 {
		return nil, errors.New("grid: no worker command configured")
	}
	log := t.Log
	if log == nil {
		log = io.Discard
	}
	cmd := exec.Command(t.Cmd[0], t.Cmd[1:]...)
	cmd.Env = append(os.Environ(), t.Env...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = log
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("grid: spawn worker: %w", err)
	}
	p := &proc{cmd: cmd, stdin: stdin, lines: make(chan procLine, 4)}
	go func() {
		defer close(p.lines)
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var out workerOut
			if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
				// A worker emitting unparseable lines is sick: report and
				// stop reading; the supervisor reaps and respawns.
				p.lines <- procLine{err: fmt.Errorf("unparseable worker line: %w", err)}
				return
			}
			p.lines <- procLine{out: out}
		}
		if err := sc.Err(); err != nil {
			p.lines <- procLine{err: err}
		}
	}()
	return p, nil
}

// proc is one live worker subprocess.
type proc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan procLine
}

func (p *proc) Send(job Job) error {
	line, err := json.Marshal(workerIn{Job: &job})
	if err != nil {
		return err
	}
	_, err = p.stdin.Write(append(line, '\n'))
	return err
}

func (p *proc) Lines() <-chan procLine { return p.lines }

func (p *proc) Addr() string {
	if p.cmd.Process != nil {
		return fmt.Sprintf("pipe:%d", p.cmd.Process.Pid)
	}
	return "pipe"
}

// Close tears the worker down and reaps it.
func (p *proc) Close() {
	p.stdin.Close()
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	p.cmd.Wait()
	// Drain the reader goroutine so it can exit.
	for range p.lines {
	}
}
