package grid

import (
	"strings"
	"testing"
)

func TestBuildManifestDeterministicIDs(t *testing.T) {
	specs := []Spec{
		{Strategy: "A_fix", Build: BuildSpec{Kind: "fix", D: 4, Phases: 8}},
		{Strategy: "A_current", Build: BuildSpec{Kind: "current", L: 3, Phases: 5}},
	}
	a, err := BuildManifest(specs, []string{"fix4", "cur3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildManifest(specs, []string{"fix4", "cur3"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("job %d: ID not deterministic: %s vs %s", i, a[i].ID, b[i].ID)
		}
		if a[i].Index != i {
			t.Fatalf("job %d has Index %d", i, a[i].Index)
		}
		if len(a[i].ID) != 16 {
			t.Fatalf("job %d: ID %q is not 16 hex chars", i, a[i].ID)
		}
	}
	if a[0].ID == a[1].ID {
		t.Fatal("distinct specs share an ID")
	}
	// IDs derive from content, not position: reordering preserves them.
	rev, err := BuildManifest([]Spec{specs[1], specs[0]}, []string{"cur3", "fix4"})
	if err != nil {
		t.Fatal(err)
	}
	if rev[0].ID != a[1].ID || rev[1].ID != a[0].ID {
		t.Fatal("IDs changed when the manifest was reordered")
	}
}

func TestBuildManifestSaltsDuplicateSpecs(t *testing.T) {
	s := Spec{Strategy: "A_fix", Build: BuildSpec{Kind: "fix", D: 4, Phases: 8}}
	jobs, err := BuildManifest([]Spec{s, s, s}, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate spec produced duplicate ID %s", j.ID)
		}
		seen[j.ID] = true
	}
	// Salting is itself deterministic.
	again, err := BuildManifest([]Spec{s, s, s}, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].ID != again[i].ID {
			t.Fatalf("salted ID %d not stable", i)
		}
	}
}

func TestSpecValidateRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown_strategy", Spec{Strategy: "nope", Build: BuildSpec{Kind: "fix", D: 2, Phases: 1}}, "strategy"},
		{"unknown_kind", Spec{Strategy: "A_fix", Build: BuildSpec{Kind: "mystery", D: 2}}, "kind"},
		{"empty_kind", Spec{Strategy: "A_fix"}, "kind"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := BuildManifest([]Spec{{Strategy: "nope", Build: BuildSpec{Kind: "fix", D: 2}}}, []string{"x"}); err == nil {
		t.Error("BuildManifest accepted an invalid spec")
	}
}
