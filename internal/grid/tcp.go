package grid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"reqsched/internal/grid/chaos"
)

// ProtoVersion is the gridworker wire protocol version. Both ends exchange it
// in the TCP handshake before any job flows; bump it whenever the JSONL
// job/record/heartbeat protocol changes shape, so a supervisor never feeds
// jobs to a worker that parses them differently.
const ProtoVersion = 1

// handshakeTimeout bounds the hello exchange on both sides: a peer that
// connects but never completes the handshake is dropped, not waited on.
const handshakeTimeout = 10 * time.Second

// helloLine is the handshake line both ends exchange on a fresh TCP
// connection: the supervisor speaks first, the worker answers. Each side
// reports its own protocol version; a mismatch is a permanent error (the
// host is marked lost), never a retry.
type helloLine struct {
	Hello *hello `json:"hello"`
}

type hello struct {
	Proto int    `json:"proto"`
	Peer  string `json:"peer,omitempty"`
}

// protoError is a handshake version mismatch — permanent, not retryable.
type protoError struct{ got int }

func (e *protoError) Error() string {
	return fmt.Sprintf("protocol version mismatch: worker speaks v%d, supervisor v%d", e.got, ProtoVersion)
}

func writeLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// TCPTransport connects the supervisor to remote gridworkers listening on
// TCP (cmd/gridworker -listen), speaking the same JSONL protocol as the pipe
// transport behind a versioned handshake. One supervisor slot is pinned to
// each address. The robustness envelope remote links demand lives here:
// dial/read/write deadlines, exponential-backoff redial with seeded jitter
// (which is also what lets a restarted worker re-register: the next redial
// finds the new process and re-handshakes), and permanent host-loss
// declaration (*HostLost) once the redial budget is exhausted or the link is
// partitioned — at which point the supervisor requeues the host's in-flight
// jobs onto surviving workers.
//
// Deterministic link faults (chaos.LinkFaults) are injected here, at the
// message framing layer, so drop/stall/trunc/partition schedules exercise
// the exact read/write paths real link failures would hit.
type TCPTransport struct {
	// Addrs lists the worker endpoints ("host:port"); slot i dials
	// Addrs[i%len(Addrs)].
	Addrs []string
	// DialTimeout bounds one dial-plus-handshake attempt (default 5s).
	DialTimeout time.Duration
	// IOTimeout bounds each line write and is the idle-read ceiling on the
	// supervisor side (default 2m; the per-job deadline and heartbeat
	// liveness reap hung jobs much earlier).
	IOTimeout time.Duration
	// Redials is how many consecutive dial attempts (with backoff) are made
	// before a host is declared lost (default 8).
	Redials int
	// BackoffBase and BackoffMax shape the redial backoff (defaults 100ms
	// and 5s); Seed seeds its jitter.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Seed        int64
	// Link arms one deterministic link fault (nil: none). The fault fires at
	// most once per transport; LinkPartition additionally marks its host
	// dead for the rest of the run.
	Link *chaos.LinkFaults
	// MsgHook, when non-nil, observes every protocol line crossing a link
	// (worker address, 0-based per-link message index). The chaos property
	// tests use it to kill the supervisor at exact message boundaries.
	MsgHook func(addr string, msg int)
	// Log receives transport diagnostics (nil: discard).
	Log io.Writer

	mu    sync.Mutex
	rng   *rand.Rand
	msgs  map[string]int    // per-address protocol message counters (survive redials)
	dead  map[string]string // hosts declared lost, with the reason
	fired bool              // the armed link fault already fired
}

func (t *TCPTransport) Slots() int { return len(t.Addrs) }

func (t *TCPTransport) log() io.Writer {
	if t.Log == nil {
		return io.Discard
	}
	return t.Log
}

func (t *TCPTransport) ioTimeout() time.Duration {
	if t.IOTimeout <= 0 {
		return 2 * time.Minute
	}
	return t.IOTimeout
}

func (t *TCPTransport) markDead(addr, reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead == nil {
		t.dead = make(map[string]string)
	}
	if _, ok := t.dead[addr]; !ok {
		t.dead[addr] = reason
	}
}

func (t *TCPTransport) deadReason(addr string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	reason, ok := t.dead[addr]
	return reason, ok
}

// stepMsg counts one protocol line crossing the link to addr and reports the
// armed fault mode if this is the message it fires at. Handshake lines are
// not counted: message 0 is the first job line.
func (t *TCPTransport) stepMsg(addr string) string {
	t.mu.Lock()
	if t.msgs == nil {
		t.msgs = make(map[string]int)
	}
	k := t.msgs[addr]
	t.msgs[addr]++
	var fault string
	if t.Link != nil && !t.fired && k == t.Link.Msg && t.linkIndex(addr) == t.Link.Link {
		t.fired = true
		fault = t.Link.Mode
	}
	hook := t.MsgHook
	t.mu.Unlock()
	if hook != nil {
		hook(addr, k)
	}
	return fault
}

// linkIndex maps an address back to its position in Addrs (the @link number
// of chaos specs). Callers hold t.mu.
func (t *TCPTransport) linkIndex(addr string) int {
	for i, a := range t.Addrs {
		if a == addr {
			return i
		}
	}
	return -1
}

func (t *TCPTransport) redialBackoff(attempt int) time.Duration {
	base := t.BackoffBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := t.BackoffMax
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	t.mu.Lock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(t.Seed))
	}
	j := time.Duration(t.rng.Int63n(int64(d)/2 + 1))
	t.mu.Unlock()
	return d + j
}

// Dial connects slot to its pinned worker address, retrying with backoff
// through transient failures. It returns *HostLost once the host is gone for
// good: already partitioned, unreachable past the redial budget, or speaking
// an incompatible protocol version.
func (t *TCPTransport) Dial(ctx context.Context, slot int) (WorkerConn, error) {
	if len(t.Addrs) == 0 {
		return nil, errors.New("grid: TCP transport has no worker addresses")
	}
	addr := t.Addrs[slot%len(t.Addrs)]
	redials := t.Redials
	if redials <= 0 {
		redials = 8
	}
	var lastErr error
	for attempt := 0; attempt < redials; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(t.redialBackoff(attempt))
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if reason, dead := t.deadReason(addr); dead {
			return nil, &HostLost{Host: addr, Err: errors.New(reason)}
		}
		c, err := t.dialOnce(ctx, addr)
		if err == nil {
			return c, nil
		}
		var pe *protoError
		if errors.As(err, &pe) {
			// A version mismatch never heals by redialing.
			t.markDead(addr, err.Error())
			return nil, &HostLost{Host: addr, Err: err}
		}
		lastErr = err
		fmt.Fprintf(t.log(), "grid: dial %s (attempt %d/%d): %v\n", addr, attempt+1, redials, err)
	}
	reason := fmt.Sprintf("unreachable after %d dial attempts", redials)
	t.markDead(addr, reason)
	return nil, &HostLost{Host: addr, Err: fmt.Errorf("%s: %w", reason, lastErr)}
}

func (t *TCPTransport) dialOnce(ctx context.Context, addr string) (WorkerConn, error) {
	dialTO := t.DialTimeout
	if dialTO <= 0 {
		dialTO = 5 * time.Second
	}
	d := net.Dialer{Timeout: dialTO}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	// Versioned handshake under its own deadline: we speak first, the worker
	// answers with its version.
	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := writeLine(nc, helloLine{&hello{Proto: ProtoVersion, Peer: "supervisor"}}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("handshake write: %w", err)
	}
	br := bufio.NewReader(nc)
	line, err := br.ReadBytes('\n')
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("handshake read: %w", err)
	}
	var h helloLine
	if err := json.Unmarshal(line, &h); err != nil || h.Hello == nil {
		nc.Close()
		return nil, fmt.Errorf("handshake: %q is not a hello line", bytes.TrimSpace(line))
	}
	if h.Hello.Proto != ProtoVersion {
		nc.Close()
		return nil, &protoError{got: h.Hello.Proto}
	}
	nc.SetDeadline(time.Time{})
	c := &tcpConn{t: t, addr: addr, nc: nc, br: br, lines: make(chan procLine, 4)}
	go c.pump()
	return c, nil
}

// tcpConn is one handshaken supervisor→worker connection.
type tcpConn struct {
	t         *TCPTransport
	addr      string
	nc        net.Conn
	br        *bufio.Reader
	lines     chan procLine
	closeOnce sync.Once
	stalled   atomic.Bool // a LinkStall fired: the link is silent but looks up
}

func (c *tcpConn) Addr() string           { return c.addr }
func (c *tcpConn) Lines() <-chan procLine { return c.lines }

func (c *tcpConn) Close() {
	c.closeOnce.Do(func() {
		c.nc.Close()
		// Drain the pump goroutine so it can exit; it closes c.lines when
		// the (now closed) socket stops yielding bytes.
		for range c.lines {
		}
	})
}

func (c *tcpConn) Send(job Job) error {
	line, err := json.Marshal(workerIn{Job: &job})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	switch c.t.stepMsg(c.addr) {
	case chaos.LinkDrop:
		c.nc.Close()
		return fmt.Errorf("grid: link to %s dropped (chaos)", c.addr)
	case chaos.LinkStall:
		// The job vanishes into the stalled link; the connection stays up and
		// silent, so the supervisor's heartbeat liveness must reap the slot.
		c.stalled.Store(true)
		return nil
	case chaos.LinkTrunc:
		// The supervisor dies mid-write: the worker reads a torn line and
		// must treat it as EOF, never as a job.
		c.nc.SetWriteDeadline(time.Now().Add(c.t.ioTimeout()))
		c.nc.Write(line[:len(line)/2])
		c.nc.Close()
		return nil
	case chaos.LinkPartition:
		c.nc.Close()
		c.t.markDead(c.addr, "network partition (chaos)")
		return fmt.Errorf("grid: link to %s partitioned (chaos)", c.addr)
	}
	if c.stalled.Load() {
		return nil
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.t.ioTimeout()))
	if _, err := c.nc.Write(line); err != nil {
		return fmt.Errorf("grid: write to %s: %w", c.addr, err)
	}
	return nil
}

// pump reads worker lines, injects read-side link faults at message
// boundaries, and feeds the supervisor's response channel. It is the only
// closer of c.lines.
func (c *tcpConn) pump() {
	defer close(c.lines)
	for {
		c.nc.SetReadDeadline(time.Now().Add(c.t.ioTimeout()))
		line, err := c.br.ReadBytes('\n')
		if err != nil {
			// Stream end. A locally closed socket (recycle) and a remote EOF
			// both read as "worker gone" — the supervisor's attempt loop
			// reports "worker exited mid-job". Anything else (reset, read
			// deadline) is surfaced as a stream error.
			if !errors.Is(err, net.ErrClosed) && err != io.EOF {
				c.lines <- procLine{err: fmt.Errorf("read from %s: %w", c.addr, err)}
			}
			return
		}
		switch c.t.stepMsg(c.addr) {
		case chaos.LinkDrop:
			c.nc.Close()
			return
		case chaos.LinkStall:
			c.stalled.Store(true)
			continue
		case chaos.LinkTrunc:
			// The worker died mid-write: deliver the torn prefix, which can
			// never parse, and end the stream.
			line = line[:len(line)/2]
			c.nc.Close()
		case chaos.LinkPartition:
			c.nc.Close()
			c.t.markDead(c.addr, "network partition (chaos)")
			return
		}
		if c.stalled.Load() {
			continue
		}
		var out workerOut
		if err := json.Unmarshal(bytes.TrimRight(line, "\r\n"), &out); err != nil {
			c.lines <- procLine{err: fmt.Errorf("unparseable worker line: %w", err)}
			return
		}
		c.lines <- procLine{out: out}
	}
}

// ServeWorker is the TCP serving loop of cmd/gridworker -listen: it accepts
// supervisor connections, performs the versioned handshake on each, and runs
// the standard WorkerMain job loop over the socket — several supervisors (or
// several slots of one) can share a worker host concurrently. Process-level
// chaos faults (kill/stall/corrupt) apply per connection, exactly as they do
// per subprocess on the pipe transport. ServeWorker returns when ctx is
// cancelled (closing the listener and every live connection) or the listener
// fails.
func ServeWorker(ctx context.Context, ln net.Listener, hbInterval time.Duration, flt *chaos.Faults, log io.Writer) error {
	if log == nil {
		log = io.Discard
	}
	var mu sync.Mutex
	conns := make(map[net.Conn]bool)
	go func() {
		<-ctx.Done()
		ln.Close()
		mu.Lock()
		for nc := range conns {
			nc.Close()
		}
		mu.Unlock()
	}()
	var wg sync.WaitGroup
	for {
		nc, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("gridworker: accept: %w", err)
		}
		mu.Lock()
		conns[nc] = true
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := serveConn(nc, hbInterval, flt)
			nc.Close()
			mu.Lock()
			delete(conns, nc)
			mu.Unlock()
			if err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(log, "gridworker: %v: %v\n", nc.RemoteAddr(), err)
			}
		}()
	}
}

// serveConn handshakes one supervisor connection and serves its jobs.
func serveConn(nc net.Conn, hbInterval time.Duration, flt *chaos.Faults) error {
	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	br := bufio.NewReader(nc)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	var h helloLine
	if err := json.Unmarshal(line, &h); err != nil || h.Hello == nil {
		return fmt.Errorf("handshake: %q is not a hello line", bytes.TrimSpace(line))
	}
	// Always answer with our own version, so a mismatched supervisor can name
	// both sides in its error before we hang up.
	if err := writeLine(nc, helloLine{&hello{Proto: ProtoVersion, Peer: "gridworker"}}); err != nil {
		return fmt.Errorf("handshake write: %w", err)
	}
	if h.Hello.Proto != ProtoVersion {
		return fmt.Errorf("handshake: supervisor speaks protocol v%d, this worker v%d", h.Hello.Proto, ProtoVersion)
	}
	nc.SetDeadline(time.Time{})
	return WorkerMain(br, nc, hbInterval, flt)
}
