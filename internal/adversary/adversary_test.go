package adversary

import (
	"math"
	"strings"
	"testing"

	"reqsched/internal/core"
	"reqsched/internal/offline"
	"reqsched/internal/strategies"
)

// measure runs the construction's target input against the given strategy and
// returns (OPT, ALG).
func measure(t *testing.T, c Construction, s core.Strategy) (int, int) {
	t.Helper()
	var res *core.Result
	var tr *core.Trace
	if c.Source != nil {
		res, tr = core.RunAdaptive(s, c.Source)
	} else {
		tr = c.Trace
		res = core.Run(s, tr)
	}
	if err := core.ValidateLog(tr, res.Log); err != nil {
		t.Fatalf("%s: invalid schedule: %v", c.Name, err)
	}
	return offline.Optimum(tr), res.Fulfilled
}

func TestFixAdversaryExactCounts(t *testing.T) {
	// Theorem 2.1: per phase OPT serves all 4d-2 requests, A_fix serves 2d;
	// the initial block (2d) is served by both.
	for _, d := range []int{2, 3, 4, 8, 16} {
		phases := 40
		c := Fix(d, phases)
		opt, alg := measure(t, c, strategies.NewFix())
		wantOPT := 2*d + phases*(4*d-2)
		wantALG := 2 * d * (phases + 1)
		if opt != wantOPT || alg != wantALG {
			t.Fatalf("d=%d: OPT=%d (want %d) ALG=%d (want %d)", d, opt, wantOPT, alg, wantALG)
		}
	}
}

func TestFixAdversaryConvergesToBound(t *testing.T) {
	d := 4
	prev := 0.0
	for _, phases := range []int{5, 20, 80} {
		c := Fix(d, phases)
		opt, alg := measure(t, c, strategies.NewFix())
		r := float64(opt) / float64(alg)
		if r <= prev {
			t.Fatalf("ratio not increasing with phases: %f then %f", prev, r)
		}
		if r > c.Bound {
			t.Fatalf("measured %f exceeds proven bound %f", r, c.Bound)
		}
		prev = r
	}
	if c := Fix(d, 400); math.Abs(float64(2*d+400*(4*d-2))/float64(2*d*401)-c.Bound) > 0.01 {
		t.Fatal("asymptote not near 2-1/d")
	}
}

func TestCurrentAdversaryMatchesAnalyticBound(t *testing.T) {
	// Theorem 2.2: the measured ratio equals the analytic finite-l forced
	// ratio exactly (the adversary drains groups in order at the predicted
	// rates), and grows towards e/(e-1).
	prev := 1.0
	for _, l := range []int{3, 4, 5, 6} {
		c := Current(l, 5)
		opt, alg := measure(t, c, strategies.NewCurrent())
		wantOPT := l * c.D * 5
		if opt != wantOPT {
			t.Fatalf("l=%d: OPT=%d want %d", l, opt, wantOPT)
		}
		r := float64(opt) / float64(alg)
		if math.Abs(r-CurrentBound(l)) > 1e-9 {
			t.Fatalf("l=%d: measured %.6f != analytic %.6f", l, r, CurrentBound(l))
		}
		if r <= prev {
			t.Fatalf("l=%d: ratio %f not increasing (prev %f)", l, r, prev)
		}
		prev = r
	}
	eOverEMinus1 := math.E / (math.E - 1)
	if CurrentBound(40) < 1.54 || CurrentBound(40) > eOverEMinus1 {
		t.Fatalf("CurrentBound(40)=%f not approaching e/(e-1)=%f", CurrentBound(40), eOverEMinus1)
	}
}

func TestFixBalanceAdversaryExactCounts(t *testing.T) {
	// Theorem 2.3: per phase OPT serves all 3d requests, A_fix_balance 2d+2.
	for _, d := range []int{4, 6, 8, 12, 16} {
		phases := 40
		c := FixBalance(d, phases)
		opt, alg := measure(t, c, strategies.NewFixBalance())
		wantOPT := 2*d + phases*3*d
		wantALG := 2*d + phases*(2*d+2)
		if opt != wantOPT || alg != wantALG {
			t.Fatalf("d=%d: OPT=%d (want %d) ALG=%d (want %d)", d, opt, wantOPT, alg, wantALG)
		}
	}
}

func TestEagerAdversaryExactCounts(t *testing.T) {
	// Theorem 2.4: per phase OPT serves all 4d requests, A_eager 3d.
	for _, d := range []int{2, 4, 6, 8} {
		phases := 40
		c := Eager(d, phases)
		opt, alg := measure(t, c, strategies.NewEager())
		wantOPT := 2*d + phases*4*d
		wantALG := 2*d + phases*3*d
		if opt != wantOPT || alg != wantALG {
			t.Fatalf("d=%d: OPT=%d (want %d) ALG=%d (want %d)", d, opt, wantOPT, alg, wantALG)
		}
	}
}

func TestEagerAdversaryAtD2HitsOtherStrategies(t *testing.T) {
	// The d=2 case of Theorem 2.4 also forces 4/3 on A_current,
	// A_fix_balance and A_balance (Table 1).
	phases := 40
	c := Eager(2, phases)
	wantOPT := 4 + phases*8
	wantALG := 4 + phases*6
	for _, s := range []core.Strategy{
		strategies.NewCurrent(), strategies.NewFixBalance(), strategies.NewBalance(),
	} {
		opt, alg := measure(t, c, s)
		if opt != wantOPT || alg != wantALG {
			t.Fatalf("%s: OPT=%d (want %d) ALG=%d (want %d)", s.Name(), opt, wantOPT, alg, wantALG)
		}
	}
}

// balanceExpected returns the exact (OPT, ALG) counts for the Theorem 2.5
// construction with the deterministic A_balance implementation.
func balanceExpected(x, k, intervals int) (opt, alg int) {
	d := 3*x - 1
	init := 2*d + k*d
	opt = init + intervals*(k*(5*x-1)+4*x)
	alg = init + intervals*(k*(4*x-1)+4*x)
	return
}

func TestBalanceAdversaryExactCounts(t *testing.T) {
	for _, x := range []int{1, 2, 3} {
		for _, k := range []int{2, 6} {
			intervals := 30
			c := Balance(x, k, intervals)
			opt, alg := measure(t, c, strategies.NewBalance())
			wantOPT, wantALG := balanceExpected(x, k, intervals)
			if opt != wantOPT || alg != wantALG {
				t.Fatalf("x=%d k=%d: OPT=%d (want %d) ALG=%d (want %d)",
					x, k, opt, wantOPT, alg, wantALG)
			}
		}
	}
}

func TestBalanceAdversaryApproachesBoundWithManyGroups(t *testing.T) {
	// The shared S'/S'' overhead dilutes the ratio by O(1/k); with many
	// groups the measured ratio must close most of the gap to (5d+2)/(4d+1).
	x := 2
	c := Balance(x, 64, 30)
	opt, alg := measure(t, c, strategies.NewBalance())
	r := float64(opt) / float64(alg)
	if r > c.Bound {
		t.Fatalf("measured %f exceeds bound %f", r, c.Bound)
	}
	if r < c.Bound-0.02 {
		t.Fatalf("measured %f too far below bound %f for k=64", r, c.Bound)
	}
}

func TestUniversalAdversaryBeatsEveryStrategy(t *testing.T) {
	// Theorem 2.6: every deterministic online algorithm loses at least
	// 45/41 on this adaptive input. Verify for all five global strategies,
	// EDF, and the baselines.
	bound := 45.0 / 41.0
	names := []string{
		"A_fix", "A_current", "A_fix_balance", "A_eager", "A_balance",
		"EDF", "EDF_coordinated", "first_fit",
	}
	for _, name := range names {
		c := Universal(6, 25)
		opt, alg := measure(t, c, strategies.New()[name])
		r := float64(opt) / float64(alg)
		if r < bound {
			t.Errorf("%s: ratio %.4f below universal bound %.4f", name, r, bound)
		}
	}
}

func TestUniversalAdversaryOptimumServesAll(t *testing.T) {
	// The generated trace must be fully serviceable offline: OPT serves all
	// 10d per cycle plus the initial block.
	d, cycles := 6, 10
	c := Universal(d, cycles)
	_, tr := core.RunAdaptive(strategies.NewEager(), c.Source)
	opt := offline.Optimum(tr)
	if opt != tr.NumRequests() {
		t.Fatalf("OPT %d < injected %d: construction not offline-feasible", opt, tr.NumRequests())
	}
	want := 6*d*(cycles+1) + 4*d*cycles
	if tr.NumRequests() != want {
		t.Fatalf("injected %d requests, want %d", tr.NumRequests(), want)
	}
}

func TestUniversalAdversaryDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 3∤d")
		}
	}()
	Universal(4, 1)
}

func TestEDFWorstCaseExactlyTwo(t *testing.T) {
	for _, d := range []int{1, 2, 4, 8} {
		c := EDFWorstCase(d, 30)
		opt, alg := measure(t, c, strategies.NewEDF())
		if opt != 2*alg {
			t.Fatalf("d=%d: OPT=%d ALG=%d, want exact factor 2", d, opt, alg)
		}
	}
}

func TestEDFCoordinatedEscapesWorstCase(t *testing.T) {
	// The coordinated ablation shows the loss is entirely due to
	// independent copies: with sibling cancellation the same input is
	// served optimally.
	c := EDFWorstCase(4, 30)
	opt, alg := measure(t, c, strategies.NewEDFCoordinated())
	if opt != alg {
		t.Fatalf("coordinated EDF should be optimal here: OPT=%d ALG=%d", opt, alg)
	}
}

func TestAdversariesNeverExceedUpperBounds(t *testing.T) {
	// Sanity: no adversarial input pushes a strategy above its proven upper
	// bound (Table 1 right column). The d=2 A_eager case is tight at 4/3.
	type ub func(d int) float64
	cases := []struct {
		c  Construction
		s  core.Strategy
		ub float64
	}{
		{Fix(4, 30), strategies.NewFix(), 2 - 1.0/4},
		{Current(4, 5), strategies.NewCurrent(), 2 - 1.0/12},
		{FixBalance(8, 30), strategies.NewFixBalance(), 2 - 2.0/8},
		{Eager(2, 30), strategies.NewEager(), 4.0 / 3},
		{Eager(8, 30), strategies.NewEager(), (3.0*8 - 2) / (2.0*8 - 1)},
		{Balance(3, 8, 30), strategies.NewBalance(), 6 * (8.0 - 1) / (4.0*8 - 3)},
	}
	for _, tc := range cases {
		opt, alg := measure(t, tc.c, tc.s)
		if float64(opt) > tc.ub*float64(alg)+1e-9 {
			t.Errorf("%s on %s: OPT=%d ALG=%d ratio %.4f exceeds UB %.4f",
				tc.s.Name(), tc.c.Name, opt, alg, float64(opt)/float64(alg), tc.ub)
		}
	}
}

func TestLCM(t *testing.T) {
	want := map[int]int{1: 1, 2: 2, 3: 6, 4: 12, 5: 60, 6: 60, 7: 420}
	for k, v := range want {
		if got := LCM(k); got != v {
			t.Fatalf("LCM(%d)=%d want %d", k, got, v)
		}
	}
}

func TestConstructionTracesAreValid(t *testing.T) {
	cs := []Construction{
		Fix(4, 10), Current(5, 3), FixBalance(6, 10), Eager(4, 10),
		Balance(2, 3, 10), LocalFix(3, 10), EDFWorstCase(3, 10),
	}
	for _, c := range cs {
		if c.Trace == nil {
			t.Fatalf("%s: nil trace", c.Name)
		}
		if err := c.Trace.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if c.Bound < 1 {
			t.Fatalf("%s: bound %f < 1", c.Name, c.Bound)
		}
	}
}

func TestLocalFixTraceOptimumServesAll(t *testing.T) {
	c := LocalFix(4, 20)
	if got, want := offline.Optimum(c.Trace), c.Trace.NumRequests(); got != want {
		t.Fatalf("OPT %d should serve all %d", got, want)
	}
}

func TestUniversalAnyDForcesTwelveElevenths(t *testing.T) {
	// The Theorem 2.6 remark: with Phase 1 shortened to floor(d/3) the
	// adversary still forces at least 12/11 for deadlines not divisible by
	// three. Verify for the strongest strategies (the weaker ones lose
	// more).
	for _, d := range []int{4, 5, 7, 8} {
		c := UniversalAnyD(d, 20)
		opt, alg := measure(t, c, strategies.NewBalance())
		r := float64(opt) / float64(alg)
		if r < 12.0/11.0 {
			t.Errorf("d=%d: ratio %.4f below 12/11", d, r)
		}
	}
}

func TestUniversalAnyDOfflineFeasible(t *testing.T) {
	for _, d := range []int{4, 5, 7} {
		c := UniversalAnyD(d, 8)
		_, tr := core.RunAdaptive(strategies.NewEager(), c.Source)
		if got, want := offline.Optimum(tr), tr.NumRequests(); got != want {
			t.Fatalf("d=%d: OPT %d < injected %d", d, got, want)
		}
	}
}

func TestUniversalAnyDMatchesUniversalWhenDivisible(t *testing.T) {
	// For 3 | d the generalized source must behave identically.
	a := Universal(6, 10)
	b := UniversalAnyD(6, 10)
	ra, ta := core.RunAdaptive(strategies.NewFix(), a.Source)
	rb, tb := core.RunAdaptive(strategies.NewFix(), b.Source)
	if ra.Fulfilled != rb.Fulfilled || ta.NumRequests() != tb.NumRequests() {
		t.Fatalf("divisible-d mismatch: %d/%d vs %d/%d",
			ra.Fulfilled, ta.NumRequests(), rb.Fulfilled, tb.NumRequests())
	}
}

func TestCurrentFactorialMatchesLCMVariant(t *testing.T) {
	// The paper's literal d = l! parameterization forces the same ratio as
	// the lcm variant (any d divisible by 1..l-1 works).
	for _, l := range []int{3, 4} {
		a := Current(l, 3)
		b := CurrentFactorial(l, 3)
		_, algA := measure(t, a, strategies.NewCurrent())
		optB, algB := measure(t, b, strategies.NewCurrent())
		ra := CurrentBound(l)
		rb := float64(optB) / float64(algB)
		if math.Abs(ra-rb) > 1e-9 {
			t.Fatalf("l=%d: factorial ratio %.6f != analytic %.6f", l, rb, ra)
		}
		_ = algA
	}
}

func TestConstructorParameterValidation(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"Fix d<2", func() { Fix(1, 1) }},
		{"Current l<2", func() { Current(1, 1) }},
		{"FixBalance odd d", func() { FixBalance(5, 1) }},
		{"FixBalance d<2", func() { FixBalance(0, 1) }},
		{"Eager odd d", func() { Eager(3, 1) }},
		{"Balance x<1", func() { Balance(0, 2, 1) }},
		{"Balance k<1", func() { Balance(1, 0, 1) }},
		{"Universal 3∤d", func() { Universal(5, 1) }},
		{"UniversalAnyD d<4", func() { UniversalAnyD(3, 1) }},
		{"LocalFix d<1", func() { LocalFix(0, 1) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestConstructionString(t *testing.T) {
	s := Fix(4, 2).String()
	if s == "" || !strings.Contains(s, "Theorem 2.1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestExactCountsAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The closed-form predictions at larger deadlines and group counts —
	// a soak test for index arithmetic in the constructions and the
	// matching machinery.
	c := Fix(32, 20)
	opt, alg := measure(t, c, strategies.NewFix())
	if opt != 64+20*(4*32-2) || alg != 2*32*21 {
		t.Fatalf("fix d=32: OPT=%d ALG=%d", opt, alg)
	}
	c = Eager(24, 15)
	opt, alg = measure(t, c, strategies.NewEager())
	if opt != 48+15*4*24 || alg != 48+15*3*24 {
		t.Fatalf("eager d=24: OPT=%d ALG=%d", opt, alg)
	}
	c = Balance(8, 16, 12) // d = 23, n = 50
	opt, alg = measure(t, c, strategies.NewBalance())
	wantOPT, wantALG := balanceExpected(8, 16, 12)
	if opt != wantOPT || alg != wantALG {
		t.Fatalf("balance x=8: OPT=%d (want %d) ALG=%d (want %d)", opt, wantOPT, alg, wantALG)
	}
}
