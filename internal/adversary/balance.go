package adversary

import "reqsched/internal/core"

// Balance builds the Theorem 2.5 sequence against A_balance for d = 3x-1,
// forcing a ratio approaching (5d+2)/(4d+1) as the number of groups grows.
//
// The construction uses k groups of three resources plus two permanently
// blocked resources S' and S”. Within each group the roles rotate every
// interval of 2x rounds: resource A is busy serving a block(1,d) tail,
// resource B is fresh, resource C idles. At the interval's Phase 1 the groups
// R1 -> (A,B) and R2 -> (B,S') arrive (x requests each); the balance
// objective serves R1 on B immediately (A is blocked, S' always is) and queues
// R2 behind it, instead of saving B for R2 and serving R1 late on A. At
// Phase 2, x rounds later, a block(1,d) on (B,S') arrives and finds only
// 2x-1 free slots on B; x of its d = 3x-1 requests are lost. The optimum
// loses nothing: R2 early on B, R1 late on A, block fully on B.
//
// The requests on (S',S”) are shared overhead; their weight vanishes as k
// grows, so measured ratios approach the bound from below as both k and the
// interval count grow.
func Balance(x, k, intervals int) Construction {
	if x < 1 || k < 1 {
		panic("adversary: Balance needs x >= 1, k >= 1")
	}
	d := 3*x - 1
	n := 3*k + 2
	sp := 3 * k    // S'
	spp := 3*k + 1 // S''
	b := core.NewBuilder(n, d)

	// Round 0: block(2,d) pins S' and S''; one block(1,d) per group pins A.
	b.Block(0, sp, spp)
	for g := 0; g < k; g++ {
		b.AddGroup(0, d, 3*g+0, sp) // block(1,d) at A = S1^g
	}

	for j := 0; j < intervals; j++ {
		t1 := x + 2*x*j   // Phase 1
		t2 := 2*x + 2*x*j // Phase 2
		// Refresh the blocking of S'/S'' first (lowest IDs in the phase).
		b.AddGroup(t2, 2*x, sp, spp)
		b.AddGroup(t2, 2*x, spp, sp)
		for g := 0; g < k; g++ {
			a := 3*g + j%3      // role A this interval
			bb := 3*g + (j+1)%3 // role B
			for i := 0; i < x; i++ {
				b.Add(t1, a, bb) // R1
			}
			for i := 0; i < x; i++ {
				b.Add(t1, bb, sp) // R2
			}
			b.AddGroup(t2, d, bb, sp) // block(1,d) at B
		}
	}
	fd := float64(d)
	return Construction{
		Name:       "balance",
		Theorem:    "Theorem 2.5",
		N:          n,
		D:          d,
		Bound:      (5*fd + 2) / (4*fd + 1),
		Trace:      b.Build(),
		TargetName: "A_balance",
	}
}
